#!/usr/bin/env bash
# Pinned perf-tracking sweep decks, written to the repo root so the perf
# trajectory is tracked in version control / CI from PR 3 onward:
#
#   BENCH_sweep.json        every non-sim workload x all seven modes,
#                           crash-free + step:2, CI-sized, median of 3 reps
#   BENCH_ckpt_threads.json the durability-engine scaling deck: one >= 64 MB
#                           CG checkpoint payload on ckpt-disk, swept over
#                           ckpt_threads=1:8:x2 — the "parallel checkpointing
#                           must actually win" trajectory
#   BENCH_ckpt_async.json   the async-checkpointing deck: the same 67 MB CG
#                           payload on ckpt-disk, ckpt_async=0 vs =1, with a
#                           native baseline so bench_check.py can gate the
#                           normalized overhead (async must cut the sync
#                           scheme's overhead, not just its raw seconds)
#   BENCH_shards.json       the multi-shard engine deck: the same CG problem
#                           on ckpt-disk at shards=1 (single-rank engine) vs
#                           shards=4 (coordinated group snapshots), both
#                           normalized against the single-rank native
#                           baseline — bench_check.py gates the 4-shard
#                           normalized overhead against the single-shard one
#   BENCH_threads.json      the kernel-backend scaling deck: the CG SpMV
#                           shape crossed over backend=serial+omp x
#                           threads=1:8:x2 — bench_check.py gates the omp
#                           4-thread cell beating its 1-thread cell
#                           (requires an -DADCC_OPENMP=ON build; the default
#                           build directory is configured with the flag)
#   BENCH_ckpt_compress.json the per-chunk compression deck: the 67 MB CG
#                           payload on ckpt-disk with async saves, crossed
#                           over ckpt_compress=none+lz x ckpt_async_depth=1+2,
#                           with a native baseline — bench_check.py gates the
#                           lz/depth-2 normalized overhead at <= 0.85x the
#                           uncompressed depth-1 async scheme's
#
#   scripts/bench_matrix.sh                 # build + decks -> BENCH_*.json
#   scripts/bench_matrix.sh --out /tmp/b.json --bin ./build/adccbench --no-build
#
# The decks are deliberately pinned (workloads, sizes, reps, throttle
# defaults): compare BENCH_*.json across commits, not across machines.
# scripts/bench_check.py turns the comparison into a CI gate.
set -euo pipefail
cd "$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)/.."

BIN=""
OUT="BENCH_sweep.json"
OUT_CKPT="BENCH_ckpt_threads.json"
OUT_ASYNC="BENCH_ckpt_async.json"
OUT_SHARDS="BENCH_shards.json"
OUT_THREADS="BENCH_threads.json"
OUT_COMPRESS="BENCH_ckpt_compress.json"
BUILD=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --out-ckpt) OUT_CKPT="$2"; shift 2 ;;
    --out-async) OUT_ASYNC="$2"; shift 2 ;;
    --out-shards) OUT_SHARDS="$2"; shift 2 ;;
    --out-threads) OUT_THREADS="$2"; shift 2 ;;
    --out-compress) OUT_COMPRESS="$2"; shift 2 ;;
    --no-build) BUILD=0; shift ;;
    *) echo "bench_matrix.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if [[ -z "$BIN" ]]; then
  if [[ "$BUILD" -eq 1 ]]; then
    cmake -B build -S . -DADCC_OPENMP=ON >/dev/null
    cmake --build build -j "$(nproc)" --target adccbench >/dev/null
  fi
  BIN=./build/adccbench
fi

# run_deck NAME OUTFILE ARGS... — one pinned deck, atomically. The binary
# writes into OUTFILE.tmp and only a clean exit promotes it, so a deck whose
# binary rejects an axis value (an old adccbench fed a new sweep spelling, a
# typo in a pinned flag) fails loudly, names itself, and never leaves a
# partially-written BENCH json behind for bench_check.py to misread.
run_deck() {
  local name="$1" outfile="$2"
  shift 2
  local tmp="$outfile.tmp"
  rm -f "$tmp"
  local status=0
  "$BIN" "$@" --format=json --out="$tmp" >/dev/null || status=$?
  if [[ "$status" -ne 0 || ! -s "$tmp" ]]; then
    rm -f "$tmp"
    echo "bench_matrix: deck '$name' FAILED (exit $status): $BIN rejected its" \
         "pinned flags or died mid-deck; $outfile left untouched." >&2
    echo "bench_matrix: reproduce with: $BIN $*" >&2
    exit 1
  fi
  mv "$tmp" "$outfile"
  echo "bench_matrix OK -> $outfile ($(grep -c '"workload"' "$outfile") cells)"
}

# Pinned deck: every workload under every mode with a mid-run crash pass too,
# so both steady-state overhead and recovery cost stay on the trajectory.
run_deck sweep "$OUT" \
  --sweep="workload=all,mode=all,crash=none+step:2" --quick --reps=3

# Durability-engine scaling deck: 3 CG iterations checkpointing a 67 MB
# payload (3 vectors of n=2.8M doubles) per unit to ckpt-disk under the
# default 150 MB/s device model. ckpt_threads=1 reproduces the synchronous
# seed path; higher values pipeline chunk serialization + CRC against the
# device window. bench_check.py gates threads=4 beating threads=1.
run_deck ckpt_threads "$OUT_CKPT" \
  --workload=cg --mode=ckpt-disk --sweep="ckpt_threads=1:8:x2" \
  --n=2800000 --nz=8 --iters=3 --reps=3 --no_baseline --verify=off

# Async-checkpointing deck: the same 67 MB payload (denser matrix, nz=16, so
# each unit carries a real compute window for the drain to hide behind),
# ckpt_async=0 vs =1 at ckpt_threads=1 — isolating the overlap win from the
# pipeline win. Runs WITH a native baseline: bench_check.py gates that async's
# normalized overhead is <= 0.90x the synchronous scheme's.
run_deck ckpt_async "$OUT_ASYNC" \
  --workload=cg --mode=ckpt-disk --sweep="ckpt_async=0+1" \
  --n=2800000 --nz=16 --iters=3 --reps=3 --verify=off

# Multi-shard engine deck: the same CG problem on ckpt-disk, single-rank
# (shards=1) vs a 4-shard coordinated group. The sweep layer keys both cells
# to the SAME single-rank native baseline (baseline_key drops the shard axes),
# so the normalized columns compare the coordinated-snapshot protocol's cost
# — per-shard slots plus the global marker commit — directly against the
# monolithic checkpoint path. bench_check.py gates the 4-shard overhead ratio.
run_deck shards "$OUT_SHARDS" \
  --workload=cg --mode=ckpt-disk --sweep="shards=1+4" \
  --n=2800000 --nz=8 --iters=3 --reps=3 --verify=off

# Kernel-backend scaling deck: the SpMV-dominated CG shape (n=2.8M, nz=8, no
# durability work — mode=native isolates the compute win) crossed over
# backend=serial+omp x threads=1:8:x2. Only meaningful from an
# -DADCC_OPENMP=ON binary; skipped with a warning otherwise so the non-OMP
# decks still pin. bench_check.py gates the omp rows with
# --speedup-filter backend=omp (serial rows ignore the threads axis by
# construction) and --speedup-procs 4 (degrades to a no-regression bound on
# starved runners).
if "$BIN" --list --backend=omp >/dev/null 2>&1; then
  run_deck threads "$OUT_THREADS" \
    --workload=cg --mode=native --sweep="backend=serial+omp,threads=1:8:x2" \
    --n=2800000 --nz=8 --iters=3 --reps=3 --no_baseline --verify=off
else
  echo "bench_matrix: $BIN lacks the omp backend (build with -DADCC_OPENMP=ON); skipping $OUT_THREADS" >&2
fi

# Per-chunk compression deck: the 67 MB CG payload under a SLOW device model
# (disk_mbps=25) and a dense matrix (nz=48), crossed over
# ckpt_compress=none+lz x ckpt_async_depth=1+2. The shape is deliberate: the
# codec's CPU cost hides inside the device-throttle window (2 pipeline
# workers: one compresses while the other waits on the bandwidth bucket), and
# the dense compute raises the hidden share of the drain, so the stored-byte
# cut (the upper byte planes of the f64 state pack/Huffman tightly) lands
# almost fully on the EXPOSED overhead. WITH a native baseline:
# bench_check.py gates the lz cells' normalized overhead at <= 0.85x their
# none counterparts per ring depth, and the baseline_key skip-list keys all
# four cells to one native run.
run_deck ckpt_compress "$OUT_COMPRESS" \
  --workload=cg --mode=ckpt-disk --ckpt_async=1 --ckpt_threads=2 --disk_mbps=25 \
  --sweep="ckpt_compress=none+lz,ckpt_async_depth=1+2" \
  --n=2800000 --nz=48 --iters=3 --reps=3 --verify=off
