#!/usr/bin/env bash
# Pinned perf-tracking sweep deck: one adccbench invocation over every non-sim
# workload x all seven modes (crash-free, CI-sized, median of 3 reps), written
# to BENCH_sweep.json at the repo root so the perf trajectory is tracked in
# version control / CI artifacts from PR 3 onward.
#
#   scripts/bench_matrix.sh                 # build + deck -> BENCH_sweep.json
#   scripts/bench_matrix.sh --out /tmp/b.json --bin ./build/adccbench --no-build
#
# The deck is deliberately pinned (workloads, sizes, reps, throttle defaults):
# compare BENCH_sweep.json across commits, not across machines.
set -euo pipefail
cd "$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)/.."

BIN=""
OUT="BENCH_sweep.json"
BUILD=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --no-build) BUILD=0; shift ;;
    *) echo "bench_matrix.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if [[ -z "$BIN" ]]; then
  if [[ "$BUILD" -eq 1 ]]; then
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target adccbench >/dev/null
  fi
  BIN=./build/adccbench
fi

# Pinned deck: every workload under every mode with a mid-run crash pass too,
# so both steady-state overhead and recovery cost stay on the trajectory.
"$BIN" --sweep="workload=all,mode=all,crash=none+step:2" \
  --quick --reps=3 --format=json --out="$OUT" >/dev/null

echo "bench_matrix OK -> $OUT ($(grep -c '"workload"' "$OUT") cells)"
