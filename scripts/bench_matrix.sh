#!/usr/bin/env bash
# Pinned perf-tracking sweep decks, written to the repo root so the perf
# trajectory is tracked in version control / CI from PR 3 onward:
#
#   BENCH_sweep.json        every non-sim workload x all seven modes,
#                           crash-free + step:2, CI-sized, median of 3 reps
#   BENCH_ckpt_threads.json the durability-engine scaling deck: one >= 64 MB
#                           CG checkpoint payload on ckpt-disk, swept over
#                           ckpt_threads=1:8:x2 — the "parallel checkpointing
#                           must actually win" trajectory
#   BENCH_ckpt_async.json   the async-checkpointing deck: the same 67 MB CG
#                           payload on ckpt-disk, ckpt_async=0 vs =1, with a
#                           native baseline so bench_check.py can gate the
#                           normalized overhead (async must cut the sync
#                           scheme's overhead, not just its raw seconds)
#   BENCH_shards.json       the multi-shard engine deck: the same CG problem
#                           on ckpt-disk at shards=1 (single-rank engine) vs
#                           shards=4 (coordinated group snapshots), both
#                           normalized against the single-rank native
#                           baseline — bench_check.py gates the 4-shard
#                           normalized overhead against the single-shard one
#   BENCH_threads.json      the kernel-backend scaling deck: the CG SpMV
#                           shape crossed over backend=serial+omp x
#                           threads=1:8:x2 — bench_check.py gates the omp
#                           4-thread cell beating its 1-thread cell
#                           (requires an -DADCC_OPENMP=ON build; the default
#                           build directory is configured with the flag)
#
#   scripts/bench_matrix.sh                 # build + decks -> BENCH_*.json
#   scripts/bench_matrix.sh --out /tmp/b.json --bin ./build/adccbench --no-build
#
# The decks are deliberately pinned (workloads, sizes, reps, throttle
# defaults): compare BENCH_*.json across commits, not across machines.
# scripts/bench_check.py turns the comparison into a CI gate.
set -euo pipefail
cd "$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)/.."

BIN=""
OUT="BENCH_sweep.json"
OUT_CKPT="BENCH_ckpt_threads.json"
OUT_ASYNC="BENCH_ckpt_async.json"
OUT_SHARDS="BENCH_shards.json"
OUT_THREADS="BENCH_threads.json"
BUILD=1

while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --out-ckpt) OUT_CKPT="$2"; shift 2 ;;
    --out-async) OUT_ASYNC="$2"; shift 2 ;;
    --out-shards) OUT_SHARDS="$2"; shift 2 ;;
    --out-threads) OUT_THREADS="$2"; shift 2 ;;
    --no-build) BUILD=0; shift ;;
    *) echo "bench_matrix.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if [[ -z "$BIN" ]]; then
  if [[ "$BUILD" -eq 1 ]]; then
    cmake -B build -S . -DADCC_OPENMP=ON >/dev/null
    cmake --build build -j "$(nproc)" --target adccbench >/dev/null
  fi
  BIN=./build/adccbench
fi

# Pinned deck: every workload under every mode with a mid-run crash pass too,
# so both steady-state overhead and recovery cost stay on the trajectory.
"$BIN" --sweep="workload=all,mode=all,crash=none+step:2" \
  --quick --reps=3 --format=json --out="$OUT" >/dev/null

echo "bench_matrix OK -> $OUT ($(grep -c '"workload"' "$OUT") cells)"

# Durability-engine scaling deck: 3 CG iterations checkpointing a 67 MB
# payload (3 vectors of n=2.8M doubles) per unit to ckpt-disk under the
# default 150 MB/s device model. ckpt_threads=1 reproduces the synchronous
# seed path; higher values pipeline chunk serialization + CRC against the
# device window. bench_check.py gates threads=4 beating threads=1.
"$BIN" --workload=cg --mode=ckpt-disk --sweep="ckpt_threads=1:8:x2" \
  --n=2800000 --nz=8 --iters=3 --reps=3 --no_baseline --verify=off \
  --format=json --out="$OUT_CKPT" >/dev/null

echo "bench_matrix OK -> $OUT_CKPT ($(grep -c '"workload"' "$OUT_CKPT") cells)"

# Async-checkpointing deck: the same 67 MB payload (denser matrix, nz=16, so
# each unit carries a real compute window for the drain to hide behind),
# ckpt_async=0 vs =1 at ckpt_threads=1 — isolating the overlap win from the
# pipeline win. Runs WITH a native baseline: bench_check.py gates that async's
# normalized overhead is <= 0.90x the synchronous scheme's.
"$BIN" --workload=cg --mode=ckpt-disk --sweep="ckpt_async=0+1" \
  --n=2800000 --nz=16 --iters=3 --reps=3 --verify=off \
  --format=json --out="$OUT_ASYNC" >/dev/null

echo "bench_matrix OK -> $OUT_ASYNC ($(grep -c '"workload"' "$OUT_ASYNC") cells)"

# Multi-shard engine deck: the same CG problem on ckpt-disk, single-rank
# (shards=1) vs a 4-shard coordinated group. The sweep layer keys both cells
# to the SAME single-rank native baseline (baseline_key drops the shard axes),
# so the normalized columns compare the coordinated-snapshot protocol's cost
# — per-shard slots plus the global marker commit — directly against the
# monolithic checkpoint path. bench_check.py gates the 4-shard overhead ratio.
"$BIN" --workload=cg --mode=ckpt-disk --sweep="shards=1+4" \
  --n=2800000 --nz=8 --iters=3 --reps=3 --verify=off \
  --format=json --out="$OUT_SHARDS" >/dev/null

echo "bench_matrix OK -> $OUT_SHARDS ($(grep -c '"workload"' "$OUT_SHARDS") cells)"

# Kernel-backend scaling deck: the SpMV-dominated CG shape (n=2.8M, nz=8, no
# durability work — mode=native isolates the compute win) crossed over
# backend=serial+omp x threads=1:8:x2. Only meaningful from an
# -DADCC_OPENMP=ON binary; skipped with a warning otherwise so the non-OMP
# decks still pin. bench_check.py gates the omp rows with
# --speedup-filter backend=omp (serial rows ignore the threads axis by
# construction) and --speedup-procs 4 (degrades to a no-regression bound on
# starved runners).
if "$BIN" --list --backend=omp >/dev/null 2>&1; then
  "$BIN" --workload=cg --mode=native --sweep="backend=serial+omp,threads=1:8:x2" \
    --n=2800000 --nz=8 --iters=3 --reps=3 --no_baseline --verify=off \
    --format=json --out="$OUT_THREADS" >/dev/null
  echo "bench_matrix OK -> $OUT_THREADS ($(grep -c '"workload"' "$OUT_THREADS") cells)"
else
  echo "bench_matrix: $BIN lacks the omp backend (build with -DADCC_OPENMP=ON); skipping $OUT_THREADS" >&2
fi
