#!/usr/bin/env python3
"""Perf-deck regression gate: compare a fresh BENCH_*.json against the
checked-in baseline and fail on regressions.

The pinned decks (scripts/bench_matrix.sh) are the perf trajectory; this turns
them from an uploaded artifact into a gate:

  bench_check.py CURRENT BASELINE                      # structural + overhead gate
  bench_check.py CURRENT BASELINE --speedup-axis ckpt_threads \
      --speedup-from 1 --speedup-to 4 --speedup-min 1.05
  bench_check.py CURRENT BASELINE --overhead-axis ckpt_async \
      --overhead-from 0 --overhead-to 1 --overhead-max 0.90

Checks, in order:
  1. Both decks hold the same cell set (same workload/mode/crash/axis keys).
  2. Every current cell reports status "ok".
  3. Normalized-overhead regressions: a cell's `normalized` may not exceed the
     baseline's by more than --tol (relative) AND --abs-floor (absolute) at
     once. Normalized values are machine-comparable; raw seconds are not.
     Cells faster than --min-seconds in either deck are skipped (noise).
  4. With --speedup-axis: within each cell group that differs only in that
     axis, seconds[axis=--speedup-to] must beat seconds[axis=--speedup-from]
     by at least --speedup-min (the "parallel durability must actually win"
     acceptance gate — self-relative, so it holds on any machine).
     --speedup-filter KEY=VALUE (repeatable) restricts the gate to matching
     rows — e.g. `--speedup-filter backend=omp` gates the omp rows of a
     backend-crossed threads deck without demanding a serial "speedup".
     --speedup-procs N declares how many CPUs the gate's threshold assumes:
     when the runner has fewer (os.sched_getaffinity), a parallel win is
     physically impossible, so the gate degrades to --speedup-degraded-min
     (a no-regression bound, default 0.90) and its metrics are ratcheted
     under a separate ":degraded" name so starved runs never poison the
     full-width history.
  5. With --overhead-axis: within each cell group that differs only in that
     axis, the *normalized overhead* (normalized - 1, i.e. the durability
     scheme's cost over native) at axis=--overhead-to must be at most
     --overhead-max times the overhead at axis=--overhead-from (the "async
     checkpointing must actually cut the overhead" acceptance gate —
     self-relative like the speedup gate, but measured against the native
     baseline so compute speed cancels out).
  6. With --stage-budget STAGE=FRACTION (repeatable): per-stage fraction
     gates over the telemetry columns. For every cell with measurable stage
     columns, STAGE's share of the checkpoint wall time
     (t_stage + t_crc + t_io) must stay within FRACTION; cells with blank
     ("-") stage columns or zero checkpoint time (native cells) are skipped,
     but the gate fails if NO cell is measurable. The worst fraction per
     budget feeds the history ratchet as a `stage:` metric, so a stage that
     starts eating the checkpoint names itself in the report.
  7. With --history: every self-relative gate metric (speedup, overhead
     ratio, stage fraction) is appended to the given JSONL file, and each is
     ratcheted against the best clean value ever recorded there — a run may
     not be worse than the best-known by more than --ratchet-tol, even if it
     still clears the static gate. The history file is append-only; commit it
     so the trajectory rides along with the pinned decks. Corrupt history
     lines are reported as file:line; blank lines are skipped.

--self-test exercises the stage-budget pass/fail paths and the corrupt-
history diagnostics against synthetic decks (wired into CI and ctest).

Exit status: 0 clean, 1 regression(s), 2 usage/structural error.
"""

import argparse
import json
import os
import sys

# Telemetry stage columns (sweep table): seconds of the last timed rep. The
# t_spmv/t_gemm/t_xs columns are per-kernel slices of t_kernel (docs/
# OBSERVABILITY.md); like t_kernel they are compute, not checkpoint time.
STAGE_COLS = ("t_stage", "t_crc", "t_comp", "t_io", "t_drain", "t_kernel",
              "t_spmv", "t_gemm", "t_xs")
# The stage-budget denominator: the synchronous checkpoint wall time. t_drain
# overlaps these by design and t_kernel is compute, so neither belongs in it.
# t_comp runs on the pipeline workers ahead of the device queue, so it does.
STAGE_DENOM_COLS = ("t_stage", "t_crc", "t_comp", "t_io")
# Columns absent from decks pinned before they existed: an absent key reads as
# zero so old baselines keep gating, but a blank "-" still means unmeasured.
OPTIONAL_STAGE_COLS = ("t_comp",)

# Columns that are measurements, not cell identity.
MEASUREMENT_COLS = {
    "cell", "units", "seconds", "normalized", "overhead", "lost", "partial",
    "corrected", "torn", "salvaged", "overlap", "detect/unit", "resume/unit",
    "victims", "epochs_rb", "replayed", "halo_kb", "status", *STAGE_COLS,
}


def load_deck(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_check: cannot read deck {path}: {e}")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"bench_check: {path} is not a non-empty JSON row array")
    return rows


def cell_key(row, axis_excluded=()):
    return tuple(sorted((k, v) for k, v in row.items()
                        if k not in MEASUREMENT_COLS and k not in axis_excluded))


def parse_float(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?")
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("--tol", type=float, default=0.5,
                    help="max relative normalized-overhead growth (default 0.5)")
    ap.add_argument("--abs-floor", type=float, default=0.75,
                    help="absolute normalized growth ignored below this (default 0.75)")
    ap.add_argument("--min-seconds", type=float, default=0.005,
                    help="skip normalized comparison for cells faster than this")
    ap.add_argument("--speedup-axis", default=None,
                    help="axis column for the self-relative speedup gate")
    ap.add_argument("--speedup-from", default="1")
    ap.add_argument("--speedup-to", default="4")
    ap.add_argument("--speedup-min", type=float, default=1.05)
    ap.add_argument("--speedup-filter", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="repeatable: only rows with row[KEY] == VALUE feed "
                         "the speedup gate (e.g. backend=omp)")
    ap.add_argument("--speedup-procs", type=int, default=0,
                    metavar="N",
                    help="CPUs the --speedup-min threshold assumes; with fewer "
                         "available the gate degrades to --speedup-degraded-min")
    ap.add_argument("--speedup-degraded-min", type=float, default=0.90,
                    help="no-regression bound used when the runner has fewer "
                         "than --speedup-procs CPUs (default 0.90)")
    ap.add_argument("--overhead-axis", default=None,
                    help="axis column for the normalized-overhead ratio gate")
    ap.add_argument("--overhead-from", default="0")
    ap.add_argument("--overhead-to", default="1")
    ap.add_argument("--overhead-max", type=float, default=0.90,
                    help="max (normalized-1) ratio of --overhead-to vs --overhead-from")
    ap.add_argument("--stage-budget", action="append", default=[],
                    metavar="STAGE=FRACTION",
                    help="repeatable: gate STAGE's share of the checkpoint wall "
                         "time (t_stage+t_crc+t_io) to at most FRACTION, e.g. "
                         "t_crc=0.35")
    ap.add_argument("--history", default=None,
                    help="JSONL ratchet file: append this run's gate metrics and "
                         "fail any metric that regresses past --ratchet-tol of its "
                         "best-known clean value")
    ap.add_argument("--ratchet-tol", type=float, default=0.25,
                    help="allowed relative slack vs the best-known history value")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in self-test against synthetic decks")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if args.current is None or args.baseline is None:
        ap.error("current and baseline decks are required (or use --self-test)")
    # Gate metrics for the history ratchet: name -> (value, "higher"|"lower").
    metrics = {}

    current = load_deck(args.current)
    baseline = load_deck(args.baseline)

    cur_by_key = {cell_key(r): r for r in current}
    base_by_key = {cell_key(r): r for r in baseline}
    failures = []

    missing = sorted(set(base_by_key) - set(cur_by_key))
    extra = sorted(set(cur_by_key) - set(base_by_key))
    for key in missing:
        failures.append(f"cell disappeared from the deck: {dict(key)}")
    for key in extra:
        failures.append(f"unbaselined cell in the deck (re-pin the baseline): {dict(key)}")

    for key, row in sorted(cur_by_key.items()):
        if row.get("status") != "ok":
            failures.append(f"cell not ok ({row.get('status')!r}): {dict(key)}")

    for key, row in sorted(cur_by_key.items()):
        base = base_by_key.get(key)
        if base is None:
            continue
        cur_norm, base_norm = parse_float(row.get("normalized")), parse_float(base.get("normalized"))
        cur_s, base_s = parse_float(row.get("seconds")), parse_float(base.get("seconds"))
        if None in (cur_norm, base_norm, cur_s, base_s):
            continue
        if min(cur_s, base_s) < args.min_seconds:
            continue  # Sub-noise-floor cells cannot carry a verdict.
        if (cur_norm > base_norm * (1 + args.tol)
                and cur_norm - base_norm > args.abs_floor):
            failures.append(
                f"normalized regression {base_norm:.3f} -> {cur_norm:.3f} "
                f"(tol {args.tol:.0%} + {args.abs_floor}): {dict(key)}")

    if args.speedup_axis:
        axis = args.speedup_axis
        filters = {}
        for spec in args.speedup_filter:
            key, sep, value = spec.partition("=")
            if not sep or not key:
                sys.exit(f"bench_check: bad --speedup-filter {spec!r} (want KEY=VALUE)")
            filters[key] = value
        # Degrade to a no-regression bound when the machine cannot possibly
        # show the full-width parallel win (CI runners vary; a 1-CPU box
        # cannot make 4 threads beat 1).
        speedup_min, metric_suffix = args.speedup_min, ""
        if args.speedup_procs > 0:
            avail = len(os.sched_getaffinity(0))
            if avail < args.speedup_procs:
                speedup_min, metric_suffix = args.speedup_degraded_min, ":degraded"
                print(f"bench_check: speedup gate degraded: {avail} CPU(s) "
                      f"available, threshold assumes {args.speedup_procs}; "
                      f"gating no-regression >= {speedup_min:.2f}x instead")
        groups = {}
        for row in current:
            if axis not in row:
                continue
            if any(row.get(k) != v for k, v in filters.items()):
                continue
            groups.setdefault(cell_key(row, axis_excluded=(axis,)), {})[row[axis]] = row
        if not groups:
            failures.append(f"speedup gate: no cells carry axis '{axis}'"
                            + (f" and match {filters}" if filters else ""))
        for gkey, by_axis in sorted(groups.items()):
            lo = by_axis.get(args.speedup_from)
            hi = by_axis.get(args.speedup_to)
            if lo is None or hi is None:
                failures.append(
                    f"speedup gate: {axis}={args.speedup_from}/{args.speedup_to} "
                    f"missing in group {dict(gkey)}")
                continue
            lo_s, hi_s = parse_float(lo.get("seconds")), parse_float(hi.get("seconds"))
            if lo_s is None or hi_s is None or hi_s <= 0:
                failures.append(f"speedup gate: unreadable seconds in group {dict(gkey)}")
                continue
            speedup = lo_s / hi_s
            gname = ";".join(f"{k}={v}" for k, v in gkey)
            metrics[f"speedup{metric_suffix}:{axis}:"
                    f"{args.speedup_from}->{args.speedup_to}:{gname}"] = (
                speedup, "higher")
            verdict = "ok" if speedup >= speedup_min else "FAIL"
            print(f"bench_check: {axis} {args.speedup_from}->{args.speedup_to} "
                  f"speedup {speedup:.2f}x (need >= {speedup_min:.2f}x) "
                  f"[{verdict}] {dict(gkey)}")
            if speedup < speedup_min:
                failures.append(
                    f"{axis}={args.speedup_to} does not beat ={args.speedup_from}: "
                    f"{lo_s:.4f}s -> {hi_s:.4f}s ({speedup:.2f}x) in {dict(gkey)}")

    if args.overhead_axis:
        axis = args.overhead_axis
        groups = {}
        for row in current:
            if axis not in row:
                continue
            groups.setdefault(cell_key(row, axis_excluded=(axis,)), {})[row[axis]] = row
        if not groups:
            failures.append(f"overhead gate: no cells carry axis '{axis}'")
        for gkey, by_axis in sorted(groups.items()):
            lo = by_axis.get(args.overhead_from)
            hi = by_axis.get(args.overhead_to)
            if lo is None or hi is None:
                failures.append(
                    f"overhead gate: {axis}={args.overhead_from}/{args.overhead_to} "
                    f"missing in group {dict(gkey)}")
                continue
            lo_n, hi_n = parse_float(lo.get("normalized")), parse_float(hi.get("normalized"))
            if lo_n is None or hi_n is None or lo_n <= 1.0:
                failures.append(
                    f"overhead gate: unusable normalized values "
                    f"({lo.get('normalized')!r} vs {hi.get('normalized')!r}; the deck "
                    f"must run with a native baseline and real durability overhead) "
                    f"in group {dict(gkey)}")
                continue
            ratio = (hi_n - 1.0) / (lo_n - 1.0)
            gname = ";".join(f"{k}={v}" for k, v in gkey)
            metrics[f"overhead:{axis}:{args.overhead_from}->{args.overhead_to}:{gname}"] = (
                ratio, "lower")
            verdict = "ok" if ratio <= args.overhead_max else "FAIL"
            print(f"bench_check: {axis} {args.overhead_from}->{args.overhead_to} "
                  f"overhead {lo_n - 1.0:.3f} -> {hi_n - 1.0:.3f} "
                  f"({ratio:.2f}x, need <= {args.overhead_max:.2f}x) "
                  f"[{verdict}] {dict(gkey)}")
            if ratio > args.overhead_max:
                failures.append(
                    f"{axis}={args.overhead_to} does not cut ={args.overhead_from}'s "
                    f"overhead to {args.overhead_max:.2f}x: {lo_n - 1.0:.3f} -> "
                    f"{hi_n - 1.0:.3f} ({ratio:.2f}x) in {dict(gkey)}")

    for spec in args.stage_budget:
        stage, _, frac = spec.partition("=")
        budget = parse_float(frac)
        if stage not in STAGE_COLS or budget is None or not 0 < budget <= 1:
            sys.exit(f"bench_check: bad --stage-budget {spec!r} "
                     f"(want STAGE=FRACTION with STAGE in {'/'.join(STAGE_COLS)} "
                     f"and 0 < FRACTION <= 1)")
        gated = 0
        worst = None
        for row in current:
            denom_vals = [
                0.0 if c in OPTIONAL_STAGE_COLS and c not in row
                else parse_float(row.get(c))
                for c in STAGE_DENOM_COLS
            ]
            value = parse_float(row.get(stage))
            if value is None or None in denom_vals:
                continue  # Blank ("-") stage columns: --no_timing or old deck.
            denom = sum(denom_vals)
            if denom <= 0:
                continue  # Native cells run no checkpoint stages.
            fraction = value / denom
            gated += 1
            if worst is None or fraction > worst[0]:
                worst = (fraction, row)
            if fraction > budget:
                failures.append(
                    f"stage budget: {stage} is {fraction:.1%} of the checkpoint "
                    f"wall time (budget {budget:.0%}) in cell "
                    f"{row.get('workload')}/{row.get('mode')}"
                    f"{'/' + row.get('crash') if row.get('crash') else ''} "
                    f"(cell {row.get('cell')})")
        if gated == 0:
            failures.append(
                f"stage budget: no cell carries measurable stage columns for "
                f"{stage} (deck predates telemetry or ran --no_timing)")
        else:
            metrics[f"stage:{stage}"] = (worst[0], "lower")
            verdict = "ok" if worst[0] <= budget else "FAIL"
            print(f"bench_check: stage budget {stage} worst {worst[0]:.1%} of "
                  f"checkpoint time across {gated} cells (budget {budget:.0%}) "
                  f"[{verdict}]")

    if args.history:
        records = []
        if os.path.exists(args.history):
            with open(args.history) as f:
                for lineno, line in enumerate(f, 1):
                    line = line.strip()
                    if not line:
                        continue  # Blank lines (trailing newlines, hand edits) are fine.
                    try:
                        records.append(json.loads(line))
                    except json.JSONDecodeError as e:
                        sys.exit(f"bench_check: {args.history}:{lineno}: "
                                 f"corrupt history line: {e}")
        # Ratchet every gate metric against the best clean value on record.
        for name, (value, better) in sorted(metrics.items()):
            best = None
            for rec in records:
                if rec.get("status") != "ok":
                    continue
                past = parse_float(rec.get("metrics", {}).get(name))
                if past is None:
                    continue
                if best is None or (better == "higher") == (past > best):
                    best = past
            if best is None:
                continue
            if better == "higher" and value < best * (1 - args.ratchet_tol):
                failures.append(
                    f"history ratchet: {name} fell to {value:.3f} "
                    f"(best-known {best:.3f}, tol {args.ratchet_tol:.0%})")
            elif better == "lower" and value > best * (1 + args.ratchet_tol):
                failures.append(
                    f"history ratchet: {name} rose to {value:.3f} "
                    f"(best-known {best:.3f}, tol {args.ratchet_tol:.0%})")
        record = {
            "deck": os.path.basename(args.current),
            "baseline": os.path.basename(args.baseline),
            "cells": len(current),
            "status": "fail" if failures else "ok",
            "metrics": {name: value for name, (value, _) in sorted(metrics.items())},
        }
        with open(args.history, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")

    if failures:
        print(f"bench_check: {len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"bench_check OK: {len(current)} cells within tolerance of {args.baseline}")
    return 0


def self_test():
    """Prove the stage-budget gate passes, fails when a stage blows its
    budget, skips unmeasurable cells, and that corrupt history lines are
    reported as file:line — all via real subprocess invocations."""
    import shutil
    import subprocess
    import tempfile

    tmp = tempfile.mkdtemp(prefix="bench_check_selftest.")
    me = os.path.abspath(__file__)

    def deck(name, rows):
        path = os.path.join(tmp, name)
        with open(path, "w") as f:
            json.dump(rows, f)
        return path

    def run(*argv):
        return subprocess.run([sys.executable, me, *argv],
                              capture_output=True, text=True)

    def stage_row(mode, t_stage, t_crc, t_io, t_comp="0.0000"):
        return {
            "cell": "0", "workload": "cg", "mode": mode, "crash": "none",
            "units": "3", "seconds": "0.5000", "normalized": "-",
            "overhead": "-", "lost": "0", "partial": "0", "corrected": "0",
            "torn": "0", "salvaged": "0", "overlap": "-", "detect/unit": "-",
            "resume/unit": "-", "victims": "0", "epochs_rb": "0",
            "replayed": "0", "halo_kb": "0.0", "t_stage": t_stage,
            "t_crc": t_crc, "t_comp": t_comp if t_stage != "-" else "-",
            "t_io": t_io, "t_drain": "-",
            "t_kernel": "0.4000", "t_spmv": "0.3500", "t_gemm": "0.0000",
            "t_xs": "0.0000", "status": "ok",
        }

    def speedup_row(cell, backend, threads, seconds):
        row = stage_row("native", "-", "-", "-")
        row.update({"cell": cell, "backend": backend, "threads": threads,
                    "seconds": seconds})
        return row

    # A native cell (blank stage columns, must be skipped) plus a ckpt cell
    # where t_crc is 10% of the 0.20s checkpoint wall time.
    lean = deck("lean.json", [
        stage_row("native", "-", "-", "-"),
        stage_row("ckpt-disk", "0.0400", "0.0200", "0.1400"),
    ])
    # Same deck with CRC inflated to 50% of the checkpoint time.
    fat = deck("fat.json", [
        stage_row("native", "-", "-", "-"),
        stage_row("ckpt-disk", "0.0400", "0.1000", "0.0600"),
    ])
    # No measurable cell at all: the gate must refuse to silently pass.
    blank = deck("blank.json", [stage_row("native", "-", "-", "-")])

    problems = []

    def expect(label, proc, code, needle=None):
        output = proc.stdout + proc.stderr
        if proc.returncode != code:
            problems.append(f"{label}: exit {proc.returncode}, want {code}:\n{output}")
        elif needle is not None and needle not in output:
            problems.append(f"{label}: output lacks {needle!r}:\n{output}")

    expect("budget-pass", run(lean, lean, "--stage-budget", "t_crc=0.35"),
           0, "stage budget t_crc worst 10.0%")
    # Decks pinned before the codec landed lack the t_comp column entirely;
    # the denominator must read it as zero, not skip the cell.
    old_rows = [stage_row("ckpt-disk", "0.0400", "0.0200", "0.1400")]
    for row in old_rows:
        del row["t_comp"], row["salvaged"]
    old = deck("old.json", old_rows)
    expect("budget-old-deck", run(old, old, "--stage-budget", "t_crc=0.35"),
           0, "stage budget t_crc worst 10.0%")
    # And in a current deck t_comp joins the denominator: 0.02 / 0.25 = 8%.
    comp = deck("comp.json", [
        stage_row("ckpt-disk", "0.0400", "0.0200", "0.1400", "0.0500"),
    ])
    expect("budget-comp-denom", run(comp, comp, "--stage-budget", "t_crc=0.35"),
           0, "stage budget t_crc worst 8.0%")
    expect("budget-comp-gate", run(comp, comp, "--stage-budget", "t_comp=0.10"),
           1, "stage budget: t_comp is 20.0%")
    expect("budget-fail", run(fat, fat, "--stage-budget", "t_crc=0.35"),
           1, "stage budget: t_crc is 50.0%")
    expect("budget-unmeasurable", run(blank, blank, "--stage-budget", "t_crc=0.35"),
           1, "no cell carries measurable stage columns")
    expect("budget-bad-spec", run(lean, lean, "--stage-budget", "t_crc=nan"),
           1, "bad --stage-budget")
    expect("budget-bad-stage", run(lean, lean, "--stage-budget", "seconds=0.5"),
           1, "bad --stage-budget")

    # Speedup gate with a backend filter: omp scales 2.0x, serial stays flat
    # (as it must — the serial rows never see the threads axis). Unfiltered,
    # the serial group fails the 1.3x bar; filtered to backend=omp it passes.
    threads_deck = deck("threads.json", [
        speedup_row("0", "serial", "1", "0.4000"),
        speedup_row("1", "serial", "4", "0.4000"),
        speedup_row("2", "omp", "1", "0.4000"),
        speedup_row("3", "omp", "4", "0.2000"),
    ])
    speedup_args = ("--speedup-axis", "threads", "--speedup-from", "1",
                    "--speedup-to", "4", "--speedup-min", "1.3")
    expect("speedup-unfiltered-fail", run(threads_deck, threads_deck, *speedup_args),
           1, "threads=4 does not beat =1")
    expect("speedup-filtered-pass",
           run(threads_deck, threads_deck, *speedup_args,
               "--speedup-filter", "backend=omp"),
           0, "speedup 2.00x")
    expect("speedup-filter-empty",
           run(threads_deck, threads_deck, *speedup_args,
               "--speedup-filter", "backend=cuda"),
           1, "no cells carry axis")
    expect("speedup-bad-filter",
           run(threads_deck, threads_deck, *speedup_args, "--speedup-filter", "omp"),
           1, "bad --speedup-filter")
    # Degraded mode: demanding more CPUs than any machine has must drop the
    # bar to the no-regression bound, which a flat serial group clears.
    expect("speedup-degraded",
           run(threads_deck, threads_deck, *speedup_args,
               "--speedup-procs", "100000"),
           0, "speedup gate degraded")
    # But an actual slowdown still fails even degraded.
    slow_deck = deck("slow.json", [
        speedup_row("0", "omp", "1", "0.2000"),
        speedup_row("1", "omp", "4", "0.4000"),
    ])
    expect("speedup-degraded-regression",
           run(slow_deck, slow_deck, *speedup_args, "--speedup-procs", "100000"),
           1, "does not beat")
    # Degraded metrics ratchet under their own name, leaving full-width
    # history untouched.
    dhist = os.path.join(tmp, "dhist.jsonl")
    proc = run(threads_deck, threads_deck, *speedup_args,
               "--speedup-filter", "backend=omp", "--speedup-procs", "100000",
               "--history", dhist)
    expect("speedup-degraded-history", proc, 0)
    with open(dhist) as f:
        drec = [json.loads(l) for l in f if l.strip()][-1]
    if not any(name.startswith("speedup:degraded:") for name in drec["metrics"]):
        problems.append(f"degraded metric name missing: {drec['metrics']}")

    # Corrupt history: line 3 (after a valid record and a skipped blank) must
    # be named file:3 in the error.
    hist = os.path.join(tmp, "hist.jsonl")
    with open(hist, "w") as f:
        f.write(json.dumps({"status": "ok", "metrics": {}}) + "\n")
        f.write("\n")
        f.write("{not json\n")
    expect("history-corrupt", run(lean, lean, "--history", hist),
           1, f"{hist}:3: corrupt history line")

    # Clean history appends a record carrying the stage metric.
    with open(hist, "w") as f:
        f.write(json.dumps({"status": "ok", "metrics": {}}) + "\n")
    expect("history-append",
           run(lean, lean, "--stage-budget", "t_crc=0.35", "--history", hist), 0)
    with open(hist) as f:
        lines = [json.loads(l) for l in f if l.strip()]
    if len(lines) != 2 or parse_float(lines[-1].get("metrics", {}).get("stage:t_crc")) is None:
        problems.append(f"history-append: stage metric not recorded: {lines}")
    # And the ratchet fires when the stage fraction balloons past best-known.
    expect("history-ratchet",
           run(fat, fat, "--stage-budget", "t_crc=0.60", "--history", hist),
           1, "history ratchet: stage:t_crc rose")

    shutil.rmtree(tmp, ignore_errors=True)
    if problems:
        print(f"bench_check --self-test: {len(problems)} failure(s):", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("bench_check --self-test OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
