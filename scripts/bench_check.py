#!/usr/bin/env python3
"""Perf-deck regression gate: compare a fresh BENCH_*.json against the
checked-in baseline and fail on regressions.

The pinned decks (scripts/bench_matrix.sh) are the perf trajectory; this turns
them from an uploaded artifact into a gate:

  bench_check.py CURRENT BASELINE                      # structural + overhead gate
  bench_check.py CURRENT BASELINE --speedup-axis ckpt_threads \
      --speedup-from 1 --speedup-to 4 --speedup-min 1.05
  bench_check.py CURRENT BASELINE --overhead-axis ckpt_async \
      --overhead-from 0 --overhead-to 1 --overhead-max 0.90

Checks, in order:
  1. Both decks hold the same cell set (same workload/mode/crash/axis keys).
  2. Every current cell reports status "ok".
  3. Normalized-overhead regressions: a cell's `normalized` may not exceed the
     baseline's by more than --tol (relative) AND --abs-floor (absolute) at
     once. Normalized values are machine-comparable; raw seconds are not.
     Cells faster than --min-seconds in either deck are skipped (noise).
  4. With --speedup-axis: within each cell group that differs only in that
     axis, seconds[axis=--speedup-to] must beat seconds[axis=--speedup-from]
     by at least --speedup-min (the "parallel durability must actually win"
     acceptance gate — self-relative, so it holds on any machine).
  5. With --overhead-axis: within each cell group that differs only in that
     axis, the *normalized overhead* (normalized - 1, i.e. the durability
     scheme's cost over native) at axis=--overhead-to must be at most
     --overhead-max times the overhead at axis=--overhead-from (the "async
     checkpointing must actually cut the overhead" acceptance gate —
     self-relative like the speedup gate, but measured against the native
     baseline so compute speed cancels out).
  6. With --history: every self-relative gate metric (speedup, overhead
     ratio) is appended to the given JSONL file, and each is ratcheted
     against the best clean value ever recorded there — a run may not be
     worse than the best-known by more than --ratchet-tol, even if it still
     clears the static gate. The history file is append-only; commit it so
     the trajectory rides along with the pinned decks.

Exit status: 0 clean, 1 regression(s), 2 usage/structural error.
"""

import argparse
import json
import os
import sys

# Columns that are measurements, not cell identity.
MEASUREMENT_COLS = {
    "cell", "units", "seconds", "normalized", "overhead", "lost", "partial",
    "corrected", "torn", "overlap", "detect/unit", "resume/unit",
    "victims", "epochs_rb", "replayed", "halo_kb", "status",
}


def load_deck(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_check: cannot read deck {path}: {e}")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"bench_check: {path} is not a non-empty JSON row array")
    return rows


def cell_key(row, axis_excluded=()):
    return tuple(sorted((k, v) for k, v in row.items()
                        if k not in MEASUREMENT_COLS and k not in axis_excluded))


def parse_float(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tol", type=float, default=0.5,
                    help="max relative normalized-overhead growth (default 0.5)")
    ap.add_argument("--abs-floor", type=float, default=0.75,
                    help="absolute normalized growth ignored below this (default 0.75)")
    ap.add_argument("--min-seconds", type=float, default=0.005,
                    help="skip normalized comparison for cells faster than this")
    ap.add_argument("--speedup-axis", default=None,
                    help="axis column for the self-relative speedup gate")
    ap.add_argument("--speedup-from", default="1")
    ap.add_argument("--speedup-to", default="4")
    ap.add_argument("--speedup-min", type=float, default=1.05)
    ap.add_argument("--overhead-axis", default=None,
                    help="axis column for the normalized-overhead ratio gate")
    ap.add_argument("--overhead-from", default="0")
    ap.add_argument("--overhead-to", default="1")
    ap.add_argument("--overhead-max", type=float, default=0.90,
                    help="max (normalized-1) ratio of --overhead-to vs --overhead-from")
    ap.add_argument("--history", default=None,
                    help="JSONL ratchet file: append this run's gate metrics and "
                         "fail any metric that regresses past --ratchet-tol of its "
                         "best-known clean value")
    ap.add_argument("--ratchet-tol", type=float, default=0.25,
                    help="allowed relative slack vs the best-known history value")
    args = ap.parse_args()
    # Gate metrics for the history ratchet: name -> (value, "higher"|"lower").
    metrics = {}

    current = load_deck(args.current)
    baseline = load_deck(args.baseline)

    cur_by_key = {cell_key(r): r for r in current}
    base_by_key = {cell_key(r): r for r in baseline}
    failures = []

    missing = sorted(set(base_by_key) - set(cur_by_key))
    extra = sorted(set(cur_by_key) - set(base_by_key))
    for key in missing:
        failures.append(f"cell disappeared from the deck: {dict(key)}")
    for key in extra:
        failures.append(f"unbaselined cell in the deck (re-pin the baseline): {dict(key)}")

    for key, row in sorted(cur_by_key.items()):
        if row.get("status") != "ok":
            failures.append(f"cell not ok ({row.get('status')!r}): {dict(key)}")

    for key, row in sorted(cur_by_key.items()):
        base = base_by_key.get(key)
        if base is None:
            continue
        cur_norm, base_norm = parse_float(row.get("normalized")), parse_float(base.get("normalized"))
        cur_s, base_s = parse_float(row.get("seconds")), parse_float(base.get("seconds"))
        if None in (cur_norm, base_norm, cur_s, base_s):
            continue
        if min(cur_s, base_s) < args.min_seconds:
            continue  # Sub-noise-floor cells cannot carry a verdict.
        if (cur_norm > base_norm * (1 + args.tol)
                and cur_norm - base_norm > args.abs_floor):
            failures.append(
                f"normalized regression {base_norm:.3f} -> {cur_norm:.3f} "
                f"(tol {args.tol:.0%} + {args.abs_floor}): {dict(key)}")

    if args.speedup_axis:
        axis = args.speedup_axis
        groups = {}
        for row in current:
            if axis not in row:
                continue
            groups.setdefault(cell_key(row, axis_excluded=(axis,)), {})[row[axis]] = row
        if not groups:
            failures.append(f"speedup gate: no cells carry axis '{axis}'")
        for gkey, by_axis in sorted(groups.items()):
            lo = by_axis.get(args.speedup_from)
            hi = by_axis.get(args.speedup_to)
            if lo is None or hi is None:
                failures.append(
                    f"speedup gate: {axis}={args.speedup_from}/{args.speedup_to} "
                    f"missing in group {dict(gkey)}")
                continue
            lo_s, hi_s = parse_float(lo.get("seconds")), parse_float(hi.get("seconds"))
            if lo_s is None or hi_s is None or hi_s <= 0:
                failures.append(f"speedup gate: unreadable seconds in group {dict(gkey)}")
                continue
            speedup = lo_s / hi_s
            gname = ";".join(f"{k}={v}" for k, v in gkey)
            metrics[f"speedup:{axis}:{args.speedup_from}->{args.speedup_to}:{gname}"] = (
                speedup, "higher")
            verdict = "ok" if speedup >= args.speedup_min else "FAIL"
            print(f"bench_check: {axis} {args.speedup_from}->{args.speedup_to} "
                  f"speedup {speedup:.2f}x (need >= {args.speedup_min:.2f}x) "
                  f"[{verdict}] {dict(gkey)}")
            if speedup < args.speedup_min:
                failures.append(
                    f"{axis}={args.speedup_to} does not beat ={args.speedup_from}: "
                    f"{lo_s:.4f}s -> {hi_s:.4f}s ({speedup:.2f}x) in {dict(gkey)}")

    if args.overhead_axis:
        axis = args.overhead_axis
        groups = {}
        for row in current:
            if axis not in row:
                continue
            groups.setdefault(cell_key(row, axis_excluded=(axis,)), {})[row[axis]] = row
        if not groups:
            failures.append(f"overhead gate: no cells carry axis '{axis}'")
        for gkey, by_axis in sorted(groups.items()):
            lo = by_axis.get(args.overhead_from)
            hi = by_axis.get(args.overhead_to)
            if lo is None or hi is None:
                failures.append(
                    f"overhead gate: {axis}={args.overhead_from}/{args.overhead_to} "
                    f"missing in group {dict(gkey)}")
                continue
            lo_n, hi_n = parse_float(lo.get("normalized")), parse_float(hi.get("normalized"))
            if lo_n is None or hi_n is None or lo_n <= 1.0:
                failures.append(
                    f"overhead gate: unusable normalized values "
                    f"({lo.get('normalized')!r} vs {hi.get('normalized')!r}; the deck "
                    f"must run with a native baseline and real durability overhead) "
                    f"in group {dict(gkey)}")
                continue
            ratio = (hi_n - 1.0) / (lo_n - 1.0)
            gname = ";".join(f"{k}={v}" for k, v in gkey)
            metrics[f"overhead:{axis}:{args.overhead_from}->{args.overhead_to}:{gname}"] = (
                ratio, "lower")
            verdict = "ok" if ratio <= args.overhead_max else "FAIL"
            print(f"bench_check: {axis} {args.overhead_from}->{args.overhead_to} "
                  f"overhead {lo_n - 1.0:.3f} -> {hi_n - 1.0:.3f} "
                  f"({ratio:.2f}x, need <= {args.overhead_max:.2f}x) "
                  f"[{verdict}] {dict(gkey)}")
            if ratio > args.overhead_max:
                failures.append(
                    f"{axis}={args.overhead_to} does not cut ={args.overhead_from}'s "
                    f"overhead to {args.overhead_max:.2f}x: {lo_n - 1.0:.3f} -> "
                    f"{hi_n - 1.0:.3f} ({ratio:.2f}x) in {dict(gkey)}")

    if args.history:
        records = []
        if os.path.exists(args.history):
            with open(args.history) as f:
                for line in f:
                    line = line.strip()
                    if line:
                        try:
                            records.append(json.loads(line))
                        except json.JSONDecodeError:
                            sys.exit(f"bench_check: corrupt history line in {args.history}")
        # Ratchet every gate metric against the best clean value on record.
        for name, (value, better) in sorted(metrics.items()):
            best = None
            for rec in records:
                if rec.get("status") != "ok":
                    continue
                past = parse_float(rec.get("metrics", {}).get(name))
                if past is None:
                    continue
                if best is None or (better == "higher") == (past > best):
                    best = past
            if best is None:
                continue
            if better == "higher" and value < best * (1 - args.ratchet_tol):
                failures.append(
                    f"history ratchet: {name} fell to {value:.3f} "
                    f"(best-known {best:.3f}, tol {args.ratchet_tol:.0%})")
            elif better == "lower" and value > best * (1 + args.ratchet_tol):
                failures.append(
                    f"history ratchet: {name} rose to {value:.3f} "
                    f"(best-known {best:.3f}, tol {args.ratchet_tol:.0%})")
        record = {
            "deck": os.path.basename(args.current),
            "baseline": os.path.basename(args.baseline),
            "cells": len(current),
            "status": "fail" if failures else "ok",
            "metrics": {name: value for name, (value, _) in sorted(metrics.items())},
        }
        with open(args.history, "a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")

    if failures:
        print(f"bench_check: {len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"bench_check OK: {len(current)} cells within tolerance of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
