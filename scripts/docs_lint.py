#!/usr/bin/env python3
"""Documentation lint: the docs/ tree must exist, cross-link soundly, and the
public headers must carry doc comments.

Three checks, run from anywhere (the repo root is derived from this file):

  1. docs/ tree: ARCHITECTURE.md, CRASH_GRAMMAR.md, SWEEP.md,
     OBSERVABILITY.md and BACKENDS.md exist, are non-trivial, and README.md
     links into docs/.
  2. Intra-docs links: every relative markdown link in README.md and the
     docs/ tree (the `[text](path)` form, optionally with a `#fragment`)
     must resolve to a file that exists — the docs cross-link heavily
     (README -> docs/*, BACKENDS <-> OBSERVABILITY <-> SWEEP), and a renamed
     file must not leave dangling references. External (scheme://) and
     pure-fragment links are out of scope.
  3. Public-header docs: every top-level `struct X {` / `class X {`
     definition in the PUBLIC_HEADERS list is immediately preceded by a
     comment line (`///` or `//`), so the API surface cannot silently grow
     undocumented types. Forward declarations (`class X;`) are exempt.

Exit status: 0 clean, 1 lint failure(s).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

REQUIRED_DOCS = [
    "docs/ARCHITECTURE.md",
    "docs/CRASH_GRAMMAR.md",
    "docs/SWEEP.md",
    "docs/OBSERVABILITY.md",
    "docs/BACKENDS.md",
]

# The files whose relative markdown links must resolve.
LINKED_DOCS = ["README.md", *REQUIRED_DOCS]

# The public API surface held to the struct/class doc-comment rule.
PUBLIC_HEADERS = [
    "src/core/workload.hpp",
    "src/core/sweep.hpp",
    "src/core/scenario.hpp",
    "src/core/fault.hpp",
    "src/core/harness.hpp",
    "src/core/modes.hpp",
    "src/core/shard.hpp",
    "src/core/coordinator.hpp",
    "src/core/telemetry.hpp",
    "src/checkpoint/backend.hpp",
    "src/checkpoint/chunk.hpp",
    "src/checkpoint/checkpoint_set.hpp",
    "src/checkpoint/codec.hpp",
    "src/checkpoint/write_pipeline.hpp",
    "src/kernels/backend.hpp",
    "src/kernels/threads.hpp",
]

DECL = re.compile(r"^(?:struct|class)\s+(\w+)")

# Markdown inline links; images share the form (the leading '!' is irrelevant
# to resolution). Reference-style links are not used in this docs tree.
MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_docs_tree(failures):
    for rel in REQUIRED_DOCS:
        path = ROOT / rel
        if not path.is_file():
            failures.append(f"{rel}: missing")
        elif len(path.read_text().splitlines()) < 10:
            failures.append(f"{rel}: suspiciously short (< 10 lines)")
    readme = ROOT / "README.md"
    if not readme.is_file():
        failures.append("README.md: missing")
    elif "docs/" not in readme.read_text():
        failures.append("README.md: does not link into docs/")


def check_links(rel, failures):
    path = ROOT / rel
    if not path.is_file():
        return  # check_docs_tree already reported it.
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for target in MD_LINK.findall(line):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            resolved = (path.parent / target.partition("#")[0]).resolve()
            if not resolved.exists():
                failures.append(f"{rel}:{lineno}: dangling link '{target}'")


def check_header(rel, failures):
    path = ROOT / rel
    if not path.is_file():
        failures.append(f"{rel}: missing")
        return
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        m = DECL.match(line)
        if not m:
            continue
        # Forward declarations and `};`-style continuations carry no body.
        stripped = line.strip()
        if stripped.endswith(";") and "{" not in stripped:
            continue
        prev = lines[i - 1].strip() if i > 0 else ""
        if not (prev.startswith("///") or prev.startswith("//")):
            failures.append(
                f"{rel}:{i + 1}: public type '{m.group(1)}' has no doc comment "
                f"on the preceding line")


def main():
    failures = []
    check_docs_tree(failures)
    for rel in LINKED_DOCS:
        check_links(rel, failures)
    for rel in PUBLIC_HEADERS:
        check_header(rel, failures)
    if failures:
        print(f"docs_lint: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"docs_lint OK: {len(REQUIRED_DOCS)} docs, "
          f"{len(PUBLIC_HEADERS)} public headers documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
