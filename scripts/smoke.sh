#!/usr/bin/env bash
# Quick smoke for CI: build, then exercise the full workload x mode cross-
# product at tiny sizes, crash-free and under two crash plans, plus a batched
# sweep deck run serially and on 4 workers whose csv output must match byte
# for byte (--no_timing blanks the wall-clock columns; everything else is
# deterministic). Equivalent to `ctest -L smoke` plus the repeated-crash pass.
# cwd-independent and fail-fast: the first failing command aborts the script
# with its exit code.
set -euo pipefail
cd "$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" >/dev/null

./build/adccbench --matrix --quick
./build/adccbench --matrix --quick --crash=step:2
./build/adccbench --matrix --quick --crash=repeat:2

# Serial vs parallel deck determinism (the sweep-engine acceptance check).
SWEEP="mode=all,n=300+600,crash=none+step:2+fuzz:5"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./build/adccbench --sweep="$SWEEP" --workload=cg --quick --no_timing \
  --format=csv >"$tmp/serial.csv"
./build/adccbench --sweep="$SWEEP" --workload=cg --quick --no_timing \
  --format=csv --sweep_jobs=4 >"$tmp/parallel.csv"
if ! cmp -s "$tmp/serial.csv" "$tmp/parallel.csv"; then
  echo "smoke.sh: serial and parallel sweep decks diverged:" >&2
  diff "$tmp/serial.csv" "$tmp/parallel.csv" >&2 || true
  exit 1
fi

echo "smoke OK"
