#!/usr/bin/env bash
# Quick smoke for CI: build, then exercise the full workload x mode cross-
# product at tiny sizes, crash-free and under two crash plans. Equivalent to
# `ctest -L smoke` plus a repeated-crash pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" >/dev/null

./build/adccbench --matrix --quick
./build/adccbench --matrix --quick --crash=step:2
./build/adccbench --matrix --quick --crash=repeat:2

echo "smoke OK"
