#!/usr/bin/env python3
"""Run a tiny deck with --trace and validate the Chrome trace JSON.

The smoke.trace ctest drives this: it executes adccbench with a checkpointing
cell plus a crash so the trace must contain stage scopes on per-cell tracks
AND crash/recovery instant events, then checks the file parses as the Chrome
trace_event array format chrome://tracing and Perfetto accept.

Usage:
    check_trace.py --bin PATH/TO/adccbench [--keep]
    check_trace.py --validate TRACE.json   # just validate an existing file
"""

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path


def validate(path):
    """Validates one trace file.

    Returns (problems, tracks, phases, names): human-readable problems plus
    the track labels, event phases, and event names seen.
    """
    problems = []
    tracks, phases, names = set(), set(), set()
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: not parseable JSON: {e}"], tracks, phases, names

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents array"], tracks, phases, names
    if not events:
        problems.append(f"{path}: traceEvents is empty")

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"{path}: event {i} is not an object")
            continue
        ph = ev.get("ph")
        phases.add(ph)
        if ph not in ("M", "X", "i"):
            problems.append(f"{path}: event {i} has unexpected ph={ph!r}")
        if ph == "M":
            if ev.get("name") == "thread_name":
                tracks.add(ev.get("args", {}).get("name"))
            continue
        names.add(ev.get("name"))
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"{path}: event {i} has no numeric ts")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            problems.append(f"{path}: complete event {i} has no numeric dur")
    return problems, tracks, phases, names


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin", help="adccbench binary to drive")
    ap.add_argument("--validate", help="validate an existing trace file and exit")
    ap.add_argument("--keep", action="store_true", help="print the trace path, don't delete it")
    args = ap.parse_args()

    if args.validate:
        problems, _, _, _ = validate(args.validate)
        for p in problems:
            print(f"check_trace: {p}", file=sys.stderr)
        if problems:
            sys.exit(1)
        print(f"check_trace: OK ({args.validate})")
        return

    if not args.bin:
        ap.error("--bin or --validate is required")

    tmpdir = tempfile.mkdtemp(prefix="adcc_trace.")
    trace = Path(tmpdir) / "trace.json"
    # A checkpointing mode (stage/crc/queue scopes), a crash (instant events),
    # and --no_timing to prove --trace alone keeps telemetry alive.
    cmd = [
        args.bin,
        "--workload=cg", "--mode=ckpt-nvm", "--crash=step:2",
        "--quick", "--n=300", "--iters=4", "--no_baseline", "--no_timing",
        "--format=csv", f"--trace={trace}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"check_trace: deck failed ({proc.returncode}):\n{proc.stderr}", file=sys.stderr)
        sys.exit(1)

    problems, tracks, phases, names = validate(trace)
    if not any(t and t.startswith("cell") for t in tracks):
        problems.append("no per-cell track (thread_name metadata) found")
    if "X" not in phases:
        problems.append("no stage scope (ph=X) events")
    if "crash" not in names or "recovered" not in names:
        problems.append(f"missing crash/recovered instants (got {sorted(names)[:8]})")
    if not any(n and n.startswith("ckpt/") for n in names):
        problems.append("no ckpt/* stage scopes recorded")
    for p in problems:
        print(f"check_trace: {p}", file=sys.stderr)
    if problems:
        sys.exit(1)
    if args.keep:
        print(f"check_trace: OK, trace kept at {trace}")
    else:
        shutil.rmtree(tmpdir, ignore_errors=True)
        print(f"check_trace: OK ({len(tracks)} tracks)")


if __name__ == "__main__":
    main()
