#!/usr/bin/env bash
# Deterministic crash-fuzz sweep: every workload x all seven modes x a range of
# fuzz seeds. Each seed lands one mid-unit crash at a seeded random access
# inside a seeded random work unit (see parse_crash's fuzz:SEED plan); the run
# must recover and verify in every mode or adccbench exits non-zero. Non-sim
# workloads run a second deck per seed under --ckpt_async=1 covering the
# asynchronous-drain crash families (ckpt_drain / ckpt_stage), and a third
# under --shards=4 covering the shard-scoped families (a fuzzed single-shard
# kill and a coordinator kill mid-global-commit).
#
#   scripts/fuzz.sh                         # build + 20 seeds, quick sizes
#   scripts/fuzz.sh --seeds 5 --start 100   # seeds 100..104
#   scripts/fuzz.sh --bin ./build/adccbench --no-build
#   scripts/fuzz.sh --full                  # nightly sizes (no --quick)
#   scripts/fuzz.sh --workloads cg,cg-sim,mm-sim,mc-sim   # widen to *-sim
#
# Each (workload, seed) pair is one adccbench sweep deck over mode=all, so the
# whole seed range is a handful of processes. cwd-independent and fail-fast:
# the first failing sweep aborts the script with that sweep's exit code and a
# pointer at the failing scenario.
#
# CTest runs a 2-seed slice under the "fuzz" label (kept out of "smoke" so
# tier-1 smoke time stays flat): ctest -L fuzz
set -euo pipefail
cd "$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)/.."

BIN=""
SEEDS=20
START=1
WORKLOADS="cg mm mc"
BUILD=1
QUICK="--quick"
JOBS="${ADCC_SWEEP_JOBS:-1}"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --seeds) SEEDS="$2"; shift 2 ;;
    --start) START="$2"; shift 2 ;;
    --workloads) WORKLOADS="${2//,/ }"; shift 2 ;;
    --jobs) JOBS="$2"; shift 2 ;;
    --no-build) BUILD=0; shift ;;
    --full) QUICK=""; shift ;;
    *) echo "fuzz.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if [[ -z "$BIN" ]]; then
  if [[ "$BUILD" -eq 1 ]]; then
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target adccbench >/dev/null
  fi
  BIN=./build/adccbench
fi

runs=0
for workload in $WORKLOADS; do
  # The *-sim workloads ignore the mode axis (the simulator fixes the
  # durability scheme), so fuzzing them across all seven modes would run one
  # scenario seven times.
  mode="all"
  [[ "$workload" == *-sim ]] && mode="native"
  # Three crash families per seed, one in-process deck (cells of one shape
  # share a single fuzz probe): the classic mid-unit fuzz crash, the same
  # crash followed by a second fault inside the recovery (ckpt_restore fires
  # in checkpoint modes; elsewhere the armed tail is disarmed harmlessly),
  # and a crash mid-checkpoint-save (ckpt_chunk, checkpoint modes only —
  # crash-free elsewhere, which must also stay green).
  for ((seed = START; seed < START + SEEDS; ++seed)); do
    crash="fuzz:$seed+fuzz:$seed^point:ckpt_restore:1+point:ckpt_chunk:$((seed % 7 + 1))"
    echo "fuzz: workload=$workload seed=$seed"
    rc=0
    "$BIN" --workload="$workload" --mode="$mode" --sweep="crash=$crash" \
      --sweep_jobs="$JOBS" --no_baseline $QUICK >/dev/null || rc=$?
    if [[ "$rc" -ne 0 ]]; then
      echo "fuzz.sh: FAILED at workload=$workload seed=$seed (exit $rc); reproduce with:" >&2
      echo "  $BIN --workload=$workload --mode=$mode --sweep='crash=$crash' --no_baseline $QUICK" >&2
      exit "$rc"
    fi
    runs=$((runs + 1))
  done

  # Silent-corruption deck (flip:SEED[:BITS], non-sim workloads — the *-sim
  # adapters expose no corrupt() sites, so a flip would be a guaranteed
  # no-op): each seed lands one seeded bit-flip WITHOUT raising, a multi-bit
  # variant stresses the bit-position stream, and a flip^ckpt_chunk chain
  # composes the silent head with a fail-stop tail killing the next
  # checkpoint save. Every outcome the classifier knows — detected and
  # corrected in place, detected and rolled back, honest silent miss — counts
  # as ok; only a detected-and-rolled-back run that still fails verify (a
  # broken recovery path) or an ERROR cell fails the deck.
  if [[ "$workload" != *-sim ]]; then
    for ((seed = START; seed < START + SEEDS; ++seed)); do
      crash="flip:$seed+flip:$seed:$((seed % 3 + 2))+flip:$seed^point:ckpt_chunk:$((seed % 4 + 1))"
      echo "fuzz: workload=$workload seed=$seed (flip)"
      rc=0
      "$BIN" --workload="$workload" --mode="$mode" --sweep="crash=$crash" \
        --sweep_jobs="$JOBS" --no_baseline $QUICK >/dev/null || rc=$?
      if [[ "$rc" -ne 0 ]]; then
        echo "fuzz.sh: FAILED at workload=$workload seed=$seed flip deck (exit $rc); reproduce with:" >&2
        echo "  $BIN --workload=$workload --mode=$mode --sweep='crash=$crash' --no_baseline $QUICK" >&2
        exit "$rc"
      fi
      runs=$((runs + 1))
    done
  fi

  # Asynchronous-checkpointing families (--ckpt_async=1; the *-sim workloads
  # fix their own durability scheme and never reach the async engine, so they
  # skip this deck): a mid-unit fuzz crash landing while a drain may be in
  # flight (the abort-the-drain-then-classify-the-torn-slot path), a crash
  # inside the background drain itself (ckpt_drain — surfaces at the join),
  # a crash between stage and drain start (ckpt_stage — must leave the
  # previous checkpoint untouched), a crash inside the per-chunk codec pass
  # (ckpt_compress — fires on the pipeline workers, mid-slot), and a crash at
  # ring admission (ring_stage — fires once per save when the staging ring is
  # deeper than one). The deck arms the whole v3 write path: compression on,
  # a depth-2 staging ring, and dirty-chunk commit with its salvage-capable
  # restore. All sites are crash-free no-ops outside checkpoint modes, which
  # must also stay green.
  if [[ "$workload" != *-sim ]]; then
    for ((seed = START; seed < START + SEEDS; ++seed)); do
      crash="fuzz:$seed+point:ckpt_drain:$((seed % 7 + 1))+point:ckpt_stage:$((seed % 5 + 1))+point:ckpt_compress:$((seed % 6 + 1))+point:ring_stage:$((seed % 3 + 1))"
      echo "fuzz: workload=$workload seed=$seed (ckpt_async)"
      rc=0
      "$BIN" --workload="$workload" --mode="$mode" --ckpt_async=1 --ckpt_compress=lz \
        --ckpt_async_depth=2 --ckpt_dirty_commit=1 --sweep="crash=$crash" \
        --sweep_jobs="$JOBS" --no_baseline $QUICK >/dev/null || rc=$?
      if [[ "$rc" -ne 0 ]]; then
        echo "fuzz.sh: FAILED at workload=$workload seed=$seed ckpt_async=1 (exit $rc); reproduce with:" >&2
        echo "  $BIN --workload=$workload --mode=$mode --ckpt_async=1 --ckpt_compress=lz --ckpt_async_depth=2 --ckpt_dirty_commit=1 --sweep='crash=$crash' --no_baseline $QUICK" >&2
        exit "$rc"
      fi
      runs=$((runs + 1))
    done

    # Multi-shard crash families under a 4-shard group: a seeded mid-unit
    # fuzz crash scoped to shard 0 only (survivors keep computing, the victim
    # restores its own slot and replays its delta) plus a coordinator kill at
    # the global-commit point. Non-checkpoint modes fall back to the
    # single-rank engine where the scopes degenerate to process scope — that
    # degradation must stay green too.
    for ((seed = START; seed < START + SEEDS; ++seed)); do
      crash="shard:0:fuzz:$seed+coord:point:global_commit"
      echo "fuzz: workload=$workload seed=$seed (shards=4)"
      rc=0
      "$BIN" --workload="$workload" --mode="$mode" --shards=4 --sweep="crash=$crash" \
        --sweep_jobs="$JOBS" --no_baseline $QUICK >/dev/null || rc=$?
      if [[ "$rc" -ne 0 ]]; then
        echo "fuzz.sh: FAILED at workload=$workload seed=$seed shards=4 (exit $rc); reproduce with:" >&2
        echo "  $BIN --workload=$workload --mode=$mode --shards=4 --sweep='crash=$crash' --no_baseline $QUICK" >&2
        exit "$rc"
      fi
      runs=$((runs + 1))
    done
  fi
done

echo "fuzz OK ($runs sweeps, mode=all per non-sim workload)"
