#!/usr/bin/env bash
# Deterministic crash-fuzz sweep: every workload x all seven modes x a range of
# fuzz seeds. Each seed lands one mid-unit crash at a seeded random access
# inside a seeded random work unit (see parse_crash's fuzz:SEED plan); the run
# must recover and verify in every mode or adccbench exits non-zero.
#
#   scripts/fuzz.sh                         # build + 20 seeds, quick sizes
#   scripts/fuzz.sh --seeds 5 --start 100   # seeds 100..104
#   scripts/fuzz.sh --bin ./build/adccbench --no-build
#
# CTest runs a 2-seed slice under the "fuzz" label (kept out of "smoke" so
# tier-1 smoke time stays flat): ctest -L fuzz
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=""
SEEDS=20
START=1
WORKLOADS="cg mm mc"
BUILD=1
QUICK="--quick"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --seeds) SEEDS="$2"; shift 2 ;;
    --start) START="$2"; shift 2 ;;
    --workloads) WORKLOADS="${2//,/ }"; shift 2 ;;
    --no-build) BUILD=0; shift ;;
    --full) QUICK=""; shift ;;
    *) echo "fuzz.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
done

if [[ -z "$BIN" ]]; then
  if [[ "$BUILD" -eq 1 ]]; then
    cmake -B build -S . >/dev/null
    cmake --build build -j "$(nproc)" --target adccbench >/dev/null
  fi
  BIN=./build/adccbench
fi

runs=0
for workload in $WORKLOADS; do
  for ((seed = START; seed < START + SEEDS; ++seed)); do
    echo "fuzz: workload=$workload seed=$seed"
    "$BIN" --workload="$workload" --mode=all --crash="fuzz:$seed" \
      --no_baseline $QUICK >/dev/null
    runs=$((runs + 1))
  done
done

echo "fuzz OK ($runs sweeps x 7 modes)"
