// Unit tests for adcc::common — alignment, RNG, statistics, options, checks.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/align.hpp"
#include "common/check.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"

namespace adcc {
namespace {

TEST(RoundUp, ExactMultipleUnchanged) { EXPECT_EQ(round_up(128, 64), 128u); }
TEST(RoundUp, RoundsUpwards) { EXPECT_EQ(round_up(129, 64), 192u); }
TEST(RoundUp, ZeroStaysZero) { EXPECT_EQ(round_up(0, 64), 0u); }

TEST(LineOf, MasksLowBits) {
  auto p = reinterpret_cast<const void*>(0x1234);
  EXPECT_EQ(line_of(p), 0x1200u);
}

TEST(LinesSpanned, EmptyRangeIsZero) {
  int x = 0;
  EXPECT_EQ(lines_spanned(&x, 0), 0u);
}

TEST(LinesSpanned, SingleByteIsOneLine) {
  alignas(64) char buf[128] = {};
  EXPECT_EQ(lines_spanned(buf, 1), 1u);
}

TEST(LinesSpanned, StraddlingRangeCountsBothLines) {
  alignas(64) char buf[128] = {};
  EXPECT_EQ(lines_spanned(buf + 60, 8), 2u);
}

TEST(LinesSpanned, FullAlignedRange) {
  alignas(64) char buf[256] = {};
  EXPECT_EQ(lines_spanned(buf, 256), 4u);
}

TEST(AlignedBuffer, ZeroInitialized) {
  AlignedBuffer b(200);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b.data()[i], std::byte{0});
}

TEST(AlignedBuffer, CacheLineAligned) {
  AlignedBuffer b(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLine, 0u);
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer a(64);
  a.data()[0] = std::byte{42};
  AlignedBuffer b(a);
  a.data()[0] = std::byte{7};
  EXPECT_EQ(b.data()[0], std::byte{42});
}

TEST(AlignedBuffer, CopyAssignIsDeep) {
  AlignedBuffer a(64);
  a.data()[0] = std::byte{42};
  AlignedBuffer b;
  b = a;
  EXPECT_EQ(b.data()[0], std::byte{42});
  EXPECT_EQ(b.size(), 64u);
}

TEST(AlignedBuffer, MovedFromIsEmpty) {
  AlignedBuffer a(64);
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.size(), 64u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): defined behaviour here.
}

TEST(AlignedArray, SizeAndIndexing) {
  AlignedArray<double> a(10);
  EXPECT_EQ(a.size(), 10u);
  a[3] = 2.5;
  EXPECT_DOUBLE_EQ(a[3], 2.5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % kCacheLine, 0u);
}

TEST(SplitMix, DeterministicBySeed) {
  SplitMix64 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SplitMix, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(SplitMix, DoublesInUnitInterval) {
  SplitMix64 a(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = a.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix, NextBelowRespectsBound) {
  SplitMix64 a(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(a.next_below(13), 13u);
}

TEST(SplitMix, NextBelowZeroBoundThrows) {
  SplitMix64 a(7);
  EXPECT_THROW(a.next_below(0), ContractViolation);
}

TEST(SplitMix, NextBelowCoversRange) {
  SplitMix64 a(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(a.next_below(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(CounterRng, PureFunctionOfCounter) {
  CounterRng r(1234);
  EXPECT_EQ(r.u64(7), r.u64(7));
  EXPECT_EQ(r.uniform(42, 1), r.uniform(42, 1));
}

TEST(CounterRng, LanesAreIndependentStreams) {
  CounterRng r(1234);
  EXPECT_NE(r.u64(7, 0), r.u64(7, 1));
}

TEST(CounterRng, OrderIndependence) {
  CounterRng r(55);
  const auto late = r.u64(1000);
  const auto early = r.u64(1);
  CounterRng r2(55);
  EXPECT_EQ(r2.u64(1), early);
  EXPECT_EQ(r2.u64(1000), late);
}

TEST(CounterRng, UniformRoughlyUniform) {
  CounterRng r(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.uniform(static_cast<std::uint64_t>(i));
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Median, OddCount) { EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0); }
TEST(Median, EvenCountAverages) { EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5); }
TEST(Median, EmptyIsZero) { EXPECT_DOUBLE_EQ(median({}), 0.0); }

TEST(RelDiff, SymmetricAndScaled) {
  EXPECT_NEAR(rel_diff(100.0, 101.0), 1.0 / 101.0, 1e-12);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=128", "--quick", "--ratio=2.5"};
  Options o(4, const_cast<char**>(argv));
  EXPECT_EQ(o.get_int("n", 0), 128);
  EXPECT_TRUE(o.get_bool("quick"));
  EXPECT_DOUBLE_EQ(o.get_double("ratio", 0), 2.5);
  EXPECT_FALSE(o.has("absent"));
  EXPECT_EQ(o.get("absent", "dflt"), "dflt");
}

TEST(Options, MalformedArgumentThrows) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Options(2, const_cast<char**>(argv)), ContractViolation);
}

TEST(Options, FalseyBoolValues) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=off", "--d=no", "--e=on"};
  Options o(6, const_cast<char**>(argv));
  EXPECT_FALSE(o.get_bool("a"));
  EXPECT_FALSE(o.get_bool("b"));
  EXPECT_FALSE(o.get_bool("c"));
  EXPECT_FALSE(o.get_bool("d"));
  EXPECT_TRUE(o.get_bool("e"));
}

TEST(ParseSize, PlainNumbersAndBinarySuffixes) {
  EXPECT_EQ(parse_size("0"), 0u);
  EXPECT_EQ(parse_size("123"), 123u);
  EXPECT_EQ(parse_size("123B"), 123u);
  EXPECT_EQ(parse_size("4k"), 4096u);
  EXPECT_EQ(parse_size("4K"), 4096u);
  EXPECT_EQ(parse_size("64M"), 64u << 20);
  EXPECT_EQ(parse_size("64MB"), 64u << 20);
  EXPECT_EQ(parse_size("1G"), 1u << 30);
  EXPECT_EQ(parse_size("2T"), std::size_t{2} << 40);
}

TEST(ParseSize, RejectsMalformedAndOverflowing) {
  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("x").has_value());
  EXPECT_FALSE(parse_size("12Q").has_value());
  EXPECT_FALSE(parse_size("12MM").has_value());
  EXPECT_FALSE(parse_size("99999999999999999999").has_value());
  EXPECT_FALSE(parse_size("18446744073709551615G").has_value());  // Overflow.
}

TEST(Options, GetSizeParsesSuffixes) {
  const char* argv[] = {"prog", "--arena=64M", "--n=1500"};
  Options o(3, const_cast<char**>(argv));
  EXPECT_EQ(o.get_size("arena", 0), 64u << 20);
  EXPECT_EQ(o.get_size("n", 0), 1500u);
  EXPECT_EQ(o.get_size("absent", 42), 42u);
}

TEST(Options, GetSizeThrowsOnMalformedValue) {
  const char* argv[] = {"prog", "--arena=lots"};
  Options o(2, const_cast<char**>(argv));
  EXPECT_THROW(o.get_size("arena", 0), ContractViolation);
}

TEST(Options, HelpTextGeneratedFromRegisteredKeys) {
  Options o;
  o.doc("n", "problem size", "128").doc("quick", "CI-sized run");
  const std::string help = o.help_text("prog");
  EXPECT_NE(help.find("usage: prog"), std::string::npos);
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("problem size"), std::string::npos);
  EXPECT_NE(help.find("(default: 128)"), std::string::npos);
  EXPECT_NE(help.find("--quick"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(Options, MaybePrintHelpOnlyWhenRequested) {
  const char* argv[] = {"prog", "--help"};
  Options with(2, const_cast<char**>(argv));
  testing::internal::CaptureStdout();
  EXPECT_TRUE(with.maybe_print_help("prog"));
  EXPECT_NE(testing::internal::GetCapturedStdout().find("usage:"), std::string::npos);
  Options without;
  EXPECT_FALSE(without.maybe_print_help("prog"));
}

TEST(Check, ThrowsWithExpression) {
  try {
    ADCC_CHECK(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::strstr(e.what(), "1 == 2"), nullptr);
    EXPECT_NE(std::strstr(e.what(), "math broke"), nullptr);
  }
}

TEST(Timer, ElapsedIsMonotonic) {
  Timer t;
  const double a = t.elapsed();
  const double b = t.elapsed();
  EXPECT_GE(b, a);
}

TEST(Timer, SpinForWaitsAtLeast) {
  Timer t;
  spin_for(0.002);
  EXPECT_GE(t.elapsed(), 0.0018);
}

TEST(PhaseTimer, AccumulatesAcrossWindows) {
  PhaseTimer p;
  p.start();
  spin_for(0.001);
  p.stop();
  const double first = p.total();
  p.start();
  spin_for(0.001);
  p.stop();
  EXPECT_GT(p.total(), first);
  p.clear();
  EXPECT_DOUBLE_EQ(p.total(), 0.0);
}

}  // namespace
}  // namespace adcc
