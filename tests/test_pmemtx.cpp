// Unit tests for the undo-log transaction system.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "pmemtx/tx.hpp"

namespace adcc::pmemtx {
namespace {

nvm::PerfModel& model() {
  static nvm::PerfModel m(
      nvm::PerfConfig{.dram_bw_bytes_per_s = 10e9, .bandwidth_slowdown = 1.0, .enabled = false});
  return m;
}

TEST(PersistentHeap, AllocationsComeFromArena) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto s = h.allocate<double>(8);
  EXPECT_TRUE(h.contains(s.data()));
}

TEST(UndoLog, CommitKeepsNewValues) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(4);
  UndoLog log(h);
  log.begin();
  log.add_range(v.data(), v.size_bytes());
  v[0] = 10.0;
  log.commit();
  EXPECT_DOUBLE_EQ(v[0], 10.0);
  EXPECT_EQ(log.stats().commits, 1u);
}

TEST(UndoLog, AbortRestoresOldValues) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(4);
  v[1] = 5.0;
  UndoLog log(h);
  log.begin();
  log.add_range(v.data(), v.size_bytes());
  v[1] = 99.0;
  log.abort();
  EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(UndoLog, RecoverRollsBackUncommittedTx) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(4);
  v[0] = 1.0;
  UndoLog log(h);
  log.begin();
  log.add_range(v.data(), v.size_bytes());
  v[0] = 2.0;
  // Simulated restart: the process dies without commit; a fresh recovery pass
  // over the (persistent) log must undo the update.
  const std::size_t rolled = log.recover();
  EXPECT_EQ(rolled, 1u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_FALSE(log.in_tx());
}

TEST(UndoLog, RecoverOnCleanLogIsNoop) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  UndoLog log(h);
  EXPECT_EQ(log.recover(), 0u);
}

TEST(UndoLog, ReverseOrderRollbackForOverlappingSnapshots) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(2);
  v[0] = 1.0;
  UndoLog log(h);
  log.begin();
  log.add_range(v.data(), sizeof(double));  // snapshot: 1.0
  v[0] = 2.0;
  log.add_range(v.data(), sizeof(double));  // snapshot: 2.0
  v[0] = 3.0;
  log.abort();  // must apply 2.0 then 1.0
  EXPECT_DOUBLE_EQ(v[0], 1.0);
}

TEST(UndoLog, NestedBeginThrows) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  UndoLog log(h);
  log.begin();
  EXPECT_THROW(log.begin(), ContractViolation);
}

TEST(UndoLog, AddRangeOutsideTxThrows) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(1);
  UndoLog log(h);
  EXPECT_THROW(log.add_range(v.data(), 8), ContractViolation);
}

TEST(UndoLog, AddRangeOutsideHeapThrows) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  UndoLog log(h);
  log.begin();
  double x = 0;
  EXPECT_THROW(log.add_range(&x, sizeof(x)), ContractViolation);
}

TEST(UndoLog, LogExhaustionThrows) {
  PersistentHeap h(1u << 16, 4 * kCacheLine, model());
  auto v = h.allocate<double>(512);
  UndoLog log(h);
  log.begin();
  EXPECT_THROW(log.add_range(v.data(), v.size_bytes()), ContractViolation);
}

TEST(UndoLog, StatsTrackLoggedBytes) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(16);
  UndoLog log(h);
  log.begin();
  log.add_range(v.data(), 128);
  log.commit();
  EXPECT_EQ(log.stats().ranges_logged, 1u);
  EXPECT_EQ(log.stats().bytes_logged, 128u);
  EXPECT_EQ(log.stats().transactions, 1u);
}

TEST(Transaction, RaiiAbortsOnScopeExit) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(1);
  v[0] = 7.0;
  UndoLog log(h);
  {
    Transaction tx(log);
    tx.add(v);
    v[0] = 8.0;
    // No commit: destructor must roll back (exception-safety path).
  }
  EXPECT_DOUBLE_EQ(v[0], 7.0);
  EXPECT_EQ(log.stats().aborts, 1u);
}

TEST(Transaction, CommitSticksThroughScopeExit) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(1);
  UndoLog log(h);
  {
    Transaction tx(log);
    tx.add(v);
    v[0] = 8.0;
    tx.commit();
  }
  EXPECT_DOUBLE_EQ(v[0], 8.0);
}

TEST(Transaction, TransactionalStoreHelper) {
  PersistentHeap h(1u << 16, 1u << 16, model());
  auto v = h.allocate<double>(1);
  UndoLog log(h);
  Transaction tx(log);
  tx.store(v[0], 4.5);
  tx.commit();
  EXPECT_DOUBLE_EQ(v[0], 4.5);
}

TEST(Transaction, SequentialTransactionsReuseLog) {
  PersistentHeap h(1u << 20, 1u << 18, model());
  auto v = h.allocate<double>(64);
  UndoLog log(h);
  for (int it = 0; it < 50; ++it) {
    Transaction tx(log);
    tx.add(v);
    for (auto& x : v) x += 1.0;
    tx.commit();
  }
  EXPECT_DOUBLE_EQ(v[0], 50.0);
  EXPECT_EQ(log.stats().transactions, 50u);
}

}  // namespace
}  // namespace adcc::pmemtx
