// Cross-module integration tests: every algorithm × crash × recovery path
// produces results identical (or numerically equal) to an uncrashed run, and
// the seven-mode environments execute the real workloads end to end.
#include <gtest/gtest.h>

#include "core/adcc.hpp"

namespace adcc {
namespace {

nvm::PerfModel& model() {
  static nvm::PerfModel m(
      nvm::PerfConfig{.dram_bw_bytes_per_s = 10e9, .bandwidth_slowdown = 1.0, .enabled = false});
  return m;
}

TEST(Integration, CgCrashRecoveryMatchesGoldenAcrossAllSchemes) {
  const std::size_t n = 500, iters = 8;
  const auto a = linalg::make_spd(n, 9, 3);
  const auto b = linalg::make_rhs(n, 4);
  const auto golden = cg::cg_solve(a, b, iters);

  // Algorithm-directed with mid-run crash.
  cg::CgCcConfig cfg;
  cfg.n_iters = iters;
  cfg.cache.ways = 8;
  cfg.cache.size_bytes = 128u << 10;
  cg::CgCrashConsistent cc(a, b, cfg);
  cc.sim().scheduler().arm_at_point(cg::CgCrashConsistent::kPointPUpdated, 5);
  ASSERT_TRUE(cc.run());
  cc.recover_and_resume();
  cc.finish();
  EXPECT_LT(linalg::max_abs_diff(cc.solution(), golden.x), 1e-9);

  // Checkpoint resume.
  nvm::NvmRegion region(16u << 20, model());
  checkpoint::NvmBackend backend(region, 2u << 20);
  cg::run_cg_checkpointed(a, b, 5, backend);  // Crash after 5 iterations.
  const auto resumed = cg::resume_cg_checkpointed(a, b, iters, backend);
  EXPECT_LT(linalg::max_abs_diff(resumed.x, golden.x), 1e-12);

  // Transactional.
  pmemtx::PersistentHeap heap(cg::cg_tx_data_bytes(n), cg::cg_tx_log_bytes(n), model());
  const auto tx = cg::run_cg_tx(a, b, iters, heap);
  EXPECT_LT(linalg::max_abs_diff(tx.cg.x, golden.x), 1e-12);
}

TEST(Integration, MmAllVariantsAgreeUnderCrash) {
  const std::size_t n = 64, k = 16;
  linalg::Matrix a(n, n), b(n, n), golden(n, n);
  a.fill_random(10, -1, 1);
  b.fill_random(11, -1, 1);
  linalg::gemm_reference(a, b, golden);

  mm::MmCcConfig cfg;
  cfg.n = n;
  cfg.rank_k = k;
  cfg.cache.ways = 4;
  cfg.cache.size_bytes = 32u << 10;
  mm::MmCrashConsistent mmcc(a, b, cfg);
  mmcc.sim().scheduler().arm_at_point(mm::MmCrashConsistent::kPointMultEnd, 3);
  ASSERT_TRUE(mmcc.run());
  mmcc.recover_and_resume();
  EXPECT_LT(linalg::Matrix::max_abs_diff(mmcc.result(), golden), 1e-10);

  nvm::NvmRegion region(16u << 20, model());
  checkpoint::NvmBackend backend(region, 1u << 20);
  const auto ck = mm::run_mm_checkpointed(a, b, k, backend);
  EXPECT_LT(linalg::Matrix::max_abs_diff(ck.c, golden), 1e-10);

  pmemtx::PersistentHeap heap(mm::mm_tx_data_bytes(n), mm::mm_tx_log_bytes(n), model());
  const auto tx = mm::run_mm_tx(a, b, k, heap);
  EXPECT_LT(linalg::Matrix::max_abs_diff(tx.c, golden), 1e-10);

  nvm::NvmRegion region2(mm::mm_cc_native_arena_bytes(n, k), model());
  const auto native = mm::run_mm_cc_native(a, b, k, region2);
  EXPECT_LT(linalg::Matrix::max_abs_diff(native.c, golden), 1e-10);
}

TEST(Integration, XsCrashRecoveryExactUnderSelectiveFlushing) {
  mc::XsConfig dc;
  dc.n_nuclides = 10;
  dc.gridpoints_per_nuclide = 128;
  dc.seed = 2;
  const mc::XsDataHost data(dc);

  mc::XsCcConfig cfg;
  cfg.total_lookups = 3000;
  cfg.policy = mc::XsFlushPolicy::kSelective;
  cfg.flush_interval = 30;
  cfg.cache.ways = 4;
  cfg.cache.size_bytes = 32u << 10;
  cfg.rng_seed = 5;

  mc::XsCrashConsistent nocrash(data, cfg);
  ASSERT_FALSE(nocrash.run());

  mc::XsCrashConsistent crashed(data, cfg);
  crashed.sim().scheduler().arm_at_point(mc::XsCrashConsistent::kPointLookupEnd, 300);
  ASSERT_TRUE(crashed.run());
  crashed.recover_and_resume();
  EXPECT_EQ(crashed.tally().counts, nocrash.tally().counts);
}

TEST(Integration, CheckpointModesRunCgEndToEnd) {
  const std::size_t n = 300, iters = 4;
  const auto a = linalg::make_spd(n, 7, 8);
  const auto b = linalg::make_rhs(n, 9);
  const auto golden = cg::cg_solve(a, b, iters);

  core::ModeEnvConfig ec;
  ec.arena_bytes = 8u << 20;
  ec.slot_bytes = 2u << 20;
  ec.dram_cache_bytes = 1u << 20;
  ec.disk_throttle_bytes_per_s = 0;  // Fast test: no HDD emulation.
  ec.scratch_dir = std::filesystem::temp_directory_path() / "adcc_integration";

  for (core::Mode m : {core::Mode::kCkptDisk, core::Mode::kCkptNvm, core::Mode::kCkptHetero}) {
    core::ModeEnv env = core::make_env(m, ec);
    ASSERT_NE(env.backend, nullptr) << core::mode_name(m);
    const auto res = cg::run_cg_checkpointed(a, b, iters, *env.backend);
    EXPECT_LT(linalg::max_abs_diff(res.cg.x, golden.x), 1e-12) << core::mode_name(m);
  }
}

TEST(Integration, HeteroCheckpointChargesNvmBandwidth) {
  // The hetero mode must charge the NVM bandwidth gap for the same checkpoint
  // traffic — the cost structure behind Fig. 4's middle bars. Asserted on the
  // perf model's deterministic injected-delay accounting, not noisy wall time.
  const std::size_t n = 20000, iters = 3;
  const auto a = linalg::make_spd(n, 7, 8);
  const auto b = linalg::make_rhs(n, 9);

  core::ModeEnvConfig ec;
  ec.arena_bytes = 16u << 20;
  ec.slot_bytes = 4u << 20;
  ec.dram_cache_bytes = 1u << 20;
  ec.nvm_bandwidth_slowdown = 16.0;  // Exaggerate for a robust assertion.
  ec.dram_bw_bytes_per_s = 1e9;      // Deterministic charge basis.

  core::ModeEnv nvm_env = core::make_env(core::Mode::kCkptNvm, ec);
  core::ModeEnv het_env = core::make_env(core::Mode::kCkptHetero, ec);
  cg::run_cg_checkpointed(a, b, iters, *nvm_env.backend);
  cg::run_cg_checkpointed(a, b, iters, *het_env.backend);
  // NVM-only assumes NVM == DRAM (no charge); hetero pays ≈ bytes × 15 / 1e9.
  EXPECT_DOUBLE_EQ(nvm_env.perf->stats().injected_seconds, 0.0);
  const double expected =
      static_cast<double>(3 * n * sizeof(double) + 64) * iters * 15.0 / 1e9;
  EXPECT_GT(het_env.perf->stats().injected_seconds, 0.8 * expected);
}

TEST(Integration, UmbrellaHeaderExposesAllLayers) {
  // Compile-time integration: one object of each namespace's flagship type.
  memsim::CacheConfig cc;
  EXPECT_GT(cc.num_sets(), 0u);
  EXPECT_EQ(core::all_modes().size(), 7u);
  EXPECT_GE(mc::kChannels, 5);
  SUCCEED();
}

}  // namespace
}  // namespace adcc
