// Crash-fuzzing property tests: the central safety property of the library —
// *recovery is correct no matter when the machine dies* — exercised with
// access-count crash triggers at pseudo-random points for all three
// algorithms. Unlike the named-crash-point sweeps in the per-module tests,
// these crashes land mid-kernel, between arbitrary line accesses.
#include <gtest/gtest.h>

#include <cmath>

#include "cg/cg.hpp"
#include "cg/cg_cc.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "linalg/gemm.hpp"
#include "linalg/spgen.hpp"
#include "linalg/vec_ops.hpp"
#include "mc/xs_cc.hpp"
#include "mm/mm_cc.hpp"

namespace adcc {
namespace {

class CgFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CgFuzz, RandomAccessCrashAlwaysRecovers) {
  const std::size_t n = 600, iters = 8;
  const auto a = linalg::make_spd(n, 9, 7);
  const auto b = linalg::make_rhs(n, 8);
  const auto golden = cg::cg_solve(a, b, iters);

  // Measure the uncrashed access count once to place crashes inside the run.
  static std::uint64_t total_accesses = 0;
  cg::CgCcConfig cfg;
  cfg.n_iters = iters;
  cfg.cache.ways = 8;
  cfg.cache.size_bytes = 128u << 10;
  if (total_accesses == 0) {
    cg::CgCrashConsistent probe(a, b, cfg);
    ASSERT_FALSE(probe.run());
    total_accesses = probe.sim().access_count();
  }

  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const std::uint64_t crash_at = 1 + rng.next_below(total_accesses - 1);

  cg::CgCrashConsistent cc(a, b, cfg);
  cc.sim().scheduler().arm_at_access(crash_at);
  ASSERT_TRUE(cc.run()) << "crash_at=" << crash_at;
  const cg::CgRecovery rec = cc.recover_and_resume();
  cc.finish();
  EXPECT_LT(linalg::max_abs_diff(cc.solution(), golden.x), 1e-9)
      << "crash_at=" << crash_at << " restart=" << rec.restart_iter;
  EXPECT_LE(rec.restart_iter, rec.crash_iter);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgFuzz, ::testing::Range(0, 12));

class MmFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MmFuzz, RandomAccessCrashAlwaysRecovers) {
  const std::size_t n = 64, k = 16;
  static linalg::Matrix a, b, golden;
  if (a.rows() == 0) {
    a = linalg::Matrix(n, n);
    b = linalg::Matrix(n, n);
    golden = linalg::Matrix(n, n);
    a.fill_random(21, -1, 1);
    b.fill_random(22, -1, 1);
    linalg::gemm_reference(a, b, golden);
  }

  mm::MmCcConfig cfg;
  cfg.n = n;
  cfg.rank_k = k;
  cfg.cache.ways = 4;
  cfg.cache.size_bytes = 32u << 10;

  static std::uint64_t total_accesses = 0;
  if (total_accesses == 0) {
    mm::MmCrashConsistent probe(a, b, cfg);
    ASSERT_FALSE(probe.run());
    total_accesses = probe.sim().access_count();
  }

  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const std::uint64_t crash_at = 1 + rng.next_below(total_accesses - 1);

  mm::MmCrashConsistent mm(a, b, cfg);
  mm.sim().scheduler().arm_at_access(crash_at);
  ASSERT_TRUE(mm.run()) << "crash_at=" << crash_at;
  mm.recover_and_resume();
  EXPECT_LT(linalg::Matrix::max_abs_diff(mm.result(), golden), 1e-10)
      << "crash_at=" << crash_at;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmFuzz, ::testing::Range(0, 12));

class XsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(XsFuzz, RandomAccessCrashRecoversExactTallies) {
  static const mc::XsDataHost data([] {
    mc::XsConfig c;
    c.n_nuclides = 10;
    c.gridpoints_per_nuclide = 128;
    c.seed = 2;
    return c;
  }());

  mc::XsCcConfig cfg;
  cfg.total_lookups = 2500;
  cfg.policy = mc::XsFlushPolicy::kSelective;
  cfg.flush_interval = 25;
  cfg.cache.ways = 4;
  cfg.cache.size_bytes = 32u << 10;
  cfg.rng_seed = 5;

  static mc::Tally reference;
  static std::uint64_t total_accesses = 0;
  if (total_accesses == 0) {
    mc::XsCrashConsistent probe(data, cfg);
    ASSERT_FALSE(probe.run());
    reference = probe.tally();
    total_accesses = probe.sim().access_count();
  }

  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 1299709 + 17);
  const std::uint64_t crash_at = 1 + rng.next_below(total_accesses - 1);

  mc::XsCrashConsistent xs(data, cfg);
  xs.sim().scheduler().arm_at_access(crash_at);
  ASSERT_TRUE(xs.run()) << "crash_at=" << crash_at;
  xs.recover_and_resume();
  EXPECT_EQ(xs.tally().counts, reference.counts) << "crash_at=" << crash_at;
}

INSTANTIATE_TEST_SUITE_P(Seeds, XsFuzz, ::testing::Range(0, 12));

// Simulator oracle: under any random write/flush/crash interleaving, the
// durable value of each element is sandwiched between the last value that was
// explicitly flushed for it and the last value written — NVM can lag, and can
// opportunistically run ahead via evictions, but can never invent values or
// forget an explicit flush.
class SimOracleFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SimOracleFuzz, DurableBoundedByFlushAndWriteHistory) {
  memsim::CacheConfig cache;
  cache.ways = 2;
  cache.size_bytes = 2 * 4 * kCacheLine;  // Tiny: lots of evictions.
  memsim::MemorySimulator sim(cache);
  constexpr std::size_t kElems = 64;  // 8 lines.
  memsim::TrackedArray<double> arr(sim, "fuzz", kElems);

  SplitMix64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);
  std::vector<double> last_written(kElems, 0.0);
  std::vector<double> last_flushed(kElems, 0.0);

  const int ops = 2000;
  const int crash_op = 200 + static_cast<int>(rng.next_below(ops - 200));
  for (int op = 0; op < ops; ++op) {
    const std::size_t i = rng.next_below(kElems);
    const auto action = rng.next_below(8);
    if (op == crash_op) {
      sim.crash();
      break;
    }
    if (action < 6) {  // Write a strictly increasing value per element.
      last_written[i] += 1.0;
      arr.write(i, last_written[i]);
    } else if (action == 6) {
      arr.flush(i, 1);
      // Flushing element i persists its whole line: every element sharing the
      // line is now durable at its latest written value.
      const std::size_t line0 = (i / 8) * 8;
      for (std::size_t j = line0; j < line0 + 8; ++j) last_flushed[j] = last_written[j];
    } else {
      arr.touch_read(i, 1);
    }
  }
  sim.crash();  // Idempotent if the loop already crashed.

  for (std::size_t i = 0; i < kElems; ++i) {
    const double d = arr.durable(i);
    EXPECT_GE(d, last_flushed[i]) << "element " << i << ": explicit flush forgotten";
    EXPECT_LE(d, last_written[i]) << "element " << i << ": NVM invented a value";
    // Values are integers by construction: durable must be one of them.
    EXPECT_DOUBLE_EQ(d, std::floor(d)) << "element " << i << ": torn value";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimOracleFuzz, ::testing::Range(0, 16));

}  // namespace
}  // namespace adcc
