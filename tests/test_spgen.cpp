// Tests for the NPB-style sparse SPD generator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "cg/cg.hpp"
#include "linalg/vec_ops.hpp"
#include "linalg/spgen.hpp"

namespace adcc::linalg {
namespace {

TEST(Shapes, MatchNpbClasses) {
  EXPECT_EQ(shape_of(CgClass::S).n, 1400u);
  EXPECT_EQ(shape_of(CgClass::W).n, 7000u);
  EXPECT_EQ(shape_of(CgClass::A).n, 14000u);
  EXPECT_EQ(shape_of(CgClass::B).n, 75000u);
  EXPECT_EQ(shape_of(CgClass::C).n, 150000u);
  EXPECT_EQ(name_of(CgClass::B), "B");
}

TEST(MakeSpd, DimensionsAndNnzDensity) {
  const CsrMatrix a = make_spd(500, 9);
  EXPECT_EQ(a.rows(), 500u);
  // Each row: 1 diagonal + ~2*((9-1)/2) mirrored entries (minus merges).
  EXPECT_GE(a.nnz(), 500u * 5);
  EXPECT_LE(a.nnz(), 500u * 10);
}

TEST(MakeSpd, Symmetric) {
  EXPECT_TRUE(make_spd(300, 7).is_symmetric(1e-12));
}

TEST(MakeSpd, StrictlyDiagonallyDominant) {
  const CsrMatrix a = make_spd(400, 9);
  const auto row_ptr = a.row_ptr();
  const auto col = a.col_idx();
  const auto val = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double diag = 0.0, off = 0.0;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col[k] == r) {
        diag = val[k];
      } else {
        off += std::fabs(val[k]);
      }
    }
    EXPECT_GT(diag, off) << "row " << r;
  }
}

TEST(MakeSpd, DeterministicBySeed) {
  const CsrMatrix a = make_spd(200, 7, 5);
  const CsrMatrix b = make_spd(200, 7, 5);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (std::size_t k = 0; k < a.nnz(); ++k) EXPECT_DOUBLE_EQ(a.values()[k], b.values()[k]);
}

TEST(MakeSpd, DifferentSeedsDiffer) {
  const CsrMatrix a = make_spd(200, 7, 5);
  const CsrMatrix b = make_spd(200, 7, 6);
  bool any_diff = a.nnz() != b.nnz();
  for (std::size_t k = 0; !any_diff && k < a.nnz(); ++k) {
    any_diff = a.values()[k] != b.values()[k];
  }
  EXPECT_TRUE(any_diff);
}

TEST(MakeSpd, RejectsDegenerateShapes) {
  EXPECT_THROW(make_spd(1, 7), ContractViolation);
  EXPECT_THROW(make_spd(100, 1), ContractViolation);
}

TEST(MakeRhs, InUnitIntervalAndDeterministic) {
  const auto b1 = make_rhs(100, 3);
  const auto b2 = make_rhs(100, 3);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(b1[i], 0.0);
    EXPECT_LT(b1[i], 1.0);
    EXPECT_DOUBLE_EQ(b1[i], b2[i]);
  }
}

// SPD in practice: CG must converge monotonically on generated systems.
class SpdClassTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpdClassTest, CgConvergesOnGeneratedSystem) {
  const std::size_t n = GetParam();
  const CsrMatrix a = make_spd(n, 7, 11);
  const auto b = make_rhs(n, 12);
  const auto r10 = cg::cg_solve(a, b, 10).residual_norm;
  const auto r30 = cg::cg_solve(a, b, 30).residual_norm;
  const double b_norm = std::sqrt(dot(b, b));
  EXPECT_LT(r10, b_norm);       // Progress after 10 iterations.
  EXPECT_LT(r30, r10 + 1e-12);  // More iterations, no worse.
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdClassTest, ::testing::Values(64, 256, 1000, 4000));

}  // namespace
}  // namespace adcc::linalg
