// Unit tests for the set-associative write-back LRU cache model.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "memsim/cache.hpp"

namespace adcc::memsim {
namespace {

CacheConfig tiny(std::size_t ways, std::size_t sets = 1) {
  CacheConfig c;
  c.ways = ways;
  c.size_bytes = ways * sets * kCacheLine;
  return c;
}

std::uintptr_t line(std::size_t i) { return 0x100000 + i * kCacheLine; }

TEST(CacheConfig, NumSets) {
  CacheConfig c;
  c.size_bytes = 8u << 20;
  c.ways = 16;
  EXPECT_EQ(c.num_sets(), 8192u);
}

TEST(Cache, FirstAccessMisses) {
  SetAssocCache c(tiny(2));
  const auto r = c.access(line(0), false);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SecondAccessHits) {
  SetAssocCache c(tiny(2));
  c.access(line(0), false);
  EXPECT_TRUE(c.access(line(0), false).hit);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, WriteMarksDirty) {
  SetAssocCache c(tiny(2));
  c.access(line(0), true);
  EXPECT_TRUE(c.dirty(line(0)));
}

TEST(Cache, ReadDoesNotMarkDirty) {
  SetAssocCache c(tiny(2));
  c.access(line(0), false);
  EXPECT_TRUE(c.contains(line(0)));
  EXPECT_FALSE(c.dirty(line(0)));
}

TEST(Cache, DirtyIsSticky) {
  SetAssocCache c(tiny(2));
  c.access(line(0), true);
  c.access(line(0), false);  // A later read must not clear the dirty bit.
  EXPECT_TRUE(c.dirty(line(0)));
}

TEST(Cache, LruEvictionOrder) {
  // Single-set, 2-way: A, B, touch A, insert C → B (the LRU) is evicted.
  SetAssocCache c(tiny(2));
  c.access(line(0), true);   // A (dirty)
  c.access(line(1), false);  // B
  c.access(line(0), false);  // refresh A
  const auto r = c.access(line(2), false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line, line(1));
  EXPECT_FALSE(r.evicted_dirty);
  EXPECT_TRUE(c.contains(line(0)));
  EXPECT_FALSE(c.contains(line(1)));
}

TEST(Cache, EvictionReportsDirtyBit) {
  SetAssocCache c(tiny(1));
  c.access(line(0), true);
  const auto r = c.access(line(1), false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line, line(0));
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, FlushDirtyLineReportsWritebackNeeded) {
  SetAssocCache c(tiny(2));
  c.access(line(0), true);
  EXPECT_TRUE(c.flush_line(line(0)));
  EXPECT_FALSE(c.contains(line(0)));
  EXPECT_EQ(c.stats().dirty_flushes, 1u);
}

TEST(Cache, FlushCleanLineInvalidatesWithoutWriteback) {
  SetAssocCache c(tiny(2));
  c.access(line(0), false);
  EXPECT_FALSE(c.flush_line(line(0)));
  EXPECT_FALSE(c.contains(line(0)));
}

TEST(Cache, FlushAbsentLineIsNoop) {
  SetAssocCache c(tiny(2));
  EXPECT_FALSE(c.flush_line(line(5)));
  EXPECT_EQ(c.stats().flushes, 1u);
}

TEST(Cache, InvalidateAllDropsDirtyLines) {
  SetAssocCache c(tiny(4));
  c.access(line(0), true);
  c.access(line(1), true);
  c.invalidate_all();
  EXPECT_EQ(c.resident(), 0u);
  EXPECT_TRUE(c.dirty_lines().empty());
}

TEST(Cache, DirtyLinesEnumeration) {
  SetAssocCache c(tiny(4));
  c.access(line(0), true);
  c.access(line(1), false);
  c.access(line(2), true);
  const auto d = c.dirty_lines();
  EXPECT_EQ(d.size(), 2u);
}

TEST(Cache, ResidentCountsAllValidLines) {
  SetAssocCache c(tiny(4));
  c.access(line(0), false);
  c.access(line(1), true);
  EXPECT_EQ(c.resident(), 2u);
}

TEST(Cache, NonPowerOfTwoSetsRejected) {
  CacheConfig c;
  c.size_bytes = 3 * kCacheLine;
  c.ways = 1;
  EXPECT_THROW(SetAssocCache{c}, ContractViolation);
}

TEST(Cache, ResetStatsClearsCounters) {
  SetAssocCache c(tiny(2));
  c.access(line(0), true);
  c.reset_stats();
  EXPECT_EQ(c.stats().misses, 0u);
}

// Property sweep: for any associativity, streaming W unique lines through a
// single-set cache keeps exactly min(W, ways) resident and evicts the rest in
// FIFO (=LRU for a pure stream) order.
class CacheWaysTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheWaysTest, StreamEvictsOldestFirst) {
  const std::size_t ways = GetParam();
  SetAssocCache c(tiny(ways));
  const std::size_t total = ways + 3;
  std::vector<std::uintptr_t> evicted;
  for (std::size_t i = 0; i < total; ++i) {
    const auto r = c.access(line(i), true);
    if (r.evicted) evicted.push_back(r.evicted_line);
  }
  EXPECT_EQ(c.resident(), ways);
  ASSERT_EQ(evicted.size(), 3u);
  for (std::size_t i = 0; i < evicted.size(); ++i) EXPECT_EQ(evicted[i], line(i));
}

TEST_P(CacheWaysTest, CapacityNeverExceeded) {
  const std::size_t ways = GetParam();
  SetAssocCache c(tiny(ways, 4));
  for (std::size_t i = 0; i < 10 * ways; ++i) c.access(line(i * 7), i % 2 == 0);
  EXPECT_LE(c.resident(), ways * 4);
}

INSTANTIATE_TEST_SUITE_P(Associativity, CacheWaysTest, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace adcc::memsim
