// Tests for online-ABFT CG: invariant checking as a soft-error detector with
// rollback recovery.
#include <gtest/gtest.h>

#include "cg/cg_online_abft.hpp"
#include "common/check.hpp"
#include "linalg/spgen.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {
namespace {

struct Problem {
  linalg::CsrMatrix a;
  std::vector<double> b;
};

Problem problem(std::size_t n = 500) {
  return {linalg::make_spd(n, 9, 61), linalg::make_rhs(n, 62)};
}

TEST(OnlineAbft, FaultFreeRunMatchesPlainCg) {
  const Problem p = problem();
  const auto plain = cg_solve(p.a, p.b, 10);
  const auto res = run_cg_online_abft(p.a, p.b, 10);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(res.cg.x, plain.x), 0.0);
  EXPECT_EQ(res.detections, 0u);
  EXPECT_EQ(res.rollbacks, 0u);
  EXPECT_EQ(res.checks, 10u);
}

TEST(OnlineAbft, CheckIntervalReducesChecks) {
  const Problem p = problem();
  OnlineAbftConfig cfg;
  cfg.check_every = 4;
  const auto res = run_cg_online_abft(p.a, p.b, 10, cfg);
  EXPECT_EQ(res.checks, 3u);  // Iterations 4, 8, and the final 10.
}

TEST(OnlineAbft, DetectsAndRecoversFromTransientError) {
  const Problem p = problem();
  bool injected = false;
  const auto inject = [&](std::size_t iter, CgState& s) {
    if (iter == 5 && !injected) {
      injected = true;
      s.z[17] += 1.0;  // Silent bit-flip-style corruption of the solution.
    }
  };
  const auto res = run_cg_online_abft(p.a, p.b, 10, {}, inject);
  EXPECT_EQ(res.detections, 1u);
  EXPECT_EQ(res.rollbacks, 1u);
  EXPECT_GE(res.wasted_iterations, 1u);
  const auto plain = cg_solve(p.a, p.b, 10);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(res.cg.x, plain.x), 0.0);  // Fully repaired.
}

TEST(OnlineAbft, CorruptionOfResidualAlsoDetected) {
  const Problem p = problem();
  bool injected = false;
  const auto inject = [&](std::size_t iter, CgState& s) {
    if (iter == 3 && !injected) {
      injected = true;
      s.r[0] *= 2.0;
    }
  };
  const auto res = run_cg_online_abft(p.a, p.b, 8, {}, inject);
  EXPECT_GE(res.detections, 1u);
  const auto plain = cg_solve(p.a, p.b, 8);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(res.cg.x, plain.x), 0.0);
}

TEST(OnlineAbft, SparseCheckingStillRecoversWithMoreWaste) {
  const Problem p = problem();
  OnlineAbftConfig cfg;
  cfg.check_every = 5;
  bool injected = false;
  const auto inject = [&](std::size_t iter, CgState& s) {
    if (iter == 6 && !injected) {
      injected = true;
      s.z[3] -= 0.5;
    }
  };
  const auto res = run_cg_online_abft(p.a, p.b, 15, cfg, inject);
  EXPECT_EQ(res.detections, 1u);
  // Error at iteration 6 is caught at the iteration-10 boundary: rollback to
  // the state verified at iteration 5 → 5 wasted iterations.
  EXPECT_EQ(res.wasted_iterations, 5u);
  const auto plain = cg_solve(p.a, p.b, 15);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(res.cg.x, plain.x), 0.0);
}

TEST(OnlineAbft, PersistentErrorExhaustsRetriesAndThrows) {
  const Problem p = problem(200);
  OnlineAbftConfig cfg;
  cfg.max_retries = 2;
  const auto inject = [&](std::size_t iter, CgState& s) {
    if (iter == 2) s.z[0] += 1.0;  // Injected on every (re-)execution.
  };
  EXPECT_THROW(run_cg_online_abft(p.a, p.b, 6, cfg, inject), ContractViolation);
}

TEST(OnlineAbft, BelowToleranceCorruptionIsAccepted) {
  const Problem p = problem();
  const auto inject = [&](std::size_t iter, CgState& s) {
    if (iter == 4) s.z[9] += 1e-14;  // Under the detection floor.
  };
  const auto res = run_cg_online_abft(p.a, p.b, 8, {}, inject);
  EXPECT_EQ(res.detections, 0u);
}

TEST(OnlineAbft, InvalidConfigRejected) {
  const Problem p = problem(100);
  OnlineAbftConfig cfg;
  cfg.check_every = 0;
  EXPECT_THROW(run_cg_online_abft(p.a, p.b, 4, cfg), ContractViolation);
}

}  // namespace
}  // namespace adcc::cg
