// Unit tests for the NVM substrate: flush primitives, perf throttle, arena,
// DRAM cache.
#include <gtest/gtest.h>

#include <cstring>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "nvm/dram_cache.hpp"
#include "nvm/flush.hpp"
#include "nvm/nvm_region.hpp"
#include "nvm/perf_model.hpp"

namespace adcc::nvm {
namespace {

PerfModel fast_model() {
  PerfConfig c;
  c.dram_bw_bytes_per_s = 10e9;
  c.bandwidth_slowdown = 1.0;
  c.enabled = false;
  return PerfModel(c);
}

TEST(Flush, RangeDoesNotCrashAndPreservesData) {
  AlignedArray<double> a(32);
  a[7] = 1.25;
  flush_range(a.data(), 32 * sizeof(double));
  store_fence();
  EXPECT_DOUBLE_EQ(a[7], 1.25);
}

TEST(Flush, AllInstructionVariantsWork) {
  AlignedArray<double> a(8);
  flush_range(a.data(), 64, FlushInstruction::kClflush);
  flush_range(a.data(), 64, FlushInstruction::kClflushopt);
  flush_range(a.data(), 64, FlushInstruction::kClwb);
  SUCCEED();
}

TEST(Flush, LineCountMatchesSpan) {
  AlignedArray<double> a(32);
  EXPECT_EQ(flush_line_count(a.data(), 256), 4u);
  EXPECT_EQ(flush_line_count(a.data(), 1), 1u);
}

TEST(PerfModel, DisabledChargesNothing) {
  PerfModel m = fast_model();
  Timer t;
  m.charge_write(100u << 20);
  EXPECT_LT(t.elapsed(), 0.05);
  EXPECT_DOUBLE_EQ(m.stats().injected_seconds, 0.0);
}

TEST(PerfModel, SlowdownOneChargesNothingEvenWhenEnabled) {
  PerfConfig c;
  c.dram_bw_bytes_per_s = 10e9;
  c.bandwidth_slowdown = 1.0;
  c.enabled = true;
  PerfModel m(c);
  m.charge_write(100u << 20);
  EXPECT_DOUBLE_EQ(m.stats().injected_seconds, 0.0);
}

TEST(PerfModel, ChargesBandwidthGap) {
  PerfConfig c;
  c.dram_bw_bytes_per_s = 1e9;  // 1 GB/s DRAM → 8× slower NVM.
  c.bandwidth_slowdown = 8.0;
  PerfModel m(c);
  // 1 MB → (8-1)/1e9 * 1e6 = 7 ms injected.
  Timer t;
  m.charge_write(1u << 20);
  EXPECT_GE(t.elapsed(), 0.006);
  EXPECT_NEAR(m.stats().injected_seconds, 7.34e-3, 1.5e-3);
}

TEST(PerfModel, FlushLatencyPerLine) {
  PerfConfig c;
  c.dram_bw_bytes_per_s = 100e9;  // Make bandwidth term negligible.
  c.bandwidth_slowdown = 1.0;
  c.flush_latency_ns = 1000.0;
  c.enabled = true;
  PerfModel m(c);
  Timer t;
  m.charge_flush_lines(1000);  // 1 µs × 1000 = 1 ms.
  EXPECT_GE(t.elapsed(), 0.0008);
  EXPECT_EQ(m.stats().lines_flushed, 1000u);
}

TEST(PerfModel, RejectsSpeedupConfigs) {
  PerfConfig c;
  c.dram_bw_bytes_per_s = 1e9;
  c.bandwidth_slowdown = 0.5;
  EXPECT_THROW(PerfModel{c}, ContractViolation);
}

TEST(PerfModel, CalibrationReturnsPlausibleBandwidth) {
  const double bw = PerfModel::calibrate_dram_bandwidth();
  EXPECT_GT(bw, 100e6);   // faster than 100 MB/s
  EXPECT_LT(bw, 2000e9);  // slower than 2 TB/s
}

TEST(NvmRegion, AllocateIsLineAlignedAndZeroed) {
  PerfModel m = fast_model();
  NvmRegion r(1u << 20, m);
  auto s = r.allocate<double>(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % kCacheLine, 0u);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NvmRegion, ExhaustionThrows) {
  PerfModel m = fast_model();
  NvmRegion r(4 * kCacheLine, m);
  r.allocate<double>(8);
  EXPECT_THROW(r.allocate<double>(1024), ContractViolation);
}

TEST(NvmRegion, WriteDurableCopies) {
  PerfModel m = fast_model();
  NvmRegion r(1u << 20, m);
  auto dst = r.allocate<double>(16);
  std::vector<double> src(16, 3.0);
  r.write_durable(dst.data(), src.data(), src.size() * sizeof(double));
  EXPECT_DOUBLE_EQ(dst[15], 3.0);
  EXPECT_EQ(r.stats().bulk_writes, 1u);
  EXPECT_GE(r.stats().persisted_lines, 2u);
}

TEST(NvmRegion, PersistRejectsForeignPointers) {
  PerfModel m = fast_model();
  NvmRegion r(1u << 20, m);
  double x = 0;
  EXPECT_THROW(r.persist(&x, sizeof(x)), ContractViolation);
}

TEST(NvmRegion, ContainsChecksArenaBounds) {
  PerfModel m = fast_model();
  NvmRegion r(1u << 20, m);
  auto s = r.allocate<double>(4);
  EXPECT_TRUE(r.contains(s.data()));
  double x = 0;
  EXPECT_FALSE(r.contains(&x));
}

TEST(DramCache, WriteThenDrainLandsInNvm) {
  PerfModel m = fast_model();
  NvmRegion r(1u << 20, m);
  DramCache dc(128 * kCacheLine, r);
  auto dst = r.allocate<double>(64);
  std::vector<double> src(64, 2.5);
  dc.write(dst.data(), src.data(), src.size() * sizeof(double));
  EXPECT_GT(dc.pending(), 0u);
  EXPECT_DOUBLE_EQ(dst[0], 0.0);  // Not durable (nor written through) yet.
  dc.drain();
  EXPECT_EQ(dc.pending(), 0u);
  EXPECT_DOUBLE_EQ(dst[63], 2.5);
}

TEST(DramCache, OverflowForcesPartialDrain) {
  PerfModel m = fast_model();
  NvmRegion r(4u << 20, m);
  DramCache dc(2 * kCacheLine, r);  // Tiny staging buffer.
  auto dst = r.allocate<double>(64);
  std::vector<double> src(64, 1.5);
  dc.write(dst.data(), src.data(), src.size() * sizeof(double));
  EXPECT_GE(dc.stats().forced_drains, 1u);
  dc.drain();
  for (double v : dst) EXPECT_DOUBLE_EQ(v, 1.5);
}

TEST(DramCache, StatsAccountAllBytes) {
  PerfModel m = fast_model();
  NvmRegion r(1u << 20, m);
  DramCache dc(128 * kCacheLine, r);
  auto dst = r.allocate<double>(32);
  std::vector<double> src(32, 1.0);
  dc.write(dst.data(), src.data(), 256);
  dc.drain();
  EXPECT_EQ(dc.stats().staged_bytes, 256u);
  EXPECT_EQ(dc.stats().drained_bytes, 256u);
}

TEST(DramCache, RejectsForeignDestination) {
  PerfModel m = fast_model();
  NvmRegion r(1u << 20, m);
  DramCache dc(128 * kCacheLine, r);
  double x = 0;
  EXPECT_THROW(dc.write(&x, &x, 8), ContractViolation);
}

TEST(DefaultPerfModel, Configurable) {
  PerfConfig c;
  c.dram_bw_bytes_per_s = 5e9;
  c.bandwidth_slowdown = 2.0;
  set_default_perf_model(c);
  EXPECT_DOUBLE_EQ(default_perf_model().dram_bandwidth(), 5e9);
  EXPECT_DOUBLE_EQ(default_perf_model().nvm_bandwidth(), 2.5e9);
}

}  // namespace
}  // namespace adcc::nvm
