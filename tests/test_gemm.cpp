// Tests for dense GEMM kernels.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "linalg/gemm.hpp"

namespace adcc::linalg {
namespace {

TEST(Matrix, RowMajorIndexing) {
  Matrix m(2, 3);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.0);
  EXPECT_EQ(m.size_bytes(), 48u);
}

TEST(Matrix, FillRandomDeterministic) {
  Matrix a(4, 4), b(4, 4);
  a.fill_random(9, -1, 1);
  b.fill_random(9, -1, 1);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.0);
  double mn = 1e9, mx = -1e9;
  for (double v : a.flat()) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GE(mn, -1.0);
  EXPECT_LT(mx, 1.0);
}

TEST(Matrix, SetZero) {
  Matrix m(3, 3);
  m.fill_random(1);
  m.set_zero();
  for (double v : m.flat()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  Matrix a(2, 2), b(3, 3);
  EXPECT_THROW(Matrix::max_abs_diff(a, b), ContractViolation);
}

TEST(Gemm, MatchesReferenceSmall) {
  Matrix a(7, 7), b(7, 7), c(7, 7), cref(7, 7);
  a.fill_random(1, -1, 1);
  b.fill_random(2, -1, 1);
  gemm(a, b, c);
  gemm_reference(a, b, cref);
  EXPECT_LT(Matrix::max_abs_diff(c, cref), 1e-12);
}

TEST(Gemm, RectangularShapes) {
  Matrix a(5, 9), b(9, 3), c(5, 3), cref(5, 3);
  a.fill_random(3);
  b.fill_random(4);
  gemm(a, b, c);
  gemm_reference(a, b, cref);
  EXPECT_LT(Matrix::max_abs_diff(c, cref), 1e-12);
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  Matrix a(3, 4), b(5, 3), c(3, 3);
  EXPECT_THROW(gemm(a, b, c), ContractViolation);
}

TEST(GemmPanel, SumOfPanelsEqualsFullProduct) {
  const std::size_t n = 33;  // Deliberately not divisible by the panel width.
  Matrix a(n, n), b(n, n), c(n, n), cref(n, n);
  a.fill_random(5, -1, 1);
  b.fill_random(6, -1, 1);
  c.set_zero();
  const std::size_t k = 8;
  for (std::size_t s = 0; s < n; s += k) {
    gemm_panel(a, s, std::min(k, n - s), b, s, c, /*accumulate=*/true);
  }
  gemm_reference(a, b, cref);
  EXPECT_LT(Matrix::max_abs_diff(c, cref), 1e-11);
}

TEST(GemmPanel, NonAccumulatingOverwrites) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  a.fill_random(7);
  b.fill_random(8);
  c.fill_random(9);  // Garbage that must be overwritten.
  gemm_panel(a, 0, 4, b, 0, c, /*accumulate=*/false);
  Matrix cref(4, 4);
  gemm_reference(a, b, cref);
  EXPECT_LT(Matrix::max_abs_diff(c, cref), 1e-12);
}

TEST(GemmPanel, PanelBoundsValidated) {
  Matrix a(4, 4), b(4, 4), c(4, 4);
  EXPECT_THROW(gemm_panel(a, 2, 3, b, 0, c, true), ContractViolation);
  EXPECT_THROW(gemm_panel(a, 0, 2, b, 3, c, true), ContractViolation);
}

// Property sweep: blocked/panel GEMM equals the reference for many (n, k).
struct GemmCase {
  std::size_t n;
  std::size_t k;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, PanelDecompositionIsExact) {
  const auto [n, k] = GetParam();
  Matrix a(n, n), b(n, n), c(n, n), cref(n, n);
  a.fill_random(n * 3 + 1, -2, 2);
  b.fill_random(n * 7 + 5, -2, 2);
  c.set_zero();
  for (std::size_t s = 0; s < n; s += k) {
    gemm_panel(a, s, std::min(k, n - s), b, s, c, true);
  }
  gemm_reference(a, b, cref);
  EXPECT_LT(Matrix::max_abs_diff(c, cref), 1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSweep,
                         ::testing::Values(GemmCase{16, 4}, GemmCase{17, 4}, GemmCase{32, 32},
                                           GemmCase{45, 7}, GemmCase{64, 16}, GemmCase{100, 33}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_k" +
                                  std::to_string(info.param.k);
                         });

}  // namespace
}  // namespace adcc::linalg
