// Cross-compiler determinism pins: every seeded draw the sweep/fault layers
// make (victim selection, fuzz access placement, silent-flip targeting) must
// be a pure function of the seed computed by the in-tree splitmix64 — never
// std::shuffle / std::uniform_int_distribution, whose sequences differ
// between libstdc++ and libc++. These tests hardcode the expected values, so
// a gcc and a clang CI leg (or any future refactor reaching for <random>)
// that would change a single draw fails loudly instead of silently moving
// every seeded deck.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/fault.hpp"
#include "core/scenario.hpp"

namespace adcc {
namespace {

using core::CrashScenario;
using core::FaultSurface;

TEST(Determinism, Splitmix64FinalizerIsPinned) {
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(splitmix64(42), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(splitmix64(0xDEADBEEFULL), 0x4adfb90f68c9eb9bULL);
}

TEST(Determinism, Splitmix64StreamIsPinned) {
  SplitMix64 rng(7);
  EXPECT_EQ(rng.next_u64(), 0x63cbe1e459320dd7ULL);
  EXPECT_EQ(rng.next_u64(), 0x044c3cd7f43c661cULL);
  EXPECT_EQ(rng.next_u64(), 0xe6984080bab12a02ULL);
  EXPECT_EQ(rng.next_u64(), 0x953aeb70673e29cbULL);
}

TEST(Determinism, CrashVictimsFisherYatesIsPinned) {
  // shards:K:SEED draws a seeded Fisher-Yates prefix; the exact victim sets
  // below were produced by the in-tree splitmix64 stream and must never move.
  const auto victims = [](const char* spec, std::size_t n) {
    return core::crash_victims(core::parse_crash_or_throw(spec), n);
  };
  EXPECT_EQ(victims("shards:3:7:step:1", 8), (std::vector<std::size_t>{1, 6, 7}));
  EXPECT_EQ(victims("shards:3:7:step:1", 4), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(victims("shards:2:9:step:1", 6), (std::vector<std::size_t>{2, 4}));
  // k >= N degrades to "all shards", still sorted.
  EXPECT_EQ(victims("shards:5:1:step:1", 5), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  // shard:I clamps into [0, N).
  EXPECT_EQ(victims("shard:11:step:1", 4), (std::vector<std::size_t>{3}));
  // Deterministic: the same (spec, N) pair always draws the same set.
  EXPECT_EQ(victims("shards:3:7:step:1", 8), victims("shards:3:7:step:1", 8));
}

TEST(Determinism, FuzzAccessPickIsPinned) {
  // fuzz:SEED and flip:SEED share this probe-driven draw: a seeded random
  // access inside a seeded random unit of the probed boundary list.
  const std::vector<std::uint64_t> boundaries = {0, 100, 250, 500, 1000, 1700};
  EXPECT_EQ(core::pick_fuzz_access(boundaries, 1), 70u);
  EXPECT_EQ(core::pick_fuzz_access(boundaries, 2), 27u);
  EXPECT_EQ(core::pick_fuzz_access(boundaries, 3), 520u);
  EXPECT_EQ(core::pick_fuzz_access(boundaries, 17), 1065u);
  EXPECT_EQ(core::pick_fuzz_access(boundaries, 42), 792u);
}

// Drives one armed flip against a zeroed buffer with the fixed protocol the
// pins below were recorded under: counter at 10, threshold 5, 32-byte target,
// corrupt() called until the flip fires.
std::vector<int> flip_bits_fired(std::uint64_t seed, std::uint64_t bits, int* calls_out) {
  FaultSurface f;
  f.tick(10);
  f.arm_flip(5, seed, bits);
  unsigned char buf[32];
  std::memset(buf, 0, sizeof(buf));
  int calls = 0;
  while (f.flip_stats().flips == 0 && calls < 10) {
    f.corrupt("pin", buf, sizeof(buf));
    ++calls;
  }
  if (calls_out != nullptr) *calls_out = calls;
  std::vector<int> set;
  for (int byte = 0; byte < 32; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      if ((buf[byte] & (1u << bit)) != 0) set.push_back(byte * 8 + bit);
    }
  }
  return set;
}

TEST(Determinism, FlipSiteSkipAndBitPositionsArePinned) {
  // The seeded site skip (how many eligible corrupt() calls pass before the
  // flip lands) and every XOR-flipped bit position are pure functions of the
  // flip seed. Recorded with gcc 12; any drift is a determinism regression.
  int calls = 0;
  EXPECT_EQ(flip_bits_fired(1, 1, &calls), (std::vector<int>{163}));
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(flip_bits_fired(2, 1, &calls), (std::vector<int>{33}));
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(flip_bits_fired(3, 1, &calls), (std::vector<int>{153}));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(flip_bits_fired(7, 1, &calls), (std::vector<int>{246}));
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(flip_bits_fired(9, 1, &calls), (std::vector<int>{39}));
  EXPECT_EQ(calls, 4);
  // Multi-bit flips reuse the single-bit position as draw k=0 and extend it.
  EXPECT_EQ(flip_bits_fired(1, 3, nullptr), (std::vector<int>{33, 153, 163}));
  EXPECT_EQ(flip_bits_fired(2, 3, nullptr), (std::vector<int>{33, 156, 163}));
  EXPECT_EQ(flip_bits_fired(3, 3, nullptr), (std::vector<int>{153, 156, 163}));
  EXPECT_EQ(flip_bits_fired(7, 3, nullptr), (std::vector<int>{9, 144, 246}));
  EXPECT_EQ(flip_bits_fired(9, 3, nullptr), (std::vector<int>{16, 39, 252}));
}

TEST(Determinism, FlipIsReproducibleAcrossSurfaces) {
  // Two independent surfaces driven through the identical protocol must
  // corrupt byte-identical state for every (seed, bits) pair.
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    for (std::uint64_t bits : {1ull, 2ull, 5ull}) {
      EXPECT_EQ(flip_bits_fired(seed, bits, nullptr), flip_bits_fired(seed, bits, nullptr))
          << "seed=" << seed << " bits=" << bits;
    }
  }
}

}  // namespace
}  // namespace adcc
