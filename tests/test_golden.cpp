// Golden-file regression tests for core::Table rendering: the CSV and JSON
// byte streams consumed by dashboards, scripts/bench_check.py and the
// serial-vs-parallel byte-identity gates are pinned under tests/golden/.
// Column additions (like PR 10's flips/detected/detect_lat/miscorr) must show
// up as deliberate fixture diffs, never as silent format drift.
//
// Regenerating after an intentional format change:
//   ADCC_UPDATE_GOLDEN=1 ./build/adcc_tests --gtest_filter='GoldenTable.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/report.hpp"

namespace adcc::core {
namespace {

// The sweep deck's full header set (core axes + every metric column) as of
// the flip: fault family. Kept as a literal, NOT referenced from sweep.cpp:
// the golden test must fail when the sweep layout changes, prompting a
// deliberate fixture + consumer update.
Table fixture_table() {
  Table t({"cell", "workload", "mode", "crash", "units", "seconds", "normalized",
           "overhead", "lost", "partial", "corrected", "torn", "salvaged", "overlap",
           "detect/unit", "resume/unit", "victims", "epochs_rb", "replayed", "halo_kb",
           "flips", "detected", "detect_lat", "miscorr", "t_stage", "t_crc", "t_comp",
           "t_io", "t_drain", "t_kernel", "t_spmv", "t_gemm", "t_xs", "status"});
  // A timed cell with a detected-and-rolled-back flip.
  t.add_row({"0", "cg", "alg-nvm", "flip:7", "6", Table::fmt(0.0123, 4),
             Table::fmt(1.08, 3), Table::pct(0.082), "1", "1", "0", "0", "0",
             Table::fmt(0.0, 3), Table::fmt(0.4, 3), Table::fmt(1.1, 3), "0", "0", "0",
             "0", "1", "1", "1", "0", Table::fmt(0.002, 3), "-", "-", "-", "-",
             Table::fmt(0.009, 3), Table::fmt(0.007, 3), "-", "-", "ok"});
  // A --no_timing cell: every timing-derived column is the blank marker, the
  // undetected flip keeps detect_lat blank too.
  t.add_row({"1", "mm", "ckpt-nvm", "flip:7", "4", "-", "-", "-", "0", "0", "0", "0",
             "0", "-", "-", "-", "0", "0", "0", "12", "1", "0", "-", "0", "-", "-",
             "-", "-", "-", "-", "-", "-", "-", "ok"});
  // An ERROR cell: 29 blank metric columns, then a status message exercising
  // the CSV quote/comma escaping rules.
  t.add_row({"2", "mc", "pmem-tx", "step:2", "-", "-", "-", "-", "-", "-", "-", "-",
             "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-", "-",
             "-", "-", "-", "-", "-", "-", "-",
             "ERROR: malformed crash plan 'boom', axis \"crash\""});
  return t;
}

std::string golden_path(const char* name) {
  return std::string(ADCC_GOLDEN_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void compare_or_update(const char* name, const std::string& rendered) {
  const std::string path = golden_path(name);
  if (std::getenv("ADCC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << path << " missing or empty; regenerate with ADCC_UPDATE_GOLDEN=1";
  EXPECT_EQ(rendered, expected)
      << "rendered " << name << " drifted from the golden fixture; if the "
      << "format change is deliberate, rerun with ADCC_UPDATE_GOLDEN=1 and "
      << "commit the diff";
}

TEST(GoldenTable, CsvRenderingMatchesFixture) {
  compare_or_update("sweep_table.csv", fixture_table().render(TableFormat::kCsv));
}

TEST(GoldenTable, JsonRenderingMatchesFixture) {
  compare_or_update("sweep_table.json", fixture_table().render(TableFormat::kJson));
}

TEST(GoldenTable, PlainRenderingMatchesFixture) {
  compare_or_update("sweep_table.txt", fixture_table().render(TableFormat::kPlain));
}

TEST(GoldenTable, EscapingRules) {
  // The fixture exercises these paths; pin the primitives directly too, so a
  // failure names the broken rule instead of a 34-column diff.
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  t.add_row({"line\nbreak", "back\\slash"});
  EXPECT_EQ(t.render(TableFormat::kCsv),
            "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"line\nbreak\",back\\slash\n");
  EXPECT_EQ(t.render(TableFormat::kJson),
            "[\n  {\"a\": \"x,y\", \"b\": \"he said \\\"hi\\\"\"},\n"
            "  {\"a\": \"line\\nbreak\", \"b\": \"back\\\\slash\"}\n]\n");
}

}  // namespace
}  // namespace adcc::core
