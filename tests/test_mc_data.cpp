// Tests for the synthetic XSBench data model.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "mc/xs_data.hpp"

namespace adcc::mc {
namespace {

XsConfig small_cfg() {
  XsConfig c;
  c.n_nuclides = 12;
  c.gridpoints_per_nuclide = 64;
  c.seed = 5;
  return c;
}

TEST(XsData, NuclideGridsAreEnergySorted) {
  const XsDataHost d(small_cfg());
  const auto& g = d.nuclide_grids();
  const auto cfg = d.config();
  for (std::size_t n = 0; n < cfg.n_nuclides; ++n) {
    for (std::size_t i = 1; i < cfg.gridpoints_per_nuclide; ++i) {
      EXPECT_LE(g[n * cfg.gridpoints_per_nuclide + i - 1].energy,
                g[n * cfg.gridpoints_per_nuclide + i].energy);
    }
  }
}

TEST(XsData, UnionizedGridIsSortedUnionOfAllEnergies) {
  const XsDataHost d(small_cfg());
  const auto& u = d.unionized_energy();
  EXPECT_EQ(u.size(), small_cfg().unionized_points());
  EXPECT_TRUE(std::is_sorted(u.begin(), u.end()));
}

TEST(XsData, IndexGridEntriesAreInterpolatable) {
  const XsDataHost d(small_cfg());
  const auto cfg = d.config();
  for (const std::int32_t idx : d.index_grid()) {
    EXPECT_GE(idx, 0);
    // idx+1 must be a valid partner point.
    EXPECT_LT(static_cast<std::size_t>(idx) + 1, cfg.gridpoints_per_nuclide);
  }
}

TEST(XsData, IndexGridBoundsTheEnergy) {
  const XsDataHost d(small_cfg());
  const auto cfg = d.config();
  const auto& u = d.unionized_energy();
  const auto& idx = d.index_grid();
  const auto& g = d.nuclide_grids();
  for (std::size_t ui = 100; ui < 160; ++ui) {  // Spot-check a middle slice.
    for (std::size_t n = 0; n < cfg.n_nuclides; ++n) {
      const auto base = static_cast<std::size_t>(idx[ui * cfg.n_nuclides + n]);
      const auto& p0 = g[n * cfg.gridpoints_per_nuclide + base];
      // p0.energy <= u (except when u precedes the nuclide's first point).
      if (base > 0) {
        EXPECT_LE(p0.energy, u[ui] + 1e-15);
      }
    }
  }
}

TEST(XsData, CrossSectionsArePositive) {
  const XsDataHost d(small_cfg());
  for (const auto& pt : d.nuclide_grids()) {
    for (double xs : pt.xs) EXPECT_GT(xs, 0.0);
  }
}

TEST(XsData, FuelMaterialHoldsHalfTheNuclides) {
  const XsDataHost d(small_cfg());
  EXPECT_EQ(d.material(0).size(), 6u);
  for (int m = 0; m < kMaterials; ++m) {
    EXPECT_FALSE(d.material(m).empty());
    for (const auto& [nuc, density] : d.material(m)) {
      EXPECT_GE(nuc, 0);
      EXPECT_LT(static_cast<std::size_t>(nuc), small_cfg().n_nuclides);
      EXPECT_GT(density, 0.0);
    }
  }
}

TEST(XsData, MaterialCdfIsMonotoneEndingAtOne) {
  const XsDataHost d(small_cfg());
  const auto& cdf = d.material_cdf();
  ASSERT_EQ(cdf.size(), static_cast<std::size_t>(kMaterials));
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GT(cdf[i], cdf[i - 1]);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(XsData, DeterministicBySeed) {
  const XsDataHost a(small_cfg()), b(small_cfg());
  EXPECT_EQ(a.unionized_energy(), b.unionized_energy());
  EXPECT_EQ(a.index_grid(), b.index_grid());
}

TEST(XsData, FootprintFormulaMatchesContainers) {
  const XsDataHost d(small_cfg());
  const auto cfg = d.config();
  const std::size_t actual = d.unionized_energy().size() * 8 +
                             d.index_grid().size() * 4 +
                             d.nuclide_grids().size() * sizeof(NuclideGridPoint);
  EXPECT_EQ(cfg.footprint_bytes(), actual);
}

TEST(XsData, RejectsDegenerateConfigs) {
  XsConfig c = small_cfg();
  c.n_nuclides = 2;
  EXPECT_THROW(XsDataHost{c}, ContractViolation);
  c = small_cfg();
  c.gridpoints_per_nuclide = 4;
  EXPECT_THROW(XsDataHost{c}, ContractViolation);
}

}  // namespace
}  // namespace adcc::mc
