// Tests for ABFT checksum encodings, verification, correction, and the Fig. 5
// rank-k ABFT GEMM.
#include <gtest/gtest.h>

#include "abft/abft_gemm.hpp"
#include "common/check.hpp"
#include "linalg/gemm.hpp"

namespace adcc::abft {
namespace {

using linalg::Matrix;

Matrix random_square(std::size_t n, std::uint64_t seed) {
  Matrix m(n, n);
  m.fill_random(seed, -1.0, 1.0);
  return m;
}

TEST(Encode, ColumnChecksumLastRowHoldsColumnSums) {
  Matrix a(3, 4);
  a.fill_random(1);
  const Matrix ac = encode_column_checksum(a);
  ASSERT_EQ(ac.rows(), 4u);
  ASSERT_EQ(ac.cols(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    double s = 0;
    for (std::size_t i = 0; i < 3; ++i) s += a(i, j);
    EXPECT_NEAR(ac(3, j), s, 1e-14);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ac(i, j), a(i, j));
  }
}

TEST(Encode, RowChecksumLastColumnHoldsRowSums) {
  Matrix b(4, 3);
  b.fill_random(2);
  const Matrix br = encode_row_checksum(b);
  ASSERT_EQ(br.rows(), 4u);
  ASSERT_EQ(br.cols(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < 3; ++j) s += b(i, j);
    EXPECT_NEAR(br(i, 3), s, 1e-14);
  }
}

Matrix full_checksum_product(std::size_t n, std::uint64_t seed) {
  const Matrix a = random_square(n, seed);
  const Matrix b = random_square(n, seed + 1);
  const Matrix ac = encode_column_checksum(a);
  const Matrix br = encode_row_checksum(b);
  Matrix cf(n + 1, n + 1);
  linalg::gemm(ac, br, cf);
  return cf;
}

TEST(Verify, ProductChecksumsConsistent) {
  const Matrix cf = full_checksum_product(12, 7);
  EXPECT_TRUE(verify_full_checksums(cf).consistent());
}

TEST(Verify, DetectsSingleCorruptElementInRowAndColumn) {
  Matrix cf = full_checksum_product(12, 7);
  cf(3, 5) += 1.0;
  const auto rep = verify_full_checksums(cf);
  ASSERT_EQ(rep.bad_rows.size(), 1u);
  ASSERT_EQ(rep.bad_cols.size(), 1u);
  EXPECT_EQ(rep.bad_rows[0], 3u);
  EXPECT_EQ(rep.bad_cols[0], 5u);
}

TEST(Verify, DetectsCorruptChecksumEntryItself) {
  Matrix cf = full_checksum_product(10, 3);
  cf(2, 10) += 1.0;  // Damage the row-checksum column.
  EXPECT_FALSE(verify_full_checksums(cf).consistent());
}

TEST(Verify, RowOnlyModeIgnoresColumns) {
  Matrix cf = full_checksum_product(10, 3);
  const auto rep = verify_row_checksums(cf, /*has_checksum_row=*/true);
  EXPECT_TRUE(rep.bad_rows.empty());
}

TEST(Verify, ToleratesFloatingPointNoise) {
  Matrix cf = full_checksum_product(64, 5);
  cf(1, 1) += 1e-14;  // Below tolerance: must stay consistent.
  EXPECT_TRUE(verify_full_checksums(cf).consistent());
}

TEST(Correct, RepairsSingleElement) {
  Matrix cf = full_checksum_product(12, 9);
  const double original = cf(4, 6);
  cf(4, 6) += 3.0;
  const auto rep = verify_full_checksums(cf);
  EXPECT_EQ(try_correct(cf, rep), 1u);
  EXPECT_NEAR(cf(4, 6), original, 1e-9);
  EXPECT_TRUE(verify_full_checksums(cf).consistent());
}

TEST(Correct, RepairsTwoIsolatedErrorsWithDistinctDeltas) {
  Matrix cf = full_checksum_product(12, 9);
  const double e46 = cf(4, 6);
  const double e57 = cf(5, 7);
  cf(4, 6) += 3.0;
  cf(5, 7) += 2.0;  // Distinct rows, columns, and discrepancies → matchable.
  const auto rep = verify_full_checksums(cf);
  EXPECT_EQ(try_correct(cf, rep), 2u);
  EXPECT_NEAR(cf(4, 6), e46, 1e-9);
  EXPECT_NEAR(cf(5, 7), e57, 1e-9);
  EXPECT_TRUE(verify_full_checksums(cf).consistent());
}

TEST(Correct, RefusesAmbiguousEqualDeltaErrors) {
  Matrix cf = full_checksum_product(12, 9);
  cf(4, 6) += 3.0;
  cf(5, 7) += 3.0;  // Equal discrepancies: row↔column pairing is ambiguous.
  const auto rep = verify_full_checksums(cf);
  EXPECT_EQ(try_correct(cf, rep), 0u);
}

TEST(Correct, RepairsThreeIsolatedErrors) {
  Matrix cf = full_checksum_product(16, 5);
  cf(1, 2) += 1.0;
  cf(6, 9) -= 2.5;
  cf(11, 0) += 4.0;
  const auto rep = verify_full_checksums(cf);
  EXPECT_EQ(try_correct(cf, rep), 3u);
  EXPECT_TRUE(verify_full_checksums(cf).consistent());
}

TEST(Correct, RefusesRowWithTwoBadElements) {
  Matrix cf = full_checksum_product(12, 9);
  cf(4, 6) += 3.0;
  cf(4, 8) += 2.0;  // One bad row, two bad columns.
  const auto rep = verify_full_checksums(cf);
  EXPECT_EQ(try_correct(cf, rep), 0u);
}

TEST(Correct, NoopOnConsistentMatrix) {
  Matrix cf = full_checksum_product(8, 2);
  const auto rep = verify_full_checksums(cf);
  EXPECT_EQ(try_correct(cf, rep), 0u);
}

TEST(Rebuild, MakesDamagedChecksumsConsistent) {
  Matrix cf = full_checksum_product(10, 4);
  cf(10, 3) = -999.0;  // Destroy a checksum entry.
  rebuild_checksums(cf);
  EXPECT_TRUE(verify_full_checksums(cf).consistent());
}

TEST(AbftGemm, StrippedResultMatchesPlainGemm) {
  const std::size_t n = 24;
  const Matrix a = random_square(n, 11);
  const Matrix b = random_square(n, 12);
  const auto res = abft_gemm(a, b, 8);
  Matrix cref(n, n);
  linalg::gemm_reference(a, b, cref);
  EXPECT_LT(Matrix::max_abs_diff(strip_checksums(res.cf), cref), 1e-10);
  EXPECT_TRUE(verify_full_checksums(res.cf).consistent());
  EXPECT_EQ(res.stats.detected_errors, 0u);
}

TEST(AbftGemm, RejectsNonSquare) {
  Matrix a(3, 4), b(4, 4);
  EXPECT_THROW(abft_gemm(a, b, 2), adcc::ContractViolation);
}

TEST(StripChecksums, DropsLastRowAndColumn) {
  const Matrix cf = full_checksum_product(6, 1);
  const Matrix c = strip_checksums(cf);
  EXPECT_EQ(c.rows(), 6u);
  EXPECT_EQ(c.cols(), 6u);
  EXPECT_DOUBLE_EQ(c(2, 3), cf(2, 3));
}

// Property sweep over sizes and ranks, including non-dividing ranks.
struct AbftCase {
  std::size_t n;
  std::size_t k;
};

class AbftSweep : public ::testing::TestWithParam<AbftCase> {};

TEST_P(AbftSweep, ProductCorrectAndChecksumConsistent) {
  const auto [n, k] = GetParam();
  const Matrix a = random_square(n, n + 100);
  const Matrix b = random_square(n, n + 200);
  const auto res = abft_gemm(a, b, k);
  Matrix cref(n, n);
  linalg::gemm_reference(a, b, cref);
  EXPECT_LT(Matrix::max_abs_diff(strip_checksums(res.cf), cref),
            1e-10 * static_cast<double>(n));
  EXPECT_TRUE(verify_full_checksums(res.cf).consistent());
}

INSTANTIATE_TEST_SUITE_P(Shapes, AbftSweep,
                         ::testing::Values(AbftCase{8, 1}, AbftCase{16, 4}, AbftCase{20, 7},
                                           AbftCase{32, 8}, AbftCase{33, 8}, AbftCase{48, 48}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_k" +
                                  std::to_string(info.param.k);
                         });

}  // namespace
}  // namespace adcc::abft
