// Tests for the XSBench lookup kernel and the CDF tally extension.
#include <gtest/gtest.h>

#include <algorithm>

#include "mc/tally.hpp"
#include "mc/xs_kernel.hpp"

namespace adcc::mc {
namespace {

XsConfig small_cfg() {
  XsConfig c;
  c.n_nuclides = 12;
  c.gridpoints_per_nuclide = 64;
  c.seed = 5;
  return c;
}

TEST(SampleLookup, DeterministicPerIndex) {
  const XsDataHost d(small_cfg());
  const CounterRng rng(42);
  const auto a = sample_lookup(rng, 7, d);
  const auto b = sample_lookup(rng, 7, d);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
  EXPECT_EQ(a.material, b.material);
}

TEST(SampleLookup, MaterialInRangeAndFuelHeavy) {
  const XsDataHost d(small_cfg());
  const CounterRng rng(42);
  int fuel = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto s = sample_lookup(rng, static_cast<std::uint64_t>(i), d);
    ASSERT_GE(s.material, 0);
    ASSERT_LT(s.material, kMaterials);
    ASSERT_GT(s.energy, 0.0);
    ASSERT_LT(s.energy, 1.0);
    if (s.material == 0) ++fuel;
  }
  EXPECT_NEAR(static_cast<double>(fuel) / n, 0.40, 0.03);  // XSBench-like fuel share.
}

TEST(GridSearch, MatchesStdUpperBound) {
  const XsDataHost d(small_cfg());
  const auto& u = d.unionized_energy();
  const CounterRng rng(3);
  for (int t = 0; t < 500; ++t) {
    const double e = rng.uniform(static_cast<std::uint64_t>(t));
    const std::size_t got = grid_search(u, e);
    const auto it = std::upper_bound(u.begin(), u.end(), e);
    const std::size_t want =
        it == u.begin() ? 0 : static_cast<std::size_t>(it - u.begin()) - 1;
    EXPECT_EQ(got, want) << "e=" << e;
  }
}

TEST(GridSearch, BoundaryQueries) {
  const XsDataHost d(small_cfg());
  const auto& u = d.unionized_energy();
  EXPECT_EQ(grid_search(u, -1.0), 0u);             // Below the grid.
  EXPECT_EQ(grid_search(u, 2.0), u.size() - 1u);   // Above the grid.
}

TEST(GridSearch, RecordsProbeTrail) {
  const XsDataHost d(small_cfg());
  std::vector<std::size_t> probes;
  grid_search(d.unionized_energy(), 0.5, &probes);
  EXPECT_GE(probes.size(), 8u);   // ~log2(768)
  EXPECT_LE(probes.size(), 16u);
  for (const std::size_t p : probes) EXPECT_LT(p, d.unionized_energy().size());
}

TEST(MacroLookup, NonNegativeChannels) {
  const XsDataHost d(small_cfg());
  double out[kChannels];
  macro_lookup(d, 0.37, 0, out);
  for (double v : out) EXPECT_GT(v, 0.0);
}

TEST(MacroLookup, ScalesWithMaterialSize) {
  // Fuel (6 nuclides) must on average yield a larger total than the smallest
  // material for the same energy — more summed contributions.
  const XsDataHost d(small_cfg());
  int smallest = 1;
  for (int m = 1; m < kMaterials; ++m) {
    if (d.material(m).size() < d.material(smallest).size()) smallest = m;
  }
  double sums[2] = {0, 0};
  for (int t = 0; t < 64; ++t) {
    const double e = (t + 0.5) / 64.0;
    double a[kChannels], b[kChannels];
    macro_lookup(d, e, 0, a);
    macro_lookup(d, e, smallest, b);
    for (int c = 0; c < kChannels; ++c) {
      sums[0] += a[c];
      sums[1] += b[c];
    }
  }
  EXPECT_GT(sums[0], sums[1]);
}

TEST(MacroLookup, InterpolationIsContinuousAcrossGridPoints) {
  const XsDataHost d(small_cfg());
  double lo[kChannels], hi[kChannels];
  macro_lookup(d, 0.499999, 2, lo);
  macro_lookup(d, 0.500001, 2, hi);
  for (int c = 0; c < kChannels; ++c) {
    EXPECT_NEAR(lo[c], hi[c], 1e-3 * (std::abs(lo[c]) + 1));
  }
}

TEST(TallySelect, InverseCdfSemantics) {
  const double macro[kChannels] = {0.2, 0.2, 0.2, 0.2, 0.2};
  EXPECT_EQ(tally_select(macro, 0.05), 0);
  EXPECT_EQ(tally_select(macro, 0.25), 1);
  EXPECT_EQ(tally_select(macro, 0.45), 2);
  EXPECT_EQ(tally_select(macro, 0.65), 3);
  EXPECT_EQ(tally_select(macro, 0.95), 4);
}

TEST(TallySelect, PaperExampleVector) {
  // macro = {0.9, 0.1, 0.3, 0.6, 0.05}: probabilities ∝ the entries.
  const double macro[kChannels] = {0.9, 0.1, 0.3, 0.6, 0.05};
  EXPECT_EQ(tally_select(macro, 0.0), 0);
  EXPECT_EQ(tally_select(macro, 0.45), 0);   // < 0.9/1.95
  EXPECT_EQ(tally_select(macro, 0.47), 1);   // between 0.4615 and 0.5128
  EXPECT_EQ(tally_select(macro, 0.65), 2);   // between 0.5128 and 0.6667
  EXPECT_EQ(tally_select(macro, 0.98), 4);
}

TEST(TallySelect, DegenerateZeroVectorPicksFirst) {
  const double macro[kChannels] = {0, 0, 0, 0, 0};
  EXPECT_EQ(tally_select(macro, 0.7), 0);
}

TEST(TallySelect, ProportionalSamplingFrequencies) {
  const double macro[kChannels] = {1.0, 2.0, 3.0, 2.0, 2.0};  // Σ = 10
  const CounterRng rng(11);
  std::array<int, kChannels> hits{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    hits[static_cast<std::size_t>(
        tally_select(macro, rng.uniform(static_cast<std::uint64_t>(i))))]++;
  }
  EXPECT_NEAR(hits[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(hits[4] / static_cast<double>(n), 0.2, 0.01);
}

TEST(Tally, PercentagesAndGap) {
  Tally a, b;
  a.counts = {10, 10, 10, 10, 10};
  b.counts = {10, 10, 10, 10, 0};
  EXPECT_EQ(a.total(), 50u);
  const auto pct = a.percentages(50);
  EXPECT_DOUBLE_EQ(pct[0], 20.0);
  EXPECT_DOUBLE_EQ(max_percentage_gap(a, b, 50), 20.0);
  EXPECT_DOUBLE_EQ(max_percentage_gap(a, a, 50), 0.0);
}

}  // namespace
}  // namespace adcc::mc
