// Unit tests for the per-chunk payload codec (--ckpt_compress): spec parsing,
// round-trips over the payload shapes the engine actually ships, and the
// store-raw fallback contract for payloads the transform cannot shrink.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "checkpoint/codec.hpp"

namespace adcc::checkpoint {
namespace {

std::vector<std::byte> roundtrip(const std::vector<std::byte>& payload, int level) {
  std::vector<std::byte> stored;
  const std::size_t n = lz_compress(payload.data(), payload.size(), stored, level);
  EXPECT_GT(n, 0u);
  EXPECT_LT(n, payload.size());  // The caller only stores streams that shrink.
  std::vector<std::byte> out(payload.size());
  EXPECT_TRUE(lz_decompress(stored.data(), n, out.data(), out.size()));
  return out;
}

TEST(Codec, ParseSpecs) {
  CodecSpec spec;
  std::string err;
  EXPECT_TRUE(parse_codec("none", &spec, &err));
  EXPECT_EQ(spec.codec, Codec::kRaw);
  EXPECT_TRUE(parse_codec("lz", &spec, &err));
  EXPECT_EQ(spec.codec, Codec::kLz);
  EXPECT_EQ(spec.level, 2);  // "lz" is shorthand for "lz:2".
  EXPECT_EQ(codec_spec_string(spec), "lz");
  EXPECT_TRUE(parse_codec("lz:7", &spec, &err));
  EXPECT_EQ(spec.level, 7);
  EXPECT_EQ(codec_spec_string(spec), "lz:7");

  spec = CodecSpec{Codec::kLz, 5};
  for (const char* bad : {"", "gzip", "lz:", "lz:0", "lz:10", "lz:x", "lz:2:3"}) {
    EXPECT_FALSE(parse_codec(bad, &spec, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
    EXPECT_EQ(spec.level, 5) << bad << " clobbered the spec on failure";
  }
}

TEST(Codec, AllZeroPayloadCompressesHard) {
  std::vector<std::byte> payload(64 << 10, std::byte{0});
  for (int level : {1, 2, 9}) {
    std::vector<std::byte> stored;
    const std::size_t n = lz_compress(payload.data(), payload.size(), stored, level);
    ASSERT_GT(n, 0u);
    EXPECT_LT(n, payload.size() / 100);  // Constant planes: ~8 bytes a plane.
    std::vector<std::byte> out(payload.size(), std::byte{0xFF});
    ASSERT_TRUE(lz_decompress(stored.data(), n, out.data(), out.size()));
    EXPECT_EQ(out, payload);
  }
}

TEST(Codec, DoubleArrayRoundtripsAtEveryLevel) {
  // The engine's dominant payload: smooth doubles sharing sign/exponent
  // structure, plus a tail that is not a multiple of the 8-byte plane stride.
  std::vector<double> v(8191);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 1.0 + static_cast<double>(i) * 1e-4;
  }
  std::vector<std::byte> payload(v.size() * sizeof(double) + 3);
  std::memcpy(payload.data(), v.data(), v.size() * sizeof(double));
  payload[payload.size() - 3] = std::byte{0xAB};
  payload[payload.size() - 2] = std::byte{0xCD};
  payload[payload.size() - 1] = std::byte{0xEF};
  for (int level : {1, 2, 9}) {
    EXPECT_EQ(roundtrip(payload, level), payload) << "level " << level;
  }
}

TEST(Codec, IncompressibleRandomPayloadStoresRaw) {
  // Uniform random bytes: every plane candidate loses, lz_compress must
  // refuse (return 0) instead of growing the chunk.
  std::mt19937_64 rng(12345);
  std::vector<std::byte> payload(256 << 10);
  for (auto& b : payload) b = static_cast<std::byte>(rng() & 0xFF);
  std::vector<std::byte> stored;
  for (int level : {1, 2, 9}) {
    EXPECT_EQ(lz_compress(payload.data(), payload.size(), stored, level), 0u)
        << "level " << level;
  }
}

TEST(Codec, SubMinimumPayloadStoresRaw) {
  // Below kMinPayload the stream headers dominate: always store raw.
  std::vector<std::byte> payload(63, std::byte{0});
  std::vector<std::byte> stored;
  EXPECT_EQ(lz_compress(payload.data(), payload.size(), stored, 2), 0u);
}

TEST(Codec, DeterministicAcrossCalls) {
  // Slot images must stay byte-identical across worker counts, which requires
  // the transform to be a pure function of (payload, level).
  std::vector<double> v(4096, 3.25);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] += static_cast<double>(i % 17);
  std::vector<std::byte> a, b;
  const std::size_t na = lz_compress(v.data(), v.size() * sizeof(double), a, 2);
  const std::size_t nb = lz_compress(v.data(), v.size() * sizeof(double), b, 2);
  ASSERT_GT(na, 0u);
  ASSERT_EQ(na, nb);
  a.resize(na);
  b.resize(nb);
  EXPECT_EQ(a, b);
}

TEST(Codec, TruncatedStreamFailsDecode) {
  std::vector<std::byte> payload(32 << 10, std::byte{0});
  for (std::size_t i = 0; i < payload.size(); i += 9) payload[i] = std::byte{7};
  std::vector<std::byte> stored;
  const std::size_t n = lz_compress(payload.data(), payload.size(), stored, 2);
  ASSERT_GT(n, 0u);
  std::vector<std::byte> out(payload.size());
  EXPECT_FALSE(lz_decompress(stored.data(), n / 2, out.data(), out.size()));
  EXPECT_FALSE(lz_decompress(stored.data(), 0, out.data(), out.size()));
  // Wrong raw size: the stream decodes to exactly raw_bytes or not at all.
  std::vector<std::byte> wrong(payload.size() - 1);
  EXPECT_FALSE(lz_decompress(stored.data(), n, wrong.data(), wrong.size()));
}

}  // namespace
}  // namespace adcc::checkpoint
