// Tests for the algorithm-directed crash-consistent CG (paper Fig. 2) — the
// core contribution: invariant-based detection and bounded recomputation.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "cg/cg.hpp"
#include "cg/cg_cc.hpp"
#include "linalg/spgen.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {
namespace {

memsim::CacheConfig cache_kb(std::size_t kb, std::size_t ways = 8) {
  memsim::CacheConfig c;
  c.ways = ways;
  c.size_bytes = kb << 10;
  return c;
}

struct Problem {
  linalg::CsrMatrix a;
  std::vector<double> b;
};

Problem problem(std::size_t n, std::uint64_t seed = 31) {
  return {linalg::make_spd(n, 9, seed), linalg::make_rhs(n, seed + 1)};
}

CgCcConfig config(std::size_t iters, std::size_t cache_kib) {
  CgCcConfig cfg;
  cfg.n_iters = iters;
  cfg.cache = cache_kb(cache_kib);
  return cfg;
}

TEST(CgCc, UncrashedRunMatchesPlainCg) {
  const Problem p = problem(500);
  CgCrashConsistent cc(p.a, p.b, config(8, 1024));
  EXPECT_FALSE(cc.run());
  const auto plain = cg_solve(p.a, p.b, 8);
  EXPECT_LT(linalg::max_abs_diff(cc.solution(), plain.x), 1e-12);
}

TEST(CgCc, CrashFiresAtArmedIteration) {
  const Problem p = problem(500);
  CgCrashConsistent cc(p.a, p.b, config(10, 512));
  cc.sim().scheduler().arm_at_point(CgCrashConsistent::kPointPUpdated, 6);
  EXPECT_TRUE(cc.run());
  EXPECT_EQ(cc.completed_iters(), 5u);  // Iteration 6 was interrupted.
  EXPECT_TRUE(cc.sim().crashed());
}

TEST(CgCc, RecoveryProducesCorrectFinalSolution) {
  const Problem p = problem(800);
  const std::size_t iters = 10;
  CgCrashConsistent cc(p.a, p.b, config(iters, 256));
  cc.sim().scheduler().arm_at_point(CgCrashConsistent::kPointPUpdated, 7);
  ASSERT_TRUE(cc.run());
  const CgRecovery rec = cc.recover_and_resume();
  cc.finish();
  const auto plain = cg_solve(p.a, p.b, iters);
  EXPECT_LT(linalg::max_abs_diff(cc.solution(), plain.x), 1e-9);
  EXPECT_EQ(rec.crash_iter, 7u);
  EXPECT_GE(rec.restart_iter, 1u);
  EXPECT_LE(rec.restart_iter, 7u);
  EXPECT_EQ(rec.iters_lost, rec.crash_iter - rec.restart_iter + 1);
}

TEST(CgCc, SmallProblemInLargeCacheLosesEverything) {
  // The paper's Class S/W observation: when the whole working set fits in the
  // cache, nothing was ever evicted to NVM and all iterations are lost.
  const Problem p = problem(150);
  CgCrashConsistent cc(p.a, p.b, config(12, 4096));
  cc.sim().scheduler().arm_at_point(CgCrashConsistent::kPointPUpdated, 12);
  ASSERT_TRUE(cc.run());
  const CgRecovery rec = cc.recover_and_resume();
  EXPECT_EQ(rec.restart_iter, 1u);
  EXPECT_EQ(rec.iters_lost, 12u);
}

TEST(CgCc, LargeProblemInSmallCacheLosesFewIterations) {
  // The paper's Class B/C observation: streaming evicts older history rows, so
  // only the most recent iteration(s) are volatile at crash time.
  const Problem p = problem(4000);
  CgCrashConsistent cc(p.a, p.b, config(10, 128));
  cc.sim().scheduler().arm_at_point(CgCrashConsistent::kPointPUpdated, 9);
  ASSERT_TRUE(cc.run());
  const CgRecovery rec = cc.recover_and_resume();
  EXPECT_LE(rec.iters_lost, 3u);
  EXPECT_GE(rec.iters_lost, 1u);
  cc.finish();
  const auto plain = cg_solve(p.a, p.b, 10);
  EXPECT_LT(linalg::max_abs_diff(cc.solution(), plain.x), 1e-9);
}

TEST(CgCc, RecomputationShrinksWithProblemSize) {
  // Fig. 3's monotone trend, at test scale: bigger input ⇒ fewer lost
  // iterations under the same cache.
  std::vector<std::size_t> sizes = {200, 1000, 4000};
  std::vector<std::size_t> lost;
  for (const std::size_t n : sizes) {
    const Problem p = problem(n);
    CgCrashConsistent cc(p.a, p.b, config(10, 128));
    cc.sim().scheduler().arm_at_point(CgCrashConsistent::kPointPUpdated, 9);
    ASSERT_TRUE(cc.run());
    lost.push_back(cc.recover_and_resume().iters_lost);
  }
  EXPECT_GE(lost.front(), lost.back());
  EXPECT_LE(lost.back(), 3u);
}

TEST(CgCc, DurableIterationCounterIsFlushedEveryIteration) {
  const Problem p = problem(500);
  CgCrashConsistent cc(p.a, p.b, config(6, 256));
  cc.sim().scheduler().arm_at_point(CgCrashConsistent::kPointIterEnd, 4);
  ASSERT_TRUE(cc.run());
  const CgRecovery rec = cc.recover_and_resume();
  // The counter is flushed at the top of each iteration, so detection starts
  // at the crashed iteration, not at 0.
  EXPECT_GE(rec.candidates_checked, 1u);
  EXPECT_LE(rec.restart_iter, rec.crash_iter);
}

TEST(CgCc, DetectAndResumeTimesAreReported) {
  const Problem p = problem(1000);
  CgCrashConsistent cc(p.a, p.b, config(8, 128));
  cc.sim().scheduler().arm_at_point(CgCrashConsistent::kPointPUpdated, 7);
  ASSERT_TRUE(cc.run());
  const CgRecovery rec = cc.recover_and_resume();
  EXPECT_GT(rec.detect_seconds, 0.0);
  EXPECT_GT(rec.resume_seconds, 0.0);
  EXPECT_GT(cc.avg_iter_seconds(), 0.0);
}

TEST(CgCc, RecoverWithoutCrashIsRejected) {
  const Problem p = problem(200);
  CgCrashConsistent cc(p.a, p.b, config(4, 256));
  EXPECT_FALSE(cc.run());
  EXPECT_THROW(cc.recover_and_resume(), ContractViolation);
}

TEST(CgCc, AccessCountTriggerAlsoRecovers) {
  const Problem p = problem(800);
  CgCrashConsistent cc(p.a, p.b, config(8, 128));
  cc.sim().scheduler().arm_at_access(10'000);
  if (cc.run()) {
    const CgRecovery rec = cc.recover_and_resume();
    cc.finish();
    const auto plain = cg_solve(p.a, p.b, 8);
    EXPECT_LT(linalg::max_abs_diff(cc.solution(), plain.x), 1e-9);
    EXPECT_GE(rec.crash_iter, 1u);
  } else {
    FAIL() << "10k line accesses should interrupt this configuration";
  }
}

TEST(CgCcNative, MatchesPlainCg) {
  const Problem p = problem(600);
  nvm::PerfModel m(
      nvm::PerfConfig{.dram_bw_bytes_per_s = 10e9, .bandwidth_slowdown = 1.0, .enabled = false});
  nvm::NvmRegion region(64u << 20, m);
  const auto res = run_cg_cc_native(p.a, p.b, 12, region);
  const auto plain = cg_solve(p.a, p.b, 12);
  EXPECT_LT(linalg::max_abs_diff(res.cg.x, plain.x), 1e-12);
  EXPECT_EQ(res.counter_flushes, 12u);
}

// Crash-point sweep: recovery must be correct wherever the crash lands.
class CgCrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CgCrashSweep, RecoveryCorrectAtEveryCrashSite) {
  const Problem p = problem(700, 77);
  const std::size_t iters = 9;
  CgCrashConsistent cc(p.a, p.b, config(iters, 128));
  cc.sim().scheduler().arm_at_point(CgCrashConsistent::kPointPUpdated, GetParam());
  ASSERT_TRUE(cc.run());
  const CgRecovery rec = cc.recover_and_resume();
  cc.finish();
  const auto plain = cg_solve(p.a, p.b, iters);
  EXPECT_LT(linalg::max_abs_diff(cc.solution(), plain.x), 1e-9);
  EXPECT_EQ(rec.crash_iter, GetParam());
}

INSTANTIATE_TEST_SUITE_P(CrashIterations, CgCrashSweep, ::testing::Values(1, 2, 3, 5, 8, 9));

}  // namespace
}  // namespace adcc::cg
