// Tests for the batched scenario-matrix layer: SweepSpec grammar (lists,
// ranges, geometric steps, bad-grammar rejection), deck expansion and cell
// ordering, the engine's serial-vs-parallel determinism, and per-cell failure
// isolation.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/registry.hpp"
#include "core/sweep.hpp"
#include "kernels/threads.hpp"

namespace adcc::core {
namespace {

SweepSpec parse_ok(const std::string& spec) {
  std::string error;
  const auto parsed = parse_sweep(spec, &error);
  EXPECT_TRUE(parsed.has_value()) << spec << ": " << error;
  return parsed.value_or(SweepSpec{});
}

std::string parse_err(const std::string& spec) {
  std::string error;
  EXPECT_FALSE(parse_sweep(spec, &error).has_value()) << spec;
  EXPECT_FALSE(error.empty()) << spec;
  return error;
}

// ---------------------------------------------------------------- grammar --

TEST(ParseSweep, Lists) {
  const SweepSpec spec = parse_ok("mode=native+pmem-tx,cache_mb=1+4+16");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].key, "mode");
  EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"native", "pmem-tx"}));
  EXPECT_EQ(spec.axes[1].values, (std::vector<std::string>{"1", "4", "16"}));
  EXPECT_EQ(spec.cells(), 6u);
}

TEST(ParseSweep, SingleValueAndWhitespace) {
  const SweepSpec spec = parse_ok(" n = 4000 , policy = selective ");
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"4000"}));
  EXPECT_EQ(spec.axes[1].values, (std::vector<std::string>{"selective"}));
  EXPECT_EQ(spec.cells(), 1u);
}

TEST(ParseSweep, Ranges) {
  const SweepSpec spec = parse_ok("threads=1:8");
  ASSERT_EQ(spec.axes.size(), 1u);
  ASSERT_EQ(spec.axes[0].values.size(), 8u);
  EXPECT_EQ(spec.axes[0].values.front(), "1");
  EXPECT_EQ(spec.axes[0].values.back(), "8");

  const SweepSpec stepped = parse_ok("n=1000:5000:1000");
  EXPECT_EQ(stepped.axes[0].values,
            (std::vector<std::string>{"1000", "2000", "3000", "4000", "5000"}));

  // Inclusive upper bound only when the step lands on it.
  const SweepSpec ragged = parse_ok("n=1:10:4");
  EXPECT_EQ(ragged.axes[0].values, (std::vector<std::string>{"1", "5", "9"}));

  const SweepSpec degenerate = parse_ok("n=7:7");
  EXPECT_EQ(degenerate.axes[0].values, (std::vector<std::string>{"7"}));
}

TEST(ParseSweep, GeometricSteps) {
  const SweepSpec spec = parse_ok("cache_mb=4:64:x2");
  EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"4", "8", "16", "32", "64"}));

  // Size suffixes expand to bytes.
  const SweepSpec sizes = parse_ok("size=1M:64M:x4");
  EXPECT_EQ(sizes.axes[0].values,
            (std::vector<std::string>{"1048576", "4194304", "16777216", "67108864"}));

  // The last value below hi is kept even when the factor overshoots hi.
  const SweepSpec overshoot = parse_ok("n=3:20:x3");
  EXPECT_EQ(overshoot.axes[0].values, (std::vector<std::string>{"3", "9"}));
}

TEST(ParseSweep, ModeAllAndCanonicalization) {
  const SweepSpec spec = parse_ok("mode=all");
  EXPECT_EQ(spec.axes[0].values.size(), 7u);
  // Forgiving mode spellings canonicalize to mode_name.
  const SweepSpec alias = parse_ok("mode=ckpt_hetero+ALG");
  EXPECT_EQ(alias.axes[0].values, (std::vector<std::string>{"ckpt-nvm/dram", "alg-nvm"}));
  // Crash plans canonicalize too (default occurrence dropped).
  const SweepSpec crash = parse_ok("crash=none+point:cg:p_updated:1+fuzz:9");
  EXPECT_EQ(crash.axes[0].values,
            (std::vector<std::string>{"none", "point:cg:p_updated", "fuzz:9"}));
}

TEST(ParseSweep, WorkloadAllSkipsSimAdapters) {
  const SweepSpec spec = parse_ok("workload=all");
  for (const std::string& name : spec.axes[0].values) {
    EXPECT_FALSE(name.ends_with("-sim")) << name;
  }
  EXPECT_NE(spec.axes[0].values, std::vector<std::string>{});
  // Explicitly named sim workloads are accepted.
  EXPECT_EQ(parse_ok("workload=cg-sim").axes[0].values,
            (std::vector<std::string>{"cg-sim"}));
}

TEST(ParseSweep, BadGrammar) {
  parse_err("");
  parse_err("n=1000,,mode=all");       // Stray comma.
  parse_err("n");                      // Missing '='.
  parse_err("n=");                     // No values.
  parse_err("n=1++2");                 // Empty token.
  parse_err("=5");                     // Empty key.
  parse_err("N=5");                    // Bad key charset.
  parse_err("n=5,n=6");                // Duplicate axis.
  parse_err("mode=warp-drive");        // Unknown mode.
  parse_err("workload=nosuch");        // Unknown workload.
  parse_err("crash=atstep:3");         // Malformed crash plan.
  parse_err("policy=sometimes");       // Unknown policy.
  parse_err("backend=cuda");           // Unknown kernel backend.
  parse_err("n=10:1");                 // Empty range.
  parse_err("n=1:10:0");               // Zero step.
  parse_err("n=1:10:x1");              // Geometric factor < 2.
  parse_err("n=0:8:x2");               // Geometric from zero never advances.
  parse_err("n=1:2:3:4");              // Too many range fields.
  parse_err("n=a:b");                  // Non-numeric bounds.
  EXPECT_NE(parse_err("n=1:1M").find("expands past"), std::string::npos);
}

// -------------------------------------------------------- deck expansion --

TEST(SweepSpec, ExpansionCountsAndOrdering) {
  const SweepSpec spec = parse_ok("mode=native+alg-nvm,n=100+200+300,crash=none+step:1");
  EXPECT_EQ(spec.cells(), 12u);

  // First axis slowest-varying (nested-loop order).
  const auto first = spec.assignment(0);
  EXPECT_EQ(first[0], (std::pair<std::string, std::string>{"mode", "native"}));
  EXPECT_EQ(first[1], (std::pair<std::string, std::string>{"n", "100"}));
  EXPECT_EQ(first[2], (std::pair<std::string, std::string>{"crash", "none"}));
  const auto second = spec.assignment(1);
  EXPECT_EQ(second[2], (std::pair<std::string, std::string>{"crash", "step:1"}));
  const auto last = spec.assignment(11);
  EXPECT_EQ(last[0].second, "alg-nvm");
  EXPECT_EQ(last[1].second, "300");
  EXPECT_EQ(last[2].second, "step:1");

  EXPECT_EQ(spec.canonical(), "mode=native+alg-nvm,n=100+200+300,crash=none+step:1");
  // canonical() round-trips through parse_sweep.
  EXPECT_EQ(parse_ok(spec.canonical()).cells(), 12u);
}

// ----------------------------------------------------------------- engine --

Options tiny_base() {
  Options base;
  base.set("quick", "1").set("n", "200").set("iters", "4").set("verify", "1");
  return base;
}

SweepConfig tiny_config(int jobs) {
  SweepConfig cfg;
  cfg.base = tiny_base();
  cfg.jobs = jobs;
  cfg.baseline = false;  // Keep engine tests fast and timing-free.
  cfg.scratch_root = std::filesystem::temp_directory_path() / "adcc_test_sweep";
  return cfg;
}

TEST(RunSweep, ExecutesEveryCellInDeckOrder) {
  const SweepSpec spec = parse_ok("workload=cg,mode=native+ckpt-nvm+alg-nvm,crash=none+step:2");
  const SweepResult deck = run_sweep(spec, tiny_config(1));
  ASSERT_EQ(deck.cells.size(), 6u);
  EXPECT_TRUE(deck.all_ok());
  for (std::size_t i = 0; i < deck.cells.size(); ++i) {
    const SweepCellResult& cell = deck.cells[i];
    EXPECT_EQ(cell.index, i);
    EXPECT_EQ(cell.workload, "cg");
    EXPECT_EQ(cell.result.work_units, 4u);
    EXPECT_TRUE(cell.result.verify_ran);
    EXPECT_TRUE(cell.result.verified);
    const bool crashing = cell.crash_label == "step:2";
    EXPECT_EQ(cell.result.crashes, crashing ? 1u : 0u);
  }
  // Deck order follows the spec: native/none, native/step:2, ckpt-nvm/none, ...
  EXPECT_EQ(deck.cells[0].mode_label, "native");
  EXPECT_EQ(deck.cells[0].crash_label, "none");
  EXPECT_EQ(deck.cells[1].crash_label, "step:2");
  EXPECT_EQ(deck.cells[2].mode_label, "ckpt-nvm");
  EXPECT_EQ(deck.table(false).render(TableFormat::kCsv).find("ERROR"), std::string::npos);
}

TEST(RunSweep, ParallelDeckMatchesSerialByteForByte) {
  // Mid-unit fuzz plans + a boundary plan across three modes: everything that
  // must stay deterministic under worker-thread scheduling.
  const SweepSpec spec =
      parse_ok("workload=cg,mode=native+pmem-tx+alg-nvm,crash=step:1+fuzz:3,n=150+250");
  const SweepResult serial = run_sweep(spec, tiny_config(1));
  const SweepResult parallel = run_sweep(spec, tiny_config(4));
  ASSERT_EQ(serial.cells.size(), 12u);
  ASSERT_EQ(parallel.cells.size(), 12u);
  EXPECT_TRUE(serial.all_ok());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const SweepCellResult& s = serial.cells[i];
    const SweepCellResult& p = parallel.cells[i];
    EXPECT_EQ(s.assignment, p.assignment) << i;
    EXPECT_EQ(s.status, p.status) << i;
    EXPECT_EQ(s.result.work_units, p.result.work_units) << i;
    EXPECT_EQ(s.result.crashes, p.result.crashes) << i;
    EXPECT_EQ(s.result.crash_unit, p.result.crash_unit) << i;
    EXPECT_EQ(s.result.restart_unit, p.result.restart_unit) << i;
    EXPECT_EQ(s.result.crash_access, p.result.crash_access) << i;
    EXPECT_EQ(s.result.recomputation.units_lost, p.result.recomputation.units_lost) << i;
    EXPECT_EQ(s.result.recomputation.partial_units, p.result.recomputation.partial_units) << i;
  }
  // The timing-free renderings are byte-identical (the acceptance criterion
  // scripts/smoke.sh re-checks end to end through the adccbench CLI).
  EXPECT_EQ(serial.table(false).render(TableFormat::kCsv),
            parallel.table(false).render(TableFormat::kCsv));
  EXPECT_EQ(serial.table(false).render(TableFormat::kJson),
            parallel.table(false).render(TableFormat::kJson));
}

TEST(RunSweep, CellFailureIsIsolated) {
  // A 4 KB arena override starves the alg-nvm substrate while leaving native
  // untouched: the deck must report the failing cells and finish the rest.
  const SweepSpec spec = parse_ok("workload=cg,mode=native+alg-nvm,crash=none+step:2");
  SweepConfig cfg = tiny_config(1);
  cfg.base.set("arena", "4096");
  const SweepResult deck = run_sweep(spec, cfg);
  ASSERT_EQ(deck.cells.size(), 4u);
  EXPECT_FALSE(deck.all_ok());
  EXPECT_EQ(deck.count(SweepCellResult::Status::kOk), 2u);
  EXPECT_EQ(deck.count(SweepCellResult::Status::kError), 2u);
  for (const SweepCellResult& cell : deck.cells) {
    if (cell.mode_label == "native") {
      EXPECT_EQ(cell.status, SweepCellResult::Status::kOk) << cell.index;
    } else {
      EXPECT_EQ(cell.status, SweepCellResult::Status::kError) << cell.index;
      EXPECT_FALSE(cell.error.empty());
    }
  }
  // Error cells render as ERROR rows, not crashes of the table layer.
  const std::string csv = deck.table(false).render(TableFormat::kCsv);
  EXPECT_NE(csv.find("ERROR"), std::string::npos);
  // And the parallel deck fails the same cells in the same order.
  const SweepResult par = run_sweep(spec, [&] {
    SweepConfig c = tiny_config(3);
    c.base.set("arena", "4096");
    return c;
  }());
  EXPECT_EQ(deck.table(false).render(TableFormat::kCsv),
            par.table(false).render(TableFormat::kCsv));
}

TEST(RunSweep, CkptThreadsAndChunkSizeAreFirstClassAxes) {
  // The durability-engine knobs sweep like any other option key, and every
  // (threads, chunk) combination verifies under crash-free and crashing runs
  // — thread count is a perf knob, never a semantics knob.
  const SweepSpec spec = parse_ok(
      "workload=cg,mode=ckpt-nvm,ckpt_threads=1+4,ckpt_chunk_kb=4+256,crash=none+step:2");
  const SweepResult deck = run_sweep(spec, tiny_config(1));
  ASSERT_EQ(deck.cells.size(), 8u);
  EXPECT_TRUE(deck.all_ok());
  for (const SweepCellResult& cell : deck.cells) {
    EXPECT_TRUE(cell.result.verified) << cell.index;
  }
}

TEST(RunSweep, TelemetryColumnsBlankWithoutTimingAndStayByteStable) {
  // The t_stage..t_kernel columns are wall-clock-derived: populated on a
  // telemetry deck under timing, "-" under table(false) — so smoke.sh's
  // serial-vs-parallel byte-diff and the memoized-baseline key never see them.
  const SweepSpec spec = parse_ok("workload=cg,mode=native+ckpt-nvm,crash=none");
  SweepConfig cfg = tiny_config(1);
  cfg.telemetry = true;
  const SweepResult deck = run_sweep(spec, cfg);
  ASSERT_EQ(deck.cells.size(), 2u);
  EXPECT_TRUE(deck.all_ok());

  const std::string timed = deck.table(true).render(TableFormat::kCsv);
  for (const char* col : {"t_stage", "t_crc", "t_io", "t_drain", "t_kernel"}) {
    EXPECT_NE(timed.find(col), std::string::npos) << col;
  }
  // The ckpt-nvm cell measured real checkpoint CRC work and kernel time; the
  // native cell ran no checkpoint stages at all.
  const SweepCellResult& native = deck.cells[0];
  const SweepCellResult& ckpt = deck.cells[1];
  ASSERT_TRUE(native.telemetry);
  ASSERT_TRUE(ckpt.telemetry);
  EXPECT_EQ(native.t_crc, 0.0);
  EXPECT_GT(ckpt.t_crc, 0.0);
  EXPECT_GT(ckpt.t_kernel, 0.0);

  // table(false) blanks every stage column even on a telemetry deck, and is
  // byte-identical to a deck that never collected telemetry.
  const std::string untimed = deck.table(false).render(TableFormat::kCsv);
  const SweepResult plain = run_sweep(spec, tiny_config(1));
  EXPECT_EQ(untimed, plain.table(false).render(TableFormat::kCsv));
}

TEST(RunSweep, FuzzSeedAxisSharesOneProbe) {
  // crash=fuzz:A+fuzz:B cells of one shape share a single probe repetition;
  // the shared plan must reproduce what the inline per-runner probe picks.
  const SweepSpec spec = parse_ok("workload=cg,mode=alg-nvm,crash=fuzz:5+fuzz:6");
  const SweepResult deck = run_sweep(spec, tiny_config(1));
  ASSERT_EQ(deck.cells.size(), 2u);
  EXPECT_TRUE(deck.all_ok());
  EXPECT_EQ(deck.cells[0].result.crashes, 1u);
  EXPECT_EQ(deck.cells[1].result.crashes, 1u);
  // Different seeds land different plans off the same probe (overwhelmingly).
  EXPECT_NE(deck.cells[0].result.crash_access, deck.cells[1].result.crash_access);

  const auto solo = WorkloadRegistry::instance().create("cg", tiny_base());
  ScenarioConfig sc;
  sc.mode = Mode::kAlgNvm;
  sc.crash = *parse_crash("fuzz:5");
  solo->tune_env(sc.mode, sc.env);
  const ScenarioResult inline_probe = run_scenario(*solo, sc);
  EXPECT_EQ(deck.cells[0].result.crash_access, inline_probe.crash_access);
}

TEST(RunSweep, ThreadsAxisDoesNotLeakPastTheDeck) {
  // Regression: run_cell used to omp_set_num_threads per cell and never
  // restore, so a threads=8+1 deck left whatever cell ran last as the
  // process-wide OpenMP max. The ScopedOmpThreads overlay must unwind to the
  // ambient value — observable in every build via requested_kernel_threads().
  ASSERT_EQ(requested_kernel_threads(), 0);
  {
    const ScopedOmpThreads ambient(5);
    const SweepSpec spec = parse_ok("workload=cg,mode=native,threads=8+1");
    const SweepResult deck = run_sweep(spec, tiny_config(1));
    ASSERT_EQ(deck.cells.size(), 2u);
    EXPECT_TRUE(deck.all_ok());
    EXPECT_EQ(requested_kernel_threads(), 5);  // Deck unwound to ambient.
  }
  EXPECT_EQ(requested_kernel_threads(), 0);
}

}  // namespace
}  // namespace adcc::core
