// Unit tests for dense/sparse linear-algebra kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "linalg/csr.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::linalg {
namespace {

TEST(VecOps, DotMatchesManual) {
  std::vector<double> x = {1, 2, 3}, y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
}

TEST(VecOps, DotParallelPathConsistent) {
  // Above the OpenMP threshold the reduction must agree with a serial sum.
  const std::size_t n = 1u << 15;
  std::vector<double> x(n), y(n);
  SplitMix64 rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.next_double();
    y[i] = rng.next_double();
  }
  double serial = 0;
  for (std::size_t i = 0; i < n; ++i) serial += x[i] * y[i];
  EXPECT_NEAR(dot(x, y), serial, 1e-7 * serial);
}

TEST(VecOps, Norm2) {
  std::vector<double> x = {3, 4};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
}

TEST(VecOps, Axpy) {
  std::vector<double> x = {1, 1}, y = {2, 3};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
}

TEST(VecOps, XpayOutOfPlace) {
  std::vector<double> x = {1, 2}, y = {10, 20}, z(2);
  xpay(x, 0.5, y, z);
  EXPECT_DOUBLE_EQ(z[0], 6.0);
  EXPECT_DOUBLE_EQ(z[1], 12.0);
}

TEST(VecOps, XpayAliasedOutput) {
  std::vector<double> x = {1, 2}, y = {10, 20};
  xpay(x, 0.5, y, y);  // z aliases y: z[i] = x[i] + a·y[i] elementwise.
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(VecOps, SumScaleZeroCopy) {
  std::vector<double> x = {1, 2, 3};
  EXPECT_DOUBLE_EQ(sum(x), 6.0);
  scale(2.0, x);
  EXPECT_DOUBLE_EQ(x[2], 6.0);
  std::vector<double> y(3);
  copy(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  zero(y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

TEST(VecOps, MaxAbsDiff) {
  std::vector<double> x = {1, 2, 3}, y = {1, 2.5, 3};
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 0.5);
}

CsrMatrix small_matrix() {
  // [2 1 0]
  // [1 3 0]
  // [0 0 4]
  return CsrMatrix(3, {0, 2, 4, 5}, {0, 1, 0, 1, 2}, {2, 1, 1, 3, 4});
}

TEST(Csr, SpmvMatchesDense) {
  const CsrMatrix a = small_matrix();
  std::vector<double> x = {1, 2, 3}, y(3);
  a.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(Csr, SpmvRowMatchesFullSpmv) {
  const CsrMatrix a = small_matrix();
  std::vector<double> x = {1, 2, 3};
  EXPECT_DOUBLE_EQ(a.spmv_row(1, x), 7.0);
}

TEST(Csr, IsSymmetricDetectsSymmetry) {
  EXPECT_TRUE(small_matrix().is_symmetric());
}

TEST(Csr, IsSymmetricDetectsAsymmetry) {
  const CsrMatrix a(2, {0, 2, 3}, {0, 1, 1}, {1, 5, 1});  // a01=5, a10 missing
  EXPECT_FALSE(a.is_symmetric());
}

TEST(Csr, ConstructorValidatesRowPtr) {
  EXPECT_THROW(CsrMatrix(2, {0, 1}, {0}, {1.0}), ContractViolation);           // short row_ptr
  EXPECT_THROW(CsrMatrix(2, {0, 1, 2}, {0}, {1.0}), ContractViolation);        // bounds mismatch
  EXPECT_THROW(CsrMatrix(2, {0, 1, 1}, {0, 1}, {1.0, 2.0}), ContractViolation);  // col/val mismatch
}

TEST(Csr, FootprintCountsAllArrays) {
  const CsrMatrix a = small_matrix();
  EXPECT_EQ(a.footprint_bytes(), 4 * sizeof(std::size_t) + 5 * 4 + 5 * 8);
}

TEST(Csr, NnzAndRows) {
  const CsrMatrix a = small_matrix();
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.nnz(), 5u);
}

}  // namespace
}  // namespace adcc::linalg
