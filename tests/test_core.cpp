// Tests for the core facade: modes, environment factory, harness, reporting.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "core/harness.hpp"
#include "core/modes.hpp"
#include "core/report.hpp"

namespace adcc::core {
namespace {

TEST(Modes, SevenDistinctModesWithUniqueNames) {
  const auto modes = all_modes();
  EXPECT_EQ(modes.size(), 7u);  // The paper's seven test cases.
  std::set<std::string> names;
  for (Mode m : modes) names.insert(mode_name(m));
  EXPECT_EQ(names.size(), 7u);
}

TEST(Modes, Classification) {
  EXPECT_TRUE(is_checkpoint_mode(Mode::kCkptDisk));
  EXPECT_TRUE(is_checkpoint_mode(Mode::kCkptNvm));
  EXPECT_TRUE(is_checkpoint_mode(Mode::kCkptHetero));
  EXPECT_FALSE(is_checkpoint_mode(Mode::kAlgNvm));
  EXPECT_TRUE(is_algorithm_mode(Mode::kAlgNvm));
  EXPECT_TRUE(is_algorithm_mode(Mode::kAlgHetero));
  EXPECT_FALSE(is_algorithm_mode(Mode::kNative));
}

TEST(Modes, ParseModeRoundTripsEveryName) {
  for (Mode m : all_modes()) {
    const auto parsed = parse_mode(mode_name(m));
    ASSERT_TRUE(parsed.has_value()) << mode_name(m);
    EXPECT_EQ(*parsed, m) << mode_name(m);
  }
}

TEST(Modes, ParseModeAcceptsForgivingSpellings) {
  EXPECT_EQ(parse_mode("NATIVE"), Mode::kNative);
  EXPECT_EQ(parse_mode("ckpt_disk"), Mode::kCkptDisk);
  EXPECT_EQ(parse_mode("ckpt-hetero"), Mode::kCkptHetero);
  EXPECT_EQ(parse_mode("alg-hetero"), Mode::kAlgHetero);
  EXPECT_EQ(parse_mode("Alg_Nvm"), Mode::kAlgNvm);
  EXPECT_EQ(parse_mode("tx"), Mode::kPmemTx);
}

TEST(Modes, ParseModeRejectsUnknownNames) {
  EXPECT_FALSE(parse_mode("").has_value());
  EXPECT_FALSE(parse_mode("dram").has_value());
  EXPECT_FALSE(parse_mode("ckpt-tape").has_value());
}

ModeEnvConfig small_env() {
  ModeEnvConfig c;
  c.arena_bytes = 4u << 20;
  c.slot_bytes = 1u << 20;
  c.dram_cache_bytes = 1u << 20;
  c.scratch_dir = std::filesystem::temp_directory_path() / "adcc_core_test";
  return c;
}

TEST(MakeEnv, NativeHasNoSubstrate) {
  const ModeEnv env = make_env(Mode::kNative, small_env());
  EXPECT_EQ(env.perf, nullptr);
  EXPECT_EQ(env.region, nullptr);
  EXPECT_EQ(env.backend, nullptr);
}

TEST(MakeEnv, CkptDiskHasBackendWithoutArena) {
  const ModeEnv env = make_env(Mode::kCkptDisk, small_env());
  EXPECT_NE(env.backend, nullptr);
  EXPECT_EQ(env.region, nullptr);
}

TEST(MakeEnv, CkptNvmIsFullSpeedNvm) {
  const ModeEnv env = make_env(Mode::kCkptNvm, small_env());
  ASSERT_NE(env.perf, nullptr);
  EXPECT_FALSE(env.perf->config().enabled);  // NVM == DRAM assumption.
  EXPECT_NE(env.region, nullptr);
  EXPECT_NE(env.backend, nullptr);
  EXPECT_EQ(env.dram, nullptr);
}

TEST(MakeEnv, CkptHeteroThrottlesAndStagesThroughDram) {
  const ModeEnv env = make_env(Mode::kCkptHetero, small_env());
  ASSERT_NE(env.perf, nullptr);
  EXPECT_TRUE(env.perf->config().enabled);
  EXPECT_DOUBLE_EQ(env.perf->config().bandwidth_slowdown, 8.0);
  EXPECT_NE(env.dram, nullptr);
  EXPECT_NE(env.backend, nullptr);
}

TEST(MakeEnv, AlgorithmModesHaveArenaButNoBackend) {
  for (Mode m : {Mode::kAlgNvm, Mode::kAlgHetero, Mode::kPmemTx}) {
    const ModeEnv env = make_env(m, small_env());
    EXPECT_NE(env.region, nullptr) << mode_name(m);
    EXPECT_EQ(env.backend, nullptr) << mode_name(m);
  }
}

TEST(Harness, TimeSecondsMeasuresWork) {
  const double t = time_seconds([] { spin_for(0.002); });
  EXPECT_GE(t, 0.0018);
}

TEST(Harness, MedianSecondsIsRobustToOneSlowRun) {
  int call = 0;
  const double t = median_seconds([&] { spin_for(++call == 1 ? 0.01 : 0.001); }, 3,
                                  /*warmup=*/false);
  EXPECT_LT(t, 0.006);
}

TEST(Harness, NormalizeComputesOverheadPercent) {
  const NormalizedTime n = normalize(1.25, 1.0);
  EXPECT_DOUBLE_EQ(n.normalized, 1.25);
  EXPECT_NEAR(n.overhead_percent(), 25.0, 1e-12);
}

TEST(Harness, RecomputationBreakdownNormalizesByUnit) {
  RecomputationBreakdown b;
  b.detect_seconds = 0.5;
  b.resume_seconds = 1.5;
  b.unit_seconds = 0.5;
  b.units_lost = 3;
  EXPECT_DOUBLE_EQ(b.detect_normalized(), 1.0);
  EXPECT_DOUBLE_EQ(b.resume_normalized(), 3.0);
  EXPECT_DOUBLE_EQ(b.total_normalized(), 4.0);
}

TEST(Report, TableRejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Report, FormattingHelpers) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::pct(0.082), "8.2%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Report, TablePrintsAllRows) {
  Table t({"col1", "col2"});
  t.add_row({"x", "1"});
  t.add_row({"y", "2"});
  testing::internal::CaptureStdout();
  t.print();
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_NE(out.find("y"), std::string::npos);
}

}  // namespace
}  // namespace adcc::core
