// Tests for incremental checkpointing and epoch-batched persistence.
#include <gtest/gtest.h>

#include "checkpoint/incremental.hpp"
#include "common/check.hpp"
#include "nvm/epoch.hpp"

namespace adcc {
namespace {

nvm::PerfModel& model() {
  static nvm::PerfModel m(
      nvm::PerfConfig{.dram_bw_bytes_per_s = 10e9, .bandwidth_slowdown = 1.0, .enabled = false});
  return m;
}

using checkpoint::IncrementalCheckpointSet;
constexpr std::size_t kBlock = IncrementalCheckpointSet::kBlock;

TEST(Incremental, FirstSaveWritesEverything) {
  nvm::NvmRegion region(4u << 20, model());
  std::vector<double> x(2 * kBlock / 8, 1.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.save(), x.size() * 8);  // Mirror starts zeroed; all blocks differ.
  EXPECT_EQ(set.version(), 1u);
}

TEST(Incremental, UnchangedDataWritesNothing) {
  nvm::NvmRegion region(4u << 20, model());
  std::vector<double> x(2 * kBlock / 8, 1.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  set.save();
  EXPECT_EQ(set.save(), 0u);
  EXPECT_EQ(set.stats().saves, 2u);
}

TEST(Incremental, OnlyModifiedBlocksAreWritten) {
  nvm::NvmRegion region(8u << 20, model());
  std::vector<double> x(8 * kBlock / 8, 1.0);  // 8 blocks.
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  set.save();
  x[0] = 2.0;                    // Block 0.
  x[5 * kBlock / 8] = 3.0;       // Block 5.
  EXPECT_EQ(set.save(), 2 * kBlock);
  EXPECT_EQ(set.stats().blocks_written, 8u + 2u);
}

TEST(Incremental, RestoreRecoversLatestCheckpoint) {
  nvm::NvmRegion region(4u << 20, model());
  std::vector<double> x(kBlock / 8, 0.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  std::fill(x.begin(), x.end(), 7.0);
  set.save();
  std::fill(x.begin(), x.end(), -1.0);  // "Lost" post-checkpoint work.
  EXPECT_EQ(set.restore(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
}

TEST(Incremental, RestoreBeforeAnySaveIsNoop) {
  nvm::NvmRegion region(4u << 20, model());
  std::vector<double> x(kBlock / 8, 5.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.restore(), 0u);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
}

TEST(Incremental, HintedSaveWritesOnlyHintedBlocks) {
  nvm::NvmRegion region(8u << 20, model());
  std::vector<double> x(8 * kBlock / 8, 1.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  set.save();
  x[0] = 2.0;
  x[3 * kBlock / 8] = 4.0;
  const IncrementalCheckpointSet::DirtyRange hints[] = {
      {0, 0, 8}, {0, 3 * kBlock, 16}};
  EXPECT_EQ(set.save(hints), 2 * kBlock);
  // A hinted save never scans the other 6 blocks.
  EXPECT_EQ(set.stats().blocks_total, 8u + 2u);
}

TEST(Incremental, HintSpanningBlockBoundaryCoversBothBlocks) {
  nvm::NvmRegion region(8u << 20, model());
  std::vector<double> x(4 * kBlock / 8, 1.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  set.save();
  x[kBlock / 8 - 1] = 9.0;  // Last double of block 0.
  x[kBlock / 8] = 9.0;      // First double of block 1.
  const IncrementalCheckpointSet::DirtyRange hints[] = {{0, kBlock - 8, 16}};
  EXPECT_EQ(set.save(hints), 2 * kBlock);
}

TEST(Incremental, MultipleObjectsTrackedIndependently) {
  nvm::NvmRegion region(8u << 20, model());
  std::vector<double> x(kBlock / 8, 1.0), y(kBlock / 8, 2.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  set.add("y", y.data(), y.size() * 8);
  set.save();
  y[0] = 5.0;
  EXPECT_EQ(set.save(), kBlock);  // Only y's block.
  x[0] = -1.0;
  y[0] = -1.0;
  set.restore();
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(Incremental, HintValidation) {
  nvm::NvmRegion region(4u << 20, model());
  std::vector<double> x(kBlock / 8, 1.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  set.save();
  const IncrementalCheckpointSet::DirtyRange bad_obj[] = {{3, 0, 8}};
  EXPECT_THROW(set.save(bad_obj), ContractViolation);
  const IncrementalCheckpointSet::DirtyRange oob[] = {{0, kBlock, 8}};
  EXPECT_THROW(set.save(oob), ContractViolation);
}

TEST(Incremental, AddAfterSaveRejected) {
  nvm::NvmRegion region(4u << 20, model());
  std::vector<double> x(kBlock / 8, 1.0), y(8, 0.0);
  IncrementalCheckpointSet set(region);
  set.add("x", x.data(), x.size() * 8);
  set.save();
  EXPECT_THROW(set.add("y", y.data(), 64), ContractViolation);
}

// ---- EpochPersister ----

TEST(Epoch, StageThenCommitFlushesOnce) {
  nvm::NvmRegion region(1u << 20, model());
  auto a = region.allocate<double>(64);
  auto b = region.allocate<double>(64);
  nvm::EpochPersister ep(region);
  ep.stage(a.data(), a.size_bytes());
  ep.stage(b.data(), b.size_bytes());
  EXPECT_EQ(ep.pending(), 2u);
  ep.commit_epoch();
  EXPECT_EQ(ep.pending(), 0u);
  EXPECT_EQ(ep.stats().epochs, 1u);
  EXPECT_EQ(ep.stats().lines_flushed, 16u);  // 2 × 512 B.
}

TEST(Epoch, EmptyEpochIsFree) {
  nvm::NvmRegion region(1u << 20, model());
  nvm::EpochPersister ep(region);
  ep.commit_epoch();
  EXPECT_EQ(ep.stats().epochs, 0u);
}

TEST(Epoch, ForeignPointerRejected) {
  nvm::NvmRegion region(1u << 20, model());
  nvm::EpochPersister ep(region);
  double x = 0;
  EXPECT_THROW(ep.stage(&x, 8), ContractViolation);
}

TEST(Epoch, ChargesPerfModelPerEpochNotPerRange) {
  nvm::PerfModel throttled(nvm::PerfConfig{.dram_bw_bytes_per_s = 1e9,
                                           .bandwidth_slowdown = 8.0});
  nvm::NvmRegion region(1u << 20, throttled);
  auto a = region.allocate<double>(512);
  nvm::EpochPersister ep(region);
  for (int i = 0; i < 8; ++i) ep.stage(a.data() + i * 64, 64 * 8);
  ep.commit_epoch();
  EXPECT_EQ(ep.stats().epochs, 1u);
  EXPECT_EQ(throttled.stats().lines_flushed, 64u);  // 4 KB total.
}

}  // namespace
}  // namespace adcc
