// Tests for the stage-level telemetry core: registration and accumulation,
// RAII scope nesting, multi-thread merge determinism, the unbound zero-cost
// path, and the Chrome trace_event serialization.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "core/telemetry.hpp"

namespace adcc::core {
namespace {

TEST(Telemetry, RegistersAndAccumulatesStagesAndCounters) {
  Telemetry tel;
  EXPECT_EQ(tel.seconds("ckpt/crc"), 0.0);
  EXPECT_EQ(tel.calls("ckpt/crc"), 0u);
  EXPECT_EQ(tel.counter("ckpt/chunks_written"), 0u);

  {
    const TelemetryBind bind(&tel, "t");
    { const StageTimer timer("ckpt/crc"); }
    { const StageTimer timer("ckpt/crc"); }
    { const StageTimer timer("kernel/spmv"); }
  }
  tel.count("ckpt/chunks_written", 3);
  tel.count("ckpt/chunks_written", 4);

  EXPECT_EQ(tel.calls("ckpt/crc"), 2u);
  EXPECT_EQ(tel.calls("kernel/spmv"), 1u);
  EXPECT_GE(tel.seconds("ckpt/crc"), 0.0);
  EXPECT_EQ(tel.counter("ckpt/chunks_written"), 7u);

  const auto samples = tel.snapshot();
  ASSERT_EQ(samples.size(), 2u);  // Path-ordered: ckpt/crc, kernel/spmv.
  EXPECT_EQ(samples[0].path, "ckpt/crc");
  EXPECT_EQ(samples[1].path, "kernel/spmv");

  tel.reset();
  EXPECT_EQ(tel.calls("ckpt/crc"), 0u);
  EXPECT_EQ(tel.counter("ckpt/chunks_written"), 0u);
}

TEST(Telemetry, ScopesNestAndPrefixSumsAggregate) {
  Telemetry tel;
  {
    const TelemetryBind bind(&tel, "t");
    const StageTimer outer("kernel/gemm");
    adcc::spin_for(0.002);
    {
      const StageTimer inner("kernel/spmv");
      adcc::spin_for(0.002);
    }
  }
  // Nested scopes both record; the outer covers the inner's interval too.
  EXPECT_GE(tel.seconds("kernel/gemm"), tel.seconds("kernel/spmv"));
  EXPECT_GT(tel.seconds("kernel/spmv"), 0.0);
  EXPECT_GE(tel.prefix_seconds("kernel/"),
            tel.seconds("kernel/gemm") + tel.seconds("kernel/spmv") - 1e-9);
  EXPECT_EQ(tel.prefix_seconds("ckpt/"), 0.0);
}

TEST(Telemetry, BindingsNestAndRestore) {
  Telemetry outer_tel;
  Telemetry inner_tel;
  EXPECT_EQ(Telemetry::current(), nullptr);
  {
    const TelemetryBind outer(&outer_tel, "outer");
    EXPECT_EQ(Telemetry::current(), &outer_tel);
    {
      const TelemetryBind inner(&inner_tel, "inner");
      EXPECT_EQ(Telemetry::current(), &inner_tel);
      { const StageTimer timer("ckpt/stage"); }
    }
    EXPECT_EQ(Telemetry::current(), &outer_tel);
    { const StageTimer timer("ckpt/stage"); }
  }
  EXPECT_EQ(Telemetry::current(), nullptr);
  EXPECT_EQ(outer_tel.calls("ckpt/stage"), 1u);
  EXPECT_EQ(inner_tel.calls("ckpt/stage"), 1u);
}

TEST(Telemetry, ThreadsMergeDeterministicallyThroughCapturedBindings) {
  Telemetry tel;
  constexpr int kThreads = 8;
  constexpr int kScopesPerThread = 250;
  {
    const TelemetryBind bind(&tel, "main");
    const TelemetryBinding binding = Telemetry::current_binding();
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&binding, t] {
        const TelemetryBind rebind(binding, "/w" + std::to_string(t));
        for (int i = 0; i < kScopesPerThread; ++i) {
          const StageTimer timer("ckpt/queue");
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  // Every scope merged exactly once, regardless of interleaving.
  EXPECT_EQ(tel.calls("ckpt/queue"),
            static_cast<std::uint64_t>(kThreads) * kScopesPerThread);
}

TEST(Telemetry, UnboundTimersAreFreeAndRecordNothing) {
  ASSERT_EQ(Telemetry::current(), nullptr);
  // The runtime enable flag: with no binding a StageTimer must do no clock
  // reads, no locking, no allocation. 1M constructions in well under 50ms
  // (sanitizer builds included) would be impossible otherwise.
  const adcc::Timer timer;
  for (int i = 0; i < 1'000'000; ++i) {
    const StageTimer t("kernel/spmv");
  }
  EXPECT_LT(timer.elapsed(), 0.25);

  Telemetry tel;
  EXPECT_EQ(tel.calls("kernel/spmv"), 0u);
  tel.instant("crash");  // No binding, no sink: must be a safe no-op.
}

TEST(TraceSink, TracksAreStableAndEventsSerializeAsChromeJson) {
  auto sink = std::make_shared<TraceSink>();
  EXPECT_EQ(sink->track("cell0"), sink->track("cell0"));
  EXPECT_NE(sink->track("cell0"), sink->track("cell0/drain"));

  Telemetry tel;
  tel.set_trace(sink);
  {
    const TelemetryBind bind(&tel, "cell0");
    { const StageTimer timer("ckpt/crc"); }
    tel.instant("crash");
  }
  EXPECT_EQ(sink->event_count(), 2u);

  std::ostringstream os;
  sink->write_chrome_trace(os);
  const std::string json = os.str();
  // Structural spot-checks; smoke.trace validates a full deck's JSON parses.
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"cell0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // Stage scope.
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);   // Crash instant.
  EXPECT_NE(json.find("\"ckpt/crc\""), std::string::npos);
}

TEST(TraceSink, EscapesEventNames) {
  TraceSink sink;
  sink.instant(sink.track("t"), "a\"b\\c\nd", sink.epoch());
  std::ostringstream os;
  sink.write_chrome_trace(os);
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

}  // namespace
}  // namespace adcc::core
