// Tests for the fault-injection engine: FaultSurface semantics (software
// counting, point occurrences, one-shot firing, simulator binding, silent
// flips), a seeded property fuzz over the whole crash-plan grammar, and the
// memsim-backed *-sim workloads driven through ScenarioRunner.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "cg/cg_sim_workload.hpp"
#include "common/rng.hpp"
#include "core/fault.hpp"
#include "core/scenario.hpp"
#include "mc/mc_sim_workload.hpp"
#include "memsim/memsim.hpp"
#include "memsim/tracked.hpp"
#include "mm/mm_sim_workload.hpp"

namespace adcc {
namespace {

using core::CrashScenario;
using core::FaultSurface;

TEST(FaultSurface, CountsTicksAndFiresAccessTrigger) {
  FaultSurface f;
  EXPECT_FALSE(f.armed());
  f.tick(10);
  EXPECT_EQ(f.access_count(), 10u);
  f.arm_at_access(25);
  EXPECT_TRUE(f.armed());
  f.tick(10);  // 20 < 25: no fire.
  bool fired = false;
  try {
    f.tick(10);  // 30 >= 25: fires mid-batch.
  } catch (const memsim::CrashException& e) {
    fired = true;
    EXPECT_EQ(e.access_count(), 30u);
    EXPECT_EQ(e.point(), "access");
  }
  EXPECT_TRUE(fired);
  // One-shot: the trigger disarmed itself as it threw.
  EXPECT_FALSE(f.armed());
  f.tick(100);  // Must not throw again.
  f.reset_counter();
  EXPECT_EQ(f.access_count(), 0u);
}

TEST(FaultSurface, FiresPointAtRequestedOccurrence) {
  FaultSurface f;
  f.arm_at_point("unit:end", 3);
  f.point("unit:end");
  f.point("other");  // Different name never counts.
  f.point("unit:end");
  bool fired = false;
  try {
    f.point("unit:end");
  } catch (const memsim::CrashException& e) {
    fired = true;
    EXPECT_EQ(e.point(), "unit:end");
  }
  EXPECT_TRUE(fired);
  EXPECT_FALSE(f.armed());
  f.point("unit:end");  // One-shot.
}

TEST(FaultSurface, DisarmCancelsTrigger) {
  FaultSurface f;
  f.arm_at_access(1);
  f.disarm();
  f.tick(100);  // Must not throw.
  EXPECT_FALSE(f.armed());
}

TEST(FaultSurface, BindingForwardsArmingToSimulator) {
  memsim::MemorySimulator sim;
  memsim::TrackedArray<double> arr(sim, "t", 64);
  FaultSurface f;
  f.bind(&sim);
  f.arm_at_access(3);
  EXPECT_TRUE(sim.scheduler().armed());
  EXPECT_TRUE(f.armed());
  // While bound, tick/point are inert — the simulator does the counting.
  f.tick(1000);
  f.point("anything");
  bool fired = false;
  try {
    for (std::size_t i = 0; i < 64; ++i) arr.write(i, 1.0);
  } catch (const memsim::CrashException&) {
    fired = true;
  }
  EXPECT_TRUE(fired);
  EXPECT_TRUE(sim.crashed());
  EXPECT_EQ(f.access_count(), sim.access_count());
  f.bind(nullptr);
  EXPECT_EQ(f.access_count(), 0u);
}

// ------------------------------------------------------------ silent flips --

TEST(FaultSurfaceFlip, ArmFireDetectLifecycle) {
  FaultSurface f;
  EXPECT_FALSE(f.flip_active());
  f.tick(100);
  f.arm_flip(50, 3, 2);  // Seed 3 skips 0 eligible calls (see test_determinism).
  EXPECT_TRUE(f.flip_active());
  EXPECT_FALSE(f.armed());  // Flips are independent of the crash scheduler.

  double buf[8] = {};
  f.corrupt("t", buf, sizeof(buf));
  core::FlipStats st = f.flip_stats();
  EXPECT_EQ(st.flips, 1u);
  EXPECT_EQ(st.bits, 2u);
  EXPECT_EQ(st.site, "t");
  EXPECT_EQ(st.inject_access, 100u);
  EXPECT_TRUE(f.flip_active());  // Stays active after firing: checks must run.

  // The XOR actually landed: some buffer bytes are nonzero now.
  bool any = false;
  for (const double v : buf) any = any || v != 0.0;
  EXPECT_TRUE(any);

  // One-shot: a second corrupt() never fires again.
  double before[8];
  std::memcpy(before, buf, sizeof(buf));
  f.corrupt("t", buf, sizeof(buf));
  EXPECT_EQ(f.flip_stats().flips, 1u);
  EXPECT_EQ(std::memcmp(before, buf, sizeof(buf)), 0);

  f.report_detected(false);
  f.report_detected(true);
  st = f.flip_stats();
  EXPECT_EQ(st.detected, 2u);
  EXPECT_EQ(st.corrected, 1u);

  f.reset_counter();  // prepare() path: everything rewinds.
  EXPECT_FALSE(f.flip_active());
  EXPECT_EQ(f.flip_stats().flips, 0u);
}

TEST(FaultSurfaceFlip, HoldsFireUntilAccessThreshold) {
  FaultSurface f;
  f.arm_flip(1000, 3, 1);
  double buf[8] = {};
  f.corrupt("early", buf, sizeof(buf));  // 0 accesses announced: must not fire.
  EXPECT_EQ(f.flip_stats().flips, 0u);
  f.tick(999);
  f.corrupt("early", buf, sizeof(buf));  // 999 < 1000: still holds.
  EXPECT_EQ(f.flip_stats().flips, 0u);
  f.tick(1);
  f.corrupt("late", buf, sizeof(buf));
  EXPECT_EQ(f.flip_stats().flips, 1u);
  EXPECT_EQ(f.flip_stats().site, "late");
}

TEST(FaultSurfaceFlip, SiteSkipNeverEscapesTheFirstEligibleGroup) {
  // Seed 9 draws the maximum skip (3). A workload that offers only ONE
  // corrupt() site per unit advances the access counter between calls, so
  // every call is its own group — the skip must collapse and the flip must
  // land on the SECOND call, not carry past the end of the run.
  FaultSurface f;
  f.tick(10);
  f.arm_flip(5, 9, 1);
  double buf[8] = {};
  f.corrupt("unit", buf, sizeof(buf));  // First eligible call opens the group.
  EXPECT_EQ(f.flip_stats().flips, 0u);
  f.tick(10);                           // New unit, new access count.
  f.corrupt("unit", buf, sizeof(buf));  // Later group: fires immediately.
  EXPECT_EQ(f.flip_stats().flips, 1u);
}

TEST(FaultSurfaceFlip, EmptySpanIsNeverATarget) {
  FaultSurface f;
  f.tick(10);
  f.arm_flip(1, 3, 1);
  f.corrupt("empty", nullptr, 0);
  EXPECT_EQ(f.flip_stats().flips, 0u);
  EXPECT_TRUE(f.flip_active());  // Still armed, waiting for real state.
}

// ----------------------------------------------------------- grammar fuzz --

// Seeded generator for syntactically VALID crash plans: every scope prefix x
// every family x 0-2 ^TAIL links. Point names draw from real instrumented
// sites (whose segments never end in a bare number, so the name/occurrence
// split is unambiguous).
std::string gen_valid_plan(SplitMix64& rng) {
  const char* kPoints[] = {"cg:iter_end", "cg:p_updated", "mm:loop2_end",
                           "xs:lookup_end", "ckpt_chunk", "ckpt_restore", "boundary"};
  auto point = [&] {
    std::string p = "point:";
    p += kPoints[rng.next_below(std::size(kPoints))];
    if (rng.next_below(2) == 0) p += ":" + std::to_string(1 + rng.next_below(20));
    return p;
  };
  auto head = [&]() -> std::string {
    switch (rng.next_below(7)) {
      case 0: return "step:" + std::to_string(1 + rng.next_below(99));
      case 1: return rng.next_below(2) == 0 ? "random"
                                            : "random:" + std::to_string(rng.next_below(1000));
      case 2: return "repeat:" + std::to_string(1 + rng.next_below(9));
      case 3: return "access:" + std::to_string(1 + rng.next_below(1'000'000));
      case 4: return point();
      case 5: return rng.next_below(2) == 0 ? "fuzz"
                                            : "fuzz:" + std::to_string(rng.next_below(1000));
      default: {
        std::string f = "flip:" + std::to_string(rng.next_below(1000));
        if (rng.next_below(2) == 0) f += ":" + std::to_string(1 + rng.next_below(8));
        return f;
      }
    }
  };
  std::string plan;
  switch (rng.next_below(4)) {
    case 0: break;
    case 1: plan += "shard:" + std::to_string(rng.next_below(8)) + ":"; break;
    case 2:
      plan += "shards:" + std::to_string(1 + rng.next_below(4)) + ":" +
              std::to_string(rng.next_below(100)) + ":";
      break;
    default: plan += "coord:"; break;
  }
  plan += head();
  const std::uint64_t tails = rng.next_below(3);
  for (std::uint64_t t = 0; t < tails; ++t) {
    plan += "^";
    plan += rng.next_below(2) == 0
                ? "access:" + std::to_string(1 + rng.next_below(100'000))
                : point();
  }
  return plan;
}

TEST(CrashGrammarFuzz, ValidPlansParseAndRoundTripThroughCrashName) {
  SplitMix64 rng(20260808);
  int checked = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string spec = gen_valid_plan(rng);
    const auto c = core::parse_crash(spec);
    ASSERT_TRUE(c.has_value()) << spec;
    EXPECT_NO_THROW(core::parse_crash_or_throw(spec)) << spec;
    // The canonical spelling is a fixed point: parse -> name -> parse -> name
    // is stable and preserves every field the grammar encodes.
    const std::string name = core::crash_name(*c);
    const auto again = core::parse_crash(name);
    ASSERT_TRUE(again.has_value()) << spec << " -> " << name;
    EXPECT_EQ(core::crash_name(*again), name) << spec;
    EXPECT_EQ(again->kind, c->kind) << spec;
    EXPECT_EQ(again->scope, c->scope) << spec;
    EXPECT_EQ(again->seed, c->seed) << spec;
    EXPECT_EQ(again->bits, c->bits) << spec;
    EXPECT_EQ(again->point, c->point) << spec;
    EXPECT_EQ(again->occurrence, c->occurrence) << spec;
    EXPECT_EQ(again->shard, c->shard) << spec;
    EXPECT_EQ(again->victims, c->victims) << spec;
    EXPECT_EQ(again->victim_seed, c->victim_seed) << spec;
    ASSERT_EQ(again->then.size(), c->then.size()) << spec;
    for (std::size_t t = 0; t < c->then.size(); ++t) {
      EXPECT_EQ(again->then[t].kind, c->then[t].kind) << spec;
      EXPECT_EQ(again->then[t].access, c->then[t].access) << spec;
      EXPECT_EQ(again->then[t].point, c->then[t].point) << spec;
      EXPECT_EQ(again->then[t].occurrence, c->then[t].occurrence) << spec;
    }
    ++checked;
  }
  EXPECT_GE(checked, 100);
}

// Invalid-plan templates: "%s" marks a seeded number substitution that keeps
// the string invalid for ANY value (the defect is structural, not numeric).
constexpr const char* kInvalidTemplates[] = {
    // Missing / malformed / zero arguments per family.
    "step", "step:", "step:0", "step:x", "step:%s.5",
    "repeat", "repeat:", "repeat:0", "repeat:-%s",
    "random:", "random:x", "random:%sz",
    "access", "access:", "access:0", "access:x",
    "point", "point:", "point::%s", "point:name:0", "point::",
    "fuzz:", "fuzz:x", "fuzz:%s!",
    "flip", "flip:", "flip:x", "flip:%s:0", "flip:%s:x", "flip:%s:2:3",
    // Unknown families never parse (and never crash).
    "boom", "flop:%s", "krash:%s", "steps:%s", "flips:%s",
    // Chain structure: heads must crash, tails must be mid-unit access/point.
    "none^access:%s", "^access:%s", "step:%s^", "step:%s^step:3",
    "step:%s^random", "step:%s^repeat:2", "step:%s^fuzz:3", "step:%s^flip:3",
    "step:%s^none", "access:%s^boom", "step:%s^access:0", "step:%s^point:",
    // Scope prefixes: incomplete, non-numeric, zero victims, scoped none.
    "shard", "shard:", "shard:%s", "shard:x:step:1", "shard:%s:none",
    "shards:%s", "shards:%s:1", "shards:0:%s:step:1", "shards:x:%s:step:1",
    "shards:%s:x:step:1", "shards:%s:1:none", "coord:", "coord:none",
};

TEST(CrashGrammarFuzz, InvalidPlansAreRejectedCleanlyNeverAccepted) {
  SplitMix64 rng(99991);
  int checked = 0;
  // Two seeded passes over every template: ~120 distinct invalid strings,
  // each rejected by the optional parser AND thrown (std::invalid_argument,
  // nothing else) by the eager one.
  for (int pass = 0; pass < 2; ++pass) {
    for (const char* tmpl : kInvalidTemplates) {
      std::string spec;
      for (const char* p = tmpl; *p != '\0'; ++p) {
        if (p[0] == '%' && p[1] == 's') {
          spec += std::to_string(1 + rng.next_below(999));
          ++p;
        } else {
          spec += *p;
        }
      }
      EXPECT_FALSE(core::parse_crash(spec).has_value()) << spec;
      EXPECT_THROW(core::parse_crash_or_throw(spec), std::invalid_argument) << spec;
      ++checked;
    }
  }
  EXPECT_GE(checked, 100);
}

// ------------------------------------------------------------- sim x runner --

cg::CgSimWorkloadConfig tiny_cg_sim() {
  cg::CgSimWorkloadConfig cfg;
  cfg.n = 400;
  cfg.nz_per_row = 7;
  cfg.iters = 6;
  cfg.cache_bytes = 128u << 10;  // Small enough to lose history rows.
  cfg.cache_ways = 8;
  return cfg;
}

core::ScenarioConfig sim_config(const core::Workload& w) {
  core::ScenarioConfig cfg;
  cfg.mode = core::Mode::kAlgNvm;
  w.tune_env(cfg.mode, cfg.env);
  cfg.verify = true;
  return cfg;
}

TEST(SimWorkload, CgPointCrashThroughRunnerVerifies) {
  cg::CgSimWorkload w(tiny_cg_sim());
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("point:cg:p_updated:4");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, 3u);  // Interrupted in iteration 4.
  EXPECT_EQ(res.recomputation.partial_units, 1u);
  EXPECT_EQ(res.crash_site, "cg:p_updated");
  EXPECT_TRUE(res.verified);
}

TEST(SimWorkload, CgBoundaryCrashThroughRunnerVerifies) {
  // Boundary plans also work on sim workloads: the runner injects the power
  // loss into the simulator at the planned unit boundary.
  cg::CgSimWorkload w(tiny_cg_sim());
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("step:3");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, 3u);
  EXPECT_EQ(res.recomputation.partial_units, 0u);
  EXPECT_TRUE(res.verified);
}

TEST(SimWorkload, CgFuzzCrashThroughRunnerVerifies) {
  cg::CgSimWorkload w(tiny_cg_sim());
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("fuzz:11");
  const core::ScenarioResult a = run_scenario(w, cfg);
  const core::ScenarioResult b = run_scenario(w, cfg);
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_EQ(a.crash_access, b.crash_access);  // Deterministic in the seed.
  EXPECT_TRUE(a.verified);
}

TEST(SimWorkload, MmLoopOneAndLoopTwoCrashesVerify) {
  mm::MmSimWorkloadConfig mcfg;
  mcfg.n = 64;
  mcfg.rank_k = 16;
  mcfg.cache_bytes = 32u << 10;
  mcfg.cache_ways = 4;
  mm::MmSimWorkload w(mcfg);
  for (const char* plan : {"point:mm:loop1_end:2", "point:mm:loop2_end:2", "fuzz:3"}) {
    core::ScenarioConfig cfg = sim_config(w);
    cfg.crash = *core::parse_crash(plan);
    const core::ScenarioResult res = core::run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << plan;
    EXPECT_TRUE(res.verified) << plan;
  }
}

TEST(SimWorkload, MmCrashAtVeryLastUnitStillFinishes) {
  // Regression: a crash at the final loop-2 block's crash point fires after
  // the unit counters advanced; completion must be derivable after recovery
  // (a latched finished flag would never be set and result() would abort).
  mm::MmSimWorkloadConfig mcfg;
  mcfg.n = 64;
  mcfg.rank_k = 16;  // 4 panels + 5 blocks.
  mcfg.cache_bytes = 32u << 10;
  mcfg.cache_ways = 4;
  mm::MmSimWorkload w(mcfg);
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("point:mm:loop2_end:5");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, res.work_units);
  EXPECT_TRUE(res.verified);
}

TEST(SimWorkload, McSelectiveCrashRecoversExactTallies) {
  mc::McSimWorkloadConfig mcfg;
  mcfg.data.n_nuclides = 10;
  mcfg.data.gridpoints_per_nuclide = 128;
  mcfg.lookups = 2000;
  mcfg.policy = mc::XsFlushPolicy::kSelective;
  mcfg.flush_interval = 25;
  mcfg.cache_bytes = 32u << 10;
  mcfg.cache_ways = 4;
  mc::McSimWorkload w(mcfg);
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("point:xs:lookup_end:600");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, 600u);
  // Bounded loss: at most one flush interval re-executed.
  EXPECT_LE(res.recomputation.units_lost, mcfg.flush_interval);
  EXPECT_TRUE(res.verified);
}

TEST(SimWorkload, McBasicIdeaCrashDivergesByDesign) {
  mc::McSimWorkloadConfig mcfg;
  mcfg.data.n_nuclides = 10;
  mcfg.data.gridpoints_per_nuclide = 128;
  mcfg.lookups = 2000;
  mcfg.policy = mc::XsFlushPolicy::kBasicIdea;
  mcfg.cache_bytes = 32u << 10;
  mcfg.cache_ways = 4;
  mc::McSimWorkload w(mcfg);
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("point:xs:lookup_end:600");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  // The basic idea loses the cache-resident counter updates: Fig. 10's point.
  EXPECT_TRUE(res.verify_ran);
  EXPECT_FALSE(res.verified);
  EXPECT_GT(res.recomputation.units_lost, 0u);
}

}  // namespace
}  // namespace adcc
