// Tests for the fault-injection engine: FaultSurface semantics (software
// counting, point occurrences, one-shot firing, simulator binding) and the
// memsim-backed *-sim workloads driven through ScenarioRunner.
#include <gtest/gtest.h>

#include "cg/cg_sim_workload.hpp"
#include "core/fault.hpp"
#include "core/scenario.hpp"
#include "mc/mc_sim_workload.hpp"
#include "memsim/memsim.hpp"
#include "memsim/tracked.hpp"
#include "mm/mm_sim_workload.hpp"

namespace adcc {
namespace {

using core::FaultSurface;

TEST(FaultSurface, CountsTicksAndFiresAccessTrigger) {
  FaultSurface f;
  EXPECT_FALSE(f.armed());
  f.tick(10);
  EXPECT_EQ(f.access_count(), 10u);
  f.arm_at_access(25);
  EXPECT_TRUE(f.armed());
  f.tick(10);  // 20 < 25: no fire.
  bool fired = false;
  try {
    f.tick(10);  // 30 >= 25: fires mid-batch.
  } catch (const memsim::CrashException& e) {
    fired = true;
    EXPECT_EQ(e.access_count(), 30u);
    EXPECT_EQ(e.point(), "access");
  }
  EXPECT_TRUE(fired);
  // One-shot: the trigger disarmed itself as it threw.
  EXPECT_FALSE(f.armed());
  f.tick(100);  // Must not throw again.
  f.reset_counter();
  EXPECT_EQ(f.access_count(), 0u);
}

TEST(FaultSurface, FiresPointAtRequestedOccurrence) {
  FaultSurface f;
  f.arm_at_point("unit:end", 3);
  f.point("unit:end");
  f.point("other");  // Different name never counts.
  f.point("unit:end");
  bool fired = false;
  try {
    f.point("unit:end");
  } catch (const memsim::CrashException& e) {
    fired = true;
    EXPECT_EQ(e.point(), "unit:end");
  }
  EXPECT_TRUE(fired);
  EXPECT_FALSE(f.armed());
  f.point("unit:end");  // One-shot.
}

TEST(FaultSurface, DisarmCancelsTrigger) {
  FaultSurface f;
  f.arm_at_access(1);
  f.disarm();
  f.tick(100);  // Must not throw.
  EXPECT_FALSE(f.armed());
}

TEST(FaultSurface, BindingForwardsArmingToSimulator) {
  memsim::MemorySimulator sim;
  memsim::TrackedArray<double> arr(sim, "t", 64);
  FaultSurface f;
  f.bind(&sim);
  f.arm_at_access(3);
  EXPECT_TRUE(sim.scheduler().armed());
  EXPECT_TRUE(f.armed());
  // While bound, tick/point are inert — the simulator does the counting.
  f.tick(1000);
  f.point("anything");
  bool fired = false;
  try {
    for (std::size_t i = 0; i < 64; ++i) arr.write(i, 1.0);
  } catch (const memsim::CrashException&) {
    fired = true;
  }
  EXPECT_TRUE(fired);
  EXPECT_TRUE(sim.crashed());
  EXPECT_EQ(f.access_count(), sim.access_count());
  f.bind(nullptr);
  EXPECT_EQ(f.access_count(), 0u);
}

// ------------------------------------------------------------- sim x runner --

cg::CgSimWorkloadConfig tiny_cg_sim() {
  cg::CgSimWorkloadConfig cfg;
  cfg.n = 400;
  cfg.nz_per_row = 7;
  cfg.iters = 6;
  cfg.cache_bytes = 128u << 10;  // Small enough to lose history rows.
  cfg.cache_ways = 8;
  return cfg;
}

core::ScenarioConfig sim_config(const core::Workload& w) {
  core::ScenarioConfig cfg;
  cfg.mode = core::Mode::kAlgNvm;
  w.tune_env(cfg.mode, cfg.env);
  cfg.verify = true;
  return cfg;
}

TEST(SimWorkload, CgPointCrashThroughRunnerVerifies) {
  cg::CgSimWorkload w(tiny_cg_sim());
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("point:cg:p_updated:4");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, 3u);  // Interrupted in iteration 4.
  EXPECT_EQ(res.recomputation.partial_units, 1u);
  EXPECT_EQ(res.crash_site, "cg:p_updated");
  EXPECT_TRUE(res.verified);
}

TEST(SimWorkload, CgBoundaryCrashThroughRunnerVerifies) {
  // Boundary plans also work on sim workloads: the runner injects the power
  // loss into the simulator at the planned unit boundary.
  cg::CgSimWorkload w(tiny_cg_sim());
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("step:3");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, 3u);
  EXPECT_EQ(res.recomputation.partial_units, 0u);
  EXPECT_TRUE(res.verified);
}

TEST(SimWorkload, CgFuzzCrashThroughRunnerVerifies) {
  cg::CgSimWorkload w(tiny_cg_sim());
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("fuzz:11");
  const core::ScenarioResult a = run_scenario(w, cfg);
  const core::ScenarioResult b = run_scenario(w, cfg);
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_EQ(a.crash_access, b.crash_access);  // Deterministic in the seed.
  EXPECT_TRUE(a.verified);
}

TEST(SimWorkload, MmLoopOneAndLoopTwoCrashesVerify) {
  mm::MmSimWorkloadConfig mcfg;
  mcfg.n = 64;
  mcfg.rank_k = 16;
  mcfg.cache_bytes = 32u << 10;
  mcfg.cache_ways = 4;
  mm::MmSimWorkload w(mcfg);
  for (const char* plan : {"point:mm:loop1_end:2", "point:mm:loop2_end:2", "fuzz:3"}) {
    core::ScenarioConfig cfg = sim_config(w);
    cfg.crash = *core::parse_crash(plan);
    const core::ScenarioResult res = core::run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << plan;
    EXPECT_TRUE(res.verified) << plan;
  }
}

TEST(SimWorkload, MmCrashAtVeryLastUnitStillFinishes) {
  // Regression: a crash at the final loop-2 block's crash point fires after
  // the unit counters advanced; completion must be derivable after recovery
  // (a latched finished flag would never be set and result() would abort).
  mm::MmSimWorkloadConfig mcfg;
  mcfg.n = 64;
  mcfg.rank_k = 16;  // 4 panels + 5 blocks.
  mcfg.cache_bytes = 32u << 10;
  mcfg.cache_ways = 4;
  mm::MmSimWorkload w(mcfg);
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("point:mm:loop2_end:5");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, res.work_units);
  EXPECT_TRUE(res.verified);
}

TEST(SimWorkload, McSelectiveCrashRecoversExactTallies) {
  mc::McSimWorkloadConfig mcfg;
  mcfg.data.n_nuclides = 10;
  mcfg.data.gridpoints_per_nuclide = 128;
  mcfg.lookups = 2000;
  mcfg.policy = mc::XsFlushPolicy::kSelective;
  mcfg.flush_interval = 25;
  mcfg.cache_bytes = 32u << 10;
  mcfg.cache_ways = 4;
  mc::McSimWorkload w(mcfg);
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("point:xs:lookup_end:600");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, 600u);
  // Bounded loss: at most one flush interval re-executed.
  EXPECT_LE(res.recomputation.units_lost, mcfg.flush_interval);
  EXPECT_TRUE(res.verified);
}

TEST(SimWorkload, McBasicIdeaCrashDivergesByDesign) {
  mc::McSimWorkloadConfig mcfg;
  mcfg.data.n_nuclides = 10;
  mcfg.data.gridpoints_per_nuclide = 128;
  mcfg.lookups = 2000;
  mcfg.policy = mc::XsFlushPolicy::kBasicIdea;
  mcfg.cache_bytes = 32u << 10;
  mcfg.cache_ways = 4;
  mc::McSimWorkload w(mcfg);
  core::ScenarioConfig cfg = sim_config(w);
  cfg.crash = *core::parse_crash("point:xs:lookup_end:600");
  const core::ScenarioResult res = core::run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  // The basic idea loses the cache-resident counter updates: Fig. 10's point.
  EXPECT_TRUE(res.verify_ran);
  EXPECT_FALSE(res.verified);
  EXPECT_GT(res.recomputation.units_lost, 0u);
}

}  // namespace
}  // namespace adcc
