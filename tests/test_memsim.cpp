// Unit tests for the MemorySimulator: dual-image semantics, eviction
// writebacks, clflush, crash triggers, restore.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "memsim/memsim.hpp"

namespace adcc::memsim {
namespace {

CacheConfig tiny_cache(std::size_t ways = 2, std::size_t sets = 1) {
  CacheConfig c;
  c.ways = ways;
  c.size_bytes = ways * sets * kCacheLine;
  return c;
}

struct Fixture {
  MemorySimulator sim{tiny_cache(2, 1)};
  AlignedArray<double> buf{64};  // 8 cache lines of doubles.
  RegionId id;

  Fixture() {
    for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<double>(i);
    id = sim.register_region("buf", buf.data(), buf.size() * sizeof(double));
  }
};

TEST(MemSim, DurableImageSnapshotsInitialContents) {
  Fixture f;
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[5]), 5.0);
}

TEST(MemSim, WriteIsNotDurableWhileCached) {
  Fixture f;
  f.buf[0] = 100.0;
  f.sim.on_write(&f.buf[0], sizeof(double));
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), 0.0);  // NVM still stale.
  EXPECT_TRUE(f.sim.line_dirty(&f.buf[0]));
}

TEST(MemSim, ClflushMakesWriteDurable) {
  Fixture f;
  f.buf[0] = 100.0;
  f.sim.on_write(&f.buf[0], sizeof(double));
  f.sim.clflush(&f.buf[0], sizeof(double));
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), 100.0);
  EXPECT_FALSE(f.sim.line_dirty(&f.buf[0]));
}

TEST(MemSim, EvictionWritesBack) {
  Fixture f;  // 2-way single-set cache: third distinct line evicts the first.
  f.buf[0] = 100.0;
  f.sim.on_write(&f.buf[0], sizeof(double));   // line 0 dirty
  f.sim.on_read(&f.buf[8], sizeof(double));    // line 1
  f.sim.on_read(&f.buf[16], sizeof(double));   // line 2 → evicts line 0
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), 100.0);
  EXPECT_GE(f.sim.stats().writebacks, 1u);
}

TEST(MemSim, EvictionWritebackCapturesLatestLiveBytes) {
  Fixture f;
  f.buf[0] = 1.0;
  f.sim.on_write(&f.buf[0], sizeof(double));
  f.buf[0] = 2.0;  // Second store to the cached line, then announced…
  f.sim.on_write(&f.buf[0], sizeof(double));
  f.sim.on_read(&f.buf[8], sizeof(double));
  f.sim.on_read(&f.buf[16], sizeof(double));  // eviction
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), 2.0);
}

TEST(MemSim, CrashDropsDirtyCache) {
  Fixture f;
  f.buf[0] = 100.0;
  f.sim.on_write(&f.buf[0], sizeof(double));
  f.sim.crash();
  EXPECT_TRUE(f.sim.crashed());
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), 0.0);  // The write died.
}

TEST(MemSim, RestoreRegionReloadsLiveFromDurable) {
  Fixture f;
  f.buf[0] = 100.0;
  f.sim.on_write(&f.buf[0], sizeof(double));
  f.sim.crash();
  f.sim.restore_region(f.id);
  EXPECT_DOUBLE_EQ(f.buf[0], 0.0);  // Live view rolled back to NVM contents.
}

TEST(MemSim, DrainPersistsEverythingDirty) {
  Fixture f;
  for (std::size_t i = 0; i < 16; i += 8) {
    f.buf[i] = 50.0 + static_cast<double>(i);
    f.sim.on_write(&f.buf[i], sizeof(double));
  }
  f.sim.drain();
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), 50.0);
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[8]), 58.0);
}

TEST(MemSim, ReadOnlyRegionDurableEqualsLive) {
  MemorySimulator sim(tiny_cache());
  AlignedArray<double> ro(8);
  ro[3] = 7.0;
  sim.register_region("ro", ro.data(), ro.size() * sizeof(double), /*read_only=*/true);
  EXPECT_DOUBLE_EQ(sim.durable_value(&ro[3]), 7.0);
  ro[3] = 9.0;  // RO regions track the live bytes by definition.
  EXPECT_DOUBLE_EQ(sim.durable_value(&ro[3]), 9.0);
}

TEST(MemSim, OverlappingRegionRejected) {
  Fixture f;
  EXPECT_THROW(f.sim.register_region("dup", f.buf.data(), 64), ContractViolation);
}

TEST(MemSim, UnalignedRegionRejected) {
  MemorySimulator sim(tiny_cache());
  AlignedArray<double> a(16);
  EXPECT_THROW(sim.register_region("x", a.data() + 1, 64), ContractViolation);
}

TEST(MemSim, EmptyRegionRejected) {
  MemorySimulator sim(tiny_cache());
  AlignedArray<double> a(16);
  EXPECT_THROW(sim.register_region("x", a.data(), 0), ContractViolation);
}

TEST(MemSim, UnregisterFreesTheAddressRange) {
  Fixture f;
  f.sim.unregister_region(f.id);
  EXPECT_EQ(f.sim.num_regions(), 0u);
  // Re-registering the same range must now succeed.
  const RegionId id2 = f.sim.register_region("again", f.buf.data(), 64);
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), f.buf[0]);
  f.sim.unregister_region(id2);
}

TEST(MemSim, DurableReadOutsideRegionsThrows) {
  Fixture f;
  double x = 0;
  double out;
  EXPECT_THROW(f.sim.durable_read(&x, &out, sizeof(double)), ContractViolation);
}

TEST(MemSim, UntrackedAccessesOnlyCreateCachePressure) {
  Fixture f;
  alignas(64) double untracked[8] = {};
  f.sim.on_write(untracked, sizeof(untracked));  // Must not throw.
  EXPECT_GE(f.sim.stats().writes, 1u);
}

TEST(MemSim, AccessCountTriggerFiresCrashException) {
  Fixture f;
  f.sim.scheduler().arm_at_access(3);
  f.sim.on_read(&f.buf[0], 8);
  f.sim.on_read(&f.buf[0], 8);
  EXPECT_THROW(f.sim.on_read(&f.buf[0], 8), CrashException);
  EXPECT_TRUE(f.sim.crashed());
}

TEST(MemSim, CrashPointTriggerHonorsOccurrence) {
  Fixture f;
  f.sim.scheduler().arm_at_point("iter", 3);
  f.sim.crash_point("iter");
  f.sim.crash_point("other");  // Different name never triggers.
  f.sim.crash_point("iter");
  EXPECT_THROW(f.sim.crash_point("iter"), CrashException);
}

TEST(MemSim, CrashExceptionCarriesContext) {
  Fixture f;
  f.sim.scheduler().arm_at_point("spot");
  try {
    f.sim.crash_point("spot");
    FAIL();
  } catch (const CrashException& e) {
    EXPECT_EQ(e.point(), "spot");
  }
}

TEST(MemSim, ResetAfterCrashAllowsRecoveryExecution) {
  Fixture f;
  f.sim.scheduler().arm_at_access(1);
  EXPECT_THROW(f.sim.on_write(&f.buf[0], 8), CrashException);
  f.sim.reset_after_crash();
  EXPECT_FALSE(f.sim.crashed());
  f.buf[0] = 5.0;
  f.sim.on_write(&f.buf[0], 8);  // Must not throw; scheduler disarmed.
  f.sim.clflush(&f.buf[0], 8);
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), 5.0);
}

TEST(MemSim, AccessesWhileCrashedAreIgnored) {
  Fixture f;
  f.sim.crash();
  f.buf[0] = 77.0;
  f.sim.on_write(&f.buf[0], 8);
  f.sim.clflush(&f.buf[0], 8);
  EXPECT_DOUBLE_EQ(f.sim.durable_value(&f.buf[0]), 0.0);
}

TEST(MemSim, StatsCountReadsWritesAndFlushes) {
  Fixture f;
  f.sim.on_read(&f.buf[0], 8);
  f.sim.on_write(&f.buf[0], 8);
  f.sim.clflush(&f.buf[0], 128);  // 2 lines
  f.sim.sfence();
  EXPECT_EQ(f.sim.stats().reads, 1u);
  EXPECT_EQ(f.sim.stats().writes, 1u);
  EXPECT_EQ(f.sim.stats().flush_lines, 2u);
  EXPECT_EQ(f.sim.stats().fences, 1u);
  EXPECT_EQ(f.sim.access_count(), 2u);
}

TEST(MemSim, MultiLineAccessTouchesEveryLine) {
  MemorySimulator sim(tiny_cache(8, 1));
  AlignedArray<double> a(32);
  sim.register_region("a", a.data(), 32 * sizeof(double));
  sim.on_read(a.data(), 32 * sizeof(double));  // 4 lines
  EXPECT_EQ(sim.cache_stats().misses, 4u);
}

TEST(MemSim, PartialTailLineWritebackStaysInBounds) {
  // Region of 72 bytes: the second line is only 8 bytes of region.
  MemorySimulator sim(tiny_cache(1, 1));
  AlignedArray<double> a(9);
  sim.register_region("a", a.data(), 9 * sizeof(double));
  a[8] = 3.5;
  sim.on_write(&a[8], sizeof(double));
  sim.clflush(&a[8], sizeof(double));
  EXPECT_DOUBLE_EQ(sim.durable_value(&a[8]), 3.5);
}


TEST(MemSim, DirtyLineCensusCountsPerRegion) {
  MemorySimulator sim(tiny_cache(8, 1));
  AlignedArray<double> a(16), b(16);
  sim.register_region("alpha", a.data(), 16 * sizeof(double));
  sim.register_region("beta", b.data(), 16 * sizeof(double), /*read_only=*/true);
  a[0] = 1.0;
  sim.on_write(&a[0], 8);   // 1 dirty line in alpha.
  sim.on_read(&b[0], 8);    // clean line in beta.
  const auto census = sim.dirty_line_census();
  ASSERT_EQ(census.size(), 2u);
  EXPECT_EQ(census[0].name, "alpha");
  EXPECT_EQ(census[0].total_lines, 2u);
  EXPECT_EQ(census[0].dirty_lines, 1u);
  EXPECT_EQ(census[1].name, "beta");
  EXPECT_EQ(census[1].dirty_lines, 0u);
}

TEST(MemSim, DirtyLineCensusEmptyAfterCrash) {
  MemorySimulator sim(tiny_cache(8, 1));
  AlignedArray<double> a(16);
  sim.register_region("alpha", a.data(), 16 * sizeof(double));
  a[0] = 1.0;
  sim.on_write(&a[0], 8);
  sim.crash();
  for (const auto& c : sim.dirty_line_census()) EXPECT_EQ(c.dirty_lines, 0u);
}

TEST(CrashScheduler, ArmValidation) {
  CrashScheduler s;
  EXPECT_THROW(s.arm_at_access(0), ContractViolation);
  EXPECT_THROW(s.arm_at_point(""), ContractViolation);
  EXPECT_THROW(s.arm_at_point("x", 0), ContractViolation);
  s.arm_at_point("x");
  EXPECT_TRUE(s.armed());
  s.disarm();
  EXPECT_FALSE(s.armed());
}

}  // namespace
}  // namespace adcc::memsim
