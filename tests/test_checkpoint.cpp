// Unit tests for the checkpoint backends and CheckpointSet, parameterized over
// all three media (file / NVM-only / heterogeneous NVM-DRAM).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string_view>
#include <vector>

#include "checkpoint/checkpoint_set.hpp"
#include "checkpoint/file_backend.hpp"
#include "checkpoint/hetero_backend.hpp"
#include "checkpoint/nvm_backend.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"

namespace adcc::checkpoint {
namespace {

enum class Kind { kFile, kNvm, kHetero };

struct BackendBundle {
  std::unique_ptr<nvm::PerfModel> perf;
  std::unique_ptr<nvm::NvmRegion> region;
  std::unique_ptr<nvm::DramCache> dram;
  std::unique_ptr<Backend> backend;
  std::filesystem::path file_dir;  ///< kFile only: the backend's scratch dir.
};

BackendBundle make_backend(Kind kind, double throttle = 0.0) {
  BackendBundle b;
  nvm::PerfConfig pc;
  pc.dram_bw_bytes_per_s = 10e9;
  pc.bandwidth_slowdown = 1.0;
  pc.enabled = false;
  b.perf = std::make_unique<nvm::PerfModel>(pc);
  switch (kind) {
    case Kind::kFile: {
      // Unique per call: async tests hold two file backends alive at once
      // (sync-vs-async image comparison), which must not share slot files.
      static std::atomic<int> counter{0};
      FileBackendConfig fc;
      fc.directory = std::filesystem::temp_directory_path() /
                     ("adcc_test_ckpt_" + std::to_string(::getpid()) + "_" +
                      std::to_string(counter.fetch_add(1)));
      fc.throttle_bytes_per_s = throttle;
      b.file_dir = fc.directory;
      b.backend = std::make_unique<FileBackend>(fc);
      break;
    }
    case Kind::kNvm:
      b.region = std::make_unique<nvm::NvmRegion>(8u << 20, *b.perf);
      b.backend = std::make_unique<NvmBackend>(*b.region, 1u << 20);
      break;
    case Kind::kHetero:
      b.region = std::make_unique<nvm::NvmRegion>(8u << 20, *b.perf);
      b.dram = std::make_unique<nvm::DramCache>(1u << 20, *b.region);
      b.backend = std::make_unique<HeteroBackend>(*b.region, *b.dram, 1u << 20);
      break;
  }
  return b;
}

/// ChunkConfig with every non-positional knob (async, codec, ring depth,
/// dirty commit) at its default — the tests below flip those explicitly.
ChunkConfig chunk_cfg(std::size_t chunk_bytes, int threads) {
  ChunkConfig cc;
  cc.chunk_bytes = chunk_bytes;
  cc.threads = threads;
  return cc;
}

class BackendTest : public ::testing::TestWithParam<Kind> {};

TEST_P(BackendTest, SaveLoadRoundtrip) {
  auto b = make_backend(GetParam());
  std::vector<double> x(100, 1.5), y(50, 2.5);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}, {"y", y.data(), y.size() * 8}};
  b.backend->save(0, 1, objs);
  std::fill(x.begin(), x.end(), 0.0);
  std::fill(y.begin(), y.end(), 0.0);
  EXPECT_EQ(b.backend->load(0, objs), 1u);
  EXPECT_DOUBLE_EQ(x[99], 1.5);
  EXPECT_DOUBLE_EQ(y[49], 2.5);
}

TEST_P(BackendTest, LatestTracksCommittedVersion) {
  auto b = make_backend(GetParam());
  std::vector<double> x(10, 1.0);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  EXPECT_EQ(b.backend->latest().second, 0u);
  b.backend->save(0, 1, objs);
  b.backend->save(1, 2, objs);
  const auto [slot, ver] = b.backend->latest();
  EXPECT_EQ(slot, 1);
  EXPECT_EQ(ver, 2u);
}

TEST_P(BackendTest, DoubleBufferingPreservesOlderSlot) {
  auto b = make_backend(GetParam());
  std::vector<double> x(10, 1.0);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  b.backend->save(0, 1, objs);  // slot 0 holds 1.0
  std::fill(x.begin(), x.end(), 2.0);
  b.backend->save(1, 2, objs);  // slot 1 holds 2.0
  std::fill(x.begin(), x.end(), 0.0);
  b.backend->load(0, objs);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  b.backend->load(1, objs);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST_P(BackendTest, StatsCountTraffic) {
  auto b = make_backend(GetParam());
  std::vector<double> x(10, 1.0);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  b.backend->save(0, 1, objs);
  b.backend->load(0, objs);
  EXPECT_EQ(b.backend->stats().saves, 1u);
  EXPECT_EQ(b.backend->stats().loads, 1u);
  EXPECT_EQ(b.backend->stats().bytes_saved, 80u);
  EXPECT_EQ(b.backend->stats().bytes_loaded, 80u);
}

TEST_P(BackendTest, CheckpointSetSaveRestoreCycle) {
  auto b = make_backend(GetParam());
  std::vector<double> x(64, 0.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  for (int it = 1; it <= 3; ++it) {
    std::fill(x.begin(), x.end(), static_cast<double>(it));
    EXPECT_EQ(set.save(), static_cast<std::uint64_t>(it));
  }
  std::fill(x.begin(), x.end(), -1.0);
  EXPECT_EQ(set.restore(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
}

TEST_P(BackendTest, RestoreWithoutCheckpointReturnsZero) {
  auto b = make_backend(GetParam());
  std::vector<double> x(8, 5.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.restore(), 0u);
  EXPECT_DOUBLE_EQ(x[0], 5.0);  // Untouched.
}

INSTANTIATE_TEST_SUITE_P(AllMedia, BackendTest,
                         ::testing::Values(Kind::kFile, Kind::kNvm, Kind::kHetero),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kFile: return "File";
                             case Kind::kNvm: return "Nvm";
                             case Kind::kHetero: return "Hetero";
                           }
                           return "Unknown";
                         });

TEST(CheckpointSet, AddAfterFirstSaveThrows) {
  auto b = make_backend(Kind::kNvm);
  std::vector<double> x(8), y(8);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), 64);
  set.save();
  EXPECT_THROW(set.add("y", y.data(), 64), ContractViolation);
}

TEST(CheckpointSet, PayloadBytesSumsObjects) {
  auto b = make_backend(Kind::kNvm);
  std::vector<double> x(8), y(4);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), 64);
  set.add("y", y.data(), 32);
  EXPECT_EQ(set.payload_bytes(), 96u);
}

TEST(NvmBackend, OversizedCheckpointRejected) {
  auto b = make_backend(Kind::kNvm);
  std::vector<double> big((2u << 20) / 8, 1.0);
  std::vector<ObjectView> objs = {{"big", big.data(), big.size() * 8}};
  EXPECT_THROW(b.backend->save(0, 1, objs), ContractViolation);
}

TEST(FileBackend, ThrottleBoundsBandwidth) {
  auto b = make_backend(Kind::kFile, /*throttle=*/50e6);  // 50 MB/s
  std::vector<double> x((4u << 20) / 8, 1.0);             // 4 MB → ≥ 80 ms
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  Timer t;
  b.backend->save(0, 1, objs);
  EXPECT_GE(t.elapsed(), 0.07);
}

TEST(HeteroBackend, DramCacheSeesBothCopies) {
  auto b = make_backend(Kind::kHetero);
  std::vector<double> x(1024, 1.0);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  b.backend->save(0, 1, objs);
  // Every image byte (payload + chunk/slot headers) is staged once and
  // drained once; nothing may linger in volatile staging after the save.
  EXPECT_GE(b.dram->stats().staged_bytes, 8192u);
  EXPECT_EQ(b.dram->stats().staged_bytes, b.dram->stats().drained_bytes);
  EXPECT_EQ(b.dram->pending(), 0u);
}

// --------------------------------------------------- chunk engine behavior --

/// A non-crash exception for interrupting saves mid-pipeline in tests.
struct TestPowerFailure {};

/// A CheckpointSet whose point hook cuts the power after `chunks` persists.
struct InterruptibleSet {
  explicit InterruptibleSet(Backend& backend)
      : set(backend, [this](const char* point) {
          if (arm_after_chunks > 0 && std::string_view(point) == kPointChunkSaved &&
              ++fired == arm_after_chunks) {
            throw TestPowerFailure{};
          }
        }) {}

  CheckpointSet set;
  std::size_t arm_after_chunks = 0;
  std::size_t fired = 0;
};

TEST_P(BackendTest, ZeroByteObjectsRoundtrip) {
  auto b = make_backend(GetParam());
  std::vector<double> x(16, 3.0);
  double unused = 0.0;
  CheckpointSet set(*b.backend);
  set.add("empty_head", &unused, 0);
  set.add("x", x.data(), x.size() * 8);
  set.add("empty_tail", nullptr, 0);
  EXPECT_EQ(set.save(), 1u);
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(set.restore(), 1u);
  EXPECT_DOUBLE_EQ(x[15], 3.0);
}

TEST_P(BackendTest, PayloadSmallerThanOneChunkRoundtrips) {
  auto b = make_backend(GetParam());
  b.backend->configure_chunks(chunk_cfg(1u << 20, 1));  // 1 MB chunks, 11-byte payload.
  char small[11] = "0123456789";
  std::vector<ObjectView> objs = {{"small", small, sizeof(small)}};
  b.backend->save(0, 1, objs);
  std::fill(std::begin(small), std::end(small), '\0');
  EXPECT_EQ(b.backend->load(0, objs), 1u);
  EXPECT_STREQ(small, "0123456789");
}

TEST_P(BackendTest, MoreThreadsThanChunksRoundtrips) {
  auto b = make_backend(GetParam());
  b.backend->configure_chunks(chunk_cfg(64u << 10, 8));  // 8 workers, 1-chunk payload.
  std::vector<double> x(64, 4.5);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  b.backend->save(0, 7, objs);
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(b.backend->load(0, objs), 7u);
  EXPECT_DOUBLE_EQ(x[0], 4.5);
}

TEST_P(BackendTest, SlotImagesAreByteIdenticalAcrossThreadCounts) {
  // The acceptance criterion: serial and 8-worker saves of the same data
  // produce bit-for-bit identical slot images on every medium.
  std::vector<double> x(4096), y(777);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<double>(i) * 0.5;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = -static_cast<double>(i);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8},
                                  {"y", y.data(), y.size() * 8}};
  const std::size_t image = checkpoint_image_bytes(objs, 4096);

  std::vector<std::byte> serial(image), parallel(image);
  for (int threads : {1, 8}) {
    auto b = make_backend(GetParam());
    b.backend->configure_chunks(chunk_cfg(4096, threads));  // 10 chunks across 2 objects.
    b.backend->save(1, 3, objs);
    auto& out = threads == 1 ? serial : parallel;
    ASSERT_EQ(b.backend->read_image(1, out), image);
  }
  EXPECT_EQ(serial, parallel);
}

TEST_P(BackendTest, UnchangedChunksAreSkippedPerSlot) {
  auto b = make_backend(GetParam());
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  std::vector<double> x(4 * 4096 / 8, 1.0);  // 4 chunks.
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  set.save();  // v1 -> slot 1, full.
  set.save();  // v2 -> slot 0, full (first image there).
  set.save();  // v3 -> slot 1, identical to v1: everything skips.
  EXPECT_EQ(set.last_save().chunks_written, 0u);
  EXPECT_EQ(set.last_save().chunks_skipped, 4u);
  x[0] = 2.0;  // Dirty chunk 0 only.
  set.save();  // v4 -> slot 0.
  EXPECT_EQ(set.last_save().chunks_written, 1u);
  EXPECT_EQ(set.last_save().chunks_skipped, 3u);
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(set.restore(), 4u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST_P(BackendTest, InterruptedSaveLeavesPreviousCheckpointAndIsDetected) {
  auto b = make_backend(GetParam());
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  std::vector<double> x(4 * 4096 / 8, 1.0);
  InterruptibleSet is(*b.backend);
  is.set.add("x", x.data(), x.size() * 8);
  is.set.save();  // v1 -> slot 1.
  std::fill(x.begin(), x.end(), 2.0);
  is.set.save();  // v2 -> slot 0.
  std::fill(x.begin(), x.end(), 3.0);
  is.arm_after_chunks = 2;  // Power fails two chunks into save v3 (slot 1).
  EXPECT_THROW(is.set.save(), TestPowerFailure);

  // The committed checkpoint (v2) survives; the torn in-flight slot is
  // *classified* by the restore probe instead of being silent garbage.
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(is.set.restore(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_GT(is.set.last_restore().chunks_probed, 0u);

  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  if (GetParam() == Kind::kHetero) {
    // Hetero's distinguishing crash behavior: the interrupted chunks were
    // still staged in volatile DRAM (never drained), so the slot's previous
    // image is INTACT — clean, not torn.
    EXPECT_EQ(is.set.last_restore().torn_chunks, 0u);
    EXPECT_EQ(b.backend->load(1, objs), 1u);
    EXPECT_DOUBLE_EQ(x[0], 1.0);
  } else {
    // File/NVM persist chunk spans immediately: the in-flight save left torn
    // evidence, and loading the torn slot reports it explicitly.
    EXPECT_GE(is.set.last_restore().torn_chunks, 1u);
    EXPECT_THROW(b.backend->load(1, objs), TornCheckpoint);
  }
}

TEST_P(BackendTest, MismatchedLayoutIsACheckedError) {
  auto b = make_backend(GetParam());
  std::vector<double> x(64, 1.0), y(32, 2.0);
  std::vector<ObjectView> saved = {{"x", x.data(), x.size() * 8},
                                   {"y", y.data(), y.size() * 8}};
  b.backend->save(0, 1, saved);

  // Wrong object size: must throw before any byte lands in a live object.
  std::vector<double> wrong(48, -1.0);
  std::vector<ObjectView> resized = {{"x", wrong.data(), wrong.size() * 8},
                                     {"y", y.data(), y.size() * 8}};
  EXPECT_THROW(b.backend->load(0, resized), LayoutMismatch);
  EXPECT_DOUBLE_EQ(wrong[0], -1.0);  // Untouched.

  // Wrong object count.
  std::vector<ObjectView> fewer = {{"x", x.data(), x.size() * 8}};
  EXPECT_THROW(b.backend->load(0, fewer), LayoutMismatch);

  // The matching layout still loads.
  EXPECT_EQ(b.backend->load(0, saved), 1u);
}

TEST(FileBackend, CorruptedPayloadFailsItsCrc) {
  auto b = make_backend(Kind::kFile);
  std::vector<double> x(1024, 1.25);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  b.backend->save(0, 5, objs);

  // Flip one payload byte on disk (the image's last bytes are payload).
  const std::size_t image = checkpoint_image_bytes(objs, b.backend->chunk_config().chunk_bytes);
  const std::filesystem::path slot = b.file_dir / "slot0.ckpt";
  ASSERT_TRUE(std::filesystem::exists(slot));
  {
    std::fstream f(slot, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(image - 4));
    char flip = 0x5A;
    f.write(&flip, 1);
  }
  EXPECT_THROW(b.backend->load(0, objs), TornCheckpoint);
}

TEST(CheckpointSet, HintedSaveIntoFreshSlotWritesTheFullImage) {
  // The first save landing in a slot is implicitly full: dirty hints may not
  // punch never-written holes into a committed image.
  auto b = make_backend(Kind::kNvm);
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  std::vector<double> x(4 * 4096 / 8, 1.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  set.save();  // v1 -> slot 1.
  x[0] = 2.0;
  const CheckpointSet::DirtyRange hints[] = {{0, 0, 8}};
  set.save(hints);  // v2 -> slot 0's FIRST image: every chunk must land.
  EXPECT_EQ(set.last_save().chunks_written, 4u);
  std::fill(x.begin(), x.end(), -1.0);
  EXPECT_EQ(set.restore(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[512], 1.0);  // Un-hinted chunk restored, not a hole.
}

TEST(HeteroBackend, InterruptedSaveDebrisDoesNotTearTheNextSave) {
  // Chunks staged by an interrupted save must not be drained by a later
  // save's epilogue into the other slot's committed image.
  auto b = make_backend(Kind::kHetero);
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  std::vector<double> x(4 * 4096 / 8, 1.0);
  InterruptibleSet is(*b.backend);
  is.set.add("x", x.data(), x.size() * 8);
  is.set.save();  // v1 -> slot 1.
  std::fill(x.begin(), x.end(), 2.0);
  is.arm_after_chunks = 2;
  EXPECT_THROW(is.set.save(), TestPowerFailure);  // v2 debris stays staged.
  is.arm_after_chunks = 0;
  std::fill(x.begin(), x.end(), 3.0);
  // The failed version is rolled back: the retry is v2 again, aimed at the
  // same uncommitted slot, and its begin_slot drops the stale staged debris.
  is.set.save();
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(is.set.restore(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_EQ(is.set.last_restore().torn_chunks, 0u);  // Slot 1 kept v1 intact.
}

TEST(CheckpointSet, FailedSaveRollsBackTheVersionSoRetriesSpareTheCommittedSlot) {
  auto b = make_backend(Kind::kNvm);
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  std::vector<double> x(2 * 4096 / 8, 1.0);
  InterruptibleSet is(*b.backend);
  is.set.add("x", x.data(), x.size() * 8);
  is.set.save();  // v1 committed to slot 1.
  std::fill(x.begin(), x.end(), 2.0);
  is.arm_after_chunks = 1;
  EXPECT_THROW(is.set.save(), TestPowerFailure);  // v2 attempt dies.
  EXPECT_EQ(is.set.version(), 1u);                // Rolled back.
  is.arm_after_chunks = 0;
  is.set.save();  // Retry: v2 again -> slot 0, never slot 1 (the committed one).
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(is.set.restore(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  // And the previous checkpoint is still loadable from its slot.
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  EXPECT_EQ(b.backend->load(1, objs), 1u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(CheckpointSet, ZeroChunkSetSavesAndRestores) {
  auto b = make_backend(Kind::kNvm);
  double unused = 0.0;
  CheckpointSet set(*b.backend);
  set.add("empty", &unused, 0);
  EXPECT_EQ(set.save(), 1u);
  EXPECT_EQ(set.payload_bytes(), 0u);
  EXPECT_EQ(set.restore(), 1u);
}

// ------------------------------------------------- asynchronous save path --

TEST_P(BackendTest, AsyncSaveCommitsAfterWaitDurable) {
  auto b = make_backend(GetParam());
  std::vector<double> x(4096, 1.5);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.save_async(), 1u);
  EXPECT_TRUE(set.async_pending());
  EXPECT_EQ(set.wait_durable(), 1u);
  EXPECT_FALSE(set.async_pending());
  EXPECT_EQ(b.backend->latest().second, 1u);
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(set.restore(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 1.5);
}

TEST_P(BackendTest, AsyncSaveSnapshotsAtCallTime) {
  // The whole point of the staging arena: the caller may clobber the live
  // objects the moment save_async returns, and the drain still persists the
  // values the save saw.
  auto b = make_backend(GetParam());
  std::vector<double> x(4096, 1.5);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  set.save_async();
  std::fill(x.begin(), x.end(), 9.0);  // Next unit's writes, racing the drain.
  set.wait_durable();
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(set.restore(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 1.5);
  EXPECT_DOUBLE_EQ(x[4095], 1.5);
}

TEST_P(BackendTest, BackToBackAsyncSavesJoinTheFirst) {
  auto b = make_backend(GetParam());
  std::vector<double> x(2048, 1.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.save_async(), 1u);
  std::fill(x.begin(), x.end(), 2.0);
  EXPECT_EQ(set.save_async(), 2u);  // Joins drain 1 before staging v2.
  EXPECT_EQ(set.wait_durable(), 2u);
  EXPECT_EQ(b.backend->latest().second, 2u);
  // Both slots hold committed images (double buffering survived the overlap).
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  EXPECT_EQ(b.backend->load(1, objs), 1u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_EQ(b.backend->load(0, objs), 2u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST_P(BackendTest, WaitDurableIsIdempotent) {
  auto b = make_backend(GetParam());
  std::vector<double> x(512, 4.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.wait_durable(), 0u);  // Nothing pending, nothing saved.
  set.save_async();
  EXPECT_EQ(set.wait_durable(), 1u);
  EXPECT_EQ(set.wait_durable(), 1u);  // Second join is a no-op.
  EXPECT_EQ(set.wait_durable(), 1u);
  EXPECT_EQ(b.backend->latest().second, 1u);
}

TEST_P(BackendTest, AsyncSlotImagesMatchSyncByteForByte) {
  // The same save sequence through save() and save_async() must produce
  // byte-identical slot images on every medium — async changes when bytes
  // land, never which bytes.
  auto sync_b = make_backend(GetParam());
  auto async_b = make_backend(GetParam());
  std::vector<double> x(3000, 0.0), y(700, 0.0);
  CheckpointSet sync_set(*sync_b.backend);
  CheckpointSet async_set(*async_b.backend);
  for (CheckpointSet* set : {&sync_set, &async_set}) {
    set->add("x", x.data(), x.size() * 8);
    set->add("y", y.data(), y.size() * 8);
  }
  for (int ver = 1; ver <= 3; ++ver) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = ver * 1.25 + double(i);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = ver * 2.5 - double(i);
    sync_set.save();
    async_set.save_async();
    async_set.wait_durable();
  }
  const std::size_t image_bytes =
      checkpoint_image_bytes(std::vector<ObjectView>{{"x", x.data(), x.size() * 8},
                                                     {"y", y.data(), y.size() * 8}},
                             sync_b.backend->chunk_config().chunk_bytes);
  for (int slot = 0; slot < 2; ++slot) {
    std::vector<std::byte> sync_img(image_bytes), async_img(image_bytes);
    ASSERT_EQ(sync_b.backend->read_image(slot, sync_img), image_bytes);
    ASSERT_EQ(async_b.backend->read_image(slot, async_img), image_bytes);
    EXPECT_EQ(sync_img, async_img) << "slot " << slot;
  }
}

TEST_P(BackendTest, AsyncDirtyChunkFilterSkipsUnchangedChunks) {
  auto b = make_backend(GetParam());
  std::vector<double> x(3 * 4096, 7.0);
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  set.save_async();  // v1 -> slot 1.
  set.save_async();  // v2 -> slot 0 (first image there: full write).
  set.save_async();  // v3 -> slot 1 again, data unchanged since v1.
  EXPECT_EQ(set.wait_durable(), 3u);
  EXPECT_EQ(set.last_save().chunks_written, 0u);
  EXPECT_GT(set.last_save().chunks_skipped, 0u);
}

/// An InterruptibleSet variant for the async sites: cuts the power at the
/// N-th hit of one crash-point name (ckpt_stage / ckpt_drain).
struct AsyncInterruptibleSet {
  AsyncInterruptibleSet(Backend& backend, const char* at)
      : set(backend, [this, at](const char* point) {
          if (arm_after > 0 && std::string_view(point) == at && ++fired == arm_after) {
            throw TestPowerFailure{};
          }
        }) {}

  CheckpointSet set;
  std::size_t arm_after = 0;
  std::size_t fired = 0;
};

TEST_P(BackendTest, CrashBetweenStageAndDrainLeavesBackendUntouched) {
  auto b = make_backend(GetParam());
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  std::vector<double> x(4 * 4096 / 8, 1.0);
  AsyncInterruptibleSet is(*b.backend, kPointChunkStaged);
  is.set.add("x", x.data(), x.size() * 8);
  is.set.save_async();
  EXPECT_EQ(is.set.wait_durable(), 1u);  // v1 committed.
  std::fill(x.begin(), x.end(), 2.0);
  is.arm_after = 2;  // Power fails two chunks into v2's staging pass.
  EXPECT_THROW(is.set.save_async(), TestPowerFailure);
  EXPECT_EQ(is.set.version(), 1u);  // Rolled back; nothing reached the medium.
  EXPECT_FALSE(is.set.async_pending());

  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(is.set.restore(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  // No save started, so not a single torn chunk — on ANY medium.
  EXPECT_EQ(is.set.last_restore().torn_chunks, 0u);
}

TEST_P(BackendTest, CrashMidDrainSurfacesAtJoinAndClassifiesLikeSyncMidSave) {
  auto b = make_backend(GetParam());
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  std::vector<double> x(4 * 4096 / 8, 1.0);
  AsyncInterruptibleSet is(*b.backend, kPointChunkDrained);
  is.set.add("x", x.data(), x.size() * 8);
  is.set.save_async();
  EXPECT_EQ(is.set.wait_durable(), 1u);
  std::fill(x.begin(), x.end(), 2.0);
  is.set.save_async();
  EXPECT_EQ(is.set.wait_durable(), 2u);
  std::fill(x.begin(), x.end(), 3.0);
  is.arm_after = 2;  // Power fails two chunks into v3's background drain.
  is.set.save_async();                                 // Launch succeeds...
  EXPECT_THROW(is.set.wait_durable(), TestPowerFailure);  // ...the join reports.
  EXPECT_EQ(is.set.version(), 2u);  // Rolled back to the committed version.

  // Power-loss epilogue, as the workloads' inject_crash does it.
  if (b.dram) b.dram->discard();
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(is.set.restore(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  if (GetParam() == Kind::kHetero) {
    // The drained-but-undrained chunks died in volatile DRAM staging: the
    // slot's previous image is intact — clean-old, hetero's crash signature.
    EXPECT_EQ(is.set.last_restore().torn_chunks, 0u);
  } else {
    EXPECT_GE(is.set.last_restore().torn_chunks, 1u);
  }
}

TEST_P(BackendTest, AbortAsyncEmulatesPowerFailureAndRecoversConsistently) {
  // abort_async lands at a nondeterministic drain position (that is the
  // point); whatever it cut off, restore must land on a committed version
  // whose payload matches it exactly.
  auto b = make_backend(GetParam());
  b.backend->configure_chunks(chunk_cfg(4096, 1));
  std::vector<double> x(8 * 4096 / 8, 1.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  set.save_async();
  set.wait_durable();  // v1 committed.
  std::fill(x.begin(), x.end(), 2.0);
  set.save_async();    // v2 drains in the background...
  set.abort_async();   // ...and the power fails.
  EXPECT_FALSE(set.async_pending());
  if (b.dram) b.dram->discard();
  std::fill(x.begin(), x.end(), 0.0);
  const std::uint64_t restored = set.restore();
  EXPECT_TRUE(restored == 1u || restored == 2u);  // Committed either way.
  EXPECT_DOUBLE_EQ(x[0], restored == 1u ? 1.0 : 2.0);
  EXPECT_EQ(set.version(), restored);
  // Life goes on: the next save commits the next version durably.
  std::fill(x.begin(), x.end(), 5.0);
  const std::uint64_t next = set.save();
  EXPECT_EQ(next, restored + 1);
  EXPECT_EQ(b.backend->latest().second, next);
}

TEST_P(BackendTest, ConfiguredAsyncDispatchesPlainSave) {
  // ChunkConfig::async reroutes save() through the async path, which is how
  // --ckpt_async reaches adapters without any adapter change.
  auto b = make_backend(GetParam());
  ChunkConfig cc = b.backend->chunk_config();
  cc.async = true;
  b.backend->configure_chunks(cc);
  std::vector<double> x(1024, 6.5);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.save(), 1u);
  EXPECT_TRUE(set.async_pending());
  EXPECT_EQ(set.wait_durable(), 1u);
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(set.restore(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 6.5);
}

// ------------------------------------------------- per-chunk compression --

CodecSpec lz_spec() {
  CodecSpec cs;
  EXPECT_TRUE(parse_codec("lz", &cs));
  return cs;
}

TEST_P(BackendTest, CompressedSaveShrinksStoredBytesAndRestoresExactly) {
  auto b = make_backend(GetParam());
  ChunkConfig cc = chunk_cfg(4096, 1);
  cc.compress = lz_spec();
  b.backend->configure_chunks(cc);
  // Smoothly varying doubles: constant exponent planes, slow mantissa drift —
  // the payload shape the byte-plane codec exists for.
  std::vector<double> x(8 * 4096 / 8);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1e6 + 0.125 * static_cast<double>(i);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.save(), 1u);
  EXPECT_LT(b.backend->stats().bytes_stored, b.backend->stats().bytes_saved);
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(set.restore(), 1u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_DOUBLE_EQ(x[i], 1e6 + 0.125 * static_cast<double>(i)) << "i=" << i;
  }
}

TEST_P(BackendTest, CompressedSlotImagesAreByteIdenticalAcrossThreadCounts) {
  // The codec is a pure function of the payload bytes: with compression on,
  // serial and 8-worker saves must still produce bit-identical slot images.
  std::vector<double> x(4096), y(777);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 1e6 + 0.125 * static_cast<double>(i);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = -static_cast<double>(i);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8},
                                  {"y", y.data(), y.size() * 8}};
  const std::size_t image = checkpoint_image_bytes(objs, 4096);
  std::vector<std::byte> serial(image), parallel(image);
  std::size_t serial_bytes = 0, parallel_bytes = 0;
  for (int threads : {1, 8}) {
    auto b = make_backend(GetParam());
    ChunkConfig cc = chunk_cfg(4096, threads);
    cc.compress = lz_spec();
    b.backend->configure_chunks(cc);
    b.backend->save(1, 3, objs);
    EXPECT_LT(b.backend->stats().bytes_stored, b.backend->stats().bytes_saved);
    auto& out = threads == 1 ? serial : parallel;
    (threads == 1 ? serial_bytes : parallel_bytes) = b.backend->read_image(1, out);
  }
  EXPECT_EQ(serial_bytes, parallel_bytes);
  EXPECT_EQ(serial, parallel);
}

// ------------------------------------------------------ ring depth crashes --

TEST_P(BackendTest, RingDepthCrashMatrixRecoversACommittedConsistentState) {
  // Every async crash site (staging pass, background drain, ring admission)
  // at every supported ring depth: whatever the cut lost, restore must land
  // on a version whose payload matches it exactly, and the set must accept
  // (and durably commit) new saves afterwards.
  for (int depth : {1, 2, 4}) {
    for (const char* at : {kPointChunkStaged, kPointChunkDrained, kPointRingStaged}) {
      if (depth == 1 && std::string_view(at) == kPointRingStaged) {
        continue;  // ring_stage only fires for rings deeper than one.
      }
      SCOPED_TRACE(::testing::Message() << "depth=" << depth << " point=" << at);
      auto b = make_backend(GetParam());
      ChunkConfig cc = chunk_cfg(4096, 1);
      cc.async_depth = depth;
      b.backend->configure_chunks(cc);
      std::vector<double> x(4 * 4096 / 8, 0.0);
      AsyncInterruptibleSet is(*b.backend, at);
      is.set.add("x", x.data(), x.size() * 8);
      for (std::uint64_t v = 1; v <= 2; ++v) {  // Two committed baselines.
        std::fill(x.begin(), x.end(), static_cast<double>(v));
        is.set.save_async();
        ASSERT_EQ(is.set.wait_durable(), v);
      }
      is.arm_after = 2;
      bool cut = false;
      try {
        // Overfill the ring so the crash can land with saves queued behind it.
        for (std::uint64_t v = 3; v <= 3 + static_cast<std::uint64_t>(depth); ++v) {
          std::fill(x.begin(), x.end(), static_cast<double>(v));
          is.set.save_async();
        }
        is.set.wait_durable();
      } catch (const TestPowerFailure&) {
        cut = true;
      }
      EXPECT_TRUE(cut);
      is.arm_after = 0;
      // Power-loss epilogue, as the workloads' inject_crash does it.
      is.set.abort_async();
      if (b.dram) b.dram->discard();
      std::fill(x.begin(), x.end(), 0.0);
      const std::uint64_t restored = is.set.restore();
      EXPECT_GE(restored, 2u);  // Never behind the pre-burst commits.
      EXPECT_LE(restored, 3 + static_cast<std::uint64_t>(depth));
      EXPECT_DOUBLE_EQ(x[0], static_cast<double>(restored));
      EXPECT_DOUBLE_EQ(x.back(), static_cast<double>(restored));
      // Life goes on: the next save commits durably past the crash.
      std::fill(x.begin(), x.end(), 9.0);
      EXPECT_EQ(is.set.save(), restored + 1);
      EXPECT_EQ(b.backend->latest().second, restored + 1);
    }
  }
}

TEST_P(BackendTest, DrainFailureSkipsQueuedRingSavesAndRetryRecommits) {
  auto b = make_backend(GetParam());
  ChunkConfig cc = chunk_cfg(4096, 1);
  cc.async_depth = 4;
  b.backend->configure_chunks(cc);
  std::vector<double> x(4 * 4096 / 8, 1.0);
  AsyncInterruptibleSet is(*b.backend, kPointChunkDrained);
  is.set.add("x", x.data(), x.size() * 8);
  is.set.save_async();
  ASSERT_EQ(is.set.wait_durable(), 1u);  // v1 committed.
  is.arm_after = 1;  // The next drained chunk — v2's first — dies.
  std::fill(x.begin(), x.end(), 2.0);
  is.set.save_async();  // v2: its drain will fail.
  std::fill(x.begin(), x.end(), 3.0);
  is.set.save_async();  // v3, queued behind the failure: must never run.
  std::fill(x.begin(), x.end(), 4.0);
  is.set.save_async();  // v4, possibly enqueued only after the failure hit.
  EXPECT_THROW(is.set.wait_durable(), TestPowerFailure);
  EXPECT_EQ(is.set.version(), 1u);       // Rolled back to before the failed save.
  EXPECT_FALSE(is.set.async_pending());  // The queued saves were dropped.
  // v1 is still the restorable truth...
  if (b.dram) b.dram->discard();
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(is.set.restore(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  // ...and the ring accepts (and commits) new work: the skip latch covering
  // the failure window must not leak into the retry.
  is.arm_after = 0;
  std::fill(x.begin(), x.end(), 5.0);
  EXPECT_EQ(is.set.save_async(), 2u);
  EXPECT_EQ(is.set.wait_durable(), 2u);
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(is.set.restore(), 2u);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
}

// -------------------------------------- dirty-chunk commit and salvage --

TEST_P(BackendTest, DirtyCommitStampsCleanChunksAndReusesTheCommittedSlot) {
  auto b = make_backend(GetParam());
  ChunkConfig cc = chunk_cfg(4096, 1);
  cc.dirty_commit = true;
  b.backend->configure_chunks(cc);
  std::vector<double> x(4 * 4096 / 8, 1.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  set.save();  // v1: no committed image anywhere yet — classic alternation.
  const int slot_v1 = b.backend->latest().first;
  set.save();  // v2: the OTHER slot holds no fallback yet — still alternates.
  const int slot_v2 = b.backend->latest().first;
  EXPECT_EQ(slot_v2, 1 - slot_v1);
  x[0] = 2.0;  // One dirty chunk.
  set.save();  // v3: both slots committed — in-place dirty commit engages.
  EXPECT_EQ(b.backend->latest().first, slot_v2);  // Same slot re-committed.
  EXPECT_EQ(b.backend->latest().second, 3u);
  EXPECT_EQ(set.last_save().chunks_written, 1u);
  EXPECT_EQ(set.last_save().chunks_stamped, 3u);
  EXPECT_EQ(set.last_save().chunks_skipped, 0u);
  std::fill(x.begin(), x.end(), 0.0);
  EXPECT_EQ(set.restore(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[512], 1.0);  // Stamped chunk intact.
}

TEST_P(BackendTest, TornInPlaceSaveFallsBackToTheAgedSlot) {
  auto b = make_backend(GetParam());
  ChunkConfig cc = chunk_cfg(4096, 1);
  cc.dirty_commit = true;
  b.backend->configure_chunks(cc);
  std::vector<double> x(4 * 4096 / 8, 1.0);
  InterruptibleSet is(*b.backend);
  is.set.add("x", x.data(), x.size() * 8);
  is.set.save();  // v1.
  std::fill(x.begin(), x.end(), 2.0);
  is.set.save();  // v2 — the slot the in-place save will now rewrite.
  std::fill(x.begin(), x.end(), 3.0);  // Every chunk dirty.
  is.arm_after_chunks = 2;  // Power fails two chunks into the in-place save.
  EXPECT_THROW(is.set.save(), TestPowerFailure);
  EXPECT_EQ(is.set.version(), 2u);  // Rolled back.
  if (b.dram) b.dram->discard();
  std::fill(x.begin(), x.end(), 0.0);
  const std::uint64_t restored = is.set.restore();
  if (GetParam() == Kind::kHetero) {
    // The interrupted chunks died in volatile DRAM staging: the in-place
    // image is intact and the marker's checkpoint survives untorn.
    EXPECT_EQ(restored, 2u);
    EXPECT_DOUBLE_EQ(x[0], 2.0);
    EXPECT_EQ(is.set.last_restore().torn_chunks, 0u);
  } else {
    // The committed image itself is torn (half v3, half v2, epochs
    // incoherent): restore falls back to the aged other slot and re-commits
    // it — the documented dirty-commit recovery trade.
    EXPECT_EQ(restored, 1u);
    EXPECT_DOUBLE_EQ(x[0], 1.0);
    EXPECT_GE(is.set.last_restore().torn_chunks, 1u);
  }
  // Life goes on from whatever was recovered.
  is.arm_after_chunks = 0;
  std::fill(x.begin(), x.end(), 7.0);
  EXPECT_EQ(is.set.save(), restored + 1);
  EXPECT_EQ(b.backend->latest().second, restored + 1);
}

TEST_P(BackendTest, TornSlotSalvageRecoversACompletedSaveAndRollsBackShortOfOne) {
  // The salvage boundary, one chunk apart: a crash AFTER the last chunk write
  // (before the slot header + marker) leaves a salvage-ready slot — restore
  // recovers the interrupted save past the committed marker. One chunk
  // earlier, salvage is impossible and restore rolls back to the marker.
  for (const std::size_t cut : {std::size_t{4}, std::size_t{3}}) {
    SCOPED_TRACE(::testing::Message() << "cut after chunk " << cut);
    auto b = make_backend(GetParam());
    b.backend->configure_chunks(chunk_cfg(4096, 1));
    std::vector<double> x(4 * 4096 / 8, 1.0);
    InterruptibleSet is(*b.backend);
    is.set.add("x", x.data(), x.size() * 8);
    is.set.save();  // v1.
    std::fill(x.begin(), x.end(), 2.0);
    is.set.save();  // v2.
    std::fill(x.begin(), x.end(), 3.0);  // Every chunk dirty for v3.
    is.arm_after_chunks = cut;
    EXPECT_THROW(is.set.save(), TestPowerFailure);
    if (b.dram) b.dram->discard();
    std::fill(x.begin(), x.end(), 0.0);
    const std::uint64_t restored = is.set.restore();
    if (GetParam() == Kind::kHetero) {
      // Nothing drained before the crash: no salvage candidate on media,
      // clean rollback to the marker either way.
      EXPECT_EQ(restored, 2u);
      EXPECT_DOUBLE_EQ(x[0], 2.0);
      EXPECT_EQ(is.set.last_restore().salvaged_chunks, 0u);
    } else if (cut == 4) {
      // All four chunks of v3 landed: salvage recovers it and re-commits.
      EXPECT_EQ(restored, 3u);
      EXPECT_DOUBLE_EQ(x[0], 3.0);
      EXPECT_EQ(is.set.last_restore().salvaged_chunks, 4u);
      EXPECT_EQ(is.set.last_restore().torn_chunks, 0u);  // Recovered, not lost.
      EXPECT_EQ(b.backend->latest().second, 3u);  // Salvage committed durably.
    } else {
      // Chunk 4 never landed: the slot is torn beyond salvage — rollback.
      EXPECT_EQ(restored, 2u);
      EXPECT_DOUBLE_EQ(x[0], 2.0);
      EXPECT_EQ(is.set.last_restore().salvaged_chunks, 0u);
      EXPECT_GE(is.set.last_restore().torn_chunks, 1u);
    }
  }
}

}  // namespace
}  // namespace adcc::checkpoint
