// Unit tests for the checkpoint backends and CheckpointSet, parameterized over
// all three media (file / NVM-only / heterogeneous NVM-DRAM).
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "checkpoint/checkpoint_set.hpp"
#include "checkpoint/file_backend.hpp"
#include "checkpoint/hetero_backend.hpp"
#include "checkpoint/nvm_backend.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"

namespace adcc::checkpoint {
namespace {

enum class Kind { kFile, kNvm, kHetero };

struct BackendBundle {
  std::unique_ptr<nvm::PerfModel> perf;
  std::unique_ptr<nvm::NvmRegion> region;
  std::unique_ptr<nvm::DramCache> dram;
  std::unique_ptr<Backend> backend;
};

BackendBundle make_backend(Kind kind, double throttle = 0.0) {
  BackendBundle b;
  nvm::PerfConfig pc;
  pc.dram_bw_bytes_per_s = 10e9;
  pc.bandwidth_slowdown = 1.0;
  pc.enabled = false;
  b.perf = std::make_unique<nvm::PerfModel>(pc);
  switch (kind) {
    case Kind::kFile: {
      FileBackendConfig fc;
      fc.directory = std::filesystem::temp_directory_path() /
                     ("adcc_test_ckpt_" + std::to_string(::getpid()));
      fc.throttle_bytes_per_s = throttle;
      b.backend = std::make_unique<FileBackend>(fc);
      break;
    }
    case Kind::kNvm:
      b.region = std::make_unique<nvm::NvmRegion>(8u << 20, *b.perf);
      b.backend = std::make_unique<NvmBackend>(*b.region, 1u << 20);
      break;
    case Kind::kHetero:
      b.region = std::make_unique<nvm::NvmRegion>(8u << 20, *b.perf);
      b.dram = std::make_unique<nvm::DramCache>(1u << 20, *b.region);
      b.backend = std::make_unique<HeteroBackend>(*b.region, *b.dram, 1u << 20);
      break;
  }
  return b;
}

class BackendTest : public ::testing::TestWithParam<Kind> {};

TEST_P(BackendTest, SaveLoadRoundtrip) {
  auto b = make_backend(GetParam());
  std::vector<double> x(100, 1.5), y(50, 2.5);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}, {"y", y.data(), y.size() * 8}};
  b.backend->save(0, 1, objs);
  std::fill(x.begin(), x.end(), 0.0);
  std::fill(y.begin(), y.end(), 0.0);
  EXPECT_EQ(b.backend->load(0, objs), 1u);
  EXPECT_DOUBLE_EQ(x[99], 1.5);
  EXPECT_DOUBLE_EQ(y[49], 2.5);
}

TEST_P(BackendTest, LatestTracksCommittedVersion) {
  auto b = make_backend(GetParam());
  std::vector<double> x(10, 1.0);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  EXPECT_EQ(b.backend->latest().second, 0u);
  b.backend->save(0, 1, objs);
  b.backend->save(1, 2, objs);
  const auto [slot, ver] = b.backend->latest();
  EXPECT_EQ(slot, 1);
  EXPECT_EQ(ver, 2u);
}

TEST_P(BackendTest, DoubleBufferingPreservesOlderSlot) {
  auto b = make_backend(GetParam());
  std::vector<double> x(10, 1.0);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  b.backend->save(0, 1, objs);  // slot 0 holds 1.0
  std::fill(x.begin(), x.end(), 2.0);
  b.backend->save(1, 2, objs);  // slot 1 holds 2.0
  std::fill(x.begin(), x.end(), 0.0);
  b.backend->load(0, objs);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  b.backend->load(1, objs);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST_P(BackendTest, StatsCountTraffic) {
  auto b = make_backend(GetParam());
  std::vector<double> x(10, 1.0);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  b.backend->save(0, 1, objs);
  b.backend->load(0, objs);
  EXPECT_EQ(b.backend->stats().saves, 1u);
  EXPECT_EQ(b.backend->stats().loads, 1u);
  EXPECT_EQ(b.backend->stats().bytes_saved, 80u);
  EXPECT_EQ(b.backend->stats().bytes_loaded, 80u);
}

TEST_P(BackendTest, CheckpointSetSaveRestoreCycle) {
  auto b = make_backend(GetParam());
  std::vector<double> x(64, 0.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  for (int it = 1; it <= 3; ++it) {
    std::fill(x.begin(), x.end(), static_cast<double>(it));
    EXPECT_EQ(set.save(), static_cast<std::uint64_t>(it));
  }
  std::fill(x.begin(), x.end(), -1.0);
  EXPECT_EQ(set.restore(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
}

TEST_P(BackendTest, RestoreWithoutCheckpointReturnsZero) {
  auto b = make_backend(GetParam());
  std::vector<double> x(8, 5.0);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), x.size() * 8);
  EXPECT_EQ(set.restore(), 0u);
  EXPECT_DOUBLE_EQ(x[0], 5.0);  // Untouched.
}

INSTANTIATE_TEST_SUITE_P(AllMedia, BackendTest,
                         ::testing::Values(Kind::kFile, Kind::kNvm, Kind::kHetero),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kFile: return "File";
                             case Kind::kNvm: return "Nvm";
                             case Kind::kHetero: return "Hetero";
                           }
                           return "Unknown";
                         });

TEST(CheckpointSet, AddAfterFirstSaveThrows) {
  auto b = make_backend(Kind::kNvm);
  std::vector<double> x(8), y(8);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), 64);
  set.save();
  EXPECT_THROW(set.add("y", y.data(), 64), ContractViolation);
}

TEST(CheckpointSet, PayloadBytesSumsObjects) {
  auto b = make_backend(Kind::kNvm);
  std::vector<double> x(8), y(4);
  CheckpointSet set(*b.backend);
  set.add("x", x.data(), 64);
  set.add("y", y.data(), 32);
  EXPECT_EQ(set.payload_bytes(), 96u);
}

TEST(NvmBackend, OversizedCheckpointRejected) {
  auto b = make_backend(Kind::kNvm);
  std::vector<double> big((2u << 20) / 8, 1.0);
  std::vector<ObjectView> objs = {{"big", big.data(), big.size() * 8}};
  EXPECT_THROW(b.backend->save(0, 1, objs), ContractViolation);
}

TEST(FileBackend, ThrottleBoundsBandwidth) {
  auto b = make_backend(Kind::kFile, /*throttle=*/50e6);  // 50 MB/s
  std::vector<double> x((4u << 20) / 8, 1.0);             // 4 MB → ≥ 80 ms
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  Timer t;
  b.backend->save(0, 1, objs);
  EXPECT_GE(t.elapsed(), 0.07);
}

TEST(HeteroBackend, DramCacheSeesBothCopies) {
  auto b = make_backend(Kind::kHetero);
  std::vector<double> x(1024, 1.0);
  std::vector<ObjectView> objs = {{"x", x.data(), x.size() * 8}};
  b.backend->save(0, 1, objs);
  EXPECT_EQ(b.dram->stats().staged_bytes, 8192u);
  EXPECT_EQ(b.dram->stats().drained_bytes, 8192u);
  EXPECT_EQ(b.dram->pending(), 0u);
}

}  // namespace
}  // namespace adcc::checkpoint
