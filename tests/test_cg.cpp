// Tests for the CG variants: plain, checkpointed, transactional.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "cg/cg.hpp"
#include "cg/cg_ckpt.hpp"
#include "cg/cg_tx.hpp"
#include "checkpoint/nvm_backend.hpp"
#include "linalg/spgen.hpp"
#include "linalg/vec_ops.hpp"

namespace adcc::cg {
namespace {

nvm::PerfModel& model() {
  static nvm::PerfModel m(
      nvm::PerfConfig{.dram_bw_bytes_per_s = 10e9, .bandwidth_slowdown = 1.0, .enabled = false});
  return m;
}

struct Problem {
  linalg::CsrMatrix a;
  std::vector<double> b;
};

Problem make_problem(std::size_t n = 600) {
  return {linalg::make_spd(n, 9, 21), linalg::make_rhs(n, 22)};
}

TEST(CgInit, StateMatchesDefinition) {
  const Problem p = make_problem(100);
  CgState s;
  cg_init(p.a, p.b, s);
  EXPECT_EQ(s.iter, 0u);
  EXPECT_DOUBLE_EQ(s.rho, linalg::dot(p.b, p.b));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(s.r[i], p.b[i]);
    EXPECT_DOUBLE_EQ(s.p[i], p.b[i]);
    EXPECT_DOUBLE_EQ(s.z[i], 0.0);
  }
}

TEST(CgStep, ReducesResidualNorm) {
  const Problem p = make_problem();
  CgState s;
  cg_init(p.a, p.b, s);
  const double before = std::sqrt(s.rho);
  for (int i = 0; i < 5; ++i) cg_step(p.a, s);
  EXPECT_LT(std::sqrt(s.rho), before);
  EXPECT_EQ(s.iter, 5u);
}

TEST(CgSolve, ConvergesTowardSolution) {
  const Problem p = make_problem();
  const auto res5 = cg_solve(p.a, p.b, 5);
  const auto res40 = cg_solve(p.a, p.b, 40);
  EXPECT_LT(res40.residual_norm, res5.residual_norm);
  EXPECT_LT(res40.residual_norm, 1e-6 * linalg::norm2(p.b));
}

TEST(CgSolve, InternalResidualTracksTrueResidual) {
  const Problem p = make_problem(300);
  CgState s;
  cg_init(p.a, p.b, s);
  for (int i = 0; i < 10; ++i) cg_step(p.a, s);
  const double true_r = true_residual(p.a, p.b, s.z);
  EXPECT_NEAR(std::sqrt(s.rho), true_r, 1e-8 * linalg::norm2(p.b) + 1e-10);
}

TEST(CgSolve, RhsSizeMismatchThrows) {
  const Problem p = make_problem(100);
  std::vector<double> bad(50, 1.0);
  EXPECT_THROW(cg_solve(p.a, bad, 3), ContractViolation);
}

TEST(CgCkpt, ResultIdenticalToPlainCg) {
  const Problem p = make_problem(400);
  nvm::NvmRegion region(16u << 20, model());
  checkpoint::NvmBackend backend(region, 4u << 20);
  const auto plain = cg_solve(p.a, p.b, 12);
  const auto ck = run_cg_checkpointed(p.a, p.b, 12, backend);
  EXPECT_EQ(ck.checkpoints, 12u);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(plain.x, ck.cg.x), 0.0);  // Same op sequence.
}

TEST(CgCkpt, ResumeContinuesFromLatestCheckpoint) {
  const Problem p = make_problem(400);
  nvm::NvmRegion region(16u << 20, model());
  checkpoint::NvmBackend backend(region, 4u << 20);
  // "Crash" after 7 of 12 iterations: run only 7, then resume to 12.
  run_cg_checkpointed(p.a, p.b, 7, backend);
  const auto resumed = resume_cg_checkpointed(p.a, p.b, 12, backend);
  const auto full = cg_solve(p.a, p.b, 12);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(resumed.x, full.x), 0.0);
}

TEST(CgCkpt, ResumeWithNoCheckpointRunsFromScratch) {
  const Problem p = make_problem(200);
  nvm::NvmRegion region(16u << 20, model());
  checkpoint::NvmBackend backend(region, 4u << 20);
  const auto resumed = resume_cg_checkpointed(p.a, p.b, 6, backend);
  const auto full = cg_solve(p.a, p.b, 6);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(resumed.x, full.x), 0.0);
}

TEST(CgTx, ResultIdenticalToPlainCg) {
  const Problem p = make_problem(300);
  pmemtx::PersistentHeap heap(cg_tx_data_bytes(300), cg_tx_log_bytes(300), model());
  const auto plain = cg_solve(p.a, p.b, 10);
  const auto tx = run_cg_tx(p.a, p.b, 10, heap);
  EXPECT_DOUBLE_EQ(linalg::max_abs_diff(plain.x, tx.cg.x), 0.0);
}

TEST(CgTx, LogsThreeVectorsPlusScalarsPerIteration) {
  const Problem p = make_problem(200);
  pmemtx::PersistentHeap heap(cg_tx_data_bytes(200), cg_tx_log_bytes(200), model());
  const auto tx = run_cg_tx(p.a, p.b, 8, heap);
  EXPECT_EQ(tx.log_stats.transactions, 8u);
  EXPECT_EQ(tx.log_stats.ranges_logged, 8u * 4);
  // Per iteration: 3 vectors of n doubles + 2 scalars.
  EXPECT_EQ(tx.log_stats.bytes_logged, 8u * (3 * 200 * 8 + 16));
}

TEST(TrueResidual, ZeroForExactSolution) {
  // A = I system: x = b exactly.
  std::vector<std::size_t> rp = {0, 1, 2};
  std::vector<std::uint32_t> ci = {0, 1};
  std::vector<double> v = {1.0, 1.0};
  linalg::CsrMatrix eye(2, std::move(rp), std::move(ci), std::move(v));
  std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(true_residual(eye, b, b), 0.0);
}

}  // namespace
}  // namespace adcc::cg
