// Tests for the scenario layer: crash-plan parsing, crash-unit planning, and
// the ScenarioRunner driving every workload x mode x crash combination over
// tiny problem instances.
#include <gtest/gtest.h>

#include <filesystem>

#include "cg/cg_workload.hpp"
#include "core/scenario.hpp"
#include "mc/mc_workload.hpp"
#include "mm/mm_workload.hpp"

namespace adcc::core {
namespace {

CrashScenario at_step(std::size_t k) {
  CrashScenario c;
  c.kind = CrashScenario::Kind::kAtStep;
  c.step = k;
  return c;
}

CrashScenario at_random(std::uint64_t seed) {
  CrashScenario c;
  c.kind = CrashScenario::Kind::kRandom;
  c.seed = seed;
  return c;
}

CrashScenario repeated(std::size_t n) {
  CrashScenario c;
  c.kind = CrashScenario::Kind::kRepeated;
  c.count = n;
  return c;
}

// ---------------------------------------------------------------- parsing --

TEST(ParseCrash, AcceptsAllSpellings) {
  EXPECT_EQ(parse_crash("none")->kind, CrashScenario::Kind::kNone);
  const auto step = parse_crash("step:7");
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->kind, CrashScenario::Kind::kAtStep);
  EXPECT_EQ(step->step, 7u);
  const auto rnd = parse_crash("random:99");
  ASSERT_TRUE(rnd.has_value());
  EXPECT_EQ(rnd->kind, CrashScenario::Kind::kRandom);
  EXPECT_EQ(rnd->seed, 99u);
  EXPECT_TRUE(parse_crash("random").has_value());
  const auto rep = parse_crash("repeat:3");
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->kind, CrashScenario::Kind::kRepeated);
  EXPECT_EQ(rep->count, 3u);
}

TEST(ParseCrash, AcceptsMidUnitSpellings) {
  const auto acc = parse_crash("access:1234");
  ASSERT_TRUE(acc.has_value());
  EXPECT_EQ(acc->kind, CrashScenario::Kind::kAtAccess);
  EXPECT_EQ(acc->access, 1234u);

  // Point names contain ':' themselves; the occurrence is the numeric tail.
  const auto p1 = parse_crash("point:cg:p_updated");
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->kind, CrashScenario::Kind::kAtPoint);
  EXPECT_EQ(p1->point, "cg:p_updated");
  EXPECT_EQ(p1->occurrence, 1u);
  const auto p15 = parse_crash("point:cg:p_updated:15");
  ASSERT_TRUE(p15.has_value());
  EXPECT_EQ(p15->point, "cg:p_updated");
  EXPECT_EQ(p15->occurrence, 15u);
  const auto plain = parse_crash("point:boundary:7");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->point, "boundary");
  EXPECT_EQ(plain->occurrence, 7u);

  const auto fz = parse_crash("fuzz:42");
  ASSERT_TRUE(fz.has_value());
  EXPECT_EQ(fz->kind, CrashScenario::Kind::kFuzz);
  EXPECT_EQ(fz->seed, 42u);
  EXPECT_TRUE(parse_crash("fuzz").has_value());

  for (const char* spec : {"access:1", "point:xs:lookup_end:100", "fuzz:9"}) {
    EXPECT_TRUE(crash_is_mid_unit(*parse_crash(spec))) << spec;
  }
  for (const char* spec : {"none", "step:3", "random", "repeat:2"}) {
    EXPECT_FALSE(crash_is_mid_unit(*parse_crash(spec))) << spec;
  }
}

TEST(ParseCrash, RejectsMalformedSpecs) {
  for (const char* bad : {"step", "step:", "step:0", "step:x", "repeat:0", "boom", "random:x",
                          "access", "access:", "access:0", "access:x", "point", "point:",
                          "point::3", "point:name:0", "fuzz:x"}) {
    EXPECT_FALSE(parse_crash(bad).has_value()) << bad;
  }
}

TEST(ParseCrash, DoubleFaultChains) {
  // HEAD^TAIL: the tail is armed before the recovery following the head's
  // crash, so it lands inside recover().
  const auto chained = parse_crash("step:2^point:ckpt_restore:1");
  ASSERT_TRUE(chained.has_value());
  EXPECT_EQ(chained->kind, CrashScenario::Kind::kAtStep);
  ASSERT_EQ(chained->then.size(), 1u);
  EXPECT_EQ(chained->then[0].kind, CrashScenario::Kind::kAtPoint);
  EXPECT_EQ(chained->then[0].point, "ckpt_restore");
  EXPECT_EQ(crash_name(*chained), "step:2^point:ckpt_restore");

  const auto triple = parse_crash("fuzz:7^access:500^point:ckpt_restore:2");
  ASSERT_TRUE(triple.has_value());
  EXPECT_EQ(triple->kind, CrashScenario::Kind::kFuzz);
  ASSERT_EQ(triple->then.size(), 2u);
  EXPECT_EQ(triple->then[0].kind, CrashScenario::Kind::kAtAccess);
  EXPECT_EQ(triple->then[1].occurrence, 2u);
  EXPECT_EQ(crash_name(*parse_crash(crash_name(*triple))), crash_name(*triple));

  // Tails must be mid-unit (access/point) plans; heads must crash at all.
  for (const char* bad : {"step:2^step:3", "step:2^repeat:2", "none^access:5",
                          "^access:5", "step:2^", "step:2^boom", "access:5^fuzz:3"}) {
    EXPECT_FALSE(parse_crash(bad).has_value()) << bad;
  }
}

TEST(ParseCrash, RoundTripsThroughCrashName) {
  for (const char* spec : {"none", "step:4", "random:12", "repeat:2", "access:5000",
                           "point:cg:p_updated", "point:cg:p_updated:15",
                           "point:mm:loop2_end:4", "fuzz:31"}) {
    const auto c = parse_crash(spec);
    ASSERT_TRUE(c.has_value()) << spec;
    const auto again = parse_crash(crash_name(*c));
    ASSERT_TRUE(again.has_value()) << spec;
    EXPECT_EQ(again->kind, c->kind) << spec;
    EXPECT_EQ(again->access, c->access) << spec;
    EXPECT_EQ(again->point, c->point) << spec;
    EXPECT_EQ(again->occurrence, c->occurrence) << spec;
    EXPECT_EQ(crash_name(*again), crash_name(*c)) << spec;
  }
}

TEST(CrashUnits, PlansBoundaries) {
  EXPECT_TRUE(crash_units({}, 10).empty());
  CrashScenario step = at_step(25);
  EXPECT_EQ(crash_units(step, 10), std::vector<std::size_t>{10});  // Clamped.
  step.step = 3;
  EXPECT_EQ(crash_units(step, 10), std::vector<std::size_t>{3});
  const CrashScenario rnd = at_random(42);
  const auto a = crash_units(rnd, 10);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_GE(a[0], 1u);
  EXPECT_LE(a[0], 10u);
  EXPECT_EQ(a, crash_units(rnd, 10));  // Deterministic in the seed.
  const auto units = crash_units(repeated(3), 12);
  EXPECT_EQ(units, (std::vector<std::size_t>{3, 6, 9}));
  EXPECT_TRUE(std::is_sorted(units.begin(), units.end()));
}

TEST(CrashUnits, EdgeCases) {
  // step:K past the end of the run clamps to the final boundary.
  EXPECT_EQ(crash_units(at_step(1000), 6), std::vector<std::size_t>{6});
  // repeat:N > work units degrades to at most one crash per boundary.
  const auto dense = crash_units(repeated(50), 4);
  EXPECT_LE(dense.size(), 4u);
  EXPECT_FALSE(dense.empty());
  for (std::size_t i = 1; i < dense.size(); ++i) EXPECT_LT(dense[i - 1], dense[i]);
  // Zero-unit runs crash nowhere.
  EXPECT_TRUE(crash_units(at_step(1), 0).empty());
  EXPECT_TRUE(crash_units(repeated(3), 0).empty());
  // Mid-unit plans have no boundary schedule: they arm the fault surface.
  EXPECT_TRUE(crash_units(*parse_crash("access:100"), 10).empty());
  EXPECT_TRUE(crash_units(*parse_crash("point:cg:iter_end"), 10).empty());
  EXPECT_TRUE(crash_units(*parse_crash("fuzz:1"), 10).empty());
}

// ----------------------------------------------------------------- runner --

ScenarioConfig tiny_config(const Workload& w, Mode mode) {
  ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.env.scratch_dir = std::filesystem::temp_directory_path() / "adcc_scenario_test";
  w.tune_env(mode, cfg.env);
  cfg.verify = true;
  return cfg;
}

cg::CgWorkloadConfig tiny_cg() {
  cg::CgWorkloadConfig cfg;
  cfg.n = 96;
  cfg.nz_per_row = 6;
  cfg.iters = 6;
  return cfg;
}

mc::McWorkloadConfig tiny_mc() {
  mc::McWorkloadConfig cfg;
  cfg.data.n_nuclides = 6;
  cfg.data.gridpoints_per_nuclide = 60;
  cfg.lookups = 600;
  cfg.interval = 100;  // 6 units.
  return cfg;
}

mm::MmWorkloadConfig tiny_mm() {
  mm::MmWorkloadConfig cfg;
  cfg.n = 64;
  cfg.rank_k = 16;  // 4 panels, 5 addition blocks in alg modes.
  return cfg;
}

TEST(ScenarioRunner, TinyCgVerifiesInAllSevenModes) {
  cg::CgWorkload w(tiny_cg());
  for (Mode m : all_modes()) {
    const ScenarioResult res = run_scenario(w, tiny_config(w, m));
    EXPECT_EQ(res.work_units, 6u) << mode_name(m);
    EXPECT_EQ(res.crashes, 0u) << mode_name(m);
    EXPECT_TRUE(res.verify_ran) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
    EXPECT_GT(res.seconds, 0.0) << mode_name(m);
  }
}

TEST(ScenarioRunner, TinyMmVerifiesInAllSevenModes) {
  mm::MmWorkload w(tiny_mm());
  for (Mode m : all_modes()) {
    const ScenarioResult res = run_scenario(w, tiny_config(w, m));
    EXPECT_EQ(res.work_units, is_algorithm_mode(m) ? 9u : 4u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, TinyMcVerifiesInAllSevenModes) {
  mc::McWorkload w(tiny_mc());
  for (Mode m : all_modes()) {
    const ScenarioResult res = run_scenario(w, tiny_config(w, m));
    EXPECT_EQ(res.work_units, 6u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

// The ISSUE's RecomputationBreakdown invariants: a crash after unit k recovers
// with restart <= k + 1 and units_lost == k + 1 - restart, and still verifies.
TEST(ScenarioRunner, CrashAtStepKInvariantsHoldInAllModes) {
  cg::CgWorkload w(tiny_cg());
  const CrashScenario crash = at_step(3);
  for (Mode m : all_modes()) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = crash;
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    EXPECT_EQ(res.crash_unit, 3u) << mode_name(m);
    EXPECT_GE(res.restart_unit, 1u) << mode_name(m);
    EXPECT_LE(res.restart_unit, res.crash_unit + 1) << mode_name(m);
    EXPECT_EQ(res.recomputation.units_lost, res.crash_unit + 1 - res.restart_unit)
        << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, NativeCrashLosesEverything) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kNative);
  cfg.crash = at_step(4);
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_EQ(res.restart_unit, 1u);       // restart <= crash: all work redone.
  EXPECT_LE(res.restart_unit, res.crash_unit);
  EXPECT_EQ(res.recomputation.units_lost, 4u);
  EXPECT_GT(res.recomputation.resume_seconds, 0.0);
  EXPECT_TRUE(res.verified);
}

TEST(ScenarioRunner, DurableModesLoseNothingAtBoundaries) {
  cg::CgWorkload w(tiny_cg());
  for (Mode m : {Mode::kCkptNvm, Mode::kPmemTx, Mode::kAlgNvm}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = at_step(4);
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.recomputation.units_lost, 0u) << mode_name(m);
    EXPECT_EQ(res.restart_unit, 5u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, RepeatedCrashesAllRecover) {
  mc::McWorkload w(tiny_mc());
  for (Mode m : {Mode::kNative, Mode::kCkptNvm, Mode::kAlgNvm}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = repeated(2);
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 2u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, RandomCrashIsDeterministicInSeed) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.crash = at_random(77);
  const ScenarioResult a = run_scenario(w, cfg);
  const ScenarioResult b = run_scenario(w, cfg);
  EXPECT_EQ(a.crash_unit, b.crash_unit);
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_TRUE(a.verified);
}

TEST(ScenarioRunner, MmAlgCrashInLoopTwoRecovers) {
  mm::MmWorkload w(tiny_mm());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.crash = at_step(6);  // Unit 6 = addition block 2.
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_EQ(res.crash_unit, 6u);
  EXPECT_EQ(res.recomputation.units_lost, 0u);
  EXPECT_TRUE(res.verified);
}

TEST(ScenarioRunner, NormalizesAgainstProvidedBaseline) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kNative);
  cfg.native_seconds = 1.0;
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_DOUBLE_EQ(res.time.normalized, res.seconds);
}

TEST(ScenarioRunner, MultipleRepsReportMedian) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.reps = 3;
  cfg.warmup = true;
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_TRUE(res.verified);
}

// --------------------------------------------------------------- mid-unit --

TEST(ScenarioRunner, MidUnitPointCrashRecoversInAllModes) {
  cg::CgWorkload w(tiny_cg());
  for (Mode m : all_modes()) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("point:cg:iter_end:3");
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    // iter_end fires after the unit's compute, before make_durable/++done.
    EXPECT_EQ(res.recomputation.partial_units, 1u) << mode_name(m);
    EXPECT_EQ(res.crash_unit, 2u) << mode_name(m);  // Two units had completed.
    EXPECT_EQ(res.crash_site, "cg:iter_end") << mode_name(m);
    EXPECT_GT(res.crash_access, 0u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, MidUnitAccessCrashRecoversInAllModes) {
  cg::CgWorkload w(tiny_cg());
  for (Mode m : all_modes()) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("access:2000");  // Inside unit 2 at n=96, nz=6.
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    EXPECT_EQ(res.recomputation.partial_units, 1u) << mode_name(m);
    EXPECT_GE(res.crash_access, 2000u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, FuzzCrashIsDeterministicInSeed) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.crash = *parse_crash("fuzz:17");
  const ScenarioResult a = run_scenario(w, cfg);
  const ScenarioResult b = run_scenario(w, cfg);
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_EQ(a.crash_access, b.crash_access);
  EXPECT_EQ(a.crash_unit, b.crash_unit);
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);

  // A different seed lands elsewhere (overwhelmingly likely across the run).
  cfg.crash = *parse_crash("fuzz:18");
  const ScenarioResult c = run_scenario(w, cfg);
  EXPECT_EQ(c.crashes, 1u);
  EXPECT_TRUE(c.verified);
}

TEST(ScenarioRunner, FuzzSweepRecoversForAllWorkloadsAndModes) {
  cg::CgWorkload cg(tiny_cg());
  mm::MmWorkload mm(tiny_mm());
  mc::McWorkload mc(tiny_mc());
  Workload* workloads[] = {&cg, &mm, &mc};
  for (Workload* w : workloads) {
    for (Mode m : all_modes()) {
      ScenarioConfig cfg = tiny_config(*w, m);
      cfg.crash = *parse_crash("fuzz:5");
      const ScenarioResult res = run_scenario(*w, cfg);
      EXPECT_EQ(res.crashes, 1u) << w->name() << "/" << mode_name(m);
      EXPECT_TRUE(res.verified) << w->name() << "/" << mode_name(m);
    }
  }
}

// --------------------------------------------- durability-engine crashes --

TEST(ScenarioRunner, CrashMidCheckpointSaveIsDetectedAsTorn) {
  // point:ckpt_chunk:1 fires after the first chunk of the first save: the
  // in-flight checkpoint is torn, the marker never committed, and recovery
  // must classify the torn chunks, fall back to "no checkpoint", and redo the
  // lost unit.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : {Mode::kCkptNvm, Mode::kCkptDisk, Mode::kCkptHetero}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("point:ckpt_chunk:1");
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    EXPECT_EQ(res.crash_site, "ckpt_chunk") << mode_name(m);
    // The unit itself completed; the *save* was interrupted.
    EXPECT_EQ(res.recomputation.partial_units, 0u) << mode_name(m);
    EXPECT_GE(res.recomputation.units_lost, 1u) << mode_name(m);
    if (m == Mode::kCkptHetero) {
      // The interrupted chunks died in the volatile DRAM staging cache: the
      // slot stays clean-old rather than torn (hetero's crash signature).
      EXPECT_EQ(res.recomputation.torn_chunks, 0u) << mode_name(m);
    } else {
      EXPECT_GE(res.recomputation.torn_chunks, 1u) << mode_name(m);
    }
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, CrashMidLaterCheckpointKeepsPreviousCheckpoint) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kCkptNvm);
  // The set saves 4 chunks per unit at tiny sizes; occurrence 6 lands inside
  // the second unit's save, so recovery restores checkpoint 1 (one unit lost).
  cfg.crash = *parse_crash("point:ckpt_chunk:6");
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_unit, 2u);
  EXPECT_EQ(res.restart_unit, 2u);
  EXPECT_EQ(res.recomputation.units_lost, 1u);
  EXPECT_GE(res.recomputation.torn_chunks, 1u);
  EXPECT_TRUE(res.verified);
}

TEST(ScenarioRunner, CrashDuringRecoveryDoubleFaults) {
  // step:3 crashes at a boundary; point:ckpt_restore:1 is armed before the
  // recovery and fires inside the checkpoint load — the runner re-injects and
  // retries recovery, so the run still completes and verifies.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : {Mode::kCkptNvm, Mode::kCkptDisk, Mode::kCkptHetero}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("step:3^point:ckpt_restore:1");
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 2u) << mode_name(m);
    EXPECT_EQ(res.crash_site, "ckpt_restore") << mode_name(m);
    EXPECT_EQ(res.restart_unit, 4u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, DoubleTailChainInterruptsRecoveryTwice) {
  // PLAN^TAIL^TAIL: the grammar has accepted double tails since PR 4, but no
  // test ever drove one. step:3 crashes at the boundary; the first
  // ckpt_restore tail kills the recovery, and the SECOND tail is armed before
  // the retry, killing recovery again — three crashes total, then a clean
  // third recovery completes and the run verifies.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : {Mode::kCkptNvm, Mode::kCkptDisk}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("step:3^point:ckpt_restore:1^point:ckpt_restore:1");
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 3u) << mode_name(m);
    EXPECT_EQ(res.crash_site, "ckpt_restore") << mode_name(m);
    EXPECT_EQ(res.restart_unit, 4u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
  // Where recovery never touches checkpoint chunks, neither tail fires and
  // both must be disarmed harmlessly.
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.crash = *parse_crash("step:3^point:ckpt_restore:1^point:ckpt_restore:1");
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_TRUE(res.verified);
}

// ------------------------------------------------------------ silent flips --

TEST(ScenarioRunner, FlipDetectedByOnlineAbftInAlgModes) {
  // Seed 7 lands a flip inside a CG iteration's history rows; the online-ABFT
  // invariant check at the next unit catches it (latency 1 unit) and rolls
  // back, so the run still verifies.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : {Mode::kAlgNvm, Mode::kAlgHetero}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("flip:7");
    const ScenarioResult res = run_scenario(w, cfg);
    const RecomputationBreakdown& rb = res.recomputation;
    EXPECT_EQ(rb.flips, 1u) << mode_name(m);
    EXPECT_EQ(rb.flips_detected, 1u) << mode_name(m);
    EXPECT_EQ(rb.detect_latency_units, 1u) << mode_name(m);
    EXPECT_EQ(rb.flips_miscorrected, 0u) << mode_name(m);
    EXPECT_EQ(res.crash_site, "cg:invariant") << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, FlipIsAnHonestMissInUndefendedModes) {
  // The same seed in modes with no integrity checks: the flip fires, nothing
  // detects it, and end-of-run verify() reports the corruption honestly.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : {Mode::kNative, Mode::kCkptNvm, Mode::kPmemTx}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("flip:7");
    const ScenarioResult res = run_scenario(w, cfg);
    const RecomputationBreakdown& rb = res.recomputation;
    EXPECT_EQ(rb.flips, 1u) << mode_name(m);
    EXPECT_EQ(rb.flips_detected, 0u) << mode_name(m);
    EXPECT_EQ(res.crashes, 0u) << mode_name(m);
    EXPECT_TRUE(res.verify_ran) << mode_name(m);
    EXPECT_FALSE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, FlipCorrectedInPlaceByMmChecksums) {
  // MM's row/column checksums can REPAIR a single flipped element: detection
  // without rollback (flips_corrected), and the run verifies.
  mm::MmWorkload w(tiny_mm());
  ScenarioConfig cfg = tiny_config(w, Mode::kNative);
  cfg.crash = *parse_crash("flip:8");  // Seed 8 hits a correctable element here.
  const ScenarioResult res = run_scenario(w, cfg);
  const RecomputationBreakdown& rb = res.recomputation;
  EXPECT_EQ(rb.flips, 1u);
  EXPECT_EQ(rb.flips_detected, 1u);
  EXPECT_GE(rb.flips_corrected, 1u);
  EXPECT_EQ(rb.flips_miscorrected, 0u);
  EXPECT_EQ(res.crashes, 0u);  // Correction in place: no rollback needed.
  EXPECT_TRUE(res.verified);
}

TEST(ScenarioRunner, FlipDetectedByMcTallyInvariantInAllModes) {
  // The MC tally invariant (counter sum == completed lookups) runs before
  // every publish in every engine, so a counter flip is caught at latency 0
  // regardless of mode, and the rollback recovers exact tallies.
  mc::McWorkload w(tiny_mc());
  for (Mode m : {Mode::kNative, Mode::kCkptNvm, Mode::kPmemTx, Mode::kAlgNvm}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("flip:7");
    const ScenarioResult res = run_scenario(w, cfg);
    const RecomputationBreakdown& rb = res.recomputation;
    EXPECT_EQ(rb.flips, 1u) << mode_name(m);
    EXPECT_EQ(rb.flips_detected, 1u) << mode_name(m);
    EXPECT_EQ(rb.detect_latency_units, 0u) << mode_name(m);
    EXPECT_EQ(res.crash_site, "mc:tally") << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, FlipThenCrashChainComposesWithCheckpointSave) {
  // flip:SEED^point:ckpt_chunk — the silent head fires WITHOUT raising, the
  // tail is armed at injection time, and the next checkpoint save's first
  // chunk crashes. The unit that hosted the flip checkpoints its (corrupted)
  // state before the tail fires, so the rollback restores corruption the
  // checkpoint scheme cannot see — the chain composes, the crash recovers,
  // and verify() reports the persistent miss honestly.
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kCkptNvm);
  cfg.crash = *parse_crash("flip:7^point:ckpt_chunk:1");
  const ScenarioResult res = run_scenario(w, cfg);
  const RecomputationBreakdown& rb = res.recomputation;
  EXPECT_EQ(rb.flips, 1u);
  EXPECT_EQ(rb.flips_detected, 0u);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_site, "ckpt_chunk");
  EXPECT_TRUE(res.verify_ran);
  EXPECT_FALSE(res.verified);  // The checkpoint itself captured the flip.
}

TEST(ScenarioRunner, FlipIsDeterministicInSeed) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.crash = *parse_crash("flip:7");
  const ScenarioResult a = run_scenario(w, cfg);
  const ScenarioResult b = run_scenario(w, cfg);
  EXPECT_EQ(a.recomputation.flips, b.recomputation.flips);
  EXPECT_EQ(a.recomputation.flips_detected, b.recomputation.flips_detected);
  EXPECT_EQ(a.recomputation.detect_latency_units, b.recomputation.detect_latency_units);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.verified, b.verified);
}

TEST(ScenarioRunner, UnfiredRecoveryChainLinkIsHarmless) {
  // In a mode whose recovery never loads checkpoint chunks, the armed
  // ckpt_restore tail never fires and must be disarmed when recovery
  // completes — the resumed execution may not inherit a live trigger.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : {Mode::kNative, Mode::kAlgNvm, Mode::kPmemTx}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("step:3^point:ckpt_restore:1");
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, SharedFuzzProbeMatchesInlineProbe) {
  // A pre-measured probe (the sweep engine's per-shape cache) must land the
  // fuzz crash on exactly the access the inline per-runner probe picks.
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.crash = *parse_crash("fuzz:23");
  const ScenarioResult inline_probe = run_scenario(w, cfg);

  cg::CgWorkload probe_instance(tiny_cg());
  cfg.fuzz_boundaries = std::make_shared<const std::vector<std::uint64_t>>(
      probe_fuzz_boundaries(probe_instance, Mode::kAlgNvm, cfg.env));
  cg::CgWorkload shared_instance(tiny_cg());
  const ScenarioResult shared = run_scenario(shared_instance, cfg);

  EXPECT_EQ(shared.crashes, 1u);
  EXPECT_EQ(shared.crash_access, inline_probe.crash_access);
  EXPECT_EQ(shared.crash_unit, inline_probe.crash_unit);
  EXPECT_TRUE(shared.verified);
}

// ----------------------------------------------- asynchronous checkpoints --

constexpr Mode kCkptModes[] = {Mode::kCkptDisk, Mode::kCkptNvm, Mode::kCkptHetero};

ScenarioConfig tiny_async_config(const Workload& w, Mode mode) {
  ScenarioConfig cfg = tiny_config(w, mode);
  cfg.env.ckpt_async = true;
  return cfg;
}

TEST(ScenarioRunner, AsyncCheckpointVerifiesAndOverlapsInAllCkptModes) {
  cg::CgWorkload w(tiny_cg());
  for (Mode m : kCkptModes) {
    const ScenarioResult res = run_scenario(w, tiny_async_config(w, m));
    EXPECT_TRUE(res.verified) << mode_name(m);
    EXPECT_EQ(res.crashes, 0u) << mode_name(m);
    // Every unit after the first starts with the previous save's drain in
    // flight, so some execution time is accounted as overlapped.
    EXPECT_GT(res.recomputation.overlap_seconds, 0.0) << mode_name(m);
    // The synchronous scheme never overlaps.
    const ScenarioResult sync = run_scenario(w, tiny_config(w, m));
    EXPECT_EQ(sync.recomputation.overlap_seconds, 0.0) << mode_name(m);
  }
}

TEST(ScenarioRunner, AsyncCrashMidDrainClassifiesLikeSyncMidSave) {
  // ckpt_drain:1 kills the very first background drain; the exception
  // surfaces at the join inside the NEXT unit's save, so the runner accounts
  // a crash after that completed unit with a torn (file/NVM) or clean-old
  // (hetero) in-flight slot — exactly the synchronous ckpt_chunk taxonomy.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : kCkptModes) {
    ScenarioConfig cfg = tiny_async_config(w, m);
    cfg.crash = *parse_crash("point:ckpt_drain:1");
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    EXPECT_EQ(res.crash_site, "ckpt_drain") << mode_name(m);
    EXPECT_EQ(res.recomputation.partial_units, 0u) << mode_name(m);
    EXPECT_GE(res.recomputation.units_lost, 1u) << mode_name(m);
    if (m == Mode::kCkptHetero) {
      EXPECT_EQ(res.recomputation.torn_chunks, 0u) << mode_name(m);
    } else {
      EXPECT_GE(res.recomputation.torn_chunks, 1u) << mode_name(m);
    }
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, AsyncCrashDuringStagingKeepsPreviousCheckpoint) {
  // The cg checkpoint set stages 4 chunks per save at tiny sizes, so
  // ckpt_stage:6 lands two chunks into the SECOND unit's staging pass. The
  // backend is untouched by a staging crash: recovery restores checkpoint 1
  // (one unit lost) and finds zero torn chunks on every medium.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : kCkptModes) {
    ScenarioConfig cfg = tiny_async_config(w, m);
    cfg.crash = *parse_crash("point:ckpt_stage:6");
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    EXPECT_EQ(res.crash_site, "ckpt_stage") << mode_name(m);
    EXPECT_EQ(res.crash_unit, 2u) << mode_name(m);
    EXPECT_EQ(res.restart_unit, 2u) << mode_name(m);
    EXPECT_EQ(res.recomputation.units_lost, 1u) << mode_name(m);
    EXPECT_EQ(res.recomputation.torn_chunks, 0u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, AsyncCrashInFinalDrainStillCompletesDurably) {
  // 6 units x 4 chunks/save: occurrence 21 lands in the LAST unit's drain,
  // which the runner joins via wait_durable() after run_step() returns false.
  // The crash there must be recovered and re-executed, not lost.
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_async_config(w, Mode::kCkptNvm);
  cfg.crash = *parse_crash("point:ckpt_drain:21");
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.crash_site, "ckpt_drain");
  EXPECT_EQ(res.crash_unit, 6u);
  // The drain interrupted a save, not a unit: nothing is partial.
  EXPECT_EQ(res.recomputation.partial_units, 0u);
  EXPECT_GE(res.recomputation.units_lost, 1u);
  EXPECT_TRUE(res.verified);
}

TEST(ScenarioRunner, AsyncMidUnitAndBoundaryCrashesRecoverInAllCkptModes) {
  // fuzz lands mid-unit while a drain may be in flight (inject_crash aborts
  // it — the abort-the-drain path), step:3 fires at a boundary; both must
  // recover and verify under async exactly as under sync.
  cg::CgWorkload w(tiny_cg());
  for (Mode m : kCkptModes) {
    for (const char* plan : {"fuzz:5", "step:3"}) {
      ScenarioConfig cfg = tiny_async_config(w, m);
      cfg.crash = *parse_crash(plan);
      const ScenarioResult res = run_scenario(w, cfg);
      EXPECT_EQ(res.crashes, 1u) << mode_name(m) << " " << plan;
      EXPECT_TRUE(res.verified) << mode_name(m) << " " << plan;
    }
  }
}

TEST(ScenarioRunner, AsyncMatchesSyncResultsInMmAndMc) {
  // The other two adapters inherit the async engine through CheckpointSet;
  // crash-free and crashing runs must verify under every checkpoint medium.
  mm::MmWorkload mm(tiny_mm());
  mc::McWorkload mc(tiny_mc());
  for (Mode m : kCkptModes) {
    for (Workload* w : {static_cast<Workload*>(&mm), static_cast<Workload*>(&mc)}) {
      ScenarioConfig cfg = tiny_async_config(*w, m);
      EXPECT_TRUE(run_scenario(*w, cfg).verified) << w->name() << " " << mode_name(m);
      cfg.crash = *parse_crash("point:ckpt_drain:2");
      const ScenarioResult res = run_scenario(*w, cfg);
      EXPECT_EQ(res.crashes, 1u) << w->name() << " " << mode_name(m);
      EXPECT_TRUE(res.verified) << w->name() << " " << mode_name(m);
    }
  }
}

TEST(ScenarioRunner, MidUnitCrashInMcIntervalNeverLeaksPartialTallies) {
  // A crash between two lookups of one interval must restart from the last
  // durable boundary with boundary-exact tallies — the hazard the volatile
  // working copy + durable snapshot split exists to prevent.
  mc::McWorkload w(tiny_mc());
  for (Mode m : {Mode::kPmemTx, Mode::kAlgNvm, Mode::kCkptNvm}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = *parse_crash("point:xs:lookup_end:250");  // Lookup 250 = unit 3.
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    EXPECT_EQ(res.crash_unit, 2u) << mode_name(m);
    EXPECT_EQ(res.recomputation.units_lost, 0u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

}  // namespace
}  // namespace adcc::core
