// Tests for the scenario layer: crash-plan parsing, crash-unit planning, and
// the ScenarioRunner driving every workload x mode x crash combination over
// tiny problem instances.
#include <gtest/gtest.h>

#include <filesystem>

#include "cg/cg_workload.hpp"
#include "core/scenario.hpp"
#include "mc/mc_workload.hpp"
#include "mm/mm_workload.hpp"

namespace adcc::core {
namespace {

// ---------------------------------------------------------------- parsing --

TEST(ParseCrash, AcceptsAllSpellings) {
  EXPECT_EQ(parse_crash("none")->kind, CrashScenario::Kind::kNone);
  const auto step = parse_crash("step:7");
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->kind, CrashScenario::Kind::kAtStep);
  EXPECT_EQ(step->step, 7u);
  const auto rnd = parse_crash("random:99");
  ASSERT_TRUE(rnd.has_value());
  EXPECT_EQ(rnd->kind, CrashScenario::Kind::kRandom);
  EXPECT_EQ(rnd->seed, 99u);
  EXPECT_TRUE(parse_crash("random").has_value());
  const auto rep = parse_crash("repeat:3");
  ASSERT_TRUE(rep.has_value());
  EXPECT_EQ(rep->kind, CrashScenario::Kind::kRepeated);
  EXPECT_EQ(rep->count, 3u);
}

TEST(ParseCrash, RejectsMalformedSpecs) {
  for (const char* bad : {"step", "step:", "step:0", "step:x", "repeat:0", "boom", "random:x"}) {
    EXPECT_FALSE(parse_crash(bad).has_value()) << bad;
  }
}

TEST(ParseCrash, RoundTripsThroughCrashName) {
  for (const char* spec : {"none", "step:4", "random:12", "repeat:2"}) {
    const auto c = parse_crash(spec);
    ASSERT_TRUE(c.has_value()) << spec;
    const auto again = parse_crash(crash_name(*c));
    ASSERT_TRUE(again.has_value()) << spec;
    EXPECT_EQ(again->kind, c->kind) << spec;
  }
}

TEST(CrashUnits, PlansBoundaries) {
  EXPECT_TRUE(crash_units({}, 10).empty());
  CrashScenario step{CrashScenario::Kind::kAtStep, 25, 1, 1};
  EXPECT_EQ(crash_units(step, 10), std::vector<std::size_t>{10});  // Clamped.
  step.step = 3;
  EXPECT_EQ(crash_units(step, 10), std::vector<std::size_t>{3});
  CrashScenario rnd{CrashScenario::Kind::kRandom, 0, 42, 1};
  const auto a = crash_units(rnd, 10);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_GE(a[0], 1u);
  EXPECT_LE(a[0], 10u);
  EXPECT_EQ(a, crash_units(rnd, 10));  // Deterministic in the seed.
  CrashScenario rep{CrashScenario::Kind::kRepeated, 0, 1, 3};
  const auto units = crash_units(rep, 12);
  EXPECT_EQ(units, (std::vector<std::size_t>{3, 6, 9}));
  EXPECT_TRUE(std::is_sorted(units.begin(), units.end()));
}

// ----------------------------------------------------------------- runner --

ScenarioConfig tiny_config(const Workload& w, Mode mode) {
  ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.env.scratch_dir = std::filesystem::temp_directory_path() / "adcc_scenario_test";
  w.tune_env(mode, cfg.env);
  cfg.verify = true;
  return cfg;
}

cg::CgWorkloadConfig tiny_cg() {
  cg::CgWorkloadConfig cfg;
  cfg.n = 96;
  cfg.nz_per_row = 6;
  cfg.iters = 6;
  return cfg;
}

mc::McWorkloadConfig tiny_mc() {
  mc::McWorkloadConfig cfg;
  cfg.data.n_nuclides = 6;
  cfg.data.gridpoints_per_nuclide = 60;
  cfg.lookups = 600;
  cfg.interval = 100;  // 6 units.
  return cfg;
}

mm::MmWorkloadConfig tiny_mm() {
  mm::MmWorkloadConfig cfg;
  cfg.n = 64;
  cfg.rank_k = 16;  // 4 panels, 5 addition blocks in alg modes.
  return cfg;
}

TEST(ScenarioRunner, TinyCgVerifiesInAllSevenModes) {
  cg::CgWorkload w(tiny_cg());
  for (Mode m : all_modes()) {
    const ScenarioResult res = run_scenario(w, tiny_config(w, m));
    EXPECT_EQ(res.work_units, 6u) << mode_name(m);
    EXPECT_EQ(res.crashes, 0u) << mode_name(m);
    EXPECT_TRUE(res.verify_ran) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
    EXPECT_GT(res.seconds, 0.0) << mode_name(m);
  }
}

TEST(ScenarioRunner, TinyMmVerifiesInAllSevenModes) {
  mm::MmWorkload w(tiny_mm());
  for (Mode m : all_modes()) {
    const ScenarioResult res = run_scenario(w, tiny_config(w, m));
    EXPECT_EQ(res.work_units, is_algorithm_mode(m) ? 9u : 4u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, TinyMcVerifiesInAllSevenModes) {
  mc::McWorkload w(tiny_mc());
  for (Mode m : all_modes()) {
    const ScenarioResult res = run_scenario(w, tiny_config(w, m));
    EXPECT_EQ(res.work_units, 6u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

// The ISSUE's RecomputationBreakdown invariants: a crash after unit k recovers
// with restart <= k + 1 and units_lost == k + 1 - restart, and still verifies.
TEST(ScenarioRunner, CrashAtStepKInvariantsHoldInAllModes) {
  cg::CgWorkload w(tiny_cg());
  CrashScenario crash{CrashScenario::Kind::kAtStep, 3, 1, 1};
  for (Mode m : all_modes()) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = crash;
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 1u) << mode_name(m);
    EXPECT_EQ(res.crash_unit, 3u) << mode_name(m);
    EXPECT_GE(res.restart_unit, 1u) << mode_name(m);
    EXPECT_LE(res.restart_unit, res.crash_unit + 1) << mode_name(m);
    EXPECT_EQ(res.recomputation.units_lost, res.crash_unit + 1 - res.restart_unit)
        << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, NativeCrashLosesEverything) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kNative);
  cfg.crash = {CrashScenario::Kind::kAtStep, 4, 1, 1};
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_EQ(res.restart_unit, 1u);       // restart <= crash: all work redone.
  EXPECT_LE(res.restart_unit, res.crash_unit);
  EXPECT_EQ(res.recomputation.units_lost, 4u);
  EXPECT_GT(res.recomputation.resume_seconds, 0.0);
  EXPECT_TRUE(res.verified);
}

TEST(ScenarioRunner, DurableModesLoseNothingAtBoundaries) {
  cg::CgWorkload w(tiny_cg());
  for (Mode m : {Mode::kCkptNvm, Mode::kPmemTx, Mode::kAlgNvm}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = {CrashScenario::Kind::kAtStep, 4, 1, 1};
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.recomputation.units_lost, 0u) << mode_name(m);
    EXPECT_EQ(res.restart_unit, 5u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, RepeatedCrashesAllRecover) {
  mc::McWorkload w(tiny_mc());
  for (Mode m : {Mode::kNative, Mode::kCkptNvm, Mode::kAlgNvm}) {
    ScenarioConfig cfg = tiny_config(w, m);
    cfg.crash = {CrashScenario::Kind::kRepeated, 0, 1, 2};
    const ScenarioResult res = run_scenario(w, cfg);
    EXPECT_EQ(res.crashes, 2u) << mode_name(m);
    EXPECT_TRUE(res.verified) << mode_name(m);
  }
}

TEST(ScenarioRunner, RandomCrashIsDeterministicInSeed) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.crash = {CrashScenario::Kind::kRandom, 0, 77, 1};
  const ScenarioResult a = run_scenario(w, cfg);
  const ScenarioResult b = run_scenario(w, cfg);
  EXPECT_EQ(a.crash_unit, b.crash_unit);
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_TRUE(a.verified);
}

TEST(ScenarioRunner, MmAlgCrashInLoopTwoRecovers) {
  mm::MmWorkload w(tiny_mm());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.crash = {CrashScenario::Kind::kAtStep, 6, 1, 1};  // Unit 6 = addition block 2.
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_EQ(res.crash_unit, 6u);
  EXPECT_EQ(res.recomputation.units_lost, 0u);
  EXPECT_TRUE(res.verified);
}

TEST(ScenarioRunner, NormalizesAgainstProvidedBaseline) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kNative);
  cfg.native_seconds = 1.0;
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_DOUBLE_EQ(res.time.normalized, res.seconds);
}

TEST(ScenarioRunner, MultipleRepsReportMedian) {
  cg::CgWorkload w(tiny_cg());
  ScenarioConfig cfg = tiny_config(w, Mode::kAlgNvm);
  cfg.reps = 3;
  cfg.warmup = true;
  const ScenarioResult res = run_scenario(w, cfg);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_TRUE(res.verified);
}

}  // namespace
}  // namespace adcc::core
