// Unit tests for TrackedArray / TrackedScalar.
#include <gtest/gtest.h>

#include "memsim/tracked.hpp"

namespace adcc::memsim {
namespace {

CacheConfig small_cache() {
  CacheConfig c;
  c.ways = 4;
  c.size_bytes = 4 * 4 * kCacheLine;  // 4 sets × 4 ways.
  return c;
}

TEST(TrackedArray, WriteReadRoundtrip) {
  MemorySimulator sim(small_cache());
  TrackedArray<double> a(sim, "a", 16);
  a.write(3, 2.5);
  EXPECT_DOUBLE_EQ(a.read(3), 2.5);
  EXPECT_EQ(sim.stats().writes, 1u);
  EXPECT_EQ(sim.stats().reads, 1u);
}

TEST(TrackedArray, DurableLagsUntilFlush) {
  MemorySimulator sim(small_cache());
  TrackedArray<double> a(sim, "a", 16);
  a.write(0, 9.0);
  EXPECT_DOUBLE_EQ(a.durable(0), 0.0);
  a.flush(0, 1);
  EXPECT_DOUBLE_EQ(a.durable(0), 9.0);
}

TEST(TrackedArray, FlushAllPersistsWholeArray) {
  MemorySimulator sim(small_cache());
  TrackedArray<double> a(sim, "a", 16);
  for (std::size_t i = 0; i < 16; ++i) a.write(i, static_cast<double>(i) + 1);
  a.flush_all();
  for (std::size_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(a.durable(i), static_cast<double>(i) + 1);
}

TEST(TrackedArray, RestoreRollsLiveBack) {
  MemorySimulator sim(small_cache());
  TrackedArray<double> a(sim, "a", 16);
  a.write(5, 8.0);
  sim.crash();
  a.restore();
  EXPECT_DOUBLE_EQ(a.raw()[5], 0.0);
}

TEST(TrackedArray, DurableSnapshotBulkRead) {
  MemorySimulator sim(small_cache());
  TrackedArray<double> a(sim, "a", 8);
  a.write(2, 4.0);
  a.flush(2, 1);
  std::vector<double> out(8);
  a.durable_snapshot(out);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
}

TEST(TrackedArray, TouchRangeCountsLineAccesses) {
  MemorySimulator sim(small_cache());
  TrackedArray<double> a(sim, "a", 64);  // 8 lines.
  a.touch_read(0, 64);
  EXPECT_EQ(sim.cache_stats().misses, 8u);
}

TEST(TrackedArray, RawAccessIsUninstrumented) {
  MemorySimulator sim(small_cache());
  TrackedArray<double> a(sim, "a", 8);
  a.raw()[0] = 1.0;
  EXPECT_EQ(sim.stats().writes, 0u);
}

TEST(TrackedArray, DestructorUnregisters) {
  MemorySimulator sim(small_cache());
  {
    TrackedArray<double> a(sim, "a", 8);
    EXPECT_EQ(sim.num_regions(), 1u);
  }
  EXPECT_EQ(sim.num_regions(), 0u);
}

TEST(TrackedArray, IntegerElementType) {
  MemorySimulator sim(small_cache());
  TrackedArray<std::uint64_t> a(sim, "u", 8);
  a.write(1, 42u);
  a.flush(1, 1);
  EXPECT_EQ(a.durable(1), 42u);
}

TEST(TrackedScalar, OccupiesOwnLineAndFlushes) {
  MemorySimulator sim(small_cache());
  TrackedScalar<std::int64_t> s(sim, "i", 0);
  s.set_and_flush(17);
  EXPECT_EQ(s.durable(), 17);
  EXPECT_EQ(s.get(), 17);
}

TEST(TrackedScalar, UnflushedSetIsVolatile) {
  MemorySimulator sim(small_cache());
  TrackedScalar<std::int64_t> s(sim, "i", 0);
  s.set(5);
  EXPECT_EQ(s.durable(), 0);
  sim.crash();
  s.restore();
  EXPECT_EQ(s.get(), 0);
}

TEST(TrackedScalar, FlushingScalarDoesNotPersistNeighbours) {
  // The scalar owns a full line, so its flush cannot drag other data along —
  // verified by checking a tracked array in the same simulator stays stale.
  MemorySimulator sim(small_cache());
  TrackedScalar<std::int64_t> s(sim, "i", 0);
  TrackedArray<double> a(sim, "a", 8);
  a.write(0, 3.0);
  s.set_and_flush(1);
  EXPECT_DOUBLE_EQ(a.durable(0), 0.0);
}

}  // namespace
}  // namespace adcc::memsim
