// Tests for the Workload API: registry registration/lookup and the factory
// path used by adccbench.
#include <gtest/gtest.h>

#include <vector>

#include "cg/cg_workload.hpp"
#include "common/check.hpp"
#include "core/registry.hpp"

namespace adcc::core {
namespace {

Options make_options(std::vector<std::string> args) {
  std::vector<char*> argv;
  args.insert(args.begin(), "test");
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(WorkloadRegistry, BuiltinWorkloadsSelfRegister) {
  auto& reg = WorkloadRegistry::instance();
  for (const char* name : {"cg", "mm", "mc"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_FALSE(reg.description(name).empty()) << name;
  }
  const auto names = reg.names();
  EXPECT_GE(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(WorkloadRegistry, UnknownWorkloadThrowsWithKnownNames) {
  try {
    WorkloadRegistry::instance().create("no-such-workload", Options());
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("cg"), std::string::npos);
  }
}

TEST(WorkloadRegistry, DuplicateRegistrationThrows) {
  WorkloadRegistry reg;
  auto factory = [](const Options&) -> std::unique_ptr<Workload> { return nullptr; };
  reg.add("w", "first", factory);
  EXPECT_THROW(reg.add("w", "second", factory), ContractViolation);
}

TEST(WorkloadRegistry, FactoryHonorsOptions) {
  const auto w = WorkloadRegistry::instance().create(
      "cg", make_options({"--n=64", "--nz=4", "--iters=5"}));
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name(), "cg");
  EXPECT_EQ(w->work_units(), 5u);  // --iters wired through the factory.
}

TEST(WorkloadRegistry, FactoryAcceptsSizeSuffixes) {
  const auto w = WorkloadRegistry::instance().create(
      "cg", make_options({"--n=1K", "--nz=4", "--iters=3"}));
  EXPECT_EQ(w->work_units(), 3u);
}

TEST(WorkloadRegistry, DescriptionOfUnknownThrows) {
  EXPECT_THROW(WorkloadRegistry::instance().description("nope"), ContractViolation);
}

}  // namespace
}  // namespace adcc::core
