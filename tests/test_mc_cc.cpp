// Tests for the crash-consistent Monte-Carlo driver (paper Figs. 10–12) and
// the native Fig. 13 runners.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "mc/mc_ckpt.hpp"
#include "mc/xs_cc.hpp"
#include "checkpoint/nvm_backend.hpp"

namespace adcc::mc {
namespace {

nvm::PerfModel& model() {
  static nvm::PerfModel m(
      nvm::PerfConfig{.dram_bw_bytes_per_s = 10e9, .bandwidth_slowdown = 1.0, .enabled = false});
  return m;
}

const XsDataHost& shared_data() {
  static XsDataHost d([] {
    XsConfig c;
    c.n_nuclides = 12;
    c.gridpoints_per_nuclide = 256;
    c.seed = 5;
    return c;
  }());
  return d;
}

XsCcConfig cc_config(XsFlushPolicy policy, std::size_t lookups = 4000) {
  XsCcConfig c;
  c.total_lookups = lookups;
  c.policy = policy;
  c.flush_interval = lookups / 100;  // 1 % granularity at test scale.
  c.cache.ways = 4;
  c.cache.size_bytes = 64u << 10;
  c.rng_seed = 77;
  return c;
}

Tally nocrash_reference(XsFlushPolicy policy, std::size_t lookups = 4000) {
  XsCrashConsistent xs(shared_data(), cc_config(policy, lookups));
  EXPECT_FALSE(xs.run());
  return xs.tally();
}

TEST(XsCc, UncrashedTallyMatchesNativeKernel) {
  const Tally sim = nocrash_reference(XsFlushPolicy::kSelective);
  const Tally native = run_xs_native(shared_data(), 4000, 77).tally;
  EXPECT_EQ(sim.counts, native.counts);
}

TEST(XsCc, AllTypesRoughlyEquallyLikely) {
  // The paper's no-crash observation (Fig. 10, left bars ≈ 20 % each).
  const Tally t = nocrash_reference(XsFlushPolicy::kSelective);
  const auto pct = t.percentages(t.total());
  for (double p : pct) {
    EXPECT_GT(p, 8.0);
    EXPECT_LT(p, 40.0);
  }
}

TEST(XsCc, SelectiveFlushRecoveryIsExact) {
  // Fig. 12: crash at 10 % of lookups, restart — identical tallies.
  const Tally reference = nocrash_reference(XsFlushPolicy::kSelective);
  XsCrashConsistent xs(shared_data(), cc_config(XsFlushPolicy::kSelective));
  xs.sim().scheduler().arm_at_point(XsCrashConsistent::kPointLookupEnd, 400);
  ASSERT_TRUE(xs.run());
  const XsRecovery rec = xs.recover_and_resume();
  EXPECT_EQ(xs.tally().counts, reference.counts);
  EXPECT_EQ(rec.crash_lookup, 400u);
  // Restart lands on a flush boundary (tallies durable through it).
  EXPECT_EQ(rec.restart_lookup % cc_config(XsFlushPolicy::kSelective).flush_interval, 0u);
}

TEST(XsCc, BasicIdeaLosesTallies) {
  // Fig. 10: the basic idea restarts at the right lookup but the counters in
  // NVM are stale — counts are lost and the distribution diverges.
  const Tally reference = nocrash_reference(XsFlushPolicy::kBasicIdea);
  XsCrashConsistent xs(shared_data(), cc_config(XsFlushPolicy::kBasicIdea));
  xs.sim().scheduler().arm_at_point(XsCrashConsistent::kPointLookupEnd, 400);
  ASSERT_TRUE(xs.run());
  xs.recover_and_resume();
  const Tally crashed = xs.tally();
  EXPECT_LT(crashed.total(), reference.total());  // Tallies went missing.
  EXPECT_GT(max_percentage_gap(crashed, reference, reference.total()), 0.5);
}

TEST(XsCc, BasicIdeaRestartsAtCrashLookup) {
  XsCrashConsistent xs(shared_data(), cc_config(XsFlushPolicy::kBasicIdea));
  xs.sim().scheduler().arm_at_point(XsCrashConsistent::kPointLookupEnd, 123);
  ASSERT_TRUE(xs.run());
  const XsRecovery rec = xs.recover_and_resume();
  // The index line is flushed every iteration, so restart == crash lookup.
  EXPECT_EQ(rec.restart_lookup, 122u);
  EXPECT_EQ(xs.cursor(), 4000u);
}

TEST(XsCc, EveryIterationFlushAlsoExact) {
  const Tally reference = nocrash_reference(XsFlushPolicy::kEveryIteration, 1500);
  XsCrashConsistent xs(shared_data(), cc_config(XsFlushPolicy::kEveryIteration, 1500));
  xs.sim().scheduler().arm_at_point(XsCrashConsistent::kPointLookupEnd, 150);
  ASSERT_TRUE(xs.run());
  xs.recover_and_resume();
  EXPECT_EQ(xs.tally().counts, reference.counts);
}

TEST(XsCc, SelectiveFlushCountMatchesInterval) {
  XsCcConfig cfg = cc_config(XsFlushPolicy::kSelective, 2000);
  XsCrashConsistent xs(shared_data(), cfg);
  ASSERT_FALSE(xs.run());
  // flush_tallies issues 2 ranges (macro + counters) per boundary; progress
  // adds its own line. Just check the order of magnitude via sim stats.
  const auto& st = xs.sim().stats();
  EXPECT_GE(st.flush_lines, 2000 / cfg.flush_interval * 3);
  EXPECT_LE(st.flush_lines, 2000 / cfg.flush_interval * 4 + 8);
}

TEST(XsCc, RecoverWithoutCrashRejected) {
  XsCrashConsistent xs(shared_data(), cc_config(XsFlushPolicy::kSelective, 500));
  ASSERT_FALSE(xs.run());
  EXPECT_THROW(xs.recover_and_resume(), ContractViolation);
}

// Crash-site sweep for the selective policy: recovery is exact no matter
// where in the interval the crash lands.
class XsCrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XsCrashSweep, SelectiveRecoveryExactEverywhere) {
  const Tally reference = nocrash_reference(XsFlushPolicy::kSelective, 2000);
  XsCcConfig cfg = cc_config(XsFlushPolicy::kSelective, 2000);
  XsCrashConsistent xs(shared_data(), cfg);
  xs.sim().scheduler().arm_at_point(XsCrashConsistent::kPointLookupEnd, GetParam());
  ASSERT_TRUE(xs.run());
  xs.recover_and_resume();
  EXPECT_EQ(xs.tally().counts, reference.counts);
}

INSTANTIATE_TEST_SUITE_P(Sites, XsCrashSweep, ::testing::Values(1, 19, 20, 21, 777, 1999));

// ---- Native (Fig. 13) runners ----

TEST(XsNative, AllDurabilityVariantsProduceIdenticalTallies) {
  const std::uint64_t L = 3000;
  const std::uint64_t seed = 9;
  const auto native = run_xs_native(shared_data(), L, seed);

  nvm::NvmRegion region(8u << 20, model());
  checkpoint::NvmBackend backend(region, 1u << 10);
  const auto ck = run_xs_checkpointed(shared_data(), L, seed, 30, backend);
  EXPECT_EQ(ck.tally.counts, native.tally.counts);
  EXPECT_EQ(ck.durability_events, L / 30);

  pmemtx::PersistentHeap heap(xs_tx_data_bytes(), xs_tx_log_bytes(), model());
  const auto tx = run_xs_tx(shared_data(), L, seed, 30, heap);
  EXPECT_EQ(tx.tally.counts, native.tally.counts);

  nvm::NvmRegion region2(1u << 20, model());
  const auto cc = run_xs_cc_native(shared_data(), L, seed, 30, region2);
  EXPECT_EQ(cc.tally.counts, native.tally.counts);
  EXPECT_EQ(cc.durability_events, L / 30);
}

TEST(XsNative, IntervalValidation) {
  nvm::NvmRegion region(1u << 20, model());
  checkpoint::NvmBackend backend(region, 1u << 10);
  EXPECT_THROW(run_xs_checkpointed(shared_data(), 10, 1, 0, backend), ContractViolation);
}

}  // namespace
}  // namespace adcc::mc
