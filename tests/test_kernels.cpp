// Tests for the pluggable kernel-backend layer (src/kernels/): registry
// contents and clean-failure lookups, the thread-local RAII bind, the
// ScopedOmpThreads restore contract, and — when the omp backend is built —
// unit-level serial-vs-omp equivalence under the determinism contract
// documented in docs/BACKENDS.md (bitwise for spmv/gemm/panel_sum/xs_range,
// tolerance-only for the re-associating reductions), plus an end-to-end
// equivalence sweep across workloads, durability modes and shard counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/registry.hpp"
#include "core/sweep.hpp"
#include "kernels/backend.hpp"
#include "kernels/threads.hpp"
#include "linalg/csr.hpp"
#include "linalg/spgen.hpp"
#include "mc/xs_kernel.hpp"

namespace adcc::core {
namespace {

// ---------------------------------------------------------------- registry --

TEST(KernelRegistry, SerialIsAlwaysFirst) {
  const auto names = kernel_backend_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "serial");
  EXPECT_EQ(find_kernel_backend("serial"), &serial_kernel_backend());
  EXPECT_EQ(kernel_backend("serial").name(), "serial");
}

TEST(KernelRegistry, OmpPresenceMatchesBuild) {
  const auto names = kernel_backend_names();
  const bool has_omp = std::find(names.begin(), names.end(), "omp") != names.end();
#ifdef ADCC_OPENMP
  EXPECT_TRUE(has_omp);
  EXPECT_NE(find_kernel_backend("omp"), nullptr);
  EXPECT_EQ(kernel_backend("omp").name(), "omp");
#else
  EXPECT_FALSE(has_omp);
  EXPECT_EQ(find_kernel_backend("omp"), nullptr);
#endif
}

TEST(KernelRegistry, UnknownNameThrowsListingBuiltBackends) {
  EXPECT_EQ(find_kernel_backend("cuda"), nullptr);
  try {
    kernel_backend("cuda");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cuda"), std::string::npos);
    EXPECT_NE(what.find("serial"), std::string::npos);
  }
}

// -------------------------------------------------------------------- bind --

TEST(KernelBackendBindScope, DefaultsToSerialAndNests) {
  EXPECT_EQ(&active_kernel_backend(), &serial_kernel_backend());
  const KernelBackend* other = find_kernel_backend("omp");
  if (other == nullptr) other = &serial_kernel_backend();
  {
    const KernelBackendBind outer(other);
    EXPECT_EQ(&active_kernel_backend(), other);
    {
      const KernelBackendBind inner(nullptr);  // nullptr = serial default.
      EXPECT_EQ(&active_kernel_backend(), &serial_kernel_backend());
    }
    EXPECT_EQ(&active_kernel_backend(), other);
  }
  EXPECT_EQ(&active_kernel_backend(), &serial_kernel_backend());
}

// ------------------------------------------------------------ thread scope --

TEST(ScopedOmpThreadsScope, RestoresRequestOnExitAndNests) {
  EXPECT_EQ(requested_kernel_threads(), 0);
  {
    const ScopedOmpThreads outer(3);
    EXPECT_EQ(requested_kernel_threads(), 3);
    {
      const ScopedOmpThreads inner(7);
      EXPECT_EQ(requested_kernel_threads(), 7);
    }
    EXPECT_EQ(requested_kernel_threads(), 3);
  }
  EXPECT_EQ(requested_kernel_threads(), 0);
}

TEST(ScopedOmpThreadsScope, NonPositiveRequestIsInert) {
  {
    const ScopedOmpThreads ambient(4);
    {
      const ScopedOmpThreads inert(0);
      EXPECT_EQ(requested_kernel_threads(), 4);  // No request: ambient wins.
    }
    EXPECT_EQ(requested_kernel_threads(), 4);
  }
  EXPECT_EQ(requested_kernel_threads(), 0);
}

// ------------------------------------------------- serial-vs-omp kernels  --
// Unit-level equivalence on sizes straddling the omp thresholds (so both the
// guarded-serial and the parallel paths run). Bitwise for the contract
// kernels; tolerance for the re-associating reductions. Compiled in every
// build — without ADCC_OPENMP the "other" backend is serial and the checks
// degenerate to self-consistency, which still pins the dispatch plumbing.

const KernelBackend& other_backend() {
  const KernelBackend* omp = find_kernel_backend("omp");
  return omp != nullptr ? *omp : serial_kernel_backend();
}

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  const CounterRng rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.uniform(i) * 2.0 - 1.0;
  return v;
}

TEST(KernelEquivalence, SpmvBitwise) {
  for (const std::size_t n : {std::size_t{64}, std::size_t{5000}}) {
    const linalg::CsrMatrix a = linalg::make_spd(n, 8, /*seed=*/7);
    const std::vector<double> x = random_vec(n, 11);
    std::vector<double> ys(n), yo(n);
    serial_kernel_backend().spmv(a, x, ys);
    other_backend().spmv(a, x, yo);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(ys[i], yo[i]) << "row " << i;

    // The shard row-slice entry point agrees with the full product.
    const std::size_t r0 = n / 3, r1 = (2 * n) / 3;
    std::vector<double> slice(r1 - r0);
    other_backend().spmv_rows(a, r0, r1, x, slice);
    for (std::size_t i = r0; i < r1; ++i) ASSERT_EQ(slice[i - r0], ys[i]);
  }
}

TEST(KernelEquivalence, Blas1UpdatesBitwiseReductionsWithinTolerance) {
  for (const std::size_t n : {std::size_t{100}, std::size_t{40000}}) {
    const std::vector<double> x = random_vec(n, 3), y0 = random_vec(n, 5);

    std::vector<double> ys = y0, yo = y0;
    serial_kernel_backend().axpy(0.37, x, ys);
    other_backend().axpy(0.37, x, yo);
    EXPECT_EQ(ys, yo);

    std::vector<double> zs(n), zo(n);
    serial_kernel_backend().xpay(x, -1.25, y0, zs);
    other_backend().xpay(x, -1.25, y0, zo);
    EXPECT_EQ(zs, zo);

    std::vector<double> ss = y0, so = y0;
    serial_kernel_backend().scale(0.5, ss);
    other_backend().scale(0.5, so);
    EXPECT_EQ(ss, so);

    const double ds = serial_kernel_backend().dot(x, y0);
    const double dor = other_backend().dot(x, y0);
    EXPECT_NEAR(ds, dor, 1e-9 * (1.0 + std::abs(ds)));
    const double sus = serial_kernel_backend().sum(x);
    const double suo = other_backend().sum(x);
    EXPECT_NEAR(sus, suo, 1e-9 * (1.0 + std::abs(sus)));
  }
}

TEST(KernelEquivalence, GemmTileAndPanelSumBitwise) {
  const std::size_t rows = 37, cols = 300, k = 19;  // cols > omp tile width.
  const std::vector<double> a = random_vec(rows * k, 21);
  const std::vector<double> b = random_vec(k * cols, 23);

  std::vector<double> cs(rows * cols, 0.5), co(rows * cols, 0.5);
  for (const bool accumulate : {false, true}) {
    serial_kernel_backend().gemm_tile(a.data(), k, b.data(), cols, rows, cols, k,
                                      cs.data(), cols, accumulate);
    other_backend().gemm_tile(a.data(), k, b.data(), cols, rows, cols, k,
                              co.data(), cols, accumulate);
    ASSERT_EQ(cs, co) << "accumulate=" << accumulate;
  }

  const std::vector<double> p0 = random_vec(rows * cols, 31);
  const std::vector<double> p1 = random_vec(rows * cols, 33);
  const std::vector<double> p2 = random_vec(rows * cols, 35);
  const double* panels[] = {p0.data(), p1.data(), p2.data()};
  std::vector<double> outs(rows * cols), outo(rows * cols);
  serial_kernel_backend().panel_sum(panels, 3, rows, cols, cols, outs.data(), cols);
  other_backend().panel_sum(panels, 3, rows, cols, cols, outo.data(), cols);
  EXPECT_EQ(outs, outo);
}

TEST(KernelEquivalence, XsRangeReplaysSerialTallyStreamBitwise) {
  mc::XsConfig cfg;
  cfg.n_nuclides = 12;
  cfg.gridpoints_per_nuclide = 64;
  cfg.seed = 5;
  const mc::XsDataHost data(cfg);
  const CounterRng rng(42);

  // Straddle the omp batch threshold, in uneven sub-ranges: the running macro
  // accumulator feeds tally_select, so any reordering diverges immediately.
  for (const std::uint64_t total : {std::uint64_t{40}, std::uint64_t{3000}}) {
    double ms[mc::kChannels] = {0}, mo[mc::kChannels] = {0};
    std::uint64_t cs[mc::kChannels] = {0}, co[mc::kChannels] = {0};
    std::uint64_t is = 0, io = 0;
    serial_kernel_backend().xs_range(data, rng, 0, total, ms, cs, &is);
    const std::uint64_t mid = total / 3;
    other_backend().xs_range(data, rng, 0, mid, mo, co, &io);
    other_backend().xs_range(data, rng, mid, total, mo, co, &io);
    // *index mirrors the in-flight lookup (crash bookkeeping), so it ends on
    // the last executed index, not the count.
    EXPECT_EQ(is, total - 1);
    EXPECT_EQ(io, total - 1);
    for (int c = 0; c < mc::kChannels; ++c) {
      ASSERT_EQ(ms[c], mo[c]) << "channel " << c;
      ASSERT_EQ(cs[c], co[c]) << "channel " << c;
    }
  }
}

// ------------------------------------------------- end-to-end equivalence --
// The backend axis through the full engine: every workload family x a native
// and two durable modes x single- and multi-shard, verified against the
// serial reference (verify passes run outside the bind, so `verify=on` under
// --backend=omp is exactly the serial-vs-omp check).

TEST(BackendSweep, WorkloadsVerifyAcrossBackendsModesAndShards) {
  std::string backends = "serial";
  if (find_kernel_backend("omp") != nullptr) backends += "+omp";
  std::string error;
  const auto spec = parse_sweep("workload=cg+mm+mc,mode=native+ckpt-nvm+alg-nvm,shards=1+4,backend=" +
                                    backends + ",threads=2",
                                &error);
  ASSERT_TRUE(spec.has_value()) << error;

  SweepConfig cfg;
  cfg.base.set("quick", "1")
      .set("n", "240")
      .set("iters", "4")
      .set("rank", "2")
      .set("lookups", "400")
      .set("interval", "100")
      .set("verify", "1");
  cfg.baseline = false;
  cfg.scratch_root = std::filesystem::temp_directory_path() / "adcc_test_kernels";

  const SweepResult deck = run_sweep(*spec, cfg);
  EXPECT_TRUE(deck.all_ok());
  for (const auto& cell : deck.cells) {
    EXPECT_EQ(cell.status, SweepCellResult::Status::kOk)
        << "cell " << cell.index << ": " << cell.error;
    EXPECT_TRUE(cell.result.verify_ran);
    EXPECT_TRUE(cell.result.verified) << "cell " << cell.index;
  }
}

TEST(BackendSweep, UnknownBackendAxisFailsParseEagerly) {
  std::string error;
  EXPECT_FALSE(parse_sweep("backend=cuda", &error).has_value());
  EXPECT_NE(error.find("cuda"), std::string::npos);
  EXPECT_NE(error.find("serial"), std::string::npos);
#ifndef ADCC_OPENMP
  // The omp spelling parses only when the backend is actually built — a deck
  // can never reach run_sweep with a backend that would UB-fallback.
  EXPECT_FALSE(parse_sweep("backend=omp", &error).has_value());
#endif
}

}  // namespace
}  // namespace adcc::core
