// Tests for the crash-consistent ABFT matrix multiplication (paper Fig. 6).
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "linalg/gemm.hpp"
#include "mm/mm_cc.hpp"
#include "mm/mm_ckpt.hpp"
#include "mm/mm_tx.hpp"
#include "checkpoint/nvm_backend.hpp"

namespace adcc::mm {
namespace {

using linalg::Matrix;

nvm::PerfModel& model() {
  static nvm::PerfModel m(
      nvm::PerfConfig{.dram_bw_bytes_per_s = 10e9, .bandwidth_slowdown = 1.0, .enabled = false});
  return m;
}

MmCcConfig config(std::size_t n, std::size_t k, std::size_t cache_kib) {
  MmCcConfig cfg;
  cfg.n = n;
  cfg.rank_k = k;
  cfg.cache.ways = 4;
  cfg.cache.size_bytes = cache_kib << 10;
  return cfg;
}

struct Inputs {
  Matrix a, b, cref;
};

Inputs inputs(std::size_t n, std::uint64_t seed = 17) {
  Inputs in{Matrix(n, n), Matrix(n, n), Matrix(n, n)};
  in.a.fill_random(seed, -1, 1);
  in.b.fill_random(seed + 1, -1, 1);
  linalg::gemm_reference(in.a, in.b, in.cref);
  return in;
}

TEST(MmCc, UncrashedRunMatchesReference) {
  const Inputs in = inputs(64);
  MmCrashConsistent mm(in.a, in.b, config(64, 16, 1024));
  EXPECT_FALSE(mm.run());
  EXPECT_LT(Matrix::max_abs_diff(mm.result(), in.cref), 1e-10);
}

TEST(MmCc, PanelCountHandlesNonDividingRank) {
  const Inputs in = inputs(50);
  MmCrashConsistent mm(in.a, in.b, config(50, 16, 1024));  // ceil(50/16) = 4
  EXPECT_EQ(mm.num_panels(), 4u);
  EXPECT_FALSE(mm.run());
  EXPECT_LT(Matrix::max_abs_diff(mm.result(), in.cref), 1e-10);
}

TEST(MmCc, Loop1CrashRecoversAndCompletes) {
  const Inputs in = inputs(96);
  MmCrashConsistent mm(in.a, in.b, config(96, 16, 32));
  mm.sim().scheduler().arm_at_point(MmCrashConsistent::kPointMultEnd, 4);
  ASSERT_TRUE(mm.run());
  const MmRecovery rec = mm.recover_and_resume();
  EXPECT_EQ(rec.crash_phase, 1);
  EXPECT_EQ(rec.crash_unit, 4u);
  EXPECT_GE(rec.units_recomputed, 1u);  // At least the freshest panel died.
  EXPECT_LT(Matrix::max_abs_diff(mm.result(), in.cref), 1e-10);
}

TEST(MmCc, Loop2CrashRecoversAndCompletes) {
  const Inputs in = inputs(96);
  MmCrashConsistent mm(in.a, in.b, config(96, 16, 32));
  mm.sim().scheduler().arm_at_point(MmCrashConsistent::kPointAddEnd, 3);
  ASSERT_TRUE(mm.run());
  const MmRecovery rec = mm.recover_and_resume();
  EXPECT_EQ(rec.crash_phase, 2);
  EXPECT_EQ(rec.crash_unit, 3u);
  EXPECT_LT(Matrix::max_abs_diff(mm.result(), in.cref), 1e-10);
}

TEST(MmCc, Loop1CrashWithTinyCacheLosesMultiplePanels) {
  // The paper's small-input case (n = 2000): several temporal matrices still
  // have volatile lines at crash time → more than one lost multiplication.
  const Inputs in = inputs(64);
  MmCrashConsistent mm(in.a, in.b, config(64, 8, 16));  // Ctemp_s ≈ 33 KB > 16 KB cache.
  mm.sim().scheduler().arm_at_point(MmCrashConsistent::kPointMultEnd, 4);
  ASSERT_TRUE(mm.run());
  const MmRecovery rec = mm.recover_and_resume();
  EXPECT_GE(rec.units_recomputed, 1u);
  EXPECT_LT(Matrix::max_abs_diff(mm.result(), in.cref), 1e-10);
}

TEST(MmCc, ChecksumCorrectionRepairsSingleElementWithoutRecompute) {
  const Inputs in = inputs(48);
  MmCrashConsistent mm(in.a, in.b, config(48, 16, 16));
  ASSERT_FALSE(mm.run());
  // Fault injection: one durable element of panel 2 is damaged, then the
  // machine "dies". Recovery must repair it purely from checksums.
  mm.corrupt_element_for_test(2, 5, 7, 1234.5);
  mm.sim().crash();
  const MmRecovery rec = mm.recover_and_resume();
  EXPECT_GE(rec.units_corrected, 1u);
  EXPECT_LT(Matrix::max_abs_diff(mm.result(), in.cref), 1e-10);
}

TEST(MmCc, RecoveryReportsTimings) {
  const Inputs in = inputs(64);
  MmCrashConsistent mm(in.a, in.b, config(64, 16, 32));
  mm.sim().scheduler().arm_at_point(MmCrashConsistent::kPointMultEnd, 2);
  ASSERT_TRUE(mm.run());
  const MmRecovery rec = mm.recover_and_resume();
  EXPECT_GT(rec.detect_seconds, 0.0);
  EXPECT_GE(rec.resume_seconds, 0.0);
  EXPECT_GT(mm.avg_mult_seconds(), 0.0);
}

TEST(MmCc, InvalidConfigRejected) {
  const Inputs in = inputs(16);
  MmCcConfig bad = config(16, 32, 64);  // rank > n
  EXPECT_THROW(MmCrashConsistent(in.a, in.b, bad), ContractViolation);
}

TEST(MmCc, ResultBeforeCompletionRejected) {
  const Inputs in = inputs(32);
  MmCrashConsistent mm(in.a, in.b, config(32, 8, 64));
  EXPECT_THROW(mm.result(), ContractViolation);
}

TEST(MmCkpt, MatchesReference) {
  const Inputs in = inputs(48);
  nvm::NvmRegion region(16u << 20, model());
  checkpoint::NvmBackend backend(region, 1u << 20);
  const auto res = run_mm_checkpointed(in.a, in.b, 16, backend);
  EXPECT_LT(Matrix::max_abs_diff(res.c, in.cref), 1e-10);
  EXPECT_EQ(res.checkpoints, 3u);
}

TEST(MmTx, MatchesReferenceAndLogsAccumulator) {
  const std::size_t n = 40;
  const Inputs in = inputs(n);
  pmemtx::PersistentHeap heap(mm_tx_data_bytes(n), mm_tx_log_bytes(n), model());
  const auto res = run_mm_tx(in.a, in.b, 10, heap);
  EXPECT_LT(Matrix::max_abs_diff(res.c, in.cref), 1e-10);
  EXPECT_EQ(res.log_stats.transactions, 4u);
  EXPECT_EQ(res.log_stats.bytes_logged, 4u * (n + 1) * (n + 1) * 8);
}

TEST(MmCcNative, MatchesReference) {
  const Inputs in = inputs(56);
  nvm::NvmRegion region(mm_cc_native_arena_bytes(56, 16), model());
  const auto res = run_mm_cc_native(in.a, in.b, 16, region);
  EXPECT_LT(Matrix::max_abs_diff(res.c, in.cref), 1e-10);
  EXPECT_GT(res.checksum_lines_flushed, 0u);
}

// Crash sweep over both loops and several sites.
struct MmCrashCase {
  const char* point;
  std::uint64_t occurrence;
};

class MmCrashSweep : public ::testing::TestWithParam<MmCrashCase> {};

TEST_P(MmCrashSweep, RecoveryCorrectEverywhere) {
  const Inputs in = inputs(80, 99);
  MmCrashConsistent mm(in.a, in.b, config(80, 16, 32));
  mm.sim().scheduler().arm_at_point(GetParam().point, GetParam().occurrence);
  ASSERT_TRUE(mm.run());
  mm.recover_and_resume();
  EXPECT_LT(Matrix::max_abs_diff(mm.result(), in.cref), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sites, MmCrashSweep,
    ::testing::Values(MmCrashCase{MmCrashConsistent::kPointMultEnd, 1},
                      MmCrashCase{MmCrashConsistent::kPointMultEnd, 3},
                      MmCrashCase{MmCrashConsistent::kPointMultEnd, 5},
                      MmCrashCase{MmCrashConsistent::kPointAddEnd, 1},
                      MmCrashCase{MmCrashConsistent::kPointAddEnd, 2},
                      MmCrashCase{MmCrashConsistent::kPointAddEnd, 4}),
    [](const auto& info) {
      return std::string(info.param.point[3] == 'l' && info.param.point[7] == '1' ? "Mult"
                                                                                  : "Add") +
             std::to_string(info.param.occurrence);
    });

}  // namespace
}  // namespace adcc::mm
