// Tests for the multi-shard execution engine: scoped crash-plan parsing,
// deterministic k-of-N victim selection, the coordinator's commit-ordering
// invariant (byte-level slot probes at every commit fault site), per-shard
// slot-image determinism, and survivor-no-recompute accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <vector>

#include "cg/cg_shard.hpp"
#include "cg/cg_workload.hpp"
#include "checkpoint/chunk.hpp"
#include "core/scenario.hpp"
#include "core/shard.hpp"
#include "mc/mc_shard.hpp"
#include "mc/mc_workload.hpp"
#include "memsim/crash.hpp"
#include "mm/mm_shard.hpp"
#include "mm/mm_workload.hpp"

namespace adcc::core {
namespace {

// ---------------------------------------------------------------- parsing --

TEST(ParseCrash, ShardScopePrefixes) {
  const auto s = parse_crash("shard:1:step:3");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->scope, CrashScenario::Scope::kShard);
  EXPECT_EQ(s->shard, 1u);
  EXPECT_EQ(s->kind, CrashScenario::Kind::kAtStep);
  EXPECT_EQ(s->step, 3u);
  EXPECT_EQ(crash_name(*s), "shard:1:step:3");

  const auto k = parse_crash("shards:2:7:random:9");
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(k->scope, CrashScenario::Scope::kShardSet);
  EXPECT_EQ(k->victims, 2u);
  EXPECT_EQ(k->victim_seed, 7u);
  EXPECT_EQ(k->kind, CrashScenario::Kind::kRandom);
  EXPECT_EQ(crash_name(*k), "shards:2:7:random:9");

  const auto c = parse_crash("coord:point:global_commit");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->scope, CrashScenario::Scope::kCoordinator);
  EXPECT_EQ(c->kind, CrashScenario::Kind::kAtPoint);
  EXPECT_EQ(c->point, "global_commit");
  EXPECT_EQ(crash_name(*c), "coord:point:global_commit");
}

TEST(ParseCrash, ShardScopeRejectsMalformedAndScopedNone) {
  EXPECT_FALSE(parse_crash("shard:1:none").has_value());
  EXPECT_FALSE(parse_crash("coord:none").has_value());
  EXPECT_FALSE(parse_crash("shard:x:step:2").has_value());
  EXPECT_FALSE(parse_crash("shards:2:step:2").has_value());  // Missing seed.
  EXPECT_FALSE(parse_crash("shard:").has_value());
}

TEST(ParseCrash, ShardScopeComposesWithChains) {
  const auto chained = parse_crash("shard:0:step:2^point:ckpt_restore:1");
  ASSERT_TRUE(chained.has_value());
  EXPECT_EQ(chained->scope, CrashScenario::Scope::kShard);
  EXPECT_EQ(chained->kind, CrashScenario::Kind::kAtStep);
  ASSERT_EQ(chained->then.size(), 1u);
  EXPECT_EQ(chained->then[0].kind, CrashScenario::Kind::kAtPoint);
  EXPECT_EQ(crash_name(*chained), "shard:0:step:2^point:ckpt_restore");
}

// ------------------------------------------------------- victim selection --

TEST(CrashVictims, SeededSelectionIsDeterministicSortedAndDistinct) {
  const auto crash = *parse_crash("shards:3:42:step:2");
  const auto v1 = crash_victims(crash, 8);
  const auto v2 = crash_victims(crash, 8);
  EXPECT_EQ(v1, v2);
  ASSERT_EQ(v1.size(), 3u);
  for (std::size_t i = 0; i < v1.size(); ++i) {
    EXPECT_LT(v1[i], 8u);
    if (i > 0) EXPECT_LT(v1[i - 1], v1[i]);  // Sorted => distinct.
  }
}

TEST(CrashVictims, ClampsToShardCount) {
  EXPECT_EQ(crash_victims(*parse_crash("shard:9:step:1"), 4),
            std::vector<std::size_t>{3});
  EXPECT_EQ(crash_victims(*parse_crash("shards:9:5:step:1"), 4).size(), 4u);
}

TEST(ResolveCrashScope, SingleShardDegeneratesToProcess) {
  EXPECT_EQ(resolve_crash_scope(*parse_crash("shard:0:step:2"), 1).kind,
            CrashScope::Kind::kProcess);
  EXPECT_EQ(resolve_crash_scope(*parse_crash("coord:step:2"), 1).kind,
            CrashScope::Kind::kProcess);
  const CrashScope scoped = resolve_crash_scope(*parse_crash("shard:1:step:2"), 4);
  EXPECT_EQ(scoped.kind, CrashScope::Kind::kShards);
  EXPECT_EQ(scoped.victims, std::vector<std::size_t>{1});
  EXPECT_EQ(resolve_crash_scope(*parse_crash("coord:step:2"), 4).kind,
            CrashScope::Kind::kCoordinator);
}

// ------------------------------------------------------------- harnesses --

cg::CgWorkloadConfig tiny_cg() {
  cg::CgWorkloadConfig cfg;
  cfg.n = 96;
  cfg.nz_per_row = 6;
  cfg.iters = 6;
  return cfg;
}

mm::MmWorkloadConfig tiny_mm() {
  mm::MmWorkloadConfig cfg;
  cfg.n = 64;
  cfg.rank_k = 16;  // 4 panels.
  return cfg;
}

mc::McWorkloadConfig tiny_mc() {
  mc::McWorkloadConfig cfg;
  cfg.data.n_nuclides = 6;
  cfg.data.gridpoints_per_nuclide = 60;
  cfg.lookups = 600;
  cfg.interval = 100;  // 6 units.
  return cfg;
}

std::unique_ptr<ShardGroup> cg_group(std::size_t shards, bool stagger = false) {
  const cg::CgWorkloadConfig cfg = tiny_cg();
  return std::make_unique<ShardGroup>(
      std::make_unique<cg::CgShardPlan>(cfg), ShardGroupConfig{shards, stagger},
      [cfg]() -> std::unique_ptr<Workload> { return std::make_unique<cg::CgWorkload>(cfg); });
}

std::unique_ptr<ShardGroup> mm_group(std::size_t shards) {
  const mm::MmWorkloadConfig cfg = tiny_mm();
  return std::make_unique<ShardGroup>(
      std::make_unique<mm::MmShardPlan>(cfg), ShardGroupConfig{shards, false},
      [cfg]() -> std::unique_ptr<Workload> { return std::make_unique<mm::MmWorkload>(cfg); });
}

std::unique_ptr<ShardGroup> mc_group(std::size_t shards) {
  const mc::McWorkloadConfig cfg = tiny_mc();
  return std::make_unique<ShardGroup>(
      std::make_unique<mc::McShardPlan>(cfg), ShardGroupConfig{shards, false},
      [cfg]() -> std::unique_ptr<Workload> { return std::make_unique<mc::McWorkload>(cfg); });
}

ScenarioConfig group_config(const Workload& w, Mode mode, const std::string& scratch) {
  ScenarioConfig cfg;
  cfg.mode = mode;
  cfg.env.scratch_dir = std::filesystem::temp_directory_path() / scratch;
  w.tune_env(mode, cfg.env);
  cfg.verify = true;
  return cfg;
}

/// True iff some committed slot of `backend` holds an intact image of
/// exactly `version`: valid magic, valid header CRC, matching version.
bool slot_holds_version(checkpoint::Backend& backend, std::uint64_t version) {
  for (int s = 0; s < backend.slot_count(); ++s) {
    checkpoint::SlotHeader h;
    if (backend.read_image(s, {reinterpret_cast<std::byte*>(&h), sizeof(h)}) != sizeof(h)) {
      continue;
    }
    checkpoint::SlotHeader probe = h;
    probe.header_crc = 0;
    if (h.magic == checkpoint::kSlotMagic &&
        h.header_crc == checkpoint::slot_header_crc(probe) && h.version == version) {
      return true;
    }
  }
  return false;
}

// -------------------------------------------------------- commit ordering --

// The global marker must never name a shard state that is not fully durable:
// crash the group at every fault site inside the commit sequence (each shard's
// join, the post-join global point, the marker's own chunk write) and check
// that (a) the durable marker still names the PREVIOUS epoch and (b) every
// shard's backend holds an intact image of exactly the slot version the marker
// records — probed at the byte level, not through the restore path.
TEST(GroupCoordinator, MarkerNeverObservableBeforeEveryShardCommitted) {
  const std::string sites[] = {
      std::string(kPointShardJoin) + ":1", std::string(kPointShardJoin) + ":2",
      std::string(kPointShardJoin) + ":3", std::string(kPointGlobalCommit) + ":1",
      std::string(kPointCoordCommit) + ":1"};
  for (const std::string& site : sites) {
    auto group = cg_group(3);
    ModeEnvConfig ec;
    ec.scratch_dir = std::filesystem::temp_directory_path() / "adcc_shard_commit_test";
    group->tune_env(Mode::kCkptDisk, ec);
    ModeEnv env = make_env(Mode::kCkptDisk, ec);
    group->prepare(env);
    ASSERT_TRUE(group->sharded());
    group->set_crash_scope({CrashScope::Kind::kCoordinator, {}});

    // Epoch 1 commits cleanly; epoch 2's commit crashes at the armed site.
    ASSERT_TRUE(group->run_step());
    group->make_durable();
    group->wait_durable();
    const auto colon = site.rfind(':');
    group->fault()->arm_at_point(site.substr(0, colon),
                                 std::stoull(site.substr(colon + 1)));
    ASSERT_TRUE(group->run_step());
    EXPECT_THROW(group->make_durable(), memsim::CrashException) << site;
    group->inject_crash();

    // Byte-level probe before any recovery path runs.
    const GroupCoordinator::Marker marker = group->coordinator()->reload();
    EXPECT_EQ(marker.epoch, 1u) << site;
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(slot_holds_version(*group->shard_backend(i), marker.versions[i]))
          << site << " shard " << i;
    }

    // And the group recovers to the marker epoch and finishes correctly.
    const WorkloadRecovery rec = group->recover();
    EXPECT_EQ(rec.restart_unit, 2u) << site;
    EXPECT_EQ(rec.units_lost, 1u) << site;
    EXPECT_EQ(rec.epochs_rolled_back, 1u) << site;
    while (group->units_done() < group->work_units()) {
      ASSERT_TRUE(group->run_step());
      group->make_durable();
    }
    group->wait_durable();
    EXPECT_TRUE(group->verify()) << site;
  }
}

// ------------------------------------------------- k-of-N restore & bytes --

/// Runs a sharded CG scenario and returns every shard's raw slot images.
std::vector<std::vector<std::byte>> run_and_dump_slots(const std::string& scratch,
                                                       const std::string& crash) {
  auto group = cg_group(4);
  ScenarioConfig cfg = group_config(*group, Mode::kCkptDisk, scratch);
  cfg.crash = *parse_crash(crash);
  const ScenarioResult res = run_scenario(*group, cfg);
  EXPECT_TRUE(res.verify_ran);
  EXPECT_TRUE(res.verified) << crash;
  std::vector<std::vector<std::byte>> images;
  for (std::size_t i = 0; i < 4; ++i) {
    checkpoint::Backend& backend = *group->shard_backend(i);
    for (int s = 0; s < backend.slot_count(); ++s) {
      std::vector<std::byte> img(1u << 20);
      img.resize(backend.read_image(s, img));
      images.push_back(std::move(img));
    }
  }
  return images;
}

TEST(ShardGroup, KofNRestoreIsDeterministicAndSlotImagesByteIdentical) {
  const auto a = run_and_dump_slots("adcc_shard_det_a", "shards:2:5:step:4");
  const auto b = run_and_dump_slots("adcc_shard_det_b", "shards:2:5:step:4");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FALSE(a[i].empty()) << "slot image " << i;
    EXPECT_EQ(a[i], b[i]) << "slot image " << i;
  }
}

// --------------------------------------------------- survivor accounting --

// A killed shard's recovery replays only its own delta: survivors execute
// exactly units x phases compute steps (never recomputed), the victim adds
// exactly phases x units_replayed steps on top. Async commit keeps the marker
// one epoch behind the crash, so the replay delta is non-empty.
TEST(ShardGroup, SurvivorsNeverRecomputeVictimReplaysOwnDelta) {
  auto group = cg_group(3);
  ScenarioConfig cfg = group_config(*group, Mode::kCkptDisk, "adcc_shard_survivor_test");
  cfg.env.ckpt_async = true;
  cfg.crash = *parse_crash("shard:1:step:4");
  const ScenarioResult res = run_scenario(*group, cfg);
  ASSERT_TRUE(res.verified);
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.recomputation.shards_restored, 1u);
  EXPECT_GE(res.recomputation.units_replayed, 1u);
  EXPECT_GT(res.recomputation.halo_bytes, 0u);
  EXPECT_EQ(res.recomputation.units_lost, 0u);  // Boundary crash, victim-only scope.

  const std::uint64_t base = group->work_units() * group->phases();
  EXPECT_EQ(group->shard_exec_steps(0), base);  // Survivor: not one extra step.
  EXPECT_EQ(group->shard_exec_steps(2), base);
  EXPECT_EQ(group->shard_exec_steps(1),
            base + res.recomputation.units_replayed * group->phases());
}

// ----------------------------------------------------- group round trips --

TEST(ShardGroup, AdaptersVerifyAcrossScopesAndStagger) {
  struct Case {
    const char* crash;
    bool stagger;
  };
  const Case cases[] = {{"none", true},
                        {"shard:0:step:2", false},
                        {"shards:2:5:step:3", true},
                        {"coord:point:global_commit", false}};
  for (const Case& c : cases) {
    auto cg = cg_group(3, c.stagger);
    ScenarioConfig cfg = group_config(*cg, Mode::kCkptDisk, "adcc_shard_roundtrip");
    cfg.crash = *parse_crash(c.crash);
    EXPECT_TRUE(run_scenario(*cg, cfg).verified) << "cg " << c.crash;
  }
  for (const char* crash : {"shard:0:step:2", "coord:point:global_commit"}) {
    auto mm = mm_group(4);
    ScenarioConfig mcfg = group_config(*mm, Mode::kCkptNvm, "adcc_shard_roundtrip");
    mcfg.crash = *parse_crash(crash);
    EXPECT_TRUE(run_scenario(*mm, mcfg).verified) << "mm " << crash;
    auto mc = mc_group(4);
    ScenarioConfig ccfg = group_config(*mc, Mode::kCkptNvm, "adcc_shard_roundtrip");
    ccfg.crash = *parse_crash(crash);
    EXPECT_TRUE(run_scenario(*mc, ccfg).verified) << "mc " << crash;
  }
}

// Transaction/algorithm modes keep their single-rank engines: the group
// falls back transparently and scoped plans degenerate to process scope.
TEST(ShardGroup, NonCheckpointModesFallBackToSingleRank) {
  for (Mode m : {Mode::kPmemTx, Mode::kAlgNvm}) {
    auto group = cg_group(4);
    ScenarioConfig cfg = group_config(*group, m, "adcc_shard_fallback");
    cfg.crash = *parse_crash("shard:0:step:2");
    const ScenarioResult res = run_scenario(*group, cfg);
    EXPECT_TRUE(res.verified) << mode_name(m);
    EXPECT_FALSE(group->sharded()) << mode_name(m);
    EXPECT_EQ(group->shard_count(), 1u) << mode_name(m);
  }
}

}  // namespace
}  // namespace adcc::core
