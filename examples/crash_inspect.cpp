// Example — inspecting crash state, the paper's crash-emulator workflow.
//
// The paper's PIN tool "outputs the values of data in caches and main memory"
// at a user-chosen crash point; this example reproduces that workflow on the
// crash-consistent CG solver: run to a chosen iteration, stop, and print a
// census of which data objects are volatile (dirty in cache = would die) vs
// already durable in NVM — the raw evidence behind the Fig. 3 analysis.
//
//   build/examples/crash_inspect [--n=20000] [--iters=12] [--stop_iter=8] [--cache_kb=512]
#include <cstdio>

#include "core/adcc.hpp"

using namespace adcc;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", 20000));
  const std::size_t iters = static_cast<std::size_t>(opts.get_int("iters", 12));
  const auto stop_iter = static_cast<std::uint64_t>(opts.get_int("stop_iter", 8));
  const std::size_t cache_kb = static_cast<std::size_t>(opts.get_int("cache_kb", 512));

  const auto a = linalg::make_spd(n, 9, 42);
  const auto b = linalg::make_rhs(n, 43);

  cg::CgCcConfig cfg;
  cfg.n_iters = iters;
  cfg.cache.size_bytes = cache_kb << 10;
  cfg.cache.ways = 8;

  cg::CgCrashConsistent solver(a, b, cfg);
  solver.sim().scheduler().arm_at_point(cg::CgCrashConsistent::kPointPUpdated, stop_iter);
  std::printf("running CG (n=%zu) under the crash emulator, stopping in iteration %llu…\n\n",
              n, static_cast<unsigned long long>(stop_iter));
  if (!solver.run()) {
    std::printf("run completed without reaching the stop point\n");
    return 1;
  }

  std::printf("state at the crash instant (%llu line accesses, %zu KB LLC):\n",
              static_cast<unsigned long long>(solver.sim().access_count()), cache_kb);
  std::printf("%-14s %12s %12s %10s\n", "region", "lines", "dirty", "volatile");
  for (const auto& c : solver.sim().census_at_crash()) {
    std::printf("%-14s %12zu %12zu %9.2f%%\n", c.name.c_str(), c.total_lines, c.dirty_lines,
                c.total_lines ? 100.0 * static_cast<double>(c.dirty_lines) /
                                    static_cast<double>(c.total_lines)
                              : 0.0);
  }

  const auto& cs = solver.sim().cache_stats();
  std::printf("\ncache: %llu hits, %llu misses, %llu dirty evictions "
              "(each eviction silently persisted a line to NVM)\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.dirty_evictions));

  const cg::CgRecovery rec = solver.recover_and_resume();
  std::printf("\nrecovery verdict: restart from iteration %zu (%zu iteration(s) lost, "
              "%zu candidates examined)\n",
              rec.restart_iter, rec.iters_lost, rec.candidates_checked);
  std::printf("the dirty lines above are exactly the data the invariants declared "
              "unusable.\n");
  return 0;
}
