// Example — crash-consistent Conjugate Gradient (the paper's Fig. 2 solver).
//
// Solves a random sparse SPD system under the crash emulator, kills the run
// in the middle of an iteration, then uses the CG invariants
//     p(i+1)ᵀ·q(i) = 0     and     r(i+1) = b − A·z(i+1)
// to find the newest resumable iteration in NVM and finish the solve.
//
//   build/examples/cg_solver [--n=20000] [--iters=12] [--crash_iter=9] [--cache_kb=512]
#include <cstdio>

#include "core/adcc.hpp"

using namespace adcc;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", 20000));
  const std::size_t iters = static_cast<std::size_t>(opts.get_int("iters", 12));
  const auto crash_iter = static_cast<std::uint64_t>(opts.get_int("crash_iter", 9));
  const std::size_t cache_kb = static_cast<std::size_t>(opts.get_int("cache_kb", 512));

  std::printf("crash-consistent CG: n=%zu, %zu iterations, crash in iteration %llu\n\n", n,
              iters, static_cast<unsigned long long>(crash_iter));

  const auto a = linalg::make_spd(n, 9, 42);
  const auto b = linalg::make_rhs(n, 43);

  cg::CgCcConfig cfg;
  cfg.n_iters = iters;
  cfg.cache.size_bytes = cache_kb << 10;
  cfg.cache.ways = 8;

  cg::CgCrashConsistent solver(a, b, cfg);
  solver.sim().scheduler().arm_at_point(cg::CgCrashConsistent::kPointPUpdated, crash_iter);

  if (solver.run()) {
    std::printf("*** simulated crash after %llu memory accesses ***\n",
                static_cast<unsigned long long>(solver.sim().access_count()));
    const cg::CgRecovery rec = solver.recover_and_resume();
    std::printf("recovery: crashed in iteration %zu, invariants hold at iteration %zu\n",
                rec.crash_iter, rec.restart_iter == 1 ? 0 : rec.restart_iter - 1);
    std::printf("          -> re-executed %zu iteration(s) (checked %zu candidates)\n",
                rec.iters_lost, rec.candidates_checked);
    std::printf("          detect %.4fs + resume %.4fs (avg iteration %.4fs)\n",
                rec.detect_seconds, rec.resume_seconds, solver.avg_iter_seconds());
    solver.finish();
  }

  const auto x = solver.solution();
  const double res = cg::true_residual(a, b, x);
  const auto golden = cg::cg_solve(a, b, iters);
  std::printf("\nfinal residual  : %.3e (uncrashed run: %.3e)\n", res, golden.residual_norm);
  std::printf("max |x - x_ref| : %.3e\n", linalg::max_abs_diff(x, golden.x));
  std::printf("runtime durability cost: 1 flushed cache line per iteration, no checkpoints.\n");
  return 0;
}
