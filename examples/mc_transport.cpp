// Example — crash-consistent Monte-Carlo transport (paper §III-D).
//
// Runs the XSBench-equivalent cross-section lookup kernel under the crash
// emulator twice: with the paper's *basic idea* (trust MC statistics, flush
// only the loop index) and with *selective flushing* of the tallies. The
// basic idea visibly corrupts the tally distribution; selective flushing
// recovers it exactly.
//
//   build/examples/mc_transport [--lookups=100000] [--crash_pct=10] [--cache_mb=4]
#include <cstdio>

#include "core/adcc.hpp"

using namespace adcc;

namespace {

void print_tally(const char* label, const mc::Tally& t, std::uint64_t lookups) {
  std::printf("%-28s", label);
  const auto pct = t.percentages(lookups);
  for (double p : pct) std::printf("  %6.2f%%", p);
  std::printf("   (total %llu)\n", static_cast<unsigned long long>(t.total()));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const auto lookups = static_cast<std::uint64_t>(opts.get_int("lookups", 100'000));
  const double crash_pct = opts.get_double("crash_pct", 10.0);
  const std::size_t cache_mb = static_cast<std::size_t>(opts.get_int("cache_mb", 4));
  const auto crash_at =
      static_cast<std::uint64_t>(static_cast<double>(lookups) * crash_pct / 100.0);

  mc::XsConfig dc;
  dc.n_nuclides = 24;
  dc.gridpoints_per_nuclide = 500;
  const mc::XsDataHost data(dc);
  std::printf("MC transport: %llu lookups over %zu MB of grids, crash at %.0f%%\n\n",
              static_cast<unsigned long long>(lookups), dc.footprint_bytes() >> 20, crash_pct);
  std::printf("%-28s  %7s  %7s  %7s  %7s  %7s\n", "interaction-type tallies:", "t1", "t2",
              "t3", "t4", "t5");

  for (const auto policy : {mc::XsFlushPolicy::kBasicIdea, mc::XsFlushPolicy::kSelective}) {
    mc::XsCcConfig cfg;
    cfg.total_lookups = lookups;
    cfg.policy = policy;
    cfg.flush_interval = std::max<std::uint64_t>(1, lookups / 10'000);  // 0.01 %
    cfg.cache.size_bytes = cache_mb << 20;
    cfg.cache.ways = 8;
    cfg.rng_seed = 31;

    mc::XsCrashConsistent nocrash(data, cfg);
    nocrash.run();

    mc::XsCrashConsistent crashed(data, cfg);
    crashed.sim().scheduler().arm_at_point(mc::XsCrashConsistent::kPointLookupEnd, crash_at);
    crashed.run();
    const mc::XsRecovery rec = crashed.recover_and_resume();

    const bool basic = policy == mc::XsFlushPolicy::kBasicIdea;
    std::printf("\n--- %s ---\n", basic ? "basic idea (flush loop index only)"
                                        : "selective flushing (tallies every 0.01%)");
    print_tally("no crash", nocrash.tally(), lookups);
    print_tally("crash + restart", crashed.tally(), lookups);
    std::printf("restart at lookup %llu; max per-type gap %.3f pp%s\n",
                static_cast<unsigned long long>(rec.restart_lookup),
                mc::max_percentage_gap(crashed.tally(), nocrash.tally(), lookups),
                crashed.tally().counts == nocrash.tally().counts ? " — EXACT match" : "");
  }
  std::printf("\nThe statistics of MC do not protect the hot accumulators: they live in\n"
              "cache, die with it, and must be selectively flushed (3 cache lines).\n");
  return 0;
}
