// Quickstart — the library in five minutes.
//
// Demonstrates the core loop of algorithm-directed crash consistency on the
// crash emulator: register data with the simulator, run, die, reason about
// what NVM still holds, and recover — without any checkpoint or log.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/adcc.hpp"

using namespace adcc;

int main() {
  std::printf("ADCC quickstart: a tracked array, a crash, and what NVM remembers\n\n");

  // 1. A simulated machine: 256 KB LLC, 8-way, write-back LRU, NVM behind it.
  memsim::CacheConfig cache;
  cache.size_bytes = 256u << 10;
  cache.ways = 8;
  memsim::MemorySimulator sim(cache);

  // 2. Application data registered with the simulator. The live view is what
  //    the program sees (cache ∪ NVM); the durable view is what NVM holds.
  memsim::TrackedArray<double> data(sim, "results", 1u << 16);  // 512 KB > cache.

  // 3. Compute: fill the array, announcing every store to the cache model.
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.write(i, static_cast<double>(i) * 0.5);
  }

  // Older lines were evicted (and thus persisted) by the hardware cache on its
  // own; the most recently written tail is still volatile.
  std::size_t already_durable = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.durable(i) == static_cast<double>(i) * 0.5) ++already_durable;
  }
  std::printf("after filling 512 KB through a 256 KB cache:\n");
  std::printf("  %zu of %zu elements already durable via eviction (%.1f%%)\n",
              already_durable, data.size(),
              100.0 * static_cast<double>(already_durable) / static_cast<double>(data.size()));

  // 4. Selectively flush one critical line (the paper's whole runtime cost).
  memsim::TrackedScalar<std::int64_t> progress(sim, "progress", 0);
  progress.set_and_flush(static_cast<std::int64_t>(data.size()));
  std::printf("  flushed 1 cache line for the progress counter\n");

  // 5. Power failure: every dirty cache line vanishes.
  sim.crash();
  std::printf("\n*** crash ***\n\n");

  // 6. Recovery reads NVM only.
  std::printf("recovery sees progress = %lld (durable, because we flushed it)\n",
              static_cast<long long>(progress.durable()));
  std::size_t consistent = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.durable(i) == static_cast<double>(i) * 0.5) ++consistent;
  }
  std::printf("recovery finds %zu/%zu elements consistent in NVM; the rest must be\n"
              "recomputed — and *algorithm knowledge* (invariants, checksums,\n"
              "statistics) is how the real solvers in this library decide which.\n",
              consistent, data.size());
  std::printf("\nNext: examples/cg_solver, examples/abft_matmul, examples/mc_transport.\n");
  return 0;
}
