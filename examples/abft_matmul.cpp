// Example — crash-consistent ABFT matrix multiplication (paper Fig. 6).
//
// Runs the two-loop checksum-flushing GEMM under the crash emulator, crashes
// during the submatrix-multiplication loop, and lets the checksums classify
// every temporal matrix as consistent / correctable / lost. Also demonstrates
// pure checksum *correction* of an injected single-element inconsistency.
//
//   build/examples/abft_matmul [--n=512] [--rank=64] [--crash_panel=3] [--cache_kb=2048]
#include <cstdio>

#include "core/adcc.hpp"

using namespace adcc;

int main(int argc, char** argv) {
  const Options opts(argc, argv);
  const std::size_t n = static_cast<std::size_t>(opts.get_int("n", 512));
  const std::size_t rank = static_cast<std::size_t>(opts.get_int("rank", 64));
  const auto crash_panel = static_cast<std::uint64_t>(opts.get_int("crash_panel", 3));
  const std::size_t cache_kb = static_cast<std::size_t>(opts.get_int("cache_kb", 2048));

  std::printf("crash-consistent ABFT GEMM: n=%zu, rank=%zu, crash after panel %llu\n\n", n,
              rank, static_cast<unsigned long long>(crash_panel));

  linalg::Matrix a(n, n), b(n, n), cref(n, n);
  a.fill_random(1, -1, 1);
  b.fill_random(2, -1, 1);
  linalg::gemm(a, b, cref);

  mm::MmCcConfig cfg;
  cfg.n = n;
  cfg.rank_k = rank;
  cfg.cache.size_bytes = cache_kb << 10;
  cfg.cache.ways = 8;

  mm::MmCrashConsistent mm(a, b, cfg);
  std::printf("loop 1 computes %zu temporal full-checksum matrices of %zu x %zu\n",
              mm.num_panels(), n + 1, n + 1);
  mm.sim().scheduler().arm_at_point(mm::MmCrashConsistent::kPointMultEnd, crash_panel);

  if (mm.run()) {
    std::printf("*** simulated crash at the end of submatrix multiplication %llu ***\n",
                static_cast<unsigned long long>(crash_panel));
    const mm::MmRecovery rec = mm.recover_and_resume();
    std::printf("recovery: checksum verification over the NVM image classified the\n");
    std::printf("          temporal matrices; %zu recomputed, %zu corrected in place\n",
                rec.units_recomputed, rec.units_corrected);
    std::printf("          detect %.4fs, catch-up %.4fs (one multiplication: %.4fs)\n",
                rec.detect_seconds, rec.resume_seconds, mm.avg_mult_seconds());
  }
  std::printf("max |C - C_ref| after recovery: %.3e\n\n",
              linalg::Matrix::max_abs_diff(mm.result(), cref));

  // Bonus: pure checksum correction, no recomputation at all.
  mm::MmCrashConsistent mm2(a, b, cfg);
  mm2.run();
  mm2.corrupt_element_for_test(1, 7, 9, -4242.0);
  mm2.sim().crash();
  const mm::MmRecovery rec2 = mm2.recover_and_resume();
  std::printf("fault injection: 1 durable element damaged -> %zu unit(s) repaired purely\n"
              "from checksums (recomputed: %zu); max |C - C_ref| = %.3e\n",
              rec2.units_corrected, rec2.units_recomputed,
              linalg::Matrix::max_abs_diff(mm2.result(), cref));
  return 0;
}
