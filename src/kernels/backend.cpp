#include "kernels/backend.hpp"

#include <sstream>
#include <stdexcept>

#include "common/check.hpp"

namespace adcc::core {

namespace {

/// Process-wide backend table. Meyers singleton whose constructor seeds the
/// serial backend, so `serial` is always present and always first; omp's
/// registrar appends during static init (order vs. this table is safe because
/// every path reaches it through registry() first).
struct Registry {
  std::vector<const KernelBackend*> backends;

  Registry() { backends.push_back(&serial_kernel_backend()); }

  const KernelBackend* find(std::string_view name) const {
    for (const KernelBackend* b : backends) {
      if (b->name() == name) return b;
    }
    return nullptr;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

/// The calling thread's binding; nullptr = serial default. Thread-local for
/// the same reason TelemetryBind is: parallel sweep workers bind different
/// backends concurrently.
thread_local const KernelBackend* t_active = nullptr;

}  // namespace

const KernelBackend* find_kernel_backend(std::string_view name) {
  return registry().find(name);
}

const KernelBackend& kernel_backend(std::string_view name) {
  if (const KernelBackend* b = registry().find(name)) return *b;
  std::ostringstream msg;
  msg << "unknown kernel backend '" << name << "' (built: ";
  const auto& all = registry().backends;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i != 0) msg << ", ";
    msg << all[i]->name();
  }
  msg << ")";
  throw std::runtime_error(msg.str());
}

std::vector<std::string> kernel_backend_names() {
  std::vector<std::string> names;
  for (const KernelBackend* b : registry().backends) names.push_back(b->name());
  return names;
}

const KernelBackend& active_kernel_backend() {
  return t_active != nullptr ? *t_active : serial_kernel_backend();
}

KernelBackendBind::KernelBackendBind(const KernelBackend* backend) : saved_(t_active) {
  t_active = backend;
}

KernelBackendBind::~KernelBackendBind() { t_active = saved_; }

KernelBackendRegistrar::KernelBackendRegistrar(const KernelBackend& backend) {
  ADCC_CHECK(registry().find(backend.name()) == nullptr, "duplicate kernel backend name");
  registry().backends.push_back(&backend);
}

}  // namespace adcc::core
