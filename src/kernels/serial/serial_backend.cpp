// The default backend: the pre-backend loop bodies, unthreaded. This is the
// bit-identity reference — every other backend's determinism contract is
// "matches these loops" (bitwise for spmv/gemm/blas-level updates/xs, within
// verify tolerances for the sum/dot reductions).
#include "common/rng.hpp"
#include "kernels/backend.hpp"
#include "linalg/csr.hpp"
#include "mc/xs_kernel.hpp"

namespace adcc::core {

namespace {

class SerialBackend final : public KernelBackend {
 public:
  SerialBackend() : KernelBackend("serial") {}

 protected:
  void do_spmv(const linalg::CsrMatrix& a, std::span<const double> x,
               std::span<double> y) const override {
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto values = a.values();
    const std::size_t n = a.rows();
    for (std::size_t r = 0; r < n; ++r) {
      double acc = 0.0;
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        acc += values[k] * x[col_idx[k]];
      }
      y[r] = acc;
    }
  }

  void do_spmv_rows(const linalg::CsrMatrix& a, std::size_t r0, std::size_t r1,
                    std::span<const double> x, std::span<double> y) const override {
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto values = a.values();
    for (std::size_t r = r0; r < r1; ++r) {
      double acc = 0.0;
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        acc += values[k] * x[col_idx[k]];
      }
      y[r - r0] = acc;
    }
  }

  double do_sum(std::span<const double> x) const override {
    double s = 0.0;
    for (const double v : x) s += v;
    return s;
  }

  double do_dot(std::span<const double> x, std::span<const double> y) const override {
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
    return s;
  }

  void do_axpy(double a, std::span<const double> x, std::span<double> y) const override {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
  }

  void do_xpay(std::span<const double> x, double a, std::span<const double> y,
               std::span<double> z) const override {
    for (std::size_t i = 0; i < x.size(); ++i) z[i] = x[i] + a * y[i];
  }

  void do_scale(double a, std::span<double> x) const override {
    for (double& v : x) v *= a;
  }

  void do_gemm_tile(const double* a, std::size_t lda, const double* b, std::size_t ldb,
                    std::size_t rows, std::size_t cols, std::size_t k, double* c, std::size_t ldc,
                    bool accumulate) const override {
    for (std::size_t i = 0; i < rows; ++i) {
      const double* ai = a + i * lda;
      double* ci = c + i * ldc;
      if (!accumulate) {
        for (std::size_t j = 0; j < cols; ++j) ci[j] = 0.0;
      }
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double aik = ai[kk];
        const double* brow = b + kk * ldb;
        for (std::size_t j = 0; j < cols; ++j) ci[j] += aik * brow[j];
      }
    }
  }

  void do_panel_sum(const double* const* panels, std::size_t count, std::size_t rows,
                    std::size_t cols, std::size_t ld, double* out, std::size_t ldo) const override {
    for (std::size_t i = 0; i < rows; ++i) {
      double* oi = out + i * ldo;
      for (std::size_t j = 0; j < cols; ++j) oi[j] = 0.0;
      for (std::size_t s = 0; s < count; ++s) {
        const double* pi = panels[s] + i * ld;
        for (std::size_t j = 0; j < cols; ++j) oi[j] += pi[j];
      }
    }
  }

  void do_xs_range(const mc::XsDataHost& data, const CounterRng& rng, std::uint64_t begin,
                   std::uint64_t end, double* macro, std::uint64_t* counters,
                   std::uint64_t* index) const override {
    for (std::uint64_t i = begin; i < end; ++i) {
      *index = i;
      const mc::LookupSample s = mc::sample_lookup(rng, i, data);
      double local[mc::kChannels];
      mc::macro_lookup(data, s.energy, s.material, local);
      for (int c = 0; c < mc::kChannels; ++c) macro[c] += local[c];
      const int type = mc::tally_select(macro, rng.uniform(i, /*lane=*/2));
      counters[static_cast<std::size_t>(type)] += 1;
    }
  }
};

}  // namespace

const KernelBackend& serial_kernel_backend() {
  static const SerialBackend backend;
  return backend;
}

}  // namespace adcc::core
