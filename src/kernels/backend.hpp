// KernelBackend — the pluggable compute layer (ROADMAP: "pluggable compute
// backends + per-kernel timing").
//
// Every hot loop the workloads execute (CG's SpMV and BLAS-1 updates, MM's
// panel/tile GEMM and panel reduction, MC's xs-lookup batch) is a virtual on
// this interface, with one implementation per backend subdirectory:
//
//   src/kernels/serial/   — the default: today's loop bodies, no threading,
//                           always registered, bit-identical to the pre-backend
//                           code paths on any build
//   src/kernels/omp/      — OpenMP: parallel SpMV, tiled scratch-buffer GEMM,
//                           batched parallel xs-lookup; compiled and registered
//                           only under -DADCC_OPENMP=ON
//
// Selection is by name (`--backend=serial|omp`, a sweepable string axis): the
// sweep engine resolves the cell's backend once and ScenarioRunner binds it to
// the scenario's thread (RAII, like TelemetryBind), so every linalg/mc
// dispatch site picks it up through active_kernel_backend() without plumbing a
// pointer through the workload layer. Unbound threads — verify passes, native
// baseline runs, unit tests — always compute on the serial backend.
//
// Timing: the public entry points are non-virtual wrappers that open the PR 7
// telemetry stage (kernel/spmv, kernel/gemm, kernel/blas1) around the protected
// do_* virtual, so every backend is timed identically at every call site and
// the sweep's t_spmv/t_gemm columns need no per-backend instrumentation.
// xs_range is the exception: its callers invoke it per durability interval —
// sometimes one lookup at a time under mid-unit fault injection — so the
// kernel/xs stage stays at the call sites (mc_workload, mc_shard) where one
// scope covers many dispatches.
//
// Determinism contract (docs/BACKENDS.md):
//   * spmv / spmv_rows / gemm_tile / panel_sum / axpy / xpay / scale keep each
//     output element's accumulation order identical to the serial loops, so
//     their results are bitwise independent of backend and thread count.
//   * xs_range must preserve the serial macro-accumulation + tally order
//     exactly (the MC tally stream is history-dependent); the omp backend
//     parallelizes only the pure per-lookup work and drains sequentially.
//   * sum / dot may re-associate the reduction: results differ across
//     backends/threads within the workloads' verify tolerances. Code that
//     needs bit-stable scalars (cg_shard's seq_dot) must not dispatch here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/telemetry.hpp"

namespace adcc {
class CounterRng;
namespace linalg {
class CsrMatrix;
}
namespace mc {
class XsDataHost;
}
}  // namespace adcc

namespace adcc::core {

/// Abstract compute backend: one virtual per hot kernel, timed uniformly by
/// the non-virtual public wrappers (NVI). Implementations are stateless and
/// thread-safe; one shared instance per backend lives in the registry.
class KernelBackend {
 public:
  explicit KernelBackend(std::string name) : name_(std::move(name)) {}
  virtual ~KernelBackend() = default;

  KernelBackend(const KernelBackend&) = delete;
  KernelBackend& operator=(const KernelBackend&) = delete;

  /// Registry name (`--backend=` spelling).
  const std::string& name() const { return name_; }

  /// y ← A·x. [kernel/spmv]
  void spmv(const linalg::CsrMatrix& a, std::span<const double> x, std::span<double> y) const {
    const StageTimer timer("kernel/spmv");
    do_spmv(a, x, y);
  }

  /// y[i-r0] ← (A·x)[i] for rows [r0, r1) — the shard-owned row slice.
  /// [kernel/spmv]
  void spmv_rows(const linalg::CsrMatrix& a, std::size_t r0, std::size_t r1,
                 std::span<const double> x, std::span<double> y) const {
    const StageTimer timer("kernel/spmv");
    do_spmv_rows(a, r0, r1, x, y);
  }

  /// Σ x_i. Reduction order is backend-defined (verify-tolerance rule).
  /// [kernel/blas1]
  double sum(std::span<const double> x) const {
    const StageTimer timer("kernel/blas1");
    return do_sum(x);
  }

  /// xᵀ·y. Reduction order is backend-defined (verify-tolerance rule).
  /// [kernel/blas1]
  double dot(std::span<const double> x, std::span<const double> y) const {
    const StageTimer timer("kernel/blas1");
    return do_dot(x, y);
  }

  /// y ← a·x + y. [kernel/blas1]
  void axpy(double a, std::span<const double> x, std::span<double> y) const {
    const StageTimer timer("kernel/blas1");
    do_axpy(a, x, y);
  }

  /// z ← x + a·y (out-of-place). [kernel/blas1]
  void xpay(std::span<const double> x, double a, std::span<const double> y,
            std::span<double> z) const {
    const StageTimer timer("kernel/blas1");
    do_xpay(x, a, y, z);
  }

  /// x ← a·x. [kernel/blas1]
  void scale(double a, std::span<double> x) const {
    const StageTimer timer("kernel/blas1");
    do_scale(a, x);
  }

  /// C (+)= A×B for raw row-major panels: A is rows×k with leading dimension
  /// lda, B is k×cols with leading dimension ldb, C is rows×cols with leading
  /// dimension ldc. The i-k-j streaming order (per-element k-ascending sums)
  /// is part of the contract: results are bitwise backend-independent. Callers
  /// pre-offset the pointers to the panel/tile origin, which is how one kernel
  /// serves Matrix panels, NVM-arena accumulators and shard tiles alike.
  /// [kernel/gemm]
  void gemm_tile(const double* a, std::size_t lda, const double* b, std::size_t ldb,
                 std::size_t rows, std::size_t cols, std::size_t k, double* c, std::size_t ldc,
                 bool accumulate) const {
    const StageTimer timer("kernel/gemm");
    do_gemm_tile(a, lda, b, ldb, rows, cols, k, c, ldc, accumulate);
  }

  /// out ← Σ_s panels[s], a rows×cols region per panel with shared leading
  /// dimension ld (out uses ldo). Per-element panel order is s-ascending:
  /// bitwise backend-independent (the MM "addition loop"). [kernel/gemm]
  void panel_sum(const double* const* panels, std::size_t count, std::size_t rows,
                 std::size_t cols, std::size_t ld, double* out, std::size_t ldo) const {
    const StageTimer timer("kernel/gemm");
    do_panel_sum(panels, count, rows, cols, ld, out, ldo);
  }

  /// Executes xs lookups [begin, end) of stream `rng`, accumulating into
  /// macro[kChannels]/counters[kChannels] and mirroring the running lookup in
  /// *index. Must reproduce the serial accumulation + tally order bit-exactly
  /// (tally_select reads the running macro accumulator). Untimed here — the
  /// kernel/xs stage lives at the interval-level call sites.
  void xs_range(const mc::XsDataHost& data, const CounterRng& rng, std::uint64_t begin,
                std::uint64_t end, double* macro, std::uint64_t* counters,
                std::uint64_t* index) const {
    do_xs_range(data, rng, begin, end, macro, counters, index);
  }

 protected:
  virtual void do_spmv(const linalg::CsrMatrix& a, std::span<const double> x,
                       std::span<double> y) const = 0;
  virtual void do_spmv_rows(const linalg::CsrMatrix& a, std::size_t r0, std::size_t r1,
                            std::span<const double> x, std::span<double> y) const = 0;
  virtual double do_sum(std::span<const double> x) const = 0;
  virtual double do_dot(std::span<const double> x, std::span<const double> y) const = 0;
  virtual void do_axpy(double a, std::span<const double> x, std::span<double> y) const = 0;
  virtual void do_xpay(std::span<const double> x, double a, std::span<const double> y,
                       std::span<double> z) const = 0;
  virtual void do_scale(double a, std::span<double> x) const = 0;
  virtual void do_gemm_tile(const double* a, std::size_t lda, const double* b, std::size_t ldb,
                            std::size_t rows, std::size_t cols, std::size_t k, double* c,
                            std::size_t ldc, bool accumulate) const = 0;
  virtual void do_panel_sum(const double* const* panels, std::size_t count, std::size_t rows,
                            std::size_t cols, std::size_t ld, double* out,
                            std::size_t ldo) const = 0;
  virtual void do_xs_range(const mc::XsDataHost& data, const CounterRng& rng,
                           std::uint64_t begin, std::uint64_t end, double* macro,
                           std::uint64_t* counters, std::uint64_t* index) const = 0;

 private:
  std::string name_;
};

/// The always-available serial backend (the process default: any thread with
/// no KernelBackendBind computes here).
const KernelBackend& serial_kernel_backend();

/// Registry lookup by `--backend=` name; nullptr when the backend is not
/// registered (e.g. `omp` in a build without -DADCC_OPENMP=ON).
const KernelBackend* find_kernel_backend(std::string_view name);

/// Like find_kernel_backend but throws a std::runtime_error naming the built
/// backends on an unknown name — the clean failure path for CLI/deck input.
const KernelBackend& kernel_backend(std::string_view name);

/// Registered backend names, in registration order (serial first).
std::vector<std::string> kernel_backend_names();

/// The calling thread's bound backend, or the serial default when unbound.
const KernelBackend& active_kernel_backend();

/// RAII thread binding, mirroring TelemetryBind: installs `backend` (nullptr =
/// the serial default) as the calling thread's active backend and restores the
/// previous binding on exit. Bindings nest; ScenarioRunner installs the
/// scenario's backend around each repetition, so verify passes and baseline
/// runs outside the bind always compute serially.
class KernelBackendBind {
 public:
  explicit KernelBackendBind(const KernelBackend* backend);
  ~KernelBackendBind();

  KernelBackendBind(const KernelBackendBind&) = delete;
  KernelBackendBind& operator=(const KernelBackendBind&) = delete;

 private:
  const KernelBackend* saved_;
};

/// Registers a backend instance under its name() for the process lifetime;
/// define one static registrar per backend translation unit (the OBJECT
/// library keeps it alive in every binary, like ADCC_REGISTER_WORKLOAD).
struct KernelBackendRegistrar {
  explicit KernelBackendRegistrar(const KernelBackend& backend);
};

}  // namespace adcc::core
