// Scoped OpenMP thread-count control for sweep cells and benchmarks.
//
// The sweep's `threads` axis must not leak: a deck like `threads=8+1` sets the
// OpenMP runtime's max-threads level per cell, and anything that follows the
// deck (verify replays, later decks in the same process, the CLI's final
// single run) must see the value that was in effect before. ScopedOmpThreads
// is the only sanctioned way to apply a thread request — construction applies,
// destruction restores, scopes nest.
//
// Builds without -DADCC_OPENMP=ON have no OpenMP runtime; the scope then only
// maintains requested_kernel_threads() (the observable used by tests), so the
// `threads` axis parses and sweeps everywhere but changes compute nowhere.
#pragma once

namespace adcc::core {

/// The innermost ScopedOmpThreads request on this thread, or 0 when no scope
/// is active (i.e. the ambient/default thread count applies). Observable in
/// every build; the regression tests assert restore-on-exit through it.
int requested_kernel_threads();

/// RAII thread-count overlay: applies `threads` to the OpenMP runtime (when
/// built with ADCC_OPENMP) and to requested_kernel_threads(), restoring both
/// on destruction. `threads <= 0` means "no request" — the scope is inert and
/// the ambient value stays in effect.
class ScopedOmpThreads {
 public:
  explicit ScopedOmpThreads(int threads);
  ~ScopedOmpThreads();

  ScopedOmpThreads(const ScopedOmpThreads&) = delete;
  ScopedOmpThreads& operator=(const ScopedOmpThreads&) = delete;

 private:
  int saved_request_;
  int saved_omp_max_;  ///< omp_get_max_threads at entry (unused without OMP).
  bool active_;
};

}  // namespace adcc::core
