#include "kernels/threads.hpp"

#ifdef ADCC_OPENMP
#include <omp.h>
#endif

namespace adcc::core {

namespace {
thread_local int t_requested = 0;
}  // namespace

int requested_kernel_threads() { return t_requested; }

ScopedOmpThreads::ScopedOmpThreads(int threads)
    : saved_request_(t_requested), saved_omp_max_(0), active_(threads > 0) {
  if (!active_) return;
  t_requested = threads;
#ifdef ADCC_OPENMP
  saved_omp_max_ = omp_get_max_threads();
  omp_set_num_threads(threads);
#endif
}

ScopedOmpThreads::~ScopedOmpThreads() {
  if (!active_) return;
  t_requested = saved_request_;
#ifdef ADCC_OPENMP
  omp_set_num_threads(saved_omp_max_);
#endif
}

}  // namespace adcc::core
