// The OpenMP backend (registered only under -DADCC_OPENMP=ON; this file is
// excluded from the build otherwise). Parallelization never changes what a
// sweep measures relative to serial beyond timing:
//
//   * spmv / spmv_rows / gemm_tile / panel_sum / axpy / xpay / scale keep each
//     output element's accumulation order serial-identical (threads split
//     whole rows / whole elements), so results are bitwise equal to the
//     serial backend at any thread count.
//   * sum / dot use an OpenMP reduction — re-associated, covered by the
//     workloads' verify tolerances.
//   * xs_range splits each span into batches: the pure per-lookup work
//     (sample + grid search + interpolation) runs in parallel into a scratch
//     table, then one sequential drain replays the order-dependent part
//     (macro accumulation, CDF tally, counter update) exactly as serial.
//
// Thresholds mirror the pre-backend pragmas: spmv parallelizes from 4096 rows,
// BLAS-1 from 1<<14 elements, xs batching from 64 lookups — below them the
// serial loop wins and fault-injection call sites (single-lookup spans) skip
// the batch machinery entirely.
#include <omp.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "kernels/backend.hpp"
#include "linalg/csr.hpp"
#include "mc/xs_kernel.hpp"

namespace adcc::core {

namespace {

constexpr std::size_t kBlas1Threshold = 1u << 14;
constexpr std::size_t kSpmvThreshold = 4096;
constexpr std::size_t kGemmTile = 256;       ///< C-row scratch tile width (doubles).
constexpr std::uint64_t kXsBatch = 512;      ///< Lookups precomputed per drain.
constexpr std::uint64_t kXsThreshold = 64;   ///< Below this, plain serial loop.

class OmpBackend final : public KernelBackend {
 public:
  OmpBackend() : KernelBackend("omp") {}

 protected:
  void do_spmv(const linalg::CsrMatrix& a, std::span<const double> x,
               std::span<double> y) const override {
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto values = a.values();
    const std::size_t n = a.rows();
#pragma omp parallel for schedule(static) if (n >= kSpmvThreshold)
    for (std::size_t r = 0; r < n; ++r) {
      double acc = 0.0;
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        acc += values[k] * x[col_idx[k]];
      }
      y[r] = acc;
    }
  }

  void do_spmv_rows(const linalg::CsrMatrix& a, std::size_t r0, std::size_t r1,
                    std::span<const double> x, std::span<double> y) const override {
    const auto row_ptr = a.row_ptr();
    const auto col_idx = a.col_idx();
    const auto values = a.values();
#pragma omp parallel for schedule(static) if (r1 - r0 >= kSpmvThreshold)
    for (std::size_t r = r0; r < r1; ++r) {
      double acc = 0.0;
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        acc += values[k] * x[col_idx[k]];
      }
      y[r - r0] = acc;
    }
  }

  double do_sum(std::span<const double> x) const override {
    double s = 0.0;
    const std::size_t n = x.size();
#pragma omp parallel for reduction(+ : s) if (n >= kBlas1Threshold)
    for (std::size_t i = 0; i < n; ++i) s += x[i];
    return s;
  }

  double do_dot(std::span<const double> x, std::span<const double> y) const override {
    double s = 0.0;
    const std::size_t n = x.size();
#pragma omp parallel for reduction(+ : s) if (n >= kBlas1Threshold)
    for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
    return s;
  }

  void do_axpy(double a, std::span<const double> x, std::span<double> y) const override {
    const std::size_t n = x.size();
#pragma omp parallel for if (n >= kBlas1Threshold)
    for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
  }

  void do_xpay(std::span<const double> x, double a, std::span<const double> y,
               std::span<double> z) const override {
    const std::size_t n = x.size();
#pragma omp parallel for if (n >= kBlas1Threshold)
    for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + a * y[i];
  }

  void do_scale(double a, std::span<double> x) const override {
    const std::size_t n = x.size();
#pragma omp parallel for if (n >= kBlas1Threshold)
    for (std::size_t i = 0; i < n; ++i) x[i] *= a;
  }

  void do_gemm_tile(const double* a, std::size_t lda, const double* b, std::size_t ldb,
                    std::size_t rows, std::size_t cols, std::size_t k, double* c, std::size_t ldc,
                    bool accumulate) const override {
    // Parallel over C rows; per row, j-tiles accumulate in a stack scratch so
    // the hot inner loop streams one cache-resident strip of C. Per element
    // the kk order is serial-identical (ascending), so output is bitwise
    // equal to the serial backend.
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < rows; ++i) {
      const double* ai = a + i * lda;
      double* ci = c + i * ldc;
      double scratch[kGemmTile];
      for (std::size_t j0 = 0; j0 < cols; j0 += kGemmTile) {
        const std::size_t jn = cols - j0 < kGemmTile ? cols - j0 : kGemmTile;
        if (accumulate) {
          std::memcpy(scratch, ci + j0, jn * sizeof(double));
        } else {
          std::memset(scratch, 0, jn * sizeof(double));
        }
        for (std::size_t kk = 0; kk < k; ++kk) {
          const double aik = ai[kk];
          const double* brow = b + kk * ldb + j0;
          for (std::size_t j = 0; j < jn; ++j) scratch[j] += aik * brow[j];
        }
        std::memcpy(ci + j0, scratch, jn * sizeof(double));
      }
    }
  }

  void do_panel_sum(const double* const* panels, std::size_t count, std::size_t rows,
                    std::size_t cols, std::size_t ld, double* out, std::size_t ldo) const override {
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < rows; ++i) {
      double* oi = out + i * ldo;
      for (std::size_t j = 0; j < cols; ++j) oi[j] = 0.0;
      for (std::size_t s = 0; s < count; ++s) {
        const double* pi = panels[s] + i * ld;
        for (std::size_t j = 0; j < cols; ++j) oi[j] += pi[j];
      }
    }
  }

  void do_xs_range(const mc::XsDataHost& data, const CounterRng& rng, std::uint64_t begin,
                   std::uint64_t end, double* macro, std::uint64_t* counters,
                   std::uint64_t* index) const override {
    if (end - begin < kXsThreshold) {
      serial_xs(data, rng, begin, end, macro, counters, index);
      return;
    }
    std::vector<double> locals(kXsBatch * mc::kChannels);
    for (std::uint64_t b0 = begin; b0 < end; b0 += kXsBatch) {
      const std::uint64_t bn = end - b0 < kXsBatch ? end - b0 : kXsBatch;
      // Pure phase: every lookup's per-channel contribution, in parallel.
#pragma omp parallel for schedule(static)
      for (std::uint64_t o = 0; o < bn; ++o) {
        const mc::LookupSample s = mc::sample_lookup(rng, b0 + o, data);
        mc::macro_lookup(data, s.energy, s.material, locals.data() + o * mc::kChannels);
      }
      // Order-dependent phase: drain sequentially — tally_select reads the
      // running macro accumulator, so this must replay serial order exactly.
      for (std::uint64_t o = 0; o < bn; ++o) {
        *index = b0 + o;
        const double* local = locals.data() + o * mc::kChannels;
        for (int c = 0; c < mc::kChannels; ++c) macro[c] += local[c];
        const int type = mc::tally_select(macro, rng.uniform(b0 + o, /*lane=*/2));
        counters[static_cast<std::size_t>(type)] += 1;
      }
    }
  }

 private:
  static void serial_xs(const mc::XsDataHost& data, const CounterRng& rng, std::uint64_t begin,
                        std::uint64_t end, double* macro, std::uint64_t* counters,
                        std::uint64_t* index) {
    for (std::uint64_t i = begin; i < end; ++i) {
      *index = i;
      const mc::LookupSample s = mc::sample_lookup(rng, i, data);
      double local[mc::kChannels];
      mc::macro_lookup(data, s.energy, s.material, local);
      for (int c = 0; c < mc::kChannels; ++c) macro[c] += local[c];
      const int type = mc::tally_select(macro, rng.uniform(i, /*lane=*/2));
      counters[static_cast<std::size_t>(type)] += 1;
    }
  }
};

const OmpBackend omp_backend;
const KernelBackendRegistrar omp_registrar(omp_backend);

}  // namespace

}  // namespace adcc::core
