#include "memsim/memsim.hpp"

#include <cstring>

#include "common/check.hpp"

namespace adcc::memsim {

MemorySimulator::MemorySimulator(const CacheConfig& cfg) : cache_(cfg) {}

RegionId MemorySimulator::register_region(std::string name, void* base, std::size_t bytes,
                                          bool read_only) {
  ADCC_CHECK(base != nullptr && bytes > 0, "region must be non-empty");
  const auto addr = reinterpret_cast<std::uintptr_t>(base);
  ADCC_CHECK(addr % kCacheLine == 0, "regions must be cache-line aligned (use AlignedArray)");
  // Reject overlap with any active region.
  for (const Region& r : regions_) {
    if (!r.active) continue;
    const bool disjoint = addr + bytes <= r.base || r.base + r.bytes <= addr;
    ADCC_CHECK(disjoint, "regions must not overlap");
  }
  Region r;
  r.name = std::move(name);
  r.base = addr;
  r.bytes = bytes;
  r.read_only = read_only;
  if (!read_only) {
    r.durable = AlignedBuffer(bytes);
    std::memcpy(r.durable.data(), base, bytes);
  }
  regions_.push_back(std::move(r));
  const RegionId id = regions_.size() - 1;
  by_base_[addr] = id;
  return id;
}

void MemorySimulator::unregister_region(RegionId id) {
  ADCC_CHECK(id < regions_.size() && regions_[id].active, "unknown region");
  by_base_.erase(regions_[id].base);
  regions_[id].active = false;
  regions_[id].durable = AlignedBuffer();
}

std::size_t MemorySimulator::num_regions() const {
  std::size_t n = 0;
  for (const Region& r : regions_) {
    if (r.active) ++n;
  }
  return n;
}

MemorySimulator::Region* MemorySimulator::region_of(std::uintptr_t addr) {
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) return nullptr;
  --it;
  Region& r = regions_[it->second];
  if (!r.active || addr < r.base || addr >= r.base + r.bytes) return nullptr;
  return &r;
}

const MemorySimulator::Region* MemorySimulator::region_of(std::uintptr_t addr) const {
  return const_cast<MemorySimulator*>(this)->region_of(addr);
}

void MemorySimulator::writeback_line(std::uintptr_t line_addr) {
  Region* r = region_of(line_addr);
  if (r == nullptr || r->read_only) return;
  // Clip the 64B line to the region (regions are line-aligned; the final line
  // may be partially owned if bytes is not a line multiple).
  const std::uintptr_t begin = line_addr;
  const std::uintptr_t end = std::min(line_addr + kCacheLine, r->base + r->bytes);
  const std::size_t off = begin - r->base;
  std::memcpy(r->durable.data() + off, reinterpret_cast<const void*>(begin), end - begin);
  ++stats_.writebacks;
}

void MemorySimulator::account_access(std::uintptr_t addr, std::size_t bytes, bool is_write) {
  const std::uintptr_t first = addr & ~static_cast<std::uintptr_t>(kCacheLine - 1);
  const std::uintptr_t last =
      (addr + bytes - 1) & ~static_cast<std::uintptr_t>(kCacheLine - 1);
  for (std::uintptr_t line = first; line <= last; line += kCacheLine) {
    ++stats_.lines_touched;
    const AccessResult res = cache_.access(line, is_write);
    if (res.evicted && res.evicted_dirty) writeback_line(res.evicted_line);
  }
}

void MemorySimulator::maybe_crash_on_access() {
  if (scheduler_.on_access(stats_.accesses())) {
    crash();
    throw CrashException("<access-trigger>", stats_.accesses());
  }
}

void MemorySimulator::on_read(const void* p, std::size_t bytes) {
  if (bytes == 0 || crashed_) return;
  ++stats_.reads;
  account_access(reinterpret_cast<std::uintptr_t>(p), bytes, /*is_write=*/false);
  maybe_crash_on_access();
}

void MemorySimulator::on_write(void* p, std::size_t bytes) {
  if (bytes == 0 || crashed_) return;
  ++stats_.writes;
  account_access(reinterpret_cast<std::uintptr_t>(p), bytes, /*is_write=*/true);
  maybe_crash_on_access();
}

void MemorySimulator::clflush(const void* p, std::size_t bytes) {
  if (bytes == 0 || crashed_) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = addr & ~static_cast<std::uintptr_t>(kCacheLine - 1);
  const std::uintptr_t last =
      (addr + bytes - 1) & ~static_cast<std::uintptr_t>(kCacheLine - 1);
  for (std::uintptr_t line = first; line <= last; line += kCacheLine) {
    ++stats_.flush_lines;
    if (cache_.flush_line(line)) {
      writeback_line(line);
      ++stats_.flush_writebacks;
    }
  }
}

void MemorySimulator::sfence() { ++stats_.fences; }

void MemorySimulator::crash_point(const std::string& name) {
  ++stats_.crash_points;
  if (scheduler_.on_point(name)) {
    crash();
    throw CrashException(name, stats_.accesses());
  }
}

void MemorySimulator::crash() {
  crash_census_ = dirty_line_census();  // Record what is about to die.
  cache_.invalidate_all();  // Dirty lines die with the cache: NVM keeps stale bytes.
  crashed_ = true;
}

void MemorySimulator::restore_region(RegionId id) {
  ADCC_CHECK(id < regions_.size() && regions_[id].active, "unknown region");
  Region& r = regions_[id];
  if (r.read_only) return;  // Live bytes were never diverged for RO regions.
  std::memcpy(reinterpret_cast<void*>(r.base), r.durable.data(), r.bytes);
}

void MemorySimulator::restore_all() {
  for (RegionId id = 0; id < regions_.size(); ++id) {
    if (regions_[id].active) restore_region(id);
  }
}

void MemorySimulator::durable_read(const void* p, void* out, std::size_t bytes) const {
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const Region* r = region_of(addr);
  ADCC_CHECK(r != nullptr, "durable_read outside any tracked region");
  ADCC_CHECK(addr + bytes <= r->base + r->bytes, "durable_read crosses region end");
  if (r->read_only) {
    std::memcpy(out, p, bytes);
    return;
  }
  std::memcpy(out, r->durable.data() + (addr - r->base), bytes);
}

bool MemorySimulator::line_dirty(const void* p) const {
  return cache_.dirty(line_of(p));
}

void MemorySimulator::drain() {
  for (const std::uintptr_t line : cache_.dirty_lines()) {
    writeback_line(line);
    cache_.flush_line(line);
  }
}

void MemorySimulator::reset_after_crash() {
  cache_.invalidate_all();
  scheduler_.disarm();
  crashed_ = false;
}

std::vector<MemorySimulator::RegionCensus> MemorySimulator::dirty_line_census() const {
  std::vector<RegionCensus> out;
  std::vector<std::size_t> index_of_region(regions_.size(), 0);
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (!regions_[i].active) continue;
    index_of_region[i] = out.size();
    out.push_back({regions_[i].name, lines_spanned(reinterpret_cast<void*>(regions_[i].base),
                                                   regions_[i].bytes),
                   0});
  }
  for (const std::uintptr_t line : cache_.dirty_lines()) {
    const Region* r = region_of(line);
    if (r == nullptr) continue;
    const std::size_t ri = static_cast<std::size_t>(r - regions_.data());
    ++out[index_of_region[ri]].dirty_lines;
  }
  return out;
}

void MemorySimulator::reset_stats() {
  stats_ = {};
  cache_.reset_stats();
}

}  // namespace adcc::memsim
