#include "memsim/cache.hpp"

#include <bit>

#include "common/check.hpp"

namespace adcc::memsim {

SetAssocCache::SetAssocCache(const CacheConfig& cfg) : cfg_(cfg), sets_(cfg.num_sets()) {
  ADCC_CHECK(cfg_.line_bytes == kCacheLine, "only 64B lines are supported");
  ADCC_CHECK(cfg_.ways >= 1, "associativity must be >= 1");
  ADCC_CHECK(sets_ >= 1, "cache must have at least one set");
  ADCC_CHECK(std::has_single_bit(sets_), "number of sets must be a power of two");
  entries_.resize(sets_ * cfg_.ways);
}

std::size_t SetAssocCache::set_index(std::uintptr_t line_addr) const {
  // Mix the line number so regions allocated contiguously do not all collide in
  // the low sets; deterministic across runs.
  const std::uint64_t line_no = line_addr / cfg_.line_bytes;
  const std::uint64_t mixed = line_no ^ (line_no >> 17) * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(mixed) & (sets_ - 1);
}

SetAssocCache::Entry* SetAssocCache::find(std::uintptr_t line_addr) {
  Entry* base = entries_.data() + set_index(line_addr) * cfg_.ways;
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].tag == line_addr) return &base[w];
  }
  return nullptr;
}

const SetAssocCache::Entry* SetAssocCache::find(std::uintptr_t line_addr) const {
  return const_cast<SetAssocCache*>(this)->find(line_addr);
}

AccessResult SetAssocCache::access(std::uintptr_t line_addr, bool is_write) {
  ADCC_DCHECK(line_addr % cfg_.line_bytes == 0, "access address must be line-aligned");
  ++tick_;
  AccessResult res;
  if (Entry* e = find(line_addr)) {
    e->lru = tick_;
    e->dirty = e->dirty || is_write;
    res.hit = true;
    ++stats_.hits;
    return res;
  }
  ++stats_.misses;
  // Miss: pick an invalid way, else the LRU way.
  Entry* base = entries_.data() + set_index(line_addr) * cfg_.ways;
  Entry* victim = nullptr;
  for (std::size_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].tag == 0) {
      victim = &base[w];
      break;
    }
    if (victim == nullptr || base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->tag != 0) {
    res.evicted = true;
    res.evicted_line = victim->tag;
    res.evicted_dirty = victim->dirty;
    ++stats_.evictions;
    if (victim->dirty) ++stats_.dirty_evictions;
  }
  victim->tag = line_addr;
  victim->lru = tick_;
  victim->dirty = is_write;
  return res;
}

bool SetAssocCache::flush_line(std::uintptr_t line_addr) {
  ++stats_.flushes;
  if (Entry* e = find(line_addr)) {
    const bool was_dirty = e->dirty;
    e->tag = 0;
    e->dirty = false;
    e->lru = 0;
    if (was_dirty) ++stats_.dirty_flushes;
    return was_dirty;
  }
  return false;
}

bool SetAssocCache::contains(std::uintptr_t line_addr) const { return find(line_addr) != nullptr; }

bool SetAssocCache::dirty(std::uintptr_t line_addr) const {
  const Entry* e = find(line_addr);
  return e != nullptr && e->dirty;
}

void SetAssocCache::invalidate_all() {
  for (Entry& e : entries_) e = {};
}

std::vector<std::uintptr_t> SetAssocCache::dirty_lines() const {
  std::vector<std::uintptr_t> out;
  for (const Entry& e : entries_) {
    if (e.tag != 0 && e.dirty) out.push_back(e.tag);
  }
  return out;
}

std::size_t SetAssocCache::resident() const {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (e.tag != 0) ++n;
  }
  return n;
}

}  // namespace adcc::memsim
