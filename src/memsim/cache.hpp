// Set-associative write-back LRU cache model.
//
// This is the cache the paper's PIN-based "crash emulator" models: the point is
// not timing but *which lines are dirty in the cache when the machine dies*.
// The model is line-granular: a line is identified by its aligned address in
// the host process (the simulated application operates on real host memory).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/align.hpp"

namespace adcc::memsim {

struct CacheConfig {
  std::size_t size_bytes = 8u << 20;  ///< Total capacity (default 8 MB: Xeon E5606 LLC).
  std::size_t ways = 16;              ///< Associativity.
  std::size_t line_bytes = kCacheLine;

  std::size_t num_sets() const { return size_bytes / (ways * line_bytes); }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;
  std::uint64_t flushes = 0;        ///< flush_line calls.
  std::uint64_t dirty_flushes = 0;  ///< flush_line calls that wrote back a dirty line.
};

/// Result of one access: whether it hit, and the line evicted to make room (if
/// any) together with its dirty bit.
struct AccessResult {
  bool hit = false;
  bool evicted = false;
  std::uintptr_t evicted_line = 0;
  bool evicted_dirty = false;
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Touches the line containing `line_addr` (must be line-aligned).
  AccessResult access(std::uintptr_t line_addr, bool is_write);

  /// CLFLUSH semantics: if resident, invalidate; returns whether the line was
  /// resident and dirty (caller must then write it back). Flushing an absent
  /// line is a no-op (NVM already holds its latest value in a write-back
  /// hierarchy where every store was announced to the model).
  bool flush_line(std::uintptr_t line_addr);

  /// True if the line is currently resident.
  bool contains(std::uintptr_t line_addr) const;
  /// True if resident and dirty.
  bool dirty(std::uintptr_t line_addr) const;

  /// Drops all cache state *without* write-back: this is the crash.
  void invalidate_all();

  /// Enumerates all resident dirty lines (diagnostics / drain).
  std::vector<std::uintptr_t> dirty_lines() const;

  /// Number of resident lines.
  std::size_t resident() const;

  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Entry {
    std::uintptr_t tag = 0;  ///< Full line address; 0 = invalid.
    std::uint64_t lru = 0;
    bool dirty = false;
  };

  std::size_t set_index(std::uintptr_t line_addr) const;
  Entry* find(std::uintptr_t line_addr);
  const Entry* find(std::uintptr_t line_addr) const;

  CacheConfig cfg_;
  std::size_t sets_;
  std::vector<Entry> entries_;  ///< sets_ * ways, set-major.
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace adcc::memsim
