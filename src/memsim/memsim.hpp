// MemorySimulator — the reproduction of the paper's PIN-based crash emulator.
//
// The simulated application runs on ordinary host memory (the *live* image:
// this is what "CPU + cache + NVM" together present to the program). Every
// load/store to a registered region is announced to the simulator, which
// drives a set-associative write-back LRU cache model. For every region the
// simulator additionally keeps a *durable* image: the bytes NVM would hold.
//
//   - A dirty line is written back (live → durable, 64 B memcpy) when the
//     cache model evicts it, or when the program issues clflush().
//   - crash() discards all cache state without write-back. After a crash the
//     durable image is exactly the NVM content the paper's emulator reports.
//   - Recovery code reads durable bytes (durable_read / restore) — never the
//     live image, which conceptually died with the machine.
//
// The simulator is intentionally single-threaded: crash-state reasoning needs
// a deterministic access interleaving (the paper's PIN tool is sequential for
// the same reason).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/align.hpp"
#include "memsim/cache.hpp"
#include "memsim/crash.hpp"

namespace adcc::memsim {

using RegionId = std::size_t;

struct SimStats {
  std::uint64_t reads = 0;            ///< Notification calls.
  std::uint64_t writes = 0;
  std::uint64_t lines_touched = 0;    ///< Line-granular accesses (the crash-trigger "instruction" count).
  std::uint64_t writebacks = 0;       ///< Dirty lines copied live→durable on eviction.
  std::uint64_t flush_lines = 0;      ///< Lines passed to clflush.
  std::uint64_t flush_writebacks = 0;
  std::uint64_t fences = 0;
  std::uint64_t crash_points = 0;

  std::uint64_t accesses() const { return lines_touched; }
};

class MemorySimulator {
 public:
  explicit MemorySimulator(const CacheConfig& cfg = {});

  MemorySimulator(const MemorySimulator&) = delete;
  MemorySimulator& operator=(const MemorySimulator&) = delete;

  // ---- Region management -------------------------------------------------

  /// Registers [base, base+bytes) for tracking. The durable image is
  /// initialized from the current live bytes (data written before
  /// registration is considered already persistent, like data present at
  /// program start). `read_only` regions keep no separate durable copy.
  RegionId register_region(std::string name, void* base, std::size_t bytes,
                           bool read_only = false);

  /// Forgets a region (its durable image is dropped).
  void unregister_region(RegionId id);

  std::size_t num_regions() const;

  // ---- Access notification (the "PIN hooks") -----------------------------

  /// Announces a read/write of [p, p+bytes). Untracked addresses still occupy
  /// the cache model (they compete for capacity) but have no durable image.
  void on_read(const void* p, std::size_t bytes);
  void on_write(void* p, std::size_t bytes);

  /// CLFLUSH of every line overlapping [p, p+bytes): dirty resident lines are
  /// written back to the durable image, then invalidated.
  void clflush(const void* p, std::size_t bytes);

  /// Store fence. Ordering is implicit in the sequential model; counted for
  /// statistics parity with real persistence code.
  void sfence();

  /// Names a program point; fires the crash if the scheduler says so.
  void crash_point(const std::string& name);

  // ---- Crash & recovery --------------------------------------------------

  CrashScheduler& scheduler() { return scheduler_; }

  /// Simulates power loss: all cache state (including dirty lines) vanishes.
  /// Does NOT throw; crash_point/on_* throw CrashException via the scheduler.
  void crash();

  bool crashed() const { return crashed_; }

  /// Copies the durable image of `id` over its live bytes (recovery reload).
  void restore_region(RegionId id);
  void restore_all();

  /// Reads `bytes` at live address `p` from the durable image (no cache
  /// effects; this is the recovery process inspecting NVM).
  void durable_read(const void* p, void* out, std::size_t bytes) const;

  /// Typed convenience over durable_read.
  template <typename T>
  T durable_value(const T* p) const {
    T v;
    durable_read(p, &v, sizeof(T));
    return v;
  }

  /// True if the line containing p is resident and dirty (i.e. NVM is stale).
  bool line_dirty(const void* p) const;

  /// Writes back every dirty line of every region (an ideal "drain"); used by
  /// tests and by graceful-shutdown paths.
  void drain();

  /// Re-arms the simulator after a crash for the recovery run: cache is empty,
  /// crashed flag cleared, scheduler disarmed.
  void reset_after_crash();

  // ---- Introspection -----------------------------------------------------

  /// Per-region census of cache-resident dirty lines — the paper's emulator
  /// "outputs the values of data in caches and main memory"; this is the
  /// summary view: how much of each region would die if the machine did.
  struct RegionCensus {
    std::string name;
    std::size_t total_lines = 0;
    std::size_t dirty_lines = 0;   ///< Volatile: newer in cache than in NVM.
  };
  std::vector<RegionCensus> dirty_line_census() const;

  /// The census captured at the instant of the last crash() — what the cache
  /// held when the machine died (empty if no crash has happened).
  const std::vector<RegionCensus>& census_at_crash() const { return crash_census_; }

  const SimStats& stats() const { return stats_; }
  const CacheStats& cache_stats() const { return cache_.stats(); }
  void reset_stats();
  const CacheConfig& cache_config() const { return cache_.config(); }

  /// Total accesses so far (the crash-trigger "instruction" counter).
  std::uint64_t access_count() const { return stats_.accesses(); }

 private:
  struct Region {
    std::string name;
    std::uintptr_t base = 0;
    std::size_t bytes = 0;
    bool read_only = false;
    bool active = true;
    AlignedBuffer durable;  ///< Empty for read-only regions.
  };

  /// Region containing address, or nullptr.
  Region* region_of(std::uintptr_t addr);
  const Region* region_of(std::uintptr_t addr) const;

  void writeback_line(std::uintptr_t line_addr);
  void account_access(std::uintptr_t addr, std::size_t bytes, bool is_write);
  void maybe_crash_on_access();

  SetAssocCache cache_;
  CrashScheduler scheduler_;
  std::vector<Region> regions_;
  std::map<std::uintptr_t, RegionId> by_base_;  ///< base → index into regions_.
  SimStats stats_;
  std::vector<RegionCensus> crash_census_;
  bool crashed_ = false;
};

}  // namespace adcc::memsim
