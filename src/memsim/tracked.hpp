// Tracked containers: typed arrays/scalars living in simulator-registered
// memory. They are the instrumentation layer the paper gets from PIN — every
// access performed through these wrappers is announced to the cache model.
//
// Hot kernels may also use raw spans plus explicit touch_read/touch_write
// range notifications (one cache-model access per overlapped line), which is
// exactly the granularity the model operates at.
#pragma once

#include <span>
#include <string>

#include "common/align.hpp"
#include "memsim/memsim.hpp"

namespace adcc::memsim {

/// Fixed-size array of trivially-copyable T registered with a simulator.
template <typename T>
class TrackedArray {
 public:
  TrackedArray() = default;

  TrackedArray(MemorySimulator& sim, std::string name, std::size_t n, bool read_only = false)
      : sim_(&sim), data_(n) {
    if (n > 0) id_ = sim_->register_region(std::move(name), data_.data(), n * sizeof(T), read_only);
  }

  TrackedArray(const TrackedArray&) = delete;
  TrackedArray& operator=(const TrackedArray&) = delete;
  TrackedArray(TrackedArray&&) = delete;
  TrackedArray& operator=(TrackedArray&&) = delete;

  ~TrackedArray() {
    if (sim_ != nullptr && data_.size() > 0) sim_->unregister_region(id_);
  }

  std::size_t size() const { return data_.size(); }

  /// Instrumented element access.
  T read(std::size_t i) const {
    sim_->on_read(&data_[i], sizeof(T));
    return data_[i];
  }
  void write(std::size_t i, const T& v) {
    data_[i] = v;
    sim_->on_write(&data_[i], sizeof(T));
  }

  /// Range notifications for kernels that operate on raw spans.
  void touch_read(std::size_t first, std::size_t count) const {
    if (count > 0) sim_->on_read(&data_[first], count * sizeof(T));
  }
  void touch_write(std::size_t first, std::size_t count) {
    if (count > 0) sim_->on_write(&data_[first], count * sizeof(T));
  }

  /// Flushes the lines covering [first, first+count) (CLFLUSH semantics).
  void flush(std::size_t first, std::size_t count) {
    if (count > 0) sim_->clflush(&data_[first], count * sizeof(T));
  }
  void flush_all() { flush(0, size()); }

  /// The value NVM currently holds for element i (recovery-side view).
  T durable(std::size_t i) const { return sim_->durable_value(&data_[i]); }

  /// Bulk durable read into `out` (size() elements).
  void durable_snapshot(std::span<T> out) const {
    sim_->durable_read(data_.data(), out.data(), size() * sizeof(T));
  }

  /// Reloads live bytes from NVM (what a restarted process would see/mmap).
  void restore() { sim_->restore_region(id_); }

  /// Uninstrumented access to live memory (initialization & verification).
  std::span<T> raw() { return data_.span(); }
  std::span<const T> raw() const { return data_.span(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  MemorySimulator& sim() const { return *sim_; }

 private:
  MemorySimulator* sim_ = nullptr;
  AlignedArray<T> data_;
  RegionId id_ = 0;
};

/// A single tracked value occupying its own cache line (so flushing it never
/// drags neighbours along) — e.g. the paper's loop-index variable.
template <typename T>
class TrackedScalar {
  static_assert(sizeof(T) <= kCacheLine);

 public:
  TrackedScalar(MemorySimulator& sim, std::string name, const T& init = T{})
      : arr_(sim, std::move(name), kCacheLine / sizeof(T)) {
    arr_.raw()[0] = init;
    // The initial value was captured as durable at registration time.
  }

  T get() const { return arr_.read(0); }
  void set(const T& v) { arr_.write(0, v); }

  /// set + clflush: the paper's "flush the cache line containing i".
  void set_and_flush(const T& v) {
    set(v);
    arr_.flush(0, 1);
    arr_.sim().sfence();
  }

  T durable() const { return arr_.durable(0); }
  void restore() { arr_.restore(); }

 private:
  TrackedArray<T> arr_;
};

}  // namespace adcc::memsim
