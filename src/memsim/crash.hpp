// Crash triggering, mirroring the two modes of the paper's crash emulator:
//  (1) crash right after a user-named statement (`crash_point` API), and
//  (2) crash after a given number of memory accesses ("instructions").
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace adcc::memsim {

/// Thrown by the simulator at the crash instant. The volatile cache has
/// already been discarded when this propagates; only durable images survive.
class CrashException : public std::runtime_error {
 public:
  CrashException(std::string point, std::uint64_t access_count)
      : std::runtime_error("simulated crash at '" + point + "' after " +
                           std::to_string(access_count) + " accesses"),
        point_(std::move(point)),
        access_count_(access_count) {}

  const std::string& point() const { return point_; }
  std::uint64_t access_count() const { return access_count_; }

 private:
  std::string point_;
  std::uint64_t access_count_;
};

/// Decides when the crash fires. At most one trigger may be armed.
class CrashScheduler {
 public:
  /// Crash once the total access count reaches `n` (fires on access #n).
  void arm_at_access(std::uint64_t n);

  /// Crash at the `occurrence`-th (1-based) hit of crash_point(`name`).
  void arm_at_point(std::string name, std::uint64_t occurrence = 1);

  void disarm();
  bool armed() const { return mode_ != Mode::kNone; }

  /// Called by the simulator on every access; returns true when the crash
  /// should fire now.
  bool on_access(std::uint64_t total_accesses);

  /// Called by the simulator from crash_point(); returns true when the crash
  /// should fire now.
  bool on_point(const std::string& name);

 private:
  enum class Mode { kNone, kAccess, kPoint };
  Mode mode_ = Mode::kNone;
  std::uint64_t target_access_ = 0;
  std::string point_name_;
  std::uint64_t target_occurrence_ = 0;
  std::uint64_t seen_ = 0;
};

}  // namespace adcc::memsim
