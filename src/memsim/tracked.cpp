// TrackedArray/TrackedScalar are header-only templates; this TU pins explicit
// instantiations of the common type parameters so template errors surface when
// building the library rather than in every client.
#include <cstdint>

#include "memsim/tracked.hpp"

namespace adcc::memsim {

template class TrackedArray<double>;
template class TrackedArray<float>;
template class TrackedArray<std::uint64_t>;
template class TrackedArray<std::int64_t>;

}  // namespace adcc::memsim
