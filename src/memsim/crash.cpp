#include "memsim/crash.hpp"

#include "common/check.hpp"

namespace adcc::memsim {

void CrashScheduler::arm_at_access(std::uint64_t n) {
  ADCC_CHECK(n > 0, "access trigger must be positive");
  mode_ = Mode::kAccess;
  target_access_ = n;
  seen_ = 0;
}

void CrashScheduler::arm_at_point(std::string name, std::uint64_t occurrence) {
  ADCC_CHECK(!name.empty(), "crash point name must be non-empty");
  ADCC_CHECK(occurrence > 0, "occurrence is 1-based");
  mode_ = Mode::kPoint;
  point_name_ = std::move(name);
  target_occurrence_ = occurrence;
  seen_ = 0;
}

void CrashScheduler::disarm() {
  mode_ = Mode::kNone;
  seen_ = 0;
}

bool CrashScheduler::on_access(std::uint64_t total_accesses) {
  return mode_ == Mode::kAccess && total_accesses >= target_access_;
}

bool CrashScheduler::on_point(const std::string& name) {
  if (mode_ != Mode::kPoint || name != point_name_) return false;
  return ++seen_ >= target_occurrence_;
}

}  // namespace adcc::memsim
