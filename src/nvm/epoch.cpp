#include "nvm/epoch.hpp"

#include "common/check.hpp"
#include "nvm/flush.hpp"

namespace adcc::nvm {

void EpochPersister::stage(const void* p, std::size_t bytes) {
  ADCC_CHECK(region_.contains(p), "staged range must be arena memory");
  if (bytes == 0) return;
  staged_.push_back({p, bytes});
  ++stats_.staged_ranges;
}

void EpochPersister::commit_epoch() {
  if (staged_.empty()) return;
  std::size_t lines = 0;
  for (const Range& r : staged_) {
    // CLFLUSHOPT-style weakly-ordered flushes: no fence between ranges.
    flush_range(r.p, r.bytes, FlushInstruction::kClflushopt);
    lines += flush_line_count(r.p, r.bytes);
  }
  store_fence();  // One ordering point per epoch.
  region_.perf_model().charge_flush_lines(lines);
  stats_.lines_flushed += lines;
  ++stats_.epochs;
  staged_.clear();
}

}  // namespace adcc::nvm
