// DramCache — the 32 MB DRAM staging cache of the heterogeneous NVM/DRAM
// system (paper §III-A).
//
// The evaluation-relevant property of the hetero system is its *cost
// structure*: making data durable requires flushing CPU caches AND draining
// the DRAM cache, i.e. an extra copy that runs at NVM bandwidth. We model the
// DRAM cache as a write-back staging buffer: writes land in DRAM at full
// speed; `drain()` (the paper's "DRAM cache flushing (using memory copy)")
// pushes staged bytes through to an NvmRegion at throttled speed. Writes that
// exceed the free staging capacity force a partial drain first, so sustained
// traffic beyond 32 MB runs at NVM speed, as it would on real hardware.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/align.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::nvm {

struct DramCacheStats {
  std::uint64_t staged_bytes = 0;
  std::uint64_t drained_bytes = 0;
  std::uint64_t forced_drains = 0;
};

class DramCache {
 public:
  DramCache(std::size_t capacity_bytes, NvmRegion& backing);

  /// Writes [src, src+bytes) "to NVM through the DRAM cache": the data is
  /// copied into the staging buffer (DRAM speed) and `dst` (arena memory)
  /// remembers where it must land. Data is NOT durable until drain().
  void write(void* dst, const void* src, std::size_t bytes);

  /// Flushes everything staged through to NVM: the second copy, at NVM speed,
  /// plus persist of the destination ranges.
  void drain();

  /// Power failure: staged-but-undrained data is DRAM and dies. Crash
  /// injection calls this so recovery can only see what reached NVM.
  void discard();

  std::size_t capacity() const { return staging_.size(); }
  std::size_t pending() const { return pending_bytes_; }
  const DramCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Pending {
    std::size_t staging_off;
    void* dst;
    std::size_t bytes;
  };

  void drain_locked();

  AlignedBuffer staging_;
  std::size_t staging_used_ = 0;
  std::size_t pending_bytes_ = 0;
  std::vector<Pending> queue_;
  NvmRegion& backing_;
  DramCacheStats stats_;
};

}  // namespace adcc::nvm
