#include "nvm/flush.hpp"

#include <atomic>
#include <cstdint>

#include "common/align.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define ADCC_X86 1
#else
#define ADCC_X86 0
#endif

namespace adcc::nvm {

bool native_flush_available() { return ADCC_X86 != 0; }

namespace {

inline void flush_one(const void* line, FlushInstruction ins) {
#if ADCC_X86
  switch (ins) {
    case FlushInstruction::kClflush:
      _mm_clflush(line);
      break;
    case FlushInstruction::kClflushopt:
      // CLFLUSHOPT requires a CPU flag; CLFLUSH is a safe superset behaviourally.
      _mm_clflush(line);
      break;
    case FlushInstruction::kClwb:
      _mm_clflush(line);
      break;
  }
#else
  (void)line;
  (void)ins;
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace

void flush_range(const void* p, std::size_t bytes, FlushInstruction ins) {
  if (bytes == 0) return;
  const auto addr = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t first = addr & ~static_cast<std::uintptr_t>(kCacheLine - 1);
  const std::uintptr_t last = (addr + bytes - 1) & ~static_cast<std::uintptr_t>(kCacheLine - 1);
  for (std::uintptr_t line = first; line <= last; line += kCacheLine) {
    flush_one(reinterpret_cast<const void*>(line), ins);
  }
}

void store_fence() {
#if ADCC_X86
  _mm_sfence();
#else
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

std::size_t flush_line_count(const void* p, std::size_t bytes) {
  return lines_spanned(p, bytes);
}

}  // namespace adcc::nvm
