#include "nvm/nvm_region.hpp"

#include <cstring>

#include "common/check.hpp"

namespace adcc::nvm {

NvmRegion::NvmRegion(std::size_t bytes, PerfModel& model, std::string name)
    : buf_(round_up(bytes, kCacheLine)), model_(model), name_(std::move(name)) {
  ADCC_CHECK(bytes > 0, "NVM region must be non-empty");
}

void* NvmRegion::allocate_bytes(std::size_t bytes, std::size_t align) {
  const std::size_t a = std::max(align, kCacheLine);
  const std::size_t start = round_up(used_, a);
  ADCC_CHECK(start + bytes <= buf_.size(), "NVM region exhausted");
  used_ = start + round_up(bytes, kCacheLine);
  return buf_.data() + start;
}

void NvmRegion::write_durable(void* dst, const void* src, std::size_t bytes) {
  ADCC_CHECK(contains(dst), "write_durable destination must be arena memory");
  std::memcpy(dst, src, bytes);
  persist(dst, bytes);
  ++stats_.bulk_writes;
  stats_.bulk_bytes += bytes;
}

void NvmRegion::persist(const void* p, std::size_t bytes) {
  ADCC_CHECK(contains(p), "persist target must be arena memory");
  flush_range(p, bytes);
  store_fence();
  const std::size_t lines = flush_line_count(p, bytes);
  model_.charge_flush_lines(lines);
  ++stats_.persist_calls;
  stats_.persisted_bytes += bytes;
  stats_.persisted_lines += lines;
}

bool NvmRegion::contains(const void* p) const {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= buf_.data() && b < buf_.data() + buf_.size();
}

}  // namespace adcc::nvm
