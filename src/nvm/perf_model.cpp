#include "nvm/perf_model.hpp"

#include <cstring>
#include <memory>
#include <vector>

#include "common/align.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"

namespace adcc::nvm {

PerfModel::PerfModel(const PerfConfig& cfg) : cfg_(cfg) {
  ADCC_CHECK(cfg_.bandwidth_slowdown >= 1.0, "NVM cannot be faster than DRAM in this model");
  if (cfg_.dram_bw_bytes_per_s > 0) {
    dram_bw_ = cfg_.dram_bw_bytes_per_s;
  } else if (!cfg_.enabled || cfg_.bandwidth_slowdown <= 1.0) {
    dram_bw_ = 10e9;  // Never charged; skip the costly calibration sweep.
  } else {
    dram_bw_ = calibrate_dram_bandwidth();
  }
  ADCC_CHECK(dram_bw_ > 0, "DRAM bandwidth must be positive");
}

double PerfModel::seconds_per_byte() const {
  if (!cfg_.enabled || cfg_.bandwidth_slowdown <= 1.0) return 0.0;
  return (cfg_.bandwidth_slowdown - 1.0) / dram_bw_;
}

void PerfModel::charge_write(std::size_t bytes) {
  stats_.bytes_written += bytes;
  const double delay = static_cast<double>(bytes) * seconds_per_byte();
  if (delay > 0.0) {
    stats_.injected_seconds += delay;
    spin_for(delay);
  }
}

void PerfModel::charge_flush_lines(std::size_t lines) {
  stats_.lines_flushed += lines;
  double delay = static_cast<double>(lines * kCacheLine) * seconds_per_byte();
  if (cfg_.enabled) delay += static_cast<double>(lines) * cfg_.flush_latency_ns * 1e-9;
  if (delay > 0.0) {
    stats_.injected_seconds += delay;
    spin_for(delay);
  }
}

double PerfModel::calibrate_dram_bandwidth() {
  // Copy 32 MB back and forth a few times; take the best rate (least noisy).
  constexpr std::size_t kBytes = 32u << 20;
  AlignedBuffer src(kBytes);
  AlignedBuffer dst(kBytes);
  std::memset(src.data(), 0x5A, kBytes);
  double best = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    Timer t;
    std::memcpy(dst.data(), src.data(), kBytes);
    std::memcpy(src.data(), dst.data(), kBytes);
    const double secs = t.elapsed();
    if (secs > 0) best = std::max(best, 2.0 * static_cast<double>(kBytes) / secs);
  }
  return best > 0 ? best : 10e9;  // Fallback: assume 10 GB/s.
}

namespace {
std::unique_ptr<PerfModel> g_default;
}  // namespace

PerfModel& default_perf_model() {
  if (!g_default) g_default = std::make_unique<PerfModel>();
  return *g_default;
}

void set_default_perf_model(const PerfConfig& cfg) {
  g_default = std::make_unique<PerfModel>(cfg);
}

}  // namespace adcc::nvm
