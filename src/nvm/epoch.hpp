// Epoch-batched persistence (paper related work: Pelley et al. memory
// persistency, Joshi et al. persist barriers).
//
// Instead of flush+fence per range (the paper's CLFLUSH discipline), an
// EpochPersister *stages* ranges and issues all flushes followed by a single
// fence at the epoch boundary. Within an epoch persists may reorder; across
// epochs they are ordered — the buffered epoch persistency model. The paper
// notes such schemes are "complementary to our work to improve the
// performance of cache flushing (especially for ... ABFT for matrix
// multiplication)"; bench/micro_primitives quantifies the saving.
#pragma once

#include <cstdint>
#include <vector>

#include "nvm/nvm_region.hpp"

namespace adcc::nvm {

struct EpochStats {
  std::uint64_t staged_ranges = 0;
  std::uint64_t epochs = 0;
  std::uint64_t lines_flushed = 0;
};

class EpochPersister {
 public:
  explicit EpochPersister(NvmRegion& region) : region_(region) {}

  /// Registers [p, p+bytes) (arena memory) for persistence at the next epoch
  /// boundary. The data is NOT durable until commit_epoch() returns.
  void stage(const void* p, std::size_t bytes);

  /// Flushes every staged range, then issues one fence; charges the region's
  /// perf model for the flushed lines. Empty epochs are free.
  void commit_epoch();

  std::size_t pending() const { return staged_.size(); }
  const EpochStats& stats() const { return stats_; }

  /// Any staged-but-uncommitted ranges are NOT persisted; destruction without
  /// commit models a crash inside an epoch (the epoch never happened).
  ~EpochPersister() = default;

 private:
  struct Range {
    const void* p;
    std::size_t bytes;
  };
  NvmRegion& region_;
  std::vector<Range> staged_;
  EpochStats stats_;
};

}  // namespace adcc::nvm
