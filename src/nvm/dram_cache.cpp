#include "nvm/dram_cache.hpp"

#include <cstring>

#include "common/check.hpp"

namespace adcc::nvm {

DramCache::DramCache(std::size_t capacity_bytes, NvmRegion& backing)
    : staging_(capacity_bytes), backing_(backing) {
  ADCC_CHECK(capacity_bytes >= kCacheLine, "DRAM cache must hold at least one line");
}

void DramCache::write(void* dst, const void* src, std::size_t bytes) {
  ADCC_CHECK(backing_.contains(dst), "DramCache::write destination must be NVM arena memory");
  std::size_t done = 0;
  while (done < bytes) {
    if (staging_used_ == staging_.size()) {
      ++stats_.forced_drains;
      drain_locked();
    }
    const std::size_t chunk = std::min(bytes - done, staging_.size() - staging_used_);
    std::memcpy(staging_.data() + staging_used_, static_cast<const std::byte*>(src) + done, chunk);
    queue_.push_back({staging_used_, static_cast<std::byte*>(dst) + done, chunk});
    staging_used_ += chunk;
    pending_bytes_ += chunk;
    stats_.staged_bytes += chunk;
    done += chunk;
  }
}

void DramCache::drain() { drain_locked(); }

void DramCache::discard() {
  queue_.clear();
  staging_used_ = 0;
  pending_bytes_ = 0;
}

void DramCache::drain_locked() {
  for (const Pending& p : queue_) {
    // The second copy: staging → NVM, at NVM speed (write_durable charges the
    // perf model and flushes the destination lines).
    backing_.write_durable(p.dst, staging_.data() + p.staging_off, p.bytes);
    stats_.drained_bytes += p.bytes;
  }
  queue_.clear();
  staging_used_ = 0;
  pending_bytes_ = 0;
}

}  // namespace adcc::nvm
