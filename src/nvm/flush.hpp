// Native cache-flush and fence primitives (the persistence ISA extensions).
//
// The paper uses CLFLUSH, the most widely available flush instruction, and
// discusses CLFLUSHOPT/CLWB as future improvements. On x86-64 we emit the real
// instructions; elsewhere a portable compiler-barrier fallback keeps the code
// path exercised (costs are then modelled purely by nvm::PerfModel).
#pragma once

#include <cstddef>

namespace adcc::nvm {

enum class FlushInstruction {
  kClflush,     ///< Serializing flush (paper's choice).
  kClflushopt,  ///< Weakly-ordered flush (paper: "should further improve performance").
  kClwb,        ///< Write-back without invalidate.
};

/// True if this build can execute real flush instructions.
bool native_flush_available();

/// Flushes every cache line overlapping [p, p+bytes) with `ins`.
void flush_range(const void* p, std::size_t bytes, FlushInstruction ins = FlushInstruction::kClflush);

/// Store fence ordering flushed lines before subsequent stores.
void store_fence();

/// Number of cache lines flush_range would touch for [p, p+bytes).
std::size_t flush_line_count(const void* p, std::size_t bytes);

}  // namespace adcc::nvm
