// NvmRegion — a persistent-memory arena for the *native* (non-simulated)
// execution mode used by the runtime-overhead benchmarks.
//
// In native mode the program runs at full speed on host DRAM; durability
// operations (persist = flush + fence, and bulk writes into the arena) are
// performed with real flush instructions and charged to a PerfModel so that a
// "slow NVM" configuration costs what Quartz would make it cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/align.hpp"
#include "nvm/flush.hpp"
#include "nvm/perf_model.hpp"

namespace adcc::nvm {

struct RegionStats {
  std::uint64_t persist_calls = 0;
  std::uint64_t persisted_bytes = 0;
  std::uint64_t persisted_lines = 0;
  std::uint64_t bulk_writes = 0;
  std::uint64_t bulk_bytes = 0;
};

class NvmRegion {
 public:
  /// Creates an arena of `bytes` capacity charged against `model`.
  NvmRegion(std::size_t bytes, PerfModel& model, std::string name = "nvm");

  NvmRegion(const NvmRegion&) = delete;
  NvmRegion& operator=(const NvmRegion&) = delete;

  /// Bump-allocates `n` objects of T (cache-line aligned). Never freed
  /// individually; the arena is the unit of lifetime (like a pmem pool).
  template <typename T>
  std::span<T> allocate(std::size_t n) {
    void* p = allocate_bytes(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  void* allocate_bytes(std::size_t bytes, std::size_t align = kCacheLine);

  /// Rewinds the bump allocator, invalidating all prior allocations. Benchmark
  /// harnesses use this to reuse one arena across repetitions without paying
  /// the zero-fill cost again.
  void reset() { used_ = 0; }

  /// Copies [src, src+bytes) into the arena at `dst` (must be arena memory)
  /// and makes it durable: memcpy + flush_range + fence, with NVM bandwidth
  /// charged. This is the primitive checkpoints are built from.
  void write_durable(void* dst, const void* src, std::size_t bytes);

  /// Persists arena bytes already written in place: flush + fence + charge.
  void persist(const void* p, std::size_t bytes);

  bool contains(const void* p) const;
  std::size_t capacity() const { return buf_.size(); }
  std::size_t used() const { return used_; }
  const std::string& name() const { return name_; }

  PerfModel& perf_model() { return model_; }
  const RegionStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  AlignedBuffer buf_;
  std::size_t used_ = 0;
  PerfModel& model_;
  std::string name_;
  RegionStats stats_;
};

}  // namespace adcc::nvm
