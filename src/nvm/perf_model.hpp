// Quartz-style NVM performance emulation.
//
// Quartz emulates slower NVM on DRAM hardware by injecting delays sized to the
// bandwidth/latency gap. We reproduce the same first-order model in software:
// every byte written through to "NVM" is charged
//
//     delay = bytes / BW_nvm − bytes / BW_dram
//
// busy-wait seconds on top of the real DRAM-speed operation, plus a fixed
// per-flush latency. The paper's configuration (NVM bandwidth = 1/8 DRAM) is
// the default. A slowdown of 1 models the paper's "NVM as fast as DRAM"
// optimistic configuration and charges nothing.
#pragma once

#include <cstddef>
#include <cstdint>

namespace adcc::nvm {

struct PerfConfig {
  double dram_bw_bytes_per_s = 0.0;  ///< 0 → calibrate with a memcpy sweep at first use.
  double bandwidth_slowdown = 8.0;   ///< BW_nvm = BW_dram / slowdown (paper: 8).
  double flush_latency_ns = 0.0;     ///< Extra fixed cost per flushed line.
  bool enabled = true;               ///< false → charge nothing (pure DRAM).
};

struct PerfStats {
  std::uint64_t bytes_written = 0;
  std::uint64_t lines_flushed = 0;
  double injected_seconds = 0.0;
};

class PerfModel {
 public:
  explicit PerfModel(const PerfConfig& cfg = {});

  /// Charges the throttle for `bytes` written through to NVM.
  void charge_write(std::size_t bytes);

  /// Charges `lines` cache-line flushes (media write of 64 B each + latency).
  void charge_flush_lines(std::size_t lines);

  /// Measured/configured DRAM bandwidth in bytes/s.
  double dram_bandwidth() const { return dram_bw_; }
  double nvm_bandwidth() const { return cfg_.bandwidth_slowdown > 0 ? dram_bw_ / cfg_.bandwidth_slowdown : dram_bw_; }

  const PerfConfig& config() const { return cfg_; }
  const PerfStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// One-time memcpy sweep measuring sustained DRAM copy bandwidth.
  static double calibrate_dram_bandwidth();

 private:
  double seconds_per_byte() const;

  PerfConfig cfg_;
  double dram_bw_;
  PerfStats stats_;
};

/// Process-wide default model (benchmarks configure it once at startup).
PerfModel& default_perf_model();
void set_default_perf_model(const PerfConfig& cfg);

}  // namespace adcc::nvm
