#include "pmemtx/undo_log.hpp"

#include <cstring>

#include "common/align.hpp"
#include "common/check.hpp"

namespace adcc::pmemtx {

UndoLog::UndoLog(PersistentHeap& heap) : heap_(heap) {
  auto area = heap_.log_area();
  area_ = area.data();
  area_bytes_ = area.size();
  ADCC_CHECK(area_bytes_ > sizeof(Header) + kCacheLine, "log area too small");
  Header* h = header();
  h->state = 0;
  h->num_entries = 0;
  h->used_bytes = round_up(sizeof(Header), kCacheLine);
  persist(h, sizeof(Header));
}

UndoLog::Header* UndoLog::header() { return reinterpret_cast<Header*>(area_); }
std::byte* UndoLog::payload() { return area_; }
std::size_t UndoLog::payload_capacity() const { return area_bytes_; }

void UndoLog::persist(const void* p, std::size_t n) { heap_.region().persist(p, n); }

void UndoLog::begin() {
  ADCC_CHECK(!active_, "nested transactions are not supported");
  Header* h = header();
  h->state = 1;
  h->num_entries = 0;
  h->used_bytes = round_up(sizeof(Header), kCacheLine);
  persist(h, sizeof(Header));
  active_ = true;
  tx_ranges_.clear();
  ++stats_.transactions;
}

void UndoLog::add_range(void* p, std::size_t bytes) {
  ADCC_CHECK(active_, "add_range outside a transaction");
  ADCC_CHECK(heap_.contains(p), "add_range target must live in the persistent heap");
  // PMDK's ulog snapshots in fixed-size chunks; each chunk is persisted (flush
  // + fence) and published via a persisted header update before the caller may
  // store to it.
  auto* base = static_cast<std::byte*>(p);
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t chunk = std::min(kSnapshotChunk, bytes - done);
    Header* h = header();
    const std::size_t entry_bytes = round_up(sizeof(EntryHeader) + chunk, kCacheLine);
    ADCC_CHECK(h->used_bytes + entry_bytes <= payload_capacity(), "undo log exhausted");

    auto* eh = reinterpret_cast<EntryHeader*>(payload() + h->used_bytes);
    // Emulated pool: targets are identified by their in-process address (a
    // real pmem pool would store the pool-relative offset; the cost structure
    // is the same and this library's pools live exactly as long as the
    // process).
    eh->dst_off = reinterpret_cast<std::uintptr_t>(base + done);
    eh->bytes = chunk;
    std::memcpy(reinterpret_cast<std::byte*>(eh) + sizeof(EntryHeader), base + done, chunk);

    // Persist entry payload first, then make it visible by bumping the counter.
    persist(eh, sizeof(EntryHeader) + chunk);
    h->used_bytes += entry_bytes;
    h->num_entries += 1;
    persist(h, sizeof(Header));

    done += chunk;
    ++stats_.chunks_logged;
  }
  tx_ranges_.emplace_back(p, bytes);
  ++stats_.ranges_logged;
  stats_.bytes_logged += bytes;
}

void UndoLog::commit() {
  ADCC_CHECK(active_, "commit outside a transaction");
  // Persist the new values of every registered range.
  for (const auto& [p, n] : tx_ranges_) persist(p, n);
  Header* h = header();
  h->state = 0;
  h->num_entries = 0;
  h->used_bytes = round_up(sizeof(Header), kCacheLine);
  persist(h, sizeof(Header));
  active_ = false;
  tx_ranges_.clear();
  ++stats_.commits;
}

void UndoLog::apply_reverse() {
  Header* h = header();
  // Walk forward collecting entry offsets, then apply in reverse.
  std::vector<std::size_t> offsets;
  std::size_t off = round_up(sizeof(Header), kCacheLine);
  for (std::uint64_t i = 0; i < h->num_entries; ++i) {
    offsets.push_back(off);
    const auto* eh = reinterpret_cast<const EntryHeader*>(payload() + off);
    off += round_up(sizeof(EntryHeader) + eh->bytes, kCacheLine);
  }
  for (auto it = offsets.rbegin(); it != offsets.rend(); ++it) {
    auto* eh = reinterpret_cast<EntryHeader*>(payload() + *it);
    auto* dst = reinterpret_cast<std::byte*>(static_cast<std::uintptr_t>(eh->dst_off));
    std::memcpy(dst, reinterpret_cast<std::byte*>(eh) + sizeof(EntryHeader), eh->bytes);
    persist(dst, eh->bytes);
  }
  h->state = 0;
  h->num_entries = 0;
  h->used_bytes = round_up(sizeof(Header), kCacheLine);
  persist(h, sizeof(Header));
}

void UndoLog::abort() {
  ADCC_CHECK(active_, "abort outside a transaction");
  apply_reverse();
  active_ = false;
  tx_ranges_.clear();
  ++stats_.aborts;
}

std::size_t UndoLog::recover() {
  Header* h = header();
  if (h->state == 0) return 0;
  const std::size_t rolled_back = static_cast<std::size_t>(h->num_entries);
  apply_reverse();
  active_ = false;
  tx_ranges_.clear();
  ++stats_.recoveries;
  return rolled_back;
}

}  // namespace adcc::pmemtx
