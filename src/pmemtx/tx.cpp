// Transaction is header-only; this TU anchors the pmemtx target.
#include "pmemtx/tx.hpp"

namespace adcc::pmemtx {
// Intentionally empty.
}  // namespace adcc::pmemtx
