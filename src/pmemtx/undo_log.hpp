// UndoLog — the cost-faithful reproduction of the Intel PMEM (libpmemobj)
// undo-log transaction mechanism, the paper's "state of the art" baseline.
//
// Protocol (identical ordering to libpmemobj):
//   add_range(p, n):  copy the OLD bytes of [p, p+n) into the log, persist the
//                     log entry (flush + fence, charged at NVM speed), bump the
//                     persisted entry count — only then may the caller store.
//   commit():         persist every registered user range, then persist
//                     state = IDLE (log truncation).
//   crash before commit → recover() walks entries in reverse applying old
//                     bytes, then truncates; the transaction never happened.
//
// The overhead the paper measures (329 % for CG, 4.3×/5.5× preliminary) is the
// old-value copy + per-range flush traffic; both are reproduced here.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pmemtx/pheap.hpp"

namespace adcc::pmemtx {

struct UndoLogStats {
  std::uint64_t transactions = 0;
  std::uint64_t ranges_logged = 0;   ///< add_range calls.
  std::uint64_t chunks_logged = 0;   ///< 4 KB log chunks (PMDK ulog granularity).
  std::uint64_t bytes_logged = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t recoveries = 0;
};

class UndoLog {
 public:
  explicit UndoLog(PersistentHeap& heap);

  /// Starts a transaction. Nested transactions are not supported (the paper's
  /// workloads use one transaction per loop iteration).
  void begin();

  /// Snapshots [p, p+bytes) (heap memory) before modification. Large ranges
  /// are chunked at PMDK's ulog granularity (4 KB), each chunk persisted with
  /// its own header update and fence — the cost structure responsible for the
  /// multi-x slowdowns the paper measured with the Intel PMEM library.
  void add_range(void* p, std::size_t bytes);

  /// PMDK-like snapshot chunk size.
  static constexpr std::size_t kSnapshotChunk = 4096;

  /// Makes all registered ranges durable and truncates the log.
  void commit();

  /// Rolls back the active transaction immediately (explicit abort).
  void abort();

  /// Post-restart recovery: if the log holds an uncommitted transaction,
  /// re-applies old values in reverse order and truncates. Returns the number
  /// of ranges rolled back (0 if the log was clean).
  std::size_t recover();

  bool in_tx() const { return active_; }
  const UndoLogStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  // Log layout: [Header][entry hdr | old bytes]*  (entries cache-line padded).
  struct Header {
    std::uint64_t state;        // 0 idle, 1 active
    std::uint64_t num_entries;  // persisted entries
    std::uint64_t used_bytes;   // offset of free space past the header
  };
  struct EntryHeader {
    std::uint64_t dst_off;  // offset of target in heap region
    std::uint64_t bytes;
  };

  Header* header();
  std::byte* payload();
  std::size_t payload_capacity() const;
  void apply_reverse();
  void persist(const void* p, std::size_t n);

  PersistentHeap& heap_;
  std::byte* area_;
  std::size_t area_bytes_;
  bool active_ = false;
  // Ranges registered in the current tx (volatile bookkeeping, as in PMDK).
  std::vector<std::pair<void*, std::size_t>> tx_ranges_;
  UndoLogStats stats_;
};

}  // namespace adcc::pmemtx
