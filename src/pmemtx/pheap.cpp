#include "pmemtx/pheap.hpp"

#include "common/check.hpp"

namespace adcc::pmemtx {

PersistentHeap::PersistentHeap(std::size_t data_bytes, std::size_t log_bytes,
                               nvm::PerfModel& model)
    : region_(data_bytes + log_bytes + 4 * kCacheLine, model, "pheap"), log_bytes_(log_bytes) {
  ADCC_CHECK(log_bytes >= kCacheLine, "log area too small");
  log_area_ = static_cast<std::byte*>(region_.allocate_bytes(log_bytes_));
}

}  // namespace adcc::pmemtx
