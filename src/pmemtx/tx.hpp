// RAII transaction wrapper over UndoLog, mirroring libpmemobj's TX_BEGIN /
// TX_ADD / TX_END usage.
#pragma once

#include <span>

#include "pmemtx/undo_log.hpp"

namespace adcc::pmemtx {

class Transaction {
 public:
  explicit Transaction(UndoLog& log) : log_(log) { log_.begin(); }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Snapshot a raw range before modifying it.
  void add(void* p, std::size_t bytes) { log_.add_range(p, bytes); }

  /// Snapshot a typed span before modifying it.
  template <typename T>
  void add(std::span<T> s) {
    log_.add_range(s.data(), s.size_bytes());
  }

  /// Transactional store: snapshot + assign in one call.
  template <typename T>
  void store(T& dst, const T& value) {
    log_.add_range(&dst, sizeof(T));
    dst = value;
  }

  void commit() {
    log_.commit();
    done_ = true;
  }

  /// Uncommitted transactions roll back on scope exit (exception safety).
  ~Transaction() {
    if (!done_ && log_.in_tx()) log_.abort();
  }

 private:
  UndoLog& log_;
  bool done_ = false;
};

}  // namespace adcc::pmemtx
