// PersistentHeap — a pmemobj-pool-like container: one NVM arena holding user
// data plus the undo-log area used by pmemtx transactions.
#pragma once

#include <cstddef>
#include <span>

#include "nvm/nvm_region.hpp"

namespace adcc::pmemtx {

class PersistentHeap {
 public:
  /// `data_bytes` of user space and `log_bytes` reserved for the undo log.
  PersistentHeap(std::size_t data_bytes, std::size_t log_bytes, nvm::PerfModel& model);

  /// Allocates `n` objects of T from persistent space.
  template <typename T>
  std::span<T> allocate(std::size_t n) {
    return region_.allocate<T>(n);
  }

  nvm::NvmRegion& region() { return region_; }

  /// The raw log area (owned by UndoLog).
  std::span<std::byte> log_area() { return {log_area_, log_bytes_}; }

  bool contains(const void* p) const { return region_.contains(p); }

 private:
  nvm::NvmRegion region_;
  std::byte* log_area_;
  std::size_t log_bytes_;
};

}  // namespace adcc::pmemtx
