#include "mm/mm_sim_workload.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "linalg/gemm.hpp"

namespace adcc::mm {

MmSimWorkloadConfig mm_sim_workload_config(const Options& opts) {
  const bool quick = opts.get_bool("quick");
  MmSimWorkloadConfig cfg;
  cfg.n = opts.get_size("n", quick ? 128 : 512);
  cfg.rank_k = opts.get_size("rank", quick ? 32 : 64);
  const std::int64_t base = opts.get_int("seed", 7);
  cfg.seed_a = static_cast<std::uint64_t>(opts.get_int("seed_a", base));
  cfg.seed_b = static_cast<std::uint64_t>(opts.get_int("seed_b", base + 1));
  cfg.cache_bytes = opts.get_size("cache_mb", quick ? 1 : 8) << 20;
  return cfg;
}

MmSimWorkload::MmSimWorkload(const MmSimWorkloadConfig& cfg)
    : cfg_(cfg), a_(cfg.n, cfg.n), b_(cfg.n, cfg.n) {
  ADCC_CHECK(cfg_.n >= 2 && cfg_.rank_k >= 1 && cfg_.rank_k <= cfg_.n,
             "bad MM sim workload shape");
  a_.fill_random(cfg_.seed_a, -1, 1);
  b_.fill_random(cfg_.seed_b, -1, 1);
}

std::size_t MmSimWorkload::work_units() const {
  // MmCrashConsistent owns the trip-count arithmetic; the fallback covers
  // pre-prepare callers only.
  if (cc_) return cc_->num_panels() + cc_->num_blocks();
  const std::size_t nc = cfg_.n + 1;
  const std::size_t panels = (cfg_.n + cfg_.rank_k - 1) / cfg_.rank_k;
  const std::size_t blocks = (nc + cfg_.rank_k - 1) / cfg_.rank_k;
  return panels + blocks;
}

void MmSimWorkload::prepare(core::ModeEnv& env) {
  (void)env;  // Mode-agnostic: the simulated scheme is algorithm-directed.
  MmCcConfig cc;
  cc.n = cfg_.n;
  cc.rank_k = cfg_.rank_k;
  cc.cache.size_bytes = cfg_.cache_bytes;
  cc.cache.ways = cfg_.cache_ways;
  cc.tol = cfg_.tol;
  cc_ = std::make_unique<MmCrashConsistent>(a_, b_, cc);
  bind_sim(cc_->sim());
}

bool MmSimWorkload::run_step() { return cc_->step(); }

core::WorkloadRecovery MmSimWorkload::recover() {
  Timer timer;
  const MmRecovery rec = cc_->begin_recovery();
  core::WorkloadRecovery out;
  // The checksum classification restores the durable unit counters, so the
  // cursor sits at the crash point: nothing sequential was rewound, but the
  // recompute of non-contiguous lost units happened inside begin_recovery.
  out.restart_unit = units_done() + 1;
  out.units_lost = rec.units_recomputed;
  out.units_corrected = rec.units_corrected;
  out.candidates_checked = rec.candidates_checked;
  out.repair_seconds = std::max(0.0, timer.elapsed() - rec.detect_seconds);
  return out;
}

bool MmSimWorkload::verify() {
  ADCC_CHECK(units_done() == work_units(), "verify requires a completed run");
  if (!reference_) {
    reference_.emplace(cfg_.n, cfg_.n);
    linalg::gemm(a_, b_, *reference_);
  }
  const linalg::Matrix c = cc_->result();
  double scale = 1.0;
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    for (std::size_t j = 0; j < cfg_.n; ++j) {
      scale = std::max(scale, std::fabs((*reference_)(i, j)));
    }
  }
  return linalg::Matrix::max_abs_diff(c, *reference_) <= cfg_.verify_rel_tol * scale;
}

ADCC_REGISTER_WORKLOAD(
    "mm-sim", "ABFT-MM under the memsim crash emulator (Fig. 7; mode-agnostic)",
    [](const Options& opts) -> std::unique_ptr<core::Workload> {
      return std::make_unique<MmSimWorkload>(mm_sim_workload_config(opts));
    });

}  // namespace adcc::mm
