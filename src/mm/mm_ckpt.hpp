// Traditional checkpointing baseline for ABFT matrix multiplication (paper
// Fig. 8, test cases 2–4): the original Fig. 5 rank-k algorithm with the
// full-checksum accumulator Cf checkpointed at the end of every submatrix
// multiplication, matching the one-submultiplication recomputation bound of
// the algorithm-directed scheme.
#pragma once

#include "abft/abft_gemm.hpp"
#include "checkpoint/checkpoint_set.hpp"

namespace adcc::mm {

struct MmCkptResult {
  linalg::Matrix c;  ///< n×n product (checksums stripped).
  std::uint64_t checkpoints = 0;
};

MmCkptResult run_mm_checkpointed(const linalg::Matrix& a, const linalg::Matrix& b,
                                 std::size_t rank_k, checkpoint::Backend& backend);

}  // namespace adcc::mm
