#include "mm/mm_ckpt.hpp"

#include "common/check.hpp"
#include "linalg/gemm.hpp"

namespace adcc::mm {

using linalg::Matrix;

MmCkptResult run_mm_checkpointed(const Matrix& a, const Matrix& b, std::size_t rank_k,
                                 checkpoint::Backend& backend) {
  ADCC_CHECK(a.rows() == a.cols() && b.rows() == b.cols() && a.rows() == b.rows(),
             "square matrices of equal size required");
  const std::size_t n = a.rows();

  const Matrix ac = abft::encode_column_checksum(a);
  const Matrix br = abft::encode_row_checksum(b);
  Matrix cf(n + 1, n + 1);
  cf.set_zero();
  std::uint64_t step = 0;

  checkpoint::CheckpointSet set(backend);
  set.add("Cf", cf.data(), cf.size_bytes());
  set.add("step", &step, sizeof(step));

  MmCkptResult out;
  for (std::size_t s = 0; s < n; s += rank_k) {
    const std::size_t k = std::min(rank_k, n - s);
    linalg::gemm_panel(ac, s, k, br, s, cf, /*accumulate=*/true);
    ++step;
    set.save();
    ++out.checkpoints;
  }
  out.c = abft::strip_checksums(cf);
  return out;
}

}  // namespace adcc::mm
