// ABFT matrix multiplication as a core::Workload.
//
// Work units are mode-dependent, matching the paper's durability granules:
//   native/ckpt/tx — one submatrix multiplication (rank-k panel) per unit;
//                    native replicates Fig. 5 (checksum verification at the
//                    top of every panel), the fig8 baseline.
//   alg-*          — Fig. 6's two loops: `panels` multiplication units with
//                    checksum-line flushes, then `blocks` addition units with
//                    row-checksum flushes; the progress-counter line is the
//                    per-unit flush.
// Algorithm-mode recovery re-validates the checksums of every completed
// temporal matrix from the durable image (the paper's consistent/lost
// classification) instead of trusting the counter alone.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "abft/abft_gemm.hpp"
#include "checkpoint/checkpoint_set.hpp"
#include "common/options.hpp"
#include "core/fault.hpp"
#include "core/registry.hpp"
#include "core/workload.hpp"
#include "pmemtx/tx.hpp"

namespace adcc::mm {

struct MmWorkloadConfig {
  std::size_t n = 500;            ///< Square matrix dimension (fig8 --quick).
  std::size_t rank_k = 50;        ///< Panel width.
  std::uint64_t seed_a = 3;
  std::uint64_t seed_b = 4;
  abft::ChecksumTolerance tol;
  double verify_rel_tol = 1e-8;
};

MmWorkloadConfig mm_workload_config(const Options& opts);

class MmWorkload final : public core::Workload {
 public:
  explicit MmWorkload(const MmWorkloadConfig& cfg);

  std::string name() const override { return "mm"; }
  std::size_t work_units() const override;
  std::size_t units_done() const override { return done_; }
  void prepare(core::ModeEnv& env) override;
  bool run_step() override;
  void make_durable() override;
  void wait_durable() override;
  bool durability_pending() const override;
  void inject_crash() override;
  core::WorkloadRecovery recover() override;
  bool verify() override;
  void tune_env(core::Mode mode, core::ModeEnvConfig& cfg) const override;
  core::FaultSurface* fault() override { return &fault_; }

  std::size_t num_panels() const { return panels_; }

  /// The n×n product (checksums stripped); valid once the run completed.
  linalg::Matrix result() const;

 private:
  void multiply_panel_into(std::size_t s, double* out, bool accumulate) const;
  bool alg_temporal_consistent(std::size_t s) const;
  bool alg_block_consistent(std::size_t blk) const;
  void alg_add_block(std::size_t blk);

  MmWorkloadConfig cfg_;
  std::size_t nc_ = 0;      ///< n + 1 (checksum dimension).
  std::size_t panels_ = 0;  ///< ceil(n / rank_k).
  std::size_t blocks_ = 0;  ///< ceil(nc / rank_k), alg loop 2.
  linalg::Matrix ac_, br_;  ///< Encoded inputs (immutable).
  std::optional<linalg::Matrix> reference_;

  core::ModeEnv* env_ = nullptr;
  core::DurabilityKind engine_ = core::DurabilityKind::kNone;
  core::FaultSurface fault_;  ///< Software-counted mid-unit crash surface.
  std::size_t done_ = 0;
  std::size_t crashed_done_ = 0;

  // native / ckpt state.
  linalg::Matrix cf_;
  std::uint64_t ckpt_step_ = 0;
  std::unique_ptr<checkpoint::CheckpointSet> ckpt_;

  // pmem-tx state.
  std::unique_ptr<pmemtx::PersistentHeap> heap_;
  std::unique_ptr<pmemtx::UndoLog> log_;
  std::span<double> tx_cf_;
  std::span<std::uint64_t> tx_step_;

  // alg-* state (Fig. 6 temporal matrices in the NVM arena).
  std::vector<std::span<double>> ctemp_s_;
  std::span<double> ctemp_;
  std::span<std::int64_t> progress_;
};

}  // namespace adcc::mm
