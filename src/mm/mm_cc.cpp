#include "mm/mm_cc.hpp"

#include <cstring>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "kernels/backend.hpp"
#include "linalg/gemm.hpp"

namespace adcc::mm {

using linalg::Matrix;

namespace {
constexpr std::int64_t kPhaseStride = 1'000'000;
std::int64_t encode_progress(int phase, std::size_t unit) {
  return phase * kPhaseStride + static_cast<std::int64_t>(unit);
}
std::pair<int, std::size_t> decode_progress(std::int64_t v) {
  return {static_cast<int>(v / kPhaseStride), static_cast<std::size_t>(v % kPhaseStride)};
}
}  // namespace

MmCrashConsistent::MmCrashConsistent(const Matrix& a, const Matrix& b, const MmCcConfig& cfg)
    : cfg_(cfg),
      nc_(cfg.n + 1),
      panels_((cfg.n + cfg.rank_k - 1) / cfg.rank_k),
      blocks_((nc_ + cfg.rank_k - 1) / cfg.rank_k),
      ac_host_(abft::encode_column_checksum(a)),
      br_host_(abft::encode_row_checksum(b)),
      sim_(cfg.cache),
      ac_(sim_, "mm.Ac", nc_ * cfg.n, /*read_only=*/true),
      br_(sim_, "mm.Br", cfg.n * nc_, /*read_only=*/true),
      ctemp_(sim_, "mm.Ctemp", nc_ * nc_) {
  ADCC_CHECK(a.rows() == cfg.n && a.cols() == cfg.n, "A must be n×n");
  ADCC_CHECK(b.rows() == cfg.n && b.cols() == cfg.n, "B must be n×n");
  ADCC_CHECK(cfg.rank_k >= 1 && cfg.rank_k <= cfg.n, "invalid rank");
  std::memcpy(ac_.data(), ac_host_.data(), ac_host_.size_bytes());
  std::memcpy(br_.data(), br_host_.data(), br_host_.size_bytes());
  ctemp_s_.reserve(panels_);
  for (std::size_t s = 0; s < panels_; ++s) {
    ctemp_s_.push_back(std::make_unique<memsim::TrackedArray<double>>(
        sim_, "mm.Ctemp_s" + std::to_string(s + 1), nc_ * nc_));
  }
  progress_ = std::make_unique<memsim::TrackedScalar<std::int64_t>>(sim_, "mm.progress", 0);
}

std::size_t MmCrashConsistent::rows_of_panel(std::size_t s) const {
  const std::size_t c0 = (s - 1) * cfg_.rank_k;
  return std::min(cfg_.rank_k, cfg_.n - c0);
}

void MmCrashConsistent::flush_full_checksums(memsim::TrackedArray<double>& m) {
  // Checksum row (contiguous) …
  m.flush((nc_ - 1) * nc_, nc_);
  // … and checksum column (one line per row — the rank-dependent flush cost).
  for (std::size_t i = 0; i < nc_; ++i) m.flush(i * nc_ + (nc_ - 1), 1);
  sim_.sfence();
}

void MmCrashConsistent::multiply_panel(std::size_t s) {
  Timer t;
  const std::size_t c0 = (s - 1) * cfg_.rank_k;
  const std::size_t k = rows_of_panel(s);
  double* out = ctemp_s_[s - 1]->data();
  const double* acd = ac_.data();
  const double* brd = br_.data();

  constexpr std::size_t kRowBlock = 64;
  for (std::size_t i0 = 0; i0 < nc_; i0 += kRowBlock) {
    const std::size_t i1 = std::min(nc_, i0 + kRowBlock);
    core::active_kernel_backend().gemm_tile(acd + i0 * cfg_.n + c0, cfg_.n, brd + c0 * nc_, nc_,
                                            i1 - i0, nc_, k, out + i0 * nc_, nc_,
                                            /*accumulate=*/false);
    // Announce the block's traffic: Ac slices, the streamed Br panel (resident
    // across row blocks on a real cache; re-touching keeps it MRU), and the
    // freshly produced Ctemp_s rows.
    for (std::size_t i = i0; i < i1; ++i) ac_.touch_read(i * cfg_.n + c0, k);
    br_.touch_read(c0 * nc_, k * nc_);
    ctemp_s_[s - 1]->touch_write(i0 * nc_, (i1 - i0) * nc_);
  }

  // Fig. 6 line 5: persist this panel's checksums.
  flush_full_checksums(*ctemp_s_[s - 1]);
  progress_->set_and_flush(encode_progress(1, s));

  done_mults_ = s;
  mult_seconds_ += t.elapsed();
  sim_.crash_point(kPointMultEnd);
}

void MmCrashConsistent::add_block(std::size_t blk) {
  Timer t;
  const std::size_t r0 = (blk - 1) * cfg_.rank_k;
  const std::size_t r1 = std::min(nc_, r0 + cfg_.rank_k);
  double* out = ctemp_.data();

  std::vector<const double*> panels(panels_);
  for (std::size_t s = 0; s < panels_; ++s) panels[s] = ctemp_s_[s]->data() + r0 * nc_;
  core::active_kernel_backend().panel_sum(panels.data(), panels_, r1 - r0, nc_, nc_,
                                          out + r0 * nc_, nc_);
  for (std::size_t s = 0; s < panels_; ++s) ctemp_s_[s]->touch_read(r0 * nc_, (r1 - r0) * nc_);
  ctemp_.touch_write(r0 * nc_, (r1 - r0) * nc_);

  // Fig. 6 line 13: persist the k row checksums of this block.
  for (std::size_t i = r0; i < r1; ++i) ctemp_.flush(i * nc_ + (nc_ - 1), 1);
  sim_.sfence();
  progress_->set_and_flush(encode_progress(2, blk));

  done_adds_ = blk;
  add_seconds_ += t.elapsed();
  sim_.crash_point(kPointAddEnd);
}

bool MmCrashConsistent::step() {
  if (done_mults_ < panels_) {
    multiply_panel(done_mults_ + 1);
    return true;
  }
  if (done_adds_ < blocks_) {
    add_block(done_adds_ + 1);
    return true;
  }
  return false;
}

bool MmCrashConsistent::run() {
  try {
    while (step()) {
    }
  } catch (const memsim::CrashException&) {
    return true;
  }
  return false;
}

bool MmCrashConsistent::durable_full_consistent(const memsim::TrackedArray<double>& m,
                                                Matrix& scratch) const {
  sim_.durable_read(m.data(), scratch.data(), nc_ * nc_ * sizeof(double));
  return abft::verify_full_checksums(scratch, cfg_.tol).consistent();
}

MmRecovery MmCrashConsistent::begin_recovery() {
  ADCC_CHECK(sim_.crashed(), "recovery requires a prior crash");
  MmRecovery rec;

  // ---- Phase 1: classify every unit from the durable image. ----
  Timer detect;
  const auto [phase_d, unit_d] = decode_progress(progress_->durable());
  rec.crash_phase = phase_d == 0 ? 1 : phase_d;
  rec.crash_unit = phase_d == 0 ? 1 : unit_d;
  const std::size_t done_mults = phase_d >= 2 ? panels_ : unit_d;
  const std::size_t done_adds = phase_d >= 2 ? unit_d : 0;

  Matrix scratch(nc_, nc_);
  std::vector<std::size_t> lost_mults;
  std::vector<std::size_t> correctable_mults;
  for (std::size_t s = 1; s <= done_mults; ++s) {
    ++rec.candidates_checked;
    sim_.durable_read(ctemp_s_[s - 1]->data(), scratch.data(), nc_ * nc_ * sizeof(double));
    auto report = abft::verify_full_checksums(scratch, cfg_.tol);
    if (report.consistent()) continue;
    if (abft::try_correct(scratch, report, cfg_.tol) > 0) {
      correctable_mults.push_back(s);
    } else {
      lost_mults.push_back(s);
    }
  }

  // Row blocks of loop 2: verify durable row checksums of completed blocks.
  std::vector<std::size_t> lost_adds;
  if (phase_d >= 2) {
    Matrix ct(nc_, nc_);
    sim_.durable_read(ctemp_.data(), ct.data(), nc_ * nc_ * sizeof(double));
    const auto rows = abft::verify_row_checksums(ct, /*has_checksum_row=*/false, cfg_.tol);
    std::vector<bool> block_bad(blocks_ + 1, false);
    for (const std::size_t r : rows.bad_rows) {
      const std::size_t blk = r / cfg_.rank_k + 1;
      if (blk <= done_adds) block_bad[blk] = true;
    }
    for (std::size_t blk = 1; blk <= done_adds; ++blk) {
      ++rec.candidates_checked;
      if (block_bad[blk]) lost_adds.push_back(blk);
    }
  }
  rec.detect_seconds = detect.elapsed();

  // ---- Phase 2: repair / recompute up to the crash point. ----
  Timer resume;
  sim_.reset_after_crash();
  sim_.restore_all();
  for (const std::size_t s : correctable_mults) {
    // Repair purely from checksums: fix the durable copy in place and
    // re-persist (much cheaper than a panel multiplication).
    sim_.durable_read(ctemp_s_[s - 1]->data(), scratch.data(), nc_ * nc_ * sizeof(double));
    auto report = abft::verify_full_checksums(scratch, cfg_.tol);
    ADCC_CHECK(abft::try_correct(scratch, report, cfg_.tol) > 0, "correction regressed");
    std::memcpy(ctemp_s_[s - 1]->data(), scratch.data(), nc_ * nc_ * sizeof(double));
    ctemp_s_[s - 1]->touch_write(0, nc_ * nc_);
    ctemp_s_[s - 1]->flush_all();
    ++rec.units_corrected;
  }
  for (const std::size_t s : lost_mults) {
    multiply_panel(s);
    ++rec.units_recomputed;
  }
  for (const std::size_t blk : lost_adds) {
    add_block(blk);
    ++rec.units_recomputed;
  }
  // Restore the progress counter (recompute of old units overwrote it).
  if (phase_d >= 2) {
    progress_->set_and_flush(encode_progress(2, done_adds));
    done_adds_ = done_adds;
  } else {
    progress_->set_and_flush(encode_progress(1, done_mults));
    done_adds_ = 0;
  }
  done_mults_ = done_mults;
  rec.resume_seconds = resume.elapsed();  // Caught up to the crash point.
  return rec;
}

MmRecovery MmCrashConsistent::recover_and_resume() {
  MmRecovery rec = begin_recovery();

  // ---- Finish the remaining (never-executed) units normally (untimed:
  // resume_seconds covers only the catch-up to the crash point). ----
  while (step()) {
  }
  return rec;
}

void MmCrashConsistent::corrupt_element_for_test(std::size_t s, std::size_t i, std::size_t j,
                                                 double value) {
  ADCC_CHECK(s >= 1 && s <= panels_, "panel out of range");
  ADCC_CHECK(i < nc_ - 1 && j < nc_ - 1, "only data elements may be corrupted");
  auto& m = *ctemp_s_[s - 1];
  m.data()[i * nc_ + j] = value;
  m.touch_write(i * nc_ + j, 1);
  m.flush(i * nc_ + j, 1);  // Push the corruption into the durable image.
  sim_.sfence();
}

Matrix MmCrashConsistent::result() const {
  ADCC_CHECK(finished(), "result before completion");
  Matrix c(cfg_.n, cfg_.n);
  const double* src = ctemp_.data();
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    std::memcpy(c.row(i).data(), src + i * nc_, cfg_.n * sizeof(double));
  }
  return c;
}

double MmCrashConsistent::avg_mult_seconds() const {
  return done_mults_ == 0 ? 0.0 : mult_seconds_ / static_cast<double>(done_mults_);
}

double MmCrashConsistent::avg_add_seconds() const {
  return done_adds_ == 0 ? 0.0 : add_seconds_ / static_cast<double>(done_adds_);
}

// ---------------------------------------------------------------------------

std::size_t mm_cc_native_arena_bytes(std::size_t n, std::size_t rank_k) {
  const std::size_t nc = n + 1;
  const std::size_t panels = (n + rank_k - 1) / rank_k;
  return (panels + 1) * nc * nc * sizeof(double) + (panels + 8) * 2 * kCacheLine;
}

MmCcNativeResult run_mm_cc_native(const Matrix& a, const Matrix& b, std::size_t rank_k,
                                  nvm::NvmRegion& region) {
  ADCC_CHECK(a.rows() == a.cols() && b.rows() == b.cols() && a.rows() == b.rows(),
             "square matrices of equal size required");
  const std::size_t n = a.rows();
  const std::size_t nc = n + 1;
  const std::size_t panels = (n + rank_k - 1) / rank_k;

  const Matrix ac = abft::encode_column_checksum(a);
  const Matrix br = abft::encode_row_checksum(b);

  std::vector<std::span<double>> ctemp_s(panels);
  for (std::size_t s = 0; s < panels; ++s) ctemp_s[s] = region.allocate<double>(nc * nc);
  std::span<double> ctemp = region.allocate<double>(nc * nc);
  std::span<std::int64_t> progress = region.allocate<std::int64_t>(kCacheLine / sizeof(std::int64_t));

  MmCcNativeResult out;
  auto flush_counter = [&](std::int64_t v) {
    progress[0] = v;
    region.persist(progress.data(), sizeof(std::int64_t));
  };

  // Loop 1: submatrix multiplications with checksum flushes.
  for (std::size_t s = 0; s < panels; ++s) {
    const std::size_t c0 = s * rank_k;
    const std::size_t k = std::min(rank_k, n - c0);
    double* outp = ctemp_s[s].data();
    core::active_kernel_backend().gemm_tile(ac.data() + c0, ac.cols(), br.data() + c0 * nc, nc,
                                            nc, nc, k, outp, nc, /*accumulate=*/false);
    // Persist checksum row + column.
    region.persist(outp + (nc - 1) * nc, nc * sizeof(double));
    for (std::size_t i = 0; i < nc; ++i) {
      region.persist(outp + i * nc + (nc - 1), sizeof(double));
    }
    out.checksum_lines_flushed += nc + nc / 8;
    flush_counter(encode_progress(1, s + 1));
  }

  // Loop 2: submatrix additions with row-checksum flushes.
  const std::size_t blocks = (nc + rank_k - 1) / rank_k;
  std::vector<const double*> panel_ptrs(panels);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t r0 = blk * rank_k;
    const std::size_t r1 = std::min(nc, r0 + rank_k);
    for (std::size_t s = 0; s < panels; ++s) panel_ptrs[s] = ctemp_s[s].data() + r0 * nc;
    core::active_kernel_backend().panel_sum(panel_ptrs.data(), panels, r1 - r0, nc, nc,
                                            ctemp.data() + r0 * nc, nc);
    for (std::size_t i = r0; i < r1; ++i) {
      region.persist(ctemp.data() + i * nc + (nc - 1), sizeof(double));
    }
    out.checksum_lines_flushed += r1 - r0;
    flush_counter(encode_progress(2, blk + 1));
  }

  out.c = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(out.c.row(i).data(), ctemp.data() + i * nc, n * sizeof(double));
  }
  return out;
}

}  // namespace adcc::mm
