// Algorithm-directed crash-consistent ABFT matrix multiplication
// (paper §III-C, Figs. 6–8).
//
// The original rank-k ABFT GEMM (Fig. 5) cannot reason about crashes: Cf is
// overwritten every iteration and its checksums are only valid at iteration
// boundaries. The paper's extension (Fig. 6) decomposes the product into
//
//   Loop 1 — submatrix multiplications:  Cᵗᵉᵐᵖ_s = Ac(:, panel_s) · Br(panel_s, :)
//            each a full-checksum matrix whose checksum row+column are
//            CLFLUSHed once the panel is complete;
//   Loop 2 — submatrix additions: Cᵗᵉᵐᵖ accumulated k rows at a time with its
//            row checksums CLFLUSHed per block.
//
// Checksums, once durable, are never overwritten, so at recovery they reliably
// classify every temporal matrix / row block as consistent, correctable, or
// lost (→ recompute). Additionally a progress-counter line is flushed per
// iteration (the same single-line trick as Fig. 2's line 3; the paper leaves
// this bookkeeping implicit), distinguishing "not yet computed" from
// "computed and consistent" for all-zero data.
//
// Two modes again: MmCrashConsistent under memsim (Fig. 7 recomputation) and
// run_mm_cc_native at full speed (Fig. 8 runtime).
#pragma once

#include <memory>
#include <vector>

#include "abft/abft_gemm.hpp"
#include "memsim/tracked.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::mm {

struct MmCcConfig {
  std::size_t n = 1024;             ///< Square matrix dimension.
  std::size_t rank_k = 128;         ///< Panel width (paper sweeps 200/400/1000).
  memsim::CacheConfig cache;        ///< Simulated volatility boundary.
  abft::ChecksumTolerance tol;
};

/// Fig. 7 outcome for one crash test.
struct MmRecovery {
  int crash_phase = 0;              ///< 1 = loop 1, 2 = loop 2.
  std::size_t crash_unit = 0;       ///< Interrupted iteration (1-based).
  std::size_t units_recomputed = 0; ///< Submatrix multiplications or additions redone.
  std::size_t units_corrected = 0;  ///< Units repaired purely from checksums.
  std::size_t candidates_checked = 0;
  double detect_seconds = 0.0;
  double resume_seconds = 0.0;
};

class MmCrashConsistent {
 public:
  MmCrashConsistent(const linalg::Matrix& a, const linalg::Matrix& b, const MmCcConfig& cfg);

  /// Arm a crash via sim().scheduler() first; returns true if it fired.
  bool run();

  /// Executes the next unit — loop-1 panels first, then loop-2 blocks.
  /// Returns false once both loops are done. An armed crash trigger
  /// propagates memsim::CrashException (the ScenarioRunner surface).
  bool step();

  /// Detects inconsistent units from the durable image, repairs or recomputes
  /// them, and completes the product.
  MmRecovery recover_and_resume();

  /// Detection + catch-up only (recover_and_resume minus the never-executed
  /// trailing units): classifies every completed unit from the durable image,
  /// repairs correctable ones, recomputes lost ones, and leaves the unit
  /// cursor at the crash point so step() continues the run. The repair work's
  /// wall time is pre-charged to resume_seconds.
  MmRecovery begin_recovery();

  /// Completed units (loop-1 multiplications + loop-2 additions).
  std::size_t units_done() const { return done_mults_ + done_adds_; }

  /// The n×n product (checksums stripped). Valid after run()/recover.
  linalg::Matrix result() const;

  std::size_t num_panels() const { return panels_; }
  std::size_t num_blocks() const { return blocks_; }
  double avg_mult_seconds() const;  ///< Normalizer for loop-1 recomputation.
  double avg_add_seconds() const;   ///< Normalizer for loop-2 recomputation.
  memsim::MemorySimulator& sim() { return sim_; }

  static constexpr const char* kPointMultEnd = "mm:loop1_end";
  static constexpr const char* kPointAddEnd = "mm:loop2_end";

  /// Fault injection (tests / demos): overwrite one data element of temporal
  /// matrix `s` (1-based) in both the live and durable images *without*
  /// updating its checksums — the single-element inconsistency checksum
  /// correction is designed to repair.
  void corrupt_element_for_test(std::size_t s, std::size_t i, std::size_t j, double value);

 private:
  std::size_t rows_of_panel(std::size_t s) const;  ///< Panel width (last may be short).
  void multiply_panel(std::size_t s);              ///< Loop-1 body (1-based s).
  void add_block(std::size_t blk);                 ///< Loop-2 body (1-based blk).
  void flush_full_checksums(memsim::TrackedArray<double>& m);
  bool durable_full_consistent(const memsim::TrackedArray<double>& m,
                               linalg::Matrix& scratch) const;

  MmCcConfig cfg_;
  std::size_t nc_;      ///< n + 1 (checksum dimension).
  std::size_t panels_;  ///< ceil(n / rank_k) — loop-1 trip count.
  std::size_t blocks_;  ///< ceil(nc / rank_k) — loop-2 trip count.

  linalg::Matrix ac_host_, br_host_;  ///< Encoded inputs (host copies).
  memsim::MemorySimulator sim_;
  memsim::TrackedArray<double> ac_, br_;  ///< Read-only regions.
  std::vector<std::unique_ptr<memsim::TrackedArray<double>>> ctemp_s_;
  memsim::TrackedArray<double> ctemp_;
  std::unique_ptr<memsim::TrackedScalar<std::int64_t>> progress_;  ///< phase*1M + unit.

  /// Both loops complete. Derived from the unit counters (not a latched flag)
  /// so a crash at the very last crash point — after the counters advanced but
  /// before any flag assignment could run — still reads as finished once
  /// recovery restores the durable counters.
  bool finished() const { return done_mults_ == panels_ && done_adds_ == blocks_; }

  std::size_t done_mults_ = 0;
  std::size_t done_adds_ = 0;
  double mult_seconds_ = 0.0;
  double add_seconds_ = 0.0;
};

/// Native-mode Fig. 6 algorithm for the Fig. 8 runtime comparison: temporal
/// matrices live in `region`; only checksum lines (plus the progress counter)
/// are flushed, charged to the region's perf model.
struct MmCcNativeResult {
  linalg::Matrix c;  ///< n×n product.
  std::uint64_t checksum_lines_flushed = 0;
};
MmCcNativeResult run_mm_cc_native(const linalg::Matrix& a, const linalg::Matrix& b,
                                  std::size_t rank_k, nvm::NvmRegion& region);

/// Arena bytes needed by run_mm_cc_native for an n×n product at rank k.
std::size_t mm_cc_native_arena_bytes(std::size_t n, std::size_t rank_k);

}  // namespace adcc::mm
