// MmCrashConsistent as a core::Workload — the memsim-backed twin of
// mm::MmWorkload, registered as "mm-sim".
//
// Runs the Fig. 6 two-loop ABFT multiplication under the crash emulator; work
// units are loop-1 panel multiplications followed by loop-2 addition blocks.
// Arm `--crash=point:mm:loop1_end:4` / `point:mm:loop2_end:4` for the Fig. 7
// crash tests, or any access/fuzz plan. Recovery classifies every completed
// unit from the durable image (consistent / correctable / lost) and reports
// the checksum-vs-recompute split through WorkloadRecovery. Mode-agnostic
// (see cg_sim_workload.hpp) and excluded from `adccbench --matrix`.
#pragma once

#include <memory>
#include <optional>

#include "common/options.hpp"
#include "core/registry.hpp"
#include "core/sim_workload.hpp"
#include "mm/mm_cc.hpp"

namespace adcc::mm {

struct MmSimWorkloadConfig {
  std::size_t n = 512;              ///< Square matrix dimension (fig7 scaling).
  std::size_t rank_k = 64;          ///< Panel width.
  std::uint64_t seed_a = 7;
  std::uint64_t seed_b = 8;
  std::size_t cache_bytes = 8u << 20;
  std::size_t cache_ways = 16;
  abft::ChecksumTolerance tol;
  double verify_rel_tol = 1e-8;
};

/// Builds the config from CLI options (--n, --rank, --cache_mb, --quick).
MmSimWorkloadConfig mm_sim_workload_config(const Options& opts);

class MmSimWorkload final : public core::SimWorkloadBase {
 public:
  explicit MmSimWorkload(const MmSimWorkloadConfig& cfg);

  std::string name() const override { return "mm-sim"; }
  std::size_t work_units() const override;
  std::size_t units_done() const override { return cc_ ? cc_->units_done() : 0; }
  void prepare(core::ModeEnv& env) override;
  bool run_step() override;
  void make_durable() override {}  ///< Checksum/progress flushes are inside the unit.
  core::WorkloadRecovery recover() override;
  bool verify() override;

  MmCrashConsistent& cc() { return *cc_; }

 private:
  memsim::MemorySimulator& sim() override { return cc_->sim(); }

  MmSimWorkloadConfig cfg_;
  linalg::Matrix a_, b_;
  std::optional<linalg::Matrix> reference_;

  std::unique_ptr<MmCrashConsistent> cc_;
};

}  // namespace adcc::mm
