// PMEM undo-log transaction baseline for ABFT matrix multiplication (paper
// Fig. 8, test case 5): Cf lives in a persistent heap; each submatrix
// multiplication is one transaction with a transactional update of the full
// accumulator — the configuration whose logging traffic produces the paper's
// ~5.5× slowdown.
#pragma once

#include "abft/abft_gemm.hpp"
#include "pmemtx/tx.hpp"

namespace adcc::mm {

struct MmTxResult {
  linalg::Matrix c;
  pmemtx::UndoLogStats log_stats;
};

MmTxResult run_mm_tx(const linalg::Matrix& a, const linalg::Matrix& b, std::size_t rank_k,
                     pmemtx::PersistentHeap& heap);

/// Heap sizing helpers for an n×n product.
std::size_t mm_tx_data_bytes(std::size_t n);
std::size_t mm_tx_log_bytes(std::size_t n);

}  // namespace adcc::mm
