// Dense matrix multiplication as a multi-shard plan: a 2-D tile grid of the
// output, one rank-k panel update per work unit.
//
// The group factors N shards into a pr×pc grid (pr the largest divisor of N
// not exceeding sqrt(N)); shard t owns the C tile [rows of block t/pc] ×
// [cols of block t%pc] as a dense accumulator registered with its checkpoint.
// Unit s applies C_tile += A[rows, panel_s] × B[panel_s, cols] via
// linalg::gemm_panel_tile — no inter-shard exchange at all (A and B are
// shared immutable plan state), which makes MM the zero-halo point of the
// shard sweep. Unlike the single-rank adapter this path is plain tiled GEMM:
// the ABFT checksum augmentation stays a single-rank engine (documented
// scope cut), so sharded MM measures the snapshot protocol, not ABFT.
#pragma once

#include <memory>
#include <optional>

#include "core/shard.hpp"
#include "linalg/dense.hpp"
#include "mm/mm_workload.hpp"

namespace adcc::mm {

class MmShardPlan final : public core::ShardPlan {
 public:
  explicit MmShardPlan(const MmWorkloadConfig& cfg);

  std::string name() const override { return "mm"; }
  std::size_t work_units() const override { return panels_; }
  std::size_t phases() const override { return 1; }
  std::unique_ptr<core::ShardPart> make_part(std::size_t index, std::size_t count,
                                             core::FaultSurface& fault) override;
  bool verify(const std::vector<core::ShardPart*>& parts) override;
  void tune_env(core::Mode mode, core::ModeEnvConfig& env, std::size_t count) const override;

  const MmWorkloadConfig& config() const { return cfg_; }
  const linalg::Matrix& a() const { return a_; }
  const linalg::Matrix& b() const { return b_; }

  /// The tile-grid factorization: largest divisor of `count` <= sqrt(count).
  static std::size_t grid_rows(std::size_t count);

 private:
  MmWorkloadConfig cfg_;
  std::size_t panels_ = 0;
  linalg::Matrix a_, b_;  ///< Original (un-encoded) inputs, shared immutable.
  std::optional<linalg::Matrix> reference_;
};

}  // namespace adcc::mm
