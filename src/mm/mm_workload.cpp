#include "mm/mm_workload.hpp"

#include <cmath>
#include <cstring>

#include "common/align.hpp"
#include "common/check.hpp"
#include "core/shard.hpp"
#include "kernels/backend.hpp"
#include "linalg/gemm.hpp"
#include "mm/mm_cc.hpp"
#include "mm/mm_shard.hpp"
#include "mm/mm_tx.hpp"

namespace adcc::mm {

using linalg::Matrix;

MmWorkloadConfig mm_workload_config(const Options& opts) {
  const bool quick = opts.get_bool("quick");
  MmWorkloadConfig cfg;
  cfg.n = opts.get_size("n", quick ? 192 : 500);
  cfg.rank_k = opts.get_size("rank", quick ? 48 : 50);
  const std::int64_t base = opts.get_int("seed", 3);  // Shared --seed knob.
  cfg.seed_a = static_cast<std::uint64_t>(opts.get_int("seed_a", base));
  cfg.seed_b = static_cast<std::uint64_t>(opts.get_int("seed_b", base + 1));
  return cfg;
}

MmWorkload::MmWorkload(const MmWorkloadConfig& cfg) : cfg_(cfg) {
  ADCC_CHECK(cfg_.n >= 2 && cfg_.rank_k >= 1, "bad MM workload shape");
  nc_ = cfg_.n + 1;
  panels_ = (cfg_.n + cfg_.rank_k - 1) / cfg_.rank_k;
  blocks_ = (nc_ + cfg_.rank_k - 1) / cfg_.rank_k;
  Matrix a(cfg_.n, cfg_.n), b(cfg_.n, cfg_.n);
  a.fill_random(cfg_.seed_a, -1, 1);
  b.fill_random(cfg_.seed_b, -1, 1);
  ac_ = abft::encode_column_checksum(a);
  br_ = abft::encode_row_checksum(b);
}

std::size_t MmWorkload::work_units() const {
  return panels_ + (engine_ == core::DurabilityKind::kAlgorithm ? blocks_ : 0);
}

void MmWorkload::tune_env(core::Mode mode, core::ModeEnvConfig& env) const {
  const std::size_t cf_bytes = nc_ * nc_ * sizeof(double);
  env.slot_bytes = cf_bytes + (1u << 20);
  switch (core::durability_kind(mode)) {
    case core::DurabilityKind::kAlgorithm:
      // panels + 1 temporal matrices live in the arena.
      env.arena_bytes = mm_cc_native_arena_bytes(cfg_.n, cfg_.rank_k);
      break;
    case core::DurabilityKind::kCheckpoint:
      env.arena_bytes = 2 * cf_bytes + (16u << 20);  // Two slots (fig8 sizing).
      break;
    default:
      env.arena_bytes = 1u << 20;  // Native/tx never touch env.region.
      break;
  }
}

void MmWorkload::prepare(core::ModeEnv& env) {
  env_ = &env;
  done_ = 0;
  crashed_done_ = 0;
  fault_.reset_counter();
  // Drop any previous mode's checkpoint set: its backend reference dies with
  // the old env, and a stale async_pending flag must not leak into this run.
  ckpt_.reset();
  engine_ = core::durability_kind(env.mode);

  switch (engine_) {
    case core::DurabilityKind::kNone:
      cf_ = Matrix(nc_, nc_);
      cf_.set_zero();
      break;
    case core::DurabilityKind::kCheckpoint:
      ADCC_CHECK(env.backend != nullptr, "checkpoint modes need a backend");
      cf_ = Matrix(nc_, nc_);
      cf_.set_zero();
      ckpt_step_ = 0;
      ckpt_ = std::make_unique<checkpoint::CheckpointSet>(
          *env.backend, [this](const char* p) { fault_.point(p); });
      ckpt_->add("Cf", cf_.data(), cf_.size_bytes());
      ckpt_->add("step", &ckpt_step_, sizeof(ckpt_step_));
      break;
    case core::DurabilityKind::kTransaction: {
      ADCC_CHECK(env.perf != nullptr, "pmem-tx mode needs a perf model");
      heap_ = std::make_unique<pmemtx::PersistentHeap>(mm_tx_data_bytes(cfg_.n),
                                                       mm_tx_log_bytes(cfg_.n), *env.perf);
      tx_cf_ = heap_->allocate<double>(nc_ * nc_);
      tx_step_ = heap_->allocate<std::uint64_t>(kCacheLine / sizeof(std::uint64_t));
      std::memset(tx_cf_.data(), 0, tx_cf_.size_bytes());
      tx_step_[0] = 0;
      heap_->region().persist(tx_cf_.data(), tx_cf_.size_bytes());
      heap_->region().persist(tx_step_.data(), sizeof(std::uint64_t));
      log_ = std::make_unique<pmemtx::UndoLog>(*heap_);
      break;
    }
    case core::DurabilityKind::kAlgorithm: {
      ADCC_CHECK(env.region != nullptr, "algorithm modes need an NVM arena");
      ctemp_s_.assign(panels_, {});
      for (std::size_t s = 0; s < panels_; ++s) {
        ctemp_s_[s] = env.region->allocate<double>(nc_ * nc_);
      }
      ctemp_ = env.region->allocate<double>(nc_ * nc_);
      progress_ = env.region->allocate<std::int64_t>(kCacheLine / sizeof(std::int64_t));
      progress_[0] = 0;
      env.region->persist(progress_.data(), sizeof(std::int64_t));
      break;
    }
  }
}

void MmWorkload::multiply_panel_into(std::size_t s, double* out, bool accumulate) const {
  const std::size_t c0 = (s - 1) * cfg_.rank_k;
  const std::size_t k = std::min(cfg_.rank_k, cfg_.n - c0);
  linalg::gemm_panel(ac_, c0, k, br_, c0, out, accumulate);
}

void MmWorkload::alg_add_block(std::size_t blk) {
  const std::size_t r0 = (blk - 1) * cfg_.rank_k;
  const std::size_t r1 = std::min(nc_, r0 + cfg_.rank_k);
  std::vector<const double*> panels(panels_);
  for (std::size_t s = 0; s < panels_; ++s) panels[s] = ctemp_s_[s].data() + r0 * nc_;
  core::active_kernel_backend().panel_sum(panels.data(), panels_, r1 - r0, nc_, nc_,
                                          ctemp_.data() + r0 * nc_, nc_);
}

bool MmWorkload::run_step() {
  // Fault-surface sites (tick/point may throw mid-unit, see cg_workload.cpp):
  // all precede ++done_ and the tx commit, so a crash leaves the durable image
  // at the previous unit boundary.
  //
  // Silent-fault detection under a flip: plan, before the end-of-run early
  // return so a flip in the final unit is still caught. Native re-runs its
  // Fig. 5 full-checksum test on the accumulator — correcting in place when
  // the ABFT report isolates a single error (detected-and-corrected), raising
  // when it cannot (detected-and-rolled-back). Alg engines re-validate the
  // last completed unit's checksums (temporal matrix in Loop 1, summed block
  // rows in Loop 2). ckpt/tx carry no checksums: their flips ride to verify()
  // as honest misses. The flip_active() gate keeps all of this off the
  // fail-stop and crash-free paths.
  if (fault_.flip_active() && done_ >= 1) {
    if (engine_ == core::DurabilityKind::kNone) {
      const abft::ChecksumReport rep = abft::verify_full_checksums(cf_, cfg_.tol);
      if (!rep.consistent()) {
        if (abft::try_correct(cf_, rep, cfg_.tol) > 0) {
          fault_.report_detected(/*corrected=*/true);
        } else {
          throw core::SilentFaultDetected("mm:checksum", done_ + 1,
                                          fault_.access_count());
        }
      }
    } else if (engine_ == core::DurabilityKind::kAlgorithm) {
      if (done_ <= panels_) {
        if (!alg_temporal_consistent(done_)) {
          throw core::SilentFaultDetected("mm:temporal", done_ + 1,
                                          fault_.access_count());
        }
      } else if (!alg_block_consistent(done_ - panels_)) {
        throw core::SilentFaultDetected("mm:block", done_ + 1, fault_.access_count());
      }
    }
  }
  if (done_ >= work_units()) return false;
  const std::size_t panel_cost =
      nc_ * nc_ * std::min(cfg_.rank_k, cfg_.n);  // Elements a panel GEMM touches.
  switch (engine_) {
    case core::DurabilityKind::kNone: {
      // Fig. 5 line 2: verify Cf's checksum relationship before the update,
      // attempting single-error correction on failure (abft_gemm semantics) —
      // the native-ABFT baseline cost the fig8 comparison normalizes against.
      const abft::ChecksumReport rep = abft::verify_full_checksums(cf_, cfg_.tol);
      fault_.tick(nc_ * nc_);
      if (!rep.consistent()) {
        ADCC_CHECK(abft::try_correct(cf_, rep, cfg_.tol) > 0,
                   "uncorrectable checksum error in native ABFT accumulator");
      }
      multiply_panel_into(done_ + 1, cf_.data(), /*accumulate=*/true);
      fault_.tick(panel_cost);
      // Silent-corruption target: the checksummed accumulator this panel just
      // updated — the check at the next unit's top corrects or raises.
      fault_.corrupt("mm:cf", cf_.data(), cf_.size_bytes());
      fault_.point(MmCrashConsistent::kPointMultEnd);
      break;
    }
    case core::DurabilityKind::kCheckpoint:
      multiply_panel_into(done_ + 1, cf_.data(), /*accumulate=*/true);
      fault_.tick(panel_cost);
      // Undefended: the flip is checkpointed along with the accumulator and
      // rides to verify() as an honest miss.
      fault_.corrupt("mm:cf", cf_.data(), cf_.size_bytes());
      fault_.point(MmCrashConsistent::kPointMultEnd);
      break;
    case core::DurabilityKind::kTransaction: {
      pmemtx::Transaction tx(*log_);
      tx.add(tx_cf_);  // Snapshot the whole accumulator (undo log).
      tx.add(tx_step_.subspan(0, 1));
      fault_.tick(nc_ * nc_);
      multiply_panel_into(done_ + 1, tx_cf_.data(), /*accumulate=*/true);
      fault_.tick(panel_cost);
      fault_.corrupt("mm:cf", tx_cf_);
      fault_.point(MmCrashConsistent::kPointMultEnd);
      tx_step_[0] = done_ + 1;
      tx.commit();
      break;
    }
    case core::DurabilityKind::kAlgorithm: {
      if (done_ < panels_) {
        multiply_panel_into(done_ + 1, ctemp_s_[done_].data(), /*accumulate=*/false);
        fault_.tick(panel_cost);
        // Flip target: the temporal matrix this unit wrote; its Eq. 6
        // checksums catch the corruption at the next unit's top.
        fault_.corrupt("mm:ctemp", ctemp_s_[done_]);
        fault_.point(MmCrashConsistent::kPointMultEnd);
      } else {
        alg_add_block(done_ - panels_ + 1);
        fault_.tick(cfg_.rank_k * nc_ * (panels_ + 1));
        {
          // Flip target: the Loop-2 block rows just summed into ctemp_.
          const std::size_t blk = done_ - panels_ + 1;
          const std::size_t r0 = (blk - 1) * cfg_.rank_k;
          const std::size_t r1 = std::min(nc_, r0 + cfg_.rank_k);
          fault_.corrupt("mm:cblock",
                         std::span<double>(ctemp_.data() + r0 * nc_, (r1 - r0) * nc_));
        }
        fault_.point(MmCrashConsistent::kPointAddEnd);
      }
      break;
    }
  }
  ++done_;
  return true;
}

void MmWorkload::make_durable() {
  switch (engine_) {
    case core::DurabilityKind::kNone:
    case core::DurabilityKind::kTransaction:
      break;  // Nothing / the transaction in run_step.
    case core::DurabilityKind::kCheckpoint:
      ckpt_step_ = done_;
      ckpt_->save();
      break;
    case core::DurabilityKind::kAlgorithm: {
      nvm::NvmRegion& region = *env_->region;
      if (done_ <= panels_) {
        // Loop 1: persist the freshly computed temporal matrix's checksum
        // row + column (Fig. 6 lines 4-5).
        double* out = ctemp_s_[done_ - 1].data();
        region.persist(out + (nc_ - 1) * nc_, nc_ * sizeof(double));
        for (std::size_t i = 0; i < nc_; ++i) {
          region.persist(out + i * nc_ + (nc_ - 1), sizeof(double));
        }
      } else {
        // Loop 2: persist the block's row checksums.
        const std::size_t blk = done_ - panels_;
        const std::size_t r0 = (blk - 1) * cfg_.rank_k;
        const std::size_t r1 = std::min(nc_, r0 + cfg_.rank_k);
        for (std::size_t i = r0; i < r1; ++i) {
          region.persist(ctemp_.data() + i * nc_ + (nc_ - 1), sizeof(double));
        }
      }
      progress_[0] = static_cast<std::int64_t>(done_);
      region.persist(progress_.data(), sizeof(std::int64_t));
      break;
    }
  }
}

void MmWorkload::wait_durable() {
  // Joins an in-flight async checkpoint drain (--ckpt_async); other engines
  // are durable the moment make_durable returns.
  if (ckpt_) ckpt_->wait_durable();
}

bool MmWorkload::durability_pending() const { return ckpt_ && ckpt_->async_pending(); }

void MmWorkload::inject_crash() {
  crashed_done_ = done_;
  // Power failure: cut off an in-flight checkpoint drain before the volatile
  // state (and the DRAM staging) is discarded.
  if (ckpt_) ckpt_->abort_async();
  if (env_ != nullptr && env_->dram) env_->dram->discard();
  switch (engine_) {
    case core::DurabilityKind::kNone:
    case core::DurabilityKind::kCheckpoint:
      cf_.set_zero();  // The DRAM accumulator dies with the power.
      ckpt_step_ = 0;
      break;
    case core::DurabilityKind::kTransaction:
    case core::DurabilityKind::kAlgorithm:
      break;  // All run state lives in the durable heap / arena.
  }
}

bool MmWorkload::alg_temporal_consistent(std::size_t s) const {
  // Full-checksum test of temporal matrix s against the paper's Eq. 6: every
  // row sums to its last-column checksum, every column to its last-row one.
  const double* m = ctemp_s_[s - 1].data();
  const auto close = [&](double sum, double checksum, double scale) {
    return std::fabs(sum - checksum) <= cfg_.tol.rel * scale + cfg_.tol.abs;
  };
  for (std::size_t i = 0; i < nc_ - 1; ++i) {
    double sum = 0.0, scale = 0.0;
    for (std::size_t j = 0; j < nc_ - 1; ++j) {
      sum += m[i * nc_ + j];
      scale += std::fabs(m[i * nc_ + j]);
    }
    if (!close(sum, m[i * nc_ + (nc_ - 1)], scale)) return false;
  }
  for (std::size_t j = 0; j < nc_ - 1; ++j) {
    double sum = 0.0, scale = 0.0;
    for (std::size_t i = 0; i < nc_ - 1; ++i) {
      sum += m[i * nc_ + j];
      scale += std::fabs(m[i * nc_ + j]);
    }
    if (!close(sum, m[(nc_ - 1) * nc_ + j], scale)) return false;
  }
  return true;
}

bool MmWorkload::alg_block_consistent(std::size_t blk) const {
  // Row-checksum test of a Loop-2 block: every summed row of ctemp_ must
  // match its last-column checksum (the temporal matrices' row checksums
  // carry through panel_sum, so the invariant holds for the sum too — and
  // for the final block's column-checksum row, whose own "checksum" is the
  // grand total).
  const std::size_t r0 = (blk - 1) * cfg_.rank_k;
  const std::size_t r1 = std::min(nc_, r0 + cfg_.rank_k);
  const auto close = [&](double sum, double checksum, double scale) {
    return std::fabs(sum - checksum) <= cfg_.tol.rel * scale + cfg_.tol.abs;
  };
  for (std::size_t i = r0; i < r1; ++i) {
    const double* row = ctemp_.data() + i * nc_;
    double sum = 0.0, scale = 0.0;
    for (std::size_t j = 0; j < nc_ - 1; ++j) {
      sum += row[j];
      scale += std::fabs(row[j]);
    }
    if (!close(sum, row[nc_ - 1], scale)) return false;
  }
  return true;
}

core::WorkloadRecovery MmWorkload::recover() {
  core::WorkloadRecovery rec;
  switch (engine_) {
    case core::DurabilityKind::kNone:
      cf_.set_zero();
      done_ = 0;
      break;
    case core::DurabilityKind::kCheckpoint: {
      const std::uint64_t ver = ckpt_->restore();
      const auto& rs = ckpt_->last_restore();
      rec.candidates_checked += rs.chunks_probed;
      rec.torn_chunks = rs.torn_chunks;
      rec.salvaged_chunks = rs.salvaged_chunks;
      if (ver != 0) {
        done_ = static_cast<std::size_t>(ckpt_step_);
      } else {
        cf_.set_zero();
        done_ = 0;
      }
      break;
    }
    case core::DurabilityKind::kTransaction:
      log_->recover();  // Rolls back an uncommitted transaction, if any.
      done_ = static_cast<std::size_t>(tx_step_[0]);
      break;
    case core::DurabilityKind::kAlgorithm: {
      // The durable progress counter bounds what exists; re-validate each
      // completed temporal matrix's checksums (consistent-vs-lost
      // classification). The sequential cursor redoes everything from the
      // first lost unit.
      const auto durable = static_cast<std::size_t>(progress_[0]);
      done_ = durable;
      for (std::size_t s = 1; s <= std::min(durable, panels_); ++s) {
        ++rec.candidates_checked;
        if (!alg_temporal_consistent(s)) {
          done_ = s - 1;
          break;
        }
      }
      // Loop-2 corruption (a silent flip in a summed block): rewind to just
      // before the first inconsistent block so its re-execution — panel_sum
      // writes, not accumulates — replaces the damaged rows. Without this a
      // detected Loop-2 flip would survive rollback and re-trip the online
      // check forever.
      if (done_ == durable && durable > panels_) {
        for (std::size_t blk = 1; blk <= durable - panels_; ++blk) {
          ++rec.candidates_checked;
          if (!alg_block_consistent(blk)) {
            done_ = panels_ + blk - 1;
            break;
          }
        }
      }
      break;
    }
  }
  rec.restart_unit = done_ + 1;
  rec.units_lost = crashed_done_ - done_;
  return rec;
}

Matrix MmWorkload::result() const {
  const auto strip_raw = [&](const double* src) {
    Matrix c(cfg_.n, cfg_.n);
    for (std::size_t i = 0; i < cfg_.n; ++i) {
      std::memcpy(c.row(i).data(), src + i * nc_, cfg_.n * sizeof(double));
    }
    return c;
  };
  switch (engine_) {
    case core::DurabilityKind::kNone:
    case core::DurabilityKind::kCheckpoint:
      return abft::strip_checksums(cf_);
    case core::DurabilityKind::kTransaction:
      return strip_raw(tx_cf_.data());
    case core::DurabilityKind::kAlgorithm:
      return strip_raw(ctemp_.data());
  }
  ADCC_CHECK(false, "unknown engine");
}

bool MmWorkload::verify() {
  ADCC_CHECK(done_ == work_units(), "verify requires a completed run");
  if (!reference_) {
    // Reference product of the original (checksum-stripped) inputs.
    Matrix a(cfg_.n, cfg_.n), b(cfg_.n, cfg_.n);
    a.fill_random(cfg_.seed_a, -1, 1);
    b.fill_random(cfg_.seed_b, -1, 1);
    reference_.emplace(cfg_.n, cfg_.n);
    linalg::gemm(a, b, *reference_);
  }
  const Matrix c = result();
  double scale = 1.0;
  for (std::size_t i = 0; i < cfg_.n; ++i) {
    for (std::size_t j = 0; j < cfg_.n; ++j) {
      scale = std::max(scale, std::fabs((*reference_)(i, j)));
    }
  }
  return Matrix::max_abs_diff(c, *reference_) <= cfg_.verify_rel_tol * scale;
}

ADCC_REGISTER_WORKLOAD(
    "mm", "ABFT dense matrix multiplication (paper SIII-C, Figs. 5-8)",
    [](const Options& opts) -> std::unique_ptr<core::Workload> {
      const MmWorkloadConfig cfg = mm_workload_config(opts);
      const std::size_t shards = opts.get_size("shards", 1);
      if (shards > 1) {
        return std::make_unique<core::ShardGroup>(
            std::make_unique<MmShardPlan>(cfg),
            core::ShardGroupConfig{shards, opts.get_bool("shard_stagger", false)},
            [cfg]() -> std::unique_ptr<core::Workload> {
              return std::make_unique<MmWorkload>(cfg);
            });
      }
      return std::make_unique<MmWorkload>(cfg);
    });

}  // namespace adcc::mm
