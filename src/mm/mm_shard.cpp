#include "mm/mm_shard.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "linalg/gemm.hpp"

namespace adcc::mm {

namespace {

class MmShardPart final : public core::ShardPart {
 public:
  MmShardPart(const MmShardPlan& plan, std::size_t index, std::size_t count,
              core::FaultSurface& fault)
      : plan_(plan), fault_(fault) {
    const std::size_t n = plan_.config().n;
    const std::size_t pr = MmShardPlan::grid_rows(count);
    const std::size_t pc = count / pr;
    const std::size_t tr = index / pc;
    const std::size_t tc = index % pc;
    r0_ = n * tr / pr;
    r1_ = n * (tr + 1) / pr;
    c0_ = n * tc / pc;
    c1_ = n * (tc + 1) / pc;
    tile_.resize((r1_ - r0_) * (c1_ - c0_));
  }

  void prepare(checkpoint::CheckpointSet* ckpt) override {
    std::fill(tile_.begin(), tile_.end(), 0.0);
    step_ = 0;
    if (ckpt != nullptr) {
      ckpt->add("tile", std::span<double>(tile_));
      ckpt->add("step", &step_, sizeof(step_));
    }
  }

  void compute(std::size_t unit, std::size_t phase, core::ShardExchange& exchange) override {
    (void)phase;
    (void)exchange;  // Zero-halo: A and B are shared immutable plan state.
    const std::size_t n = plan_.config().n;
    const std::size_t rank = plan_.config().rank_k;
    const std::size_t p0 = (unit - 1) * rank;
    const std::size_t k = std::min(rank, n - p0);
    // Tick-before-mutate: the whole panel update's access estimate up front.
    fault_.tick(k * (r1_ - r0_) + (r1_ - r0_) * (c1_ - c0_));
    linalg::gemm_panel_tile(plan_.a(), p0, k, plan_.b(), p0, r0_, r1_, c0_, c1_, tile_.data(),
                            /*accumulate=*/true);
  }

  void on_save(std::size_t unit) override { step_ = unit; }

  void clobber() override {
    std::fill(tile_.begin(), tile_.end(), 0.0);
    step_ = 0;
  }

  void restored(std::size_t units_done) override {
    if (units_done == 0) {
      std::fill(tile_.begin(), tile_.end(), 0.0);
      step_ = 0;
      return;
    }
    ADCC_CHECK(step_ == units_done,
               "mm shard checkpoint does not match the committed global epoch");
  }

  const std::vector<double>& tile() const { return tile_; }
  std::size_t r0() const { return r0_; }
  std::size_t r1() const { return r1_; }
  std::size_t c0() const { return c0_; }
  std::size_t c1() const { return c1_; }

 private:
  const MmShardPlan& plan_;
  core::FaultSurface& fault_;
  std::size_t r0_ = 0, r1_ = 0, c0_ = 0, c1_ = 0;
  std::vector<double> tile_;  ///< Owned C block (checkpointed).
  std::uint64_t step_ = 0;    ///< Durable progress mirror.
};

}  // namespace

MmShardPlan::MmShardPlan(const MmWorkloadConfig& cfg)
    : cfg_(cfg),
      panels_((cfg.n + cfg.rank_k - 1) / cfg.rank_k),
      a_(cfg.n, cfg.n),
      b_(cfg.n, cfg.n) {
  a_.fill_random(cfg.seed_a, -1, 1);
  b_.fill_random(cfg.seed_b, -1, 1);
}

std::size_t MmShardPlan::grid_rows(std::size_t count) {
  std::size_t pr = 1;
  for (std::size_t d = 1; d * d <= count; ++d) {
    if (count % d == 0) pr = d;
  }
  return pr;
}

std::unique_ptr<core::ShardPart> MmShardPlan::make_part(std::size_t index, std::size_t count,
                                                        core::FaultSurface& fault) {
  return std::make_unique<MmShardPart>(*this, index, count, fault);
}

bool MmShardPlan::verify(const std::vector<core::ShardPart*>& parts) {
  const std::size_t n = cfg_.n;
  linalg::Matrix c(n, n);
  for (core::ShardPart* p : parts) {
    auto* part = static_cast<MmShardPart*>(p);
    const std::size_t tn = part->c1() - part->c0();
    for (std::size_t i = part->r0(); i < part->r1(); ++i) {
      const double* src = part->tile().data() + (i - part->r0()) * tn;
      std::copy(src, src + tn, c.row(i).data() + part->c0());
    }
  }
  if (!reference_) {
    reference_.emplace(n, n);
    linalg::gemm(a_, b_, *reference_);
  }
  double scale = 1.0;
  for (const double v : reference_->flat()) scale = std::max(scale, std::fabs(v));
  return linalg::Matrix::max_abs_diff(c, *reference_) <= cfg_.verify_rel_tol * scale;
}

void MmShardPlan::tune_env(core::Mode mode, core::ModeEnvConfig& env, std::size_t count) const {
  const std::size_t pr = grid_rows(count);
  const std::size_t pc = count / pr;
  const std::size_t tile_bytes =
      ((cfg_.n + pr - 1) / pr) * ((cfg_.n + pc - 1) / pc) * sizeof(double);
  env.slot_bytes = tile_bytes + (1u << 20);
  env.arena_bytes = core::durability_kind(mode) == core::DurabilityKind::kCheckpoint
                        ? 2 * env.slot_bytes + (8u << 20)
                        : (1u << 20);
}

}  // namespace adcc::mm
