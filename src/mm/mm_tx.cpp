#include "mm/mm_tx.hpp"

#include <cstring>

#include "common/check.hpp"
#include "kernels/backend.hpp"
#include "linalg/gemm.hpp"

namespace adcc::mm {

using linalg::Matrix;

std::size_t mm_tx_data_bytes(std::size_t n) {
  return round_up((n + 1) * (n + 1) * sizeof(double), kCacheLine) + 16 * kCacheLine;
}

std::size_t mm_tx_log_bytes(std::size_t n) {
  const std::size_t payload = (n + 1) * (n + 1) * sizeof(double);
  return round_up(payload + payload / 32, kCacheLine) + 128 * kCacheLine;
}

MmTxResult run_mm_tx(const Matrix& a, const Matrix& b, std::size_t rank_k,
                     pmemtx::PersistentHeap& heap) {
  ADCC_CHECK(a.rows() == a.cols() && b.rows() == b.cols() && a.rows() == b.rows(),
             "square matrices of equal size required");
  const std::size_t n = a.rows();
  const std::size_t nc = n + 1;

  const Matrix ac = abft::encode_column_checksum(a);
  const Matrix br = abft::encode_row_checksum(b);

  std::span<double> cf = heap.allocate<double>(nc * nc);
  std::memset(cf.data(), 0, cf.size_bytes());
  heap.region().persist(cf.data(), cf.size_bytes());

  pmemtx::UndoLog log(heap);
  for (std::size_t s = 0; s < n; s += rank_k) {
    const std::size_t k = std::min(rank_k, n - s);
    pmemtx::Transaction tx(log);
    tx.add(cf);  // Snapshot the whole accumulator (undo log).
    core::active_kernel_backend().gemm_tile(ac.data() + s, ac.cols(), br.data() + s * nc, nc, nc,
                                            nc, k, cf.data(), nc, /*accumulate=*/true);
    tx.commit();
  }

  MmTxResult out;
  Matrix cfm(nc, nc);
  std::memcpy(cfm.data(), cf.data(), cf.size_bytes());
  out.c = abft::strip_checksums(cfm);
  out.log_stats = log.stats();
  return out;
}

}  // namespace adcc::mm
