#include "abft/abft_gemm.hpp"

#include "common/check.hpp"

namespace adcc::abft {

using linalg::Matrix;

AbftGemmResult abft_gemm(const Matrix& a, const Matrix& b, std::size_t rank_k,
                         const ChecksumTolerance& tol) {
  ADCC_CHECK(a.rows() == a.cols() && b.rows() == b.cols() && a.rows() == b.rows(),
             "square matrices of equal size required");
  ADCC_CHECK(rank_k >= 1, "rank must be positive");
  const std::size_t n = a.rows();

  const Matrix ac = encode_column_checksum(a);  // (n+1)×n
  const Matrix br = encode_row_checksum(b);     // n×(n+1)

  AbftGemmResult out;
  out.cf = Matrix(n + 1, n + 1);
  out.cf.set_zero();

  for (std::size_t s = 0; s < n; s += rank_k) {
    // Line 2 of Fig. 5: verify the checksum relationship of Cf before the
    // update (valid only at iteration boundaries; mid-iteration Cf is
    // inconsistent by construction — the crash-consistency problem).
    ChecksumReport rep = verify_full_checksums(out.cf, tol);
    ++out.stats.verifications;
    if (!rep.consistent()) {
      out.stats.detected_errors += rep.bad_rows.size();
      const std::size_t fixed = try_correct(out.cf, rep, tol);
      out.stats.corrected_errors += fixed;
      ADCC_CHECK(fixed > 0, "uncorrectable checksum error in ABFT GEMM");
    }
    const std::size_t k = std::min(rank_k, n - s);
    linalg::gemm_panel(ac, s, k, br, s, out.cf, /*accumulate=*/true);
  }
  return out;
}

Matrix strip_checksums(const Matrix& cf) {
  ADCC_CHECK(cf.rows() >= 2 && cf.cols() >= 2, "not a checksum matrix");
  Matrix c(cf.rows() - 1, cf.cols() - 1);
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < c.cols(); ++j) c(i, j) = cf(i, j);
  }
  return c;
}

}  // namespace adcc::abft
