#include "abft/checksum.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace adcc::abft {

using linalg::Matrix;

Matrix encode_column_checksum(const Matrix& a) {
  Matrix ac(a.rows() + 1, a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) ac(i, j) = a(i, j);
  }
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += a(i, j);
    ac(a.rows(), j) = s;
  }
  return ac;
}

Matrix encode_row_checksum(const Matrix& b) {
  Matrix br(b.rows(), b.cols() + 1);
  for (std::size_t i = 0; i < b.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < b.cols(); ++j) {
      br(i, j) = b(i, j);
      s += b(i, j);
    }
    br(i, b.cols()) = s;
  }
  return br;
}

namespace {

bool sums_match(double sum, double checksum, double magnitude, std::size_t terms,
                const ChecksumTolerance& tol) {
  // Scale grows with the accumulated magnitude and the number of summed terms;
  // sqrt(terms) reflects the expected error growth of random-sign rounding.
  const double scale =
      magnitude * tol.rel * std::sqrt(static_cast<double>(terms) + 1.0) + tol.abs;
  return std::fabs(sum - checksum) <= scale;
}

}  // namespace

ChecksumReport verify_row_checksums(const Matrix& cf, bool has_checksum_row,
                                    const ChecksumTolerance& tol) {
  ADCC_CHECK(cf.cols() >= 2, "checksum matrix too small");
  ChecksumReport rep;
  const std::size_t data_rows = has_checksum_row ? cf.rows() - 1 : cf.rows();
  const std::size_t data_cols = cf.cols() - 1;
  for (std::size_t i = 0; i < data_rows; ++i) {
    double s = 0.0;
    double mag = 0.0;
    for (std::size_t j = 0; j < data_cols; ++j) {
      s += cf(i, j);
      mag += std::fabs(cf(i, j));
    }
    if (!sums_match(s, cf(i, data_cols), mag + std::fabs(cf(i, data_cols)), data_cols, tol)) {
      rep.bad_rows.push_back(i);
    }
  }
  return rep;
}

ChecksumReport verify_full_checksums(const Matrix& cf, const ChecksumTolerance& tol) {
  ADCC_CHECK(cf.rows() >= 2 && cf.cols() >= 2, "checksum matrix too small");
  ChecksumReport rep = verify_row_checksums(cf, /*has_checksum_row=*/true, tol);
  const std::size_t data_rows = cf.rows() - 1;
  const std::size_t data_cols = cf.cols() - 1;
  for (std::size_t j = 0; j < data_cols; ++j) {
    double s = 0.0;
    double mag = 0.0;
    for (std::size_t i = 0; i < data_rows; ++i) {
      s += cf(i, j);
      mag += std::fabs(cf(i, j));
    }
    if (!sums_match(s, cf(data_rows, j), mag + std::fabs(cf(data_rows, j)), data_rows, tol)) {
      rep.bad_cols.push_back(j);
    }
  }
  return rep;
}

namespace {

double row_delta(const Matrix& cf, std::size_t r) {
  const std::size_t data_cols = cf.cols() - 1;
  double s = 0.0;
  for (std::size_t j = 0; j < data_cols; ++j) s += cf(r, j);
  return s - cf(r, data_cols);
}

double col_delta(const Matrix& cf, std::size_t c) {
  const std::size_t data_rows = cf.rows() - 1;
  double s = 0.0;
  for (std::size_t i = 0; i < data_rows; ++i) s += cf(i, c);
  return s - cf(data_rows, c);
}

}  // namespace

std::size_t try_correct(Matrix& cf, const ChecksumReport& report, const ChecksumTolerance& tol) {
  if (report.consistent()) return 0;
  // Isolated-error pattern: k bad rows, k bad columns, and a unique matching
  // between them by discrepancy magnitude.
  if (report.bad_rows.size() != report.bad_cols.size()) return 0;

  const std::size_t k = report.bad_rows.size();
  std::vector<double> rdelta(k), cdelta(k);
  double scale = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    rdelta[i] = row_delta(cf, report.bad_rows[i]);
    cdelta[i] = col_delta(cf, report.bad_cols[i]);
    scale = std::max({scale, std::fabs(rdelta[i]), std::fabs(cdelta[i])});
  }
  const double match_tol = 64.0 * tol.rel * scale + tol.abs;

  // Greedy unique matching: each bad row must match exactly one unused bad
  // column with (near-)equal delta; any ambiguity aborts the correction.
  std::vector<std::size_t> match(k, k);
  std::vector<bool> col_used(k, false);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t found = k;
    for (std::size_t j = 0; j < k; ++j) {
      if (col_used[j] || std::fabs(rdelta[i] - cdelta[j]) > match_tol) continue;
      if (found != k) return 0;  // Two candidate columns: ambiguous.
      found = j;
    }
    if (found == k) return 0;  // No candidate: not an isolated-error pattern.
    match[i] = found;
    col_used[found] = true;
  }

  Matrix backup = cf;
  for (std::size_t i = 0; i < k; ++i) {
    cf(report.bad_rows[i], report.bad_cols[match[i]]) -= rdelta[i];
  }
  if (!verify_full_checksums(cf, tol).consistent()) {
    cf = backup;  // The pattern was not actually isolated errors.
    return 0;
  }
  return k;
}

void rebuild_checksums(Matrix& cf) {
  ADCC_CHECK(cf.rows() >= 2 && cf.cols() >= 2, "checksum matrix too small");
  const std::size_t data_rows = cf.rows() - 1;
  const std::size_t data_cols = cf.cols() - 1;
  for (std::size_t i = 0; i < data_rows; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < data_cols; ++j) s += cf(i, j);
    cf(i, data_cols) = s;
  }
  for (std::size_t j = 0; j <= data_cols; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < data_rows; ++i) s += cf(i, j);
    cf(data_rows, j) = s;
  }
}

}  // namespace adcc::abft
