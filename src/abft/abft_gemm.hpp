// Rank-k ABFT matrix multiplication (paper Fig. 5) — the *original* algorithm
// our crash-consistent variant (mm/mm_cc) extends.
//
// Computes Cf = Ac·Br by rank-k updates, verifying Cf's checksum relationship
// at the top of every iteration and attempting single-error correction when a
// verification fails.
#pragma once

#include <cstdint>

#include "abft/checksum.hpp"
#include "linalg/gemm.hpp"

namespace adcc::abft {

struct AbftGemmStats {
  std::uint64_t verifications = 0;
  std::uint64_t detected_errors = 0;
  std::uint64_t corrected_errors = 0;
};

struct AbftGemmResult {
  linalg::Matrix cf;  ///< (n+1)×(n+1) full-checksum product.
  AbftGemmStats stats;
};

/// Fig. 5: full ABFT product of square n×n matrices with rank-k updates.
/// Throws ContractViolation if an uncorrectable error is detected (soft-error
/// usage; the crash-consistent variant recomputes instead).
AbftGemmResult abft_gemm(const linalg::Matrix& a, const linalg::Matrix& b, std::size_t rank_k,
                         const ChecksumTolerance& tol = {});

/// Strips checksums: returns the m×n data part of a full-checksum matrix.
linalg::Matrix strip_checksums(const linalg::Matrix& cf);

}  // namespace adcc::abft
