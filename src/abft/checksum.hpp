// ABFT checksum encodings for matrix multiplication (paper Eq. 3–6).
//
// For C = A·B (A: m×k, B: k×n):
//   Ac = [A ; vᵀA]   — column-checksum matrix, (m+1)×k, last row = column sums
//   Br = [B, Bw]     — row-checksum matrix, k×(n+1), last column = row sums
//   Cf = Ac·Br       — full-checksum matrix, (m+1)×(n+1): last row holds column
//                      sums of C, last column holds row sums of C.
// v and w are all-ones vectors (the paper's "typical" choice).
//
// The checksum relationship (Eq. 6) lets us *detect* any inconsistent element
// and *correct* it when it is the unique bad element in its row or column —
// exactly the machinery the paper redeploys from soft-error tolerance to crash
// consistency.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"

namespace adcc::abft {

/// Encodes the (m+1)×k column-checksum matrix of A (Eq. 3).
linalg::Matrix encode_column_checksum(const linalg::Matrix& a);

/// Encodes the k×(n+1) row-checksum matrix of B (Eq. 4).
linalg::Matrix encode_row_checksum(const linalg::Matrix& b);

/// Verification tolerance: |sum − checksum| ≤ tol_rel · scale, where scale
/// grows with the magnitudes involved (floating-point sums of n terms).
struct ChecksumTolerance {
  double rel = 1e-9;
  double abs = 1e-9;
};

/// Result of verifying a full-checksum matrix.
struct ChecksumReport {
  std::vector<std::size_t> bad_rows;  ///< rows whose row-sum ≠ row-checksum
  std::vector<std::size_t> bad_cols;  ///< cols whose col-sum ≠ col-checksum
  bool consistent() const { return bad_rows.empty() && bad_cols.empty(); }
};

/// Checks every row of `cf` against its last-column checksum. `cf` is
/// interpreted as a full- or row-checksum matrix: rows 0..rows-2 if
/// `has_checksum_row`, else all rows.
ChecksumReport verify_row_checksums(const linalg::Matrix& cf, bool has_checksum_row,
                                    const ChecksumTolerance& tol = {});

/// Checks rows AND columns of a full-checksum matrix (Eq. 6).
ChecksumReport verify_full_checksums(const linalg::Matrix& cf, const ChecksumTolerance& tol = {});

/// Attempts checksum-directed correction of isolated element errors.
///
/// A single corrupted element (r, c) makes exactly row r and column c
/// inconsistent, and the row discrepancy Σrow − checksum equals the column
/// discrepancy. k isolated errors in distinct rows AND distinct columns are
/// therefore correctable by matching row deltas to column deltas (unique
/// within tolerance) and subtracting the delta at each matched position.
/// Returns the number of corrected elements (0 if the pattern is ambiguous
/// or the post-correction verification still fails — the caller recomputes,
/// the paper's crash case).
std::size_t try_correct(linalg::Matrix& cf, const ChecksumReport& report,
                        const ChecksumTolerance& tol = {});

/// Recomputes the checksum row+column of a full-checksum matrix in place from
/// its data elements (used when *building* matrices, never for verification).
void rebuild_checksums(linalg::Matrix& cf);

}  // namespace adcc::abft
