#include "checkpoint/hetero_backend.hpp"

#include <cstring>

#include "common/check.hpp"

namespace adcc::checkpoint {

HeteroBackend::HeteroBackend(nvm::NvmRegion& region, nvm::DramCache& dram_cache,
                             std::size_t capacity_per_slot)
    : region_(region), dram_(dram_cache) {
  slots_[0] = region_.allocate<std::byte>(capacity_per_slot);
  slots_[1] = region_.allocate<std::byte>(capacity_per_slot);
  meta_ = region_.allocate<std::uint64_t>(2);
  meta_[0] = 0;
  meta_[1] = 0;
  region_.persist(meta_.data(), meta_.size_bytes());
}

void HeteroBackend::begin_slot(int slot, std::size_t image_bytes) {
  ADCC_CHECK(image_bytes <= slots_[slot].size(), "checkpoint exceeds slot capacity");
  // Every completed save drains at finish_slot, so anything still staged here
  // is debris of an interrupted save — draining it later would tear the other
  // slot's committed image. It was volatile at the failure; drop it.
  dram_.discard();
}

void HeteroBackend::write_span(int slot, std::size_t offset, const void* src,
                               std::size_t bytes) {
  // Copy 1: into the DRAM cache at DRAM speed (staging bookkeeping is one
  // device; overflowing writes force a partial drain inside).
  std::lock_guard<std::mutex> lock(media_mu_);
  dram_.write(slots_[slot].data() + offset, src, bytes);
}

void HeteroBackend::finish_slot(int) {
  // Copy 2: drain the DRAM cache to NVM (throttled) — durability point.
  dram_.drain();
}

void HeteroBackend::commit_marker(int slot, std::uint64_t version) {
  meta_[0] = static_cast<std::uint64_t>(slot);
  meta_[1] = version;
  region_.persist(meta_.data(), meta_.size_bytes());
}

std::size_t HeteroBackend::read_span(int slot, std::size_t offset, void* dst,
                                     std::size_t bytes) const {
  if (offset >= slots_[slot].size()) return 0;
  const std::size_t n = std::min(bytes, slots_[slot].size() - offset);
  std::memcpy(dst, slots_[slot].data() + offset, n);
  return n;
}

std::pair<int, std::uint64_t> HeteroBackend::latest() const {
  return {static_cast<int>(meta_[0]), meta_[1]};
}

}  // namespace adcc::checkpoint
