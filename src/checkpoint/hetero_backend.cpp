#include "checkpoint/hetero_backend.hpp"

#include <cstring>

#include "common/check.hpp"

namespace adcc::checkpoint {

HeteroBackend::HeteroBackend(nvm::NvmRegion& region, nvm::DramCache& dram_cache,
                             std::size_t capacity_per_slot)
    : region_(region), dram_(dram_cache) {
  slots_[0] = region_.allocate<std::byte>(capacity_per_slot);
  slots_[1] = region_.allocate<std::byte>(capacity_per_slot);
  meta_ = region_.allocate<std::uint64_t>(2);
  meta_[0] = 0;
  meta_[1] = 0;
  region_.persist(meta_.data(), meta_.size_bytes());
}

void HeteroBackend::save(int slot, std::uint64_t version, std::span<const ObjectView> objs) {
  ADCC_CHECK(slot == 0 || slot == 1, "two slots");
  ADCC_CHECK(total_bytes(objs) <= slots_[slot].size(), "checkpoint exceeds slot capacity");
  std::size_t off = 0;
  for (const ObjectView& o : objs) {
    // Copy 1: into the DRAM cache at DRAM speed.
    dram_.write(slots_[slot].data() + off, o.data, o.bytes);
    off += o.bytes;
  }
  // Copy 2: drain the DRAM cache to NVM (throttled) — durability point.
  dram_.drain();
  meta_[0] = static_cast<std::uint64_t>(slot);
  meta_[1] = version;
  region_.persist(meta_.data(), meta_.size_bytes());
  ++stats_.saves;
  stats_.bytes_saved += off;
}

std::uint64_t HeteroBackend::load(int slot, std::span<const ObjectView> objs) {
  std::size_t off = 0;
  for (const ObjectView& o : objs) {
    std::memcpy(o.data, slots_[slot].data() + off, o.bytes);
    off += o.bytes;
  }
  ++stats_.loads;
  stats_.bytes_loaded += off;
  return meta_[1];
}

std::pair<int, std::uint64_t> HeteroBackend::latest() const {
  return {static_cast<int>(meta_[0]), meta_[1]};
}

}  // namespace adcc::checkpoint
