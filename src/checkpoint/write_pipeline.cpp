#include "checkpoint/write_pipeline.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "core/telemetry.hpp"

namespace adcc::checkpoint {

WritePipeline::WritePipeline(int threads) : threads_(threads) {
  ADCC_CHECK(threads >= 1, "pipeline needs at least one worker");
}

void WritePipeline::run(std::size_t count, const ChunkFn& fn) {
  if (count == 0) return;
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads_), count));
  if (workers == 1) {
    ChunkScratch scratch;
    for (std::size_t i = 0; i < count; ++i) fn(i, scratch);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker = [&] {
    ChunkScratch scratch;
    for (std::size_t i; (i = next.fetch_add(1)) < count;) {
      if (abort.load(std::memory_order_relaxed)) break;
      try {
        fn(i, scratch);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  // Spawned workers inherit the caller's telemetry binding on a per-worker
  // "/wN" track; the calling thread (worker 0) keeps its ambient binding.
  const core::TelemetryBinding binding = core::Telemetry::current_binding();
  for (int t = 1; t < workers; ++t) {
    pool.emplace_back([&worker, &binding, t] {
      const core::TelemetryBind bind(binding, "/w" + std::to_string(t));
      worker();
    });
  }
  worker();  // The calling thread is worker 0.
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace adcc::checkpoint
