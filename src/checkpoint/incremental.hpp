// Incremental checkpointing (paper §I cites it as one of the classic
// checkpoint-overhead reducers: "incremental checkpoint that only checkpoints
// modified data to reduce checkpoint size").
//
// Since the chunk engine landed, this is a thin configuration of the shared
// durability path, not a parallel implementation: a single-slot (mirror
// style) NvmBackend with 4 KB chunks, driven through CheckpointSet's
// dirty-chunk CRC filter. save() writes only the chunks whose payload CRC
// changed since the previous checkpoint (or, with explicit dirty hints from
// the application, examines only the hinted chunks), making the cost
// proportional to the modified footprint rather than the object size.
// restore() loads the mirror back through the same verified chunk path.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "checkpoint/checkpoint_set.hpp"
#include "checkpoint/nvm_backend.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::checkpoint {

struct IncrementalStats {
  std::uint64_t saves = 0;
  std::uint64_t blocks_total = 0;    ///< Chunks examined across all saves.
  std::uint64_t blocks_written = 0;  ///< Chunks actually copied.
  std::uint64_t bytes_written = 0;
};

class IncrementalCheckpointSet {
 public:
  static constexpr std::size_t kBlock = 4096;  ///< Chunk size of the mirror.

  explicit IncrementalCheckpointSet(nvm::NvmRegion& region) : region_(region) {}

  /// Registers an object; must precede the first save (the mirror slot is
  /// sized and allocated at the first save).
  void add(std::string name, void* data, std::size_t bytes);

  /// A half-open dirty byte range within one object, used as a save() hint.
  struct DirtyRange {
    std::size_t object;  ///< Index in registration order.
    std::size_t offset;
    std::size_t bytes;
  };

  /// Full scan: checksums every chunk, writes the changed ones durably, bumps
  /// the version. Returns payload bytes written.
  std::size_t save();

  /// Hinted save: only chunks overlapping the given ranges are examined (the
  /// application knows what it touched — cheaper than scanning). Hints must
  /// cover every modification since the previous save; un-hinted dirty chunks
  /// silently age the mirror.
  std::size_t save(std::span<const DirtyRange> dirty);

  // NOTE on atomicity: with a single mirror slot there is no double buffer —
  // a crash *during* save() leaves the mirror mixing chunks of two
  // checkpoints. Unlike the seed, that state is now *detected*: the torn
  // chunks carry a version newer than the slot header, so restore() raises
  // TornCheckpoint instead of resurrecting a silently inconsistent image.
  // Applications needing mid-save crash atomicity should compose this with an
  // undo log over the mirror (pmemtx), or fall back to the double-buffered
  // CheckpointSet; the trade-off is the paper's §I incremental-vs-full
  // checkpoint discussion in miniature.

  /// Loads the mirror back into the live objects; returns the version
  /// (0 = no checkpoint committed yet, objects untouched).
  std::uint64_t restore();

  std::uint64_t version() const { return set_ ? set_->version() : 0; }
  const IncrementalStats& stats() const { return stats_; }

 private:
  struct Pending {
    std::string name;
    void* data;
    std::size_t bytes;
  };

  void freeze();
  std::size_t account(std::uint64_t saved_version);

  nvm::NvmRegion& region_;
  std::vector<Pending> pending_;
  std::unique_ptr<NvmBackend> backend_;  ///< One slot: the mirror.
  std::unique_ptr<CheckpointSet> set_;
  IncrementalStats stats_;
};

}  // namespace adcc::checkpoint
