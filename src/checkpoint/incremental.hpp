// Incremental checkpointing (paper §I cites it as one of the classic
// checkpoint-overhead reducers: "incremental checkpoint that only checkpoints
// modified data to reduce checkpoint size").
//
// An IncrementalCheckpointSet keeps a durable mirror of every registered
// object in an NVM arena. save() writes only the 4 KB blocks that changed
// since the previous checkpoint (detected by comparison against the mirror,
// or supplied as explicit dirty hints by the application), making the cost
// proportional to the modified footprint rather than the object size.
// restore() copies the mirror back — the mirror is always a consistent,
// committed checkpoint because block writes go through write_durable and the
// version marker is persisted last.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nvm/nvm_region.hpp"

namespace adcc::checkpoint {

struct IncrementalStats {
  std::uint64_t saves = 0;
  std::uint64_t blocks_total = 0;    ///< Blocks examined across all saves.
  std::uint64_t blocks_written = 0;  ///< Blocks actually copied.
  std::uint64_t bytes_written = 0;
};

class IncrementalCheckpointSet {
 public:
  static constexpr std::size_t kBlock = 4096;

  explicit IncrementalCheckpointSet(nvm::NvmRegion& region) : region_(region) {}

  /// Registers an object; allocates its mirror. Must precede the first save.
  void add(std::string name, void* data, std::size_t bytes);

  /// A half-open dirty byte range within one object, used as a save() hint.
  struct DirtyRange {
    std::size_t object;  ///< Index in registration order.
    std::size_t offset;
    std::size_t bytes;
  };

  /// Full scan: compares every block against the mirror, writes the changed
  /// ones durably, bumps the version. Returns bytes written.
  std::size_t save();

  /// Hinted save: only blocks overlapping the given ranges are compared and
  /// written (the application knows what it touched — cheaper than scanning).
  /// Hints must cover every modification since the previous save; un-hinted
  /// dirty blocks silently age the mirror.
  std::size_t save(std::span<const DirtyRange> dirty);

  // NOTE on atomicity: a crash *during* save() can leave the mirror mixing
  // blocks of two checkpoints (the version marker, persisted last, still
  // names the old one). Applications needing mid-save crash atomicity should
  // compose this with an undo log over the mirror (pmemtx), or fall back to
  // the double-buffered CheckpointSet; the trade-off is the paper's §I
  // incremental-vs-full checkpoint discussion in miniature.

  /// Copies the mirror back into the live objects; returns the version
  /// (0 = no checkpoint committed yet, objects untouched).
  std::uint64_t restore();

  std::uint64_t version() const { return committed_version_; }
  const IncrementalStats& stats() const { return stats_; }

 private:
  struct Object {
    std::string name;
    std::byte* live;
    std::size_t bytes;
    std::span<std::byte> mirror;
  };

  std::size_t save_block(Object& o, std::size_t block_off);
  void commit();

  nvm::NvmRegion& region_;
  std::vector<Object> objects_;
  std::span<std::uint64_t> version_cell_;
  std::uint64_t committed_version_ = 0;
  bool frozen_ = false;
  IncrementalStats stats_;
};

}  // namespace adcc::checkpoint
