#include "checkpoint/backend.hpp"

#include <cstring>
#include <mutex>

#include "checkpoint/write_pipeline.hpp"
#include "common/check.hpp"
#include "core/telemetry.hpp"

namespace adcc::checkpoint {

namespace {

std::string slot_str(int slot) { return "slot " + std::to_string(slot); }

/// Internal unwind used to stop a cancelled drain: abort_drain() flips the
/// cancel flag, the drain's select wrapper throws this, the WritePipeline
/// aborts the remaining chunks, and join swallows it (a cancelled drain is the
/// emulated power failure, not an error).
struct DrainCancelled {};

/// Serializes the slot prologue: SlotHeader + object-size table.
std::vector<std::byte> make_header_image(const ChunkLayout& layout, std::uint64_t version,
                                         std::size_t chunk_bytes) {
  SlotHeader h;
  h.magic = kSlotMagic;
  h.format = kChunkFormat;
  h.version = version;
  h.chunk_bytes = chunk_bytes;
  h.payload_bytes = layout.payload_bytes;
  h.object_count = static_cast<std::uint32_t>(layout.object_bytes.size());
  h.chunk_count = static_cast<std::uint32_t>(layout.chunks.size());
  h.table_crc = crc32(layout.object_bytes.data(),
                      layout.object_bytes.size() * sizeof(std::uint64_t));
  h.header_crc = slot_header_crc(h);

  std::vector<std::byte> image(layout.header_bytes);
  std::memcpy(image.data(), &h, sizeof(h));
  std::memcpy(image.data() + sizeof(h), layout.object_bytes.data(),
              layout.object_bytes.size() * sizeof(std::uint64_t));
  return image;
}

}  // namespace

void Backend::configure_chunks(const ChunkConfig& cfg) {
  ADCC_CHECK(cfg.chunk_bytes > 0, "chunk size must be positive");
  ADCC_CHECK(cfg.threads >= 1, "checkpoint pipeline needs at least one worker");
  chunks_ = cfg;
}

SaveReceipt Backend::save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                          const ChunkHooks& hooks, const ChunkLayout* memo) {
  return do_save(slot, version, objs, hooks, memo, kPointChunkSaved, nullptr);
}

SaveReceipt Backend::do_save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                             const ChunkHooks& hooks, const ChunkLayout* memo,
                             const char* point_name, const std::atomic<bool>* cancel) {
  ADCC_CHECK(slot >= 0 && slot < slot_count(), "checkpoint slot out of range");
  ChunkLayout built;
  if (memo == nullptr) {
    built = ChunkLayout::make(objs, chunks_.chunk_bytes);
    memo = &built;
  }
  const ChunkLayout& layout = *memo;
  begin_slot(slot, layout.image_bytes);

  SaveReceipt receipt;
  receipt.chunks.assign(layout.chunks.size(), SaveReceipt::Chunk::kUnselected);
  receipt.crcs.assign(layout.chunks.size(), 0);

  std::mutex point_mu;
  WritePipeline pipeline(chunks_.threads);
  pipeline.run(layout.chunks.size(), [&](std::size_t i, std::vector<std::byte>& scratch) {
    const ChunkLayout::Chunk& c = layout.chunks[i];
    // Cancelled drains stop between chunks: the chunks already persisted stay
    // persisted (the torn image a power failure leaves), nothing else lands.
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) throw DrainCancelled{};
    if (hooks.select && !hooks.select(i)) return;
    scratch.resize(sizeof(ChunkHeader) + c.payload_bytes);
    const auto* src = static_cast<const std::byte*>(objs[c.object].data) + c.object_offset;
    {
      const core::StageTimer timer("ckpt/stage");
      std::memcpy(scratch.data() + sizeof(ChunkHeader), src, c.payload_bytes);
    }
    std::uint32_t crc;
    {
      const core::StageTimer timer("ckpt/crc");
      crc = crc32(scratch.data() + sizeof(ChunkHeader), c.payload_bytes);
    }
    receipt.crcs[i] = crc;
    if (hooks.should_write && !hooks.should_write(i, crc)) {
      receipt.chunks[i] = SaveReceipt::Chunk::kClean;
      return;
    }
    ChunkHeader h;
    h.magic = kChunkMagic;
    h.object = c.object;
    h.index = c.index;
    h.payload_bytes = c.payload_bytes;
    h.version = version;
    h.payload_crc = crc;
    h.header_crc = chunk_header_crc(h);
    std::memcpy(scratch.data(), &h, sizeof(h));
    {
      // ckpt/queue is the device-facing cost: the medium write plus any
      // device-bandwidth throttle wait. The sweep surfaces it as t_io.
      const core::StageTimer timer("ckpt/queue");
      write_span(slot, c.image_offset, scratch.data(), scratch.size());
    }
    receipt.chunks[i] = SaveReceipt::Chunk::kWritten;
    if (hooks.point) {
      // Serialized: the fault surface's one-shot occurrence counting (and its
      // CrashException) must not race across pipeline workers.
      std::lock_guard<std::mutex> lock(point_mu);
      hooks.point(point_name);
    }
  });

  for (std::size_t i = 0; i < layout.chunks.size(); ++i) {
    switch (receipt.chunks[i]) {
      case SaveReceipt::Chunk::kWritten:
        ++receipt.written;
        receipt.payload_bytes += layout.chunks[i].payload_bytes;
        break;
      case SaveReceipt::Chunk::kClean:
        ++receipt.skipped;
        break;
      case SaveReceipt::Chunk::kUnselected:
        break;
    }
  }

  // Slot header after every chunk, marker after the slot is whole — a crash
  // anywhere above leaves the previous checkpoint committed and this slot
  // detectably torn (chunks newer than its header). A cancellation landing
  // after the last chunk must stop here too: the emulated power failure may
  // never reach the commit point.
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) throw DrainCancelled{};
  {
    const core::StageTimer timer("ckpt/commit");
    const std::vector<std::byte> header = make_header_image(layout, version, chunks_.chunk_bytes);
    write_span(slot, 0, header.data(), header.size());
    finish_slot(slot);
    commit_marker(slot, version);
  }
  if (core::Telemetry* tel = core::Telemetry::current()) {
    tel->count("ckpt/chunks_written", receipt.written);
    tel->count("ckpt/chunks_skipped", receipt.skipped);
  }

  ++stats_.saves;
  stats_.bytes_saved += receipt.payload_bytes;
  stats_.chunks_written += receipt.written;
  stats_.chunks_skipped += receipt.skipped;
  return receipt;
}

void Backend::save_async(int slot, std::uint64_t version, std::vector<ObjectView> objs,
                         ChunkHooks hooks, std::shared_ptr<const ChunkLayout> layout,
                         std::shared_ptr<const void> keepalive) {
  ADCC_CHECK(drain_ == nullptr, "an async save is already draining (join it first)");
  auto drain = std::make_unique<Drain>();
  drain->objs = std::move(objs);
  drain->layout = std::move(layout);
  drain->keepalive = std::move(keepalive);
  Drain* d = drain.get();
  // The drain thread inherits the caller's telemetry binding under a "/drain"
  // track so its stage scopes merge into the owning cell and get their own
  // trace timeline; ckpt/drain is the drain's wall time (it overlaps the
  // compute it hides — that overlap is the point of async).
  const core::TelemetryBinding binding = core::Telemetry::current_binding();
  d->thread = std::thread([this, d, slot, version, binding, hooks = std::move(hooks)] {
    const core::TelemetryBind bind(binding, "/drain");
    const core::StageTimer timer("ckpt/drain");
    try {
      d->receipt = do_save(slot, version, d->objs, hooks,
                           d->layout ? d->layout.get() : nullptr, kPointChunkDrained,
                           &d->cancel);
    } catch (const DrainCancelled&) {
      // The emulated power failure: neither a receipt nor an error — the
      // chunks already persisted are the torn evidence recovery will probe.
    } catch (...) {
      d->error = std::current_exception();
    }
  });
  drain_ = std::move(drain);
}

bool Backend::drain_pending() const { return drain_ != nullptr; }

std::optional<SaveReceipt> Backend::join_drain() {
  if (!drain_) return std::nullopt;
  // Take ownership first: the drain slot must be free again even when the
  // drain's exception propagates out of here (the caller's retry path saves
  // into the same slot).
  const std::unique_ptr<Drain> d = std::move(drain_);
  d->thread.join();
  if (d->error) std::rethrow_exception(d->error);
  ADCC_CHECK(d->receipt.has_value(), "drain was cancelled; abort_drain owns that path");
  return d->receipt;
}

void Backend::abort_drain() noexcept {
  if (!drain_) return;
  const std::unique_ptr<Drain> d = std::move(drain_);
  d->cancel.store(true, std::memory_order_relaxed);
  d->thread.join();
  // A drain that finished (or died) before the cancel landed is equally
  // swallowed: the caller declared a power failure, so the committed-or-torn
  // distinction is left to the marker and recovery's probe, as it would be on
  // real hardware.
}

std::uint64_t Backend::load(int slot, std::span<const ObjectView> objs,
                            const ChunkHooks& hooks) {
  ADCC_CHECK(slot >= 0 && slot < slot_count(), "checkpoint slot out of range");

  SlotHeader h;
  if (read_span(slot, 0, &h, sizeof(h)) != sizeof(h) || h.magic != kSlotMagic ||
      h.format != kChunkFormat || h.header_crc != slot_header_crc(h)) {
    throw TornCheckpoint(slot_str(slot) + " holds no consistent checkpoint header");
  }
  std::vector<std::uint64_t> table(h.object_count);
  const std::size_t table_bytes = table.size() * sizeof(std::uint64_t);
  if (read_span(slot, sizeof(SlotHeader), table.data(), table_bytes) != table_bytes ||
      crc32(table.data(), table_bytes) != h.table_crc) {
    throw TornCheckpoint(slot_str(slot) + " has a corrupt object table");
  }
  // The explicit layout contract: a mismatched object set must fail loudly
  // BEFORE any byte is copied over a live object.
  if (table.size() != objs.size()) {
    throw LayoutMismatch(slot_str(slot) + " holds " + std::to_string(table.size()) +
                         " objects, caller registered " + std::to_string(objs.size()));
  }
  for (std::size_t i = 0; i < objs.size(); ++i) {
    if (table[i] != objs[i].bytes) {
      throw LayoutMismatch(slot_str(slot) + " object '" + objs[i].name + "' was saved with " +
                           std::to_string(table[i]) + " bytes, caller registered " +
                           std::to_string(objs[i].bytes));
    }
  }

  // Offsets from the *saved* chunk size, so images survive --ckpt_chunk_kb
  // reconfiguration between save and load.
  const ChunkLayout layout = ChunkLayout::make(objs, static_cast<std::size_t>(h.chunk_bytes));
  ADCC_CHECK(layout.chunks.size() == h.chunk_count,
             "slot header chunk count disagrees with its own layout");

  std::vector<std::byte> scratch;
  std::size_t payload_loaded = 0;
  for (std::size_t i = 0; i < layout.chunks.size(); ++i) {
    const ChunkLayout::Chunk& c = layout.chunks[i];
    scratch.resize(sizeof(ChunkHeader) + c.payload_bytes);
    if (read_span(slot, c.image_offset, scratch.data(), scratch.size()) != scratch.size()) {
      throw TornCheckpoint(slot_str(slot) + " is truncated at chunk " + std::to_string(i));
    }
    ChunkHeader ch;
    std::memcpy(&ch, scratch.data(), sizeof(ch));
    const std::string where = slot_str(slot) + " object " + std::to_string(c.object) +
                              " chunk " + std::to_string(c.index);
    if (ch.magic != kChunkMagic || ch.header_crc != chunk_header_crc(ch) ||
        ch.object != c.object || ch.index != c.index || ch.payload_bytes != c.payload_bytes) {
      throw TornCheckpoint(where + " has a torn header");
    }
    if (ch.version > h.version) {
      throw TornCheckpoint(where + " belongs to an uncommitted newer save (torn write)");
    }
    if (crc32(scratch.data() + sizeof(ChunkHeader), c.payload_bytes) != ch.payload_crc) {
      throw TornCheckpoint(where + " fails its payload CRC (torn write)");
    }
    std::memcpy(static_cast<std::byte*>(objs[c.object].data) + c.object_offset,
                scratch.data() + sizeof(ChunkHeader), c.payload_bytes);
    payload_loaded += c.payload_bytes;
    ++stats_.chunks_loaded;
    if (hooks.point) hooks.point(kPointChunkLoaded);
  }

  ++stats_.loads;
  stats_.bytes_loaded += payload_loaded;
  return h.version;
}

TornProbe Backend::probe_torn(int slot, std::span<const ObjectView> objs) {
  ADCC_CHECK(slot >= 0 && slot < slot_count(), "checkpoint slot out of range");
  TornProbe probe;

  // The slot's own committed version is the baseline; an unreadable or absent
  // header means nothing was ever committed here (baseline 0).
  std::uint64_t base = 0;
  std::size_t layout_chunk_bytes = chunks_.chunk_bytes;
  SlotHeader h;
  if (read_span(slot, 0, &h, sizeof(h)) == sizeof(h) && h.magic == kSlotMagic) {
    if (h.format == kChunkFormat && h.header_crc == slot_header_crc(h)) {
      base = h.version;
      // Scan at the offsets the slot was actually cut with (load() supports
      // --ckpt_chunk_kb reconfiguration between save and load; so must the
      // torn classifier).
      if (h.chunk_bytes > 0) layout_chunk_bytes = static_cast<std::size_t>(h.chunk_bytes);
    } else {
      ++probe.torn_chunks;  // A half-written slot header is torn evidence itself.
    }
  }

  const ChunkLayout layout = ChunkLayout::make(objs, layout_chunk_bytes);
  for (const ChunkLayout::Chunk& c : layout.chunks) {
    ChunkHeader ch;
    if (read_span(slot, c.image_offset, &ch, sizeof(ch)) != sizeof(ch)) break;
    ++probe.chunks_probed;
    if (ch.magic != kChunkMagic) continue;  // Blank / never-written span.
    if (ch.header_crc != chunk_header_crc(ch) || ch.version > base) ++probe.torn_chunks;
  }
  return probe;
}

std::size_t Backend::read_image(int slot, std::span<std::byte> out) const {
  return read_span(slot, 0, out.data(), out.size());
}

}  // namespace adcc::checkpoint
