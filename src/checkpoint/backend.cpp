#include "checkpoint/backend.hpp"

#include <cstring>

#include "checkpoint/write_pipeline.hpp"
#include "common/check.hpp"
#include "core/telemetry.hpp"

namespace adcc::checkpoint {

namespace {

std::string slot_str(int slot) { return "slot " + std::to_string(slot); }

/// Internal unwind used to stop a cancelled drain: abort_drain() flips the
/// cancel flag, the drain's per-chunk check throws this, the WritePipeline
/// aborts the remaining chunks, and the ring worker swallows it (a cancelled
/// drain is the emulated power failure, not an error).
struct DrainCancelled {};

/// Serializes the slot prologue: SlotHeader + object-size table.
std::vector<std::byte> make_header_image(const ChunkLayout& layout, std::uint64_t version,
                                         std::size_t chunk_bytes) {
  SlotHeader h;
  h.magic = kSlotMagic;
  h.format = kChunkFormat;
  h.version = version;
  h.chunk_bytes = chunk_bytes;
  h.payload_bytes = layout.payload_bytes;
  h.object_count = static_cast<std::uint32_t>(layout.object_bytes.size());
  h.chunk_count = static_cast<std::uint32_t>(layout.chunks.size());
  h.table_crc = crc32(layout.object_bytes.data(),
                      layout.object_bytes.size() * sizeof(std::uint64_t));
  h.header_crc = slot_header_crc(h);

  std::vector<std::byte> image(layout.header_bytes);
  std::memcpy(image.data(), &h, sizeof(h));
  std::memcpy(image.data() + sizeof(h), layout.object_bytes.data(),
              layout.object_bytes.size() * sizeof(std::uint64_t));
  return image;
}

}  // namespace

Backend::Backend() = default;

Backend::~Backend() { abort_drain(); }

// ---- Async drain ring ----------------------------------------------------

/// One queued asynchronous save, exactly the save_async() arguments plus the
/// caller's telemetry binding (each job re-binds on the worker).
struct Backend::DrainJob {
  int slot = 0;
  std::uint64_t version = 0;
  std::vector<ObjectView> objs;
  ChunkHooks hooks;
  std::shared_ptr<const ChunkLayout> layout;
  std::shared_ptr<const void> keepalive;
  core::TelemetryBinding binding;
};

/// The drain ring: a FIFO job queue, one worker thread, and the outcomes
/// awaiting consumption. Jobs run strictly in order — save K fully commits
/// before save K+1 touches media — so crash semantics match back-to-back
/// synchronous saves with at most one save mid-flight on the medium.
struct Backend::Ring {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::deque<DrainJob> queue;
  std::deque<DrainOutcome> done;
  bool running = false;  ///< A job is executing right now.
  bool failed = false;   ///< A job failed; later jobs skip until acknowledged.
  bool stop = false;
  std::atomic<bool> cancel{false};  ///< Cancels the executing job's chunks.
  std::thread worker;
};

void Backend::ensure_worker() {
  if (!ring_) ring_ = std::make_unique<Ring>();
  Ring& r = *ring_;
  if (r.worker.joinable()) return;
  r.stop = false;
  r.cancel.store(false, std::memory_order_relaxed);
  r.worker = std::thread([this] { drain_worker(); });
}

void Backend::drain_worker() {
  Ring& r = *ring_;
  std::unique_lock<std::mutex> lock(r.mu);
  for (;;) {
    r.cv.wait(lock, [&] { return r.stop || !r.queue.empty(); });
    if (r.stop) return;
    DrainJob job = std::move(r.queue.front());
    r.queue.pop_front();
    if (r.failed) {
      // A job enqueued after the failure landed (the enqueuer had not yet
      // consumed the error): it must not touch media either. Stop-at-first-
      // failure holds until the caller acknowledges the failed outcome.
      DrainOutcome skip;
      skip.slot = job.slot;
      skip.version = job.version;
      skip.skipped = true;
      r.done.push_back(std::move(skip));
      r.cv.notify_all();
      continue;
    }
    r.running = true;
    lock.unlock();

    DrainOutcome out;
    out.slot = job.slot;
    out.version = job.version;
    bool failed = false;
    {
      // The job inherits its enqueuer's telemetry binding under a "/drain"
      // track so its stage scopes merge into the owning cell and get their
      // own trace timeline; ckpt/drain is the drain's wall time (it overlaps
      // the compute it hides — that overlap is the point of async).
      const core::TelemetryBind bind(job.binding, "/drain");
      const core::StageTimer timer("ckpt/drain");
      try {
        out.receipt = do_save(job.slot, job.version, job.objs, job.hooks,
                              job.layout ? job.layout.get() : nullptr, kPointChunkDrained,
                              &r.cancel);
      } catch (const DrainCancelled&) {
        // The emulated power failure: neither a receipt nor an error — the
        // chunks already persisted are the torn evidence recovery will probe.
      } catch (...) {
        out.error = std::current_exception();
        failed = true;
      }
    }

    lock.lock();
    r.running = false;
    r.done.push_back(std::move(out));
    if (failed) {
      // The ring stops at the first failure: the jobs queued behind it never
      // ran (their slots are untouched) — surface them as skipped outcomes so
      // the caller can roll its version bookkeeping back precisely. The
      // `failed` latch extends the same treatment to jobs that arrive after
      // this conversion, until acknowledge_drain_failure().
      r.failed = true;
      while (!r.queue.empty()) {
        DrainOutcome skip;
        skip.slot = r.queue.front().slot;
        skip.version = r.queue.front().version;
        skip.skipped = true;
        r.queue.pop_front();
        r.done.push_back(std::move(skip));
      }
    }
    r.cv.notify_all();
  }
}

void Backend::save_async(int slot, std::uint64_t version, std::vector<ObjectView> objs,
                         ChunkHooks hooks, std::shared_ptr<const ChunkLayout> layout,
                         std::shared_ptr<const void> keepalive) {
  ensure_worker();
  DrainJob job;
  job.slot = slot;
  job.version = version;
  job.objs = std::move(objs);
  job.hooks = std::move(hooks);
  job.layout = std::move(layout);
  job.keepalive = std::move(keepalive);
  job.binding = core::Telemetry::current_binding();
  {
    std::lock_guard<std::mutex> lock(ring_->mu);
    ring_->queue.push_back(std::move(job));
  }
  ring_->cv.notify_all();
}

std::size_t Backend::drains_pending() const {
  if (!ring_) return 0;
  std::lock_guard<std::mutex> lock(ring_->mu);
  return ring_->queue.size() + (ring_->running ? 1 : 0) + ring_->done.size();
}

DrainOutcome Backend::take_drain_outcome() {
  ADCC_CHECK(drains_pending() > 0, "no drain outcome to take");
  Ring& r = *ring_;
  std::unique_lock<std::mutex> lock(r.mu);
  r.cv.wait(lock, [&] { return !r.done.empty(); });
  DrainOutcome out = std::move(r.done.front());
  r.done.pop_front();
  return out;
}

void Backend::acknowledge_drain_failure() {
  if (!ring_) return;
  std::lock_guard<std::mutex> lock(ring_->mu);
  ring_->failed = false;
}

std::optional<SaveReceipt> Backend::join_drain() {
  std::optional<SaveReceipt> last;
  std::exception_ptr first_error;
  while (drains_pending() > 0) {
    DrainOutcome out = take_drain_outcome();
    if (out.error && !first_error) first_error = out.error;
    if (out.receipt) last = std::move(out.receipt);
  }
  if (first_error) std::rethrow_exception(first_error);
  return last;
}

void Backend::abort_drain() noexcept {
  if (!ring_) return;
  Ring& r = *ring_;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    // Queued jobs die unstarted (their slots were never touched); the
    // executing job is cancelled cooperatively between chunks. A job that
    // finished (or died) before the cancel landed is equally swallowed: the
    // caller declared a power failure, so the committed-or-torn distinction
    // is left to the marker and recovery's probe, as on real hardware.
    r.queue.clear();
    r.stop = true;
    r.cancel.store(true, std::memory_order_relaxed);
  }
  r.cv.notify_all();
  if (r.worker.joinable()) r.worker.join();
  std::lock_guard<std::mutex> lock(r.mu);
  r.done.clear();
  r.failed = false;
  r.stop = false;
  r.cancel.store(false, std::memory_order_relaxed);
}

// ---- Save ----------------------------------------------------------------

void Backend::configure_chunks(const ChunkConfig& cfg) {
  ADCC_CHECK(cfg.chunk_bytes > 0, "chunk size must be positive");
  ADCC_CHECK(cfg.threads >= 1, "checkpoint pipeline needs at least one worker");
  ADCC_CHECK(cfg.async_depth >= 1, "async ring depth must be at least 1");
  chunks_ = cfg;
}

SaveReceipt Backend::save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                          const ChunkHooks& hooks, const ChunkLayout* memo) {
  return do_save(slot, version, objs, hooks, memo, kPointChunkSaved, nullptr);
}

SaveReceipt Backend::do_save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                             const ChunkHooks& hooks, const ChunkLayout* memo,
                             const char* point_name, const std::atomic<bool>* cancel) {
  ADCC_CHECK(slot >= 0 && slot < slot_count(), "checkpoint slot out of range");
  ChunkLayout built;
  if (memo == nullptr) {
    built = ChunkLayout::make(objs, chunks_.chunk_bytes);
    memo = &built;
  }
  const ChunkLayout& layout = *memo;
  begin_slot(slot, layout.image_bytes);

  SaveReceipt receipt;
  receipt.chunks.assign(layout.chunks.size(), SaveReceipt::Chunk::kUnselected);
  receipt.crcs.assign(layout.chunks.size(), 0);
  std::vector<std::uint32_t> stored_bytes(layout.chunks.size(), 0);

  auto* cache = hooks.crc_cache.get();
  ADCC_CHECK(cache == nullptr || cache->size() == layout.chunks.size(),
             "per-slot CRC cache does not match the layout");
  const bool compressing = chunks_.compress.codec != Codec::kRaw;

  std::mutex point_mu;
  const auto fire_point = [&](const char* name) {
    if (!hooks.point) return;
    // Serialized: the fault surface's one-shot occurrence counting (and its
    // CrashException) must not race across pipeline workers.
    std::lock_guard<std::mutex> lock(point_mu);
    hooks.point(name);
  };

  WritePipeline pipeline(chunks_.threads);
  pipeline.run(layout.chunks.size(), [&](std::size_t i, ChunkScratch& scratch) {
    const ChunkLayout::Chunk& c = layout.chunks[i];
    // Cancelled drains stop between chunks: the chunks already persisted stay
    // persisted (the torn image a power failure leaves), nothing else lands.
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) throw DrainCancelled{};
    if (hooks.select && !hooks.select(i)) return;
    scratch.raw.resize(sizeof(ChunkHeader) + c.payload_bytes);
    const auto* src = static_cast<const std::byte*>(objs[c.object].data) + c.object_offset;
    {
      const core::StageTimer timer("ckpt/stage");
      std::memcpy(scratch.raw.data() + sizeof(ChunkHeader), src, c.payload_bytes);
    }
    std::uint32_t crc;
    {
      const core::StageTimer timer("ckpt/crc");
      crc = crc32(scratch.raw.data() + sizeof(ChunkHeader), c.payload_bytes);
    }
    receipt.crcs[i] = crc;
    const bool clean = cache != nullptr && (*cache)[i].has_value() && *(*cache)[i] == crc;
    if (clean && !hooks.in_place) {
      receipt.chunks[i] = SaveReceipt::Chunk::kClean;
      return;
    }
    if (clean && hooks.in_place) {
      // Dirty-chunk commit: the payload on media already matches — advance
      // only the header's epoch stamp so the copy stays provably valid for
      // this version (the salvage coherence interval). An on-media header
      // that fails validation falls through to a full rewrite.
      ChunkHeader h;
      if (read_span(slot, c.image_offset, &h, sizeof(h)) == sizeof(h) &&
          h.magic == kChunkMagic && h.header_crc == chunk_header_crc(h) &&
          h.object == c.object && h.index == c.index &&
          h.payload_bytes == c.payload_bytes && h.payload_crc == crc) {
        h.epoch = version;
        h.header_crc = chunk_header_crc(h);
        {
          const core::StageTimer timer("ckpt/queue");
          write_span(slot, c.image_offset, &h, sizeof(h));
        }
        receipt.chunks[i] = SaveReceipt::Chunk::kStamped;
        fire_point(point_name);
        return;
      }
    }

    ChunkHeader h;
    h.magic = kChunkMagic;
    h.object = c.object;
    h.index = c.index;
    h.payload_bytes = c.payload_bytes;
    h.version = version;
    h.epoch = version;
    h.stored_bytes = c.payload_bytes;
    h.codec = static_cast<std::uint32_t>(Codec::kRaw);
    h.payload_crc = crc;
    h.stored_crc = crc;

    std::byte* out = scratch.raw.data();
    std::size_t out_bytes = scratch.raw.size();
    if (compressing) {
      std::size_t packed;
      {
        const core::StageTimer timer("ckpt/compress");
        packed = lz_compress(scratch.raw.data() + sizeof(ChunkHeader), c.payload_bytes,
                             scratch.packed, chunks_.compress.level);
      }
      if (packed > 0) {
        h.codec = static_cast<std::uint32_t>(Codec::kLz);
        h.stored_bytes = static_cast<std::uint32_t>(packed);
        h.stored_crc = crc32(scratch.packed.data(), packed);
        const auto* hp = reinterpret_cast<const std::byte*>(&h);
        scratch.packed.insert(scratch.packed.begin(), hp, hp + sizeof(h));
        out = scratch.packed.data();
        out_bytes = sizeof(h) + packed;
      }
      fire_point(kPointChunkCompressed);
    }
    h.header_crc = chunk_header_crc(h);
    std::memcpy(out, &h, sizeof(h));
    {
      // ckpt/queue is the device-facing cost: the medium write plus any
      // device-bandwidth throttle wait. The sweep surfaces it as t_io.
      const core::StageTimer timer("ckpt/queue");
      write_span(slot, c.image_offset, out, out_bytes);
    }
    stored_bytes[i] = h.stored_bytes;
    receipt.chunks[i] = SaveReceipt::Chunk::kWritten;
    // Cache update strictly AFTER the media write: a crash between the two
    // leaves a stale (pessimistic) entry, never an optimistic one that would
    // let a later save skip a chunk the media does not actually hold.
    if (cache != nullptr) (*cache)[i] = crc;
    fire_point(point_name);
  });

  for (std::size_t i = 0; i < layout.chunks.size(); ++i) {
    switch (receipt.chunks[i]) {
      case SaveReceipt::Chunk::kWritten:
        ++receipt.written;
        receipt.payload_bytes += layout.chunks[i].payload_bytes;
        receipt.stored_bytes += stored_bytes[i];
        break;
      case SaveReceipt::Chunk::kClean:
        ++receipt.skipped;
        break;
      case SaveReceipt::Chunk::kStamped:
        ++receipt.stamped;
        break;
      case SaveReceipt::Chunk::kUnselected:
        break;
    }
  }

  // Slot header after every chunk, marker after the slot is whole — a crash
  // anywhere above leaves the previous checkpoint committed and this slot
  // detectably torn (chunks newer than its header). A cancellation landing
  // after the last chunk must stop here too: the emulated power failure may
  // never reach the commit point.
  if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) throw DrainCancelled{};
  {
    const core::StageTimer timer("ckpt/commit");
    const std::vector<std::byte> header = make_header_image(layout, version, chunks_.chunk_bytes);
    write_span(slot, 0, header.data(), header.size());
    finish_slot(slot);
    commit_marker(slot, version);
  }
  if (core::Telemetry* tel = core::Telemetry::current()) {
    tel->count("ckpt/chunks_written", receipt.written);
    tel->count("ckpt/chunks_skipped", receipt.skipped);
    if (hooks.in_place) tel->count("ckpt/chunks_stamped", receipt.stamped);
  }

  ++stats_.saves;
  stats_.bytes_saved += receipt.payload_bytes;
  stats_.bytes_stored += receipt.stored_bytes;
  stats_.chunks_written += receipt.written;
  stats_.chunks_skipped += receipt.skipped;
  stats_.chunks_stamped += receipt.stamped;
  return receipt;
}

// ---- Load / salvage ------------------------------------------------------

std::uint64_t Backend::load(int slot, std::span<const ObjectView> objs,
                            const ChunkHooks& hooks) {
  return do_load(slot, objs, hooks, std::nullopt);
}

std::uint64_t Backend::load_salvage(int slot, std::uint64_t want,
                                    std::span<const ObjectView> objs,
                                    const ChunkHooks& hooks) {
  ADCC_CHECK(want > 0, "salvage target version must be positive");
  return do_load(slot, objs, hooks, want);
}

std::uint64_t Backend::do_load(int slot, std::span<const ObjectView> objs,
                               const ChunkHooks& hooks,
                               std::optional<std::uint64_t> salvage) {
  ADCC_CHECK(slot >= 0 && slot < slot_count(), "checkpoint slot out of range");

  SlotHeader h;
  if (read_span(slot, 0, &h, sizeof(h)) != sizeof(h) || h.magic != kSlotMagic ||
      h.format != kChunkFormat || h.header_crc != slot_header_crc(h)) {
    throw TornCheckpoint(slot_str(slot) + " holds no consistent checkpoint header");
  }
  std::vector<std::uint64_t> table(h.object_count);
  const std::size_t table_bytes = table.size() * sizeof(std::uint64_t);
  if (read_span(slot, sizeof(SlotHeader), table.data(), table_bytes) != table_bytes ||
      crc32(table.data(), table_bytes) != h.table_crc) {
    throw TornCheckpoint(slot_str(slot) + " has a corrupt object table");
  }
  // The explicit layout contract: a mismatched object set must fail loudly
  // BEFORE any byte is copied over a live object.
  if (table.size() != objs.size()) {
    throw LayoutMismatch(slot_str(slot) + " holds " + std::to_string(table.size()) +
                         " objects, caller registered " + std::to_string(objs.size()));
  }
  for (std::size_t i = 0; i < objs.size(); ++i) {
    if (table[i] != objs[i].bytes) {
      throw LayoutMismatch(slot_str(slot) + " object '" + objs[i].name + "' was saved with " +
                           std::to_string(table[i]) + " bytes, caller registered " +
                           std::to_string(objs[i].bytes));
    }
  }

  // Offsets from the *saved* chunk size, so images survive --ckpt_chunk_kb
  // reconfiguration between save and load.
  const ChunkLayout layout = ChunkLayout::make(objs, static_cast<std::size_t>(h.chunk_bytes));
  ADCC_CHECK(layout.chunks.size() == h.chunk_count,
             "slot header chunk count disagrees with its own layout");

  std::vector<std::byte> stored;
  std::vector<std::byte> raw;
  std::size_t payload_loaded = 0;
  for (std::size_t i = 0; i < layout.chunks.size(); ++i) {
    const ChunkLayout::Chunk& c = layout.chunks[i];
    const std::string where = slot_str(slot) + " object " + std::to_string(c.object) +
                              " chunk " + std::to_string(c.index);
    ChunkHeader ch;
    if (read_span(slot, c.image_offset, &ch, sizeof(ch)) != sizeof(ch)) {
      throw TornCheckpoint(slot_str(slot) + " is truncated at chunk " + std::to_string(i));
    }
    if (ch.magic != kChunkMagic || ch.header_crc != chunk_header_crc(ch) ||
        ch.object != c.object || ch.index != c.index || ch.payload_bytes != c.payload_bytes ||
        ch.stored_bytes > c.payload_bytes) {
      throw TornCheckpoint(where + " has a torn header");
    }
    if (salvage.has_value()) {
      // Salvage accepts any copy whose coherence interval covers the target:
      // written at <= want, stamped valid through >= want.
      if (ch.version > *salvage || ch.epoch < *salvage) {
        throw TornCheckpoint(where + " does not cover the salvage version");
      }
    } else if (ch.version > h.version) {
      throw TornCheckpoint(where + " belongs to an uncommitted newer save (torn write)");
    }
    stored.resize(ch.stored_bytes);
    if (read_span(slot, c.image_offset + sizeof(ChunkHeader), stored.data(), stored.size()) !=
        stored.size()) {
      throw TornCheckpoint(where + " has truncated stored bytes");
    }
    if (crc32(stored.data(), stored.size()) != ch.stored_crc) {
      throw TornCheckpoint(where + " fails its stored CRC (torn write)");
    }
    const std::byte* payload = stored.data();
    if (ch.codec == static_cast<std::uint32_t>(Codec::kLz)) {
      raw.resize(c.payload_bytes);
      if (!lz_decompress(stored.data(), stored.size(), raw.data(), c.payload_bytes)) {
        throw TornCheckpoint(where + " fails to decompress");
      }
      // Both CRCs verify on load: the stored bytes above, the decompressed
      // payload here — a codec bug can never silently corrupt a restore.
      if (crc32(raw.data(), c.payload_bytes) != ch.payload_crc) {
        throw TornCheckpoint(where + " fails its payload CRC after decompression");
      }
      payload = raw.data();
    } else {
      if (ch.codec != static_cast<std::uint32_t>(Codec::kRaw) ||
          ch.stored_bytes != c.payload_bytes) {
        throw TornCheckpoint(where + " has an unknown payload codec");
      }
      if (ch.payload_crc != ch.stored_crc) {
        throw TornCheckpoint(where + " fails its payload CRC (torn write)");
      }
    }
    std::memcpy(static_cast<std::byte*>(objs[c.object].data) + c.object_offset, payload,
                c.payload_bytes);
    payload_loaded += c.payload_bytes;
    ++stats_.chunks_loaded;
    if (hooks.point) hooks.point(kPointChunkLoaded);
  }

  ++stats_.loads;
  stats_.bytes_loaded += payload_loaded;
  return salvage.value_or(h.version);
}

TornProbe Backend::probe_torn(int slot, std::span<const ObjectView> objs,
                              std::optional<std::uint64_t> base_override) {
  ADCC_CHECK(slot >= 0 && slot < slot_count(), "checkpoint slot out of range");
  TornProbe probe;

  // The slot's own committed version is the baseline; an unreadable or absent
  // header means nothing was ever committed here (baseline 0).
  std::uint64_t base = 0;
  std::size_t layout_chunk_bytes = chunks_.chunk_bytes;
  SlotHeader h;
  if (read_span(slot, 0, &h, sizeof(h)) == sizeof(h) && h.magic == kSlotMagic) {
    if (h.format == kChunkFormat && h.header_crc == slot_header_crc(h)) {
      base = h.version;
      // Scan at the offsets the slot was actually cut with (load() supports
      // --ckpt_chunk_kb reconfiguration between save and load; so must the
      // torn classifier).
      if (h.chunk_bytes > 0) layout_chunk_bytes = static_cast<std::size_t>(h.chunk_bytes);
    } else {
      ++probe.torn_chunks;  // A half-written slot header is torn evidence itself.
    }
  }
  probe.base = base;
  // Dirty-commit restores probe the marker slot itself: its header may belong
  // to the interrupted save, so torn evidence counts against the marker.
  if (base_override.has_value()) base = *base_override;

  const ChunkLayout layout = ChunkLayout::make(objs, layout_chunk_bytes);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
  intervals.reserve(layout.chunks.size());
  bool all_valid = true;
  for (const ChunkLayout::Chunk& c : layout.chunks) {
    ChunkHeader ch;
    if (read_span(slot, c.image_offset, &ch, sizeof(ch)) != sizeof(ch)) {
      all_valid = false;
      break;
    }
    ++probe.chunks_probed;
    if (ch.magic != kChunkMagic) {  // Blank / never-written span.
      all_valid = false;
      continue;
    }
    const bool header_ok = ch.header_crc == chunk_header_crc(ch) && ch.object == c.object &&
                           ch.index == c.index && ch.payload_bytes == c.payload_bytes &&
                           ch.stored_bytes <= c.payload_bytes && ch.epoch >= ch.version;
    if (!header_ok || ch.version > base) ++probe.torn_chunks;
    if (header_ok) {
      intervals.emplace_back(ch.version, ch.epoch);
    } else {
      all_valid = false;
    }
  }

  // Salvage candidacy: the newest epoch any chunk reached, reachable only if
  // EVERY chunk's coherence interval covers it (the interrupted save finished
  // its chunk writes; payload CRCs are verified by load_salvage).
  all_valid = all_valid && intervals.size() == layout.chunks.size();
  if (all_valid && !intervals.empty()) {
    std::uint64_t target = 0;
    for (const auto& [version, epoch] : intervals) target = std::max(target, epoch);
    probe.salvage_version = target;
    probe.salvage_ready = true;
    for (const auto& [version, epoch] : intervals) {
      if (version > target || epoch < target) probe.salvage_ready = false;
      if (version == target) ++probe.salvage_chunks;
    }
    if (!probe.salvage_ready) {
      probe.salvage_version = 0;
      probe.salvage_chunks = 0;
    }
  }
  return probe;
}

std::size_t Backend::read_image(int slot, std::span<std::byte> out) const {
  return read_span(slot, 0, out.data(), out.size());
}

}  // namespace adcc::checkpoint
