#include "checkpoint/backend.hpp"

namespace adcc::checkpoint {

std::size_t total_bytes(std::span<const ObjectView> objs) {
  std::size_t n = 0;
  for (const ObjectView& o : objs) n += o.bytes;
  return n;
}

}  // namespace adcc::checkpoint
