// Per-chunk payload compression for the durability engine (--ckpt_compress).
//
// The codec trades CPU on the --ckpt_threads pipeline workers for modeled
// device bandwidth: chunks are compressed *before* they enter the backend's
// device-bandwidth queue, so a 15% size cut is a 15% shorter device window —
// and, because checkpoint overhead is the part of the device time the compute
// window cannot hide, the overhead cut is amplified beyond the size cut.
//
// The scheme is a fast in-tree byte-plane transform (no external deps),
// aimed at the engine's dominant payload — arrays of doubles whose
// neighboring values share sign/exponent structure:
//
//   1. Shuffle the payload into 8 interleaved byte planes (plane b holds the
//      bytes at positions ≡ b mod 8), so the sign/exponent bytes of an f64
//      array land together instead of being strided through random mantissa
//      bytes. The tail (payload % 8 bytes) is stored raw.
//   2. Encode each plane with the cheapest of several candidates, chosen per
//      plane by measured size: raw, constant, run-length (a control-byte RLE
//      whose worst case is +1/128), k-bit dictionary packing for planes with
//      ≤ 2/4/16 distinct byte values (exponent planes compress 2-8x this way
//      even when runs are broken by random interleaving), and — at level ≥ 2
//      — RLE over the plane's byte-delta stream (helps smoothly varying
//      exponents) plus canonical Huffman (a 128-byte nibble table of code
//      lengths, then an MSB-first bitstream), which carries the mid-entropy
//      planes the dictionary packers cannot touch.
//
// Chunks that do not shrink are stored raw (ChunkHeader::codec = kRaw), so
// incompressible payloads cost one compression attempt and zero bytes. The
// transform is a pure function of the payload bytes: slot images stay
// byte-identical across --ckpt_threads worker counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adcc::checkpoint {

/// Wire identifier of a chunk payload's stored encoding (ChunkHeader::codec).
enum class Codec : std::uint32_t {
  kRaw = 0,  ///< Stored bytes are the payload bytes.
  kLz = 1,   ///< Byte-plane shuffle + per-plane pack/RLE (this file).
};

/// Parsed --ckpt_compress specification: "none" or "lz[:LEVEL]", LEVEL 1-9.
struct CodecSpec {
  Codec codec = Codec::kRaw;
  int level = 1;  ///< 1: shuffle + pack/RLE; >= 2 adds the delta-plane pass.
};

/// Parses "none" | "lz" | "lz:LEVEL" into `out`. Returns false (and fills
/// `error`, if given) on a malformed spec; `out` is untouched on failure.
bool parse_codec(std::string_view spec, CodecSpec* out, std::string* error = nullptr);

/// Canonical spec string ("none", "lz", "lz:3") — sweep cells echo this.
std::string codec_spec_string(const CodecSpec& spec);

/// Compresses `bytes` payload bytes into `dst` (resized as needed). Returns
/// the stored size, or 0 when the encoding would not shrink the payload (the
/// caller stores the chunk raw; `dst` contents are then unspecified).
std::size_t lz_compress(const void* src, std::size_t bytes, std::vector<std::byte>& dst,
                        int level);

/// Decompresses a `lz_compress` stream of `stored` bytes back into exactly
/// `raw_bytes` at `dst`. Returns false on a malformed/truncated stream (the
/// torn-chunk path; `dst` may be partially written).
bool lz_decompress(const std::byte* src, std::size_t stored, void* dst, std::size_t raw_bytes);

}  // namespace adcc::checkpoint
