#include "checkpoint/file_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace adcc::checkpoint {

FileBackend::FileBackend(const FileBackendConfig& cfg) : cfg_(cfg) {
  ADCC_CHECK(!cfg_.directory.empty(), "FileBackend needs a directory");
  std::filesystem::create_directories(cfg_.directory);
}

FileBackend::~FileBackend() {
  // A cell that errored mid-drain destroys its env (and this backend) while
  // the drain thread may still be pwriting into the slot files: join it
  // before any fd is closed or the scratch directory is removed, or the
  // cleanup races the drain (unlinked-but-open slot files, resurrected
  // directories).
  teardown_drain();
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
  for (int& fd : read_fds_) {
    if (fd >= 0) ::close(fd);
  }
  std::error_code ec;
  std::filesystem::remove(slot_path(0), ec);
  std::filesystem::remove(slot_path(1), ec);
  std::filesystem::remove(meta_path(), ec);
  // Drop the scratch directory we created when this backend was the last user
  // (remove() refuses non-empty directories, so concurrent backends sharing a
  // directory — ctest -j — are safe). Without this, repeated smoke runs
  // accumulate one empty per-pid directory per adccbench/test invocation.
  std::filesystem::remove(cfg_.directory, ec);
}

std::filesystem::path FileBackend::slot_path(int slot) const {
  return cfg_.directory / ("slot" + std::to_string(slot) + ".ckpt");
}

std::filesystem::path FileBackend::meta_path() const { return cfg_.directory / "meta.ckpt"; }

void FileBackend::begin_slot(int slot, std::size_t image_bytes) {
  // A crash injected mid-save unwinds past finish_slot and leaves the write
  // fd open; reclaim it here so repeated crash scenarios cannot leak fds.
  if (fds_[slot] >= 0) {
    ::close(fds_[slot]);
    fds_[slot] = -1;
  }
  // No O_TRUNC: preserved content is what makes the dirty-chunk filter valid
  // for files too — clean chunks keep their bytes from the previous save to
  // this slot. The image size is fixed by the object set, so the ftruncate is
  // a no-op after the first save.
  const int fd = ::open(slot_path(slot).c_str(), O_WRONLY | O_CREAT, 0644);
  ADCC_CHECK(fd >= 0, "cannot open checkpoint slot file");
  ADCC_CHECK(::ftruncate(fd, static_cast<off_t>(image_bytes)) == 0,
             "cannot size checkpoint slot file");
  fds_[slot] = fd;
  device_free_at_ = now_seconds();
}

void FileBackend::write_span(int slot, std::size_t offset, const void* src,
                             std::size_t bytes) {
  ADCC_CHECK(fds_[slot] >= 0, "write_span outside begin_slot/finish_slot");
  const char* p = static_cast<const char*>(src);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t w = ::pwrite(fds_[slot], p + done, bytes - done,
                               static_cast<off_t>(offset + done));
    ADCC_CHECK(w > 0, "checkpoint write failed");
    done += static_cast<std::size_t>(w);
  }
  if (cfg_.throttle_bytes_per_s > 0) {
    double window_end;
    {
      std::lock_guard<std::mutex> lock(device_mu_);
      const double start = std::max(now_seconds(), device_free_at_);
      device_free_at_ = start + static_cast<double>(bytes) / cfg_.throttle_bytes_per_s;
      window_end = device_free_at_;
    }
    const double wait = window_end - now_seconds();
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    }
  }
}

void FileBackend::finish_slot(int slot) {
  ADCC_CHECK(fds_[slot] >= 0, "finish_slot without begin_slot");
  if (cfg_.sync) ::fdatasync(fds_[slot]);
  ::close(fds_[slot]);
  fds_[slot] = -1;
}

void FileBackend::commit_marker(int slot, std::uint64_t version) {
  const int mfd = ::open(meta_path().c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ADCC_CHECK(mfd >= 0, "cannot open checkpoint meta file");
  std::uint64_t rec[2] = {static_cast<std::uint64_t>(slot), version};
  ADCC_CHECK(::write(mfd, rec, sizeof(rec)) == sizeof(rec), "meta write failed");
  if (cfg_.sync) ::fdatasync(mfd);
  ::close(mfd);
}

std::size_t FileBackend::read_span(int slot, std::size_t offset, void* dst,
                                   std::size_t bytes) const {
  // One lazily-opened read fd per slot: load()/probe_torn() issue one
  // read_span per chunk, and an open/close pair each would dominate small
  // chunks. The fd stays valid across saves (same inode, never truncated
  // away) and is closed by the destructor.
  int& fd = read_fds_[slot];
  if (fd < 0) fd = ::open(slot_path(slot).c_str(), O_RDONLY);
  if (fd < 0) return 0;
  char* p = static_cast<char*>(dst);
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t r = ::pread(fd, p + done, bytes - done, static_cast<off_t>(offset + done));
    if (r <= 0) break;
    done += static_cast<std::size_t>(r);
  }
  return done;
}

std::pair<int, std::uint64_t> FileBackend::latest() const {
  std::uint64_t rec[2] = {0, 0};
  const int fd = ::open(meta_path().c_str(), O_RDONLY);
  if (fd < 0) return {0, 0};
  const ssize_t r = ::read(fd, rec, sizeof(rec));
  ::close(fd);
  if (r != sizeof(rec)) return {0, 0};
  return {static_cast<int>(rec[0]), rec[1]};
}

}  // namespace adcc::checkpoint
