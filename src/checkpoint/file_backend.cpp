#include "checkpoint/file_backend.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <fstream>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace adcc::checkpoint {

namespace {

/// Writes `bytes` from `p` to fd, spinning as needed to stay under `bw`.
void throttled_write(int fd, const void* p, std::size_t bytes, double bw) {
  const char* src = static_cast<const char*>(p);
  std::size_t done = 0;
  while (done < bytes) {
    const std::size_t chunk = std::min<std::size_t>(bytes - done, 4u << 20);
    Timer t;
    ssize_t w = ::write(fd, src + done, chunk);
    ADCC_CHECK(w == static_cast<ssize_t>(chunk), "checkpoint write failed");
    if (bw > 0) {
      const double target = static_cast<double>(chunk) / bw;
      const double spent = t.elapsed();
      if (spent < target) spin_for(target - spent);
    }
    done += chunk;
  }
}

}  // namespace

FileBackend::FileBackend(const FileBackendConfig& cfg) : cfg_(cfg) {
  ADCC_CHECK(!cfg_.directory.empty(), "FileBackend needs a directory");
  std::filesystem::create_directories(cfg_.directory);
}

FileBackend::~FileBackend() {
  std::error_code ec;
  std::filesystem::remove(slot_path(0), ec);
  std::filesystem::remove(slot_path(1), ec);
  std::filesystem::remove(meta_path(), ec);
  // Drop the scratch directory we created when this backend was the last user
  // (remove() refuses non-empty directories, so concurrent backends sharing a
  // directory — ctest -j — are safe). Without this, repeated smoke runs
  // accumulate one empty per-pid directory per adccbench/test invocation.
  std::filesystem::remove(cfg_.directory, ec);
}

std::filesystem::path FileBackend::slot_path(int slot) const {
  return cfg_.directory / ("slot" + std::to_string(slot) + ".ckpt");
}

std::filesystem::path FileBackend::meta_path() const { return cfg_.directory / "meta.ckpt"; }

void FileBackend::save(int slot, std::uint64_t version, std::span<const ObjectView> objs) {
  ADCC_CHECK(slot == 0 || slot == 1, "two slots");
  const int fd = ::open(slot_path(slot).c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ADCC_CHECK(fd >= 0, "cannot open checkpoint slot file");
  for (const ObjectView& o : objs) {
    throttled_write(fd, o.data, o.bytes, cfg_.throttle_bytes_per_s);
  }
  if (cfg_.sync) ::fdatasync(fd);
  ::close(fd);

  // Commit marker last: tiny meta file with (slot, version), synced.
  const int mfd = ::open(meta_path().c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ADCC_CHECK(mfd >= 0, "cannot open checkpoint meta file");
  std::uint64_t rec[2] = {static_cast<std::uint64_t>(slot), version};
  ADCC_CHECK(::write(mfd, rec, sizeof(rec)) == sizeof(rec), "meta write failed");
  if (cfg_.sync) ::fdatasync(mfd);
  ::close(mfd);

  ++stats_.saves;
  stats_.bytes_saved += total_bytes(objs);
}

std::uint64_t FileBackend::load(int slot, std::span<const ObjectView> objs) {
  std::ifstream in(slot_path(slot), std::ios::binary);
  ADCC_CHECK(in.good(), "checkpoint slot file missing");
  for (const ObjectView& o : objs) {
    in.read(static_cast<char*>(o.data), static_cast<std::streamsize>(o.bytes));
    ADCC_CHECK(in.gcount() == static_cast<std::streamsize>(o.bytes), "short checkpoint read");
  }
  ++stats_.loads;
  stats_.bytes_loaded += total_bytes(objs);
  const auto [s, v] = latest();
  (void)s;
  return v;
}

std::pair<int, std::uint64_t> FileBackend::latest() const {
  std::ifstream in(meta_path(), std::ios::binary);
  if (!in.good()) return {0, 0};
  std::uint64_t rec[2] = {0, 0};
  in.read(reinterpret_cast<char*>(rec), sizeof(rec));
  if (in.gcount() != sizeof(rec)) return {0, 0};
  return {static_cast<int>(rec[0]), rec[1]};
}

}  // namespace adcc::checkpoint
