#include "checkpoint/nvm_backend.hpp"

#include <cstring>

#include "common/check.hpp"

namespace adcc::checkpoint {

NvmBackend::NvmBackend(nvm::NvmRegion& region, std::size_t capacity_per_slot, int slots)
    : region_(region), slot_count_(slots) {
  ADCC_CHECK(slots == 1 || slots == 2, "NvmBackend supports 1 or 2 slots");
  for (int s = 0; s < slot_count_; ++s) {
    slots_[s] = region_.allocate<std::byte>(capacity_per_slot);
  }
  meta_ = region_.allocate<std::uint64_t>(2);
  meta_[0] = 0;
  meta_[1] = 0;
  region_.persist(meta_.data(), meta_.size_bytes());
}

void NvmBackend::begin_slot(int slot, std::size_t image_bytes) {
  ADCC_CHECK(image_bytes <= slots_[slot].size(), "checkpoint exceeds slot capacity");
}

void NvmBackend::write_span(int slot, std::size_t offset, const void* src,
                            std::size_t bytes) {
  // memcpy + flush + fence + NVM bandwidth charge, one channel at a time.
  std::lock_guard<std::mutex> lock(media_mu_);
  region_.write_durable(slots_[slot].data() + offset, src, bytes);
}

void NvmBackend::finish_slot(int) {}

void NvmBackend::commit_marker(int slot, std::uint64_t version) {
  meta_[0] = static_cast<std::uint64_t>(slot);
  meta_[1] = version;
  region_.persist(meta_.data(), meta_.size_bytes());
}

std::size_t NvmBackend::read_span(int slot, std::size_t offset, void* dst,
                                  std::size_t bytes) const {
  if (offset >= slots_[slot].size()) return 0;
  const std::size_t n = std::min(bytes, slots_[slot].size() - offset);
  std::memcpy(dst, slots_[slot].data() + offset, n);
  return n;
}

std::pair<int, std::uint64_t> NvmBackend::latest() const {
  return {static_cast<int>(meta_[0]), meta_[1]};
}

}  // namespace adcc::checkpoint
