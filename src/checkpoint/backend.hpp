// Checkpoint backends — the paper's traditional-checkpoint baselines, rebuilt
// as media behind one shared chunk engine.
//
// A checkpoint is an atomic durable copy of a set of application objects.
// Three media are modelled, matching the paper's test cases (2)-(4):
//   * FileBackend   — local hard drive (pwrite + fdatasync, optional device
//                     bandwidth model)
//   * NvmBackend    — NVM-only main memory (memcpy + CLFLUSH + fence)
//   * HeteroBackend — heterogeneous NVM/DRAM (copy into the DRAM cache, then
//                     drain the DRAM cache through to NVM)
//
// save()/load() are now NON-virtual: the base class owns the chunk engine
// (layout, CRC32 integrity headers, the WritePipeline fan-out across
// --ckpt_threads workers, dirty-chunk filtering, and the commit order), and a
// medium implements only the span primitives below — "persist this chunk
// span", "read this span", "commit the (slot, version) marker".
//
// All backends remain double-buffer safe: CheckpointSet alternates slots and
// the version marker is committed last, so a crash mid-checkpoint leaves the
// previous checkpoint intact — and, new with the chunk format, the *torn*
// slot is detectable (mixed chunk versions / CRC mismatches) instead of being
// silent garbage.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "checkpoint/chunk.hpp"

namespace adcc::checkpoint {

/// Base of every durable-image integrity failure the chunk engine reports.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// load() found evidence of an interrupted save: a broken slot/chunk header,
/// a payload CRC mismatch, or a chunk newer than its slot's committed image.
class TornCheckpoint : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// The registered objects do not match the saved layout (object count or
/// sizes differ) — restoring would memcpy over live objects at wrong offsets.
class LayoutMismatch : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// Crash-point names the engine announces through ChunkHooks::point — the
/// crash-mid-checkpoint / crash-during-recovery sites of the crash-plan
/// grammar (point:ckpt_chunk[:K], point:ckpt_restore[:K]).
inline constexpr const char* kPointChunkSaved = "ckpt_chunk";
inline constexpr const char* kPointChunkLoaded = "ckpt_restore";

/// Asynchronous-checkpoint crash sites: per chunk snapshotted into the staging
/// arena (save_async's synchronous prologue, point:ckpt_stage[:K]) and per
/// chunk persisted by the background drain thread (point:ckpt_drain[:K]). A
/// drain-thread crash is captured and rethrown at the join (wait_durable / the
/// next save), leaving the slot torn and the marker uncommitted — exactly the
/// evidence a synchronous crash-mid-checkpoint leaves.
inline constexpr const char* kPointChunkStaged = "ckpt_stage";
inline constexpr const char* kPointChunkDrained = "ckpt_drain";

/// Optional per-chunk callbacks threaded through save()/load().
struct ChunkHooks {
  /// Fired once per chunk persisted (save, kPointChunkSaved) or verified and
  /// copied back (load, kPointChunkLoaded). May throw — the fault surface's
  /// crash points inside the durability path ride this; a throw mid-save
  /// leaves a torn slot with the marker uncommitted. Calls are serialized
  /// across pipeline workers.
  std::function<void(const char*)> point;
  /// save() only: restrict the save to a chunk subset (dirty hints).
  /// Unselected chunks are neither checksummed nor written.
  std::function<bool(std::size_t chunk)> select;
  /// save() only: veto writing a selected chunk whose payload CRC is `crc` —
  /// CheckpointSet's per-slot CRC cache skips unchanged chunks with this.
  std::function<bool(std::size_t chunk, std::uint32_t crc)> should_write;
};

/// What one save() did, chunk by chunk (CheckpointSet feeds its CRC cache and
/// the incremental stats from this).
struct SaveReceipt {
  enum class Chunk : unsigned char { kUnselected, kClean, kWritten };
  std::vector<Chunk> chunks;
  std::vector<std::uint32_t> crcs;  ///< Valid where chunks[i] != kUnselected.
  std::size_t written = 0;
  std::size_t skipped = 0;          ///< Selected but unchanged (kClean).
  std::size_t payload_bytes = 0;    ///< Payload bytes actually written.
};

/// Result of the cheap torn-save classifier (chunk-header scan, no payloads).
struct TornProbe {
  std::size_t chunks_probed = 0;
  std::size_t torn_chunks = 0;  ///< Chunks of an interrupted newer save.
  bool torn() const { return torn_chunks > 0; }
};

/// Cumulative traffic counters every backend maintains across saves/loads
/// (payload bytes only — chunk/slot headers are engine bookkeeping).
struct BackendStats {
  std::uint64_t saves = 0;
  std::uint64_t loads = 0;
  std::uint64_t bytes_saved = 0;     ///< Payload bytes written (headers excluded).
  std::uint64_t bytes_loaded = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t chunks_skipped = 0;  ///< Dirty-filtered (clean) chunks.
  std::uint64_t chunks_loaded = 0;
};

/// The chunk engine: non-virtual save/load/probe over the per-medium span
/// primitives below. Owns layout, CRC32 integrity headers, the WritePipeline
/// fan-out, dirty-chunk filtering, the commit order, and the asynchronous
/// drain thread; a medium implements only "persist/read this span" and the
/// (slot, version) marker.
class Backend {
 public:
  /// Backstop only: cancels and joins a still-pending drain so a subclass
  /// that forgot teardown_drain() hits abort_drain()'s bounded race instead
  /// of std::thread's guaranteed std::terminate. By this point the derived
  /// span primitives are already destroyed, so every subclass destructor must
  /// STILL call teardown_drain() first (see below).
  virtual ~Backend() { abort_drain(); }

  /// Chunk size / pipeline width for subsequent saves (--ckpt_chunk_kb,
  /// --ckpt_threads).
  void configure_chunks(const ChunkConfig& cfg);
  const ChunkConfig& chunk_config() const { return chunks_; }

  /// Durably stores the objects as `slot` and then durably records
  /// (slot, version) as the newest checkpoint. Chunks are serialized on the
  /// configured pipeline workers at deterministic image offsets (images are
  /// byte-identical across worker counts); the marker commit stays last.
  /// `layout`, when given, must be ChunkLayout::make(objs, chunk_bytes) —
  /// CheckpointSet passes its memoized copy so per-unit saves skip the
  /// rebuild.
  SaveReceipt save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                   const ChunkHooks& hooks = {}, const ChunkLayout* layout = nullptr);

  /// Begins an asynchronous save with the same contract as save(), returning
  /// as soon as the background drain thread is launched. The drain pushes
  /// chunk spans through the same per-medium primitives (and device-bandwidth
  /// queue); the (slot, version) marker still commits only after every chunk
  /// landed, so crash semantics are unchanged. `objs` must point at memory
  /// that is stable for the drain's lifetime (CheckpointSet's staging arena —
  /// `keepalive` owns it so the caller may be destroyed mid-drain); hook
  /// callbacks fire on the drain thread with kPointChunkSaved rewritten to
  /// kPointChunkDrained. At most one drain may be in flight: callers join
  /// (or abort) the previous one first.
  void save_async(int slot, std::uint64_t version, std::vector<ObjectView> objs,
                  ChunkHooks hooks = {}, std::shared_ptr<const ChunkLayout> layout = nullptr,
                  std::shared_ptr<const void> keepalive = nullptr);

  /// True while an asynchronous save is still draining.
  bool drain_pending() const;

  /// Joins the in-flight drain and returns its receipt (nullopt when none was
  /// pending). Whatever the drain thread threw — a crash point's
  /// CrashException, a medium failure — is rethrown here on the calling
  /// thread, with the slot torn and the marker uncommitted.
  std::optional<SaveReceipt> join_drain();

  /// Power-failure emulation: cooperatively cancels an in-flight drain (the
  /// remaining chunks are never written; the slot stays torn with the marker
  /// uncommitted) and joins it, swallowing the drain's outcome. No-op when
  /// nothing is draining. Never throws.
  void abort_drain() noexcept;

  /// Verifies and loads the slot image back into the object pointers.
  /// Throws LayoutMismatch when the saved object table does not match `objs`
  /// (no object is modified), and TornCheckpoint on any integrity failure
  /// (objects already verified may have been copied). Returns the version
  /// stored with the slot.
  std::uint64_t load(int slot, std::span<const ObjectView> objs, const ChunkHooks& hooks = {});

  /// Chunk-header scan classifying whether `slot` holds pieces of a save that
  /// never committed (version > the slot's own committed image). Payloads are
  /// not read; missing/blank slots probe clean.
  TornProbe probe_torn(int slot, std::span<const ObjectView> objs);

  /// Newest committed (slot, version); version 0 means "no checkpoint yet".
  virtual std::pair<int, std::uint64_t> latest() const = 0;

  /// Double-buffer slot count (1 for mirror-style incremental backends).
  virtual int slot_count() const { return 2; }

  /// Raw slot image bytes (tests / crash inspection). Returns bytes read.
  std::size_t read_image(int slot, std::span<std::byte> out) const;

  const BackendStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 protected:
  /// Every derived destructor MUST call this before tearing anything down
  /// (closing fds, removing scratch files, releasing arenas): it aborts and
  /// joins an in-flight drain so the drain thread cannot call the derived
  /// class's span primitives — or touch its files — mid-destruction. The base
  /// destructor cannot do this itself (the derived vtable is already gone).
  void teardown_drain() noexcept { abort_drain(); }

  // ---- The per-medium surface -------------------------------------------
  /// Prepares `slot` to receive an image of `image_bytes` (open/size the
  /// file, check arena capacity). Existing slot content must be preserved
  /// where not overwritten — the dirty-chunk filter depends on it.
  virtual void begin_slot(int slot, std::size_t image_bytes) = 0;
  /// Durably writes [offset, offset+bytes) of the slot image. Must be safe to
  /// call concurrently from pipeline workers (disjoint spans).
  virtual void write_span(int slot, std::size_t offset, const void* src,
                          std::size_t bytes) = 0;
  /// Save epilogue (e.g. fdatasync) before the marker commit.
  virtual void finish_slot(int slot) = 0;
  /// Durably records (slot, version) as the newest checkpoint — the commit
  /// point, always last.
  virtual void commit_marker(int slot, std::uint64_t version) = 0;
  /// Best-effort read of the slot image; returns bytes actually read (short
  /// or 0 when the slot holds no such data).
  virtual std::size_t read_span(int slot, std::size_t offset, void* dst,
                                std::size_t bytes) const = 0;

  BackendStats stats_;
  ChunkConfig chunks_;

 private:
  SaveReceipt do_save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                      const ChunkHooks& hooks, const ChunkLayout* memo,
                      const char* point_name, const std::atomic<bool>* cancel);

  // ---- Async drain state (one drain in flight at most) -------------------
  struct Drain {
    std::thread thread;
    std::atomic<bool> cancel{false};
    // Written by the drain thread before it exits; read after join only.
    std::optional<SaveReceipt> receipt;
    std::exception_ptr error;
    std::vector<ObjectView> objs;                 ///< Staged views (stable).
    std::shared_ptr<const ChunkLayout> layout;
    std::shared_ptr<const void> keepalive;        ///< Owns the staging arena.
  };
  std::unique_ptr<Drain> drain_;
};

}  // namespace adcc::checkpoint
