// Checkpoint backends — the paper's traditional-checkpoint baselines, rebuilt
// as media behind one shared chunk engine.
//
// A checkpoint is an atomic durable copy of a set of application objects.
// Three media are modelled, matching the paper's test cases (2)-(4):
//   * FileBackend   — local hard drive (pwrite + fdatasync, optional device
//                     bandwidth model)
//   * NvmBackend    — NVM-only main memory (memcpy + CLFLUSH + fence)
//   * HeteroBackend — heterogeneous NVM/DRAM (copy into the DRAM cache, then
//                     drain the DRAM cache through to NVM)
//
// save()/load() are now NON-virtual: the base class owns the chunk engine
// (layout, CRC32 integrity headers, the WritePipeline fan-out across
// --ckpt_threads workers, per-chunk compression ahead of the device queue,
// dirty-chunk filtering, and the commit order), and a medium implements only
// the span primitives below — "persist this chunk span", "read this span",
// "commit the (slot, version) marker".
//
// All backends remain double-buffer safe: CheckpointSet alternates slots and
// the version marker is committed last, so a crash mid-checkpoint leaves the
// previous checkpoint intact — and, new with the chunk format, the *torn*
// slot is detectable (mixed chunk versions / CRC mismatches) instead of being
// silent garbage. Since format 2, a torn slot that is in fact COMPLETE
// (every chunk CRC-valid and epoch-coherent at the interrupted save's
// version — the crash landed between the last chunk and the commit) is also
// *salvageable*: load_salvage() recovers the interrupted save instead of
// falling back a full slot.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "checkpoint/chunk.hpp"

namespace adcc::checkpoint {

/// Base of every durable-image integrity failure the chunk engine reports.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// load() found evidence of an interrupted save: a broken slot/chunk header,
/// a payload CRC mismatch, or a chunk newer than its slot's committed image.
class TornCheckpoint : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// The registered objects do not match the saved layout (object count or
/// sizes differ) — restoring would memcpy over live objects at wrong offsets.
class LayoutMismatch : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// Crash-point names the engine announces through ChunkHooks::point — the
/// crash-mid-checkpoint / crash-during-recovery sites of the crash-plan
/// grammar (point:ckpt_chunk[:K], point:ckpt_restore[:K]).
inline constexpr const char* kPointChunkSaved = "ckpt_chunk";
inline constexpr const char* kPointChunkLoaded = "ckpt_restore";

/// Asynchronous-checkpoint crash sites: per chunk snapshotted into the staging
/// arena (save_async's synchronous prologue, point:ckpt_stage[:K]) and per
/// chunk persisted by the background drain thread (point:ckpt_drain[:K]). A
/// drain-thread crash is captured and rethrown at the join (wait_durable / the
/// next save), leaving the slot torn and the marker uncommitted — exactly the
/// evidence a synchronous crash-mid-checkpoint leaves.
inline constexpr const char* kPointChunkStaged = "ckpt_stage";
inline constexpr const char* kPointChunkDrained = "ckpt_drain";

/// Per chunk compressed on a pipeline worker (point:ckpt_compress[:K], fired
/// only when --ckpt_compress is active) — a crash here dies before the
/// chunk's device write, torn-slot evidence one chunk earlier than ckpt_chunk.
inline constexpr const char* kPointChunkCompressed = "ckpt_compress";

/// Per save admitted into a ring of staging arenas deeper than one
/// (point:ring_stage[:K], fired by CheckpointSet::save_async when
/// --ckpt_async_depth > 1): a crash here loses the newly staged image while
/// older ring entries are still draining — the burst-crash window unique to
/// depth > 1.
inline constexpr const char* kPointRingStaged = "ring_stage";

/// Optional per-chunk callbacks (and per-save options) threaded through
/// save()/load().
struct ChunkHooks {
  /// Fired once per chunk persisted (save, kPointChunkSaved) or verified and
  /// copied back (load, kPointChunkLoaded). May throw — the fault surface's
  /// crash points inside the durability path ride this; a throw mid-save
  /// leaves a torn slot with the marker uncommitted. Calls are serialized
  /// across pipeline workers.
  std::function<void(const char*)> point;
  /// save() only: restrict the save to a chunk subset (dirty hints).
  /// Unselected chunks are neither checksummed nor written.
  std::function<bool(std::size_t chunk)> select;
  /// save() only: the caller's per-slot payload-CRC cache (nullopt = unknown).
  /// The engine both CONSULTS it (a selected chunk whose fresh CRC matches is
  /// clean — skipped, or epoch-stamped under in_place) and UPDATES it in
  /// place as chunks land on media, so queued ring drains always filter
  /// against the true slot state, not a stale snapshot. Entries are touched
  /// only from the save's executing threads (disjoint per chunk); FIFO drain
  /// order serializes cross-save access.
  std::shared_ptr<std::vector<std::optional<std::uint32_t>>> crc_cache;
  /// save() only: dirty-chunk double-buffered commit (--ckpt_dirty_commit).
  /// The save targets the slot holding the committed image; clean chunks get
  /// a header-only epoch stamp instead of being skipped, dirty chunks are
  /// rewritten in place, and the marker still commits last. A crash mid-save
  /// tears the committed image — recovery salvages the interrupted save or
  /// falls back to the (aged) other slot.
  bool in_place = false;
};

/// What one save() did, chunk by chunk (CheckpointSet feeds its incremental
/// stats from this; the CRC cache is updated in place via ChunkHooks).
struct SaveReceipt {
  enum class Chunk : unsigned char { kUnselected, kClean, kWritten, kStamped };
  std::vector<Chunk> chunks;
  std::vector<std::uint32_t> crcs;  ///< Valid where chunks[i] != kUnselected.
  std::size_t written = 0;
  std::size_t skipped = 0;          ///< Selected but unchanged (kClean).
  std::size_t stamped = 0;          ///< Clean, epoch-stamped in place (in_place).
  std::size_t payload_bytes = 0;    ///< Raw payload bytes of written chunks.
  std::size_t stored_bytes = 0;     ///< Post-codec bytes through the device queue.
};

/// Result of the cheap torn-save classifier (chunk-header scan, no payloads).
/// Besides counting torn evidence, the scan sizes up the salvage candidate:
/// the newest epoch any chunk reached, and whether EVERY chunk holds a
/// header-valid copy whose [version, epoch] interval covers it.
struct TornProbe {
  std::size_t chunks_probed = 0;
  std::size_t torn_chunks = 0;  ///< Chunks of an interrupted newer save.
  std::uint64_t base = 0;       ///< The slot's own committed header version.
  std::uint64_t salvage_version = 0;  ///< Max epoch across valid chunk headers.
  std::size_t salvage_chunks = 0;     ///< Chunks written AT salvage_version.
  /// True when every chunk's header is CRC-valid with
  /// version <= salvage_version <= epoch — the interrupted save finished its
  /// chunk writes, so load_salvage() can recover it (payload CRCs pending).
  bool salvage_ready = false;
  bool torn() const { return torn_chunks > 0; }
};

/// Cumulative traffic counters every backend maintains across saves/loads
/// (payload bytes only — chunk/slot headers are engine bookkeeping).
struct BackendStats {
  std::uint64_t saves = 0;
  std::uint64_t loads = 0;
  std::uint64_t bytes_saved = 0;     ///< Raw payload bytes written (headers excluded).
  std::uint64_t bytes_stored = 0;    ///< Post-codec bytes through the device queue.
  std::uint64_t bytes_loaded = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t chunks_skipped = 0;  ///< Dirty-filtered (clean) chunks.
  std::uint64_t chunks_stamped = 0;  ///< Epoch-stamped in place (dirty commit).
  std::uint64_t chunks_loaded = 0;
};

/// One completed (or failed / skipped) entry of the asynchronous drain ring,
/// consumed strictly FIFO via take_drain_outcome().
struct DrainOutcome {
  int slot = 0;
  std::uint64_t version = 0;
  std::optional<SaveReceipt> receipt;  ///< Engaged: the save committed.
  std::exception_ptr error;            ///< Engaged: the save failed mid-flight.
  /// True when the job never ran: it was queued behind a failed drain (its
  /// slot is untouched) — the ring stops at the first failure.
  bool skipped = false;
};

/// The chunk engine: non-virtual save/load/probe over the per-medium span
/// primitives below. Owns layout, CRC32 integrity headers, per-chunk
/// compression, the WritePipeline fan-out, dirty-chunk filtering, the commit
/// order, and the asynchronous drain ring; a medium implements only
/// "persist/read this span" and the (slot, version) marker.
class Backend {
 public:
  /// Out of line (with the destructor): the drain ring member is an
  /// incomplete type here.
  Backend();
  /// Backstop only: cancels and joins a still-pending drain so a subclass
  /// that forgot teardown_drain() hits abort_drain()'s bounded race instead
  /// of std::thread's guaranteed std::terminate. By this point the derived
  /// span primitives are already destroyed, so every subclass destructor must
  /// STILL call teardown_drain() first (see below). Defined out of line: the
  /// drain ring is an incomplete type here.
  virtual ~Backend();

  /// Chunk size / pipeline width / codec for subsequent saves
  /// (--ckpt_chunk_kb, --ckpt_threads, --ckpt_compress, ...).
  void configure_chunks(const ChunkConfig& cfg);
  const ChunkConfig& chunk_config() const { return chunks_; }

  /// Durably stores the objects as `slot` and then durably records
  /// (slot, version) as the newest checkpoint. Chunks are serialized (and,
  /// with a codec configured, compressed) on the configured pipeline workers
  /// at deterministic image offsets (images are byte-identical across worker
  /// counts); the marker commit stays last. `layout`, when given, must be
  /// ChunkLayout::make(objs, chunk_bytes) — CheckpointSet passes its memoized
  /// copy so per-unit saves skip the rebuild.
  SaveReceipt save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                   const ChunkHooks& hooks = {}, const ChunkLayout* layout = nullptr);

  /// Enqueues an asynchronous save with the same contract as save(),
  /// returning as soon as the job is queued on the drain ring. One worker
  /// thread processes jobs strictly FIFO — save K fully commits (chunks,
  /// header, marker) before save K+1 touches media, so crash semantics are
  /// those of back-to-back synchronous saves with at most one save mid-flight
  /// on the medium. `objs` must point at memory that is stable for the
  /// drain's lifetime (CheckpointSet's staging arenas — `keepalive` owns it
  /// so the caller may be destroyed mid-drain); hook callbacks fire on the
  /// drain thread with kPointChunkSaved rewritten to kPointChunkDrained.
  /// Callers bound the ring depth themselves by consuming outcomes.
  void save_async(int slot, std::uint64_t version, std::vector<ObjectView> objs,
                  ChunkHooks hooks = {}, std::shared_ptr<const ChunkLayout> layout = nullptr,
                  std::shared_ptr<const void> keepalive = nullptr);

  /// Queued + running + completed-but-unconsumed drain jobs.
  std::size_t drains_pending() const;

  /// True while any asynchronous save is still in the ring.
  bool drain_pending() const { return drains_pending() > 0; }

  /// Blocks for the OLDEST ring entry's outcome and consumes it. After a
  /// failed job, the jobs queued behind it are returned as `skipped` (they
  /// never touched their slots). Must not be called with an empty ring.
  DrainOutcome take_drain_outcome();

  /// Re-arms the ring after a failure has been fully consumed. Between a
  /// job's failure and this call every enqueued job is skipped, even ones
  /// that arrive after the failure (the enqueuer raced the error) — the
  /// stop-at-first-failure contract covers the whole failure window.
  void acknowledge_drain_failure();

  /// Drains the whole ring: consumes every outcome, returns the last receipt
  /// (nullopt when the ring was empty or nothing committed) and rethrows the
  /// FIRST error — with that job's slot torn and its marker uncommitted.
  std::optional<SaveReceipt> join_drain();

  /// Power-failure emulation: cooperatively cancels the in-flight drain job
  /// (the remaining chunks are never written; the slot stays torn with the
  /// marker uncommitted), discards the queued jobs and any unconsumed
  /// outcomes, and joins the worker. No-op when the ring is empty. Never
  /// throws.
  void abort_drain() noexcept;

  /// Verifies, decompresses and loads the slot image back into the object
  /// pointers. Throws LayoutMismatch when the saved object table does not
  /// match `objs` (no object is modified), and TornCheckpoint on any
  /// integrity failure (objects already verified may have been copied).
  /// Returns the version stored with the slot.
  std::uint64_t load(int slot, std::span<const ObjectView> objs, const ChunkHooks& hooks = {});

  /// Torn-slot salvage: loads the slot at the interrupted-but-complete
  /// version `want` a probe_torn() scan reported salvage-ready (chunks are
  /// accepted when their [version, epoch] interval covers `want`; both the
  /// stored CRC and the post-decompression payload CRC must verify). The
  /// caller re-commits the marker afterwards (recommit) to make the salvage
  /// durable. Throws TornCheckpoint when a payload fails verification.
  std::uint64_t load_salvage(int slot, std::uint64_t want, std::span<const ObjectView> objs,
                             const ChunkHooks& hooks = {});

  /// Re-commits the (slot, version) marker outside a save — the restore-side
  /// commit that makes a successful salvage (or a dirty-commit fallback to
  /// the aged slot) the newest checkpoint.
  void recommit(int slot, std::uint64_t version) { commit_marker(slot, version); }

  /// Chunk-header scan classifying whether `slot` holds pieces of a save that
  /// never committed, and whether that save is complete enough to salvage
  /// (see TornProbe). Payloads are not read; missing/blank slots probe clean.
  /// Torn evidence is counted against the slot's own committed header version
  /// unless `base_override` is given (dirty-commit restores pass the marker
  /// version: the slot's header may itself belong to the interrupted save).
  TornProbe probe_torn(int slot, std::span<const ObjectView> objs,
                       std::optional<std::uint64_t> base_override = std::nullopt);

  /// Newest committed (slot, version); version 0 means "no checkpoint yet".
  virtual std::pair<int, std::uint64_t> latest() const = 0;

  /// Double-buffer slot count (1 for mirror-style incremental backends).
  virtual int slot_count() const { return 2; }

  /// Raw slot image bytes (tests / crash inspection). Returns bytes read.
  std::size_t read_image(int slot, std::span<std::byte> out) const;

  const BackendStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 protected:
  /// Every derived destructor MUST call this before tearing anything down
  /// (closing fds, removing scratch files, releasing arenas): it aborts and
  /// joins an in-flight drain so the drain thread cannot call the derived
  /// class's span primitives — or touch its files — mid-destruction. The base
  /// destructor cannot do this itself (the derived vtable is already gone).
  void teardown_drain() noexcept { abort_drain(); }

  // ---- The per-medium surface -------------------------------------------
  /// Prepares `slot` to receive an image of `image_bytes` (open/size the
  /// file, check arena capacity). Existing slot content must be preserved
  /// where not overwritten — the dirty-chunk filter depends on it.
  virtual void begin_slot(int slot, std::size_t image_bytes) = 0;
  /// Durably writes [offset, offset+bytes) of the slot image. Must be safe to
  /// call concurrently from pipeline workers (disjoint spans).
  virtual void write_span(int slot, std::size_t offset, const void* src,
                          std::size_t bytes) = 0;
  /// Save epilogue (e.g. fdatasync) before the marker commit.
  virtual void finish_slot(int slot) = 0;
  /// Durably records (slot, version) as the newest checkpoint — the commit
  /// point, always last.
  virtual void commit_marker(int slot, std::uint64_t version) = 0;
  /// Best-effort read of the slot image; returns bytes actually read (short
  /// or 0 when the slot holds no such data).
  virtual std::size_t read_span(int slot, std::size_t offset, void* dst,
                                std::size_t bytes) const = 0;

  BackendStats stats_;
  ChunkConfig chunks_;

 private:
  SaveReceipt do_save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                      const ChunkHooks& hooks, const ChunkLayout* memo,
                      const char* point_name, const std::atomic<bool>* cancel);
  std::uint64_t do_load(int slot, std::span<const ObjectView> objs, const ChunkHooks& hooks,
                        std::optional<std::uint64_t> salvage);

  // ---- Async drain ring (one worker, strict FIFO) ------------------------
  struct DrainJob;
  struct Ring;
  void drain_worker();
  void ensure_worker();

  std::unique_ptr<Ring> ring_;
};

}  // namespace adcc::checkpoint
