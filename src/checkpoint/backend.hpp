// Checkpoint backends — the paper's traditional-checkpoint baselines, rebuilt
// as media behind one shared chunk engine.
//
// A checkpoint is an atomic durable copy of a set of application objects.
// Three media are modelled, matching the paper's test cases (2)-(4):
//   * FileBackend   — local hard drive (pwrite + fdatasync, optional device
//                     bandwidth model)
//   * NvmBackend    — NVM-only main memory (memcpy + CLFLUSH + fence)
//   * HeteroBackend — heterogeneous NVM/DRAM (copy into the DRAM cache, then
//                     drain the DRAM cache through to NVM)
//
// save()/load() are now NON-virtual: the base class owns the chunk engine
// (layout, CRC32 integrity headers, the WritePipeline fan-out across
// --ckpt_threads workers, dirty-chunk filtering, and the commit order), and a
// medium implements only the span primitives below — "persist this chunk
// span", "read this span", "commit the (slot, version) marker".
//
// All backends remain double-buffer safe: CheckpointSet alternates slots and
// the version marker is committed last, so a crash mid-checkpoint leaves the
// previous checkpoint intact — and, new with the chunk format, the *torn*
// slot is detectable (mixed chunk versions / CRC mismatches) instead of being
// silent garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/chunk.hpp"

namespace adcc::checkpoint {

/// Base of every durable-image integrity failure the chunk engine reports.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// load() found evidence of an interrupted save: a broken slot/chunk header,
/// a payload CRC mismatch, or a chunk newer than its slot's committed image.
class TornCheckpoint : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// The registered objects do not match the saved layout (object count or
/// sizes differ) — restoring would memcpy over live objects at wrong offsets.
class LayoutMismatch : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

/// Crash-point names the engine announces through ChunkHooks::point — the
/// crash-mid-checkpoint / crash-during-recovery sites of the crash-plan
/// grammar (point:ckpt_chunk[:K], point:ckpt_restore[:K]).
inline constexpr const char* kPointChunkSaved = "ckpt_chunk";
inline constexpr const char* kPointChunkLoaded = "ckpt_restore";

/// Optional per-chunk callbacks threaded through save()/load().
struct ChunkHooks {
  /// Fired once per chunk persisted (save, kPointChunkSaved) or verified and
  /// copied back (load, kPointChunkLoaded). May throw — the fault surface's
  /// crash points inside the durability path ride this; a throw mid-save
  /// leaves a torn slot with the marker uncommitted. Calls are serialized
  /// across pipeline workers.
  std::function<void(const char*)> point;
  /// save() only: restrict the save to a chunk subset (dirty hints).
  /// Unselected chunks are neither checksummed nor written.
  std::function<bool(std::size_t chunk)> select;
  /// save() only: veto writing a selected chunk whose payload CRC is `crc` —
  /// CheckpointSet's per-slot CRC cache skips unchanged chunks with this.
  std::function<bool(std::size_t chunk, std::uint32_t crc)> should_write;
};

/// What one save() did, chunk by chunk (CheckpointSet feeds its CRC cache and
/// the incremental stats from this).
struct SaveReceipt {
  enum class Chunk : unsigned char { kUnselected, kClean, kWritten };
  std::vector<Chunk> chunks;
  std::vector<std::uint32_t> crcs;  ///< Valid where chunks[i] != kUnselected.
  std::size_t written = 0;
  std::size_t skipped = 0;          ///< Selected but unchanged (kClean).
  std::size_t payload_bytes = 0;    ///< Payload bytes actually written.
};

/// Result of the cheap torn-save classifier (chunk-header scan, no payloads).
struct TornProbe {
  std::size_t chunks_probed = 0;
  std::size_t torn_chunks = 0;  ///< Chunks of an interrupted newer save.
  bool torn() const { return torn_chunks > 0; }
};

struct BackendStats {
  std::uint64_t saves = 0;
  std::uint64_t loads = 0;
  std::uint64_t bytes_saved = 0;     ///< Payload bytes written (headers excluded).
  std::uint64_t bytes_loaded = 0;
  std::uint64_t chunks_written = 0;
  std::uint64_t chunks_skipped = 0;  ///< Dirty-filtered (clean) chunks.
  std::uint64_t chunks_loaded = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Chunk size / pipeline width for subsequent saves (--ckpt_chunk_kb,
  /// --ckpt_threads).
  void configure_chunks(const ChunkConfig& cfg);
  const ChunkConfig& chunk_config() const { return chunks_; }

  /// Durably stores the objects as `slot` and then durably records
  /// (slot, version) as the newest checkpoint. Chunks are serialized on the
  /// configured pipeline workers at deterministic image offsets (images are
  /// byte-identical across worker counts); the marker commit stays last.
  /// `layout`, when given, must be ChunkLayout::make(objs, chunk_bytes) —
  /// CheckpointSet passes its memoized copy so per-unit saves skip the
  /// rebuild.
  SaveReceipt save(int slot, std::uint64_t version, std::span<const ObjectView> objs,
                   const ChunkHooks& hooks = {}, const ChunkLayout* layout = nullptr);

  /// Verifies and loads the slot image back into the object pointers.
  /// Throws LayoutMismatch when the saved object table does not match `objs`
  /// (no object is modified), and TornCheckpoint on any integrity failure
  /// (objects already verified may have been copied). Returns the version
  /// stored with the slot.
  std::uint64_t load(int slot, std::span<const ObjectView> objs, const ChunkHooks& hooks = {});

  /// Chunk-header scan classifying whether `slot` holds pieces of a save that
  /// never committed (version > the slot's own committed image). Payloads are
  /// not read; missing/blank slots probe clean.
  TornProbe probe_torn(int slot, std::span<const ObjectView> objs);

  /// Newest committed (slot, version); version 0 means "no checkpoint yet".
  virtual std::pair<int, std::uint64_t> latest() const = 0;

  /// Double-buffer slot count (1 for mirror-style incremental backends).
  virtual int slot_count() const { return 2; }

  /// Raw slot image bytes (tests / crash inspection). Returns bytes read.
  std::size_t read_image(int slot, std::span<std::byte> out) const;

  const BackendStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 protected:
  // ---- The per-medium surface -------------------------------------------
  /// Prepares `slot` to receive an image of `image_bytes` (open/size the
  /// file, check arena capacity). Existing slot content must be preserved
  /// where not overwritten — the dirty-chunk filter depends on it.
  virtual void begin_slot(int slot, std::size_t image_bytes) = 0;
  /// Durably writes [offset, offset+bytes) of the slot image. Must be safe to
  /// call concurrently from pipeline workers (disjoint spans).
  virtual void write_span(int slot, std::size_t offset, const void* src,
                          std::size_t bytes) = 0;
  /// Save epilogue (e.g. fdatasync) before the marker commit.
  virtual void finish_slot(int slot) = 0;
  /// Durably records (slot, version) as the newest checkpoint — the commit
  /// point, always last.
  virtual void commit_marker(int slot, std::uint64_t version) = 0;
  /// Best-effort read of the slot image; returns bytes actually read (short
  /// or 0 when the slot holds no such data).
  virtual std::size_t read_span(int slot, std::size_t offset, void* dst,
                                std::size_t bytes) const = 0;

  BackendStats stats_;
  ChunkConfig chunks_;
};

}  // namespace adcc::checkpoint
