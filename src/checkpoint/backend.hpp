// Checkpoint backends — the paper's traditional-checkpoint baselines.
//
// A checkpoint is an atomic durable copy of a set of application objects.
// Three media are modelled, matching the paper's test cases (2)-(4):
//   * FileBackend   — local hard drive (write + fdatasync, optional HDD throttle)
//   * NvmBackend    — NVM-only main memory (memcpy + CLFLUSH + fence)
//   * HeteroBackend — heterogeneous NVM/DRAM (copy into the DRAM cache, then
//                     drain the DRAM cache through to NVM)
//
// All backends are double-buffer safe: CheckpointSet alternates slots and
// commits a version marker last, so a crash mid-checkpoint leaves the previous
// checkpoint intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace adcc::checkpoint {

/// A view of one application object included in checkpoints.
struct ObjectView {
  std::string name;
  void* data = nullptr;
  std::size_t bytes = 0;
};

struct BackendStats {
  std::uint64_t saves = 0;
  std::uint64_t loads = 0;
  std::uint64_t bytes_saved = 0;
  std::uint64_t bytes_loaded = 0;
};

class Backend {
 public:
  virtual ~Backend() = default;

  /// Durably stores the objects as `slot` and then durably records
  /// (slot, version) as the newest checkpoint. `slot` is 0 or 1.
  virtual void save(int slot, std::uint64_t version, std::span<const ObjectView> objs) = 0;

  /// Loads slot contents back into the object pointers (sizes must match the
  /// saved layout). Returns the version stored with the slot.
  virtual std::uint64_t load(int slot, std::span<const ObjectView> objs) = 0;

  /// Newest committed (slot, version); version 0 means "no checkpoint yet".
  virtual std::pair<int, std::uint64_t> latest() const = 0;

  const BackendStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 protected:
  BackendStats stats_;
};

/// Total payload bytes of an object set.
std::size_t total_bytes(std::span<const ObjectView> objs);

}  // namespace adcc::checkpoint
