// CheckpointSet — application-facing manager of the chunked durability engine.
//
// Registers the critical data objects once, then `save()` chunk-serializes
// them all to the backend with alternating slots and monotonically increasing
// versions (classic double buffering: a crash mid-save leaves the previous
// checkpoint committed). Every save reuses the engine's dirty-chunk filter:
// the payload CRC is computed per chunk anyway (it goes into the chunk
// header), so chunks whose CRC matches what this slot already holds are
// skipped for free — incremental checkpointing is this filter, not a second
// implementation. `save(dirty)` narrows the scan to hinted byte ranges.
//
// `restore()` loads the newest committed checkpoint back into the registered
// objects and returns its version (0 = nothing to restore). Before loading it
// probes the in-flight slot(s) for chunks of an interrupted save — the
// detected-torn-write classification surfaced to recovery accounting via
// last_restore(). A torn slot that is in fact COMPLETE (the crash landed
// between the last chunk write and the marker commit) is *salvaged*: the
// interrupted save is verified chunk by chunk, loaded, and re-committed,
// recovering a newer checkpoint than the marker knows about. A saved layout
// that does not match the registered objects raises checkpoint::LayoutMismatch
// instead of silently memcpy-ing over live objects; integrity failures raise
// checkpoint::TornCheckpoint.
//
// The optional point hook is fired once per chunk persisted ("ckpt_chunk")
// and per chunk loaded ("ckpt_restore") — workload adapters route it into
// their FaultSurface so crash plans can land inside the durability path
// (crash-mid-checkpoint, crash-during-recovery).
//
// `save_async()` is the asynchronous variant: it snapshots every chunk into a
// staging arena (double-buffered against the live objects, so the workload may
// mutate them immediately) and returns as soon as the job is queued on the
// backend's drain ring; `wait_durable()` — or a later save that needs the ring
// slot back — completes the handshake. With ChunkConfig::async_depth > 1 a
// RING of staging arenas lets bursty units stage save K+1..K+depth-1 while
// save K still drains; the backend serializes the drains strictly FIFO, so
// the (slot, version) marker commit order — and crash semantics — match
// back-to-back synchronous saves. A crash mid-drain (point "ckpt_drain", or
// abort_async's power failure) leaves the same torn, uncommitted slot a
// synchronous crash-mid-save leaves; a crash mid-staging (points "ckpt_stage"
// / "ring_stage") leaves the backend untouched. When the backend is
// configured with ChunkConfig::async (--ckpt_async), plain save() dispatches
// to save_async() — adapters inherit overlap for free.
//
// ChunkConfig::dirty_commit (--ckpt_dirty_commit) switches eligible saves
// from whole-slot alternation to the in-place dirty-chunk commit: the save
// targets the slot already holding the committed image, rewrites only the
// chunks whose payload CRC changed, refreshes the untouched chunks' epoch
// stamps (header-only writes), and still commits the marker last. Eligible
// means the target slot's CRC cache fully describes its image (a prior full
// save landed there); the first saves of a run alternate classically. The
// trade: a crash mid-save tears the committed image itself — restore() then
// salvages the interrupted save if it completed, or falls back to the aged
// image in the other slot and re-commits it (returning an OLDER version than
// the marker — the documented dirty-commit recovery trade).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "checkpoint/backend.hpp"

namespace adcc::checkpoint {

/// Application-facing manager of the chunked durability engine: object
/// registration, double-buffered versioned saves (sync or async, ring depth
/// N), dirty-chunk in-place commits, and restore with torn-save
/// classification + torn-slot salvage. See the file comment.
class CheckpointSet {
 public:
  using PointHook = std::function<void(const char*)>;

  explicit CheckpointSet(Backend& backend, PointHook point_hook = {})
      : backend_(backend), point_hook_(std::move(point_hook)) {}

  /// Registers an object; must happen before the first save. Zero-byte
  /// objects are legal (they participate in the layout but carry no chunks).
  void add(std::string name, void* data, std::size_t bytes);

  template <typename T>
  void add(std::string name, std::span<T> s) {
    add(std::move(name), s.data(), s.size_bytes());
  }

  /// A half-open dirty byte range within one object, used as a save() hint.
  struct DirtyRange {
    std::size_t object;  ///< Index in registration order.
    std::size_t offset;
    std::size_t bytes;
  };

  /// Checkpoints all registered objects; returns the new version. Chunks
  /// unchanged since this slot's previous image are skipped (CRC filter).
  /// Dispatches to save_async() when the backend's ChunkConfig::async is set.
  std::uint64_t save();

  /// Asynchronous save: snapshots the objects into a staging arena
  /// (synchronously — the caller may mutate them the moment this returns) and
  /// queues the drain on the backend's ring. Returns the new version, which
  /// is durable only once wait_durable() (or a later save that joins it)
  /// returns without throwing. When the ring is full (async_depth saves in
  /// flight) the oldest drain is completed first — a failure of an OLDER
  /// pending save is rethrown here, with the version rolled back to just
  /// before the failed save (the saves queued behind it never touched media).
  std::uint64_t save_async();

  /// Joins every in-flight drain, if any; idempotent. Returns the newest
  /// durable version. Rethrows the first drain failure (after rolling the
  /// version back so a retried save targets the same uncommitted slot).
  std::uint64_t wait_durable();

  /// Power-failure emulation: cancels the in-flight drain without committing
  /// it (the slot keeps the chunks already drained — detectably torn), drops
  /// the queued ring entries (their slots were never touched), and realigns
  /// the version with the backend's committed marker. Workload inject_crash()
  /// calls this before discarding volatile state; harmless when idle.
  void abort_async() noexcept;

  /// True between save_async() and the join — the window in which the caller
  /// overlaps useful work with the drain(s).
  bool async_pending() const { return !pending_.empty(); }

  /// Hinted save: only chunks overlapping the given ranges are checksummed
  /// and (when changed) written. Hints must cover every modification since
  /// the target slot's previous image — under whole-slot alternation that is
  /// the save before last; un-hinted dirty chunks silently age the slot.
  /// Always synchronous, even under ChunkConfig::async: the hints describe
  /// the live objects at call time, and the async path deliberately stages
  /// the full image instead of threading a hint set through the drain.
  std::uint64_t save(std::span<const DirtyRange> dirty);

  /// Restores the newest recoverable checkpoint; returns its version
  /// (0 = no checkpoint, objects untouched). Prefers a salvageable
  /// interrupted save NEWER than the committed marker (re-committing it);
  /// under dirty_commit a torn committed slot falls back to the aged other
  /// slot. Throws LayoutMismatch / TornCheckpoint per Backend::load; details
  /// land in last_restore().
  std::uint64_t restore();

  /// Restores a specific committed version — the coordinated-rollback
  /// primitive: a group coordinator's global marker records the exact slot
  /// version each shard must rewind to, which may be OLDER than the shard's
  /// own newest commit (the shard saved ahead of a global commit the crash
  /// interrupted). With the double-buffered slot discipline the previous
  /// version's image is still intact in the other slot, so the requested
  /// version is found by scanning slot headers. Never salvages: a global
  /// marker must reference exactly-committed shard images. Returns `want` on
  /// success; `want == 0` restores nothing (caller reinitializes) and
  /// returns 0. Aborts if no slot holds a committed image of version `want`.
  std::uint64_t restore_version(std::uint64_t want);

  struct SaveStats {
    std::size_t chunks_written = 0;
    std::size_t chunks_skipped = 0;   ///< Clean under the CRC filter.
    std::size_t chunks_stamped = 0;   ///< Clean, epoch-stamped in place.
    std::size_t payload_bytes_written = 0;
    std::size_t chunks_examined() const {
      return chunks_written + chunks_skipped + chunks_stamped;
    }
  };
  const SaveStats& last_save() const { return save_stats_; }

  struct RestoreStats {
    std::uint64_t version = 0;
    std::size_t chunks_loaded = 0;
    std::size_t chunks_probed = 0;   ///< Torn-classifier scan of in-flight slots.
    std::size_t torn_chunks = 0;     ///< Detected chunks of an uncommitted save.
    /// Chunks of an interrupted-but-complete save recovered past the
    /// committed marker by torn-slot salvage (0 = classic restore).
    std::size_t salvaged_chunks = 0;
  };
  const RestoreStats& last_restore() const { return restore_stats_; }

  std::size_t payload_bytes() const { return total_bytes(objs_); }
  std::uint64_t version() const { return version_; }

 private:
  using CrcCache = std::vector<std::optional<std::uint32_t>>;

  std::uint64_t save_with(const std::function<bool(std::size_t)>& select);
  int save_slot(bool in_place) const;
  const ChunkLayout& layout();
  /// This slot's payload-CRC cache, sized for the current layout. Joins the
  /// whole ring first when (re)allocation is needed — the drain worker
  /// updates cache entries in place, so resizing under a live ring is unsafe.
  std::shared_ptr<CrcCache>& slot_cache(int slot);
  /// True when dirty_commit may target the committed slot in place: a prior
  /// full save landed there, nothing has invalidated its CRC cache since, AND
  /// the other slot still holds a committed image — an in-place save tears
  /// the image it rewrites, so it is only safe with a fallback on media.
  bool in_place_eligible() const;
  /// Records whether `slot` holds a committed (restorable) image, sizing the
  /// tracking vector on first use.
  void note_slot_commit(int slot, bool committed);
  /// Consumes the OLDEST ring entry: folds its receipt into the stats and the
  /// committed-slot tracking, or — on a drain failure — invalidates the
  /// failed slot's cache, drops the (never-run) entries queued behind it,
  /// rolls the version back to just before the failed save, and rethrows.
  void complete_oldest();

  /// One staging arena: a snapshot image's payload bytes plus ObjectViews
  /// into them. Shared with the backend drain as its keepalive, so the drain
  /// stays memory-safe even if this CheckpointSet dies mid-flight (the
  /// backend's destructor joins the thread; see Backend::teardown_drain).
  /// With async_depth > 1 a small pool of arenas backs the ring; an arena is
  /// reusable once the drain released it (use_count back to 1).
  struct Staged {
    std::vector<std::byte> bytes;
    std::vector<ObjectView> views;
  };

  /// One save queued on the backend's drain ring, oldest first.
  struct Pending {
    std::uint64_t version = 0;
    int slot = 0;
  };

  Backend& backend_;
  PointHook point_hook_;
  std::vector<ObjectView> objs_;
  std::uint64_t version_ = 0;
  bool frozen_ = false;
  std::shared_ptr<const ChunkLayout> layout_;  ///< Memo (objects freeze at first save).
  std::size_t layout_chunk_bytes_ = 0;
  std::vector<std::shared_ptr<Staged>> arenas_;  ///< Staging pool (<= depth + 1).
  std::deque<Pending> pending_;                  ///< Saves in the drain ring.
  SaveStats save_stats_;
  RestoreStats restore_stats_;

  /// Slot of the newest committed (or predictively, newest enqueued) save;
  /// -1 before the first commit. Alternating saves target the other slot,
  /// dirty commits this one.
  int committed_slot_ = -1;
  /// Slot of the newest FACTUALLY committed save — the value committed_slot_
  /// falls back to when the predictions above are walked back by a drain
  /// failure or an abort.
  int durable_slot_ = -1;

  /// Per-slot payload CRC of the chunk each slot currently holds (nullopt =
  /// unknown → must write). Shared with the engine, which consults AND
  /// updates it in place as chunks land on media — queued ring drains always
  /// filter against the true slot state, not a stale snapshot. Volatile by
  /// design: a fresh process rebuilds it with one full save.
  std::vector<std::shared_ptr<CrcCache>> slot_crcs_;
  /// True when the slot's cache fully describes its committed image (set
  /// when a save to the slot is enqueued/completed, cleared on failure or
  /// abort) — the dirty-commit eligibility bit, maintained strictly on the
  /// caller's thread so eligibility never reads cache entries a drain may be
  /// writing.
  std::vector<bool> cache_full_;
  /// True when the slot holds a committed image a restore could fall back to
  /// (set on commit/enqueue, cleared pessimistically on failure or abort).
  /// Gates dirty-commit eligibility: the double buffer must never rewrite
  /// the ONLY committed image in place.
  std::vector<bool> slot_has_commit_;
};

}  // namespace adcc::checkpoint
