// CheckpointSet — application-facing checkpoint manager.
//
// Registers the critical data objects once, then `save()` writes them all to
// the backend with alternating slots and monotonically increasing versions
// (classic double buffering: a crash mid-save leaves the previous checkpoint
// committed). `restore()` loads the newest committed checkpoint back into the
// registered objects and returns its version (0 = nothing to restore).
#pragma once

#include <vector>

#include "checkpoint/backend.hpp"

namespace adcc::checkpoint {

class CheckpointSet {
 public:
  explicit CheckpointSet(Backend& backend) : backend_(backend) {}

  /// Registers an object; must happen before the first save.
  void add(std::string name, void* data, std::size_t bytes);

  template <typename T>
  void add(std::string name, std::span<T> s) {
    add(std::move(name), s.data(), s.size_bytes());
  }

  /// Checkpoints all registered objects; returns the new version.
  std::uint64_t save();

  /// Restores the newest committed checkpoint; returns its version
  /// (0 = no checkpoint, objects untouched).
  std::uint64_t restore();

  std::size_t payload_bytes() const { return total_bytes(objs_); }
  std::uint64_t version() const { return version_; }

 private:
  Backend& backend_;
  std::vector<ObjectView> objs_;
  std::uint64_t version_ = 0;
  bool frozen_ = false;
};

}  // namespace adcc::checkpoint
