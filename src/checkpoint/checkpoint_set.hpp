// CheckpointSet — application-facing manager of the chunked durability engine.
//
// Registers the critical data objects once, then `save()` chunk-serializes
// them all to the backend with alternating slots and monotonically increasing
// versions (classic double buffering: a crash mid-save leaves the previous
// checkpoint committed). Every save reuses the engine's dirty-chunk filter:
// the payload CRC is computed per chunk anyway (it goes into the chunk
// header), so chunks whose CRC matches what this slot already holds are
// skipped for free — incremental checkpointing is this filter, not a second
// implementation. `save(dirty)` narrows the scan to hinted byte ranges.
//
// `restore()` loads the newest committed checkpoint back into the registered
// objects and returns its version (0 = nothing to restore). Before loading it
// probes the non-committed slot for chunks of an interrupted save — the
// detected-torn-write classification surfaced to recovery accounting via
// last_restore(). A saved layout that does not match the registered objects
// raises checkpoint::LayoutMismatch instead of silently memcpy-ing over live
// objects; integrity failures raise checkpoint::TornCheckpoint.
//
// The optional point hook is fired once per chunk persisted ("ckpt_chunk")
// and per chunk loaded ("ckpt_restore") — workload adapters route it into
// their FaultSurface so crash plans can land inside the durability path
// (crash-mid-checkpoint, crash-during-recovery).
//
// `save_async()` is the asynchronous variant: it snapshots every chunk into a
// staging arena (double-buffered against the live objects, so the workload may
// mutate them immediately) and returns as soon as the backend's background
// drain thread is launched; `wait_durable()` — or the next save, which joins
// first — completes the handshake. The (slot, version) marker still commits
// only after the drain lands every chunk, so crash semantics are unchanged:
// a crash mid-drain (point "ckpt_drain", or abort_async's power failure)
// leaves the same torn, uncommitted slot a synchronous crash-mid-save leaves,
// and a crash mid-staging (point "ckpt_stage") leaves the backend untouched.
// When the backend is configured with ChunkConfig::async (--ckpt_async),
// plain save() dispatches to save_async() — adapters inherit overlap for free.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "checkpoint/backend.hpp"

namespace adcc::checkpoint {

/// Application-facing manager of the chunked durability engine: object
/// registration, double-buffered versioned saves (sync or async), and
/// restore with torn-save classification. See the file comment for the
/// staging/drain handshake.
class CheckpointSet {
 public:
  using PointHook = std::function<void(const char*)>;

  explicit CheckpointSet(Backend& backend, PointHook point_hook = {})
      : backend_(backend), point_hook_(std::move(point_hook)) {}

  /// Registers an object; must happen before the first save. Zero-byte
  /// objects are legal (they participate in the layout but carry no chunks).
  void add(std::string name, void* data, std::size_t bytes);

  template <typename T>
  void add(std::string name, std::span<T> s) {
    add(std::move(name), s.data(), s.size_bytes());
  }

  /// A half-open dirty byte range within one object, used as a save() hint.
  struct DirtyRange {
    std::size_t object;  ///< Index in registration order.
    std::size_t offset;
    std::size_t bytes;
  };

  /// Checkpoints all registered objects; returns the new version. Chunks
  /// unchanged since this slot's previous image are skipped (CRC filter).
  /// Dispatches to save_async() when the backend's ChunkConfig::async is set.
  std::uint64_t save();

  /// Asynchronous save: snapshots the objects into the staging arena
  /// (synchronously — the caller may mutate them the moment this returns) and
  /// drains the image to the backend on a background thread. Returns the new
  /// version, which is durable only once wait_durable() (or the next save,
  /// which joins the drain first) returns without throwing. A drain-thread
  /// crash/failure is rethrown at that join, with the slot torn and the
  /// previous checkpoint still committed.
  std::uint64_t save_async();

  /// Joins the in-flight drain, if any; idempotent. Returns the newest
  /// durable version. Rethrows whatever the drain threw (after rolling the
  /// version back so a retried save targets the same uncommitted slot).
  std::uint64_t wait_durable();

  /// Power-failure emulation: cancels and joins an in-flight drain without
  /// committing it (the slot keeps the chunks already drained — detectably
  /// torn), rolling the version back. Workload inject_crash() calls this
  /// before discarding volatile state; harmless when nothing is draining.
  void abort_async() noexcept;

  /// True between save_async() and its join — the window in which the caller
  /// overlaps useful work with the drain.
  bool async_pending() const { return async_pending_; }

  /// Hinted save: only chunks overlapping the given ranges are checksummed
  /// and (when changed) written. Hints must cover every modification since
  /// this SLOT's previous image — with a two-slot backend that is the save
  /// before last; un-hinted dirty chunks silently age the slot. Always
  /// synchronous, even under ChunkConfig::async: the hints describe the live
  /// objects at call time, and the async path deliberately stages the full
  /// image instead of threading a hint set through the drain.
  std::uint64_t save(std::span<const DirtyRange> dirty);

  /// Restores the newest committed checkpoint; returns its version
  /// (0 = no checkpoint, objects untouched). Throws LayoutMismatch /
  /// TornCheckpoint per Backend::load; details land in last_restore().
  std::uint64_t restore();

  /// Restores a specific committed version — the coordinated-rollback
  /// primitive: a group coordinator's global marker records the exact slot
  /// version each shard must rewind to, which may be OLDER than the shard's
  /// own newest commit (the shard saved ahead of a global commit the crash
  /// interrupted). With the double-buffered slot discipline the previous
  /// version's image is still intact in the other slot, so the requested
  /// version is found by scanning slot headers. Returns `want` on success;
  /// `want == 0` restores nothing (caller reinitializes) and returns 0.
  /// Aborts if no slot holds a committed image of version `want` — a global
  /// marker must never reference an uncommitted shard version.
  std::uint64_t restore_version(std::uint64_t want);

  struct SaveStats {
    std::size_t chunks_written = 0;
    std::size_t chunks_skipped = 0;   ///< Clean under the CRC filter.
    std::size_t payload_bytes_written = 0;
    std::size_t chunks_examined() const { return chunks_written + chunks_skipped; }
  };
  const SaveStats& last_save() const { return save_stats_; }

  struct RestoreStats {
    std::uint64_t version = 0;
    std::size_t chunks_loaded = 0;
    std::size_t chunks_probed = 0;  ///< Torn-classifier scan of in-flight slots.
    std::size_t torn_chunks = 0;    ///< Detected chunks of an uncommitted save.
  };
  const RestoreStats& last_restore() const { return restore_stats_; }

  std::size_t payload_bytes() const { return total_bytes(objs_); }
  std::uint64_t version() const { return version_; }

 private:
  std::uint64_t save_with(const std::function<bool(std::size_t)>& select);
  int save_slot() const;
  const ChunkLayout& layout();

  /// The staging arena: one snapshot image's payload bytes plus ObjectViews
  /// into them. Shared with the backend drain as its keepalive, so the drain
  /// stays memory-safe even if this CheckpointSet dies mid-flight (the
  /// backend's destructor joins the thread; see Backend::teardown_drain).
  struct Staged {
    std::vector<std::byte> bytes;
    std::vector<ObjectView> views;
  };

  Backend& backend_;
  PointHook point_hook_;
  std::vector<ObjectView> objs_;
  std::uint64_t version_ = 0;
  bool frozen_ = false;
  bool async_pending_ = false;
  std::shared_ptr<const ChunkLayout> layout_;  ///< Memo (objects freeze at first save).
  std::size_t layout_chunk_bytes_ = 0;
  std::shared_ptr<Staged> staging_;  ///< Reused across saves once the drain lets go.
  SaveStats save_stats_;
  RestoreStats restore_stats_;

  /// Per-slot payload CRC of the chunk each slot currently holds (nullopt =
  /// unknown → must write). Volatile by design: a fresh process rebuilds it
  /// with one full save.
  std::vector<std::vector<std::optional<std::uint32_t>>> slot_crcs_;
};

}  // namespace adcc::checkpoint
