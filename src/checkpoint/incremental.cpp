#include "checkpoint/incremental.hpp"

#include <cstring>

#include "common/check.hpp"

namespace adcc::checkpoint {

void IncrementalCheckpointSet::add(std::string name, void* data, std::size_t bytes) {
  ADCC_CHECK(!frozen_, "objects must be registered before the first save");
  ADCC_CHECK(data != nullptr && bytes > 0, "object must be non-empty");
  Object o;
  o.name = std::move(name);
  o.live = static_cast<std::byte*>(data);
  o.bytes = bytes;
  o.mirror = region_.allocate<std::byte>(bytes);
  objects_.push_back(o);
}

std::size_t IncrementalCheckpointSet::save_block(Object& o, std::size_t block_off) {
  const std::size_t len = std::min(kBlock, o.bytes - block_off);
  ++stats_.blocks_total;
  if (std::memcmp(o.mirror.data() + block_off, o.live + block_off, len) == 0) return 0;
  region_.write_durable(o.mirror.data() + block_off, o.live + block_off, len);
  ++stats_.blocks_written;
  stats_.bytes_written += len;
  return len;
}

void IncrementalCheckpointSet::commit() {
  if (version_cell_.empty()) {
    version_cell_ = region_.allocate<std::uint64_t>(kCacheLine / sizeof(std::uint64_t));
  }
  ++committed_version_;
  version_cell_[0] = committed_version_;
  region_.persist(version_cell_.data(), sizeof(std::uint64_t));
  ++stats_.saves;
}

std::size_t IncrementalCheckpointSet::save() {
  ADCC_CHECK(!objects_.empty(), "no objects registered");
  frozen_ = true;
  std::size_t written = 0;
  for (Object& o : objects_) {
    for (std::size_t off = 0; off < o.bytes; off += kBlock) written += save_block(o, off);
  }
  commit();
  return written;
}

std::size_t IncrementalCheckpointSet::save(std::span<const DirtyRange> dirty) {
  ADCC_CHECK(!objects_.empty(), "no objects registered");
  frozen_ = true;
  std::size_t written = 0;
  // Per-object bitmap of hinted blocks so overlapping hints are written once.
  std::vector<std::vector<bool>> hinted(objects_.size());
  for (const DirtyRange& d : dirty) {
    ADCC_CHECK(d.object < objects_.size(), "dirty hint for unknown object");
    Object& o = objects_[d.object];
    ADCC_CHECK(d.offset + d.bytes <= o.bytes, "dirty hint out of bounds");
    auto& bits = hinted[d.object];
    if (bits.empty()) bits.resize((o.bytes + kBlock - 1) / kBlock, false);
    if (d.bytes == 0) continue;
    for (std::size_t blk = d.offset / kBlock; blk <= (d.offset + d.bytes - 1) / kBlock; ++blk) {
      bits[blk] = true;
    }
  }
  for (std::size_t oi = 0; oi < objects_.size(); ++oi) {
    for (std::size_t blk = 0; blk < hinted[oi].size(); ++blk) {
      if (hinted[oi][blk]) written += save_block(objects_[oi], blk * kBlock);
    }
  }
  commit();
  return written;
}

std::uint64_t IncrementalCheckpointSet::restore() {
  if (committed_version_ == 0) return 0;
  for (Object& o : objects_) std::memcpy(o.live, o.mirror.data(), o.bytes);
  return committed_version_;
}

}  // namespace adcc::checkpoint
