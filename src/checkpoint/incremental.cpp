#include "checkpoint/incremental.hpp"

#include "common/check.hpp"

namespace adcc::checkpoint {

void IncrementalCheckpointSet::add(std::string name, void* data, std::size_t bytes) {
  ADCC_CHECK(!set_, "objects must be registered before the first save");
  ADCC_CHECK(data != nullptr && bytes > 0, "object must be non-empty");
  pending_.push_back({std::move(name), data, bytes});
}

void IncrementalCheckpointSet::freeze() {
  if (set_) return;
  ADCC_CHECK(!pending_.empty(), "no objects registered");
  std::vector<ObjectView> objs;
  objs.reserve(pending_.size());
  for (const Pending& p : pending_) objs.push_back({p.name, p.data, p.bytes});
  backend_ = std::make_unique<NvmBackend>(region_, checkpoint_image_bytes(objs, kBlock),
                                          /*slots=*/1);
  ChunkConfig cc;
  cc.chunk_bytes = kBlock;
  backend_->configure_chunks(cc);
  set_ = std::make_unique<CheckpointSet>(*backend_);
  for (Pending& p : pending_) set_->add(std::move(p.name), p.data, p.bytes);
  pending_.clear();
}

std::size_t IncrementalCheckpointSet::account(std::uint64_t) {
  const CheckpointSet::SaveStats& s = set_->last_save();
  ++stats_.saves;
  stats_.blocks_total += s.chunks_examined();
  stats_.blocks_written += s.chunks_written;
  stats_.bytes_written += s.payload_bytes_written;
  return s.payload_bytes_written;
}

std::size_t IncrementalCheckpointSet::save() {
  freeze();
  return account(set_->save());
}

std::size_t IncrementalCheckpointSet::save(std::span<const DirtyRange> dirty) {
  freeze();
  std::vector<CheckpointSet::DirtyRange> hints;
  hints.reserve(dirty.size());
  for (const DirtyRange& d : dirty) hints.push_back({d.object, d.offset, d.bytes});
  return account(set_->save(hints));
}

std::uint64_t IncrementalCheckpointSet::restore() {
  if (!set_ || set_->version() == 0) return 0;
  return set_->restore();
}

}  // namespace adcc::checkpoint
