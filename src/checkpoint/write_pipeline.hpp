// WritePipeline — the worker pool serializing checkpoint chunks.
//
// run(count, fn) executes fn(chunk_index, scratch) for every chunk index in
// [0, count), dynamically balanced across the configured worker count (the
// calling thread is worker 0, so one-worker pipelines add no thread at all).
// Each worker owns a reusable ChunkScratch: a buffer for [ChunkHeader][payload]
// serialization plus a second one the per-chunk codec compresses into.
//
// Exception semantics mirror a power failure: the first exception aborts the
// remaining chunks (workers drain without starting new ones) and is rethrown
// on the calling thread — the chunks already persisted stay persisted, which
// is precisely the torn image a crash mid-checkpoint leaves behind. The fault
// surface's `ckpt_chunk` crash points ride this path.
//
// Workers are spawned per run(): the pipeline is sized for multi-MB images
// where thread creation is noise against serialization + device time, and
// the default --ckpt_threads=1 spawns nothing at all. Keep 1 worker for tiny
// per-unit checkpoint sets — there is nothing to overlap.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace adcc::checkpoint {

/// Per-worker reusable buffers: `raw` holds the serialized
/// [ChunkHeader][raw payload] image, `packed` the codec's output.
struct ChunkScratch {
  std::vector<std::byte> raw;
  std::vector<std::byte> packed;
};

/// The worker pool serializing checkpoint chunks (see the file comment).
class WritePipeline {
 public:
  using ChunkFn = std::function<void(std::size_t index, ChunkScratch& scratch)>;

  /// Workers are clamped to [1, count] at run() time.
  explicit WritePipeline(int threads);

  void run(std::size_t count, const ChunkFn& fn);

 private:
  int threads_;
};

}  // namespace adcc::checkpoint
