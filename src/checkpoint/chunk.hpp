// Chunk format of the durability engine.
//
// A checkpoint slot image is no longer an opaque byte stream: it is a
// self-describing sequence of fixed-size chunks, each carrying an integrity
// header, so that
//   * chunks can be serialized independently (the WritePipeline parallelizes
//     the save across --ckpt_threads workers at deterministic image offsets),
//   * unchanged chunks can be skipped (incremental checkpointing is a dirty-
//     chunk filter over the same engine, not a parallel implementation), and
//   * a crash mid-save leaves *detectable* evidence: a torn slot mixes chunk
//     versions / breaks CRCs instead of silently memcpy-ing garbage back.
//
// Slot image layout (all offsets fixed by the object set and chunk size):
//
//   [SlotHeader][u64 object_bytes[object_count]]     <- written LAST in a save
//   [ChunkHeader][payload] [ChunkHeader][payload] ...<- chunk_count entries
//
// The slot header is written after every chunk landed, and the backend's
// (slot, version) marker is committed after that — exactly the double-buffer
// commit order the seed used, so a crash mid-checkpoint still leaves the
// previous checkpoint intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "checkpoint/codec.hpp"

namespace adcc::checkpoint {

/// A view of one application object included in checkpoints. Zero-byte
/// objects are legal (they occupy a table entry but no chunks).
struct ObjectView {
  std::string name;
  void* data = nullptr;
  std::size_t bytes = 0;
};

/// Total payload bytes of an object set.
std::size_t total_bytes(std::span<const ObjectView> objs);

/// CRC-32 (IEEE, reflected 0xEDB88320), slicing-by-4.
std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed = 0);

/// How the engine splits and serializes a checkpoint.
struct ChunkConfig {
  std::size_t chunk_bytes = 256u << 10;  ///< --ckpt_chunk_kb (payload per chunk).
  int threads = 1;                       ///< --ckpt_threads (pipeline workers).
  /// --ckpt_async: CheckpointSet::save dispatches to save_async (stage +
  /// background drain) instead of blocking through the device window.
  bool async = false;
  /// --ckpt_compress: per-chunk payload codec applied on the pipeline workers
  /// before the device-bandwidth queue (see codec.hpp). Chunks that do not
  /// shrink fall back to raw storage individually.
  CodecSpec compress;
  /// --ckpt_async_depth: staging-arena ring depth for save_async. Depth 1 is
  /// the classic one-drain-in-flight handshake; deeper rings let bursty units
  /// stage save K+1 while save K still drains (the backend serializes the
  /// drains FIFO, so commit order — and crash semantics — are unchanged).
  int async_depth = 1;
  /// --ckpt_dirty_commit: mostly-clean images skip whole-slot alternation —
  /// saves rewrite only dirty chunks in place in the committed slot and
  /// refresh clean chunks' epoch stamps, with the marker still committing
  /// last. A crash mid-save risks the in-place image (torn-slot salvage or
  /// the aged other slot recover it); see checkpoint_set.hpp.
  bool dirty_commit = false;
};

inline constexpr std::uint32_t kSlotMagic = 0x41444343u;   // "ADCC"
inline constexpr std::uint32_t kChunkMagic = 0x41446B63u;  // "ADkc"
/// Format 2: 56-byte ChunkHeader with per-chunk epoch stamps and the
/// compression fields (stored_bytes / codec / stored_crc).
inline constexpr std::uint32_t kChunkFormat = 2;

/// Fixed-size slot prologue; the object-size table (u64 per object) follows.
struct SlotHeader {
  std::uint32_t magic = 0;
  std::uint32_t format = 0;
  std::uint64_t version = 0;       ///< Checkpoint version of the slot image.
  std::uint64_t chunk_bytes = 0;   ///< Payload capacity the image was cut with.
  std::uint64_t payload_bytes = 0;
  std::uint32_t object_count = 0;
  std::uint32_t chunk_count = 0;
  std::uint32_t table_crc = 0;     ///< CRC of the object-size table.
  std::uint32_t header_crc = 0;    ///< CRC of this struct with header_crc = 0.
};
static_assert(sizeof(SlotHeader) == 48);

/// Per-chunk prologue, immediately followed by the stored payload bytes
/// (stored_bytes <= payload_bytes; the chunk's image region is always sized
/// for the raw payload, compressed chunks simply write it short).
struct ChunkHeader {
  std::uint32_t magic = 0;
  std::uint32_t object = 0;         ///< Object index in registration order.
  std::uint32_t index = 0;          ///< Chunk index within the object.
  std::uint32_t payload_bytes = 0;  ///< Raw (decompressed) payload bytes.
  std::uint64_t version = 0;        ///< Version of the save that wrote it.
  /// Newest save this chunk's payload was verified valid for (>= version):
  /// dirty-commit saves re-stamp clean chunks' epochs instead of rewriting
  /// them, so a copy is good for every version in [version, epoch] — the
  /// coherence interval torn-slot salvage unions over.
  std::uint64_t epoch = 0;
  std::uint32_t stored_bytes = 0;   ///< Bytes on media after this header.
  std::uint32_t codec = 0;          ///< checkpoint::Codec of the stored bytes.
  std::uint32_t payload_crc = 0;    ///< CRC of the raw payload.
  std::uint32_t stored_crc = 0;     ///< CRC of the stored (possibly compressed) bytes.
  std::uint32_t reserved = 0;
  std::uint32_t header_crc = 0;     ///< CRC of this struct with header_crc = 0.
};
static_assert(sizeof(ChunkHeader) == 56);

std::uint32_t slot_header_crc(const SlotHeader& h);
std::uint32_t chunk_header_crc(const ChunkHeader& h);

/// The deterministic chunk decomposition of an object set: every chunk's
/// identity and image offset is a pure function of (objects, chunk_bytes), so
/// pipeline workers write disjoint spans and images are byte-identical across
/// worker counts.
struct ChunkLayout {
  struct Chunk {
    std::uint32_t object = 0;
    std::uint32_t index = 0;
    std::size_t object_offset = 0;
    std::uint32_t payload_bytes = 0;
    std::size_t image_offset = 0;  ///< Of the ChunkHeader.
  };

  std::vector<Chunk> chunks;
  std::vector<std::uint64_t> object_bytes;
  std::size_t header_bytes = 0;  ///< SlotHeader + object-size table.
  std::size_t image_bytes = 0;
  std::size_t payload_bytes = 0;

  static ChunkLayout make(std::span<const ObjectView> objs, std::size_t chunk_bytes);
};

/// Slot capacity one checkpoint of `objs` needs under `chunk_bytes` chunking
/// (payload + chunk headers + slot header) — for sizing NVM slot allocations.
std::size_t checkpoint_image_bytes(std::span<const ObjectView> objs, std::size_t chunk_bytes);

}  // namespace adcc::checkpoint
