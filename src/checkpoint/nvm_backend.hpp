// NVM-only memory checkpointing (paper test case 3): chunk spans are
// write_durable'd (memcpy + CLFLUSH + fence) into slot arenas allocated from
// an NvmRegion, charged to the arena's perf model. With a slowdown-1 model
// this is the paper's optimistic "NVM as fast as DRAM" configuration (4.2 %
// overhead for CG); with slowdown 8 it is the pessimistic one (43.6 %).
//
// The NVM "device" is a single memory channel here, so span persists are
// serialized under a mutex; pipeline workers still overlap chunk
// serialization and CRC computation with each other's persists.
#pragma once

#include <mutex>

#include "checkpoint/backend.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::checkpoint {

class NvmBackend final : public Backend {
 public:
  /// The backend allocates `slots` slots of `capacity_per_slot` in `region`.
  /// One-slot backends are the mirror-style incremental configuration (no
  /// double buffering — a crash mid-save leaves a detectably torn mirror).
  NvmBackend(nvm::NvmRegion& region, std::size_t capacity_per_slot, int slots = 2);
  /// Joins an in-flight drain before the slot arenas can dangle.
  ~NvmBackend() override { teardown_drain(); }

  std::pair<int, std::uint64_t> latest() const override;
  int slot_count() const override { return slot_count_; }

 protected:
  void begin_slot(int slot, std::size_t image_bytes) override;
  void write_span(int slot, std::size_t offset, const void* src, std::size_t bytes) override;
  void finish_slot(int slot) override;
  void commit_marker(int slot, std::uint64_t version) override;
  std::size_t read_span(int slot, std::size_t offset, void* dst,
                        std::size_t bytes) const override;

 private:
  nvm::NvmRegion& region_;
  int slot_count_;
  std::span<std::byte> slots_[2];
  std::span<std::uint64_t> meta_;  ///< [slot, version]
  std::mutex media_mu_;
};

}  // namespace adcc::checkpoint
