// NVM-only memory checkpointing (paper test case 3): memcpy into an NVM arena
// plus CLFLUSH of the destination, charged to the arena's perf model. With a
// slowdown-1 model this is the paper's optimistic "NVM as fast as DRAM"
// configuration (4.2 % overhead for CG); with slowdown 8 it is the pessimistic
// one (43.6 %).
#pragma once

#include "checkpoint/backend.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::checkpoint {

class NvmBackend final : public Backend {
 public:
  /// The backend allocates 2 slots of `capacity_per_slot` in `region`.
  NvmBackend(nvm::NvmRegion& region, std::size_t capacity_per_slot);

  void save(int slot, std::uint64_t version, std::span<const ObjectView> objs) override;
  std::uint64_t load(int slot, std::span<const ObjectView> objs) override;
  std::pair<int, std::uint64_t> latest() const override;

 private:
  nvm::NvmRegion& region_;
  std::span<std::byte> slots_[2];
  std::span<std::uint64_t> meta_;  ///< [slot, version]
};

}  // namespace adcc::checkpoint
