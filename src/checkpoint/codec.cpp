#include "checkpoint/codec.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace adcc::checkpoint {

namespace {

// Stream layout (after the ChunkHeader, which records stored/raw sizes):
//   [u8 plane_count == kPlanes]
//   kPlanes x ( [u8 method] [u32le enc_len] [enc_len bytes] )
//   [raw tail: payload % kPlanes bytes]
constexpr std::size_t kPlanes = 8;        // f64 lanes.
constexpr std::size_t kMinPayload = 64;   // Below this the headers dominate.

enum Method : std::uint8_t {
  kMethodRaw = 0,
  kMethodConst = 1,
  kMethodRle = 2,
  kMethodPack4 = 3,  // 16-entry table, 2 values/byte.
  kMethodPack2 = 4,  // 4-entry table, 4 values/byte.
  kMethodPack1 = 5,  // 2-entry table, 8 values/byte.
  kMethodDeltaRle = 6,
  kMethodHuff = 7,   // Canonical Huffman, 128-byte nibble length table.
};

constexpr std::size_t kNoFit = static_cast<std::size_t>(-1);

/// Control-byte RLE: c < 128 copies the next c+1 literal bytes; c >= 128
/// repeats the next byte c-126 times (runs 3..129 are encoded, shorter runs
/// ride the literal stream). Worst case: +1 byte per 128 literals.
std::size_t rle_encode(const std::uint8_t* p, std::size_t len, std::vector<std::uint8_t>& out,
                       std::size_t budget) {
  out.clear();
  std::size_t i = 0;
  std::size_t lit_start = 0;
  const auto flush_literals = [&](std::size_t end) {
    while (lit_start < end) {
      const std::size_t n = std::min<std::size_t>(end - lit_start, 128);
      out.push_back(static_cast<std::uint8_t>(n - 1));
      out.insert(out.end(), p + lit_start, p + lit_start + n);
      lit_start += n;
    }
  };
  while (i < len) {
    std::size_t run = 1;
    while (i + run < len && p[i + run] == p[i] && run < 129) ++run;
    if (run >= 3) {
      flush_literals(i);
      out.push_back(static_cast<std::uint8_t>(126 + run));
      out.push_back(p[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
    if (out.size() + (i - lit_start) > budget) return kNoFit;
  }
  flush_literals(len);
  return out.size() > budget ? kNoFit : out.size();
}

bool rle_decode(const std::uint8_t* src, std::size_t n, std::uint8_t* dst, std::size_t len) {
  std::size_t i = 0;
  std::size_t o = 0;
  while (i < n) {
    const std::uint8_t c = src[i++];
    if (c < 128) {
      const std::size_t take = static_cast<std::size_t>(c) + 1;
      if (i + take > n || o + take > len) return false;
      std::memcpy(dst + o, src + i, take);
      i += take;
      o += take;
    } else {
      const std::size_t run = static_cast<std::size_t>(c) - 126;
      if (i >= n || o + run > len) return false;
      std::memset(dst + o, src[i++], run);
      o += run;
    }
  }
  return o == len;
}

/// k-bit dictionary packing for planes with few distinct values: a sorted
/// value table then ceil(len * k / 8) packed index bytes, first value in the
/// high bits. Exponent planes of same-magnitude doubles hit this even when
/// random interleaving defeats RLE.
struct PackPlan {
  std::uint8_t method;
  std::size_t table;   // Table entries (2 / 4 / 16).
  unsigned bits;       // Index width.
};

constexpr PackPlan kPackPlans[] = {
    {kMethodPack1, 2, 1}, {kMethodPack2, 4, 2}, {kMethodPack4, 16, 4}};

std::size_t pack_size(const PackPlan& plan, std::size_t len) {
  return plan.table + (len * plan.bits + 7) / 8;
}

void pack_encode(const PackPlan& plan, const std::uint8_t* p, std::size_t len,
                 const std::vector<std::uint8_t>& values, std::vector<std::uint8_t>& out) {
  out.assign(pack_size(plan, len), 0);
  std::array<std::uint8_t, 256> index{};
  for (std::size_t v = 0; v < values.size(); ++v) index[values[v]] = static_cast<std::uint8_t>(v);
  std::copy(values.begin(), values.end(), out.begin());
  const unsigned per_byte = 8 / plan.bits;
  for (std::size_t i = 0; i < len; ++i) {
    const unsigned shift = static_cast<unsigned>(8 - plan.bits * (i % per_byte + 1));
    out[plan.table + i / per_byte] |=
        static_cast<std::uint8_t>(index[p[i]] << shift);
  }
}

bool pack_decode(const PackPlan& plan, const std::uint8_t* src, std::size_t n,
                 std::uint8_t* dst, std::size_t len) {
  if (n != pack_size(plan, len)) return false;
  const unsigned per_byte = 8 / plan.bits;
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << plan.bits) - 1u);
  for (std::size_t i = 0; i < len; ++i) {
    const unsigned shift = static_cast<unsigned>(8 - plan.bits * (i % per_byte + 1));
    dst[i] = src[(src[plan.table + i / per_byte] >> shift) & mask];
  }
  return true;
}

/// Canonical Huffman over one plane, for the mid-entropy case the dictionary
/// packers cannot touch (e.g. a low-exponent plane with hundreds of distinct
/// bytes at 6-7 bits of entropy). Stream: 128 bytes of 4-bit code lengths
/// (symbol 2i in the high nibble, 2i+1 in the low; 0 = unused symbol), then
/// the MSB-first bitstream, zero-padded to a byte. Codes are canonical —
/// assigned in (length, symbol) order — so the stream is a pure function of
/// the plane bytes and slot images stay deterministic.
constexpr unsigned kHuffMaxBits = 15;  // Lengths must fit a nibble.
constexpr std::size_t kHuffTable = 128;

/// Deterministic Huffman code lengths, capped at kHuffMaxBits. Leaves are
/// merged smallest-(freq, symbol)-first with leaves winning freq ties against
/// internal nodes, then overlong codes are shortened by deepening the longest
/// sub-cap code until the Kraft sum fits (the canonical length-limit fixup).
void huff_lengths(const std::array<std::uint32_t, 256>& freq,
                  std::array<std::uint8_t, 256>& len) {
  len.fill(0);
  std::vector<std::uint8_t> syms;
  for (int s = 0; s < 256; ++s) {
    if (freq[s] != 0) syms.push_back(static_cast<std::uint8_t>(s));
  }
  if (syms.empty()) return;
  if (syms.size() == 1) {
    len[syms[0]] = 1;
    return;
  }
  std::sort(syms.begin(), syms.end(), [&](std::uint8_t a, std::uint8_t b) {
    return freq[a] != freq[b] ? freq[a] < freq[b] : a < b;
  });

  const std::size_t n = syms.size();
  std::vector<std::uint64_t> f(syms.size());
  for (std::size_t i = 0; i < n; ++i) f[i] = freq[syms[i]];
  std::vector<std::size_t> parent(2 * n - 1, 0);
  std::size_t leaf = 0;
  std::size_t inode = n;  // Internal nodes occupy f[n .. 2n-2], created FIFO.
  const auto take = [&]() {
    if (leaf < n && (inode >= f.size() || f[leaf] <= f[inode])) return leaf++;
    return inode++;
  };
  while (f.size() < 2 * n - 1) {
    const std::size_t a = take();
    const std::size_t b = take();
    parent[a] = f.size();
    parent[b] = f.size();
    f.push_back(f[a] + f[b]);
  }
  std::vector<std::uint8_t> depth(2 * n - 1, 0);
  for (std::size_t i = 2 * n - 2; i-- > 0;) {
    depth[i] = static_cast<std::uint8_t>(depth[parent[i]] + 1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    len[syms[i]] = std::min<std::uint8_t>(depth[i], kHuffMaxBits);
  }

  std::uint64_t kraft = 0;
  for (std::size_t i = 0; i < n; ++i) kraft += 1ull << (kHuffMaxBits - len[syms[i]]);
  while (kraft > (1ull << kHuffMaxBits)) {
    // Deepen the longest code still under the cap by one bit; syms is sorted
    // rarest-first so scanning it front-to-back picks a cheap victim
    // deterministically.
    std::size_t victim = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (len[syms[i]] < kHuffMaxBits &&
          (victim == n || len[syms[i]] > len[syms[victim]])) {
        victim = i;
      }
    }
    ++len[syms[victim]];
    kraft -= 1ull << (kHuffMaxBits - len[syms[victim]]);
  }
}

/// Canonical code assignment from lengths: codes handed out in (length,
/// symbol) order. Returns false when the lengths oversubscribe the code space
/// (decoder-side corruption guard; encoder-built lengths always fit).
bool huff_codes(const std::array<std::uint8_t, 256>& len,
                std::array<std::uint16_t, 256>& code) {
  std::array<std::uint32_t, kHuffMaxBits + 1> count{};
  for (int s = 0; s < 256; ++s) ++count[len[s]];
  count[0] = 0;
  std::uint64_t kraft = 0;
  std::uint32_t next = 0;
  std::array<std::uint32_t, kHuffMaxBits + 1> first{};
  for (unsigned l = 1; l <= kHuffMaxBits; ++l) {
    next = (next + count[l - 1]) << 1;
    first[l] = next;
    kraft += static_cast<std::uint64_t>(count[l]) << (kHuffMaxBits - l);
  }
  if (kraft > (1ull << kHuffMaxBits)) return false;
  for (int s = 0; s < 256; ++s) {
    if (len[s] != 0) code[s] = static_cast<std::uint16_t>(first[len[s]]++);
  }
  return true;
}

std::size_t huff_encode(const std::uint8_t* p, std::size_t plane_len,
                        std::vector<std::uint8_t>& out, std::size_t budget) {
  std::array<std::uint32_t, 256> freq{};
  for (std::size_t i = 0; i < plane_len; ++i) ++freq[p[i]];
  std::array<std::uint8_t, 256> len;
  huff_lengths(freq, len);
  std::uint64_t bits = 0;
  for (int s = 0; s < 256; ++s) bits += static_cast<std::uint64_t>(freq[s]) * len[s];
  const std::size_t total = kHuffTable + (bits + 7) / 8;
  if (total > budget) return kNoFit;  // Sized from the histogram: no wasted encode.

  std::array<std::uint16_t, 256> code{};
  huff_codes(len, code);
  out.assign(total, 0);
  for (int s = 0; s < 256; ++s) {
    out[s >> 1] |= static_cast<std::uint8_t>(len[s] << ((s & 1) ? 0 : 4));
  }
  std::uint32_t acc = 0;
  unsigned nbits = 0;
  std::size_t o = kHuffTable;
  for (std::size_t i = 0; i < plane_len; ++i) {
    acc = (acc << len[p[i]]) | code[p[i]];
    nbits += len[p[i]];
    while (nbits >= 8) {
      out[o++] = static_cast<std::uint8_t>(acc >> (nbits - 8));
      nbits -= 8;
    }
  }
  if (nbits != 0) out[o++] = static_cast<std::uint8_t>(acc << (8 - nbits));
  return total;
}

bool huff_decode(const std::uint8_t* src, std::size_t n, std::uint8_t* dst,
                 std::size_t plane_len) {
  if (n < kHuffTable) return false;
  std::array<std::uint8_t, 256> len;
  for (int s = 0; s < 256; ++s) {
    len[s] = static_cast<std::uint8_t>((src[s >> 1] >> ((s & 1) ? 0 : 4)) & 0x0F);
  }
  std::array<std::uint16_t, 256> code{};
  if (!huff_codes(len, code)) return false;
  // Flat one-shot lookup: every 15-bit window resolves to (length, symbol) in
  // one load. Entries left 0 (length 0) catch windows outside the code space.
  std::vector<std::uint16_t> lut(1u << kHuffMaxBits, 0);
  for (int s = 0; s < 256; ++s) {
    if (len[s] == 0) continue;
    const std::uint32_t base = static_cast<std::uint32_t>(code[s])
                               << (kHuffMaxBits - len[s]);
    const std::uint32_t span = 1u << (kHuffMaxBits - len[s]);
    const std::uint16_t entry = static_cast<std::uint16_t>((len[s] << 8) | s);
    std::fill(lut.begin() + base, lut.begin() + base + span, entry);
  }
  std::uint32_t acc = 0;
  unsigned nbits = 0;
  std::size_t i = kHuffTable;
  for (std::size_t o = 0; o < plane_len; ++o) {
    while (nbits < kHuffMaxBits && i < n) {
      acc = (acc << 8) | src[i++];
      nbits += 8;
    }
    const std::uint32_t window =
        nbits >= kHuffMaxBits ? (acc >> (nbits - kHuffMaxBits)) & 0x7FFFu
                              : (acc << (kHuffMaxBits - nbits)) & 0x7FFFu;
    const std::uint16_t entry = lut[window];
    const unsigned l = entry >> 8;
    if (l == 0 || l > nbits) return false;
    dst[o] = static_cast<std::uint8_t>(entry & 0xFF);
    nbits -= l;
  }
  // The stream ends exactly here: sub-byte zero padding only.
  return i == n && nbits < 8 && (acc & ((1u << nbits) - 1u)) == 0;
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

bool parse_codec(std::string_view spec, CodecSpec* out, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (spec == "none") {
    *out = CodecSpec{Codec::kRaw, 1};
    return true;
  }
  std::string_view level_str;
  if (spec.substr(0, 2) != "lz") {
    return fail("unknown codec '" + std::string(spec) + "' (expected none|lz[:LEVEL])");
  }
  std::string_view rest = spec.substr(2);
  if (!rest.empty()) {
    if (rest[0] != ':') {
      return fail("unknown codec '" + std::string(spec) + "' (expected none|lz[:LEVEL])");
    }
    level_str = rest.substr(1);
    if (level_str.size() != 1 || level_str[0] < '1' || level_str[0] > '9') {
      return fail("codec level '" + std::string(level_str) + "' out of range (1-9)");
    }
  }
  CodecSpec parsed;
  parsed.codec = Codec::kLz;
  parsed.level = level_str.empty() ? 2 : level_str[0] - '0';  // "lz" == "lz:2".
  *out = parsed;
  return true;
}

std::string codec_spec_string(const CodecSpec& spec) {
  if (spec.codec == Codec::kRaw) return "none";
  if (spec.level == 2) return "lz";  // The default level round-trips to "lz".
  return "lz:" + std::to_string(spec.level);
}

std::size_t lz_compress(const void* src, std::size_t bytes, std::vector<std::byte>& dst,
                        int level) {
  if (bytes < kMinPayload) return 0;
  const auto* in = static_cast<const std::uint8_t*>(src);
  const std::size_t plane_len = bytes / kPlanes;
  const std::size_t tail = bytes % kPlanes;

  dst.clear();
  dst.reserve(bytes);
  dst.push_back(static_cast<std::byte>(kPlanes));

  std::vector<std::uint8_t> plane(plane_len);
  std::vector<std::uint8_t> rle_buf;
  std::vector<std::uint8_t> delta_buf;
  std::vector<std::uint8_t> delta_rle_buf;
  std::vector<std::uint8_t> pack_buf;
  std::vector<std::uint8_t> huff_buf;
  std::vector<std::uint8_t> values;

  for (std::size_t b = 0; b < kPlanes; ++b) {
    for (std::size_t i = 0; i < plane_len; ++i) plane[i] = in[i * kPlanes + b];

    std::array<bool, 256> seen{};
    values.clear();
    for (std::size_t i = 0; i < plane_len && values.size() <= 16; ++i) {
      if (!seen[plane[i]]) {
        seen[plane[i]] = true;
        values.push_back(plane[i]);
      }
    }

    // Candidates, best (strictly smallest) wins; raw is the backstop so a
    // plane never grows past plane_len + the 5-byte record header.
    std::uint8_t method = kMethodRaw;
    std::size_t best = plane_len;
    const std::uint8_t* enc = plane.data();

    if (values.size() == 1) {
      method = kMethodConst;
      best = 1;
      enc = values.data();
    } else if (values.size() <= 16) {
      std::sort(values.begin(), values.end());
      for (const PackPlan& plan : kPackPlans) {
        if (values.size() <= plan.table && pack_size(plan, plane_len) < best) {
          pack_encode(plan, plane.data(), plane_len, values, pack_buf);
          method = plan.method;
          best = pack_buf.size();
          enc = pack_buf.data();
          break;  // Plans are ordered narrowest-first; the first fit is best.
        }
      }
    }
    if (const std::size_t n = rle_encode(plane.data(), plane_len, rle_buf, best);
        n != kNoFit && n < best) {
      method = kMethodRle;
      best = n;
      enc = rle_buf.data();
    }
    if (level >= 2) {
      delta_buf.resize(plane_len);
      std::uint8_t prev = 0;
      for (std::size_t i = 0; i < plane_len; ++i) {
        delta_buf[i] = static_cast<std::uint8_t>(plane[i] - prev);
        prev = plane[i];
      }
      if (const std::size_t n = rle_encode(delta_buf.data(), plane_len, delta_rle_buf, best);
          n != kNoFit && n < best) {
        method = kMethodDeltaRle;
        best = n;
        enc = delta_rle_buf.data();
      }
      if (const std::size_t n = huff_encode(plane.data(), plane_len, huff_buf, best);
          n != kNoFit && n < best) {
        method = kMethodHuff;
        best = n;
        enc = huff_buf.data();
      }
    }

    dst.push_back(static_cast<std::byte>(method));
    put_u32(dst, static_cast<std::uint32_t>(best));
    const auto* enc_bytes = reinterpret_cast<const std::byte*>(enc);
    dst.insert(dst.end(), enc_bytes, enc_bytes + best);
    if (dst.size() + tail >= bytes) return 0;  // Not shrinking; store raw.
  }
  const auto* tail_bytes = reinterpret_cast<const std::byte*>(in + plane_len * kPlanes);
  dst.insert(dst.end(), tail_bytes, tail_bytes + tail);
  return dst.size() < bytes ? dst.size() : 0;
}

bool lz_decompress(const std::byte* src, std::size_t stored, void* dst, std::size_t raw_bytes) {
  auto* out = static_cast<std::uint8_t*>(dst);
  if (stored < 1 || static_cast<std::size_t>(src[0]) != kPlanes) return false;
  const std::size_t plane_len = raw_bytes / kPlanes;
  const std::size_t tail = raw_bytes % kPlanes;
  std::size_t pos = 1;

  std::vector<std::uint8_t> plane(plane_len);
  for (std::size_t b = 0; b < kPlanes; ++b) {
    if (pos + 5 > stored) return false;
    const auto method = static_cast<std::uint8_t>(src[pos]);
    const std::size_t n = get_u32(src + pos + 1);
    pos += 5;
    if (pos + n > stored) return false;
    const auto* enc = reinterpret_cast<const std::uint8_t*>(src + pos);
    pos += n;

    switch (method) {
      case kMethodRaw:
        if (n != plane_len) return false;
        std::copy(enc, enc + n, plane.begin());
        break;
      case kMethodConst:
        if (n != 1) return false;
        std::fill(plane.begin(), plane.end(), enc[0]);
        break;
      case kMethodRle:
        if (!rle_decode(enc, n, plane.data(), plane_len)) return false;
        break;
      case kMethodPack1:
      case kMethodPack2:
      case kMethodPack4: {
        const PackPlan* plan = nullptr;
        for (const PackPlan& p : kPackPlans) {
          if (p.method == method) plan = &p;
        }
        if (plan == nullptr || !pack_decode(*plan, enc, n, plane.data(), plane_len)) {
          return false;
        }
        break;
      }
      case kMethodDeltaRle: {
        if (!rle_decode(enc, n, plane.data(), plane_len)) return false;
        std::uint8_t acc = 0;
        for (std::size_t i = 0; i < plane_len; ++i) {
          acc = static_cast<std::uint8_t>(acc + plane[i]);
          plane[i] = acc;
        }
        break;
      }
      case kMethodHuff:
        if (!huff_decode(enc, n, plane.data(), plane_len)) return false;
        break;
      default:
        return false;
    }
    for (std::size_t i = 0; i < plane_len; ++i) out[i * kPlanes + b] = plane[i];
  }
  if (pos + tail != stored) return false;
  std::memcpy(out + plane_len * kPlanes, src + pos, tail);
  return true;
}

}  // namespace adcc::checkpoint
