#include "checkpoint/chunk.hpp"

#include <array>
#include <cstring>

#include "common/check.hpp"

namespace adcc::checkpoint {

std::size_t total_bytes(std::span<const ObjectView> objs) {
  std::size_t n = 0;
  for (const ObjectView& o : objs) n += o.bytes;
  return n;
}

namespace {

using CrcTables = std::array<std::array<std::uint32_t, 256>, 4>;

CrcTables make_crc_tables() {
  CrcTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
    t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
    t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
  }
  return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
  static const CrcTables t = make_crc_tables();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  while (bytes >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
    c = t[3][c & 0xFFu] ^ t[2][(c >> 8) & 0xFFu] ^ t[1][(c >> 16) & 0xFFu] ^ t[0][c >> 24];
    p += 4;
    bytes -= 4;
  }
  while (bytes-- > 0) c = (c >> 8) ^ t[0][(c ^ *p++) & 0xFFu];
  return ~c;
}

std::uint32_t slot_header_crc(const SlotHeader& h) {
  SlotHeader copy = h;
  copy.header_crc = 0;
  return crc32(&copy, sizeof(copy));
}

std::uint32_t chunk_header_crc(const ChunkHeader& h) {
  ChunkHeader copy = h;
  copy.header_crc = 0;
  return crc32(&copy, sizeof(copy));
}

ChunkLayout ChunkLayout::make(std::span<const ObjectView> objs, std::size_t chunk_bytes) {
  ADCC_CHECK(chunk_bytes > 0, "chunk size must be positive");
  ChunkLayout layout;
  layout.object_bytes.reserve(objs.size());
  std::size_t off = sizeof(SlotHeader) + objs.size() * sizeof(std::uint64_t);
  layout.header_bytes = off;
  for (std::size_t oi = 0; oi < objs.size(); ++oi) {
    const ObjectView& o = objs[oi];
    layout.object_bytes.push_back(o.bytes);
    layout.payload_bytes += o.bytes;
    for (std::size_t pos = 0; pos < o.bytes; pos += chunk_bytes) {
      Chunk c;
      c.object = static_cast<std::uint32_t>(oi);
      c.index = static_cast<std::uint32_t>(pos / chunk_bytes);
      c.object_offset = pos;
      c.payload_bytes = static_cast<std::uint32_t>(std::min(chunk_bytes, o.bytes - pos));
      c.image_offset = off;
      off += sizeof(ChunkHeader) + c.payload_bytes;
      layout.chunks.push_back(c);
    }
  }
  layout.image_bytes = off;
  return layout;
}

std::size_t checkpoint_image_bytes(std::span<const ObjectView> objs, std::size_t chunk_bytes) {
  return ChunkLayout::make(objs, chunk_bytes).image_bytes;
}

}  // namespace adcc::checkpoint
