#include "checkpoint/checkpoint_set.hpp"

#include <cstring>

#include "common/check.hpp"
#include "core/telemetry.hpp"

namespace adcc::checkpoint {

void CheckpointSet::add(std::string name, void* data, std::size_t bytes) {
  ADCC_CHECK(!frozen_, "objects must be registered before the first save");
  ADCC_CHECK(data != nullptr || bytes == 0, "non-empty object needs a pointer");
  objs_.push_back({std::move(name), data, bytes});
}

int CheckpointSet::save_slot() const {
  return backend_.slot_count() == 1 ? 0 : static_cast<int>(version_ % 2);
}

std::uint64_t CheckpointSet::save_with(const std::function<bool(std::size_t)>& select) {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  wait_durable();  // An in-flight drain commits (or surfaces its crash) first.
  frozen_ = true;
  ++version_;
  const int slot = save_slot();

  slot_crcs_.resize(static_cast<std::size_t>(backend_.slot_count()));
  auto& crcs = slot_crcs_[static_cast<std::size_t>(slot)];
  const std::size_t chunk_count = layout().chunks.size();
  if (crcs.size() != chunk_count) crcs.assign(chunk_count, std::nullopt);

  ChunkHooks hooks;
  hooks.point = point_hook_;
  if (select) {
    hooks.select = [&crcs, &select](std::size_t chunk) {
      // A chunk this slot has never held must be written regardless of the
      // hints — a committed image may not contain never-written holes (the
      // first save landing in each slot is implicitly full).
      return !crcs[chunk].has_value() || select(chunk);
    };
  }
  hooks.should_write = [&crcs](std::size_t chunk, std::uint32_t crc) {
    return crcs[chunk] != crc;
  };

  SaveReceipt receipt;
  try {
    receipt = backend_.save(slot, version_, objs_, hooks, &layout());
  } catch (...) {
    // The save died mid-flight (crash point, medium failure): some chunks of
    // the new image may be in the slot, so everything we believed about it is
    // suspect. Forget it — the next save to this slot rewrites in full — and
    // roll the version back so a retried save targets this same uncommitted
    // slot again instead of advancing onto the committed one (the double
    // buffer must keep protecting the last marker).
    crcs.assign(crcs.size(), std::nullopt);
    --version_;
    throw;
  }

  for (std::size_t i = 0; i < receipt.chunks.size(); ++i) {
    if (receipt.chunks[i] == SaveReceipt::Chunk::kWritten) crcs[i] = receipt.crcs[i];
  }
  save_stats_ = {receipt.written, receipt.skipped, receipt.payload_bytes};
  return version_;
}

std::uint64_t CheckpointSet::save() {
  if (backend_.chunk_config().async) return save_async();
  return save_with({});
}

const ChunkLayout& CheckpointSet::layout() {
  // A pure function of (objects, chunk size); objects freeze at the first
  // save, so the memo only invalidates on a chunk-size reconfiguration.
  const std::size_t chunk_bytes = backend_.chunk_config().chunk_bytes;
  if (!layout_ || layout_chunk_bytes_ != chunk_bytes) {
    layout_ = std::make_shared<const ChunkLayout>(ChunkLayout::make(objs_, chunk_bytes));
    layout_chunk_bytes_ = chunk_bytes;
  }
  return *layout_;
}

std::uint64_t CheckpointSet::save_async() {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  wait_durable();  // Back-to-back async saves: the second joins the first.
  frozen_ = true;
  ++version_;
  const int slot = save_slot();

  slot_crcs_.resize(static_cast<std::size_t>(backend_.slot_count()));
  auto& crcs = slot_crcs_[static_cast<std::size_t>(slot)];
  const ChunkLayout& layout = this->layout();
  if (crcs.size() != layout.chunks.size()) crcs.assign(layout.chunks.size(), std::nullopt);

  // Stage: snapshot every chunk's payload into the arena. The previous drain
  // released its keepalive at the join above, so the buffer is reusable; a
  // fresh one is only allocated if an external holder still pins it.
  if (!staging_ || staging_.use_count() != 1) staging_ = std::make_shared<Staged>();
  staging_->bytes.resize(layout.payload_bytes);
  std::vector<std::size_t> object_base(objs_.size(), 0);  // Payload offset of object i.
  for (std::size_t i = 1; i < objs_.size(); ++i) {
    object_base[i] = object_base[i - 1] + objs_[i - 1].bytes;
  }
  staging_->views.clear();
  for (std::size_t i = 0; i < objs_.size(); ++i) {
    staging_->views.push_back(
        {objs_[i].name, staging_->bytes.data() + object_base[i], objs_[i].bytes});
  }
  try {
    const core::StageTimer timer("ckpt/stage");
    for (const ChunkLayout::Chunk& c : layout.chunks) {
      std::memcpy(staging_->bytes.data() + object_base[c.object] + c.object_offset,
                  static_cast<const std::byte*>(objs_[c.object].data) + c.object_offset,
                  c.payload_bytes);
      if (point_hook_) point_hook_(kPointChunkStaged);
    }
  } catch (...) {
    // A crash between stage and drain start touches nothing durable: the slot
    // (and the CRC cache describing it) is exactly as the last save left it,
    // so only the version bump rolls back.
    --version_;
    throw;
  }

  ChunkHooks hooks;
  hooks.point = point_hook_;
  // The drain captures a value snapshot of the CRC cache: the member is
  // updated from the receipt at the join, and the drain must not reference
  // state whose lifetime it does not own.
  hooks.should_write = [snapshot = crcs](std::size_t chunk, std::uint32_t crc) {
    return snapshot[chunk] != crc;
  };
  backend_.save_async(slot, version_, staging_->views, std::move(hooks), layout_, staging_);
  async_pending_ = true;
  return version_;
}

std::uint64_t CheckpointSet::wait_durable() {
  if (!async_pending_) return version_;
  async_pending_ = false;
  auto& crcs = slot_crcs_[static_cast<std::size_t>(save_slot())];
  try {
    const std::optional<SaveReceipt> receipt = backend_.join_drain();
    ADCC_CHECK(receipt.has_value(), "async save pending but the backend had no drain");
    for (std::size_t i = 0; i < receipt->chunks.size(); ++i) {
      if (receipt->chunks[i] == SaveReceipt::Chunk::kWritten) crcs[i] = receipt->crcs[i];
    }
    save_stats_ = {receipt->written, receipt->skipped, receipt->payload_bytes};
    return version_;
  } catch (...) {
    // Same contract as a synchronous mid-save failure: the slot is suspect
    // (some new-version chunks landed), so forget what it holds and roll the
    // version back so a retried save re-targets this uncommitted slot.
    crcs.assign(crcs.size(), std::nullopt);
    --version_;
    throw;
  }
}

void CheckpointSet::abort_async() noexcept {
  if (!async_pending_) return;
  async_pending_ = false;
  backend_.abort_drain();
  auto& crcs = slot_crcs_[static_cast<std::size_t>(save_slot())];
  crcs.assign(crcs.size(), std::nullopt);
  --version_;
}

std::uint64_t CheckpointSet::save(std::span<const DirtyRange> dirty) {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  const std::size_t chunk_bytes = backend_.chunk_config().chunk_bytes;
  const ChunkLayout& layout = this->layout();

  // Per-chunk hint bitmap so overlapping hints are examined once.
  std::vector<bool> hinted(layout.chunks.size(), false);
  std::vector<std::size_t> first_chunk(objs_.size(), 0);  // Global index of chunk 0.
  for (std::size_t i = 0; i < layout.chunks.size(); ++i) {
    if (layout.chunks[i].index == 0) first_chunk[layout.chunks[i].object] = i;
  }
  for (const DirtyRange& d : dirty) {
    ADCC_CHECK(d.object < objs_.size(), "dirty hint for unknown object");
    ADCC_CHECK(d.offset + d.bytes <= objs_[d.object].bytes, "dirty hint out of bounds");
    if (d.bytes == 0) continue;
    const std::size_t base = first_chunk[d.object];
    for (std::size_t c = d.offset / chunk_bytes; c <= (d.offset + d.bytes - 1) / chunk_bytes;
         ++c) {
      hinted[base + c] = true;
    }
  }
  return save_with([hinted = std::move(hinted)](std::size_t chunk) { return hinted[chunk]; });
}

std::uint64_t CheckpointSet::restore() {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  // Restoring implies a crash: a drain still in flight dies with the power
  // (inject_crash normally aborted it already; this covers direct callers).
  abort_async();
  frozen_ = true;
  restore_stats_ = {};
  const auto [slot, ver] = backend_.latest();

  // Classify the slot(s) a save may have been writing when the power failed:
  // every slot except the committed one. Detected torn chunks surface in
  // recovery accounting (the "was a checkpoint in flight?" question the CRC
  // headers exist to answer).
  for (int s = 0; s < backend_.slot_count(); ++s) {
    if (ver != 0 && s == slot) continue;
    const TornProbe probe = backend_.probe_torn(s, objs_);
    restore_stats_.chunks_probed += probe.chunks_probed;
    restore_stats_.torn_chunks += probe.torn_chunks;
  }
  if (ver == 0) return 0;

  ChunkHooks hooks;
  hooks.point = point_hook_;
  const std::uint64_t before = backend_.stats().chunks_loaded;
  const std::uint64_t loaded = backend_.load(slot, objs_, hooks);
  restore_stats_.version = loaded;
  restore_stats_.chunks_loaded =
      static_cast<std::size_t>(backend_.stats().chunks_loaded - before);
  version_ = loaded;
  return loaded;
}

std::uint64_t CheckpointSet::restore_version(std::uint64_t want) {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  abort_async();
  frozen_ = true;
  restore_stats_ = {};
  if (want == 0) {
    // Rewinding to "before the first commit": nothing durable is trusted, the
    // caller reinitializes, and the version realigns so the next save is 1.
    version_ = 0;
    return 0;
  }
  // The marker's version may be older than the backend's newest commit (the
  // shard saved ahead of a global commit the crash interrupted); scan the slot
  // headers for the one whose committed image is exactly `want`.
  const auto [latest_slot, latest_ver] = backend_.latest();
  int found = -1;
  if (latest_ver == want) {
    found = latest_slot;
  } else {
    for (int s = 0; s < backend_.slot_count(); ++s) {
      SlotHeader h{};
      if (backend_.read_image(s, {reinterpret_cast<std::byte*>(&h), sizeof(h)}) != sizeof(h)) {
        continue;
      }
      if (h.magic != kSlotMagic || slot_header_crc(h) != h.header_crc) continue;
      if (h.version == want) {
        found = s;
        break;
      }
    }
  }
  ADCC_CHECK(found >= 0, "no committed slot holds the requested checkpoint version");
  // Classify the remaining slot(s) for torn-save evidence, as restore() does.
  for (int s = 0; s < backend_.slot_count(); ++s) {
    if (s == found) continue;
    const TornProbe probe = backend_.probe_torn(s, objs_);
    restore_stats_.chunks_probed += probe.chunks_probed;
    restore_stats_.torn_chunks += probe.torn_chunks;
  }
  ChunkHooks hooks;
  hooks.point = point_hook_;
  const std::uint64_t before = backend_.stats().chunks_loaded;
  const std::uint64_t loaded = backend_.load(found, objs_, hooks);
  ADCC_CHECK(loaded == want, "slot header version does not match its committed image");
  restore_stats_.version = loaded;
  restore_stats_.chunks_loaded =
      static_cast<std::size_t>(backend_.stats().chunks_loaded - before);
  version_ = loaded;
  return loaded;
}

}  // namespace adcc::checkpoint
