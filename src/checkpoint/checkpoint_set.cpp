#include "checkpoint/checkpoint_set.hpp"

#include "common/check.hpp"

namespace adcc::checkpoint {

void CheckpointSet::add(std::string name, void* data, std::size_t bytes) {
  ADCC_CHECK(!frozen_, "objects must be registered before the first save");
  ADCC_CHECK(data != nullptr && bytes > 0, "object must be non-empty");
  objs_.push_back({std::move(name), data, bytes});
}

std::uint64_t CheckpointSet::save() {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  frozen_ = true;
  ++version_;
  backend_.save(static_cast<int>(version_ % 2), version_, objs_);
  return version_;
}

std::uint64_t CheckpointSet::restore() {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  const auto [slot, ver] = backend_.latest();
  if (ver == 0) return 0;
  const std::uint64_t loaded = backend_.load(slot, objs_);
  version_ = loaded;
  frozen_ = true;
  return loaded;
}

}  // namespace adcc::checkpoint
