#include "checkpoint/checkpoint_set.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "core/telemetry.hpp"

namespace adcc::checkpoint {

void CheckpointSet::add(std::string name, void* data, std::size_t bytes) {
  ADCC_CHECK(!frozen_, "objects must be registered before the first save");
  ADCC_CHECK(data != nullptr || bytes == 0, "non-empty object needs a pointer");
  objs_.push_back({std::move(name), data, bytes});
}

int CheckpointSet::save_slot(bool in_place) const {
  if (backend_.slot_count() == 1) return 0;
  if (in_place) return committed_slot_;
  // Alternate away from the committed image; before the first commit the
  // version parity seeds the alternation (save 1 targets slot 1).
  if (committed_slot_ >= 0) return 1 - committed_slot_;
  return static_cast<int>((version_ + 1) % 2);
}

bool CheckpointSet::in_place_eligible() const {
  if (committed_slot_ < 0 || backend_.slot_count() < 2) return false;
  const auto s = static_cast<std::size_t>(committed_slot_);
  // The other slot must hold a committed fallback: an in-place save tears the
  // committed image it rewrites, and a crash mid-save must still leave SOME
  // restorable checkpoint (the first saves of a run alternate classically).
  const auto other = static_cast<std::size_t>(1 - committed_slot_);
  if (other >= slot_has_commit_.size() || !slot_has_commit_[other]) return false;
  return s < cache_full_.size() && cache_full_[s];
}

void CheckpointSet::note_slot_commit(int slot, bool committed) {
  const auto slots = static_cast<std::size_t>(backend_.slot_count());
  if (slot_has_commit_.size() != slots) slot_has_commit_.resize(slots, false);
  slot_has_commit_[static_cast<std::size_t>(slot)] = committed;
}

const ChunkLayout& CheckpointSet::layout() {
  // A pure function of (objects, chunk size); objects freeze at the first
  // save, so the memo only invalidates on a chunk-size reconfiguration.
  const std::size_t chunk_bytes = backend_.chunk_config().chunk_bytes;
  if (!layout_ || layout_chunk_bytes_ != chunk_bytes) {
    layout_ = std::make_shared<const ChunkLayout>(ChunkLayout::make(objs_, chunk_bytes));
    layout_chunk_bytes_ = chunk_bytes;
  }
  return *layout_;
}

std::shared_ptr<CheckpointSet::CrcCache>& CheckpointSet::slot_cache(int slot) {
  const auto slots = static_cast<std::size_t>(backend_.slot_count());
  if (slot_crcs_.size() != slots) slot_crcs_.resize(slots);
  if (cache_full_.size() != slots) cache_full_.resize(slots, false);
  auto& cache = slot_crcs_[static_cast<std::size_t>(slot)];
  const std::size_t chunks = layout().chunks.size();
  if (cache && cache->size() == chunks) return cache;
  if (cache) {
    // Replacing a cache (chunk-size reconfiguration) would orphan entries a
    // queued drain still updates in place — join the whole ring first.
    wait_durable();
  }
  cache = std::make_shared<CrcCache>(chunks, std::nullopt);
  cache_full_[static_cast<std::size_t>(slot)] = false;
  return cache;
}

std::uint64_t CheckpointSet::save_with(const std::function<bool(std::size_t)>& select) {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  wait_durable();  // An in-flight ring commits (or surfaces its crash) first.
  frozen_ = true;
  const bool in_place = backend_.chunk_config().dirty_commit && in_place_eligible();
  const int slot = save_slot(in_place);
  const std::shared_ptr<CrcCache> cache = slot_cache(slot);
  CrcCache& crcs = *cache;
  ++version_;

  ChunkHooks hooks;
  hooks.point = point_hook_;
  hooks.crc_cache = cache;
  hooks.in_place = in_place;
  if (select) {
    hooks.select = [&crcs, &select](std::size_t chunk) {
      // A chunk this slot has never held must be written regardless of the
      // hints — a committed image may not contain never-written holes (the
      // first save landing in each slot is implicitly full).
      return !crcs[chunk].has_value() || select(chunk);
    };
  }

  SaveReceipt receipt;
  try {
    receipt = backend_.save(slot, version_, objs_, hooks, &layout());
  } catch (...) {
    // The save died mid-flight (crash point, medium failure): some chunks of
    // the new image may be in the slot, so everything we believed about it is
    // suspect. Forget it — the next save to this slot rewrites in full — and
    // roll the version back so a retried save targets this same slot again
    // instead of advancing onto the committed one (the double buffer must
    // keep protecting the last marker).
    crcs.assign(crcs.size(), std::nullopt);
    cache_full_[static_cast<std::size_t>(slot)] = false;
    note_slot_commit(slot, false);
    --version_;
    throw;
  }

  // The engine updated the CRC cache in place as chunks landed.
  save_stats_ = {receipt.written, receipt.skipped, receipt.stamped, receipt.payload_bytes};
  committed_slot_ = durable_slot_ = slot;
  cache_full_[static_cast<std::size_t>(slot)] = true;
  note_slot_commit(slot, true);
  return version_;
}

std::uint64_t CheckpointSet::save() {
  if (backend_.chunk_config().async) return save_async();
  return save_with({});
}

std::uint64_t CheckpointSet::save_async() {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  frozen_ = true;
  const auto depth = static_cast<std::size_t>(std::max(1, backend_.chunk_config().async_depth));
  // Ring admission: with the ring full, the oldest drain completes (or
  // surfaces its crash — complete_oldest rolls the version back) before a
  // new save stages. Depth 1 is the classic one-in-flight handshake.
  while (pending_.size() >= depth) complete_oldest();

  const ChunkLayout& layout = this->layout();
  const bool in_place = backend_.chunk_config().dirty_commit && in_place_eligible();
  const int slot = save_slot(in_place);
  const std::shared_ptr<CrcCache> cache = slot_cache(slot);

  // Stage: snapshot every chunk's payload into a free arena of the staging
  // pool (one released by an already-consumed drain, or a fresh one — the
  // pool is bounded by the ring depth).
  std::shared_ptr<Staged> arena;
  for (const std::shared_ptr<Staged>& a : arenas_) {
    if (a.use_count() == 1) {
      arena = a;
      break;
    }
  }
  if (!arena) {
    arena = std::make_shared<Staged>();
    arenas_.push_back(arena);
  }
  arena->bytes.resize(layout.payload_bytes);
  std::vector<std::size_t> object_base(objs_.size(), 0);  // Payload offset of object i.
  for (std::size_t i = 1; i < objs_.size(); ++i) {
    object_base[i] = object_base[i - 1] + objs_[i - 1].bytes;
  }
  arena->views.clear();
  for (std::size_t i = 0; i < objs_.size(); ++i) {
    arena->views.push_back({objs_[i].name, arena->bytes.data() + object_base[i], objs_[i].bytes});
  }
  ++version_;
  try {
    const core::StageTimer timer("ckpt/stage");
    for (const ChunkLayout::Chunk& c : layout.chunks) {
      std::memcpy(arena->bytes.data() + object_base[c.object] + c.object_offset,
                  static_cast<const std::byte*>(objs_[c.object].data) + c.object_offset,
                  c.payload_bytes);
      if (point_hook_) point_hook_(kPointChunkStaged);
    }
    // Ring admission point: per save staged into a ring deeper than one —
    // the burst-crash window unique to depth > 1 (older arenas still drain,
    // this snapshot dies with the power before its drain is even queued).
    if (depth > 1 && point_hook_) point_hook_(kPointRingStaged);
  } catch (...) {
    // A crash between stage and enqueue touches nothing durable: the slot
    // (and the CRC cache describing it) is exactly as the last save left it,
    // so only the version bump rolls back.
    --version_;
    throw;
  }

  ChunkHooks hooks;
  hooks.point = point_hook_;
  hooks.crc_cache = cache;
  hooks.in_place = in_place;
  backend_.save_async(slot, version_, arena->views, std::move(hooks), layout_, arena);
  pending_.push_back({version_, slot});
  // Predictive tracking: the drains are strictly FIFO, so by the time any
  // LATER ring entry targets a slot, this save has fully committed and its
  // in-place cache updates are done. Failures walk these back.
  committed_slot_ = slot;
  cache_full_[static_cast<std::size_t>(slot)] = true;
  note_slot_commit(slot, true);
  return version_;
}

void CheckpointSet::complete_oldest() {
  ADCC_CHECK(!pending_.empty(), "no pending async save to complete");
  const Pending p = pending_.front();
  pending_.pop_front();
  DrainOutcome outcome = backend_.take_drain_outcome();
  ADCC_CHECK(outcome.version == p.version && outcome.slot == p.slot,
             "drain ring outcome out of step with the pending queue");
  if (outcome.error) {
    // The ring stops at the first failure: the saves queued behind it never
    // touched media — consume their skipped outcomes and drop them. The
    // failed slot holds an unknown mix of old and new chunks; forget it.
    cache_full_[static_cast<std::size_t>(p.slot)] = false;
    note_slot_commit(p.slot, false);
    while (!pending_.empty()) {
      const DrainOutcome skipped = backend_.take_drain_outcome();
      ADCC_CHECK(skipped.skipped && skipped.version == pending_.front().version,
                 "drain ring ran a job queued behind a failure");
      cache_full_[static_cast<std::size_t>(pending_.front().slot)] = false;
      // Dropped unstarted: the slot image is intact, but the predictive
      // commit bit set at its enqueue no longer holds.
      note_slot_commit(pending_.front().slot, false);
      pending_.pop_front();
    }
    backend_.acknowledge_drain_failure();
    auto& cache = slot_crcs_[static_cast<std::size_t>(p.slot)];
    if (cache) cache->assign(cache->size(), std::nullopt);
    // Roll back to just before the failed save so a retry targets the same
    // uncommitted slot; the dropped younger saves never happened.
    version_ = p.version - 1;
    committed_slot_ = durable_slot_;
    // The durable slot factually holds a commit — unless the failed save was
    // an in-place rewrite of that very slot, which is now torn.
    if (durable_slot_ >= 0 && durable_slot_ != p.slot) note_slot_commit(durable_slot_, true);
    std::rethrow_exception(outcome.error);
  }
  ADCC_CHECK(!outcome.skipped && outcome.receipt.has_value(),
             "drain ring skipped a save with no preceding failure");
  const SaveReceipt& receipt = *outcome.receipt;
  save_stats_ = {receipt.written, receipt.skipped, receipt.stamped, receipt.payload_bytes};
  committed_slot_ = durable_slot_ = outcome.slot;
  cache_full_[static_cast<std::size_t>(outcome.slot)] = true;
  note_slot_commit(outcome.slot, true);
}

std::uint64_t CheckpointSet::wait_durable() {
  while (!pending_.empty()) complete_oldest();
  return version_;
}

void CheckpointSet::abort_async() noexcept {
  if (pending_.empty()) return;
  const Pending front = pending_.front();
  backend_.abort_drain();
  // Only the oldest in-flight save may have touched media — it may even have
  // fully committed before the cancel landed; the durable marker is the
  // arbiter. Every younger queued save died unstarted, slots untouched.
  bool front_committed = false;
  try {
    const auto [slot, ver] = backend_.latest();
    front_committed = slot == front.slot && ver == front.version;
  } catch (...) {
  }
  for (const Pending& p : pending_) {
    // The predictive eligibility set at enqueue no longer holds for dropped
    // saves (their slots keep their PRE-enqueue images).
    cache_full_[static_cast<std::size_t>(p.slot)] = false;
    note_slot_commit(p.slot, false);
  }
  pending_.clear();
  if (front_committed) {
    version_ = front.version;
    committed_slot_ = durable_slot_ = front.slot;
    cache_full_[static_cast<std::size_t>(front.slot)] = true;
    note_slot_commit(front.slot, true);
  } else {
    // The front save died mid-drain: its slot is detectably torn.
    auto& cache = slot_crcs_[static_cast<std::size_t>(front.slot)];
    if (cache) cache->assign(cache->size(), std::nullopt);
    version_ = front.version - 1;
    committed_slot_ = durable_slot_;
    // The durable slot's image is intact unless the torn front save was an
    // in-place rewrite of that very slot.
    if (durable_slot_ >= 0 && durable_slot_ != front.slot) {
      note_slot_commit(durable_slot_, true);
    }
  }
}

std::uint64_t CheckpointSet::save(std::span<const DirtyRange> dirty) {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  const std::size_t chunk_bytes = backend_.chunk_config().chunk_bytes;
  const ChunkLayout& layout = this->layout();

  // Per-chunk hint bitmap so overlapping hints are examined once.
  std::vector<bool> hinted(layout.chunks.size(), false);
  std::vector<std::size_t> first_chunk(objs_.size(), 0);  // Global index of chunk 0.
  for (std::size_t i = 0; i < layout.chunks.size(); ++i) {
    if (layout.chunks[i].index == 0) first_chunk[layout.chunks[i].object] = i;
  }
  for (const DirtyRange& d : dirty) {
    ADCC_CHECK(d.object < objs_.size(), "dirty hint for unknown object");
    ADCC_CHECK(d.offset + d.bytes <= objs_[d.object].bytes, "dirty hint out of bounds");
    if (d.bytes == 0) continue;
    const std::size_t base = first_chunk[d.object];
    for (std::size_t c = d.offset / chunk_bytes; c <= (d.offset + d.bytes - 1) / chunk_bytes;
         ++c) {
      hinted[base + c] = true;
    }
  }
  return save_with([hinted = std::move(hinted)](std::size_t chunk) { return hinted[chunk]; });
}

std::uint64_t CheckpointSet::restore() {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  // Restoring implies a crash: a drain still in flight dies with the power
  // (inject_crash normally aborted it already; this covers direct callers).
  abort_async();
  frozen_ = true;
  restore_stats_ = {};
  const auto [slot, ver] = backend_.latest();
  const bool dirty = backend_.chunk_config().dirty_commit;

  // Classify the slot(s) a save may have been writing when the power failed:
  // every slot except the committed one — plus, under dirty_commit, the
  // committed slot itself (an in-place save tears the committed image; torn
  // evidence there counts against the MARKER version, since the slot's own
  // header may already belong to the interrupted save). The same scan sizes
  // up the salvage candidate: an interrupted save that finished every chunk
  // write before the crash.
  int cand_slot = -1;
  TornProbe cand{};
  for (int s = 0; s < backend_.slot_count(); ++s) {
    const bool is_committed = ver != 0 && s == slot;
    if (is_committed && !dirty) continue;
    const TornProbe probe = is_committed ? backend_.probe_torn(s, objs_, ver)
                                         : backend_.probe_torn(s, objs_);
    restore_stats_.chunks_probed += probe.chunks_probed;
    restore_stats_.torn_chunks += probe.torn_chunks;
    if (probe.salvage_ready && probe.salvage_version > ver &&
        (cand_slot < 0 || probe.salvage_version > cand.salvage_version)) {
      cand_slot = s;
      cand = probe;
    }
  }

  ChunkHooks hooks;
  hooks.point = point_hook_;

  // Torn-slot salvage: recover the interrupted save (strictly newer than the
  // marker's checkpoint) and re-commit it. Payload verification can still
  // fail — then the committed checkpoint below is the answer (it rewrites
  // every object the salvage attempt may have partially overwritten).
  if (cand_slot >= 0) {
    const std::uint64_t before = backend_.stats().chunks_loaded;
    try {
      const std::uint64_t got =
          backend_.load_salvage(cand_slot, cand.salvage_version, objs_, hooks);
      backend_.recommit(cand_slot, got);
      restore_stats_.version = got;
      restore_stats_.chunks_loaded =
          static_cast<std::size_t>(backend_.stats().chunks_loaded - before);
      restore_stats_.salvaged_chunks = cand.salvage_chunks;
      // The salvaged save's chunks are recovered, not lost: they no longer
      // count as torn evidence.
      restore_stats_.torn_chunks -= std::min(restore_stats_.torn_chunks, cand.torn_chunks);
      version_ = got;
      committed_slot_ = durable_slot_ = cand_slot;
      note_slot_commit(cand_slot, true);
      return got;
    } catch (const TornCheckpoint&) {
    }
  }

  if (ver == 0) return 0;

  const std::uint64_t before = backend_.stats().chunks_loaded;
  try {
    const std::uint64_t loaded = backend_.load(slot, objs_, hooks);
    restore_stats_.version = loaded;
    restore_stats_.chunks_loaded =
        static_cast<std::size_t>(backend_.stats().chunks_loaded - before);
    version_ = loaded;
    committed_slot_ = durable_slot_ = slot;
    note_slot_commit(slot, true);
    return loaded;
  } catch (const TornCheckpoint&) {
    // Under dirty_commit a crash mid-in-place-save tears the committed slot
    // itself. The aged image in the other slot is the fallback — loaded and
    // re-committed so the marker is coherent again. Returning an OLDER
    // version than the marker knew is the documented dirty-commit trade.
    if (!dirty || backend_.slot_count() < 2) throw;
    for (int s = 0; s < backend_.slot_count(); ++s) {
      if (s == slot) continue;
      const std::uint64_t start = backend_.stats().chunks_loaded;
      try {
        const std::uint64_t old = backend_.load(s, objs_, hooks);
        backend_.recommit(s, old);
        restore_stats_.version = old;
        restore_stats_.chunks_loaded =
            static_cast<std::size_t>(backend_.stats().chunks_loaded - start);
        version_ = old;
        committed_slot_ = durable_slot_ = s;
        note_slot_commit(s, true);
        note_slot_commit(slot, false);  // The marker slot the load found torn.
        return old;
      } catch (const CheckpointError&) {
        continue;
      }
    }
    throw;
  }
}

std::uint64_t CheckpointSet::restore_version(std::uint64_t want) {
  ADCC_CHECK(!objs_.empty(), "no objects registered");
  abort_async();
  frozen_ = true;
  restore_stats_ = {};
  if (want == 0) {
    // Rewinding to "before the first commit": nothing durable is trusted, the
    // caller reinitializes, and the version realigns so the next save is 1.
    version_ = 0;
    committed_slot_ = durable_slot_ = -1;
    // Pre-rewind images must not serve as dirty-commit fallbacks: their
    // versions belong to the abandoned history.
    slot_has_commit_.assign(slot_has_commit_.size(), false);
    return 0;
  }
  // The marker's version may be older than the backend's newest commit (the
  // shard saved ahead of a global commit the crash interrupted); scan the slot
  // headers for the one whose committed image is exactly `want`.
  const auto [latest_slot, latest_ver] = backend_.latest();
  int found = -1;
  if (latest_ver == want) {
    found = latest_slot;
  } else {
    for (int s = 0; s < backend_.slot_count(); ++s) {
      SlotHeader h{};
      if (backend_.read_image(s, {reinterpret_cast<std::byte*>(&h), sizeof(h)}) != sizeof(h)) {
        continue;
      }
      if (h.magic != kSlotMagic || slot_header_crc(h) != h.header_crc) continue;
      if (h.version == want) {
        found = s;
        break;
      }
    }
  }
  ADCC_CHECK(found >= 0, "no committed slot holds the requested checkpoint version");
  // Classify the remaining slot(s) for torn-save evidence, as restore() does.
  for (int s = 0; s < backend_.slot_count(); ++s) {
    if (s == found) continue;
    const TornProbe probe = backend_.probe_torn(s, objs_);
    restore_stats_.chunks_probed += probe.chunks_probed;
    restore_stats_.torn_chunks += probe.torn_chunks;
  }
  ChunkHooks hooks;
  hooks.point = point_hook_;
  const std::uint64_t before = backend_.stats().chunks_loaded;
  const std::uint64_t loaded = backend_.load(found, objs_, hooks);
  ADCC_CHECK(loaded == want, "slot header version does not match its committed image");
  restore_stats_.version = loaded;
  restore_stats_.chunks_loaded =
      static_cast<std::size_t>(backend_.stats().chunks_loaded - before);
  version_ = loaded;
  committed_slot_ = durable_slot_ = found;
  note_slot_commit(found, true);
  return loaded;
}

}  // namespace adcc::checkpoint
