// Local hard-drive checkpointing (the paper's test case 2).
//
// Chunk spans are pwritten at their fixed image offsets into per-slot files
// and synced with fdatasync at the save epilogue. Because modern CI storage
// is much faster than the 2017 local HDD the paper measured, an optional
// device bandwidth model (default 150 MB/s) preserves the figure's shape:
// every span occupies a window on a single modeled device queue and the
// writing worker sleeps until its window closes. With one pipeline worker
// that reproduces the seed's synchronous-write timing; with --ckpt_threads
// > 1 the next chunk's serialization + CRC overlaps the previous chunk's
// device window, which is exactly how a pipelined checkpointer beats a
// synchronous one on real hardware. Pass 0 to disable the model and measure
// the real device.
#pragma once

#include <filesystem>
#include <mutex>

#include "checkpoint/backend.hpp"

namespace adcc::checkpoint {

struct FileBackendConfig {
  std::filesystem::path directory;          ///< Created if absent.
  double throttle_bytes_per_s = 150e6;      ///< 0 → no device model.
  bool sync = true;                         ///< fdatasync at finish_slot.
};

class FileBackend final : public Backend {
 public:
  explicit FileBackend(const FileBackendConfig& cfg);
  ~FileBackend() override;

  std::pair<int, std::uint64_t> latest() const override;

 protected:
  void begin_slot(int slot, std::size_t image_bytes) override;
  void write_span(int slot, std::size_t offset, const void* src, std::size_t bytes) override;
  void finish_slot(int slot) override;
  void commit_marker(int slot, std::uint64_t version) override;
  std::size_t read_span(int slot, std::size_t offset, void* dst,
                        std::size_t bytes) const override;

 private:
  std::filesystem::path slot_path(int slot) const;
  std::filesystem::path meta_path() const;

  FileBackendConfig cfg_;
  int fds_[2] = {-1, -1};  ///< Open during a save (begin_slot .. finish_slot).
  mutable int read_fds_[2] = {-1, -1};  ///< Lazily opened, one per slot.

  // Modeled device queue: write_span reserves [start, start + bytes/bw) under
  // the lock, then sleeps (not spins) until its window closes — so concurrent
  // workers never exceed the device bandwidth in aggregate, and the sleeping
  // worker's CPU is free for the next chunk's serialization.
  std::mutex device_mu_;
  double device_free_at_ = 0.0;
};

}  // namespace adcc::checkpoint
