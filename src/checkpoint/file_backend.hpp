// Local hard-drive checkpointing (the paper's test case 2).
//
// Data is written to per-slot files and synced with fdatasync. Because modern
// CI storage is much faster than the 2017 local HDD the paper measured, an
// optional software bandwidth throttle (default 150 MB/s) preserves the
// figure's shape; pass 0 to disable and measure the real device.
#pragma once

#include <filesystem>

#include "checkpoint/backend.hpp"

namespace adcc::checkpoint {

struct FileBackendConfig {
  std::filesystem::path directory;          ///< Created if absent.
  double throttle_bytes_per_s = 150e6;      ///< 0 → no throttle.
  bool sync = true;                         ///< fdatasync after write.
};

class FileBackend final : public Backend {
 public:
  explicit FileBackend(const FileBackendConfig& cfg);
  ~FileBackend() override;

  void save(int slot, std::uint64_t version, std::span<const ObjectView> objs) override;
  std::uint64_t load(int slot, std::span<const ObjectView> objs) override;
  std::pair<int, std::uint64_t> latest() const override;

 private:
  std::filesystem::path slot_path(int slot) const;
  std::filesystem::path meta_path() const;

  FileBackendConfig cfg_;
};

}  // namespace adcc::checkpoint
