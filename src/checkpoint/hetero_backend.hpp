// Heterogeneous NVM/DRAM checkpointing (paper test case 4): the checkpoint
// copy first lands in the 32 MB DRAM cache at DRAM speed, then the DRAM cache
// is drained through to NVM at throttled speed ("flushing both CPU caches and
// the DRAM cache"). The paper attributes 51.9 % of this scheme's overhead to
// data copying and 48.1 % to cache flushing; the two phases are separately
// visible in DramCache / NvmRegion stats.
#pragma once

#include "checkpoint/backend.hpp"
#include "nvm/dram_cache.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::checkpoint {

class HeteroBackend final : public Backend {
 public:
  HeteroBackend(nvm::NvmRegion& region, nvm::DramCache& dram_cache,
                std::size_t capacity_per_slot);

  void save(int slot, std::uint64_t version, std::span<const ObjectView> objs) override;
  std::uint64_t load(int slot, std::span<const ObjectView> objs) override;
  std::pair<int, std::uint64_t> latest() const override;

 private:
  nvm::NvmRegion& region_;
  nvm::DramCache& dram_;
  std::span<std::byte> slots_[2];
  std::span<std::uint64_t> meta_;
};

}  // namespace adcc::checkpoint
