// Heterogeneous NVM/DRAM checkpointing (paper test case 4): chunk spans first
// land in the 32 MB DRAM cache at DRAM speed, then the DRAM cache is drained
// through to NVM at throttled speed at the save epilogue ("flushing both CPU
// caches and the DRAM cache"). The paper attributes 51.9 % of this scheme's
// overhead to data copying and 48.1 % to cache flushing; the two phases stay
// separately visible in DramCache / NvmRegion stats.
//
// Staging-buffer bookkeeping is a single device, so span writes serialize
// under a mutex; pipeline workers still overlap serialization + CRC.
#pragma once

#include <mutex>

#include "checkpoint/backend.hpp"
#include "nvm/dram_cache.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::checkpoint {

class HeteroBackend final : public Backend {
 public:
  HeteroBackend(nvm::NvmRegion& region, nvm::DramCache& dram_cache,
                std::size_t capacity_per_slot);
  /// Joins an in-flight drain before the DRAM cache / slot arenas can dangle.
  ~HeteroBackend() override { teardown_drain(); }

  std::pair<int, std::uint64_t> latest() const override;

 protected:
  void begin_slot(int slot, std::size_t image_bytes) override;
  void write_span(int slot, std::size_t offset, const void* src, std::size_t bytes) override;
  void finish_slot(int slot) override;
  void commit_marker(int slot, std::uint64_t version) override;
  std::size_t read_span(int slot, std::size_t offset, void* dst,
                        std::size_t bytes) const override;

 private:
  nvm::NvmRegion& region_;
  nvm::DramCache& dram_;
  std::span<std::byte> slots_[2];
  std::span<std::uint64_t> meta_;
  std::mutex media_mu_;
};

}  // namespace adcc::checkpoint
