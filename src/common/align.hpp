// Cache-line-aligned buffers.
//
// Every data object whose durability the library reasons about is allocated at
// cache-line granularity so that a simulated (or real) CLFLUSH of one object
// never touches bytes of a neighbouring object ("false persistence").
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

namespace adcc {

/// Cache line size assumed throughout the library (x86 and most ARM servers).
inline constexpr std::size_t kCacheLine = 64;

/// Rounds `n` up to a multiple of `align` (power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// Address of the cache line containing `p`.
inline std::uintptr_t line_of(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) & ~static_cast<std::uintptr_t>(kCacheLine - 1);
}

/// Number of cache lines overlapped by [p, p+bytes).
std::size_t lines_spanned(const void* p, std::size_t bytes);

/// A cache-line aligned, zero-initialized byte buffer with value semantics.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t bytes);

  AlignedBuffer(const AlignedBuffer& other);
  AlignedBuffer& operator=(const AlignedBuffer& other);
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::move(other.data_)), bytes_(std::exchange(other.bytes_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    data_ = std::move(other.data_);
    bytes_ = std::exchange(other.bytes_, 0);
    return *this;
  }

  std::byte* data() { return data_.get(); }
  const std::byte* data() const { return data_.get(); }
  std::size_t size() const { return bytes_; }
  bool empty() const { return bytes_ == 0; }

  std::span<std::byte> span() { return {data_.get(), bytes_}; }
  std::span<const std::byte> span() const { return {data_.get(), bytes_}; }

 private:
  struct Free {
    void operator()(std::byte* p) const noexcept { ::operator delete[](p, std::align_val_t{kCacheLine}); }
  };
  std::unique_ptr<std::byte[], Free> data_;
  std::size_t bytes_ = 0;
};

/// Typed cache-line aligned array of trivially-copyable T, zero-initialized.
template <typename T>
class AlignedArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  AlignedArray() = default;
  explicit AlignedArray(std::size_t n) : buf_(round_up(n * sizeof(T), kCacheLine)), n_(n) {}

  T* data() { return reinterpret_cast<T*>(buf_.data()); }
  const T* data() const { return reinterpret_cast<const T*>(buf_.data()); }
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  std::span<T> span() { return {data(), n_}; }
  std::span<const T> span() const { return {data(), n_}; }

  T* begin() { return data(); }
  T* end() { return data() + n_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + n_; }

 private:
  AlignedBuffer buf_;
  std::size_t n_ = 0;
};

}  // namespace adcc
