// Lightweight contract checking for the ADCC library.
//
// ADCC_CHECK is always on (it guards algorithm invariants whose violation would
// silently corrupt recovery decisions); ADCC_DCHECK compiles out in NDEBUG
// builds and is meant for hot simulator paths.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace adcc {

/// Thrown when a library-level contract is violated.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] void contract_failure(const char* expr, const char* msg,
                                   std::source_location loc = std::source_location::current());

}  // namespace adcc

#define ADCC_CHECK(expr, msg)                      \
  do {                                             \
    if (!(expr)) [[unlikely]] {                    \
      ::adcc::contract_failure(#expr, (msg));      \
    }                                              \
  } while (0)

#ifdef NDEBUG
#define ADCC_DCHECK(expr, msg) ((void)0)
#else
#define ADCC_DCHECK(expr, msg) ADCC_CHECK(expr, msg)
#endif
