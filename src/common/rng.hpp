// Deterministic random number generation.
//
// Two flavours:
//  * SplitMix64 — a tiny sequential PRNG for data generation.
//  * CounterRng — a *counter-based* generator: sample k of stream (seed, i) is a
//    pure function of (seed, i, k). The Monte-Carlo reproduction depends on this:
//    lookup i must draw identical inputs whether or not a crash/restart happened
//    in between (the paper runs both Fig. 10 curves on "the same randomly
//    sampled inputs").
#pragma once

#include <cstdint>

namespace adcc {

/// One mixing step of SplitMix64; a high-quality 64-bit finalizer.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Sequential PRNG with SplitMix64 state transition.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) without modulo bias for bound << 2^64.
  std::uint64_t next_below(std::uint64_t bound);

 private:
  std::uint64_t state_;
};

/// Counter-based generator: value = f(seed, counter, lane).
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) : seed_(seed) {}

  std::uint64_t u64(std::uint64_t counter, std::uint64_t lane = 0) const {
    return splitmix64(splitmix64(seed_ ^ (counter * 0xA24BAED4963EE407ULL)) ^
                      (lane * 0x9FB21C651E98DF25ULL));
  }

  double uniform(std::uint64_t counter, std::uint64_t lane = 0) const {
    return static_cast<double>(u64(counter, lane) >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t counter, std::uint64_t bound, std::uint64_t lane = 0) const;

 private:
  std::uint64_t seed_;
};

}  // namespace adcc
