#include "common/rng.hpp"

#include "common/check.hpp"

namespace adcc {

std::uint64_t SplitMix64::next_below(std::uint64_t bound) {
  ADCC_CHECK(bound > 0, "next_below requires a positive bound");
  // 128-bit multiply trick (Lemire); bias is negligible for our bounds.
  const unsigned __int128 m = static_cast<unsigned __int128>(next_u64()) * bound;
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t CounterRng::below(std::uint64_t counter, std::uint64_t bound,
                                std::uint64_t lane) const {
  ADCC_CHECK(bound > 0, "below requires a positive bound");
  const unsigned __int128 m = static_cast<unsigned __int128>(u64(counter, lane)) * bound;
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace adcc
