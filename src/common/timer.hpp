// Monotonic wall-clock timing utilities used by the benchmark harnesses and the
// NVM performance throttle.
#pragma once

#include <chrono>
#include <cstdint>

namespace adcc {

/// Seconds since an arbitrary monotonic epoch.
double now_seconds();

/// Simple stopwatch; started on construction.
class Timer {
 public:
  Timer() : start_(now_seconds()) {}
  void reset() { start_ = now_seconds(); }
  double elapsed() const { return now_seconds() - start_; }

 private:
  double start_;
};

/// Accumulates time across multiple start/stop windows (e.g. the "detect" vs
/// "resume" phases of a recovery).
class PhaseTimer {
 public:
  void start() { begin_ = now_seconds(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += now_seconds() - begin_;
      running_ = false;
    }
  }
  double total() const { return total_; }
  void clear() { total_ = 0.0; running_ = false; }

 private:
  double begin_ = 0.0;
  double total_ = 0.0;
  bool running_ = false;
};

/// Busy-waits for `seconds`; used by the NVM throttle to emulate slower media.
void spin_for(double seconds);

}  // namespace adcc
