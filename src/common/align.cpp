#include "common/align.hpp"

#include <cstring>

#include "common/check.hpp"

namespace adcc {

std::size_t lines_spanned(const void* p, std::size_t bytes) {
  if (bytes == 0) return 0;
  const std::uintptr_t first = line_of(p);
  const std::uintptr_t last = line_of(static_cast<const std::byte*>(p) + bytes - 1);
  return (last - first) / kCacheLine + 1;
}

AlignedBuffer::AlignedBuffer(std::size_t bytes) : bytes_(bytes) {
  if (bytes_ == 0) return;
  auto* p = static_cast<std::byte*>(::operator new[](bytes_, std::align_val_t{kCacheLine}));
  std::memset(p, 0, bytes_);
  data_.reset(p);
}

AlignedBuffer::AlignedBuffer(const AlignedBuffer& other) : AlignedBuffer(other.bytes_) {
  if (bytes_ != 0) std::memcpy(data_.get(), other.data_.get(), bytes_);
}

AlignedBuffer& AlignedBuffer::operator=(const AlignedBuffer& other) {
  if (this == &other) return *this;
  AlignedBuffer tmp(other);
  *this = std::move(tmp);
  return *this;
}

}  // namespace adcc
