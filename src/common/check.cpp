#include "common/check.hpp"

#include <sstream>

namespace adcc {

void contract_failure(const char* expr, const char* msg, std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << ": contract `" << expr << "` violated";
  if (msg != nullptr && *msg != '\0') {
    os << " — " << msg;
  }
  throw ContractViolation(os.str());
}

}  // namespace adcc
