#include "common/options.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace adcc {

std::optional<std::size_t> parse_size(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc()) return std::nullopt;
  std::string_view suffix(ptr, static_cast<std::size_t>(text.data() + text.size() - ptr));
  if (!suffix.empty() && (suffix.back() == 'b' || suffix.back() == 'B')) {
    suffix.remove_suffix(1);
    if (suffix.empty()) return value;  // "123B" — plain bytes.
  }
  if (suffix.empty()) return value;
  if (suffix.size() != 1) return std::nullopt;
  int shift = 0;
  switch (suffix.front()) {
    case 'k': case 'K': shift = 10; break;
    case 'm': case 'M': shift = 20; break;
    case 'g': case 'G': shift = 30; break;
    case 't': case 'T': shift = 40; break;
    default: return std::nullopt;
  }
  if (value != 0 && (value >> (64 - shift)) != 0) return std::nullopt;  // Overflow.
  return static_cast<std::size_t>(value << shift);
}

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    ADCC_CHECK(arg.starts_with("--"), "options must look like --key=value or --flag");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_[std::string(arg)] = "1";
    } else {
      kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.contains(key); }

std::string Options::get(const std::string& key, const std::string& fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stoll(it->second);
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stod(it->second);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  return v != "0" && v != "false" && v != "off" && v != "no";
}

std::size_t Options::get_size(const std::string& key, std::size_t fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const auto parsed = parse_size(it->second);
  ADCC_CHECK(parsed.has_value(), "malformed size value (expected e.g. 64M, 1G, 4096)");
  return *parsed;
}

Options& Options::set(std::string key, std::string value) {
  kv_[std::move(key)] = std::move(value);
  return *this;
}

Options& Options::doc(std::string key, std::string help, std::string fallback) {
  docs_.push_back({std::move(key), std::move(help), std::move(fallback)});
  return *this;
}

std::string Options::help_text(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [--key=value ...]\n";
  std::size_t width = 4;  // "help"
  for (const auto& d : docs_) width = std::max(width, d.key.size());
  for (const auto& d : docs_) {
    out << "  --" << d.key << std::string(width - d.key.size() + 2, ' ') << d.help;
    if (!d.fallback.empty()) out << " (default: " << d.fallback << ")";
    out << "\n";
  }
  out << "  --help" << std::string(width - 2, ' ') << "show this message\n";
  return out.str();
}

bool Options::maybe_print_help(const std::string& program) const {
  if (!has("help")) return false;
  std::fputs(help_text(program).c_str(), stdout);
  return true;
}

}  // namespace adcc
