#include "common/options.hpp"

#include <string_view>

#include "common/check.hpp"

namespace adcc {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    ADCC_CHECK(arg.starts_with("--"), "options must look like --key=value or --flag");
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_[std::string(arg)] = "1";
    } else {
      kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.contains(key); }

std::string Options::get(const std::string& key, const std::string& fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stoll(it->second);
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::stod(it->second);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second != "0" && it->second != "false";
}

}  // namespace adcc
