// Small statistics helpers for benchmark reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace adcc {

/// Welford running mean/variance.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator); 0 if n < 2.
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a copy of `xs` (empty → 0).
double median(std::vector<double> xs);

/// Relative difference |a-b| / max(|a|,|b|, eps).
double rel_diff(double a, double b, double eps = 1e-300);

}  // namespace adcc
