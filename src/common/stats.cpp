#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace adcc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid), xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1, xs.end());
  return 0.5 * (hi + xs[mid - 1]);
}

double rel_diff(double a, double b, double eps) {
  const double denom = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / denom;
}

}  // namespace adcc
