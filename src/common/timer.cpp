#include "common/timer.hpp"

namespace adcc {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

void spin_for(double seconds) {
  if (seconds <= 0.0) return;
  const double deadline = now_seconds() + seconds;
  while (now_seconds() < deadline) {
    // Busy wait: the throttle models media occupancy, so yielding would
    // under-charge the emulated cost.
  }
}

}  // namespace adcc
