// Minimal CLI option parsing for the benchmark/example binaries.
//
// Syntax: --key=value or --flag. Unrecognized positional arguments are an
// error; benchmarks opt into a "quick" mode via --quick for CI runs.
//
// Binaries document their keys with doc() once after parsing; --help output is
// then generated from the registered keys (maybe_print_help), so the flag list
// printed to the user and the flag list the code reads cannot drift apart.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adcc {

/// Parses "64M", "1G", "4k", "123" into bytes (binary suffixes K/M/G/T,
/// case-insensitive, optional trailing 'b'/'B'). nullopt on malformed input.
std::optional<std::size_t> parse_size(std::string_view text);

class Options {
 public:
  Options() = default;
  /// Parses argv; throws ContractViolation on malformed arguments.
  Options(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  /// "0", "false", "off" and "no" are falsey; any other value is true.
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Size in bytes (or any count) with K/M/G/T suffix support: --arena=64M.
  /// Throws ContractViolation on malformed values.
  std::size_t get_size(const std::string& key, std::size_t fallback) const;

  /// Sets (or overrides) a key programmatically — how the sweep engine overlays
  /// one deck cell's axis assignment onto the base CLI options. Chainable.
  Options& set(std::string key, std::string value);

  /// Registers a key for the generated --help output. Chainable.
  Options& doc(std::string key, std::string help, std::string fallback = "");

  /// The generated --help text for the doc()'d keys.
  std::string help_text(const std::string& program) const;

  /// When --help was passed: prints help_text to stdout and returns true (the
  /// caller should exit 0).
  bool maybe_print_help(const std::string& program) const;

 private:
  struct Doc {
    std::string key, help, fallback;
  };
  std::map<std::string, std::string> kv_;
  std::vector<Doc> docs_;
};

}  // namespace adcc
