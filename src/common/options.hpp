// Minimal CLI option parsing for the benchmark/example binaries.
//
// Syntax: --key=value or --flag. Unrecognized positional arguments are an
// error; benchmarks opt into a "quick" mode via --quick for CI runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace adcc {

class Options {
 public:
  Options() = default;
  /// Parses argv; throws ContractViolation on malformed arguments.
  Options(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace adcc
