// XSBench-equivalent Monte-Carlo transport as a core::Workload.
//
// Work unit: one durability interval (`interval` lookups; the paper flushes
// every 0.01 % of lookups). The restart state is the paper's trio —
// macro_xs_vector, the five tally counters, and the progress counter — made
// durable per unit by the mode's mechanism: nothing (native), a checkpoint
// (ckpt-*), an undo-log transaction (pmem-tx), or three CLFLUSHed cache lines
// (alg-*, Fig. 11 line 9). Lookups accumulate into the volatile working copy;
// make_durable publishes it to the mode's durable snapshot, so a mid-unit
// crash (FaultSurface sites after every lookup) can never leak a partial
// interval into the restart state — the same boundary-snapshot discipline
// XsCrashConsistent uses under the simulator. Lookup inputs are counter-based
// RNG draws, so crashed and crash-free runs are exactly comparable — verify()
// checks the final tallies against a no-crash native reference bit-for-bit.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>

#include "checkpoint/checkpoint_set.hpp"
#include "common/options.hpp"
#include "core/fault.hpp"
#include "core/registry.hpp"
#include "core/workload.hpp"
#include "mc/mc_ckpt.hpp"
#include "pmemtx/tx.hpp"

namespace adcc::mc {

struct McWorkloadConfig {
  XsConfig data;
  std::uint64_t lookups = 100'000;
  std::uint64_t interval = 10;  ///< Lookups per durability unit.
  std::uint64_t seed = 5;
};

McWorkloadConfig mc_workload_config(const Options& opts);

class McWorkload final : public core::Workload {
 public:
  explicit McWorkload(const McWorkloadConfig& cfg);

  std::string name() const override { return "mc"; }
  std::size_t work_units() const override { return units_; }
  std::size_t units_done() const override { return done_; }
  void prepare(core::ModeEnv& env) override;
  bool run_step() override;
  void make_durable() override;
  void wait_durable() override;
  bool durability_pending() const override;
  void inject_crash() override;
  core::WorkloadRecovery recover() override;
  bool verify() override;
  void tune_env(core::Mode mode, core::ModeEnvConfig& cfg) const override;
  core::FaultSurface* fault() override { return &fault_; }

  /// Final tallies; valid once the run completed.
  Tally tally() const;

 private:
  McWorkloadConfig cfg_;
  XsDataHost data_;
  CounterRng rng_;
  std::size_t units_ = 0;
  std::optional<Tally> reference_;

  core::ModeEnv* env_ = nullptr;
  core::DurabilityKind engine_ = core::DurabilityKind::kNone;
  core::FaultSurface fault_;  ///< Software-counted mid-unit crash surface.
  std::size_t done_ = 0;
  std::size_t crashed_done_ = 0;
  std::uint64_t scratch_index_ = 0;  ///< Live lookup cursor for run_xs_range.

  // Volatile working copy (all engines accumulate here; dies with the power).
  std::array<double, kChannels> macro_{};
  std::array<std::uint64_t, kChannels> counters_{};
  std::uint64_t durable_units_ = 0;  ///< Checkpointed progress scalar.
  std::unique_ptr<checkpoint::CheckpointSet> ckpt_;

  // pmem-tx state.
  std::unique_ptr<pmemtx::PersistentHeap> heap_;
  std::unique_ptr<pmemtx::UndoLog> log_;

  // tx / alg durable boundary snapshots (heap or arena), written only by
  // make_durable so no partial interval can reach them.
  std::span<double> pmacro_;
  std::span<std::uint64_t> pcounters_;
  std::span<std::uint64_t> punits_;
};

}  // namespace adcc::mc
