#include "mc/mc_ckpt.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "kernels/backend.hpp"

namespace adcc::mc {

void run_xs_range(const XsDataHost& data, const CounterRng& rng, std::uint64_t begin,
                  std::uint64_t end, double* macro, std::uint64_t* counters,
                  std::uint64_t* index) {
  // Dispatches to the thread's active kernel backend; every backend must
  // reproduce the serial accumulation + tally order bit-exactly (tally_select
  // reads the running macro accumulator), so tallies are backend-invariant.
  core::active_kernel_backend().xs_range(data, rng, begin, end, macro, counters, index);
}

namespace {

/// Shared kernel: runs `lookups` lookups, invoking `on_boundary(i)` after every
/// `interval`-th lookup with the live restart state available to persist.
template <typename Boundary>
Tally run_kernel(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed,
                 std::uint64_t interval, double* macro, std::uint64_t* counters,
                 std::uint64_t* index, Boundary&& on_boundary) {
  const CounterRng rng(seed);
  const std::uint64_t stride = interval == 0 ? lookups : interval;
  for (std::uint64_t i = 0; i < lookups; i += stride) {
    const std::uint64_t end = std::min(lookups, i + stride);
    run_xs_range(data, rng, i, end, macro, counters, index);
    if (interval != 0 && end % interval == 0) on_boundary(end - 1);
  }
  Tally t;
  for (int c = 0; c < kChannels; ++c) t.counts[static_cast<std::size_t>(c)] = counters[c];
  return t;
}

}  // namespace

XsRunResult run_xs_native(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed) {
  double macro[kChannels] = {};
  std::uint64_t counters[kChannels] = {};
  std::uint64_t index = 0;
  XsRunResult out;
  out.tally = run_kernel(data, lookups, seed, 0, macro, counters, &index, [](std::uint64_t) {});
  return out;
}

XsRunResult run_xs_checkpointed(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed,
                                std::uint64_t interval, checkpoint::Backend& backend) {
  ADCC_CHECK(interval > 0, "interval must be positive");
  double macro[kChannels] = {};
  std::uint64_t counters[kChannels] = {};
  std::uint64_t index = 0;

  checkpoint::CheckpointSet set(backend);
  set.add("macro_xs", macro, sizeof(macro));
  set.add("counters", counters, sizeof(counters));
  set.add("index", &index, sizeof(index));

  XsRunResult out;
  out.tally = run_kernel(data, lookups, seed, interval, macro, counters, &index,
                         [&](std::uint64_t) {
                           set.save();
                           ++out.durability_events;
                         });
  return out;
}

XsRunResult run_xs_tx(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed,
                      std::uint64_t interval, pmemtx::PersistentHeap& heap) {
  ADCC_CHECK(interval > 0, "interval must be positive");
  std::span<double> macro = heap.allocate<double>(kChannels);
  std::span<std::uint64_t> counters = heap.allocate<std::uint64_t>(kChannels);
  std::span<std::uint64_t> index = heap.allocate<std::uint64_t>(1);
  std::memset(macro.data(), 0, macro.size_bytes());
  std::memset(counters.data(), 0, counters.size_bytes());
  index[0] = 0;

  pmemtx::UndoLog log(heap);
  XsRunResult out;
  // The persistent state is modified inside the kernel between boundaries; the
  // transaction brackets each interval: snapshot at the boundary, commit — the
  // PMEM-library equivalent of checkpointing the three objects.
  out.tally = run_kernel(data, lookups, seed, interval, macro.data(), counters.data(),
                         index.data(), [&](std::uint64_t) {
                           pmemtx::Transaction tx(log);
                           tx.add(macro);
                           tx.add(counters);
                           tx.add(index);
                           tx.commit();
                           ++out.durability_events;
                         });
  return out;
}

XsRunResult run_xs_cc_native(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed,
                             std::uint64_t interval, nvm::NvmRegion& region) {
  ADCC_CHECK(interval > 0, "interval must be positive");
  std::span<double> macro = region.allocate<double>(kChannels);
  std::span<std::uint64_t> counters = region.allocate<std::uint64_t>(kChannels);
  std::span<std::uint64_t> index = region.allocate<std::uint64_t>(kCacheLine / sizeof(std::uint64_t));
  std::memset(macro.data(), 0, macro.size_bytes());
  std::memset(counters.data(), 0, counters.size_bytes());
  index[0] = 0;

  XsRunResult out;
  out.tally = run_kernel(data, lookups, seed, interval, macro.data(), counters.data(),
                         index.data(), [&](std::uint64_t) {
                           // Fig. 11 line 9: flush macro_xs_vector, the five
                           // counters and i — three cache lines.
                           region.persist(macro.data(), macro.size_bytes());
                           region.persist(counters.data(), counters.size_bytes());
                           region.persist(index.data(), sizeof(std::uint64_t));
                           ++out.durability_events;
                         });
  return out;
}

std::size_t xs_tx_data_bytes() { return 16 * kCacheLine; }
std::size_t xs_tx_log_bytes() { return 64 * kCacheLine; }

}  // namespace adcc::mc
