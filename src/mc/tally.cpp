#include "mc/tally.hpp"

#include <algorithm>
#include <cmath>

namespace adcc::mc {

std::array<double, kChannels> Tally::percentages(std::uint64_t denominator) const {
  std::array<double, kChannels> out{};
  if (denominator == 0) return out;
  for (int c = 0; c < kChannels; ++c) {
    out[static_cast<std::size_t>(c)] =
        100.0 * static_cast<double>(counts[static_cast<std::size_t>(c)]) /
        static_cast<double>(denominator);
  }
  return out;
}

double max_percentage_gap(const Tally& a, const Tally& b, std::uint64_t denominator) {
  const auto pa = a.percentages(denominator);
  const auto pb = b.percentages(denominator);
  double m = 0.0;
  for (int c = 0; c < kChannels; ++c) {
    m = std::max(m, std::fabs(pa[static_cast<std::size_t>(c)] - pb[static_cast<std::size_t>(c)]));
  }
  return m;
}

}  // namespace adcc::mc
