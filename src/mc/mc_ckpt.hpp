// Native-mode XSBench runners for the Fig. 13 runtime comparison.
//
// All variants execute the identical lookup kernel; they differ only in how
// the restart state (macro_xs_vector + five counters + lookup index) is made
// durable every `interval` lookups:
//   run_xs_native        — not at all (test case 1)
//   run_xs_checkpointed  — via a checkpoint backend (test cases 2–4)
//   run_xs_tx            — one undo-log transaction per interval (test case 5)
//   run_xs_cc_native     — CLFLUSH of the three cache lines (test cases 6–7)
#pragma once

#include "checkpoint/checkpoint_set.hpp"
#include "mc/tally.hpp"
#include "mc/xs_kernel.hpp"
#include "nvm/nvm_region.hpp"
#include "pmemtx/tx.hpp"

namespace adcc::mc {

struct XsRunResult {
  Tally tally;
  std::uint64_t durability_events = 0;  ///< Checkpoints / transactions / flush batches.
};

/// Shared inner kernel: executes lookups [begin, end) of stream `rng`,
/// accumulating into macro[kChannels] / counters[kChannels] and recording the
/// current lookup in *index. All runners (and the mc workload adapter) drive
/// this one loop, so their per-lookup work is identical by construction.
void run_xs_range(const XsDataHost& data, const CounterRng& rng, std::uint64_t begin,
                  std::uint64_t end, double* macro, std::uint64_t* counters,
                  std::uint64_t* index);

XsRunResult run_xs_native(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed);

XsRunResult run_xs_checkpointed(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed,
                                std::uint64_t interval, checkpoint::Backend& backend);

XsRunResult run_xs_tx(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed,
                      std::uint64_t interval, pmemtx::PersistentHeap& heap);

XsRunResult run_xs_cc_native(const XsDataHost& data, std::uint64_t lookups, std::uint64_t seed,
                             std::uint64_t interval, nvm::NvmRegion& region);

/// Heap sizing for run_xs_tx.
std::size_t xs_tx_data_bytes();
std::size_t xs_tx_log_bytes();

}  // namespace adcc::mc
