// Interaction-type tallies (the paper's five counters) and the comparison
// metrics used by Figs. 10 and 12.
#pragma once

#include <array>
#include <cstdint>

#include "mc/xs_data.hpp"

namespace adcc::mc {

struct Tally {
  std::array<std::uint64_t, kChannels> counts{};

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts) t += c;
    return t;
  }

  /// Per-type share of `denominator` lookups, in percent (the figures'
  /// y-axis: counts normalized by the total number of lookups).
  std::array<double, kChannels> percentages(std::uint64_t denominator) const;
};

/// max_c |a_c − b_c| of the percentage vectors (percentage points).
double max_percentage_gap(const Tally& a, const Tally& b, std::uint64_t denominator);

}  // namespace adcc::mc
