// Crash-consistent Monte-Carlo driver (paper §III-D, Figs. 10–12).
//
// Three durability policies, matching the paper's narrative:
//   * kBasicIdea  — flush only the loop-index line every iteration and trust
//                   MC's statistical robustness (Fig. 9 + "basic idea"). The
//                   paper shows this is WRONG: the tally counters and the
//                   macro_xs accumulator are re-touched every iteration, stay
//                   cache-resident, and die with the cache.
//   * kSelective  — additionally CLFLUSH macro_xs_vector + the five counters +
//                   the index every `flush_interval` lookups (paper Fig. 11,
//                   0.01 % of lookups), bounding the loss to one interval.
//   * kEveryIteration — flush the tallies every lookup (the paper's rejected
//                   ~16 %-overhead variant, kept for the ablation bench).
//
// The random inputs of lookup i are a pure function of (seed, i), so crashed
// and crash-free runs draw identical samples — the figures' comparison is
// exact, not statistical.
#pragma once

#include <memory>

#include "mc/tally.hpp"
#include "mc/xs_kernel.hpp"
#include "memsim/tracked.hpp"

namespace adcc::mc {

enum class XsFlushPolicy { kBasicIdea, kSelective, kEveryIteration };

struct XsCcConfig {
  std::size_t total_lookups = 200'000;
  XsFlushPolicy policy = XsFlushPolicy::kSelective;
  std::size_t flush_interval = 20;  ///< Lookups between tally flushes (0.01 % of 200k).
  memsim::CacheConfig cache;
  std::uint64_t rng_seed = 7;
};

struct XsRecovery {
  std::uint64_t crash_lookup = 0;    ///< Lookup interrupted by the crash.
  std::uint64_t restart_lookup = 0;  ///< First lookup (re-)executed after restart.
  double detect_seconds = 0.0;
  double resume_seconds = 0.0;
};

class XsCrashConsistent {
 public:
  XsCrashConsistent(const XsDataHost& data, const XsCcConfig& cfg);

  /// Runs lookups from the current cursor to total_lookups. Arm a crash via
  /// sim().scheduler() first; returns true if it fired.
  bool run();

  /// Executes the next lookup; returns false once total_lookups is reached.
  /// An armed crash trigger propagates memsim::CrashException (the
  /// ScenarioRunner surface).
  bool step();

  /// Restart from the durable NVM state and run to completion.
  XsRecovery recover_and_resume();

  /// Detection + reload only: decodes the durable progress counter, reinstalls
  /// the boundary tally snapshot, and rewinds the cursor to restart_lookup so
  /// step() re-executes the lost lookups. Reload time is pre-charged to
  /// resume_seconds.
  XsRecovery begin_recovery();

  /// Final tallies (live view; after a completed run / recovery).
  Tally tally() const;

  memsim::MemorySimulator& sim() { return sim_; }
  std::uint64_t cursor() const { return cursor_; }

  static constexpr const char* kPointLookupEnd = "xs:lookup_end";

 private:
  void lookup(std::uint64_t i);
  void flush_tallies();

  const XsDataHost& data_;
  XsCcConfig cfg_;
  CounterRng rng_;

  memsim::MemorySimulator sim_;
  memsim::TrackedArray<double> unionized_;           ///< RO.
  memsim::TrackedArray<std::int32_t> index_grid_;    ///< RO.
  memsim::TrackedArray<NuclideGridPoint> grids_;     ///< RO.
  memsim::TrackedArray<double> macro_;               ///< 5-element accumulator.
  memsim::TrackedArray<std::uint64_t> counters_;     ///< 5 tally counters.
  // Boundary snapshots: written + flushed only at flush boundaries, so their
  // durable image is the last boundary state by construction (an in-place
  // flush of the hot tally lines would leave the NVM value ill-defined if a
  // stray eviction landed mid-interval — a hazard the paper glosses over).
  memsim::TrackedArray<double> snap_macro_;
  memsim::TrackedArray<std::uint64_t> snap_counters_;
  std::unique_ptr<memsim::TrackedScalar<std::int64_t>> progress_;  ///< 2i | 2i+1.

  std::uint64_t cursor_ = 0;
  std::vector<std::size_t> probe_scratch_;
};

}  // namespace adcc::mc
