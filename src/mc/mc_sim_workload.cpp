#include "mc/mc_sim_workload.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace adcc::mc {

McSimWorkloadConfig mc_sim_workload_config(const Options& opts) {
  const bool quick = opts.get_bool("quick");
  McSimWorkloadConfig cfg;
  cfg.data.n_nuclides = opts.get_size("nuclides", quick ? 10 : 24);
  cfg.data.gridpoints_per_nuclide = opts.get_size("gridpoints", quick ? 128 : 500);
  cfg.lookups = opts.get_size("lookups", quick ? 2'500 : 50'000);
  cfg.flush_interval = opts.get_size(
      "interval", std::max<std::uint64_t>(1, cfg.lookups / (quick ? 100 : 2'500)));
  const std::string policy = opts.get("policy", "selective");
  if (policy == "basic") {
    cfg.policy = XsFlushPolicy::kBasicIdea;
  } else if (policy == "every") {
    cfg.policy = XsFlushPolicy::kEveryIteration;
  } else {
    ADCC_CHECK(policy == "selective", "unknown --policy (want basic|selective|every)");
    cfg.policy = XsFlushPolicy::kSelective;
  }
  cfg.cache_bytes = opts.get_size("cache_mb", quick ? 1 : 8) << 20;
  cfg.rng_seed = static_cast<std::uint64_t>(opts.get_int("seed", 99));
  return cfg;
}

McSimWorkload::McSimWorkload(const McSimWorkloadConfig& cfg) : cfg_(cfg), data_(cfg.data) {
  ADCC_CHECK(cfg_.lookups > 0, "MC sim workload needs lookups");
}

XsCcConfig McSimWorkload::cc_config() const {
  XsCcConfig cc;
  cc.total_lookups = cfg_.lookups;
  cc.policy = cfg_.policy;
  cc.flush_interval = cfg_.flush_interval;
  cc.cache.size_bytes = cfg_.cache_bytes;
  cc.cache.ways = cfg_.cache_ways;
  cc.rng_seed = cfg_.rng_seed;
  return cc;
}

void McSimWorkload::prepare(core::ModeEnv& env) {
  (void)env;  // Mode-agnostic: the flush policy defines the durability scheme.
  cc_ = std::make_unique<XsCrashConsistent>(data_, cc_config());
  bind_sim(cc_->sim());
}

bool McSimWorkload::run_step() { return cc_->step(); }

core::WorkloadRecovery McSimWorkload::recover() {
  Timer timer;
  const XsRecovery rec = cc_->begin_recovery();
  core::WorkloadRecovery out;
  out.restart_unit = static_cast<std::size_t>(rec.restart_lookup) + 1;
  out.units_lost = static_cast<std::size_t>(crashed_done_ - rec.restart_lookup);
  out.repair_seconds = std::max(0.0, timer.elapsed() - rec.detect_seconds);
  return out;
}

bool McSimWorkload::verify() {
  ADCC_CHECK(units_done() == work_units(), "verify requires a completed run");
  if (!reference_) {
    // The no-crash reference runs the same simulated kernel on the same
    // counter-based samples; crashed runs must reproduce it bit-for-bit
    // (except the basic-idea policy, whose divergence is Fig. 10's point).
    XsCrashConsistent probe(data_, cc_config());
    ADCC_CHECK(!probe.run(), "reference run crashed");
    reference_ = probe.tally();
  }
  return tally().counts == reference_->counts;
}

ADCC_REGISTER_WORKLOAD(
    "mc-sim", "XSBench under the memsim crash emulator (Figs. 10/12; mode-agnostic)",
    [](const Options& opts) -> std::unique_ptr<core::Workload> {
      return std::make_unique<McSimWorkload>(mc_sim_workload_config(opts));
    });

}  // namespace adcc::mc
