// XsCrashConsistent as a core::Workload — the memsim-backed twin of
// mc::McWorkload, registered as "mc-sim".
//
// Work unit: ONE lookup (the finest paper granule), so Fig. 10/12's "crash at
// 10 % of lookups" is simply `--crash=point:xs:lookup_end:K`. The flush policy
// is part of the workload config (--policy=basic|selective|every): Fig. 10
// demonstrates the basic idea's tally divergence (verify() fails by design —
// the cache-resident counters died), Fig. 12 the selective flushing's exact
// recovery. Mode-agnostic (see cg_sim_workload.hpp) and excluded from
// `adccbench --matrix`.
#pragma once

#include <memory>
#include <optional>

#include "common/options.hpp"
#include "core/registry.hpp"
#include "core/sim_workload.hpp"
#include "mc/xs_cc.hpp"

namespace adcc::mc {

struct McSimWorkloadConfig {
  XsConfig data;
  std::uint64_t lookups = 50'000;
  XsFlushPolicy policy = XsFlushPolicy::kSelective;
  std::size_t flush_interval = 20;  ///< Selective: lookups between flushes.
  std::size_t cache_bytes = 8u << 20;
  std::size_t cache_ways = 16;
  std::uint64_t rng_seed = 99;
};

/// Builds the config from CLI options (--lookups, --nuclides, --gridpoints,
/// --interval, --policy, --cache_mb, --quick).
McSimWorkloadConfig mc_sim_workload_config(const Options& opts);

class McSimWorkload final : public core::SimWorkloadBase {
 public:
  explicit McSimWorkload(const McSimWorkloadConfig& cfg);

  std::string name() const override { return "mc-sim"; }
  std::size_t work_units() const override { return static_cast<std::size_t>(cfg_.lookups); }
  std::size_t units_done() const override {
    return cc_ ? static_cast<std::size_t>(cc_->cursor()) : 0;
  }
  void prepare(core::ModeEnv& env) override;
  bool run_step() override;
  void make_durable() override {}  ///< Policy flushes are inside the lookup.
  core::WorkloadRecovery recover() override;
  bool verify() override;

  XsCrashConsistent& cc() { return *cc_; }

  /// Final tallies of the last run.
  Tally tally() const { return cc_->tally(); }

 private:
  memsim::MemorySimulator& sim() override { return cc_->sim(); }
  XsCcConfig cc_config() const;

  McSimWorkloadConfig cfg_;
  XsDataHost data_;
  std::optional<Tally> reference_;

  std::unique_ptr<XsCrashConsistent> cc_;
};

}  // namespace adcc::mc
