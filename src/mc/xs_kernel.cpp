#include "mc/xs_kernel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace adcc::mc {

LookupSample sample_lookup(const CounterRng& rng, std::uint64_t i, const XsDataHost& data) {
  LookupSample s;
  s.energy = rng.uniform(i, /*lane=*/0);
  const double um = rng.uniform(i, /*lane=*/1);
  const auto& cdf = data.material_cdf();
  s.material = static_cast<int>(std::lower_bound(cdf.begin(), cdf.end(), um) - cdf.begin());
  if (s.material >= kMaterials) s.material = kMaterials - 1;
  return s;
}

std::size_t grid_search(const std::vector<double>& unionized, double e,
                        std::vector<std::size_t>* probes) {
  std::size_t lo = 0;
  std::size_t hi = unionized.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (probes != nullptr) probes->push_back(mid);
    if (unionized[mid] <= e) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  if (probes != nullptr) probes->push_back(lo);
  return lo;
}

void macro_lookup(const XsDataHost& data, double e, int material, double out[kChannels]) {
  for (int c = 0; c < kChannels; ++c) out[c] = 0.0;
  const std::size_t u = grid_search(data.unionized_energy(), e);
  const std::size_t nn = data.config().n_nuclides;
  const std::size_t gp = data.config().gridpoints_per_nuclide;
  const auto& idx = data.index_grid();
  const auto& grids = data.nuclide_grids();
  for (const auto& [nuc, density] : data.material(material)) {
    const auto base = static_cast<std::size_t>(idx[u * nn + static_cast<std::size_t>(nuc)]);
    const NuclideGridPoint& p0 = grids[static_cast<std::size_t>(nuc) * gp + base];
    const NuclideGridPoint& p1 = grids[static_cast<std::size_t>(nuc) * gp + base + 1];
    const double span = p1.energy - p0.energy;
    const double f = span > 0 ? std::clamp((e - p0.energy) / span, 0.0, 1.0) : 0.0;
    for (int c = 0; c < kChannels; ++c) {
      out[c] += density * (p0.xs[c] + f * (p1.xs[c] - p0.xs[c]));
    }
  }
}

int tally_select(const double macro_acc[kChannels], double u) {
  double cdf[kChannels];
  double acc = 0.0;
  for (int c = 0; c < kChannels; ++c) {
    ADCC_DCHECK(macro_acc[c] >= 0, "cross sections are non-negative");
    acc += macro_acc[c];
    cdf[c] = acc;
  }
  if (acc <= 0) return 0;
  // Standard inverse-CDF sampling: type c is chosen with probability
  // macro_acc[c] / Σ macro_acc — the rule consistent with the paper's Fig. 10
  // (all five types tallied ≈ equally). The paper's §III-D worked example is
  // internally off-by-one; the figure semantics win.
  for (int c = 0; c < kChannels; ++c) {
    if (u < cdf[c] / acc) return c;
  }
  return kChannels - 1;
}

}  // namespace adcc::mc
