// XSBench lookup kernel (paper Fig. 9) and the CDF tally extension the paper
// adds to make the benchmark's output physically meaningful (§III-D).
#pragma once

#include "common/rng.hpp"
#include "mc/xs_data.hpp"

namespace adcc::mc {

/// The two randomly sampled inputs of one lookup (Fig. 9 line 2). A pure
/// function of (rng, lookup index): re-executed lookups resample identically,
/// the property the paper's Fig. 10/12 comparison requires.
struct LookupSample {
  double energy;
  int material;
};
LookupSample sample_lookup(const CounterRng& rng, std::uint64_t lookup_index,
                           const XsDataHost& data);

/// Binary search on the unionized grid (Fig. 9 line 3): index of the last
/// unionized energy <= e. `probes`, if non-null, receives each probed index
/// (the instrumented driver replays them as tracked reads).
std::size_t grid_search(const std::vector<double>& unionized, double e,
                        std::vector<std::size_t>* probes = nullptr);

/// Macroscopic lookup for one (energy, material) (Fig. 9 lines 3–7): sums
/// density-weighted interpolated microscopic cross sections over the
/// material's nuclides into out[5].
void macro_lookup(const XsDataHost& data, double e, int material, double out[kChannels]);

/// The paper's tally extension: build the CDF of the accumulated
/// macro_xs_vector, normalize by its last element, and select the interaction
/// type for uniform sample u using the paper's "last element <= u" convention.
int tally_select(const double macro_acc[kChannels], double u);

}  // namespace adcc::mc
