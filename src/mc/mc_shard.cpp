#include "mc/mc_shard.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/telemetry.hpp"
#include "mc/xs_kernel.hpp"

namespace adcc::mc {

namespace {

/// Mirrors the access model of the single-rank adapter: roughly this many
/// tracked touches (grid search + interpolation reads + tally writes) per
/// cross-section lookup.
constexpr std::uint64_t kLookupAccessEstimate = 48;

class McShardPart final : public core::ShardPart {
 public:
  McShardPart(const McShardPlan& plan, std::size_t index, std::size_t count,
              core::FaultSurface& fault)
      : plan_(plan), fault_(fault), index_(index), count_(count) {}

  void prepare(checkpoint::CheckpointSet* ckpt) override {
    reset();
    if (ckpt != nullptr) {
      ckpt->add("macro", std::span<double>(macro_));
      ckpt->add("counters", std::span<std::uint64_t>(counters_));
      ckpt->add("units", &scalars_, sizeof(scalars_));
    }
  }

  void compute(std::size_t unit, std::size_t phase, core::ShardExchange& exchange) override {
    (void)phase;
    (void)exchange;  // Zero-halo: lookups are pure functions of (seed, index).
    const std::uint64_t lookups = plan_.config().lookups;
    const std::uint64_t gb = (unit - 1) * plan_.config().interval;
    const std::uint64_t ge = std::min<std::uint64_t>(unit * plan_.config().interval, lookups);
    const std::uint64_t sb = gb + (ge - gb) * index_ / count_;
    const std::uint64_t se = gb + (ge - gb) * (index_ + 1) / count_;
    // Tick-before-mutate: the whole slice's access estimate up front.
    fault_.tick((se - sb) * kLookupAccessEstimate);
    const core::StageTimer timer("kernel/xs");
    run_xs_range(plan_.data(), plan_.rng(), sb, se, macro_.data(), counters_.data(),
                 &scalars_.lookups_done);
  }

  void on_save(std::size_t unit) override { scalars_.unit = unit; }

  void clobber() override { reset(); }

  void restored(std::size_t units_done) override {
    if (units_done == 0) {
      reset();
      return;
    }
    ADCC_CHECK(scalars_.unit == units_done,
               "mc shard checkpoint does not match the committed global epoch");
  }

  const std::array<std::uint64_t, kChannels>& counters() const { return counters_; }

 private:
  void reset() {
    macro_.fill(0.0);
    counters_.fill(0);
    scalars_ = {};
  }

  const McShardPlan& plan_;
  core::FaultSurface& fault_;
  std::size_t index_, count_;
  std::array<double, kChannels> macro_{};           ///< Checkpointed partial macro XS.
  std::array<std::uint64_t, kChannels> counters_{}; ///< Checkpointed partial tally.
  struct Scalars {
    std::uint64_t unit = 0;          ///< Durable progress mirror (written by on_save).
    std::uint64_t lookups_done = 0;  ///< Running lookup counter fed to the kernel.
  };
  Scalars scalars_;
};

}  // namespace

McShardPlan::McShardPlan(const McWorkloadConfig& cfg)
    : cfg_(cfg),
      data_(cfg.data),
      rng_(cfg.seed),
      units_((cfg.lookups + cfg.interval - 1) / cfg.interval) {}

std::unique_ptr<core::ShardPart> McShardPlan::make_part(std::size_t index, std::size_t count,
                                                        core::FaultSurface& fault) {
  return std::make_unique<McShardPart>(*this, index, count, fault);
}

bool McShardPlan::verify(const std::vector<core::ShardPart*>& parts) {
  const std::size_t count = parts.size();
  Tally sum;
  for (core::ShardPart* p : parts) {
    auto* part = static_cast<McShardPart*>(p);
    for (std::size_t c = 0; c < kChannels; ++c) sum.counts[c] += part->counters()[c];
  }
  // tally_select reads the running macro accumulator, so the counter stream
  // depends on the slice schedule: the reference is a no-crash replay of the
  // same N-slice partition, which integer tallies must reproduce exactly.
  if (!reference_ || ref_count_ != count) {
    Tally ref;
    for (std::size_t i = 0; i < count; ++i) {
      std::array<double, kChannels> macro{};
      std::array<std::uint64_t, kChannels> counters{};
      std::uint64_t index = 0;
      for (std::size_t unit = 1; unit <= units_; ++unit) {
        const std::uint64_t gb = (unit - 1) * cfg_.interval;
        const std::uint64_t ge = std::min<std::uint64_t>(unit * cfg_.interval, cfg_.lookups);
        const std::uint64_t sb = gb + (ge - gb) * i / count;
        const std::uint64_t se = gb + (ge - gb) * (i + 1) / count;
        run_xs_range(data_, rng_, sb, se, macro.data(), counters.data(), &index);
      }
      for (std::size_t c = 0; c < kChannels; ++c) ref.counts[c] += counters[c];
    }
    reference_ = ref;
    ref_count_ = count;
  }
  return sum.counts == reference_->counts;
}

void McShardPlan::tune_env(core::Mode mode, core::ModeEnvConfig& env, std::size_t count) const {
  (void)mode;
  (void)count;
  env.arena_bytes = 4u << 20;
  env.slot_bytes = 64u << 10;
}

}  // namespace adcc::mc
