// Monte-Carlo cross-section lookups as a multi-shard plan: particle-bank
// partitions of each durability interval.
//
// Work unit = one flush interval, exactly as in the single-rank adapter; the
// group splits every interval's lookup range into N contiguous slices, one
// per shard, each accumulating into its own macro_xs/tally partition. The
// counter-based RNG makes every lookup's sample a pure function of
// (seed, index), so the partition is embarrassingly parallel (zero halo) and
// victim replay is trivially deterministic. The tally itself is NOT
// partition-independent — tally_select reads the shard's running macro-XS
// accumulator, so each shard's counter stream depends on which lookups it
// owns — hence verify() sums the per-shard counters and compares bit-for-bit
// against a fresh no-crash replay of the *same* N-slice partition: exactly
// the crash-consistency property the shard engine must preserve.
#pragma once

#include <memory>
#include <optional>

#include "core/shard.hpp"
#include "mc/mc_ckpt.hpp"
#include "mc/mc_workload.hpp"

namespace adcc::mc {

class McShardPlan final : public core::ShardPlan {
 public:
  explicit McShardPlan(const McWorkloadConfig& cfg);

  std::string name() const override { return "mc"; }
  std::size_t work_units() const override { return units_; }
  std::size_t phases() const override { return 1; }
  std::unique_ptr<core::ShardPart> make_part(std::size_t index, std::size_t count,
                                             core::FaultSurface& fault) override;
  bool verify(const std::vector<core::ShardPart*>& parts) override;
  void tune_env(core::Mode mode, core::ModeEnvConfig& env, std::size_t count) const override;

  const McWorkloadConfig& config() const { return cfg_; }
  const XsDataHost& data() const { return data_; }
  const CounterRng& rng() const { return rng_; }

 private:
  McWorkloadConfig cfg_;
  XsDataHost data_;
  CounterRng rng_;
  std::size_t units_ = 0;
  std::optional<Tally> reference_;
  std::size_t ref_count_ = 0;  ///< Shard count `reference_` was computed for.
};

}  // namespace adcc::mc
