// Synthetic XSBench-equivalent data model (paper §III-D).
//
// XSBench's memory footprint is dominated by two large read-only structures:
//   * per-nuclide pointwise cross-section grids — for each nuclide, energy-
//     sorted points carrying 5 reaction-channel cross sections;
//   * the *unionized* energy grid — the sorted union of all nuclide energies,
//     where each unionized point stores, per nuclide, the index of the
//     bounding point in that nuclide's grid (this index table is what made the
//     paper's configuration 246 MB).
// Materials are Hoogenboom–Martin-like: 12 materials, the fuel containing the
// largest nuclide set. Sizes are configurable; defaults are scaled so the
// grids greatly exceed the simulated LLC — the property the paper's analysis
// depends on — while fitting CI memory/time.
#pragma once

#include <cstdint>
#include <vector>

namespace adcc::mc {

/// One pointwise cross-section entry: energy + 5 reaction channels
/// (total, elastic, absorption, fission, nu-fission).
struct NuclideGridPoint {
  double energy;
  double xs[5];
};

inline constexpr int kChannels = 5;
inline constexpr int kMaterials = 12;

struct XsConfig {
  std::size_t n_nuclides = 68;
  std::size_t gridpoints_per_nuclide = 2000;
  std::uint64_t seed = 1234;

  std::size_t unionized_points() const { return n_nuclides * gridpoints_per_nuclide; }
  /// Bytes of the two big structures (for reporting).
  std::size_t footprint_bytes() const {
    return unionized_points() * sizeof(double) +
           unionized_points() * n_nuclides * sizeof(std::int32_t) +
           n_nuclides * gridpoints_per_nuclide * sizeof(NuclideGridPoint);
  }
};

/// Host-side (uninstrumented) XS data; the simulated driver registers views of
/// these buffers as read-only regions.
class XsDataHost {
 public:
  explicit XsDataHost(const XsConfig& cfg);

  const XsConfig& config() const { return cfg_; }

  /// Sorted unionized energies, ascending in (0, 1).
  const std::vector<double>& unionized_energy() const { return unionized_energy_; }

  /// Row-major [unionized_points][n_nuclides]: bounding index into each
  /// nuclide's grid for that unionized energy.
  const std::vector<std::int32_t>& index_grid() const { return index_grid_; }

  /// Concatenated per-nuclide grids: nuclide n's points occupy
  /// [n*gridpoints, (n+1)*gridpoints), energy-sorted.
  const std::vector<NuclideGridPoint>& nuclide_grids() const { return nuclide_grids_; }

  /// Material composition: list of (nuclide id, number density).
  const std::vector<std::pair<std::int32_t, double>>& material(int m) const {
    return materials_[static_cast<std::size_t>(m)];
  }

  /// Material sampling weights (fuel is looked up most often, as in XSBench).
  const std::vector<double>& material_cdf() const { return material_cdf_; }

 private:
  XsConfig cfg_;
  std::vector<double> unionized_energy_;
  std::vector<std::int32_t> index_grid_;
  std::vector<NuclideGridPoint> nuclide_grids_;
  std::vector<std::vector<std::pair<std::int32_t, double>>> materials_;
  std::vector<double> material_cdf_;
};

}  // namespace adcc::mc
