#include "mc/xs_data.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace adcc::mc {

XsDataHost::XsDataHost(const XsConfig& cfg) : cfg_(cfg) {
  ADCC_CHECK(cfg_.n_nuclides >= 4, "need at least 4 nuclides");
  ADCC_CHECK(cfg_.gridpoints_per_nuclide >= 8, "grids too small");
  SplitMix64 rng(cfg_.seed);

  const std::size_t nn = cfg_.n_nuclides;
  const std::size_t gp = cfg_.gridpoints_per_nuclide;

  // Per-nuclide grids: sorted uniform energies; channel magnitudes differ per
  // nuclide and channel (real cross sections span decades), values jitter
  // around the channel scale.
  nuclide_grids_.resize(nn * gp);
  std::vector<double> energies(gp);
  for (std::size_t n = 0; n < nn; ++n) {
    for (double& e : energies) e = rng.next_double();
    std::sort(energies.begin(), energies.end());
    double scale[kChannels];
    for (double& s : scale) s = std::pow(10.0, 2.0 * rng.next_double() - 1.0);  // 0.1 … 10
    for (std::size_t g = 0; g < gp; ++g) {
      NuclideGridPoint& pt = nuclide_grids_[n * gp + g];
      pt.energy = energies[g];
      for (int c = 0; c < kChannels; ++c) {
        pt.xs[c] = scale[c] * (0.5 + rng.next_double());
      }
    }
  }

  // Unionized grid: sorted union of all energies + per-nuclide bounding index.
  unionized_energy_.resize(nn * gp);
  for (std::size_t n = 0; n < nn; ++n) {
    for (std::size_t g = 0; g < gp; ++g) unionized_energy_[n * gp + g] = nuclide_grids_[n * gp + g].energy;
  }
  std::sort(unionized_energy_.begin(), unionized_energy_.end());

  index_grid_.assign(unionized_energy_.size() * nn, 0);
  std::vector<std::size_t> cursor(nn, 0);
  for (std::size_t u = 0; u < unionized_energy_.size(); ++u) {
    const double e = unionized_energy_[u];
    for (std::size_t n = 0; n < nn; ++n) {
      // Advance to the last nuclide point with energy <= e, clamped so that
      // index+1 is always a valid interpolation partner.
      while (cursor[n] + 2 < gp && nuclide_grids_[n * gp + cursor[n] + 1].energy <= e) ++cursor[n];
      index_grid_[u * nn + n] = static_cast<std::int32_t>(cursor[n]);
    }
  }

  // Hoogenboom–Martin-like materials: material 0 (fuel) holds half the
  // nuclides; the others hold small subsets. Densities in (0, 1).
  materials_.resize(kMaterials);
  const std::size_t fuel_count = std::max<std::size_t>(2, nn / 2);
  for (std::size_t n = 0; n < fuel_count; ++n) {
    materials_[0].emplace_back(static_cast<std::int32_t>(n), 0.05 + rng.next_double());
  }
  for (int m = 1; m < kMaterials; ++m) {
    const std::size_t count = 2 + rng.next_below(8);
    for (std::size_t t = 0; t < count; ++t) {
      materials_[static_cast<std::size_t>(m)].emplace_back(
          static_cast<std::int32_t>(rng.next_below(nn)), 0.05 + rng.next_double());
    }
  }

  // XSBench-like lookup distribution: fuel ~40 %, the rest split evenly.
  material_cdf_.resize(kMaterials);
  double acc = 0.0;
  for (int m = 0; m < kMaterials; ++m) {
    acc += (m == 0) ? 0.40 : 0.60 / (kMaterials - 1);
    material_cdf_[static_cast<std::size_t>(m)] = acc;
  }
  material_cdf_.back() = 1.0;
}

}  // namespace adcc::mc
