#include "mc/xs_cc.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "common/timer.hpp"

namespace adcc::mc {

namespace {
// Progress encoding: 2i = lookup i in flight (basic idea flushes at the top of
// the iteration); 2i+1 = tallies through lookup i are durable (selective
// policies flush after the tally update).
std::int64_t started(std::uint64_t i) { return static_cast<std::int64_t>(2 * i); }
std::int64_t completed(std::uint64_t i) { return static_cast<std::int64_t>(2 * i + 1); }
}  // namespace

XsCrashConsistent::XsCrashConsistent(const XsDataHost& data, const XsCcConfig& cfg)
    : data_(data),
      cfg_(cfg),
      rng_(cfg.rng_seed),
      sim_(cfg.cache),
      unionized_(sim_, "xs.unionized", data.unionized_energy().size(), /*read_only=*/true),
      index_grid_(sim_, "xs.index_grid", data.index_grid().size(), /*read_only=*/true),
      grids_(sim_, "xs.nuclide_grids", data.nuclide_grids().size(), /*read_only=*/true),
      macro_(sim_, "xs.macro_xs", kChannels),
      counters_(sim_, "xs.counters", kChannels),
      snap_macro_(sim_, "xs.macro_xs.snap", kChannels),
      snap_counters_(sim_, "xs.counters.snap", kChannels) {
  std::memcpy(unionized_.data(), data.unionized_energy().data(),
              data.unionized_energy().size() * sizeof(double));
  std::memcpy(index_grid_.data(), data.index_grid().data(),
              data.index_grid().size() * sizeof(std::int32_t));
  std::memcpy(grids_.data(), data.nuclide_grids().data(),
              data.nuclide_grids().size() * sizeof(NuclideGridPoint));
  progress_ = std::make_unique<memsim::TrackedScalar<std::int64_t>>(sim_, "xs.progress", 0);
  if (cfg_.policy == XsFlushPolicy::kSelective) {
    ADCC_CHECK(cfg_.flush_interval >= 1, "flush interval must be positive");
  }
}

void XsCrashConsistent::flush_tallies() {
  // The paper's "flush macro_xs_vector, the five counters and i": the flushed
  // copy goes to dedicated snapshot lines so the durable restart state is the
  // boundary state regardless of when the hot lines were last evicted.
  for (int c = 0; c < kChannels; ++c) {
    snap_macro_.data()[c] = macro_.data()[c];
    snap_counters_.data()[c] = counters_.data()[c];
  }
  snap_macro_.touch_write(0, kChannels);
  snap_counters_.touch_write(0, kChannels);
  snap_macro_.flush(0, kChannels);
  snap_counters_.flush(0, kChannels);
  sim_.sfence();
}

void XsCrashConsistent::lookup(std::uint64_t i) {
  // Fig. 9/11 line 1-2: under the basic idea the loop index is made durable
  // every iteration. The selective policies touch the progress line only at
  // flush boundaries so its durable value is always a boundary value.
  if (cfg_.policy == XsFlushPolicy::kBasicIdea) {
    progress_->set_and_flush(started(i));
  }

  const LookupSample s = sample_lookup(rng_, i, data_);

  // Binary search on the unionized grid, replaying the probe sequence as
  // tracked reads (the accesses that create — or fail to create — the cache
  // pressure the paper's analysis discusses).
  probe_scratch_.clear();
  const std::size_t u = grid_search(data_.unionized_energy(), s.energy, &probe_scratch_);
  for (const std::size_t p : probe_scratch_) unionized_.touch_read(p, 1);

  const std::size_t nn = data_.config().n_nuclides;
  const std::size_t gp = data_.config().gridpoints_per_nuclide;
  double local[kChannels] = {0, 0, 0, 0, 0};
  for (const auto& [nuc, density] : data_.material(s.material)) {
    const std::size_t cell = u * nn + static_cast<std::size_t>(nuc);
    index_grid_.touch_read(cell, 1);
    const auto base = static_cast<std::size_t>(index_grid_.data()[cell]);
    const std::size_t pos = static_cast<std::size_t>(nuc) * gp + base;
    grids_.touch_read(pos, 2);
    const NuclideGridPoint& p0 = grids_.data()[pos];
    const NuclideGridPoint& p1 = grids_.data()[pos + 1];
    const double span = p1.energy - p0.energy;
    const double f = span > 0 ? std::clamp((s.energy - p0.energy) / span, 0.0, 1.0) : 0.0;
    for (int c = 0; c < kChannels; ++c) {
      local[c] += density * (p0.xs[c] + f * (p1.xs[c] - p0.xs[c]));
    }
  }

  // Fig. 9 line 7: accumulate into macro_xs_vector.
  macro_.touch_read(0, kChannels);
  for (int c = 0; c < kChannels; ++c) macro_.data()[c] += local[c];
  macro_.touch_write(0, kChannels);

  // Tally extension: CDF over the accumulated vector, pick a type.
  const double uu = rng_.uniform(i, /*lane=*/2);
  const int type = tally_select(macro_.data(), uu);
  counters_.touch_read(static_cast<std::size_t>(type), 1);
  counters_.data()[static_cast<std::size_t>(type)] += 1;
  counters_.touch_write(static_cast<std::size_t>(type), 1);

  // Fig. 11 lines 8-9: the selective flush.
  const bool boundary = cfg_.policy == XsFlushPolicy::kEveryIteration ||
                        (cfg_.policy == XsFlushPolicy::kSelective &&
                         (i + 1) % cfg_.flush_interval == 0);
  if (boundary) {
    flush_tallies();
    progress_->set_and_flush(completed(i));
  }

  cursor_ = i + 1;
  sim_.crash_point(kPointLookupEnd);
}

bool XsCrashConsistent::step() {
  if (cursor_ >= cfg_.total_lookups) return false;
  lookup(cursor_);
  return true;
}

bool XsCrashConsistent::run() {
  try {
    while (step()) {
    }
  } catch (const memsim::CrashException&) {
    return true;
  }
  return false;
}

XsRecovery XsCrashConsistent::begin_recovery() {
  ADCC_CHECK(sim_.crashed(), "recovery requires a prior crash");
  XsRecovery rec;
  rec.crash_lookup = cursor_;  // The in-flight lookup.

  Timer detect;
  const std::int64_t v = progress_->durable();
  if (v % 2 == 1) {
    rec.restart_lookup = static_cast<std::uint64_t>(v / 2) + 1;  // Tallies durable through v/2.
  } else {
    rec.restart_lookup = static_cast<std::uint64_t>(v / 2);  // Re-execute the in-flight lookup.
  }
  rec.detect_seconds = detect.elapsed();

  Timer reload;
  sim_.reset_after_crash();
  sim_.restore_all();  // Live tallies/accumulator reload from NVM.
  if (cfg_.policy != XsFlushPolicy::kBasicIdea) {
    // Selective policies: the authoritative restart state is the boundary
    // snapshot (durably zero before the first boundary), not the hot lines'
    // (ill-defined) eviction residue.
    std::vector<double> m(kChannels);
    std::vector<std::uint64_t> c(kChannels);
    snap_macro_.durable_snapshot(m);
    snap_counters_.durable_snapshot(c);
    for (int ch = 0; ch < kChannels; ++ch) {
      macro_.data()[static_cast<std::size_t>(ch)] = m[static_cast<std::size_t>(ch)];
      counters_.data()[static_cast<std::size_t>(ch)] = c[static_cast<std::size_t>(ch)];
    }
    macro_.touch_write(0, kChannels);
    counters_.touch_write(0, kChannels);
  }
  cursor_ = rec.restart_lookup;
  rec.resume_seconds = reload.elapsed();
  return rec;
}

XsRecovery XsCrashConsistent::recover_and_resume() {
  XsRecovery rec = begin_recovery();
  Timer resume;
  run();
  rec.resume_seconds += resume.elapsed();
  return rec;
}

Tally XsCrashConsistent::tally() const {
  Tally t;
  for (int c = 0; c < kChannels; ++c) {
    t.counts[static_cast<std::size_t>(c)] = counters_.data()[static_cast<std::size_t>(c)];
  }
  return t;
}

}  // namespace adcc::mc
