#include "mc/mc_workload.hpp"

#include <algorithm>
#include <cstring>

#include "common/align.hpp"
#include "common/check.hpp"
#include "core/shard.hpp"
#include "core/telemetry.hpp"
#include "mc/mc_shard.hpp"
#include "mc/xs_cc.hpp"

namespace adcc::mc {

namespace {
// Element accesses one lookup announces to the software fault surface: the
// grid probes, per-nuclide interpolation reads and the tally update. An
// approximation — determinism, not exactness, is what the triggers need.
constexpr std::uint64_t kLookupAccessEstimate = 48;
}  // namespace

McWorkloadConfig mc_workload_config(const Options& opts) {
  const bool quick = opts.get_bool("quick");
  McWorkloadConfig cfg;
  cfg.data.n_nuclides = opts.get_size("nuclides", quick ? 16 : 68);
  cfg.data.gridpoints_per_nuclide = opts.get_size("gridpoints", quick ? 300 : 2000);
  cfg.lookups = opts.get_size("lookups", quick ? 20'000 : 100'000);
  // Default durability density: the paper's 0.01 % of lookups (quick runs use
  // 0.5 % so the disk scheme stays CI-sized).
  cfg.interval = opts.get_size(
      "interval", std::max<std::uint64_t>(1, cfg.lookups / (quick ? 200 : 10'000)));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 5));
  return cfg;
}

McWorkload::McWorkload(const McWorkloadConfig& cfg)
    : cfg_(cfg), data_(cfg.data), rng_(cfg.seed) {
  ADCC_CHECK(cfg_.lookups > 0 && cfg_.interval > 0, "bad MC workload shape");
  units_ = static_cast<std::size_t>((cfg_.lookups + cfg_.interval - 1) / cfg_.interval);
}

void McWorkload::tune_env(core::Mode mode, core::ModeEnvConfig& env) const {
  (void)mode;
  env.arena_bytes = 4u << 20;
  env.slot_bytes = 64u << 10;
}

void McWorkload::prepare(core::ModeEnv& env) {
  env_ = &env;
  done_ = 0;
  crashed_done_ = 0;
  macro_.fill(0.0);
  counters_.fill(0);
  durable_units_ = 0;
  scratch_index_ = 0;
  fault_.reset_counter();
  // Drop any previous mode's checkpoint set: its backend reference dies with
  // the old env, and a stale async_pending flag must not leak into this run.
  ckpt_.reset();
  engine_ = core::durability_kind(env.mode);

  switch (engine_) {
    case core::DurabilityKind::kNone:
      break;
    case core::DurabilityKind::kCheckpoint:
      ADCC_CHECK(env.backend != nullptr, "checkpoint modes need a backend");
      ckpt_ = std::make_unique<checkpoint::CheckpointSet>(
          *env.backend, [this](const char* p) { fault_.point(p); });
      ckpt_->add("macro_xs", macro_.data(), sizeof(macro_));
      ckpt_->add("counters", counters_.data(), sizeof(counters_));
      ckpt_->add("units", &durable_units_, sizeof(durable_units_));
      break;
    case core::DurabilityKind::kTransaction:
      ADCC_CHECK(env.perf != nullptr, "pmem-tx mode needs a perf model");
      heap_ = std::make_unique<pmemtx::PersistentHeap>(xs_tx_data_bytes(), xs_tx_log_bytes(),
                                                       *env.perf);
      pmacro_ = heap_->allocate<double>(kChannels);
      pcounters_ = heap_->allocate<std::uint64_t>(kChannels);
      punits_ = heap_->allocate<std::uint64_t>(1);
      std::memset(pmacro_.data(), 0, pmacro_.size_bytes());
      std::memset(pcounters_.data(), 0, pcounters_.size_bytes());
      punits_[0] = 0;
      heap_->region().persist(pmacro_.data(), pmacro_.size_bytes());
      heap_->region().persist(pcounters_.data(), pcounters_.size_bytes());
      heap_->region().persist(punits_.data(), punits_.size_bytes());
      log_ = std::make_unique<pmemtx::UndoLog>(*heap_);
      break;
    case core::DurabilityKind::kAlgorithm:
      ADCC_CHECK(env.region != nullptr, "algorithm modes need an NVM arena");
      pmacro_ = env.region->allocate<double>(kChannels);
      pcounters_ = env.region->allocate<std::uint64_t>(kChannels);
      punits_ = env.region->allocate<std::uint64_t>(kCacheLine / sizeof(std::uint64_t));
      std::memset(pmacro_.data(), 0, pmacro_.size_bytes());
      std::memset(pcounters_.data(), 0, pcounters_.size_bytes());
      punits_[0] = 0;
      env.region->persist(pmacro_.data(), pmacro_.size_bytes());
      env.region->persist(pcounters_.data(), pcounters_.size_bytes());
      env.region->persist(punits_.data(), sizeof(std::uint64_t));
      break;
  }
}

bool McWorkload::run_step() {
  if (done_ >= units_) return false;
  const std::uint64_t begin = static_cast<std::uint64_t>(done_) * cfg_.interval;
  const std::uint64_t end = std::min(cfg_.lookups, begin + cfg_.interval);
  // All engines accumulate into the volatile working copy, one lookup at a
  // time with a fault-surface site after each (Fig. 9's per-lookup "end of
  // statement" granularity); make_durable publishes the interval boundary.
  // Timed around the interval, not per lookup: each lookup is ~100ns.
  const core::StageTimer timer("kernel/xs");
  for (std::uint64_t i = begin; i < end; ++i) {
    run_xs_range(data_, rng_, i, i + 1, macro_.data(), counters_.data(), &scratch_index_);
    fault_.tick(kLookupAccessEstimate);
    fault_.point(XsCrashConsistent::kPointLookupEnd);
  }
  // Silent-corruption targets: the tally counters (guarded by the sum
  // invariant make_durable checks before publishing) and the macro-XS
  // accumulator (no invariant covers it — a flip there is an honest miss).
  fault_.corrupt("mc:counters", counters_.data(), sizeof(counters_));
  fault_.corrupt("mc:macro", macro_.data(), sizeof(macro_));
  ++done_;
  return true;
}

void McWorkload::make_durable() {
  // Tally-invariant silent-fault detection, BEFORE anything is published:
  // every completed lookup increments exactly one channel counter, so the
  // counter sum must equal the lookups completed so far. The order matters —
  // publishing first would persist the corruption into the durable snapshot,
  // turning every later rollback into a detect-again loop. Gated on
  // flip_active() (one relaxed load) so fail-stop runs pay nothing.
  if (fault_.flip_active()) {
    std::uint64_t sum = 0;
    for (const std::uint64_t c : counters_) sum += c;
    const std::uint64_t expect = std::min<std::uint64_t>(
        cfg_.lookups, static_cast<std::uint64_t>(done_) * cfg_.interval);
    if (sum != expect) {
      throw core::SilentFaultDetected("mc:tally", done_, fault_.access_count());
    }
  }
  switch (engine_) {
    case core::DurabilityKind::kNone:
      break;  // Test case 1: no durability mechanism at all.
    case core::DurabilityKind::kCheckpoint:
      durable_units_ = done_;
      ckpt_->save();
      break;
    case core::DurabilityKind::kTransaction: {
      // One undo-log transaction per interval — the PMEM-library equivalent
      // of checkpointing the three restart objects (as in run_xs_tx). The
      // snapshots are taken before the copy, so a crash mid-publish rolls
      // back to the previous boundary.
      pmemtx::Transaction tx(*log_);
      tx.add(pmacro_);
      tx.add(pcounters_);
      tx.add(punits_);
      std::copy(macro_.begin(), macro_.end(), pmacro_.begin());
      std::copy(counters_.begin(), counters_.end(), pcounters_.begin());
      punits_[0] = done_;
      tx.commit();
      break;
    }
    case core::DurabilityKind::kAlgorithm:
      // Fig. 11 line 9: publish macro_xs_vector, the five counters and the
      // progress counter to their boundary snapshot lines and flush — three
      // cache lines per interval.
      std::copy(macro_.begin(), macro_.end(), pmacro_.begin());
      std::copy(counters_.begin(), counters_.end(), pcounters_.begin());
      punits_[0] = done_;
      env_->region->persist(pmacro_.data(), pmacro_.size_bytes());
      env_->region->persist(pcounters_.data(), pcounters_.size_bytes());
      env_->region->persist(punits_.data(), sizeof(std::uint64_t));
      break;
  }
}

void McWorkload::wait_durable() {
  // Joins an in-flight async checkpoint drain (--ckpt_async); other engines
  // are durable the moment make_durable returns.
  if (ckpt_) ckpt_->wait_durable();
}

bool McWorkload::durability_pending() const { return ckpt_ && ckpt_->async_pending(); }

void McWorkload::inject_crash() {
  crashed_done_ = done_;
  // The DRAM working copy dies with the power in every mode; an in-flight
  // checkpoint drain is cut off first, and the durable snapshot (checkpoint /
  // heap / arena) is all recovery may read.
  if (ckpt_) ckpt_->abort_async();
  if (env_ != nullptr && env_->dram) env_->dram->discard();
  macro_.fill(0.0);
  counters_.fill(0);
  durable_units_ = 0;
}

core::WorkloadRecovery McWorkload::recover() {
  core::WorkloadRecovery rec;
  switch (engine_) {
    case core::DurabilityKind::kNone:
      done_ = 0;  // Nothing durable: replay from the first lookup.
      break;
    case core::DurabilityKind::kCheckpoint: {
      const std::uint64_t ver = ckpt_->restore();
      const auto& rs = ckpt_->last_restore();
      rec.candidates_checked += rs.chunks_probed;
      rec.torn_chunks = rs.torn_chunks;
      rec.salvaged_chunks = rs.salvaged_chunks;
      if (ver != 0) {
        done_ = static_cast<std::size_t>(durable_units_);
      } else {
        done_ = 0;
      }
      break;
    }
    case core::DurabilityKind::kTransaction:
      log_->recover();  // Rolls back an uncommitted transaction, if any.
      std::copy(pmacro_.begin(), pmacro_.end(), macro_.begin());
      std::copy(pcounters_.begin(), pcounters_.end(), counters_.begin());
      done_ = static_cast<std::size_t>(punits_[0]);
      break;
    case core::DurabilityKind::kAlgorithm:
      std::copy(pmacro_.begin(), pmacro_.end(), macro_.begin());
      std::copy(pcounters_.begin(), pcounters_.end(), counters_.begin());
      done_ = static_cast<std::size_t>(punits_[0]);
      break;
  }
  rec.restart_unit = done_ + 1;
  rec.units_lost = crashed_done_ - done_;
  return rec;
}

Tally McWorkload::tally() const {
  Tally t;
  for (int c = 0; c < kChannels; ++c) {
    t.counts[static_cast<std::size_t>(c)] = counters_[static_cast<std::size_t>(c)];
  }
  return t;
}

bool McWorkload::verify() {
  ADCC_CHECK(done_ == units_, "verify requires a completed run");
  if (!reference_) reference_ = run_xs_native(data_, cfg_.lookups, cfg_.seed).tally;
  // Lookup inputs are pure functions of (seed, index), so every mode — crashed
  // or not — must reproduce the native tallies exactly.
  return tally().counts == reference_->counts;
}

ADCC_REGISTER_WORKLOAD(
    "mc", "XSBench-equivalent Monte-Carlo transport (paper SIII-D, Figs. 9-13)",
    [](const Options& opts) -> std::unique_ptr<core::Workload> {
      const McWorkloadConfig cfg = mc_workload_config(opts);
      const std::size_t shards = opts.get_size("shards", 1);
      if (shards > 1) {
        return std::make_unique<core::ShardGroup>(
            std::make_unique<McShardPlan>(cfg),
            core::ShardGroupConfig{shards, opts.get_bool("shard_stagger", false)},
            [cfg]() -> std::unique_ptr<core::Workload> {
              return std::make_unique<McWorkload>(cfg);
            });
      }
      return std::make_unique<McWorkload>(cfg);
    });

}  // namespace adcc::mc
