// Row-major dense matrices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/align.hpp"

namespace adcc::linalg {

/// Row-major dense matrix with cache-line-aligned rows storage.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size_bytes() const { return rows_ * cols_ * sizeof(double); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

  std::span<double> flat() { return data_.span(); }
  std::span<const double> flat() const { return data_.span(); }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void set_zero();

  /// Fills with deterministic pseudo-random values in [lo, hi).
  void fill_random(std::uint64_t seed, double lo = 0.0, double hi = 1.0);

  /// max_{i,j} |a_ij − b_ij|; matrices must have equal shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedArray<double> data_;
};

}  // namespace adcc::linalg
