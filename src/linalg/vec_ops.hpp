// Dense vector kernels used by CG and the ABFT checksum machinery. sum/dot/
// axpy/xpay/scale dispatch to the thread's active kernel backend (timed as
// kernel/blas1); sum and dot may re-associate across backends/threads, the
// element-wise updates are bitwise backend-independent.
#pragma once

#include <cstddef>
#include <span>

namespace adcc::linalg {

/// y ← x
void copy(std::span<const double> x, std::span<double> y);

/// Sum of elements.
double sum(std::span<const double> x);

/// xᵀ·y
double dot(std::span<const double> x, std::span<const double> y);

/// ‖x‖₂
double norm2(std::span<const double> x);

/// y ← a·x + y
void axpy(double a, std::span<const double> x, std::span<double> y);

/// z ← x + a·y (out-of-place)
void xpay(std::span<const double> x, double a, std::span<const double> y, std::span<double> z);

/// x ← a·x
void scale(double a, std::span<double> x);

/// x ← 0
void zero(std::span<double> x);

/// max_i |x_i − y_i|
double max_abs_diff(std::span<const double> x, std::span<const double> y);

}  // namespace adcc::linalg
