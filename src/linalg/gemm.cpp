#include "linalg/gemm.hpp"

#include "common/check.hpp"
#include "core/telemetry.hpp"

namespace adcc::linalg {

void gemm_panel(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b, std::size_t br0,
                double* c, bool accumulate) {
  ADCC_CHECK(ac0 + k <= a.cols(), "panel exceeds A columns");
  ADCC_CHECK(br0 + k <= b.rows(), "panel exceeds B rows");
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  const core::StageTimer timer("kernel/gemm");
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c + i * n;
    if (!accumulate) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a(i, ac0 + kk);
      const double* brow = b.row(br0 + kk).data();
      for (std::size_t j = 0; j < n; ++j) ci[j] += aik * brow[j];
    }
  }
}

void gemm_panel_tile(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b,
                     std::size_t br0, std::size_t r0, std::size_t r1, std::size_t c0,
                     std::size_t c1, double* tile, bool accumulate) {
  ADCC_CHECK(ac0 + k <= a.cols(), "panel exceeds A columns");
  ADCC_CHECK(br0 + k <= b.rows(), "panel exceeds B rows");
  ADCC_CHECK(r0 <= r1 && r1 <= a.rows(), "tile rows exceed A");
  ADCC_CHECK(c0 <= c1 && c1 <= b.cols(), "tile columns exceed B");
  const std::size_t tn = c1 - c0;
  const core::StageTimer timer("kernel/gemm");
#pragma omp parallel for schedule(static)
  for (std::size_t i = r0; i < r1; ++i) {
    double* ti = tile + (i - r0) * tn;
    if (!accumulate) {
      for (std::size_t j = 0; j < tn; ++j) ti[j] = 0.0;
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = a(i, ac0 + kk);
      const double* brow = b.row(br0 + kk).data() + c0;
      for (std::size_t j = 0; j < tn; ++j) ti[j] += aik * brow[j];
    }
  }
}

void gemm_panel(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b, std::size_t br0,
                Matrix& c, bool accumulate) {
  ADCC_CHECK(c.rows() == a.rows() && c.cols() == b.cols(), "C shape mismatch");
  gemm_panel(a, ac0, k, b, br0, c.data(), accumulate);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  ADCC_CHECK(a.cols() == b.rows(), "inner dimension mismatch");
  gemm_panel(a, 0, a.cols(), b, 0, c, /*accumulate=*/false);
}

void gemm_reference(const Matrix& a, const Matrix& b, Matrix& c) {
  ADCC_CHECK(a.cols() == b.rows(), "inner dimension mismatch");
  ADCC_CHECK(c.rows() == a.rows() && c.cols() == b.cols(), "C shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  }
}

}  // namespace adcc::linalg
