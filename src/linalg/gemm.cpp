#include "linalg/gemm.hpp"

#include "common/check.hpp"
#include "kernels/backend.hpp"

namespace adcc::linalg {

void gemm_panel(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b, std::size_t br0,
                double* c, bool accumulate) {
  ADCC_CHECK(ac0 + k <= a.cols(), "panel exceeds A columns");
  ADCC_CHECK(br0 + k <= b.rows(), "panel exceeds B rows");
  core::active_kernel_backend().gemm_tile(a.data() + ac0, a.cols(), b.data() + br0 * b.cols(),
                                          b.cols(), a.rows(), b.cols(), k, c, b.cols(),
                                          accumulate);
}

void gemm_panel_tile(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b,
                     std::size_t br0, std::size_t r0, std::size_t r1, std::size_t c0,
                     std::size_t c1, double* tile, bool accumulate) {
  ADCC_CHECK(ac0 + k <= a.cols(), "panel exceeds A columns");
  ADCC_CHECK(br0 + k <= b.rows(), "panel exceeds B rows");
  ADCC_CHECK(r0 <= r1 && r1 <= a.rows(), "tile rows exceed A");
  ADCC_CHECK(c0 <= c1 && c1 <= b.cols(), "tile columns exceed B");
  core::active_kernel_backend().gemm_tile(a.data() + r0 * a.cols() + ac0, a.cols(),
                                          b.data() + br0 * b.cols() + c0, b.cols(), r1 - r0,
                                          c1 - c0, k, tile, c1 - c0, accumulate);
}

void gemm_panel(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b, std::size_t br0,
                Matrix& c, bool accumulate) {
  ADCC_CHECK(c.rows() == a.rows() && c.cols() == b.cols(), "C shape mismatch");
  gemm_panel(a, ac0, k, b, br0, c.data(), accumulate);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  ADCC_CHECK(a.cols() == b.rows(), "inner dimension mismatch");
  gemm_panel(a, 0, a.cols(), b, 0, c, /*accumulate=*/false);
}

void gemm_reference(const Matrix& a, const Matrix& b, Matrix& c) {
  ADCC_CHECK(a.cols() == b.rows(), "inner dimension mismatch");
  ADCC_CHECK(c.rows() == a.rows() && c.cols() == b.cols(), "C shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < a.cols(); ++kk) acc += a(i, kk) * b(kk, j);
      c(i, j) = acc;
    }
  }
}

}  // namespace adcc::linalg
