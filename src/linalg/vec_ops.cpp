#include "linalg/vec_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"

namespace adcc::linalg {

namespace {
constexpr std::size_t kParallelThreshold = 1u << 14;
}

void copy(std::span<const double> x, std::span<double> y) {
  ADCC_DCHECK(x.size() == y.size(), "size mismatch");
  std::memcpy(y.data(), x.data(), x.size_bytes());
}

double sum(std::span<const double> x) {
  double s = 0.0;
  const std::size_t n = x.size();
#pragma omp parallel for reduction(+ : s) if (n >= kParallelThreshold)
  for (std::size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

double dot(std::span<const double> x, std::span<const double> y) {
  ADCC_DCHECK(x.size() == y.size(), "size mismatch");
  double s = 0.0;
  const std::size_t n = x.size();
#pragma omp parallel for reduction(+ : s) if (n >= kParallelThreshold)
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void axpy(double a, std::span<const double> x, std::span<double> y) {
  ADCC_DCHECK(x.size() == y.size(), "size mismatch");
  const std::size_t n = x.size();
#pragma omp parallel for if (n >= kParallelThreshold)
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void xpay(std::span<const double> x, double a, std::span<const double> y, std::span<double> z) {
  ADCC_DCHECK(x.size() == y.size() && x.size() == z.size(), "size mismatch");
  const std::size_t n = x.size();
#pragma omp parallel for if (n >= kParallelThreshold)
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + a * y[i];
}

void scale(double a, std::span<double> x) {
  const std::size_t n = x.size();
#pragma omp parallel for if (n >= kParallelThreshold)
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
}

void zero(std::span<double> x) { std::memset(x.data(), 0, x.size_bytes()); }

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  ADCC_DCHECK(x.size() == y.size(), "size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::fabs(x[i] - y[i]));
  return m;
}

}  // namespace adcc::linalg
