#include "linalg/vec_ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "kernels/backend.hpp"

namespace adcc::linalg {

void copy(std::span<const double> x, std::span<double> y) {
  ADCC_DCHECK(x.size() == y.size(), "size mismatch");
  std::memcpy(y.data(), x.data(), x.size_bytes());
}

double sum(std::span<const double> x) { return core::active_kernel_backend().sum(x); }

double dot(std::span<const double> x, std::span<const double> y) {
  ADCC_DCHECK(x.size() == y.size(), "size mismatch");
  return core::active_kernel_backend().dot(x, y);
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

void axpy(double a, std::span<const double> x, std::span<double> y) {
  ADCC_DCHECK(x.size() == y.size(), "size mismatch");
  core::active_kernel_backend().axpy(a, x, y);
}

void xpay(std::span<const double> x, double a, std::span<const double> y, std::span<double> z) {
  ADCC_DCHECK(x.size() == y.size() && x.size() == z.size(), "size mismatch");
  core::active_kernel_backend().xpay(x, a, y, z);
}

void scale(double a, std::span<double> x) { core::active_kernel_backend().scale(a, x); }

void zero(std::span<double> x) { std::memset(x.data(), 0, x.size_bytes()); }

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  ADCC_DCHECK(x.size() == y.size(), "size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::fabs(x[i] - y[i]));
  return m;
}

}  // namespace adcc::linalg
