#include "linalg/csr.hpp"

#include <cmath>
#include <map>

#include "common/check.hpp"
#include "kernels/backend.hpp"

namespace adcc::linalg {

CsrMatrix::CsrMatrix(std::size_t n, std::vector<std::size_t> row_ptr,
                     std::vector<std::uint32_t> col_idx, std::vector<double> values)
    : n_(n), row_ptr_(std::move(row_ptr)), col_idx_(std::move(col_idx)), values_(std::move(values)) {
  ADCC_CHECK(row_ptr_.size() == n_ + 1, "row_ptr must have n+1 entries");
  ADCC_CHECK(row_ptr_.front() == 0 && row_ptr_.back() == values_.size(), "row_ptr bounds");
  ADCC_CHECK(col_idx_.size() == values_.size(), "col/val size mismatch");
}

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  ADCC_DCHECK(x.size() == n_ && y.size() == n_, "dimension mismatch");
  core::active_kernel_backend().spmv(*this, x, y);
}

double CsrMatrix::spmv_row(std::size_t row, std::span<const double> x) const {
  double acc = 0.0;
  for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k) {
    acc += values_[k] * x[col_idx_[k]];
  }
  return acc;
}

bool CsrMatrix::is_symmetric(double tol) const {
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> upper;
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::uint32_t c = col_idx_[k];
      if (c > r) upper[{static_cast<std::uint32_t>(r), c}] = values_[k];
    }
  }
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::uint32_t c = col_idx_[k];
      if (c < r) {
        auto it = upper.find({c, static_cast<std::uint32_t>(r)});
        if (it == upper.end() || std::fabs(it->second - values_[k]) > tol) return false;
        upper.erase(it);
      }
    }
  }
  return upper.empty();
}

std::size_t CsrMatrix::footprint_bytes() const {
  return row_ptr_.size() * sizeof(std::size_t) + col_idx_.size() * sizeof(std::uint32_t) +
         values_.size() * sizeof(double);
}

}  // namespace adcc::linalg
