#include "linalg/spgen.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace adcc::linalg {

CgProblemShape shape_of(CgClass cls) {
  switch (cls) {
    case CgClass::S: return {1400, 7};
    case CgClass::W: return {7000, 8};
    case CgClass::A: return {14000, 11};
    case CgClass::B: return {75000, 13};
    case CgClass::C: return {150000, 15};
  }
  ADCC_CHECK(false, "unknown class");
}

std::string name_of(CgClass cls) {
  switch (cls) {
    case CgClass::S: return "S";
    case CgClass::W: return "W";
    case CgClass::A: return "A";
    case CgClass::B: return "B";
    case CgClass::C: return "C";
  }
  ADCC_CHECK(false, "unknown class");
}

CsrMatrix make_spd(std::size_t n, std::size_t nz_per_row, std::uint64_t seed) {
  ADCC_CHECK(n >= 2, "matrix too small");
  ADCC_CHECK(nz_per_row >= 2, "need at least two nonzeros per row");
  SplitMix64 rng(seed);

  // Sample strictly-upper entries, (nz_per_row-1)/2 per row rounded up, then
  // mirror. Duplicates within a row are merged by summation.
  const std::size_t upper_per_row = std::max<std::size_t>(1, (nz_per_row - 1) / 2);
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(n);
  for (std::size_t r = 0; r + 1 < n; ++r) {
    for (std::size_t t = 0; t < upper_per_row; ++t) {
      const std::size_t span = n - r - 1;
      const auto c = static_cast<std::uint32_t>(r + 1 + rng.next_below(span));
      const double v = 2.0 * rng.next_double() - 1.0;
      rows[r].emplace_back(c, v);
      rows[c].emplace_back(static_cast<std::uint32_t>(r), v);
    }
  }

  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(n * nz_per_row);
  values.reserve(n * nz_per_row);

  for (std::size_t r = 0; r < n; ++r) {
    auto& entries = rows[r];
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Merge duplicates and accumulate |offdiag| for the dominant diagonal.
    std::vector<std::pair<std::uint32_t, double>> merged;
    for (const auto& [c, v] : entries) {
      if (!merged.empty() && merged.back().first == c) {
        merged.back().second += v;
      } else {
        merged.emplace_back(c, v);
      }
    }
    double offdiag_abs = 0.0;
    for (const auto& [c, v] : merged) offdiag_abs += std::fabs(v);
    const double diag = offdiag_abs + 1.0;

    bool diag_written = false;
    for (const auto& [c, v] : merged) {
      if (!diag_written && c > r) {
        col_idx.push_back(static_cast<std::uint32_t>(r));
        values.push_back(diag);
        diag_written = true;
      }
      col_idx.push_back(c);
      values.push_back(v);
    }
    if (!diag_written) {
      col_idx.push_back(static_cast<std::uint32_t>(r));
      values.push_back(diag);
    }
    row_ptr[r + 1] = values.size();
  }

  return CsrMatrix(n, std::move(row_ptr), std::move(col_idx), std::move(values));
}

CsrMatrix make_spd_class(CgClass cls, std::uint64_t seed) {
  const auto [n, nz] = shape_of(cls);
  return make_spd(n, nz, seed);
}

std::vector<double> make_rhs(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<double> b(n);
  for (double& x : b) x = rng.next_double();
  return b;
}

}  // namespace adcc::linalg
