// Dense matrix multiplication kernels.
//
// gemm_panel is the building block of the ABFT rank-k update (paper Figs. 5/6):
// C (+)= A[:, ac0:ac0+k] × B[br0:br0+k, :]. The i-k-j loop order streams B rows
// and C rows — the "streaming-like" access pattern the paper's §III-C analysis
// relies on. Both entry points dispatch to the thread's active kernel backend
// (core::KernelBackend::gemm_tile), whose per-element k-ascending contract
// keeps results bitwise independent of backend and thread count.
#pragma once

#include "linalg/dense.hpp"

namespace adcc::linalg {

/// C ← A×B (full product; shapes must agree).
void gemm(const Matrix& a, const Matrix& b, Matrix& c);

/// C (+)= A[:, ac0 : ac0+k] × B[br0 : br0+k, :].
/// If `accumulate` is false, C is overwritten by the panel product.
void gemm_panel(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b, std::size_t br0,
                Matrix& c, bool accumulate);

/// Same kernel for a raw row-major a.rows()×b.cols() output buffer (NVM-arena
/// and persistent-heap accumulators that are not Matrix objects).
void gemm_panel(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b, std::size_t br0,
                double* c, bool accumulate);

/// The 2-D-tile variant of the panel update, for shard-owned sub-blocks of C:
/// tile (+)= A[r0:r1, ac0:ac0+k] × B[br0:br0+k, c0:c1], where `tile` is a raw
/// row-major (r1-r0)×(c1-c0) buffer holding C's [r0,r1)×[c0,c1) block. Same
/// i-k-j streaming order as gemm_panel; per-row sums are sequential, so the
/// result is bitwise independent of the OpenMP thread count.
void gemm_panel_tile(const Matrix& a, std::size_t ac0, std::size_t k, const Matrix& b,
                     std::size_t br0, std::size_t r0, std::size_t r1, std::size_t c0,
                     std::size_t c1, double* tile, bool accumulate);

/// Reference triple-loop product for validation (no blocking, no OpenMP).
void gemm_reference(const Matrix& a, const Matrix& b, Matrix& c);

}  // namespace adcc::linalg
