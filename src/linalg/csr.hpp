// Compressed sparse row matrices and SpMV.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace adcc::linalg {

/// Square CSR matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t n, std::vector<std::size_t> row_ptr, std::vector<std::uint32_t> col_idx,
            std::vector<double> values);

  std::size_t rows() const { return n_; }
  std::size_t nnz() const { return values_.size(); }

  std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  std::span<const std::uint32_t> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  /// y ← A·x, dispatched to the thread's active kernel backend (serial when
  /// unbound); bitwise backend-independent.
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// y ← A·x for a single row (used by instrumented kernels).
  double spmv_row(std::size_t row, std::span<const double> x) const;

  /// True if the sparsity pattern and values are symmetric (within tol).
  bool is_symmetric(double tol = 1e-12) const;

  /// Total bytes of the three CSR arrays (working-set estimation).
  std::size_t footprint_bytes() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace adcc::linalg
