// Random sparse SPD system generator, standing in for NPB CG's `makea`.
//
// Construction: a symmetric pattern with `nz_per_row` off-diagonal entries per
// row on average (values uniform in [-1,1]) plus a diagonal making the matrix
// strictly diagonally dominant — hence symmetric positive definite, the class
// CG requires. Problem classes mirror NPB CG sizes so that the Fig. 3 sweep
// crosses the simulated LLC capacity exactly like the paper's sweep does.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/csr.hpp"

namespace adcc::linalg {

/// NPB CG problem classes (rows, nonzeros-per-row as in the suite).
enum class CgClass { S, W, A, B, C };

struct CgProblemShape {
  std::size_t n;
  std::size_t nz_per_row;
};

CgProblemShape shape_of(CgClass cls);
std::string name_of(CgClass cls);

/// Generates a random sparse SPD matrix (deterministic in `seed`).
CsrMatrix make_spd(std::size_t n, std::size_t nz_per_row, std::uint64_t seed = 42);

/// Convenience: the matrix for an NPB class.
CsrMatrix make_spd_class(CgClass cls, std::uint64_t seed = 42);

/// Right-hand side with entries in [0,1) (deterministic in `seed`).
std::vector<double> make_rhs(std::size_t n, std::uint64_t seed = 43);

}  // namespace adcc::linalg
