#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace adcc::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols) {}

void Matrix::set_zero() { std::memset(data_.data(), 0, rows_ * cols_ * sizeof(double)); }

void Matrix::fill_random(std::uint64_t seed, double lo, double hi) {
  SplitMix64 rng(seed);
  for (std::size_t i = 0; i < rows_ * cols_; ++i) {
    data_[i] = lo + (hi - lo) * rng.next_double();
  }
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  ADCC_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows_ * a.cols_; ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

}  // namespace adcc::linalg
