// Multi-shard execution engine: domain-decomposed workloads under coordinated
// global snapshots with k-of-N crash recovery.
//
// A ShardGroup runs one workload as N in-process shards, each owning a
// contiguous partition of the problem (CG row blocks, MM panel tiles, MC
// particle-bank ranges) and — in checkpoint modes — a private CheckpointSet on
// a private backend (own slot files / arena namespace). Work units advance
// phase-major: every shard completes phase p of unit u before any shard starts
// phase p+1, with inter-shard data flowing through the deterministic
// ShardExchange (publish/fetch keyed by unit x tag x shard). Durability is a
// two-level protocol: per-shard saves (reusing the chunked sync/async drain
// engine unchanged), then a *global* epoch commit by the GroupCoordinator that
// joins every shard's drain — optionally in a rotating, staggered order — and
// only then writes the tiny global marker naming the committed per-shard slot
// versions (see coordinator.hpp for the commit-ordering invariant).
//
// Crash scopes (scenario.hpp's shard:/shards:/coord: plan families):
//   - kShards: only the victim shards lose state. Survivors keep their live
//     partitions and are never recomputed; each victim reloads the marker's
//     version of its own slot (restore_version) and replays its local units
//     from the retained exchange log — the halo traffic of that replay is the
//     reported halo_bytes.
//   - kProcess / kCoordinator: a whole-group power failure (the coordinator
//     dying mid-commit takes every shard's volatile state with it). Recovery
//     re-reads the durable marker and rolls every shard back to the last
//     fully committed global epoch.
//
// Phase discipline (tick-before-mutate): a ShardPart fires ALL of a phase's
// fault-surface sites at phase entry, before mutating any state. A mid-phase
// crash therefore leaves every shard consistent at a phase boundary, so
// re-execution (and victim-only replay) recomputes interrupted phases safely.
//
// Scope cuts, by design: transaction and algorithm-directed modes keep their
// single-rank engines (the group transparently falls back to the unsharded
// workload — their durability actions are interleaved with the kernels and do
// not decompose along the snapshot protocol), and the sharded MM path is plain
// tiled GEMM without the ABFT checksum augmentation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "checkpoint/checkpoint_set.hpp"
#include "core/coordinator.hpp"
#include "core/fault.hpp"
#include "core/workload.hpp"

namespace adcc::core {

/// Deterministic inter-shard mailbox. Values are published per (unit, tag,
/// shard) and re-published idempotently during replay (a deterministic shard
/// republishes identical bytes). Entries are retained until the group trims
/// them at a global commit — a victim's replay of units newer than the last
/// committed epoch fetches survivors' original publications from here instead
/// of recomputing the survivors.
class ShardExchange {
 public:
  void publish(std::size_t unit, std::string tag, std::size_t shard, std::vector<double> value);

  /// Fetches a publication; aborts if absent (a protocol bug — phase ordering
  /// guarantees producers run before consumers). Accounts the fetched bytes
  /// (the group's halo-traffic metric).
  std::span<const double> fetch(std::size_t unit, const std::string& tag, std::size_t shard);

  /// Drops every entry with unit <= `upto` (they precede the committed epoch,
  /// so no replay can need them).
  void trim(std::size_t upto);

  void clear();
  std::size_t entries() const { return entries_.size(); }
  std::size_t fetched_bytes() const { return fetched_bytes_; }

 private:
  using Key = std::tuple<std::size_t, std::string, std::size_t>;
  std::map<Key, std::vector<double>> entries_;
  std::size_t fetched_bytes_ = 0;
};

/// One shard's partition of a workload: its state, its phase kernels, and its
/// checkpoint registration. Created fresh by the plan at every prepare().
class ShardPart {
 public:
  virtual ~ShardPart() = default;

  /// Initializes partition state and registers durable objects with `ckpt`
  /// (nullptr in native mode — no registration).
  virtual void prepare(checkpoint::CheckpointSet* ckpt) = 0;

  /// Executes phase `phase` of unit `unit` (both advance phase-major under the
  /// group). MUST fire all fault-surface sites before the first state
  /// mutation (tick-before-mutate; see the file comment).
  virtual void compute(std::size_t unit, std::size_t phase, ShardExchange& exchange) = 0;

  /// Mirrors volatile progress into the registered durable objects just
  /// before the shard's save of epoch `unit`; idempotent.
  virtual void on_save(std::size_t unit) = 0;

  /// Power failure: destroys all volatile partition state.
  virtual void clobber() = 0;

  /// Realigns state after a restore: `units_done == 0` re-initializes to the
  /// initial partition (nothing durable survived); otherwise the checkpoint
  /// load already rewrote the registered objects and this re-derives any
  /// volatile mirrors (and may cross-check the stored unit cursor).
  virtual void restored(std::size_t units_done) = 0;
};

/// A workload's decomposition recipe: problem instance (shared, immutable),
/// partitioning, and verification across parts.
class ShardPlan {
 public:
  virtual ~ShardPlan() = default;

  virtual std::string name() const = 0;
  virtual std::size_t work_units() const = 0;

  /// Phases per work unit (CG: 4 — publish/spmv/update/direction; MM, MC: 1).
  virtual std::size_t phases() const = 0;

  virtual std::unique_ptr<ShardPart> make_part(std::size_t index, std::size_t count,
                                               FaultSurface& fault) = 0;

  /// Checks the assembled final answer across all parts against an
  /// independent reference.
  virtual bool verify(const std::vector<ShardPart*>& parts) = 0;

  /// Sizes the per-shard substrate (arena/slot bytes) for `count` shards; the
  /// same sizing also hosts the coordinator's marker on the main env.
  virtual void tune_env(Mode mode, ModeEnvConfig& cfg, std::size_t count) const = 0;
};

/// Group shape: shard count and the optional staggered drain schedule.
struct ShardGroupConfig {
  std::size_t shards = 1;
  /// Rotate the per-epoch save/join order by (epoch mod N) so drains stagger
  /// across epochs instead of always queueing in shard order.
  bool stagger = false;
};

/// The Workload implementation that runs a ShardPlan as a coordinated group.
/// In transaction/algorithm modes (or shards <= 1) it transparently delegates
/// to the unsharded workload built by `fallback`.
class ShardGroup final : public Workload {
 public:
  using FallbackFactory = std::function<std::unique_ptr<Workload>()>;

  ShardGroup(std::unique_ptr<ShardPlan> plan, ShardGroupConfig cfg, FallbackFactory fallback);
  ~ShardGroup() override;

  std::string name() const override;
  std::size_t work_units() const override;
  std::size_t units_done() const override;
  void prepare(ModeEnv& env) override;
  bool run_step() override;
  void make_durable() override;
  void wait_durable() override;
  bool durability_pending() const override;
  void inject_crash() override;
  WorkloadRecovery recover() override;
  bool verify() override;
  void tune_env(Mode mode, ModeEnvConfig& cfg) const override;
  FaultSurface* fault() override;
  std::size_t shard_count() const override;
  void set_crash_scope(const CrashScope& scope) override;

  // Introspection for tests and probes.
  bool sharded() const { return !use_fallback_; }
  std::size_t phases() const;
  GroupCoordinator* coordinator() { return coordinator_.get(); }
  checkpoint::CheckpointSet* shard_ckpt(std::size_t i) { return ckpts_[i].get(); }
  checkpoint::Backend* shard_backend(std::size_t i) { return shard_envs_[i]->backend.get(); }
  std::uint64_t shard_exec_steps(std::size_t i) const { return exec_steps_[i]; }
  ShardExchange& exchange() { return exchange_; }

 private:
  Workload& ensure_fallback() const;
  std::vector<std::size_t> save_order(std::size_t epoch) const;
  void commit_pending();
  /// Re-executes shard `i`'s units (from, done_] through every phase against
  /// the retained exchange; returns the number of units replayed.
  std::size_t replay(std::size_t i, std::size_t from);
  /// Re-forms the group's global commit at epoch done_ after a k-of-N
  /// recovery: resaves any shard whose epoch-done_ image was lost or never
  /// taken, then commits — repairing the marker lag so the double buffer
  /// protects the restored state again.
  void reform_commit();

  std::unique_ptr<ShardPlan> plan_;
  ShardGroupConfig cfg_;
  FallbackFactory fallback_factory_;
  mutable std::unique_ptr<Workload> fallback_;
  bool use_fallback_ = true;

  ModeEnv* env_ = nullptr;
  DurabilityKind kind_ = DurabilityKind::kNone;
  bool async_ = false;
  FaultSurface fault_;
  ShardExchange exchange_;
  CrashScope scope_;

  std::vector<std::unique_ptr<ModeEnv>> shard_envs_;
  std::vector<std::unique_ptr<checkpoint::CheckpointSet>> ckpts_;
  std::vector<std::unique_ptr<ShardPart>> parts_;
  std::unique_ptr<GroupCoordinator> coordinator_;

  std::size_t done_ = 0;          ///< Completed work units (group-wide).
  std::size_t crashed_done_ = 0;  ///< done_ at the moment of the last crash.
  std::vector<std::size_t> progress_;    ///< Per shard: phase-steps completed.
  std::vector<std::uint64_t> exec_steps_;  ///< Per shard: compute() calls (incl. replay).
  std::vector<std::size_t> last_saved_epoch_;  ///< Per shard: epoch of the last save taken.
  std::vector<std::uint64_t> saved_version_;   ///< ...and the slot version it produced.
  std::optional<std::size_t> pending_epoch_;   ///< Async: epoch saved but not yet committed.
};

}  // namespace adcc::core
