// WorkloadRegistry — name -> factory table behind `adccbench --workload=...`.
//
// Workload adapters self-register via static WorkloadRegistrar objects
// (ADCC_REGISTER_WORKLOAD), so adding a workload is one translation unit, not
// a new benchmark binary. libadcc is linked as an OBJECT library precisely so
// these registrars survive into every executable.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "core/workload.hpp"

namespace adcc::core {

/// Builds a workload instance from CLI options (problem sizes, --quick, ...).
using WorkloadFactory = std::function<std::unique_ptr<Workload>(const Options&)>;

class WorkloadRegistry {
 public:
  /// The process-wide registry (registrars run before main).
  static WorkloadRegistry& instance();

  /// Registers a factory; duplicate names are a contract violation.
  void add(std::string name, std::string description, WorkloadFactory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  ///< Sorted.
  const std::string& description(const std::string& name) const;

  /// Instantiates a registered workload; throws ContractViolation listing the
  /// known names when `name` is not registered.
  std::unique_ptr<Workload> create(const std::string& name, const Options& opts) const;

 private:
  struct Entry {
    std::string description;
    WorkloadFactory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Static-initialization helper: declare one at namespace scope to register a
/// workload at program start.
struct WorkloadRegistrar {
  WorkloadRegistrar(std::string name, std::string description, WorkloadFactory factory);
};

#define ADCC_REGISTER_WORKLOAD_CONCAT2(a, b) a##b
#define ADCC_REGISTER_WORKLOAD_CONCAT(a, b) ADCC_REGISTER_WORKLOAD_CONCAT2(a, b)

/// ADCC_REGISTER_WORKLOAD("cg", "NPB-CG solver", [](const Options& o) {...});
#define ADCC_REGISTER_WORKLOAD(name, description, factory)             \
  static const ::adcc::core::WorkloadRegistrar ADCC_REGISTER_WORKLOAD_CONCAT( \
      adcc_workload_registrar_, __LINE__)(name, description, factory)

}  // namespace adcc::core
