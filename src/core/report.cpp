#include "core/report.hpp"

#include <cstdio>
#include <iostream>

#include "common/check.hpp"

namespace adcc::core {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  ADCC_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::fputs(render_plain().c_str(), stdout);
  std::fflush(stdout);
}

std::string Table::render_plain() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] + 2 - row[c].size(), ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::optional<TableFormat> parse_table_format(std::string_view name) {
  if (name.empty() || name == "table" || name == "plain") return TableFormat::kPlain;
  if (name == "csv") return TableFormat::kCsv;
  if (name == "json") return TableFormat::kJson;
  return std::nullopt;
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void Table::print(TableFormat format) const {
  std::fputs(render(format).c_str(), stdout);
  std::fflush(stdout);
}

std::string Table::render(TableFormat format) const {
  switch (format) {
    case TableFormat::kPlain: return render_plain();
    case TableFormat::kCsv: return render_csv();
    case TableFormat::kJson: return render_json();
  }
  ADCC_CHECK(false, "unknown table format");
}

std::string Table::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string Table::render_json() const {
  std::string out = "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r == 0 ? "\n  {" : ",\n  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) out += ", ";
      out += '"';
      out += json_escape(headers_[c]);
      out += "\": \"";
      out += json_escape(rows_[r][c]);
      out += '"';
    }
    out += '}';
  }
  out += "\n]\n";
  return out;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void print_banner(const std::string& figure, const std::string& description) {
  std::printf("\n=== %s — %s ===\n", figure.c_str(), description.c_str());
  std::fflush(stdout);
}

}  // namespace adcc::core
