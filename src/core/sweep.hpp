// SweepSpec + the batched scenario-matrix engine — the paper's evaluation grid
// (workload × mode × cache size / rank / flush frequency / problem size /
// threads / crash plan) as one declarative spec executed in one process.
//
// Grammar (adccbench --sweep=SPEC): comma-separated axes, each `key=values`.
// Values are '+'-separated tokens; numeric tokens may be ranges:
//
//   mode=all,threads=1:8,n=1000+4000,cache_mb=4:64:x2
//
//   v            one literal value (sizes accept K/M/G/T suffixes: n=1M)
//   a+b+c        list
//   lo:hi        inclusive range, step 1          threads=1:8
//   lo:hi:STEP   inclusive range, additive step   n=1000:5000:1000
//   lo:hi:xF     geometric range, factor F ≥ 2    cache_mb=4:64:x2
//
// Five axes are string-valued and never range-expanded: `workload` (registry
// names; `all` = every non-*-sim workload), `mode` (mode names or `all` = the
// paper's seven), `crash` (any parse_crash plan — plans contain ':' freely),
// `policy`, and `backend` (kernel-backend registry names, validated eagerly —
// `omp` in a build without -DADCC_OPENMP=ON is a parse error). Every other key
// is a generic per-cell option override handed to the workload factory (n, nz,
// iters, rank, lookups, interval, nuclides, gridpoints, cache_mb, threads,
// reps, seed, arena, slot, ...), so any knob a workload reads from Options is
// sweepable without engine changes. `backend`/`threads` select the compute
// kernels per cell (docs/BACKENDS.md); native baselines always run serially,
// so every backend/thread cell of a shape shares one baseline.
//
// The deck is the cross product of all axes, expanded in spec order with the
// first axis slowest-varying. run_sweep executes every cell through
// ScenarioRunner — serially or on `jobs` worker threads, each cell with its
// own workload instance and an isolated FileBackend scratch subdirectory —
// captures per-cell failures (one crashed cell reports ERROR in its row
// instead of killing the deck), memoizes native baselines across cells that
// share a problem shape, and aggregates everything into one core::Table.
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/options.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

namespace adcc::core {

class TraceSink;

/// One expanded sweep dimension: an option key and the literal values the
/// deck's cross product iterates over it.
struct SweepAxis {
  std::string key;                  ///< Option key ("mode", "n", "ckpt_async", ...).
  std::vector<std::string> values;  ///< Expanded, in declaration order.
};

/// Expands one axis value spec ("all", "1:8", "4:64:x2", "a+b") into a
/// SweepAxis, validating workload/mode/crash names eagerly. nullopt on bad
/// grammar, with a human-readable message in *error when provided.
std::optional<SweepAxis> make_axis(std::string_view key, std::string_view values,
                                   std::string* error = nullptr);

/// A parsed --sweep grammar: the ordered axes whose cross product is the
/// deck. Axis order is row-emission order (first axis slowest-varying).
struct SweepSpec {
  std::vector<SweepAxis> axes;  ///< Declaration order; cells() is their product.

  std::size_t cells() const;  ///< Cross-product size (1 for an empty spec).
  const SweepAxis* find(std::string_view key) const;

  /// Cell `index`'s axis assignment, in axis order; the first axis is the
  /// slowest-varying (nested-loop order), so deck order is deterministic.
  std::vector<std::pair<std::string, std::string>> assignment(std::size_t index) const;

  /// Round-trip spelling ("workload=cg,mode=native+alg-nvm,n=1000+4000").
  std::string canonical() const;
};

/// Parses the full --sweep grammar; nullopt on malformed input with a message
/// in *error. Rejects duplicate axes and decks over the expansion caps.
std::optional<SweepSpec> parse_sweep(std::string_view spec, std::string* error = nullptr);

/// How run_sweep executes a deck: base options, worker count, baseline policy
/// and scratch-dir isolation.
struct SweepConfig {
  Options base;      ///< CLI options every cell starts from (axes overlay it).
  int jobs = 1;      ///< Worker threads executing cells (1 = serial, in-order).
  bool baseline = true;  ///< Time a native run per problem shape and normalize.
  /// Per-cell FileBackend scratch dirs live under this root (empty → a
  /// temp-dir default); cell N uses scratch_root/cellN so parallel cells never
  /// share checkpoint slot files.
  std::filesystem::path scratch_root;
  /// Collect per-cell stage timers (the t_stage..t_kernel columns). Baseline
  /// runs stay unbound either way, so memoized-baseline sharing is unaffected.
  bool telemetry = false;
  /// Optional shared trace sink: every telemetry-bound cell also records
  /// Chrome trace events onto per-cell/per-thread tracks. Implies telemetry.
  std::shared_ptr<TraceSink> trace;
};

/// One deck cell's outcome: its axis assignment, the scenario measurement,
/// and a captured per-cell failure (ERROR rows instead of deck death).
struct SweepCellResult {
  enum class Status { kOk, kVerifyFailed, kError };

  std::size_t index = 0;    ///< Deck position (deterministic, jobs-independent).
  std::vector<std::pair<std::string, std::string>> assignment;  ///< Axis values.
  std::string workload;     ///< Registry name the cell ran.
  std::string mode_label;   ///< Canonical mode name (raw spelling on error).
  std::string crash_label;  ///< Canonical crash plan (raw spelling on error).
  Status status = Status::kOk;
  std::string error;        ///< kError: what the cell threw.
  ScenarioResult result;
  double native_seconds = 0.0;
  /// Stage breakdown of the last timed repetition (seconds), harvested when
  /// SweepConfig::telemetry is on: serialize memcpy, chunk CRC, device
  /// queue+write, async drain wall (overlaps the others by design), and the
  /// summed kernel/* compute stages.
  bool telemetry = false;
  double t_stage = 0.0;
  double t_crc = 0.0;
  double t_comp = 0.0;  ///< Per-chunk compression (ckpt/compress), zero for none.
  double t_io = 0.0;
  double t_drain = 0.0;
  double t_kernel = 0.0;
  /// Per-kernel slices of t_kernel (kernel/spmv, kernel/gemm, kernel/xs); the
  /// remainder is kernel/blas1 and any future stages under the prefix.
  double t_spmv = 0.0;
  double t_gemm = 0.0;
  double t_xs = 0.0;
};

/// A fully executed deck: every cell result in deck order plus the table
/// emitter the CLI and the pinned bench decks render from.
struct SweepResult {
  SweepSpec spec;
  std::vector<SweepCellResult> cells;  ///< Deck order, independent of jobs.

  bool all_ok() const;
  std::size_t count(SweepCellResult::Status s) const;

  /// One row per cell: cell/workload/mode/crash, the non-core axis columns in
  /// spec order, then the scenario measurements. With timing=false every
  /// wall-clock-derived column renders as "-" so serial and parallel decks are
  /// byte-identical (the remaining columns are deterministic).
  Table table(bool timing = true) const;
};

SweepResult run_sweep(const SweepSpec& spec, const SweepConfig& cfg);

}  // namespace adcc::core
