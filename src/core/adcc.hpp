// Umbrella header for the ADCC library — algorithm-directed crash consistency
// in non-volatile memory for HPC (reproduction of Yang et al., CLUSTER 2017).
//
// Layered API:
//   adcc::memsim     — crash emulator (cache model + dual-image regions)
//   adcc::nvm        — flush primitives, NVM perf throttle, arenas, DRAM cache
//   adcc::pmemtx     — undo-log transactions (PMEM-library baseline)
//   adcc::checkpoint — disk/NVM/hetero checkpoint backends
//   adcc::linalg     — CSR/dense kernels, SPD generator
//   adcc::abft       — checksum encodings + ABFT GEMM
//   adcc::cg         — CG variants, incl. the Fig. 2 crash-consistent solver
//   adcc::mm         — ABFT-MM variants, incl. the Fig. 6 two-loop algorithm
//   adcc::mc         — XSBench-equivalent MC, incl. selective flushing
//   adcc::core       — the seven evaluation modes, harness, reporting, and the
//                      Workload/Scenario layer: core::Workload (polymorphic
//                      workload interface), core::WorkloadRegistry (name →
//                      factory, self-registering), core::ScenarioRunner
//                      (workload × mode × CrashScenario driver behind the
//                      `adccbench` CLI). Workload adapters live next to their
//                      algorithms: cg::CgWorkload, mm::MmWorkload,
//                      mc::McWorkload.
#pragma once

#include "abft/abft_gemm.hpp"
#include "abft/checksum.hpp"
#include "cg/cg.hpp"
#include "cg/cg_cc.hpp"
#include "cg/cg_ckpt.hpp"
#include "cg/cg_online_abft.hpp"
#include "cg/cg_tx.hpp"
#include "cg/cg_workload.hpp"
#include "checkpoint/backend.hpp"
#include "checkpoint/checkpoint_set.hpp"
#include "checkpoint/file_backend.hpp"
#include "checkpoint/hetero_backend.hpp"
#include "checkpoint/incremental.hpp"
#include "checkpoint/nvm_backend.hpp"
#include "common/align.hpp"
#include "common/check.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/harness.hpp"
#include "core/modes.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "core/workload.hpp"
#include "linalg/csr.hpp"
#include "linalg/dense.hpp"
#include "linalg/gemm.hpp"
#include "linalg/spgen.hpp"
#include "linalg/vec_ops.hpp"
#include "mc/mc_ckpt.hpp"
#include "mc/mc_workload.hpp"
#include "mc/tally.hpp"
#include "mc/xs_cc.hpp"
#include "mc/xs_data.hpp"
#include "mc/xs_kernel.hpp"
#include "memsim/cache.hpp"
#include "memsim/crash.hpp"
#include "memsim/memsim.hpp"
#include "memsim/tracked.hpp"
#include "mm/mm_cc.hpp"
#include "mm/mm_ckpt.hpp"
#include "mm/mm_tx.hpp"
#include "mm/mm_workload.hpp"
#include "nvm/dram_cache.hpp"
#include "nvm/epoch.hpp"
#include "nvm/flush.hpp"
#include "nvm/nvm_region.hpp"
#include "nvm/perf_model.hpp"
#include "pmemtx/pheap.hpp"
#include "pmemtx/tx.hpp"
#include "pmemtx/undo_log.hpp"
