// Telemetry — the stage-level observability layer: named stage timers and
// monotonic counters behind RAII scopes, with optional Chrome trace_event
// export.
//
// The design goal is a *runtime* enable flag with no compile-time fork and no
// cost on the native path. Instrumentation sites construct a StageTimer with a
// hierarchical stage path ("ckpt/crc", "kernel/spmv", ...); the timer resolves
// the thread's ambient TelemetryBind. When no Telemetry is bound — the native
// baseline runs, the verify pass, any code path the harness did not opt in —
// the constructor is a thread-local load plus one branch: no clock read, no
// lock, no allocation. When bound, each scope reads the monotonic clock twice
// and merges its elapsed time into the stage's atomic accumulator exactly once
// at scope exit (per-thread accumulation, merged when the scope closes), so a
// pipeline of workers hammering the same stage contends on one relaxed
// fetch_add per chunk, not per sample.
//
// Stage paths are hierarchical by convention ('/'-separated); the taxonomy the
// engine emits is documented in docs/OBSERVABILITY.md:
//
//   ckpt/stage  ckpt/crc  ckpt/queue  ckpt/commit  ckpt/drain
//   coord/join  coord/commit  shard/halo
//   kernel/spmv  kernel/gemm  kernel/xs  kernel/blas1
//
// Thread propagation: TelemetryBind installs a Telemetry on the *current*
// thread; engines that spawn workers (the checkpoint WritePipeline, the async
// drain thread) capture the caller's binding with Telemetry::current_binding()
// and re-install it — with a "/drain" / "/wN" label suffix — inside the child
// thread, so stage totals merge into the owning cell's registry and each
// thread gets its own trace track.
//
// Tracing: attach a TraceSink (shared across cells) and every bound stage
// scope additionally records a Chrome trace_event "complete" event on the
// binding's track; Telemetry::instant() marks crash/recovery moments. The sink
// serializes to the chrome://tracing / Perfetto JSON array format.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace adcc::core {

/// Process-wide trace event collector, shareable across every cell of a sweep
/// deck. Tracks are registered by label ("cell3", "cell3/drain"); events carry
/// microsecond timestamps relative to the sink's construction. Thread-safe.
class TraceSink {
 public:
  TraceSink();

  /// Returns the track id for `label`, registering it on first use. Stable
  /// for the sink's lifetime.
  int track(const std::string& label);

  /// Records a "complete" (ph:"X") event: a stage scope [start, end) in
  /// seconds on the sink's own monotonic clock (now_seconds()).
  void complete(int track, std::string_view name, double start, double end);

  /// Records an "instant" (ph:"i") event at `at` seconds (crash, recovery).
  void instant(int track, std::string_view name, double at);

  /// Seconds since the monotonic epoch at the sink's construction — event
  /// timestamps are taken relative to this.
  double epoch() const { return epoch_; }

  std::size_t event_count() const;

  /// Serializes {"traceEvents": [...]} — thread_name metadata per track, then
  /// every recorded event — viewable in chrome://tracing or Perfetto.
  void write_chrome_trace(std::ostream& os) const;

 private:
  /// One recorded trace event; dur_us < 0 marks an instant event.
  struct Event {
    std::string name;
    double ts_us = 0.0;
    double dur_us = -1.0;
    int track = 0;
  };

  double epoch_;
  mutable std::mutex mu_;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
};

class Telemetry;

/// A captured thread binding (see Telemetry::current_binding): which Telemetry
/// the thread reports into and the trace-track label it reports under. Engines
/// hand this into the threads they spawn.
struct TelemetryBinding {
  Telemetry* telemetry = nullptr;
  std::string label;
};

/// The per-cell registry of stage timers and monotonic counters. All methods
/// are thread-safe; accumulation is wait-free after a stage's first use.
class Telemetry {
 public:
  /// One stage's accumulated totals: merged nanoseconds and scope count.
  struct Stage {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> count{0};
  };

  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Finds or registers the stage at `path`. The reference is stable for the
  /// Telemetry's lifetime (node-based storage).
  Stage& stage(std::string_view path);

  /// Adds `delta` to the monotonic counter at `path`.
  void count(std::string_view path, std::uint64_t delta);

  /// Accumulated seconds of `path` (0.0 when never recorded).
  double seconds(std::string_view path) const;

  /// Times `path` was scoped or counted (0 when never recorded).
  std::uint64_t calls(std::string_view path) const;

  /// Counter value at `path` (0 when never counted).
  std::uint64_t counter(std::string_view path) const;

  /// Sum of seconds over every stage whose path starts with `prefix`
  /// ("kernel/" aggregates the per-kernel timers into one column).
  double prefix_seconds(std::string_view prefix) const;

  /// Zeroes every accumulator and counter (registrations persist). The
  /// scenario runner resets before each timed repetition so the final totals
  /// describe the last rep — the one whose recovery accounting is reported.
  void reset();

  /// Stage totals in path order: (path, seconds, scope count).
  struct Sample {
    std::string path;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<Sample> snapshot() const;

  /// Attaches (or detaches, with nullptr) the trace sink. Must not race
  /// running stage scopes; the sweep engine attaches before the cell runs.
  void set_trace(std::shared_ptr<TraceSink> sink) { sink_ = std::move(sink); }
  TraceSink* trace() const { return sink_.get(); }

  /// Records an instant trace event (crash / recovery markers) on the calling
  /// thread's track. No-op without a sink or when this Telemetry is not the
  /// thread's current binding.
  void instant(std::string_view name);

  /// The Telemetry bound to the calling thread (nullptr = telemetry off — the
  /// zero-cost path every instrumentation site takes by default).
  static Telemetry* current();

  /// The calling thread's full binding, for propagation into spawned threads.
  static TelemetryBinding current_binding();

 private:
  friend class TelemetryBind;
  friend class StageTimer;

  /// Merges one closed scope and emits its trace event.
  void record(const char* path, double start, double end, int track);

  mutable std::mutex mu_;
  std::map<std::string, Stage, std::less<>> stages_;
  std::map<std::string, std::atomic<std::uint64_t>, std::less<>> counters_;
  std::shared_ptr<TraceSink> sink_;
};

/// RAII thread binding: installs `telemetry` as the calling thread's current
/// Telemetry for the scope's duration and restores the previous binding on
/// exit (bindings nest). The label names the thread's trace track; the
/// suffix-form constructor derives a child label from a captured parent
/// binding ("cell3" -> "cell3/drain").
class TelemetryBind {
 public:
  TelemetryBind(Telemetry* telemetry, std::string label);
  TelemetryBind(const TelemetryBinding& parent, const std::string& suffix);
  ~TelemetryBind();

  TelemetryBind(const TelemetryBind&) = delete;
  TelemetryBind& operator=(const TelemetryBind&) = delete;

 private:
  Telemetry* saved_telemetry_;
  int saved_track_;
  std::string saved_label_;
};

/// RAII stage scope: accumulates [construction, destruction) into the bound
/// Telemetry's stage at `path` and records a trace event when a sink is
/// attached. `path` must outlive the scope (pass string literals). When the
/// thread has no binding the constructor does nothing — no clock read.
class StageTimer {
 public:
  explicit StageTimer(const char* path);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Telemetry* telemetry_ = nullptr;
  const char* path_ = nullptr;
  int track_ = -1;
  double start_ = 0.0;
};

}  // namespace adcc::core
