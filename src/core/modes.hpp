// The paper's seven evaluation configurations (§III-A) as a first-class enum,
// plus a factory assembling the substrate stack each mode needs.
//
//   1. kNative     — no durability mechanism at all
//   2. kCkptDisk   — checkpoint to a local hard drive
//   3. kCkptNvm    — checkpoint into NVM-only main memory (NVM as fast as DRAM)
//   4. kCkptHetero — checkpoint into heterogeneous NVM/DRAM (NVM at 1/8 DRAM
//                    bandwidth, 32 MB DRAM cache in front)
//   5. kPmemTx     — Intel-PMEM-style undo-log transactions on NVM-only
//   6. kAlgNvm     — algorithm-directed approach on NVM-only
//   7. kAlgHetero  — algorithm-directed approach on heterogeneous NVM/DRAM
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "checkpoint/backend.hpp"
#include "nvm/dram_cache.hpp"
#include "nvm/nvm_region.hpp"

namespace adcc::core {

enum class Mode {
  kNative,
  kCkptDisk,
  kCkptNvm,
  kCkptHetero,
  kPmemTx,
  kAlgNvm,
  kAlgHetero,
};

std::string mode_name(Mode m);
std::vector<Mode> all_modes();

/// Inverse of mode_name: round-trips every all_modes() spelling and accepts
/// forgiving variants (case-insensitive, '_' for '-', "ckpt-hetero" /
/// "alg-hetero" for the "...-nvm/dram" names). nullopt on unknown names.
std::optional<Mode> parse_mode(std::string_view name);

bool is_checkpoint_mode(Mode m);
bool is_algorithm_mode(Mode m);

/// The four durability-mechanism families behind the seven modes; workload
/// adapters dispatch their per-mode engines on this instead of re-mapping the
/// Mode enum themselves.
enum class DurabilityKind { kNone, kCheckpoint, kTransaction, kAlgorithm };
DurabilityKind durability_kind(Mode m);

/// Substrate sizing for make_env: arena/slot capacities, device models, and
/// the durability-engine knobs (all sweepable through the CLI).
struct ModeEnvConfig {
  std::size_t arena_bytes = 64u << 20;   ///< NVM arena capacity.
  std::size_t slot_bytes = 16u << 20;    ///< Per-slot checkpoint capacity.
  std::filesystem::path scratch_dir;     ///< For kCkptDisk (default: tmp).
  double nvm_bandwidth_slowdown = 8.0;   ///< Hetero modes (paper: 8).
  double dram_bw_bytes_per_s = 0.0;      ///< 0 → calibrate with a memcpy sweep.
  double disk_throttle_bytes_per_s = 150e6;
  std::size_t dram_cache_bytes = 32u << 20;  ///< Paper: 32 MB.
  std::size_t ckpt_chunk_bytes = 256u << 10; ///< --ckpt_chunk_kb (chunk payload).
  int ckpt_threads = 1;                      ///< --ckpt_threads (write pipeline).
  /// --ckpt_async: checkpoint saves stage + drain in the background, so the
  /// next work unit overlaps the device window (sweepable axis ckpt_async=0+1).
  bool ckpt_async = false;
  /// --ckpt_compress: per-chunk payload codec applied on the pipeline workers
  /// before the device-bandwidth queue ("none", "lz", "lz:LEVEL").
  checkpoint::CodecSpec ckpt_compress;
  /// --ckpt_async_depth: staging-arena ring depth for asynchronous saves.
  int ckpt_async_depth = 1;
  /// --ckpt_dirty_commit: mostly-clean images rewrite only dirty chunks in
  /// place (epoch-stamping the clean ones) instead of alternating whole
  /// slots. Rejected for multi-shard groups (coordinated rollback needs
  /// exactly-committed slot versions).
  bool ckpt_dirty_commit = false;
};

/// Everything a mode needs, wired together. Members not used by the mode stay
/// null (e.g. no NVM arena in kNative, no backend in kAlgNvm).
struct ModeEnv {
  Mode mode = Mode::kNative;
  /// The sizing this env was built from. Multi-shard groups derive their
  /// per-shard sub-envs from it (same knobs, per-shard scratch namespaces).
  ModeEnvConfig cfg;
  std::unique_ptr<nvm::PerfModel> perf;
  std::unique_ptr<nvm::NvmRegion> region;
  std::unique_ptr<nvm::DramCache> dram;
  std::unique_ptr<checkpoint::Backend> backend;
};

ModeEnv make_env(Mode mode, const ModeEnvConfig& cfg);

}  // namespace adcc::core
