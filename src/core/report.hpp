// Plain-text table reporting for the figure-reproduction benches: every bench
// prints the same rows/series the paper's figure shows, in a stable,
// grep-friendly format that EXPERIMENTS.md references.
#pragma once

#include <string>
#include <vector>

namespace adcc::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);  ///< 0.082 → "8.2%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard bench banner (figure id + workload description).
void print_banner(const std::string& figure, const std::string& description);

}  // namespace adcc::core
