// Plain-text table reporting for the figure-reproduction benches: every bench
// prints the same rows/series the paper's figure shows, in a stable,
// grep-friendly format that EXPERIMENTS.md references. Tables can also render
// as CSV or JSON (adccbench --format=csv|json) so matrix/fuzz sweeps feed
// dashboards without scraping the aligned-column layout.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adcc::core {

enum class TableFormat { kPlain, kCsv, kJson };

/// Parses "table"/"plain", "csv", "json" (case-sensitive); nullopt otherwise.
std::optional<TableFormat> parse_table_format(std::string_view name);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns to stdout.
  void print() const;

  /// Renders in the requested format to stdout: kPlain as print(), kCsv as an
  /// RFC-4180 header + rows, kJson as an array of header-keyed objects.
  void print(TableFormat format) const;

  /// The exact bytes print(format) would write — for tables going to files
  /// (adccbench --out, scripts/bench_matrix.sh) or byte-stability tests.
  std::string render(TableFormat format) const;

  static std::string fmt(double v, int precision = 3);
  static std::string pct(double fraction, int precision = 1);  ///< 0.082 → "8.2%"

 private:
  std::string render_plain() const;
  std::string render_csv() const;
  std::string render_json() const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard bench banner (figure id + workload description).
void print_banner(const std::string& figure, const std::string& description);

}  // namespace adcc::core
