#include "core/scenario.hpp"

#include <algorithm>
#include <charconv>
#include <numeric>
#include <stdexcept>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/fault.hpp"
#include "core/telemetry.hpp"
#include "kernels/backend.hpp"
#include "memsim/crash.hpp"

namespace adcc::core {

namespace {

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

namespace {

/// One '^'-free crash plan (the links of a double-fault chain are parsed
/// individually and stitched by parse_crash).
std::optional<CrashScenario> parse_crash_link(std::string_view spec);

}  // namespace

CrashScenario parse_crash_or_throw(std::string_view spec) {
  std::optional<CrashScenario> crash = parse_crash(spec);
  if (!crash) {
    throw std::invalid_argument("malformed crash plan '" + std::string(spec) + "'");
  }
  return *crash;
}

std::optional<CrashScenario> parse_crash(std::string_view spec) {
  // Shard-scope prefix ([shard:I: | shards:K:SEED: | coord:]PLAN): stripped
  // before the '^' split, so the scope covers the whole chain; a scoped
  // "none" is rejected (a scope names what a crash destroys).
  CrashScenario::Scope scope = CrashScenario::Scope::kProcess;
  std::size_t shard = 0;
  std::size_t victims = 1;
  std::uint64_t victim_seed = 1;
  {
    const auto colon = spec.find(':');
    const std::string_view head = spec.substr(0, colon);
    if (head == "shard") {
      if (colon == std::string_view::npos) return std::nullopt;
      const std::string_view rest = spec.substr(colon + 1);
      const auto c2 = rest.find(':');
      if (c2 == std::string_view::npos) return std::nullopt;
      const auto idx = parse_u64(rest.substr(0, c2));
      if (!idx) return std::nullopt;
      scope = CrashScenario::Scope::kShard;
      shard = static_cast<std::size_t>(*idx);
      spec = rest.substr(c2 + 1);
    } else if (head == "shards") {
      if (colon == std::string_view::npos) return std::nullopt;
      std::string_view rest = spec.substr(colon + 1);
      const auto c2 = rest.find(':');
      if (c2 == std::string_view::npos) return std::nullopt;
      const auto k = parse_u64(rest.substr(0, c2));
      if (!k || *k == 0) return std::nullopt;
      rest = rest.substr(c2 + 1);
      const auto c3 = rest.find(':');
      if (c3 == std::string_view::npos) return std::nullopt;
      const auto s = parse_u64(rest.substr(0, c3));
      if (!s) return std::nullopt;
      scope = CrashScenario::Scope::kShardSet;
      victims = static_cast<std::size_t>(*k);
      victim_seed = *s;
      spec = rest.substr(c3 + 1);
    } else if (head == "coord") {
      if (colon == std::string_view::npos) return std::nullopt;
      scope = CrashScenario::Scope::kCoordinator;
      spec = spec.substr(colon + 1);
    }
  }

  std::optional<CrashScenario> out;
  // Double-fault chains: HEAD^TAIL^TAIL... — the head fires as usual, each
  // tail is armed before the recovery that follows its predecessor's crash.
  const auto caret = spec.find('^');
  if (caret != std::string_view::npos) {
    auto head = parse_crash_link(spec.substr(0, caret));
    if (!head || head->kind == CrashScenario::Kind::kNone) return std::nullopt;
    std::string_view rest = spec.substr(caret + 1);
    while (true) {
      const auto next = rest.find('^');
      const auto link = parse_crash_link(rest.substr(0, next));
      // Recovery triggers must be mid-unit by construction: a unit-boundary
      // plan has no meaning inside recover().
      if (!link || (link->kind != CrashScenario::Kind::kAtAccess &&
                    link->kind != CrashScenario::Kind::kAtPoint)) {
        return std::nullopt;
      }
      head->then.push_back(*link);
      if (next == std::string_view::npos) break;
      rest = rest.substr(next + 1);
    }
    out = head;
  } else {
    out = parse_crash_link(spec);
  }

  if (out && scope != CrashScenario::Scope::kProcess) {
    if (out->kind == CrashScenario::Kind::kNone) return std::nullopt;
    out->scope = scope;
    out->shard = shard;
    out->victims = victims;
    out->victim_seed = victim_seed;
  }
  return out;
}

namespace {

std::optional<CrashScenario> parse_crash_link(std::string_view spec) {
  CrashScenario c;
  if (spec.empty() || spec == "none") return c;
  const auto colon = spec.find(':');
  const std::string_view head = spec.substr(0, colon);
  const std::string_view arg =
      colon == std::string_view::npos ? std::string_view() : spec.substr(colon + 1);
  if (head == "step") {
    const auto k = parse_u64(arg);
    if (!k || *k == 0) return std::nullopt;
    c.kind = CrashScenario::Kind::kAtStep;
    c.step = static_cast<std::size_t>(*k);
    return c;
  }
  if (head == "random") {
    c.kind = CrashScenario::Kind::kRandom;
    if (colon != std::string_view::npos) {
      const auto s = parse_u64(arg);
      if (!s) return std::nullopt;
      c.seed = *s;
    }
    return c;
  }
  if (head == "repeat") {
    const auto n = parse_u64(arg);
    if (!n || *n == 0) return std::nullopt;
    c.kind = CrashScenario::Kind::kRepeated;
    c.count = static_cast<std::size_t>(*n);
    return c;
  }
  if (head == "access") {
    const auto n = parse_u64(arg);
    if (!n || *n == 0) return std::nullopt;
    c.kind = CrashScenario::Kind::kAtAccess;
    c.access = *n;
    return c;
  }
  if (head == "point") {
    // Crash-point names contain ':' themselves (cg:p_updated), so the
    // occurrence suffix is the last ':'-separated token — and only when it
    // parses as a number with a non-empty name before it.
    if (colon == std::string_view::npos || arg.empty()) return std::nullopt;
    std::string_view name = arg;
    std::uint64_t occurrence = 1;
    const auto last = arg.rfind(':');
    if (last != std::string_view::npos) {
      const auto k = parse_u64(arg.substr(last + 1));
      if (k && last > 0) {
        if (*k == 0) return std::nullopt;
        name = arg.substr(0, last);
        occurrence = *k;
      }
    }
    if (name.empty() || name.front() == ':' || name.back() == ':') return std::nullopt;
    c.kind = CrashScenario::Kind::kAtPoint;
    c.point = std::string(name);
    c.occurrence = occurrence;
    return c;
  }
  if (head == "fuzz") {
    c.kind = CrashScenario::Kind::kFuzz;
    if (colon != std::string_view::npos) {
      const auto s = parse_u64(arg);
      if (!s) return std::nullopt;
      c.seed = *s;
    }
    return c;
  }
  if (head == "flip") {
    // flip:SEED[:BITS] — the seed is mandatory (site, tick and every flipped
    // bit position all derive from it; there is no meaningful default).
    if (colon == std::string_view::npos || arg.empty()) return std::nullopt;
    std::string_view seed_part = arg;
    std::string_view bits_part;
    const auto c2 = arg.find(':');
    if (c2 != std::string_view::npos) {
      seed_part = arg.substr(0, c2);
      bits_part = arg.substr(c2 + 1);
      if (bits_part.find(':') != std::string_view::npos) return std::nullopt;
    }
    const auto s = parse_u64(seed_part);
    if (!s) return std::nullopt;
    c.kind = CrashScenario::Kind::kFlip;
    c.seed = *s;
    if (c2 != std::string_view::npos) {
      const auto b = parse_u64(bits_part);
      if (!b || *b == 0) return std::nullopt;
      c.bits = *b;
    }
    return c;
  }
  return std::nullopt;
}

std::string crash_link_name(const CrashScenario& crash) {
  switch (crash.kind) {
    case CrashScenario::Kind::kNone: return "none";
    case CrashScenario::Kind::kAtStep: return "step:" + std::to_string(crash.step);
    case CrashScenario::Kind::kRandom: return "random:" + std::to_string(crash.seed);
    case CrashScenario::Kind::kRepeated: return "repeat:" + std::to_string(crash.count);
    case CrashScenario::Kind::kAtAccess: return "access:" + std::to_string(crash.access);
    case CrashScenario::Kind::kAtPoint: {
      // Built up incrementally: the `"literal" + str + (cond ? ...)` spelling
      // trips GCC 12's -Wrestrict false positive (PR 105651).
      std::string out = "point:";
      out += crash.point;
      if (crash.occurrence != 1) {
        out += ':';
        out += std::to_string(crash.occurrence);
      }
      return out;
    }
    case CrashScenario::Kind::kFuzz: return "fuzz:" + std::to_string(crash.seed);
    case CrashScenario::Kind::kFlip: {
      std::string out = "flip:";
      out += std::to_string(crash.seed);
      if (crash.bits != 1) {
        out += ':';
        out += std::to_string(crash.bits);
      }
      return out;
    }
  }
  ADCC_CHECK(false, "unknown crash kind");
}

}  // namespace

std::string crash_name(const CrashScenario& crash) {
  std::string out;
  switch (crash.scope) {
    case CrashScenario::Scope::kProcess:
      break;
    case CrashScenario::Scope::kShard:
      out += "shard:";
      out += std::to_string(crash.shard);
      out += ':';
      break;
    case CrashScenario::Scope::kShardSet:
      out += "shards:";
      out += std::to_string(crash.victims);
      out += ':';
      out += std::to_string(crash.victim_seed);
      out += ':';
      break;
    case CrashScenario::Scope::kCoordinator:
      out += "coord:";
      break;
  }
  out += crash_link_name(crash);
  for (const CrashScenario& link : crash.then) {
    out += '^';
    out += crash_link_name(link);
  }
  return out;
}

bool crash_is_mid_unit(const CrashScenario& crash) {
  return crash.kind == CrashScenario::Kind::kAtAccess ||
         crash.kind == CrashScenario::Kind::kAtPoint ||
         crash.kind == CrashScenario::Kind::kFuzz ||
         crash.kind == CrashScenario::Kind::kFlip;
}

std::vector<std::size_t> crash_units(const CrashScenario& crash, std::size_t work_units) {
  std::vector<std::size_t> out;
  if (work_units == 0 || crash_is_mid_unit(crash)) return out;
  switch (crash.kind) {
    case CrashScenario::Kind::kNone:
      break;
    case CrashScenario::Kind::kAtStep:
      out.push_back(std::clamp<std::size_t>(crash.step, 1, work_units));
      break;
    case CrashScenario::Kind::kRandom:
      out.push_back(static_cast<std::size_t>(splitmix64(crash.seed) % work_units) + 1);
      break;
    case CrashScenario::Kind::kRepeated: {
      // Evenly spaced boundaries, strictly increasing (tiny runs may yield
      // fewer crashes than requested).
      for (std::size_t i = 1; i <= crash.count; ++i) {
        const std::size_t unit =
            std::max<std::size_t>(1, work_units * i / (crash.count + 1));
        if (out.empty() || unit > out.back()) out.push_back(unit);
      }
      break;
    }
    default:
      break;
  }
  return out;
}

std::vector<std::size_t> crash_victims(const CrashScenario& crash, std::size_t shard_count) {
  std::vector<std::size_t> out;
  if (shard_count == 0) return out;
  if (crash.scope == CrashScenario::Scope::kShard) {
    out.push_back(std::min(crash.shard, shard_count - 1));
    return out;
  }
  if (crash.scope != CrashScenario::Scope::kShardSet) return out;
  // Seeded Fisher-Yates prefix: deterministic in (SEED, N), so the same deck
  // cell kills the same victim set on every repetition and every sweep job.
  const std::size_t k = std::min(crash.victims, shard_count);
  std::vector<std::size_t> idx(shard_count);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::uint64_t s = crash.victim_seed;
  for (std::size_t i = 0; i < k; ++i) {
    s = splitmix64(s);
    const std::size_t j = i + static_cast<std::size_t>(s % (shard_count - i));
    std::swap(idx[i], idx[j]);
  }
  out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(out.begin(), out.end());
  return out;
}

CrashScope resolve_crash_scope(const CrashScenario& crash, std::size_t shard_count) {
  CrashScope scope;
  if (shard_count <= 1) return scope;  // Unsharded: every scope is a process death.
  switch (crash.scope) {
    case CrashScenario::Scope::kProcess:
      break;
    case CrashScenario::Scope::kShard:
    case CrashScenario::Scope::kShardSet:
      scope.kind = CrashScope::Kind::kShards;
      scope.victims = crash_victims(crash, shard_count);
      break;
    case CrashScenario::Scope::kCoordinator:
      scope.kind = CrashScope::Kind::kCoordinator;
      break;
  }
  return scope;
}

ScenarioRunner::ScenarioRunner(Workload& workload, ScenarioConfig cfg)
    : workload_(workload), cfg_(std::move(cfg)) {
  ADCC_CHECK(cfg_.reps >= 1, "need at least one repetition");
  for (const CrashScenario& link : cfg_.crash.then) {
    ADCC_CHECK(link.kind == CrashScenario::Kind::kAtAccess ||
                   link.kind == CrashScenario::Kind::kAtPoint,
               "double-fault chain links must be access/point plans");
    ADCC_CHECK(link.then.empty(), "double-fault chains do not nest");
  }
}

ScenarioRunner::~ScenarioRunner() = default;

void ScenarioRunner::ensure_env() {
  const bool crashing = cfg_.crash.kind != CrashScenario::Kind::kNone;
  if (env_ && !crashing) {
    // Crash-free repetitions reuse one substrate; rewinding the arena avoids
    // paying its zero-fill again (the fig benches' region->reset() idiom).
    if (env_->region) env_->region->reset();
    return;
  }
  // Crash repetitions rebuild the substrate so stale checkpoints / undo logs
  // from the previous repetition cannot be restored by mistake. Destroy the
  // old env first: a FileBackend removes its slot files and (then-empty)
  // scratch directory in its destructor, which would delete the replacement
  // backend's freshly created directory out from under it.
  env_.reset();
  env_ = std::make_unique<ModeEnv>(make_env(cfg_.mode, cfg_.env));
}

std::uint64_t pick_fuzz_access(std::span<const std::uint64_t> boundaries,
                               std::uint64_t seed) {
  ADCC_CHECK(boundaries.size() >= 2, "fuzz crash plan needs at least one work unit");
  ADCC_CHECK(boundaries.back() > boundaries.front(),
             "fuzz crash plan needs a fault surface that announces accesses");
  const std::size_t units = boundaries.size() - 1;
  const std::size_t u = static_cast<std::size_t>(splitmix64(seed) % units);  // 0-based.
  const std::uint64_t lo = boundaries[u];
  const std::uint64_t hi = boundaries[u + 1];
  // Land in (lo, hi]; a unit announcing nothing degenerates to the first
  // access of the next announcing unit.
  const std::uint64_t span = hi > lo ? hi - lo : 1;
  return lo + 1 + splitmix64(seed ^ 0x9E3779B97F4A7C15ULL) % span;
}

std::vector<std::uint64_t> probe_fuzz_boundaries(Workload& workload, Mode mode,
                                                 const ModeEnvConfig& env_cfg) {
  ModeEnv env = make_env(mode, env_cfg);
  workload.prepare(env);
  FaultSurface* fault = workload.fault();
  ADCC_CHECK(fault != nullptr, "fuzz probes need a workload with a fault surface");
  std::vector<std::uint64_t> at_boundary;
  at_boundary.push_back(fault->access_count());
  while (workload.run_step()) {
    workload.make_durable();
    at_boundary.push_back(fault->access_count());
  }
  return at_boundary;
}

void ScenarioRunner::plan_fuzz(FaultSurface& fault) {
  // Untimed probe repetition: run crash-free, recording the cumulative access
  // count at every unit boundary, then pick a seeded random unit and a seeded
  // random access inside it. Access announcements are deterministic, so the
  // resulting plan is a pure function of (seed, workload, mode) — which is why
  // sweep decks can hand a shared pre-measured probe in via
  // cfg.fuzz_boundaries instead of paying this run per fuzz seed.
  std::vector<std::uint64_t> at_boundary;
  at_boundary.push_back(fault.access_count());
  while (workload_.run_step()) {
    workload_.make_durable();
    at_boundary.push_back(fault.access_count());
  }
  fuzz_access_ = pick_fuzz_access(at_boundary, cfg_.crash.seed);
}

void ScenarioRunner::arm_fault(FaultSurface& fault) {
  switch (cfg_.crash.kind) {
    case CrashScenario::Kind::kAtAccess:
      fault.arm_at_access(cfg_.crash.access);
      break;
    case CrashScenario::Kind::kAtPoint:
      fault.arm_at_point(cfg_.crash.point, cfg_.crash.occurrence);
      break;
    case CrashScenario::Kind::kFuzz:
      ADCC_CHECK(fuzz_access_ > 0, "fuzz plan not probed");
      fault.arm_at_access(fuzz_access_);
      break;
    case CrashScenario::Kind::kFlip:
      // Same seeded fuzz-style tick; the flip fires silently at a corrupt()
      // site once the access threshold is reached.
      ADCC_CHECK(fuzz_access_ > 0, "flip plan not probed");
      fault.arm_flip(fuzz_access_, cfg_.crash.seed, cfg_.crash.bits);
      break;
    default:
      break;
  }
}

WorkloadRecovery ScenarioRunner::recover_with_chain(ScenarioResult& result,
                                                    std::size_t& chain_pos) {
  // Crash-during-recovery double faults: arm the next chain link before each
  // recovery attempt; when it fires inside recover(), account the crash,
  // re-inject, and retry (with the following link, if any).
  FaultSurface* fault = workload_.fault();
  for (;;) {
    const bool armed_tail = fault != nullptr && chain_pos < cfg_.crash.then.size();
    if (armed_tail) {
      const CrashScenario& link = cfg_.crash.then[chain_pos];
      if (link.kind == CrashScenario::Kind::kAtAccess) {
        // Relative: N more announced accesses into this recovery.
        fault->arm_at_access(fault->access_count() + link.access);
      } else {
        fault->arm_at_point(link.point, link.occurrence);
      }
    }
    try {
      WorkloadRecovery rec = workload_.recover();
      // A link whose trigger is not on this mode's recovery path never fires;
      // disarm it so it cannot leak into the resumed execution.
      if (armed_tail && fault->armed()) fault->disarm();
      return rec;
    } catch (const memsim::CrashException& e) {
      ++chain_pos;
      ++result.crashes;
      result.crash_access = e.access_count();
      result.crash_site = e.point();
      workload_.inject_crash();
    }
  }
}

double ScenarioRunner::run_once(ScenarioResult& result) {
  // Bind telemetry and the kernel backend for this repetition (RAII, restores
  // on every exit path); engine threads propagate the bindings themselves.
  // Verify runs after run_once returns — outside the bind — so reference
  // recomputation is always serial.
  const TelemetryBind telemetry_bind(cfg_.telemetry, cfg_.telemetry_label);
  const KernelBackendBind backend_bind(cfg_.backend);
  ensure_env();
  workload_.prepare(*env_);

  const bool mid_unit = crash_is_mid_unit(cfg_.crash);
  FaultSurface* fault = workload_.fault();
  if (mid_unit || !cfg_.crash.then.empty()) {
    ADCC_CHECK(fault != nullptr,
               "mid-unit crash plans (access/point/fuzz/flip) and double-fault chains "
               "need a workload with a fault surface");
  }
  if (mid_unit) {
    const bool seeded_tick = cfg_.crash.kind == CrashScenario::Kind::kFuzz ||
                             cfg_.crash.kind == CrashScenario::Kind::kFlip;
    if (seeded_tick && fuzz_access_ == 0) {
      if (cfg_.fuzz_boundaries && cfg_.fuzz_boundaries->size() >= 2) {
        // Shared probe: a sweep deck measured the unit boundaries once for
        // this cell shape; every fuzz seed reuses them.
        fuzz_access_ = pick_fuzz_access(*cfg_.fuzz_boundaries, cfg_.crash.seed);
      } else {
        plan_fuzz(*fault);
        // The probe consumed this prepared run; rebuild substrate + run state
        // so the measured repetition starts clean.
        env_.reset();
        ensure_env();
        workload_.prepare(*env_);
        fault = workload_.fault();
      }
    }
    arm_fault(*fault);
  }

  // Shard-scoped plans resolve against the prepared group's shard count; the
  // scope holds for every crash of this run (chain links re-kill it too).
  workload_.set_crash_scope(resolve_crash_scope(cfg_.crash, workload_.shard_count()));

  const std::size_t units = workload_.work_units();
  const std::vector<std::size_t> targets = crash_units(cfg_.crash, units);
  std::size_t next_target = 0;

  result.work_units = units;
  result.crashes = 0;
  result.crash_unit = 0;
  result.restart_unit = 0;
  result.crash_access = 0;
  result.crash_site.clear();
  result.recomputation = {};

  double first_crash_elapsed = 0.0;
  std::size_t first_crash_unit = 0;
  std::size_t chain_pos = 0;  // Double-fault chain links fired so far.

  // Silent-flip accounting: the flip fires without raising, so the runner
  // polls FlipStats each iteration to notice the injection, remember its unit
  // (the latency baseline), and arm the first ^TAIL link relative to the
  // injection rather than to a recovery that may never happen.
  const bool flip_plan = cfg_.crash.kind == CrashScenario::Kind::kFlip;
  std::uint64_t flips_seen = 0;
  std::uint64_t detects_seen = 0;
  std::size_t flip_inject_unit = 0;

  // Reset just before the timed region: fuzz probes and prepare() above must
  // not pollute the totals, and after the last repetition the registry holds
  // exactly that rep's stage breakdown (what the sweep columns report).
  if (cfg_.telemetry != nullptr) cfg_.telemetry->reset();
  Timer total;
  for (;;) {
    const std::size_t before = workload_.units_done();
    bool crashed_mid = false;
    bool stepped = false;
    bool finished = false;
    bool detected_by_throw = false;
    std::size_t throw_detect_unit = 0;
    try {
      // A unit starting while an asynchronous checkpoint drain is still in
      // flight overlaps the device window with compute — the async engine's
      // whole win; account its execution time separately.
      const bool overlapped = workload_.durability_pending();
      Timer step;
      stepped = workload_.run_step();
      if (overlapped) result.recomputation.overlap_seconds += step.elapsed();
      // The durability action shares the fault surface since the chunk engine
      // (point:ckpt_chunk fires between chunk persists inside save; an async
      // drain's ckpt_drain crash surfaces at the join the next save performs),
      // so it can raise the same CrashException — a crash mid-checkpoint,
      // leaving the slot torn and the marker uncommitted.
      if (stepped) {
        workload_.make_durable();
      } else {
        // The run may not end with progress still draining: join the final
        // async save inside the timed region (a crash in that drain surfaces
        // here and is handled like any crash-mid-checkpoint).
        finished = true;
        workload_.wait_durable();
      }
    } catch (const memsim::CrashException& e) {
      // A FaultSurface / MemorySimulator trigger fired inside the unit. The
      // surface is one-shot, so recovery's re-execution cannot re-fire it.
      crashed_mid = true;
      result.crash_access = e.access_count();
      result.crash_site = e.point();
    } catch (const SilentFaultDetected& e) {
      // A workload checksum/invariant caught an injected flip it could not
      // repair in place: detected-and-rolled-back. The runner drives the same
      // inject/recover/resume path as a fail-stop crash, and the exception
      // carries the detection unit for the latency accounting below.
      crashed_mid = true;
      detected_by_throw = true;
      throw_detect_unit = e.detect_unit();
      result.crash_access = e.access_count();
      result.crash_site = e.check();
    }

    if (flip_plan && fault != nullptr) {
      const FlipStats fs = fault->flip_stats();
      if (fs.flips > flips_seen) {
        flips_seen = fs.flips;
        result.recomputation.flips = fs.flips;
        // The flip landed inside the unit this iteration executed (or its
        // durability action) — unit `before + 1` either way.
        flip_inject_unit = before + 1;
        // flip^TAIL composition: the tail is a crash during the post-flip
        // execution, armed the moment the flip lands. chain_pos advances so a
        // later detection rollback does not re-arm the same link.
        if (chain_pos == 0 && !cfg_.crash.then.empty()) {
          const CrashScenario& link = cfg_.crash.then[0];
          if (link.kind == CrashScenario::Kind::kAtAccess) {
            fault->arm_at_access(fault->access_count() + link.access);
          } else {
            fault->arm_at_point(link.point, link.occurrence);
          }
          chain_pos = 1;
        }
      }
      if (detected_by_throw) {
        ++result.recomputation.flips_detected;
        result.recomputation.detect_latency_units =
            throw_detect_unit > flip_inject_unit ? throw_detect_unit - flip_inject_unit
                                                 : 0;
      } else if (fs.detected > detects_seen) {
        // Corrected-in-place detections (ABFT repair) never throw; they show
        // up in the polled stats with the run still on its happy path.
        detects_seen = fs.detected;
        result.recomputation.flips_detected = fs.detected;
        result.recomputation.flips_corrected = fs.corrected;
        const std::size_t now_unit = workload_.units_done();
        result.recomputation.detect_latency_units =
            now_unit > flip_inject_unit ? now_unit - flip_inject_unit : 0;
      }
    }

    std::size_t crash_unit = 0;
    bool partial = false;
    if (crashed_mid) {
      crash_unit = workload_.units_done();
      // End-of-unit crash points may fire after the workload advanced its
      // cursor; only a crash before the advance interrupted a unit mid-flight
      // (a crash inside make_durable interrupted the *save*, not the unit —
      // and a crash in the final wait_durable interrupted a *drain*, with the
      // cursor legitimately unchanged).
      partial = !finished && workload_.units_done() == before;
    } else {
      if (!stepped) break;
      if (next_target >= targets.size() ||
          workload_.units_done() < targets[next_target]) {
        continue;
      }
      ++next_target;
      crash_unit = workload_.units_done();
    }

    if (result.crashes == 0) {
      first_crash_elapsed = total.elapsed();
      first_crash_unit = crash_unit;
    }
    if (cfg_.telemetry != nullptr) cfg_.telemetry->instant("crash");
    workload_.inject_crash();

    Timer detect;
    const WorkloadRecovery rec = recover_with_chain(result, chain_pos);
    const double recover_seconds = detect.elapsed();
    if (cfg_.telemetry != nullptr) cfg_.telemetry->instant("recovered");
    // Checksum-classifying recoveries recompute/repair units inside recover();
    // that work is resume time, not detection time (the fig3/fig7 split).
    result.recomputation.detect_seconds +=
        std::max(0.0, recover_seconds - rec.repair_seconds);
    result.recomputation.resume_seconds += std::min(rec.repair_seconds, recover_seconds);
    ADCC_CHECK(rec.restart_unit >= 1 && rec.restart_unit <= crash_unit + 1,
               "workload recovery restarted outside [1, crash_unit + 1]");
    ADCC_CHECK(rec.units_lost >= crash_unit + 1 - rec.restart_unit,
               "workload recovery units_lost below the restart gap");
    ADCC_CHECK(workload_.units_done() + 1 == rec.restart_unit,
               "workload cursor does not match reported restart_unit");

    // Resume: re-execute the destroyed units (targets are strictly increasing,
    // so no boundary target re-fires below crash_unit). A mid-unit crash also
    // re-executes the interrupted unit — the paper counts it as lost work.
    // While a fail-stop trigger is still armed (a flip^TAIL link armed at
    // injection, with the flip's detection rolling back before the tail
    // fired), bail to the outer loop instead: its try/catch owns crash
    // handling, and this bare loop must never have one fire inside it.
    const std::size_t resume_to = crash_unit + (partial ? 1 : 0);
    Timer resume;
    while (workload_.units_done() < resume_to && !(fault != nullptr && fault->armed()) &&
           workload_.run_step()) {
      workload_.make_durable();
    }
    result.recomputation.resume_seconds += resume.elapsed();
    result.recomputation.units_lost += rec.units_lost;
    result.recomputation.units_corrected += rec.units_corrected;
    result.recomputation.torn_chunks += rec.torn_chunks;
    result.recomputation.salvaged_chunks += rec.salvaged_chunks;
    result.recomputation.shards_restored += rec.shards_restored;
    result.recomputation.epochs_rolled_back += rec.epochs_rolled_back;
    result.recomputation.units_replayed += rec.units_replayed;
    result.recomputation.halo_bytes += rec.halo_bytes;
    if (partial) ++result.recomputation.partial_units;
    ++result.crashes;
    result.crash_unit = crash_unit;
    result.restart_unit = rec.restart_unit;
  }
  const double elapsed = total.elapsed();
  if (first_crash_unit > 0) {
    result.recomputation.unit_seconds =
        first_crash_elapsed / static_cast<double>(first_crash_unit);
  }
  ADCC_CHECK(workload_.units_done() == units, "run finished short of work_units");
  return elapsed;
}

ScenarioResult ScenarioRunner::run() {
  ScenarioResult result;
  result.mode = cfg_.mode;
  result.crash = cfg_.crash;
  if (cfg_.warmup) {
    ScenarioResult discard = result;
    run_once(discard);
  }
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(cfg_.reps));
  for (int r = 0; r < cfg_.reps; ++r) times.push_back(run_once(result));
  result.seconds = median(std::move(times));
  result.time = normalize(result.seconds, cfg_.native_seconds);
  if (cfg_.verify) {
    result.verify_ran = true;
    result.verified = workload_.verify();
    // An in-place "correction" that still fails end-of-run verify repaired the
    // wrong thing: the ABFT literature's miscorrection, accounted honestly.
    if (!result.verified) {
      result.recomputation.flips_miscorrected = result.recomputation.flips_corrected;
    }
  }
  return result;
}

ScenarioResult run_scenario(Workload& workload, const ScenarioConfig& cfg) {
  return ScenarioRunner(workload, cfg).run();
}

}  // namespace adcc::core
