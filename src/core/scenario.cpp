#include "core/scenario.hpp"

#include <algorithm>
#include <charconv>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"

namespace adcc::core {

namespace {

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::optional<CrashScenario> parse_crash(std::string_view spec) {
  CrashScenario c;
  if (spec.empty() || spec == "none") return c;
  const auto colon = spec.find(':');
  const std::string_view head = spec.substr(0, colon);
  const std::string_view arg =
      colon == std::string_view::npos ? std::string_view() : spec.substr(colon + 1);
  if (head == "step") {
    const auto k = parse_u64(arg);
    if (!k || *k == 0) return std::nullopt;
    c.kind = CrashScenario::Kind::kAtStep;
    c.step = static_cast<std::size_t>(*k);
    return c;
  }
  if (head == "random") {
    c.kind = CrashScenario::Kind::kRandom;
    if (colon != std::string_view::npos) {
      const auto s = parse_u64(arg);
      if (!s) return std::nullopt;
      c.seed = *s;
    }
    return c;
  }
  if (head == "repeat") {
    const auto n = parse_u64(arg);
    if (!n || *n == 0) return std::nullopt;
    c.kind = CrashScenario::Kind::kRepeated;
    c.count = static_cast<std::size_t>(*n);
    return c;
  }
  return std::nullopt;
}

std::string crash_name(const CrashScenario& crash) {
  switch (crash.kind) {
    case CrashScenario::Kind::kNone: return "none";
    case CrashScenario::Kind::kAtStep: return "step:" + std::to_string(crash.step);
    case CrashScenario::Kind::kRandom: return "random:" + std::to_string(crash.seed);
    case CrashScenario::Kind::kRepeated: return "repeat:" + std::to_string(crash.count);
  }
  ADCC_CHECK(false, "unknown crash kind");
}

std::vector<std::size_t> crash_units(const CrashScenario& crash, std::size_t work_units) {
  std::vector<std::size_t> out;
  if (work_units == 0) return out;
  switch (crash.kind) {
    case CrashScenario::Kind::kNone:
      break;
    case CrashScenario::Kind::kAtStep:
      out.push_back(std::clamp<std::size_t>(crash.step, 1, work_units));
      break;
    case CrashScenario::Kind::kRandom:
      out.push_back(static_cast<std::size_t>(splitmix64(crash.seed) % work_units) + 1);
      break;
    case CrashScenario::Kind::kRepeated: {
      // Evenly spaced boundaries, strictly increasing (tiny runs may yield
      // fewer crashes than requested).
      for (std::size_t i = 1; i <= crash.count; ++i) {
        const std::size_t unit =
            std::max<std::size_t>(1, work_units * i / (crash.count + 1));
        if (out.empty() || unit > out.back()) out.push_back(unit);
      }
      break;
    }
  }
  return out;
}

ScenarioRunner::ScenarioRunner(Workload& workload, ScenarioConfig cfg)
    : workload_(workload), cfg_(cfg) {
  ADCC_CHECK(cfg_.reps >= 1, "need at least one repetition");
}

ScenarioRunner::~ScenarioRunner() = default;

void ScenarioRunner::ensure_env() {
  const bool crashing = cfg_.crash.kind != CrashScenario::Kind::kNone;
  if (env_ && !crashing) {
    // Crash-free repetitions reuse one substrate; rewinding the arena avoids
    // paying its zero-fill again (the fig benches' region->reset() idiom).
    if (env_->region) env_->region->reset();
    return;
  }
  // Crash repetitions rebuild the substrate so stale checkpoints / undo logs
  // from the previous repetition cannot be restored by mistake.
  env_ = std::make_unique<ModeEnv>(make_env(cfg_.mode, cfg_.env));
}

double ScenarioRunner::run_once(ScenarioResult& result) {
  ensure_env();
  workload_.prepare(*env_);
  const std::size_t units = workload_.work_units();
  const std::vector<std::size_t> targets = crash_units(cfg_.crash, units);
  std::size_t next_target = 0;

  result.work_units = units;
  result.crashes = 0;
  result.crash_unit = 0;
  result.restart_unit = 0;
  result.recomputation = {};

  double first_crash_elapsed = 0.0;
  std::size_t first_crash_unit = 0;

  Timer total;
  while (workload_.run_step()) {
    workload_.make_durable();
    if (next_target >= targets.size() || workload_.units_done() < targets[next_target]) {
      continue;
    }
    ++next_target;
    const std::size_t crash_unit = workload_.units_done();
    if (result.crashes == 0) {
      first_crash_elapsed = total.elapsed();
      first_crash_unit = crash_unit;
    }
    workload_.inject_crash();

    Timer detect;
    const WorkloadRecovery rec = workload_.recover();
    result.recomputation.detect_seconds += detect.elapsed();
    ADCC_CHECK(rec.restart_unit >= 1 && rec.restart_unit <= crash_unit + 1,
               "workload recovery restarted outside [1, crash_unit + 1]");
    ADCC_CHECK(rec.units_lost == crash_unit + 1 - rec.restart_unit,
               "workload recovery units_lost inconsistent with restart_unit");
    ADCC_CHECK(workload_.units_done() + 1 == rec.restart_unit,
               "workload cursor does not match reported restart_unit");

    // Resume: re-execute the destroyed units (targets are strictly increasing,
    // so no target re-fires below crash_unit).
    Timer resume;
    while (workload_.units_done() < crash_unit && workload_.run_step()) {
      workload_.make_durable();
    }
    result.recomputation.resume_seconds += resume.elapsed();
    result.recomputation.units_lost += rec.units_lost;
    ++result.crashes;
    result.crash_unit = crash_unit;
    result.restart_unit = rec.restart_unit;
  }
  const double elapsed = total.elapsed();
  if (first_crash_unit > 0) {
    result.recomputation.unit_seconds =
        first_crash_elapsed / static_cast<double>(first_crash_unit);
  }
  ADCC_CHECK(workload_.units_done() == units, "run finished short of work_units");
  return elapsed;
}

ScenarioResult ScenarioRunner::run() {
  ScenarioResult result;
  result.mode = cfg_.mode;
  result.crash = cfg_.crash;
  if (cfg_.warmup) {
    ScenarioResult discard = result;
    run_once(discard);
  }
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(cfg_.reps));
  for (int r = 0; r < cfg_.reps; ++r) times.push_back(run_once(result));
  result.seconds = median(std::move(times));
  result.time = normalize(result.seconds, cfg_.native_seconds);
  if (cfg_.verify) {
    result.verify_ran = true;
    result.verified = workload_.verify();
  }
  return result;
}

ScenarioResult run_scenario(Workload& workload, const ScenarioConfig& cfg) {
  return ScenarioRunner(workload, cfg).run();
}

}  // namespace adcc::core
