// GroupCoordinator — the global-snapshot commit protocol of a multi-shard
// execution group (core::ShardGroup).
//
// Each shard owns a private CheckpointSet (own backend, own double-buffered
// slots). A shard save alone is NOT group-durable: the group's restart point
// is the *global epoch marker*, a tiny checkpoint of its own — written on the
// group's main-env backend — recording the epoch number plus, per shard, the
// exact slot version that holds that shard's epoch image. The commit order is
// strict:
//
//     for each shard (in the epoch's drain order):
//         join the shard's drain            -> its slot image is durable
//         record its committed slot version
//         [crash site "shard_join"]
//     [crash site "global_commit"]
//     save the marker checkpoint            -> chunk sites "coord_commit"
//
// so the marker can never reference an uncommitted shard version, and a crash
// anywhere before the marker's own commit leaves the previous global epoch as
// the group's restart point (the shard images newer than the marker survive in
// the other slot of each shard's double buffer — CheckpointSet::restore_version
// is the rollback primitive that retrieves the marker's exact version).
//
// The coordinator's in-memory epoch/version table is volatile by design:
// inject_crash clobbers it and recovery must re-read the durable marker
// (reload()), which also realigns the table after a commit the crash
// interrupted half-way.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "checkpoint/checkpoint_set.hpp"

namespace adcc::core {

class FaultSurface;

/// Crash sites of the global commit protocol (crash-plan spellings
/// coord:point:shard_join[:K], coord:point:global_commit,
/// coord:point:coord_commit[:K]).
inline constexpr const char* kPointShardJoin = "shard_join";
inline constexpr const char* kPointGlobalCommit = "global_commit";
inline constexpr const char* kPointCoordCommit = "coord_commit";

/// Owns the global epoch marker and runs the join-then-commit sequence (see
/// the file comment for the full protocol and its crash sites).
class GroupCoordinator {
 public:
  /// `backend` hosts the marker checkpoint (the group's main-env backend —
  /// shard data lives on the per-shard backends, never here) and must be
  /// configured for synchronous saves. `fault` (may be null) receives the
  /// protocol's crash sites; marker chunk persists are announced as
  /// kPointCoordCommit.
  GroupCoordinator(checkpoint::Backend& backend, FaultSurface* fault, std::size_t shards);

  /// The durable restart point: last fully committed epoch (0 = none) and the
  /// per-shard slot versions that hold it.
  struct Marker {
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> versions;
  };

  /// Commits `epoch` as the group's restart point: joins every shard's
  /// outstanding drain in `order` (the epoch's rotating drain schedule),
  /// records the committed slot versions, then saves the marker. Throws (a
  /// crash site firing, a medium failure) leave the previous marker committed;
  /// call reload() during recovery to realign the in-memory table.
  void commit_epoch(std::uint64_t epoch, std::span<const std::size_t> order,
                    const std::vector<std::unique_ptr<checkpoint::CheckpointSet>>& shard_ckpts);

  /// Restores the newest committed marker into the in-memory table and
  /// returns it; epoch 0 (nothing ever committed) zeroes the table. Fires the
  /// translated chunk-load sites through the fault surface, so crash-during-
  /// recovery plans reach the marker load too.
  Marker reload();

  /// Power-failure emulation: the volatile epoch/version table dies.
  void clobber();

  /// Torn marker chunks classified by the last reload() (an interrupted
  /// global commit's evidence).
  std::size_t last_restore_torn() const { return marker_.last_restore().torn_chunks; }

  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t shard_version(std::size_t i) const { return versions_[i]; }
  std::size_t shards() const { return versions_.size(); }

 private:
  FaultSurface* fault_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> versions_;
  checkpoint::CheckpointSet marker_;
};

}  // namespace adcc::core
