// FaultSurface — the fault-injection engine threading memsim's CrashScheduler
// through the Workload API, so ScenarioRunner can land crashes *inside* a work
// unit (the paper's two crash-emulator trigger modes: after a named statement,
// and after N memory accesses), not just at unit boundaries.
//
// Two backings share one arming interface:
//
//  * simulator-backed — a workload that executes under a memsim::MemorySimulator
//    (the *CrashConsistent classes) binds its simulator; arming forwards to
//    sim->scheduler() and the simulator's own per-line access accounting raises
//    memsim::CrashException mid-kernel exactly as it always has.
//
//  * software-counted — a native-speed workload adapter owns an unbound
//    surface and instruments its run_step engines with tick(accesses) /
//    point(name) calls at sub-unit sites. The surface drives a private
//    CrashScheduler and throws the same memsim::CrashException when the armed
//    trigger fires, so ScenarioRunner handles both backings identically.
//
// Triggers are one-shot: the surface disarms itself as the exception is thrown
// (mirroring MemorySimulator::crash + reset_after_crash), so recovery's
// re-execution of the crashed unit cannot re-fire the same trigger.
//
// Beyond fail-stop crashes the surface also hosts *silent* faults (the flip:
// crash family): arm_flip schedules a seeded XOR bit-flip that the corrupt()
// instrumentation hook lands inside the workload's tracked state WITHOUT
// raising — execution continues, and detection must come from the workload's
// own checksums/invariants (or not at all: an honest silent miss caught only
// by end-of-run verify()). Flip firings and detections are recorded in
// FlipStats for the runner's detection-latency accounting.
//
// The software-counted backing is internally synchronized: with asynchronous
// checkpointing the durability engine's drain thread fires "ckpt_drain" points
// through this surface while the workload's own thread keeps ticking the next
// unit, so counter/scheduler state is guarded by a mutex (uncontended in the
// synchronous paths — ticks are per-sub-statement, not per-element).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>

#include "memsim/crash.hpp"

namespace adcc::memsim {
class MemorySimulator;
}

namespace adcc::core {

/// Thrown by a workload's detection check (not by the surface itself) when an
/// armed silent flip is caught by a checksum/invariant that cannot repair it
/// in place: the runner accounts the detection and drives the same
/// inject_crash / recover / resume path as a fail-stop crash
/// (detected-and-rolled-back).
class SilentFaultDetected : public std::runtime_error {
 public:
  SilentFaultDetected(std::string check, std::size_t detect_unit, std::uint64_t access)
      : std::runtime_error("silent fault detected by " + check),
        check_(std::move(check)),
        detect_unit_(detect_unit),
        access_(access) {}

  /// The invariant/checksum check that caught the corruption.
  const std::string& check() const { return check_; }
  /// The 1-based work unit whose check fired (the detection point, in units).
  std::size_t detect_unit() const { return detect_unit_; }
  /// Announced accesses when the check fired.
  std::uint64_t access_count() const { return access_; }

 private:
  std::string check_;
  std::size_t detect_unit_ = 0;
  std::uint64_t access_ = 0;
};

/// Silent-fault accounting: what a flip: arming did and how the workload's
/// defenses responded. Monotonic within one prepared run (reset_counter
/// clears it); read by ScenarioRunner's per-iteration poll.
struct FlipStats {
  std::uint64_t flips = 0;          ///< Corrupt events fired (one-shot: 0 or 1).
  std::uint64_t bits = 0;           ///< Bit positions XOR-flipped by the event.
  std::uint64_t inject_access = 0;  ///< Announced accesses when the flip landed.
  std::string site;                 ///< corrupt() site name that hosted it.
  std::uint64_t detected = 0;       ///< Checks that caught it (report_detected).
  std::uint64_t corrected = 0;      ///< ... and repaired it in place (ABFT).
};

/// The fault-injection engine: one-shot fail-stop triggers (tick/point) plus
/// silent-corruption flips (arm_flip/corrupt), shared by the workload thread
/// and the async drain thread.
class FaultSurface {
 public:
  /// Binds to (or, with nullptr, unbinds from) an external simulator. While
  /// bound, arming forwards to sim->scheduler() and tick/point are no-ops —
  /// the simulator already announces every access itself.
  void bind(memsim::MemorySimulator* sim);
  memsim::MemorySimulator* sim() const { return sim_; }

  // ---- Arming (ScenarioRunner side) ---------------------------------------

  /// Crash once the access count reaches `n` (fires on access #n).
  void arm_at_access(std::uint64_t n);

  /// Crash at the `occurrence`-th (1-based) hit of point(`name`).
  void arm_at_point(std::string name, std::uint64_t occurrence = 1);

  /// Arms a silent flip: once the announced-access count reaches `at_access`,
  /// a seed-chosen one of the next few corrupt() calls XOR-flips `bits`
  /// seeded bit positions inside its span — without raising. One-shot and
  /// independent of the crash scheduler, so a flip head can compose with an
  /// armed ^TAIL crash. The seed picks the hosting site (a small seeded skip
  /// over eligible corrupt() calls) and every flipped bit position, so the
  /// whole event is a pure function of (seed, workload shape, mode).
  void arm_flip(std::uint64_t at_access, std::uint64_t seed, std::uint64_t bits = 1);

  void disarm();
  bool armed() const;

  /// True while a flip is armed or after it fired: the window in which the
  /// workload's detection checks must run. Lock-free (one relaxed atomic
  /// load), so hot run_step paths can gate their checks on it for free.
  bool flip_active() const {
    return flip_armed_.load(std::memory_order_relaxed) ||
           flip_fired_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the flip accounting (copy: the workload thread may be
  /// mutating it through corrupt()/report_detected()).
  FlipStats flip_stats() const;

  /// Records that a workload check caught the injected corruption;
  /// corrected = true when the check repaired it in place (ABFT correction)
  /// instead of forcing a rollback. Checks that instead throw
  /// SilentFaultDetected must NOT also call this — the runner accounts the
  /// thrown path itself.
  void report_detected(bool corrected);

  /// Accesses announced so far: the simulator's line-granular count when
  /// bound, else the sum of tick() weights since the last reset_counter().
  std::uint64_t access_count() const;

  /// Rewinds the software access counter and clears any armed/fired flip
  /// (workload prepare(); bound surfaces get a fresh simulator instead).
  void reset_counter();

  // ---- Instrumentation (workload run_step side) ---------------------------

  /// Announces `accesses` memory accesses (element-granular approximations of
  /// the paper's "instructions"); throws memsim::CrashException if an armed
  /// access trigger fires inside this batch. No-op while bound.
  void tick(std::uint64_t accesses);

  /// Names a program point (the paper's crash-after-statement sites); throws
  /// memsim::CrashException at the armed occurrence. No-op while bound.
  void point(const char* name);

  /// Offers `bytes` of tracked workload state as a silent-corruption target.
  /// Near-free when no flip is armed (one relaxed atomic load); when the armed
  /// access threshold has been reached, the seed-chosen eligible call XOR-flips
  /// the armed bit count inside [data, data + bytes) and records FlipStats —
  /// never throws, never advances the access counter.
  void corrupt(const char* site, void* data, std::size_t bytes);

  /// Span convenience for the typical double/uint64 state arrays.
  template <typename T>
  void corrupt(const char* site, std::span<T> data) {
    corrupt(site, static_cast<void*>(data.data()), data.size_bytes());
  }

 private:
  [[noreturn]] void fire(const std::string& at, std::uint64_t accesses);

  memsim::MemorySimulator* sim_ = nullptr;
  /// Guards scheduler_ + accesses_ + flip state against the drain thread's
  /// point() calls racing the workload thread's tick()/point()/corrupt()
  /// calls (async checkpointing).
  mutable std::mutex mu_;
  memsim::CrashScheduler scheduler_;
  std::uint64_t accesses_ = 0;

  // Silent-flip state (mu_-guarded except the two lock-free gate flags).
  std::atomic<bool> flip_armed_{false};
  std::atomic<bool> flip_fired_{false};
  std::uint64_t flip_at_ = 0;
  std::uint64_t flip_seed_ = 0;
  std::uint64_t flip_bits_ = 1;
  std::uint64_t flip_skip_ = 0;   ///< Eligible corrupt() calls to pass over.
  std::uint64_t flip_group_ = 0;  ///< Access count of the skip's site group.
  FlipStats flip_stats_;
};

}  // namespace adcc::core
