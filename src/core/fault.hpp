// FaultSurface — the fault-injection engine threading memsim's CrashScheduler
// through the Workload API, so ScenarioRunner can land crashes *inside* a work
// unit (the paper's two crash-emulator trigger modes: after a named statement,
// and after N memory accesses), not just at unit boundaries.
//
// Two backings share one arming interface:
//
//  * simulator-backed — a workload that executes under a memsim::MemorySimulator
//    (the *CrashConsistent classes) binds its simulator; arming forwards to
//    sim->scheduler() and the simulator's own per-line access accounting raises
//    memsim::CrashException mid-kernel exactly as it always has.
//
//  * software-counted — a native-speed workload adapter owns an unbound
//    surface and instruments its run_step engines with tick(accesses) /
//    point(name) calls at sub-unit sites. The surface drives a private
//    CrashScheduler and throws the same memsim::CrashException when the armed
//    trigger fires, so ScenarioRunner handles both backings identically.
//
// Triggers are one-shot: the surface disarms itself as the exception is thrown
// (mirroring MemorySimulator::crash + reset_after_crash), so recovery's
// re-execution of the crashed unit cannot re-fire the same trigger.
//
// The software-counted backing is internally synchronized: with asynchronous
// checkpointing the durability engine's drain thread fires "ckpt_drain" points
// through this surface while the workload's own thread keeps ticking the next
// unit, so counter/scheduler state is guarded by a mutex (uncontended in the
// synchronous paths — ticks are per-sub-statement, not per-element).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "memsim/crash.hpp"

namespace adcc::memsim {
class MemorySimulator;
}

namespace adcc::core {

class FaultSurface {
 public:
  /// Binds to (or, with nullptr, unbinds from) an external simulator. While
  /// bound, arming forwards to sim->scheduler() and tick/point are no-ops —
  /// the simulator already announces every access itself.
  void bind(memsim::MemorySimulator* sim);
  memsim::MemorySimulator* sim() const { return sim_; }

  // ---- Arming (ScenarioRunner side) ---------------------------------------

  /// Crash once the access count reaches `n` (fires on access #n).
  void arm_at_access(std::uint64_t n);

  /// Crash at the `occurrence`-th (1-based) hit of point(`name`).
  void arm_at_point(std::string name, std::uint64_t occurrence = 1);

  void disarm();
  bool armed() const;

  /// Accesses announced so far: the simulator's line-granular count when
  /// bound, else the sum of tick() weights since the last reset_counter().
  std::uint64_t access_count() const;

  /// Rewinds the software access counter (workload prepare(); bound surfaces
  /// get a fresh simulator instead).
  void reset_counter() {
    std::lock_guard<std::mutex> lock(mu_);
    accesses_ = 0;
  }

  // ---- Instrumentation (workload run_step side) ---------------------------

  /// Announces `accesses` memory accesses (element-granular approximations of
  /// the paper's "instructions"); throws memsim::CrashException if an armed
  /// access trigger fires inside this batch. No-op while bound.
  void tick(std::uint64_t accesses);

  /// Names a program point (the paper's crash-after-statement sites); throws
  /// memsim::CrashException at the armed occurrence. No-op while bound.
  void point(const char* name);

 private:
  [[noreturn]] void fire(const std::string& at, std::uint64_t accesses);

  memsim::MemorySimulator* sim_ = nullptr;
  /// Guards scheduler_ + accesses_ against the drain thread's point() calls
  /// racing the workload thread's tick()/point() calls (async checkpointing).
  mutable std::mutex mu_;
  memsim::CrashScheduler scheduler_;
  std::uint64_t accesses_ = 0;
};

}  // namespace adcc::core
