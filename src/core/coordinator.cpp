#include "core/coordinator.hpp"

#include <algorithm>
#include <cstring>

#include "common/check.hpp"
#include "core/fault.hpp"
#include "core/telemetry.hpp"

namespace adcc::core {

GroupCoordinator::GroupCoordinator(checkpoint::Backend& backend, FaultSurface* fault,
                                   std::size_t shards)
    : fault_(fault),
      versions_(shards, 0),
      marker_(backend, [fault](const char* p) {
        if (fault == nullptr) return;
        // The marker's own chunk persists are the "coord_commit" crash site;
        // loads keep their generic name (they ride the recovery path).
        fault->point(std::strcmp(p, checkpoint::kPointChunkSaved) == 0 ? kPointCoordCommit : p);
      }) {
  ADCC_CHECK(shards >= 1, "a shard group needs at least one shard");
  ADCC_CHECK(!backend.chunk_config().async,
             "the marker backend must be synchronous (the marker IS the commit point)");
  marker_.add("epoch", &epoch_, sizeof(epoch_));
  marker_.add("versions", versions_.data(), versions_.size() * sizeof(std::uint64_t));
}

void GroupCoordinator::commit_epoch(
    std::uint64_t epoch, std::span<const std::size_t> order,
    const std::vector<std::unique_ptr<checkpoint::CheckpointSet>>& shard_ckpts) {
  ADCC_CHECK(shard_ckpts.size() == versions_.size(), "coordinator/shard count mismatch");
  ADCC_CHECK(order.size() == versions_.size(), "drain order must cover every shard");
  {
    // coord/join is where a stalled drain shows up: the barrier that makes
    // every shard's epoch image durable before the marker may reference it.
    const StageTimer timer("coord/join");
    for (const std::size_t i : order) {
      // The join is what makes this shard's epoch image durable; only then may
      // the marker reference its version.
      shard_ckpts[i]->wait_durable();
      versions_[i] = shard_ckpts[i]->version();
      if (fault_ != nullptr) fault_->point(kPointShardJoin);
    }
  }
  epoch_ = epoch;
  if (fault_ != nullptr) fault_->point(kPointGlobalCommit);
  // A throw below (coord_commit crash site, medium failure) rolls the marker
  // save back inside CheckpointSet; the previous epoch stays committed and
  // reload() realigns the in-memory table during recovery.
  const StageTimer timer("coord/commit");
  marker_.save();
}

GroupCoordinator::Marker GroupCoordinator::reload() {
  const std::uint64_t ver = marker_.restore();
  if (ver == 0) {
    epoch_ = 0;
    std::fill(versions_.begin(), versions_.end(), 0);
  }
  return {epoch_, versions_};
}

void GroupCoordinator::clobber() {
  epoch_ = 0;
  std::fill(versions_.begin(), versions_.end(), 0);
}

}  // namespace adcc::core
