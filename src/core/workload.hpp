// Workload — the polymorphic unit the ScenarioRunner composes with a Mode and
// a CrashScenario.
//
// A workload is a fixed problem instance (matrix, XS data set, ...) that can be
// (re)run any number of times. One run is a sequence of *work units* — the
// durable-progress granule of the paper's evaluation: a CG iteration, an ABFT
// submatrix multiplication/addition, an XSBench flush interval. The runner
// drives the protocol
//
//     prepare(env);                          // bind state to the mode substrate
//     while (run_step()) make_durable();     // one unit + its durability action
//     ... inject_crash(); recover(); ...     // crash scenarios only
//     verify();
//
// so that every workload x mode x crash combination shares one driver loop
// instead of a hand-written benchmark binary per figure.
#pragma once

#include <cstddef>
#include <string>

#include "core/modes.hpp"

namespace adcc::core {

class FaultSurface;

/// What recover() reports after a crash: where execution restarts and how much
/// completed work the crash destroyed. Units are 1-based; restart_unit is the
/// first unit that must be (re-)executed, so `restart_unit <= crash_unit + 1`
/// and `units_lost >= crash_unit + 1 - restart_unit` always hold, with
/// equality for sequential-cursor recoveries (a crash after unit k with
/// nothing lost restarts at k + 1). Checksum-classifying recoveries (ABFT-MM)
/// may additionally repair or recompute non-contiguous earlier units inside
/// recover() itself; they report that work via units_lost/units_corrected and
/// charge its wall time to repair_seconds so the runner can split the paper's
/// detect-vs-resume breakdown correctly.
struct WorkloadRecovery {
  std::size_t restart_unit = 1;        ///< First unit to (re-)execute (1-based).
  std::size_t units_lost = 0;          ///< Completed units the crash destroyed.
  std::size_t units_corrected = 0;     ///< Units repaired purely from checksums.
  std::size_t candidates_checked = 0;  ///< Detection probes (invariant scans).
  std::size_t torn_chunks = 0;         ///< Chunks of an interrupted checkpoint
                                       ///< save classified as torn during
                                       ///< recovery (CRC/version evidence).
  double repair_seconds = 0.0;         ///< recover()-internal re-execution time.
};

/// A fixed problem instance runnable under any durability mode: the unit
/// ScenarioRunner composes with a Mode and a CrashScenario. Implementations
/// register themselves with core::WorkloadRegistry (ADCC_REGISTER_WORKLOAD)
/// so one CLI/sweep engine can drive every workload.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Registry name ("cg", "mm", "mc", ...).
  virtual std::string name() const = 0;

  /// Total work units of one run in the prepared mode (the unit granularity
  /// may legitimately differ per mode: the algorithm-directed MM run has
  /// loop-2 addition units the checkpointed run does not).
  virtual std::size_t work_units() const = 0;

  /// Units completed so far in the current run.
  virtual std::size_t units_done() const = 0;

  /// (Re)initializes run state against `env`, which must outlive the run.
  /// Called once per repetition; allocates from env.region / the mode's
  /// substrate and resets all progress. Untimed (substrate setup is excluded
  /// from the measured region, as in the fig benches).
  virtual void prepare(ModeEnv& env) = 0;

  /// Executes the next work unit. Returns false (doing nothing) once all
  /// units are complete.
  virtual bool run_step() = 0;

  /// The prepared mode's durability action for the last completed unit:
  /// nothing (native), CheckpointSet::save, transaction commit, or the
  /// algorithm-directed checksum/counter-line flush. With asynchronous
  /// checkpointing enabled this may return before the image is durable
  /// (stage + background drain); wait_durable() completes the handshake.
  virtual void make_durable() = 0;

  /// Joins any outstanding asynchronous durability work (an in-flight
  /// checkpoint drain). The runner calls it inside the timed region after the
  /// last unit, so a run never finishes with undurable progress; a drain
  /// crash point (ckpt_drain) surfaces here as memsim::CrashException exactly
  /// like a synchronous crash-mid-save. Default: nothing pending.
  virtual void wait_durable() {}

  /// True while an asynchronous durability action from an earlier unit is
  /// still in flight — the unit now executing overlaps the drain (the
  /// runner's overlap_seconds accounting).
  virtual bool durability_pending() const { return false; }

  /// Emulates a power failure at a unit boundary: discards every volatile
  /// structure, leaving only the mode's durable image.
  virtual void inject_crash() = 0;

  /// Detects the restart point from the durable image, reloads state, and
  /// rewinds the unit cursor so run_step() re-executes the lost units.
  virtual WorkloadRecovery recover() = 0;

  /// Checks the final answer against an independent reference (exact reference
  /// solve / reference product / no-crash tally). Valid once units_done() ==
  /// work_units().
  virtual bool verify() = 0;

  /// Lets the workload size the mode substrate (arena/slot bytes) for its
  /// problem instance before the runner calls make_env.
  virtual void tune_env(Mode mode, ModeEnvConfig& cfg) const {
    (void)mode;
    (void)cfg;
  }

  /// The workload's fault surface, if it supports mid-unit crash injection:
  /// the runner arms access/point triggers on it after prepare(), and the
  /// workload's instrumented kernels (or its bound MemorySimulator) raise
  /// memsim::CrashException out of run_step() when the trigger fires. nullptr
  /// means only unit-boundary crash plans are available.
  virtual FaultSurface* fault() { return nullptr; }
};

}  // namespace adcc::core
