// Workload — the polymorphic unit the ScenarioRunner composes with a Mode and
// a CrashScenario.
//
// A workload is a fixed problem instance (matrix, XS data set, ...) that can be
// (re)run any number of times. One run is a sequence of *work units* — the
// durable-progress granule of the paper's evaluation: a CG iteration, an ABFT
// submatrix multiplication/addition, an XSBench flush interval. The runner
// drives the protocol
//
//     prepare(env);                          // bind state to the mode substrate
//     while (run_step()) make_durable();     // one unit + its durability action
//     ... inject_crash(); recover(); ...     // crash scenarios only
//     verify();
//
// so that every workload x mode x crash combination shares one driver loop
// instead of a hand-written benchmark binary per figure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/modes.hpp"

namespace adcc::core {

class FaultSurface;

/// What recover() reports after a crash: where execution restarts and how much
/// completed work the crash destroyed. Units are 1-based; restart_unit is the
/// first unit that must be (re-)executed, so `restart_unit <= crash_unit + 1`
/// and `units_lost >= crash_unit + 1 - restart_unit` always hold, with
/// equality for sequential-cursor recoveries (a crash after unit k with
/// nothing lost restarts at k + 1). Checksum-classifying recoveries (ABFT-MM)
/// may additionally repair or recompute non-contiguous earlier units inside
/// recover() itself; they report that work via units_lost/units_corrected and
/// charge its wall time to repair_seconds so the runner can split the paper's
/// detect-vs-resume breakdown correctly.
struct WorkloadRecovery {
  std::size_t restart_unit = 1;        ///< First unit to (re-)execute (1-based).
  std::size_t units_lost = 0;          ///< Completed units the crash destroyed.
  std::size_t units_corrected = 0;     ///< Units repaired purely from checksums.
  std::size_t candidates_checked = 0;  ///< Detection probes (invariant scans).
  std::size_t torn_chunks = 0;         ///< Chunks of an interrupted checkpoint
                                       ///< save classified as torn during
                                       ///< recovery (CRC/version evidence).
  std::size_t salvaged_chunks = 0;     ///< Chunks of an interrupted save that
                                       ///< restore() recovered forward (CRC-
                                       ///< valid, epoch-coherent) instead of
                                       ///< rolling back to the prior version.
  double repair_seconds = 0.0;         ///< recover()-internal re-execution time.

  // Multi-shard group recoveries (core::ShardGroup) report the group-level
  // breakdown on top; single-rank workloads leave these zero.
  std::size_t shards_restored = 0;     ///< Victim shards reloaded from their slots.
  std::size_t epochs_rolled_back = 0;  ///< Global epochs a coordinator rollback lost.
  std::size_t units_replayed = 0;      ///< Victim-local shard units replayed inside
                                       ///< recover() from retained exchange logs
                                       ///< (survivor units are never recomputed).
  std::size_t halo_bytes = 0;          ///< Exchange bytes re-fetched by that replay.
};

/// The crash target a shard-scoped plan selects (scenario.hpp's shard:/
/// shards:/coord: families): which part of a sharded group the emulated power
/// failure destroys. ScenarioRunner resolves it once per run (after prepare,
/// when shard_count() is known) and hands it to the workload before any
/// inject_crash(). Unsharded workloads ignore it — every scope degenerates to
/// a whole-process power failure.
struct CrashScope {
  enum class Kind {
    kProcess,      ///< Whole process dies (the classic plans).
    kShards,       ///< Only the listed shards die; survivors keep state.
    kCoordinator,  ///< The group coordinator dies mid-commit: every shard's
                   ///< volatile state dies with it, and recovery rolls the
                   ///< group back to the last fully committed global epoch.
  };
  Kind kind = Kind::kProcess;
  std::vector<std::size_t> victims;  ///< kShards: shard indices to kill.
};

/// A fixed problem instance runnable under any durability mode: the unit
/// ScenarioRunner composes with a Mode and a CrashScenario. Implementations
/// register themselves with core::WorkloadRegistry (ADCC_REGISTER_WORKLOAD)
/// so one CLI/sweep engine can drive every workload.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Registry name ("cg", "mm", "mc", ...).
  virtual std::string name() const = 0;

  /// Total work units of one run in the prepared mode (the unit granularity
  /// may legitimately differ per mode: the algorithm-directed MM run has
  /// loop-2 addition units the checkpointed run does not).
  virtual std::size_t work_units() const = 0;

  /// Units completed so far in the current run.
  virtual std::size_t units_done() const = 0;

  /// (Re)initializes run state against `env`, which must outlive the run.
  /// Called once per repetition; allocates from env.region / the mode's
  /// substrate and resets all progress. Untimed (substrate setup is excluded
  /// from the measured region, as in the fig benches).
  virtual void prepare(ModeEnv& env) = 0;

  /// Executes the next work unit. Returns false (doing nothing) once all
  /// units are complete.
  virtual bool run_step() = 0;

  /// The prepared mode's durability action for the last completed unit:
  /// nothing (native), CheckpointSet::save, transaction commit, or the
  /// algorithm-directed checksum/counter-line flush. With asynchronous
  /// checkpointing enabled this may return before the image is durable
  /// (stage + background drain); wait_durable() completes the handshake.
  virtual void make_durable() = 0;

  /// Joins any outstanding asynchronous durability work (an in-flight
  /// checkpoint drain). The runner calls it inside the timed region after the
  /// last unit, so a run never finishes with undurable progress; a drain
  /// crash point (ckpt_drain) surfaces here as memsim::CrashException exactly
  /// like a synchronous crash-mid-save. Default: nothing pending.
  virtual void wait_durable() {}

  /// True while an asynchronous durability action from an earlier unit is
  /// still in flight — the unit now executing overlaps the drain (the
  /// runner's overlap_seconds accounting).
  virtual bool durability_pending() const { return false; }

  /// Emulates a power failure at a unit boundary: discards every volatile
  /// structure, leaving only the mode's durable image.
  virtual void inject_crash() = 0;

  /// Detects the restart point from the durable image, reloads state, and
  /// rewinds the unit cursor so run_step() re-executes the lost units.
  virtual WorkloadRecovery recover() = 0;

  /// Checks the final answer against an independent reference (exact reference
  /// solve / reference product / no-crash tally). Valid once units_done() ==
  /// work_units().
  virtual bool verify() = 0;

  /// Lets the workload size the mode substrate (arena/slot bytes) for its
  /// problem instance before the runner calls make_env.
  virtual void tune_env(Mode mode, ModeEnvConfig& cfg) const {
    (void)mode;
    (void)cfg;
  }

  /// The workload's fault surface, if it supports mid-unit crash injection:
  /// the runner arms access/point triggers on it after prepare(), and the
  /// workload's instrumented kernels (or its bound MemorySimulator) raise
  /// memsim::CrashException out of run_step() when the trigger fires. nullptr
  /// means only unit-boundary crash plans are available.
  virtual FaultSurface* fault() { return nullptr; }

  /// Shards executing this workload in the prepared mode (1 = unsharded).
  /// Valid after prepare(); the runner uses it to resolve shard-scoped crash
  /// plans (a k-of-N victim draw needs N).
  virtual std::size_t shard_count() const { return 1; }

  /// Selects what the next inject_crash() destroys. Called by the runner once
  /// per run, after prepare(); the scope holds for every crash of the run
  /// (double-fault chain links re-kill the same scope). Default: ignored —
  /// unsharded workloads always die whole.
  virtual void set_crash_scope(const CrashScope& scope) { (void)scope; }
};

}  // namespace adcc::core
