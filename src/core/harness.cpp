#include "core/harness.hpp"

#include <vector>

#include "common/check.hpp"

namespace adcc::core {

double time_seconds(const std::function<void()>& fn) {
  Timer t;
  fn();
  return t.elapsed();
}

double median_seconds(const std::function<void()>& fn, int reps, bool warmup) {
  ADCC_CHECK(reps >= 1, "need at least one repetition");
  if (warmup) fn();
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) times.push_back(time_seconds(fn));
  return median(std::move(times));
}

NormalizedTime normalize(double seconds, double native_seconds) {
  NormalizedTime n;
  n.seconds = seconds;
  n.normalized = native_seconds > 0 ? seconds / native_seconds : 0.0;
  return n;
}

}  // namespace adcc::core
