// SimWorkloadBase — shared scaffolding for workloads that execute under a
// memsim::MemorySimulator (the *-sim adapters wrapping the *CrashConsistent
// classes): the simulator-bound FaultSurface, the boundary-crash injection
// rule, and the token substrate sizing (the simulator owns the durable
// images, so the mode substrate goes unused and the adapters are
// mode-agnostic).
#pragma once

#include "core/fault.hpp"
#include "core/workload.hpp"
#include "memsim/memsim.hpp"

namespace adcc::core {

class SimWorkloadBase : public Workload {
 public:
  void tune_env(Mode mode, ModeEnvConfig& env) const override {
    (void)mode;
    env.arena_bytes = 1u << 20;
    env.slot_bytes = 64u << 10;
  }

  FaultSurface* fault() override { return &fault_; }

  void inject_crash() override {
    crashed_done_ = units_done();
    // Mid-unit triggers already crashed the simulator as they threw; boundary
    // plans inject the power loss here.
    memsim::MemorySimulator& s = sim();
    if (!s.crashed()) s.crash();
  }

 protected:
  /// The live run's simulator (valid after prepare).
  virtual memsim::MemorySimulator& sim() = 0;

  /// Call from prepare() after (re)creating the simulated run.
  void bind_sim(memsim::MemorySimulator& s) {
    crashed_done_ = 0;
    fault_.bind(&s);
  }

  FaultSurface fault_;
  std::size_t crashed_done_ = 0;  ///< units_done at the last inject_crash.
};

}  // namespace adcc::core
