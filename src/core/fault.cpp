#include "core/fault.hpp"

#include "memsim/memsim.hpp"

namespace adcc::core {

void FaultSurface::bind(memsim::MemorySimulator* sim) {
  std::lock_guard<std::mutex> lock(mu_);
  sim_ = sim;
  scheduler_.disarm();
  accesses_ = 0;
}

void FaultSurface::arm_at_access(std::uint64_t n) {
  if (sim_ != nullptr) {
    sim_->scheduler().arm_at_access(n);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    scheduler_.arm_at_access(n);
  }
}

void FaultSurface::arm_at_point(std::string name, std::uint64_t occurrence) {
  if (sim_ != nullptr) {
    sim_->scheduler().arm_at_point(std::move(name), occurrence);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    scheduler_.arm_at_point(std::move(name), occurrence);
  }
}

void FaultSurface::disarm() {
  if (sim_ != nullptr) {
    sim_->scheduler().disarm();
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    scheduler_.disarm();
  }
}

bool FaultSurface::armed() const {
  if (sim_ != nullptr) return sim_->scheduler().armed();
  std::lock_guard<std::mutex> lock(mu_);
  return scheduler_.armed();
}

std::uint64_t FaultSurface::access_count() const {
  if (sim_ != nullptr) return sim_->access_count();
  std::lock_guard<std::mutex> lock(mu_);
  return accesses_;
}

void FaultSurface::tick(std::uint64_t accesses) {
  if (sim_ != nullptr) return;  // The simulator counts its own accesses.
  std::lock_guard<std::mutex> lock(mu_);
  accesses_ += accesses;
  if (scheduler_.on_access(accesses_)) fire("access", accesses_);
}

void FaultSurface::point(const char* name) {
  if (sim_ != nullptr) return;  // The workload calls sim->crash_point itself.
  std::lock_guard<std::mutex> lock(mu_);
  if (scheduler_.on_point(name)) fire(name, accesses_);
}

void FaultSurface::fire(const std::string& at, std::uint64_t accesses) {
  // One-shot: recovery re-executes the crashed unit, which must not re-fire.
  // Throws with mu_ held by the caller; the unwind releases it.
  scheduler_.disarm();
  throw memsim::CrashException(at, accesses);
}

}  // namespace adcc::core
