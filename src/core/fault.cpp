#include "core/fault.hpp"

#include "memsim/memsim.hpp"

namespace adcc::core {

void FaultSurface::bind(memsim::MemorySimulator* sim) {
  sim_ = sim;
  scheduler_.disarm();
  accesses_ = 0;
}

void FaultSurface::arm_at_access(std::uint64_t n) {
  if (sim_ != nullptr) {
    sim_->scheduler().arm_at_access(n);
  } else {
    scheduler_.arm_at_access(n);
  }
}

void FaultSurface::arm_at_point(std::string name, std::uint64_t occurrence) {
  if (sim_ != nullptr) {
    sim_->scheduler().arm_at_point(std::move(name), occurrence);
  } else {
    scheduler_.arm_at_point(std::move(name), occurrence);
  }
}

void FaultSurface::disarm() {
  if (sim_ != nullptr) {
    sim_->scheduler().disarm();
  } else {
    scheduler_.disarm();
  }
}

bool FaultSurface::armed() const {
  return sim_ != nullptr ? sim_->scheduler().armed() : scheduler_.armed();
}

std::uint64_t FaultSurface::access_count() const {
  return sim_ != nullptr ? sim_->access_count() : accesses_;
}

void FaultSurface::tick(std::uint64_t accesses) {
  if (sim_ != nullptr) return;  // The simulator counts its own accesses.
  accesses_ += accesses;
  if (scheduler_.on_access(accesses_)) fire("access");
}

void FaultSurface::point(const char* name) {
  if (sim_ != nullptr) return;  // The workload calls sim->crash_point itself.
  if (scheduler_.on_point(name)) fire(name);
}

void FaultSurface::fire(const std::string& at) {
  // One-shot: recovery re-executes the crashed unit, which must not re-fire.
  scheduler_.disarm();
  throw memsim::CrashException(at, accesses_);
}

}  // namespace adcc::core
