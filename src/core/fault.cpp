#include "core/fault.hpp"

#include "common/rng.hpp"
#include "memsim/memsim.hpp"

namespace adcc::core {

namespace {
// Distinct splitmix64 tweak constants so the site-skip draw and each bit
// position draw come from independent streams of the same flip seed.
constexpr std::uint64_t kFlipSkipSalt = 0xF11D'5C1F'7A11'0C85ULL;
constexpr std::uint64_t kFlipBitSalt = 0xB17F'11B5'EED0'3A1DULL;
// A flip lands on one of the next kFlipSiteSpread eligible corrupt() calls
// after the access threshold, so workloads offering several state regions at
// one program point still expose every region to the seed sweep.
constexpr std::uint64_t kFlipSiteSpread = 4;
}  // namespace

void FaultSurface::bind(memsim::MemorySimulator* sim) {
  std::lock_guard<std::mutex> lock(mu_);
  sim_ = sim;
  scheduler_.disarm();
  accesses_ = 0;
  flip_armed_.store(false, std::memory_order_relaxed);
  flip_fired_.store(false, std::memory_order_relaxed);
  flip_stats_ = {};
}

void FaultSurface::arm_at_access(std::uint64_t n) {
  if (sim_ != nullptr) {
    sim_->scheduler().arm_at_access(n);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    scheduler_.arm_at_access(n);
  }
}

void FaultSurface::arm_at_point(std::string name, std::uint64_t occurrence) {
  if (sim_ != nullptr) {
    sim_->scheduler().arm_at_point(std::move(name), occurrence);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    scheduler_.arm_at_point(std::move(name), occurrence);
  }
}

void FaultSurface::arm_flip(std::uint64_t at_access, std::uint64_t seed,
                            std::uint64_t bits) {
  std::lock_guard<std::mutex> lock(mu_);
  flip_at_ = at_access;
  flip_seed_ = seed;
  flip_bits_ = bits == 0 ? 1 : bits;
  flip_skip_ = splitmix64(seed ^ kFlipSkipSalt) % kFlipSiteSpread;
  flip_group_ = 0;
  flip_stats_ = {};
  flip_fired_.store(false, std::memory_order_relaxed);
  flip_armed_.store(true, std::memory_order_relaxed);
}

void FaultSurface::disarm() {
  if (sim_ != nullptr) {
    sim_->scheduler().disarm();
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    scheduler_.disarm();
  }
}

bool FaultSurface::armed() const {
  if (sim_ != nullptr) return sim_->scheduler().armed();
  std::lock_guard<std::mutex> lock(mu_);
  return scheduler_.armed();
}

FlipStats FaultSurface::flip_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flip_stats_;
}

void FaultSurface::report_detected(bool corrected) {
  std::lock_guard<std::mutex> lock(mu_);
  ++flip_stats_.detected;
  if (corrected) ++flip_stats_.corrected;
}

std::uint64_t FaultSurface::access_count() const {
  if (sim_ != nullptr) return sim_->access_count();
  std::lock_guard<std::mutex> lock(mu_);
  return accesses_;
}

void FaultSurface::reset_counter() {
  std::lock_guard<std::mutex> lock(mu_);
  accesses_ = 0;
  flip_armed_.store(false, std::memory_order_relaxed);
  flip_fired_.store(false, std::memory_order_relaxed);
  flip_stats_ = {};
}

void FaultSurface::tick(std::uint64_t accesses) {
  if (sim_ != nullptr) return;  // The simulator counts its own accesses.
  std::lock_guard<std::mutex> lock(mu_);
  accesses_ += accesses;
  if (scheduler_.on_access(accesses_)) fire("access", accesses_);
}

void FaultSurface::point(const char* name) {
  if (sim_ != nullptr) return;  // The workload calls sim->crash_point itself.
  std::lock_guard<std::mutex> lock(mu_);
  if (scheduler_.on_point(name)) fire(name, accesses_);
}

void FaultSurface::corrupt(const char* site, void* data, std::size_t bytes) {
  // The gate load keeps this hook near-free on every non-flip run: no lock,
  // no clock, one relaxed atomic read.
  if (!flip_armed_.load(std::memory_order_relaxed)) return;
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!flip_armed_.load(std::memory_order_relaxed)) return;
  const std::uint64_t now = sim_ != nullptr ? sim_->access_count() : accesses_;
  if (now < flip_at_) return;
  // Seeded site selection, capped at the same-access-count group: workloads
  // offer several regions back-to-back between ticks (cg p/r/z, mc
  // counters/macro), and the skip picks among THOSE — but never defers past
  // the group, so a workload with one site per unit (mm) cannot carry the
  // flip past the end of the run.
  if (flip_skip_ > 0 && (flip_group_ == 0 || now == flip_group_)) {
    flip_group_ = now;
    --flip_skip_;
    return;
  }
  flip_armed_.store(false, std::memory_order_relaxed);  // One-shot.
  auto* p = static_cast<unsigned char*>(data);
  const std::uint64_t nbits = static_cast<std::uint64_t>(bytes) * 8;
  for (std::uint64_t k = 0; k < flip_bits_; ++k) {
    const std::uint64_t pos = splitmix64(flip_seed_ ^ (kFlipBitSalt + k)) % nbits;
    p[pos / 8] ^= static_cast<unsigned char>(1u << (pos % 8));
  }
  flip_stats_.flips += 1;
  flip_stats_.bits = flip_bits_;
  flip_stats_.inject_access = now;
  flip_stats_.site = site;
  flip_fired_.store(true, std::memory_order_relaxed);
}

void FaultSurface::fire(const std::string& at, std::uint64_t accesses) {
  // One-shot: recovery re-executes the crashed unit, which must not re-fire.
  // Throws with mu_ held by the caller; the unwind releases it.
  scheduler_.disarm();
  throw memsim::CrashException(at, accesses);
}

}  // namespace adcc::core
