// CrashScenario + ScenarioRunner — the declarative composition layer.
//
// A scenario is (workload, mode, crash plan, repetitions). The runner owns the
// driver loop every bench binary used to hand-roll: build the mode substrate
// (untimed), prepare the workload, execute work units with their per-unit
// durability action, fire crashes at the planned unit boundaries, time the
// recovery (detect) and re-execution (resume) phases separately, and fold the
// measurements into the existing NormalizedTime / RecomputationBreakdown
// reporting structures.
//
// Crash plans (CLI spellings accepted by parse_crash):
//   none          — no crash
//   step:K        — one crash after work unit K completes (clamped to the run)
//   random[:SEED] — one crash at a seed-chosen unit boundary
//   repeat:N      — N crashes at evenly spaced unit boundaries
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/harness.hpp"
#include "core/modes.hpp"
#include "core/workload.hpp"

namespace adcc::core {

struct CrashScenario {
  enum class Kind { kNone, kAtStep, kRandom, kRepeated };
  Kind kind = Kind::kNone;
  std::size_t step = 0;      ///< kAtStep: crash after this many completed units.
  std::uint64_t seed = 1;    ///< kRandom: picks the crash unit.
  std::size_t count = 1;     ///< kRepeated: number of crashes.
};

/// Parses the CLI spelling; nullopt on malformed input.
std::optional<CrashScenario> parse_crash(std::string_view spec);

/// Canonical spelling, round-tripping through parse_crash.
std::string crash_name(const CrashScenario& crash);

/// The unit boundaries (completed-unit counts, 1-based) at which `crash` fires
/// for a run of `work_units` units, in firing order. Empty for kNone.
std::vector<std::size_t> crash_units(const CrashScenario& crash, std::size_t work_units);

struct ScenarioConfig {
  Mode mode = Mode::kNative;
  CrashScenario crash;
  ModeEnvConfig env;           ///< Substrate sizing (workload-tuned by callers).
  int reps = 1;                ///< Timed repetitions; seconds is their median.
  bool warmup = false;         ///< One discarded repetition first.
  double native_seconds = 0.0; ///< Baseline for NormalizedTime (0 = none).
  bool verify = false;         ///< Run Workload::verify after the last rep.
};

struct ScenarioResult {
  Mode mode = Mode::kNative;
  CrashScenario crash;
  double seconds = 0.0;     ///< Median wall time of one full run (incl. recovery).
  NormalizedTime time;      ///< vs cfg.native_seconds when provided.
  /// Last repetition's recovery accounting (all-zero for crash-free runs):
  /// detect = recover() time, resume = re-execution of lost units, unit =
  /// mean pre-crash unit time, units_lost summed over all crashes.
  RecomputationBreakdown recomputation;
  std::size_t work_units = 0;
  std::size_t crashes = 0;       ///< Crashes fired in the last repetition.
  std::size_t crash_unit = 0;    ///< Last crash: completed units when it hit.
  std::size_t restart_unit = 0;  ///< Last crash: first re-executed unit.
  bool verify_ran = false;
  bool verified = false;
};

class ScenarioRunner {
 public:
  /// The workload must outlive the runner. Its problem instance is fixed;
  /// prepare() re-initializes run state each repetition.
  ScenarioRunner(Workload& workload, ScenarioConfig cfg);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Executes cfg.reps repetitions (plus warmup) and aggregates. May be called
  /// again for more repetitions (fig13-style interleaved baselines).
  ScenarioResult run();

 private:
  double run_once(ScenarioResult& result);
  void ensure_env();

  Workload& workload_;
  ScenarioConfig cfg_;
  std::unique_ptr<ModeEnv> env_;
};

/// Convenience: run a scenario over `workload` with `cfg` once-off.
ScenarioResult run_scenario(Workload& workload, const ScenarioConfig& cfg);

}  // namespace adcc::core
