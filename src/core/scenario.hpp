// CrashScenario + ScenarioRunner — the declarative composition layer.
//
// A scenario is (workload, mode, crash plan, repetitions). The runner owns the
// driver loop every bench binary used to hand-roll: build the mode substrate
// (untimed), prepare the workload, execute work units with their per-unit
// durability action, fire crashes at the planned unit boundaries — or arm the
// workload's FaultSurface so the crash lands *inside* a unit — time the
// recovery (detect) and re-execution (resume) phases separately, and fold the
// measurements into the existing NormalizedTime / RecomputationBreakdown
// reporting structures.
//
// Crash plans (CLI spellings accepted by parse_crash):
//   none            — no crash
//   step:K          — one crash after work unit K completes (clamped to the run)
//   random[:SEED]   — one crash at a seed-chosen unit boundary
//   repeat:N        — N crashes at evenly spaced unit boundaries
//   access:N        — mid-unit: crash on the N-th announced memory access
//   point:NAME[:K]  — mid-unit: crash at the K-th hit of crash point NAME
//                     (NAME may itself contain ':', e.g. point:cg:p_updated:15)
//   fuzz:SEED       — mid-unit: a seeded random access inside a seeded random
//                     unit (an untimed probe repetition measures the per-unit
//                     access boundaries first; the plan is deterministic in
//                     SEED, problem and mode)
//   flip:SEED[:BITS]— mid-unit *silent* fault: at a fuzz-style seeded access,
//                     XOR-flip BITS seeded bit positions inside the workload's
//                     tracked state (FaultSurface::corrupt sites) WITHOUT
//                     raising — execution continues, and detection must come
//                     from the workload's checksums/invariants (or end-of-run
//                     verify() reports the miss honestly). BITS defaults to 1.
//   PLAN^TAIL^...   — double faults: after each crash of PLAN, the next TAIL
//                     (access:N — N accesses into recovery — or point:NAME[:K])
//                     is armed *before* recover() runs, so it lands inside the
//                     recovery itself (crash-during-recovery). A tail that
//                     never fires (its point is not on this mode's recovery
//                     path) is disarmed when recovery completes.
//
// Shard-scoped plans (multi-shard groups, core::ShardGroup) prefix any plan
// above — the prefix selects WHAT the crash destroys, the plan still selects
// WHEN it fires, and the scope covers the whole chain (tails re-kill it):
//   shard:I:PLAN        — kill only shard I; survivors keep computing state
//   shards:K:SEED:PLAN  — kill a seeded random k-of-N victim set
//   coord:PLAN          — kill the coordinator (typically mid-global-commit:
//                         coord:point:shard_join:2, coord:point:global_commit,
//                         coord:point:coord_commit); the whole group dies and
//                         rolls back to the last fully committed global epoch
// On unsharded workloads every scope degenerates to a whole-process crash.
//
// Mid-unit plans require Workload::fault() != nullptr; the runner catches the
// memsim::CrashException raised out of run_step, accounts the interrupted unit
// as a partial unit in RecomputationBreakdown, and drives inject_crash /
// recover / re-execution exactly as for boundary crashes. Since the chunked
// durability engine, the same exception can surface out of make_durable()
// (crash points inside checkpoint save, point:ckpt_chunk[:K]) and out of
// recover() (points inside checkpoint load, point:ckpt_restore[:K]) — the
// runner accounts the former as a crash after the completed unit with a torn
// in-flight checkpoint, and retries recovery for the latter.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/harness.hpp"
#include "core/modes.hpp"
#include "core/workload.hpp"

namespace adcc::core {

class KernelBackend;
class Telemetry;

/// A parsed crash plan: when (and how often) the emulated power failure
/// fires, plus the optional double-fault chain armed inside recovery.
struct CrashScenario {
  enum class Kind { kNone, kAtStep, kRandom, kRepeated, kAtAccess, kAtPoint, kFuzz, kFlip };
  Kind kind = Kind::kNone;
  std::size_t step = 0;        ///< kAtStep: crash after this many completed units.
  std::uint64_t seed = 1;      ///< kRandom / kFuzz / kFlip: picks the fault site.
  std::size_t count = 1;       ///< kRepeated: number of crashes.
  std::uint64_t access = 0;    ///< kAtAccess: the triggering access count.
  std::string point;           ///< kAtPoint: crash-point name.
  std::uint64_t occurrence = 1;///< kAtPoint: 1-based hit of `point`.
  std::uint64_t bits = 1;      ///< kFlip: bit positions XOR-flipped per event.
  /// Double-fault chain ('^' links): after the i-th crash of this plan, then[i]
  /// is armed before recover() so it fires *inside* the recovery. Links must be
  /// kAtAccess (relative to the recovery's start) or kAtPoint, with empty then.
  std::vector<CrashScenario> then;

  /// What the crash destroys (shard:/shards:/coord: prefixes). Applies to the
  /// head and every chain link; links carry kProcess themselves and inherit
  /// the head's scope through the runner's per-run resolution.
  enum class Scope { kProcess, kShard, kShardSet, kCoordinator };
  Scope scope = Scope::kProcess;
  std::size_t shard = 0;          ///< kShard: the victim index.
  std::size_t victims = 1;        ///< kShardSet: victim count k.
  std::uint64_t victim_seed = 1;  ///< kShardSet: seeds the victim draw.
};

/// Parses the CLI spelling; nullopt on malformed input.
std::optional<CrashScenario> parse_crash(std::string_view spec);

/// parse_crash, but throwing: raises std::invalid_argument naming the
/// offending spec on malformed input. The eager-validation entry point for
/// callers that must never silently accept a bad plan (sweep axes, fuzzers).
CrashScenario parse_crash_or_throw(std::string_view spec);

/// Canonical spelling, round-tripping through parse_crash.
std::string crash_name(const CrashScenario& crash);

/// True for the plans that fire inside a work unit through a FaultSurface
/// (access / point / fuzz) rather than at a boundary the runner controls.
bool crash_is_mid_unit(const CrashScenario& crash);

/// The unit boundaries (completed-unit counts, 1-based) at which `crash` fires
/// for a run of `work_units` units, in firing order. Empty for kNone and for
/// every mid-unit plan (those arm the FaultSurface instead).
std::vector<std::size_t> crash_units(const CrashScenario& crash, std::size_t work_units);

/// The victim shard set of a shard-scoped plan, resolved against the group
/// size: shard:I clamps I into [0, N); shards:K:SEED draws min(K, N) distinct
/// indices with a splitmix64-seeded shuffle (deterministic in SEED and N),
/// returned sorted. Empty for process/coordinator scopes.
std::vector<std::size_t> crash_victims(const CrashScenario& crash, std::size_t shard_count);

/// Resolves the plan's scope prefix against the prepared workload's shard
/// count into the CrashScope handed to Workload::set_crash_scope. Unsharded
/// runs (shard_count <= 1) always degenerate to a whole-process crash.
CrashScope resolve_crash_scope(const CrashScenario& crash, std::size_t shard_count);

/// Everything one scenario execution needs besides the workload: mode, crash
/// plan, substrate sizing, repetition policy and the optional shared fuzz probe.
struct ScenarioConfig {
  Mode mode = Mode::kNative;
  CrashScenario crash;
  ModeEnvConfig env;           ///< Substrate sizing (workload-tuned by callers).
  int reps = 1;                ///< Timed repetitions; seconds is their median.
  bool warmup = false;         ///< One discarded repetition first.
  double native_seconds = 0.0; ///< Baseline for NormalizedTime (0 = none).
  bool verify = false;         ///< Run Workload::verify after the last rep.
  /// Pre-measured fuzz probe (cumulative access counts at every unit boundary,
  /// leading 0 included). When set, fuzz plans skip their own untimed probe
  /// repetition — sweep decks share one probe across every fuzz seed of the
  /// same cell shape (see probe_fuzz_boundaries).
  std::shared_ptr<const std::vector<std::uint64_t>> fuzz_boundaries;
  /// Stage-timer registry bound (per thread, RAII) around every timed
  /// repetition; null leaves every StageTimer on its no-op path. The runner
  /// resets it before each rep so the totals describe the last one.
  Telemetry* telemetry = nullptr;
  std::string telemetry_label;  ///< Trace-track label ("cellN" in sweeps).
  /// Kernel backend bound (per thread, RAII) around every repetition; null =
  /// the serial default. Verify passes run outside the bind and always
  /// recompute serially, which is what makes serial-vs-omp equivalence checks
  /// meaningful.
  const KernelBackend* backend = nullptr;
};

/// One scenario's aggregated measurement: median wall time, normalization,
/// and the last repetition's crash/recovery accounting.
struct ScenarioResult {
  Mode mode = Mode::kNative;
  CrashScenario crash;
  double seconds = 0.0;     ///< Median wall time of one full run (incl. recovery).
  NormalizedTime time;      ///< vs cfg.native_seconds when provided.
  /// Last repetition's recovery accounting (all-zero for crash-free runs):
  /// detect = recover() time, resume = re-execution of lost units (plus any
  /// recover()-internal repair work), unit = mean pre-crash unit time,
  /// units_lost/partial_units summed over all crashes.
  RecomputationBreakdown recomputation;
  std::size_t work_units = 0;
  std::size_t crashes = 0;       ///< Crashes fired in the last repetition.
  std::size_t crash_unit = 0;    ///< Last crash: completed units when it hit.
  std::size_t restart_unit = 0;  ///< Last crash: first re-executed unit.
  std::uint64_t crash_access = 0;///< Last mid-unit crash: firing access count.
  std::string crash_site;        ///< Last mid-unit crash: firing point name.
  bool verify_ran = false;
  bool verified = false;
};

/// The one driver loop every bench shares: prepare, step/make_durable, fire
/// crashes (boundary, mid-unit, mid-checkpoint, mid-drain, mid-recovery),
/// time detect/resume, join async drains, and aggregate repetitions.
class ScenarioRunner {
 public:
  /// The workload must outlive the runner. Its problem instance is fixed;
  /// prepare() re-initializes run state each repetition.
  ScenarioRunner(Workload& workload, ScenarioConfig cfg);
  ~ScenarioRunner();

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Executes cfg.reps repetitions (plus warmup) and aggregates. May be called
  /// again for more repetitions (fig13-style interleaved baselines).
  ScenarioResult run();

 private:
  double run_once(ScenarioResult& result);
  void ensure_env();
  void arm_fault(FaultSurface& fault);
  void plan_fuzz(FaultSurface& fault);
  WorkloadRecovery recover_with_chain(ScenarioResult& result, std::size_t& chain_pos);

  Workload& workload_;
  ScenarioConfig cfg_;
  std::unique_ptr<ModeEnv> env_;
  std::uint64_t fuzz_access_ = 0;  ///< Cached fuzz probe result (0 = not probed).
};

/// Convenience: run a scenario over `workload` with `cfg` once-off.
ScenarioResult run_scenario(Workload& workload, const ScenarioConfig& cfg);

/// One untimed crash-free run of `workload` under `mode`, recording the
/// cumulative announced-access count at every unit boundary (index 0 = before
/// unit 1) — the fuzz plan's probe, shareable across every fuzz seed of the
/// same (workload shape, mode): access announcements are deterministic, so
/// the boundaries are too. Requires workload.fault() != nullptr.
std::vector<std::uint64_t> probe_fuzz_boundaries(Workload& workload, Mode mode,
                                                 const ModeEnvConfig& env_cfg);

/// The access fuzz:SEED fires on, given probe boundaries: a seeded random
/// access inside a seeded random unit.
std::uint64_t pick_fuzz_access(std::span<const std::uint64_t> boundaries,
                               std::uint64_t seed);

}  // namespace adcc::core
